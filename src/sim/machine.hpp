// The paper's abstract distributed machine (Fig. 1(b)) as an executable,
// deterministic simulator.
//
// Each rank's program runs on a fiber and moves *real data* through
// simulated point-to-point links, so algorithm output can be verified
// numerically while the simulator counts flops, words, and messages exactly
// and advances LogP-style per-rank virtual clocks:
//
//   send of k words:  sender clock += ceil(k/m)·αt + k·βt, counters updated;
//                     the message arrives at the sender's post-send clock.
//   recv:             receiver clock = max(receiver clock, arrival time).
//   compute(F):       clock += γt·F.
//
// Link time is charged to the sender (Eq. 1 counts words/messages *sent*);
// the receiver synchronizes to the arrival time, so waiting shows up as idle
// time, never as double-counted bandwidth.
//
// Sends are eager (buffered, non-blocking): the payload is copied into the
// destination mailbox and the sender proceeds. Receives block the fiber
// until a matching message (same source and tag, FIFO per pair) exists.
// If every live rank is blocked the run aborts with a deadlock diagnosis
// listing what each rank was waiting for.
//
// Hot-path structure: each rank's mailbox is indexed by (src, tag) so
// matching a recv is O(1) in the number of pending messages
// (sim/mailbox.hpp); payload buffers are leased from a free-list pool
// owned by the Machine, so steady-state traffic allocates nothing; a recv
// blocks with a lazily-materialized diagnostic and is only woken by a send
// that actually matches its (src, tag).
//
// THREADING INVARIANT (relied on by src/engine): a Machine and everything
// it owns — fibers, mailboxes, counters, the run() call — are confined to
// the single OS thread that calls run(); a Machine is NOT safe to share
// between threads. Distinct Machines on distinct threads are safe to run
// concurrently: the fiber scheduler's active-scheduler pointer is
// thread_local (fiber/fiber.cpp), Rng state is per-instance
// (support/rng.hpp), and there is no other mutable global state in sim/,
// fiber/, topo/, algs/ or support/ (machines/db.cpp holds a const table
// with thread-safe magic-static initialization). This is what lets the
// experiment engine run one simulated Machine per pool thread with
// bit-identical results at any thread count (verified under TSan by
// tests/test_engine.cpp).
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include <cstdint>
#include <unordered_map>

#include "core/costs.hpp"
#include "core/params.hpp"
#include "fiber/fiber.hpp"
#include "sim/counters.hpp"
#include "sim/fault.hpp"
#include "sim/fold.hpp"
#include "sim/mailbox.hpp"
#include "sim/network.hpp"
#include "sim/payload.hpp"
#include "sim/payload_pool.hpp"
#include "sim/trace.hpp"

namespace alge::sim {

class Comm;
class SimTransport;

/// Raised on simulation-level failures: deadlock, out-of-memory (when the
/// configured per-rank memory M is exceeded), malformed traffic.
class SimError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct MachineConfig {
  int p = 1;                           ///< number of processors
  core::MachineParams params;          ///< time/energy/capacity constants
  std::size_t stack_bytes = 512 * 1024;
  /// Interconnect topology; null = fully connected (the paper's flat link
  /// model). With a topology, message latency is charged per hop and the
  /// βe/αe energy terms use hop-weighted traffic.
  std::shared_ptr<const NetworkModel> network;
  /// Record per-rank compute/send/recv/idle intervals (see sim/trace.hpp).
  bool enable_trace = false;
  /// Accumulate per-(rank, phase) counter slices for the Eq. (2) energy
  /// ledger (see counters.hpp PhaseCounters and obs/energy_ledger.hpp).
  /// Phases are labelled with Machine::phase / Comm::phase scopes; with no
  /// scopes everything lands in the default "(main)" phase.
  bool enable_ledger = false;
  /// Heterogeneous machines: per-rank speed multipliers (rank r computes
  /// at speed[r] times the base rate, i.e. effective γt/speed[r]). Empty =
  /// uniform. Must have exactly p entries otherwise.
  std::vector<double> speed;
  /// Fault injection (src/chaos): consulted on every message and before
  /// every comm event. Null = fault-free. The transport stays reliable —
  /// drops are retransmitted (bounded by `retry`), duplicates deduplicated,
  /// reorders resequenced — so programs see unchanged payloads and only pay
  /// the Eq. (1)/(2) time/energy cost of the recovery traffic.
  std::shared_ptr<FaultInjector> faults;
  /// Retransmission bounds/timeouts used when `faults` drops messages.
  RetryConfig retry;
  /// Wake-order policy for schedule exploration (src/chaos); null keeps
  /// the default deterministic round-robin scan.
  std::shared_ptr<fiber::WakePolicy> wake_policy;
  /// kGhost: payloads carry sizes only and kernels are analytic — identical
  /// counters, clocks, energy, trace and ledger, no data movement (see
  /// sim/payload.hpp). Programs must not verify output in ghost mode.
  DataMode data_mode = DataMode::kFull;
  /// Execution strategy (sim/fold.hpp). kFolded requires kGhost data mode
  /// and a `fold` map; it executes one fiber per fold-equivalence class
  /// and replays per-class message-cost deltas over event-log channels,
  /// with cost signatures bit-identical to per-fiber execution. Any
  /// configuration folding cannot represent exactly — faults, per-rank
  /// speeds, tracing, a routed network, a missing or trivial map — makes
  /// the machine fall back to per-fiber execution transparently (see
  /// fold_active()).
  ExecMode exec_mode = ExecMode::kFibers;
  /// Rank-congruence partition consumed by kFolded (ignored under
  /// kFibers). Must satisfy fold->p() == p when set.
  std::shared_ptr<const FoldMap> fold;
};

/// Aggregates over ranks, plus the per-processor maxima used when comparing
/// against the per-processor analytic bounds.
struct SimTotals {
  double flops_total = 0.0;
  double words_total = 0.0;  ///< total words transmitted (counted at sender)
  double msgs_total = 0.0;
  double words_hops_total = 0.0;  ///< link-traversal-weighted words
  double msgs_hops_total = 0.0;
  double flops_max = 0.0;    ///< max over ranks
  double words_sent_max = 0.0;
  double msgs_sent_max = 0.0;
  std::size_t mem_highwater_max = 0;
  std::size_t mem_highwater_total = 0;

  bool operator==(const SimTotals&) const = default;
};

/// Eq. (2) evaluated on the measured run; see Machine::energy().
struct SimEnergy {
  core::EnergyBreakdown breakdown;
  double makespan = 0.0;
  double total() const { return breakdown.total(); }
  /// Average power P = E / T.
  double power() const { return breakdown.total() / makespan; }
};

class Machine {
 public:
  explicit Machine(MachineConfig cfg);
  ~Machine();
  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  /// Run `program` on every rank to completion. May be called repeatedly;
  /// counters accumulate across runs (call reset() in between if undesired).
  void run(const std::function<void(Comm&)>& program);

  void reset();

  int p() const { return cfg_.p; }
  const core::MachineParams& params() const { return cfg_.params; }

  /// True when this machine actually folds: ExecMode::kFolded with a
  /// usable non-trivial map and none of the fall-back conditions (see
  /// MachineConfig::exec_mode). When false a kFolded machine behaves
  /// exactly like a kFibers one.
  bool fold_active() const { return fold_active_; }
  /// Fibers spawned per run(): the number of fold classes when folding,
  /// p otherwise. This is what makes p = 10^6–10^8 frontier sweeps cheap.
  int num_slots() const { return static_cast<int>(ranks_.size()); }

  /// Virtual makespan: max over ranks of the final clock.
  double makespan() const;

  const RankCounters& rank_counters(int rank) const;
  SimTotals totals() const;

  /// The recorded trace (empty unless cfg.enable_trace).
  const Trace& trace() const { return trace_; }

  /// Attach a streaming trace sink (see sim/trace.hpp). Events are only
  /// generated when cfg.enable_trace is set; with keep_events false they are
  /// forwarded to the sink without being stored.
  void set_trace_sink(TraceSink* sink, bool keep_events = true) {
    trace_.set_sink(sink, keep_events);
  }

  // --- Energy-ledger phases (cfg.enable_ledger) ---

  /// RAII phase label. Obtain from Machine::phase (outside run(): labels
  /// every rank until the scope closes, e.g. one scope per run() call) or
  /// Comm::phase (inside a program: labels the calling rank only, and
  /// records a kPhase trace span when tracing is on). Scopes nest; closing
  /// restores the enclosing phase.
  class PhaseScope {
   public:
    PhaseScope(PhaseScope&& o) noexcept
        : m_(o.m_), rank_(o.rank_), t0_(o.t0_), prev_(std::move(o.prev_)),
          name_(o.name_) {
      o.m_ = nullptr;
    }
    PhaseScope& operator=(PhaseScope&&) = delete;
    PhaseScope(const PhaseScope&) = delete;
    PhaseScope& operator=(const PhaseScope&) = delete;
    ~PhaseScope();

   private:
    friend class Machine;
    friend class Comm;
    PhaseScope(Machine* m, int rank, double t0, std::vector<int> prev,
               const char* name)
        : m_(m), rank_(rank), t0_(t0), prev_(std::move(prev)), name_(name) {}
    Machine* m_;
    int rank_;  ///< -1: scope covers every rank (Machine::phase)
    double t0_;
    std::vector<int> prev_;  ///< phase ids to restore (size 1 or p)
    const char* name_;       ///< interned label, for the kPhase trace span
  };

  /// Enter phase `name` on every rank. Must be called outside run() — use
  /// Comm::phase from inside a simulated program. Counter deltas recorded
  /// while the scope is open are attributed to the phase (when
  /// cfg.enable_ledger is set; otherwise the scope is inert).
  [[nodiscard]] PhaseScope phase(const std::string& name);

  bool ledger_enabled() const { return cfg_.enable_ledger; }

  /// Phase labels in first-use order; index == phase id. Id 0 is the
  /// default "(main)" phase. Never shrinks until reset(). (A deque so the
  /// interned strings never move: kPhase trace spans point at them.)
  const std::deque<std::string>& phase_names() const { return phase_names_; }

  /// Rank's per-phase counter slices, indexed by phase id. May be shorter
  /// than phase_names() when the rank never entered later phases.
  const std::vector<PhaseCounters>& phase_counters(int rank) const;

  /// Eq. (2) on the measured run. The γe/βe/αe terms use total (summed)
  /// counts — physically every executed flop and transmitted word costs
  /// energy — and the δe/εe terms use p·(δe·M̄+εe)·T with M̄ the mean per-rank
  /// memory high-water mark. For the balanced algorithms in this repo this
  /// is exactly the paper's p·(γe·F + βe·W + αe·S + δe·M·T + εe·T).
  SimEnergy energy() const;

  /// Same but with an explicit per-rank M (e.g. the full configured memory,
  /// matching the paper's convention that you pay for the memory you hold).
  SimEnergy energy_with_memory(double mem_words_per_rank) const;

 private:
  friend class Comm;
  friend class CostHooks;
  friend class SimTransport;

  struct Rank {
    RankCounters counters;
    /// Per-phase slices of `counters` (cfg.enable_ledger); indexed by the
    /// Machine-wide phase id, grown on first touch.
    std::vector<PhaseCounters> ledger;
    int phase = 0;  ///< current phase id deltas are attributed to
    Mailbox mailbox;
    std::uint64_t next_seq = 0;  ///< arrival-order stamp for diagnostics
    bool waiting = false;        ///< blocked in recv for (wait_src, wait_tag)
    int wait_src = -1;
    int wait_tag = -1;
    /// Rendezvous delivery: while blocked, the receiver exposes its output
    /// payload; a matching same-size send copies straight into it (no queue,
    /// no pool buffer — and no copy at all in ghost mode) and reports the
    /// metadata below with `direct` set.
    Payload wait_out;
    bool direct = false;
    double direct_arrival = 0.0;
    double direct_msg_count = 0.0;
    /// Comm events (send or recv calls) issued by this rank so far; the
    /// index handed to FaultInjector::pause_before_event. Fixed per rank by
    /// program order, so pause placement is schedule-independent.
    std::uint64_t comm_events = 0;
    fiber::Scheduler::FiberId fid = -1;
  };

  /// Lease a payload buffer holding a copy of `data` from the pool's free
  /// list (steady-state traffic reuses capacity instead of allocating); the
  /// buffer comes back via release_payload once the message is delivered.
  /// One pool per Machine preserves the single-thread confinement above.
  std::vector<double> acquire_payload(std::span<const double> data) {
    return payload_pool_.acquire(data);
  }
  void release_payload(std::vector<double>&& buf) {
    payload_pool_.release(std::move(buf));
  }

  /// Find-or-add `name` in the phase registry; returns its id.
  int phase_id(const std::string& name);

  /// The (slot, current-phase) ledger slice, growing the slot's vector on
  /// demand. Only called when cfg_.enable_ledger is set. `slot` is a
  /// ranks_ index: the rank itself under per-fiber execution, the fold
  /// class id when folding.
  PhaseCounters& ledger_cell(int slot) {
    Rank& r = ranks_[static_cast<std::size_t>(slot)];
    if (r.ledger.size() <= static_cast<std::size_t>(r.phase)) {
      r.ledger.resize(static_cast<std::size_t>(r.phase) + 1);
    }
    return r.ledger[static_cast<std::size_t>(r.phase)];
  }

  // --- Folded execution (ExecMode::kFolded; see sim/fold.hpp) ---
  //
  // When folding, ranks_ holds one slot per fold class and run() spawns
  // each class representative's program on one fiber. Messages flow
  // through per-(sender-class, tag) append-only event logs instead of
  // per-rank mailboxes: a send appends one entry carrying exactly the
  // metadata a fiber-mode receiver would account (destination class,
  // sender's post-send clock as the arrival time, words, message count),
  // and each reader class consumes entries through its own cursor —
  // positionally for scatter sender classes, filtered by destination
  // class for uniform ones (FoldClass::scatter). Entries are immutable
  // once appended and cursors only move forward, so references stay valid
  // across fiber blocks.

  /// One logged send by a class representative.
  struct FoldEntry {
    int dst_class;     ///< fold class of the destination rank
    double arrival;    ///< sender's post-send clock (eager-send semantics)
    std::size_t words;
    double msg_count;  ///< ceil(k/m) charged by the sender; 0 for self-sends
  };
  struct FoldChannel {
    std::vector<FoldEntry> entries;
    /// Per reader class: index of the next entry to examine.
    std::vector<std::size_t> cursors;
    /// Fibers blocked waiting for a matching entry; woken on every append.
    std::vector<fiber::Scheduler::FiberId> waiters;
  };

  /// Evaluate the attached rotor schedule (fold->rotor() != nullptr) with
  /// an array sweep instead of spawning fibers; accumulates into
  /// rotor_counters_. See sim/fold_rotor.hpp.
  void run_rotor();

  /// ranks_ index for a world rank: its fold class when folding, itself
  /// otherwise.
  int slot_of(int rank) const {
    return fold_active_ ? cfg_.fold->class_of(rank) : rank;
  }
  /// The (sender class, tag) event log, created on first use with one
  /// cursor per reader class. Reference stays valid for the machine's
  /// lifetime (node-based map).
  FoldChannel& fold_channel(int sender_slot, int tag);
  /// Log one send from `sender_slot`'s representative and wake blocked
  /// readers of that channel.
  void fold_append(int sender_slot, int dst_rank, int tag, std::size_t words,
                   double msg_count, double arrival);

  MachineConfig cfg_;
  bool fold_active_ = false;
  std::vector<Rank> ranks_;
  /// Per-world-rank counters of rotor-schedule evaluation (empty until the
  /// first run() of a rotor-folding machine). When non-empty these are the
  /// machine's counters: rank_counters/totals/makespan read them directly.
  std::vector<RankCounters> rotor_counters_;
  std::unordered_map<std::uint64_t, FoldChannel> fold_channels_;
  PayloadPool payload_pool_;
  std::deque<std::string> phase_names_{"(main)"};
  Trace trace_;
  fiber::Scheduler* sched_ = nullptr;  ///< valid only during run()
};

}  // namespace alge::sim
