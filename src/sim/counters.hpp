// Per-rank event counters accumulated by the simulator. These are the F, W,
// S, M quantities the paper's bounds talk about, measured exactly on the
// executed algorithm.
#pragma once

#include <cstddef>

namespace alge::sim {

struct RankCounters {
  double flops = 0.0;       ///< F: flops executed
  double words_sent = 0.0;  ///< W: words handed to the network
  double msgs_sent = 0.0;   ///< S: messages (after splitting at cap m)
  double words_recv = 0.0;
  double msgs_recv = 0.0;
  /// Hop-weighted traffic (equals the plain counts on a fully connected
  /// network): the energy-relevant quantities on a torus, where each
  /// traversed link spends per-word energy.
  double words_hops = 0.0;
  double msgs_hops = 0.0;
  double clock = 0.0;             ///< virtual time (seconds)
  double idle_time = 0.0;         ///< time spent waiting on receives
  std::size_t mem_words = 0;      ///< currently registered live words
  std::size_t mem_highwater = 0;  ///< max of mem_words over the run

  /// Exact (bitwise on the doubles) equality — what the differential
  /// determinism harness asserts across schedules.
  bool operator==(const RankCounters&) const = default;
};

/// Per-(rank, phase) slice of the counters above, accumulated when
/// MachineConfig::enable_ledger is set. `time` is the rank's virtual-clock
/// advance while the phase was active (compute + send + recv
/// synchronization), so summing over phases reproduces the rank's final
/// clock; the residual up to the machine makespan is trailing idle that
/// obs::build_energy_ledger attributes to a synthetic tail phase.
struct PhaseCounters {
  double flops = 0.0;
  double words_sent = 0.0;
  double msgs_sent = 0.0;
  double words_hops = 0.0;
  double msgs_hops = 0.0;
  double time = 0.0;  ///< virtual clock advance while in the phase
  double idle = 0.0;  ///< subset of `time` spent waiting in recv
};

}  // namespace alge::sim
