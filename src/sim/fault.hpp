// Fault-injection hook for the simulator's message layer (src/chaos
// implements the seeded plans; the simulator only defines the contract).
//
// Faults model an unreliable network under a reliable transport: the
// simulated algorithm never sees a lost or duplicated payload — it sees the
// *cost* of the recovery. A dropped transmission is retransmitted after a
// timeout (with exponential backoff, bounded by RetryConfig::max_retries,
// after which the run aborts with SimError instead of hanging); a duplicate
// is sent, paid for, and discarded by the receiver's dedup logic; a delayed
// or reordered message shifts arrival times only. Every retry and duplicate
// goes through the ordinary counter path, so the injected W/S/time deltas
// flow into Eq. (1) time and Eq. (2) energy with no special cases.
//
// Determinism: Comm calls the injector from the sending/receiving fiber in
// that rank's program order. An injector whose decisions are a pure function
// of the FaultSite (seed-keyed hashing, as chaos::FaultPlan does) therefore
// injects the *same* faults under any fiber wake order, which is what lets
// the differential harness compare faulted runs across schedules.
#pragma once

#include <cstdint>

namespace alge::sim {

/// Reliable-transport tuning, used only when MachineConfig::faults is set.
struct RetryConfig {
  /// Retransmissions allowed per message before the run aborts (SimError).
  int max_retries = 8;
  /// Virtual seconds the sender waits before a retransmission; 0 picks
  /// 4·αt (a few link latencies, the classical rule of thumb).
  double timeout = 0.0;
  /// Timeout multiplier per successive retry of the same message.
  double backoff = 2.0;

  double resolve_timeout(double alpha_t) const {
    return timeout > 0.0 ? timeout : 4.0 * alpha_t;
  }
};

/// One logical point-to-point message as seen by the fault layer (before
/// splitting at the message-size cap m).
struct FaultSite {
  int src = 0;
  int dst = 0;
  int tag = 0;
  double words = 0.0;
};

/// What the fault layer injects into one message.
struct FaultDecision {
  /// Extra in-flight latency added to the arrival time (seconds). Costs
  /// the sender nothing; the receiver may idle longer.
  double delay = 0.0;
  /// Times the network loses the message before a transmission succeeds.
  /// Each loss costs the sender a full retransmission (words, messages,
  /// link time) plus the transport timeout.
  int drops = 0;
  /// Spurious extra copies delivered and discarded: each costs the sender
  /// a full transmission but never reaches the algorithm.
  int duplicates = 0;
  /// The message overtakes its queued predecessor on the same (src, tag)
  /// flow: the transport resequences, so the predecessor's arrival is
  /// delayed to this message's arrival (payload order is preserved). When
  /// no predecessor is pending the fault degrades to `reorder_window` of
  /// extra delay.
  bool overtake = false;
  double reorder_window = 0.0;

  bool any() const {
    return delay > 0.0 || drops > 0 || duplicates > 0 || overtake;
  }
};

/// Implemented by chaos::PlanInjector. One injector instance serves one
/// Machine (it is called from the Machine's own thread; see the threading
/// invariant in sim/machine.hpp).
class FaultInjector {
 public:
  virtual ~FaultInjector() = default;

  /// Faults for one message, called once per Comm::send to another rank,
  /// in the sender's program order.
  virtual FaultDecision on_message(const FaultSite& site) = 0;

  /// Virtual-time stall injected before the rank's k-th communication
  /// event (sends and receives both count; k is per rank, in program
  /// order). Models a paused/preempted rank; 0 = run on.
  virtual double pause_before_event(int rank, std::uint64_t k) = 0;
};

}  // namespace alge::sim
