#include "sim/comm.hpp"

#include <algorithm>
#include <cmath>

#include "support/common.hpp"

namespace alge::sim {

// --- Buffer ---

Buffer::Buffer(Comm& comm, std::size_t words)
    : comm_(&comm), words_(words), ghost_(comm.ghost()) {
  // Register before (not) allocating: high-water marks, the M cap and kMem
  // trace events are identical in both modes.
  comm_->register_memory(words);
  if (!ghost_) data_.assign(words, 0.0);
}

Buffer::~Buffer() {
  if (comm_ != nullptr) comm_->unregister_memory(words_);
}

Buffer::Buffer(Buffer&& o) noexcept
    : comm_(o.comm_), words_(o.words_), ghost_(o.ghost_),
      data_(std::move(o.data_)) {
  o.comm_ = nullptr;
  o.words_ = 0;
  o.data_.clear();
}

Buffer& Buffer::operator=(Buffer&& o) noexcept {
  if (this == &o) return *this;
  // Release this buffer's accounting before adopting the other's: the
  // words move with the storage, and each side's registration follows its
  // own Comm (self-assignment and moved-from destruction stay no-ops).
  if (comm_ != nullptr) comm_->unregister_memory(words_);
  comm_ = o.comm_;
  words_ = o.words_;
  ghost_ = o.ghost_;
  data_ = std::move(o.data_);
  o.comm_ = nullptr;
  o.words_ = 0;
  o.data_.clear();
  return *this;
}

// --- Comm ---

Comm::Comm(Machine& machine, int rank)
    : Comm(machine, rank, nullptr) {}

Comm::Comm(Machine& machine, int rank, transport::Transport* transport)
    : machine_(machine), rank_(rank), slot_(machine.slot_of(rank)),
      hooks_(machine, rank, slot_),
      sim_transport_(machine, rank, slot_),
      transport_(transport != nullptr ? transport : &sim_transport_) {}

int Comm::size() const { return machine_.cfg_.p; }

const core::MachineParams& Comm::params() const { return machine_.cfg_.params; }

double Comm::clock() const { return counters().clock; }

DataMode Comm::data_mode() const { return machine_.cfg_.data_mode; }

const RankCounters& Comm::counters() const {
  return machine_.ranks_[static_cast<std::size_t>(slot_)].counters;
}

RankCounters& Comm::mutable_counters() {
  return machine_.ranks_[static_cast<std::size_t>(slot_)].counters;
}

void Comm::compute(double flops) { hooks_.compute(flops); }

void Comm::fault_pause() {
  FaultInjector* fi = machine_.cfg_.faults.get();
  if (fi == nullptr) return;
  Machine::Rank& me = machine_.ranks_[static_cast<std::size_t>(slot_)];
  const double stall = fi->pause_before_event(rank_, me.comm_events++);
  if (stall <= 0.0) return;
  hooks_.pause(stall);
}

void Comm::send(int dst, ConstPayload data, int tag) {
  ALGE_REQUIRE(dst >= 0 && dst < size(), "send to invalid rank %d", dst);
  ALGE_REQUIRE(tag >= 0 && tag < kCollTag * 2, "tag %d out of range", tag);
  const bool gm = ghost();
  // A ghost payload has no bytes to materialize, so a full-data machine
  // cannot deliver it; a ghost machine accepts either kind and moves none.
  ALGE_REQUIRE(gm || !data.is_ghost(),
               "ghost payload sent on a full-data machine (rank %d -> %d)",
               rank_, dst);
  fault_pause();
  if (machine_.fold_active_) {
    fold_send(dst, data.size(), tag);
    return;
  }

  const double k = static_cast<double>(data.size());
  double nmsg = 0.0;
  FaultDecision fd;  // all-zero without an injector: the fault-free path
  if (dst != rank_) {
    if (FaultInjector* fi = machine_.cfg_.faults.get(); fi != nullptr) {
      fd = fi->on_message({rank_, dst, tag, k});
      if (fd.drops > machine_.cfg_.retry.max_retries) {
        throw SimError(strfmt(
            "rank %d -> %d tag %d: message dropped %d times, exceeding "
            "max_retries=%d — transport gives up",
            rank_, dst, tag, fd.drops, machine_.cfg_.retry.max_retries));
      }
    }
    nmsg = hooks_.send(k, dst, tag, fd);
  }
  // Costs are fully charged; only delivery remains. Self-sends always take
  // the simulator endpoint — a free local copy that must not touch a wire.
  transport::Transport& t =
      dst == rank_ ? static_cast<transport::Transport&>(sim_transport_)
                   : *transport_;
  t.deliver(dst, tag, data, counters().clock, nmsg, fd);
}

namespace {
struct RecvWait {
  int rank;
  int src;
  int tag;
};

std::string describe_fold_wait(const void* arg) {
  const auto* w = static_cast<const RecvWait*>(arg);
  return strfmt("rank %d (folded) waiting for recv from rank %d tag %d",
                w->rank, w->src, w->tag);
}
}  // namespace

void Comm::fold_send(int dst, std::size_t words, int tag) {
  // Charge the sender exactly as the fiber path would (self-sends stay
  // free), then log the event for the destination class. The entry's
  // arrival is the post-send clock — eager-send semantics.
  double nmsg = 0.0;
  if (dst != rank_) {
    nmsg = hooks_.send(static_cast<double>(words), dst, tag,
                       FaultDecision{});
  }
  machine_.fold_append(slot_, dst, tag, words, nmsg, counters().clock);
}

void Comm::fold_recv(int src, Payload out, int tag) {
  const FoldMap& fm = *machine_.cfg_.fold;
  const int src_class = fm.class_of(src);
  // Uniform sender classes address one destination class per schedule
  // position: readers skip entries bound for other classes. Scatter
  // classes address per-member destinations, so readers match entries
  // positionally (any entry is cost-congruent with the one "their"
  // sender produced).
  const bool scatter = fm.cls(src_class).scatter;
  Machine::FoldChannel& ch = machine_.fold_channel(src_class, tag);
  std::size_t& cur = ch.cursors[static_cast<std::size_t>(slot_)];
  const RecvWait wait{rank_, src, tag};
  for (;;) {
    if (!scatter) {
      while (cur < ch.entries.size() &&
             ch.entries[cur].dst_class != slot_) {
        ++cur;
      }
    }
    if (cur < ch.entries.size()) break;
    ALGE_CHECK(machine_.sched_ != nullptr, "recv outside a run");
    ch.waiters.push_back(
        machine_.ranks_[static_cast<std::size_t>(slot_)].fid);
    machine_.sched_->block(&describe_fold_wait, &wait);
  }
  const Machine::FoldEntry e = ch.entries[cur];
  ++cur;
  if (e.words != out.size()) {
    throw SimError(strfmt(
        "rank %d recv from %d tag %d: expected %zu words, message has "
        "%zu",
        rank_, src, tag, out.size(), e.words));
  }
  hooks_.recv_sync(e.arrival, src, tag);
  hooks_.recv_message(static_cast<double>(e.words), e.msg_count, src, tag);
}

void Comm::recv(int src, Payload out, int tag) {
  ALGE_REQUIRE(src >= 0 && src < size(), "recv from invalid rank %d", src);
  ALGE_REQUIRE(tag >= 0 && tag < kCollTag * 2, "tag %d out of range", tag);
  const bool gm = ghost();
  ALGE_REQUIRE(gm || !out.is_ghost(),
               "ghost payload received on a full-data machine (rank %d <- "
               "%d)",
               rank_, src);
  fault_pause();
  if (machine_.fold_active_) {
    fold_recv(src, out, tag);
    return;
  }
  // Delivery first, then accounting: the transport hands back the sender's
  // post-send clock and model message count, and the hooks charge exactly
  // what the queued or rendezvous path always charged (the message's word
  // count is checked equal to out.size() inside receive()).
  transport::Transport& t =
      src == rank_ ? static_cast<transport::Transport&>(sim_transport_)
                   : *transport_;
  const transport::RecvMeta meta = t.receive(src, tag, out);
  hooks_.recv_sync(meta.arrival, src, tag);
  hooks_.recv_message(static_cast<double>(out.size()), meta.msg_count, src,
                      tag);
}

void Comm::sendrecv(int dst, ConstPayload send_data, int src,
                    Payload recv_data, int tag) {
  send(dst, send_data, tag);
  recv(src, recv_data, tag);
}

Buffer Comm::alloc(std::size_t words) { return Buffer(*this, words); }

void Comm::register_memory(std::size_t words) {
  hooks_.mem_register(words);
}

void Comm::unregister_memory(std::size_t words) {
  hooks_.mem_unregister(words);
}

Machine::PhaseScope Comm::phase(const std::string& name) {
  const int id = machine_.phase_id(name);
  // The scope indexes counter storage, so it carries the slot; with
  // folding active traces are off, so the slot never leaks into a trace
  // event's rank field.
  Machine::Rank& me = machine_.ranks_[static_cast<std::size_t>(slot_)];
  std::vector<int> prev{me.phase};
  me.phase = id;
  return Machine::PhaseScope(
      &machine_, slot_, counters().clock, std::move(prev),
      machine_.phase_names_[static_cast<std::size_t>(id)].c_str());
}

// coll_begin/coll_end are called by every collective in collectives.cpp;
// they only touch the trace, never the counters, so enabling spans cannot
// perturb clocks or energy.
void Comm::coll_end(const char* name, double t0) {
  if (!machine_.cfg_.enable_trace) return;
  TraceEvent ev;
  ev.kind = TraceEvent::Kind::kColl;
  ev.rank = rank_;
  ev.t0 = t0;
  ev.t1 = counters().clock;
  ev.label = name;
  machine_.trace_.record(ev);
}

}  // namespace alge::sim
