#include "sim/comm.hpp"

#include <algorithm>
#include <cmath>

#include "support/common.hpp"

namespace alge::sim {

// --- Buffer ---

Buffer::Buffer(Comm& comm, std::size_t words) : comm_(&comm) {
  comm_->register_memory(words);
  data_.assign(words, 0.0);
}

Buffer::~Buffer() {
  if (comm_ != nullptr) comm_->unregister_memory(data_.size());
}

Buffer::Buffer(Buffer&& o) noexcept : comm_(o.comm_), data_(std::move(o.data_)) {
  o.comm_ = nullptr;
  o.data_.clear();
}

// --- Comm ---

Comm::Comm(Machine& machine, int rank) : machine_(machine), rank_(rank) {}

int Comm::size() const { return machine_.cfg_.p; }

const core::MachineParams& Comm::params() const { return machine_.cfg_.params; }

double Comm::clock() const { return counters().clock; }

const RankCounters& Comm::counters() const {
  return machine_.ranks_[static_cast<std::size_t>(rank_)].counters;
}

RankCounters& Comm::mutable_counters() {
  return machine_.ranks_[static_cast<std::size_t>(rank_)].counters;
}

void Comm::compute(double flops) {
  ALGE_REQUIRE(flops >= 0.0, "negative flop count");
  RankCounters& c = mutable_counters();
  const double t0 = c.clock;
  const double speed =
      machine_.cfg_.speed.empty()
          ? 1.0
          : machine_.cfg_.speed[static_cast<std::size_t>(rank_)];
  c.flops += flops;
  c.clock += machine_.cfg_.params.gamma_t * flops / speed;
  if (machine_.cfg_.enable_trace) {
    machine_.trace_.record({TraceEvent::Kind::kCompute, rank_, t0, c.clock,
                            -1, 0.0, 0});
  }
}

void Comm::send(int dst, std::span<const double> data, int tag) {
  ALGE_REQUIRE(dst >= 0 && dst < size(), "send to invalid rank %d", dst);
  ALGE_REQUIRE(tag >= 0 && tag < kCollTag * 2, "tag %d out of range", tag);

  RankCounters& c = mutable_counters();
  const double k = static_cast<double>(data.size());
  const double t0 = c.clock;
  double nmsg = 0.0;
  if (dst != rank_) {
    const double m = machine_.cfg_.params.max_msg_words;
    const int hops = machine_.cfg_.network
                         ? machine_.cfg_.network->hops(rank_, dst, size())
                         : 1;
    nmsg = std::max(1.0, std::ceil(k / m));
    c.words_sent += k;
    c.msgs_sent += nmsg;
    c.words_hops += k * hops;
    c.msgs_hops += nmsg * hops;
    // Wormhole routing: latency accumulates per hop, bandwidth is paid
    // once (the message pipelines through intermediate links).
    c.clock += nmsg * hops * machine_.cfg_.params.alpha_t +
               k * machine_.cfg_.params.beta_t;
    if (machine_.cfg_.enable_trace) {
      machine_.trace_.record({TraceEvent::Kind::kSend, rank_, t0, c.clock,
                              dst, k, tag});
    }
  }

  Machine::Message msg;
  msg.src = rank_;
  msg.tag = tag;
  msg.arrival = c.clock;  // available once the sender has pushed it out
  msg.msg_count = nmsg;
  msg.payload.assign(data.begin(), data.end());

  Machine::Rank& target = machine_.ranks_[static_cast<std::size_t>(dst)];
  target.mailbox.push_back(std::move(msg));
  if (target.waiting) {
    ALGE_CHECK(machine_.sched_ != nullptr, "send outside a run");
    machine_.sched_->unblock(target.fid);
  }
}

void Comm::recv(int src, std::span<double> out, int tag) {
  ALGE_REQUIRE(src >= 0 && src < size(), "recv from invalid rank %d", src);
  Machine::Rank& me = machine_.ranks_[static_cast<std::size_t>(rank_)];

  for (;;) {
    auto it = std::find_if(me.mailbox.begin(), me.mailbox.end(),
                           [&](const Machine::Message& m) {
                             return m.src == src && m.tag == tag;
                           });
    if (it != me.mailbox.end()) {
      if (it->payload.size() != out.size()) {
        throw SimError(strfmt(
            "rank %d recv from %d tag %d: expected %zu words, message has "
            "%zu",
            rank_, src, tag, out.size(), it->payload.size()));
      }
      RankCounters& c = mutable_counters();
      if (it->arrival > c.clock) {
        if (machine_.cfg_.enable_trace) {
          machine_.trace_.record({TraceEvent::Kind::kIdle, rank_, c.clock,
                                  it->arrival, src, 0.0, tag});
        }
        c.idle_time += it->arrival - c.clock;
        c.clock = it->arrival;
      }
      if (machine_.cfg_.enable_trace) {
        machine_.trace_.record({TraceEvent::Kind::kRecv, rank_, c.clock,
                                c.clock, src,
                                static_cast<double>(it->payload.size()),
                                tag});
      }
      c.words_recv += static_cast<double>(it->payload.size());
      c.msgs_recv += it->msg_count;
      std::copy(it->payload.begin(), it->payload.end(), out.begin());
      me.mailbox.erase(it);
      return;
    }
    ALGE_CHECK(machine_.sched_ != nullptr, "recv outside a run");
    me.waiting = true;
    machine_.sched_->block(
        strfmt("rank %d waiting for recv from rank %d tag %d", rank_, src,
               tag));
    me.waiting = false;
  }
}

void Comm::sendrecv(int dst, std::span<const double> send_data, int src,
                    std::span<double> recv_data, int tag) {
  send(dst, send_data, tag);
  recv(src, recv_data, tag);
}

Buffer Comm::alloc(std::size_t words) { return Buffer(*this, words); }

void Comm::register_memory(std::size_t words) {
  RankCounters& c = mutable_counters();
  c.mem_words += words;
  c.mem_highwater = std::max(c.mem_highwater, c.mem_words);
  const double cap = machine_.cfg_.params.mem_words;
  if (cap > 0.0 && static_cast<double>(c.mem_words) > cap) {
    throw SimError(strfmt(
        "rank %d out of memory: %zu words live, per-rank capacity M=%.0f",
        rank_, c.mem_words, cap));
  }
}

void Comm::unregister_memory(std::size_t words) {
  RankCounters& c = mutable_counters();
  ALGE_CHECK(c.mem_words >= words, "memory underflow on rank %d", rank_);
  c.mem_words -= words;
}

}  // namespace alge::sim
