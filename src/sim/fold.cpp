#include "sim/fold.hpp"

#include <limits>

#include "sim/fold_rotor.hpp"
#include "support/common.hpp"

namespace alge::sim {

FoldMap::FoldMap(int p, std::vector<FoldClass> classes,
                 std::function<int(int)> class_of)
    : p_(p), classes_(std::move(classes)), class_of_(std::move(class_of)) {
  ALGE_REQUIRE(p_ >= 1, "fold map needs at least one rank");
  ALGE_REQUIRE(!classes_.empty(), "fold map needs at least one class");
  ALGE_REQUIRE(class_of_ != nullptr, "fold map needs a class_of function");
}

FoldMap FoldMap::with_rotor(int p, std::shared_ptr<const RotorSchedule> rs) {
  ALGE_REQUIRE(rs != nullptr, "rotor fold map needs a schedule");
  ALGE_REQUIRE(rs->p() == p, "rotor schedule covers %d ranks, map wants %d",
               rs->p(), p);
  FoldMap fm(p, {FoldClass{0, p, false}}, [](int) { return 0; });
  fm.rotor_ = std::move(rs);
  return fm;
}

void FoldMap::validate() const {
  std::vector<int> seen_size(classes_.size(), 0);
  std::vector<int> seen_min(classes_.size(), std::numeric_limits<int>::max());
  for (int r = 0; r < p_; ++r) {
    const int c = class_of_(r);
    ALGE_REQUIRE(c >= 0 && c < num_classes(),
                 "rank %d maps to class %d outside [0, %d)", r, c,
                 num_classes());
    ++seen_size[static_cast<std::size_t>(c)];
    seen_min[static_cast<std::size_t>(c)] =
        std::min(seen_min[static_cast<std::size_t>(c)], r);
  }
  for (int c = 0; c < num_classes(); ++c) {
    const FoldClass& fc = cls(c);
    ALGE_REQUIRE(seen_size[static_cast<std::size_t>(c)] == fc.size,
                 "class %d has %d members, declared %d", c,
                 seen_size[static_cast<std::size_t>(c)], fc.size);
    ALGE_REQUIRE(seen_min[static_cast<std::size_t>(c)] == fc.rep,
                 "class %d minimum member %d != declared rep %d", c,
                 seen_min[static_cast<std::size_t>(c)], fc.rep);
    ALGE_REQUIRE(class_of_(fc.rep) == c,
                 "class %d rep %d maps back to class %d", c, fc.rep,
                 class_of_(fc.rep));
  }
}

}  // namespace alge::sim
