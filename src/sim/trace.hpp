// Execution tracing for the simulator: per-rank timelines of compute,
// send, receive and idle intervals in virtual time, plus a text renderer
// (an ASCII Gantt chart) and summary statistics. Enable with
// MachineConfig::enable_trace; traces answer "where does the critical path
// go" questions the aggregate counters cannot.
//
// Besides the stored event vector, a Trace can forward every event to a
// streaming TraceSink as it is recorded (optionally without storing it), so
// long runs can export — e.g. to Chrome trace_event JSON via
// obs::ChromeTraceWriter — without holding the whole timeline in memory.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace alge::sim {

struct TraceEvent {
  enum class Kind {
    kCompute,  ///< local flops: [t0, t1], flops set
    kSend,     ///< link time charged to the sender: [t0, t1], words/msgs set
    kRecv,     ///< instantaneous consumption at t0 == t1, words set
    kIdle,     ///< receiver waiting for an arrival: [t0, t1]
    kColl,     ///< collective span enclosing its point-to-point traffic
    kPhase,    ///< user phase span recorded by a Comm::phase scope
    kMem,      ///< memory watermark change; words = live words after it
    kFault,    ///< injected fault (label: drop/dup/delay/reorder/pause);
               ///< [t0, t1] covers any stall it caused, words/peer/tag set
  };
  Kind kind = Kind::kCompute;
  int rank = 0;
  double t0 = 0.0;  ///< virtual start time
  double t1 = 0.0;  ///< virtual end time
  int peer = -1;    ///< other rank for send/recv, -1 otherwise
  double words = 0.0;
  int tag = 0;
  double flops = 0.0;  ///< kCompute: flops executed in the interval
  double msgs = 0.0;   ///< kSend: messages after splitting at cap m
  /// kColl/kPhase: static-storage span name (collective op or phase label).
  const char* label = nullptr;
};

/// Streaming consumer of trace events, called synchronously from record()
/// in recording order (per rank this is virtual-time order).
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void on_event(const TraceEvent& ev) = 0;
};

class Trace {
 public:
  void record(const TraceEvent& ev) {
    if (sink_ != nullptr) sink_->on_event(ev);
    if (keep_events_) events_.push_back(ev);
  }
  void clear() { events_.clear(); }
  const std::vector<TraceEvent>& events() const { return events_; }
  bool empty() const { return events_.empty(); }

  /// Attach (or detach, with nullptr) a streaming sink. With keep_events
  /// false, events are forwarded to the sink only and not stored — the
  /// accessor methods then see an empty trace.
  void set_sink(TraceSink* sink, bool keep_events = true) {
    sink_ = sink;
    keep_events_ = (sink == nullptr) || keep_events;
  }
  TraceSink* sink() const { return sink_; }

  /// Events of one rank, in recording (= virtual time) order.
  std::vector<TraceEvent> rank_events(int rank) const;

  struct RankSummary {
    double compute_time = 0.0;
    double send_time = 0.0;
    double idle_time = 0.0;
    std::size_t sends = 0;
    std::size_t recvs = 0;
  };
  RankSummary summarize(int rank) const;

  /// ASCII Gantt chart: one row per rank, `width` buckets over [0, t_end];
  /// each bucket shows the dominant activity: '#' compute, '>' send,
  /// '.' idle, ' ' none.
  std::string render_timeline(int p, int width = 72) const;

 private:
  std::vector<TraceEvent> events_;
  TraceSink* sink_ = nullptr;
  bool keep_events_ = true;
};

}  // namespace alge::sim
