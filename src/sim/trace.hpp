// Execution tracing for the simulator: per-rank timelines of compute,
// send, receive and idle intervals in virtual time, plus a text renderer
// (an ASCII Gantt chart) and summary statistics. Enable with
// MachineConfig::enable_trace; traces answer "where does the critical path
// go" questions the aggregate counters cannot.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace alge::sim {

struct TraceEvent {
  enum class Kind { kCompute, kSend, kRecv, kIdle };
  Kind kind = Kind::kCompute;
  int rank = 0;
  double t0 = 0.0;  ///< virtual start time
  double t1 = 0.0;  ///< virtual end time
  int peer = -1;    ///< other rank for send/recv, -1 otherwise
  double words = 0.0;
  int tag = 0;
};

class Trace {
 public:
  void record(const TraceEvent& ev) { events_.push_back(ev); }
  void clear() { events_.clear(); }
  const std::vector<TraceEvent>& events() const { return events_; }
  bool empty() const { return events_.empty(); }

  /// Events of one rank, in recording (= virtual time) order.
  std::vector<TraceEvent> rank_events(int rank) const;

  struct RankSummary {
    double compute_time = 0.0;
    double send_time = 0.0;
    double idle_time = 0.0;
    std::size_t sends = 0;
    std::size_t recvs = 0;
  };
  RankSummary summarize(int rank) const;

  /// ASCII Gantt chart: one row per rank, `width` buckets over [0, t_end];
  /// each bucket shows the dominant activity: '#' compute, '>' send,
  /// '.' idle, ' ' none.
  std::string render_timeline(int p, int width = 72) const;

 private:
  std::vector<TraceEvent> events_;
};

}  // namespace alge::sim
