// Per-rank communication handle passed to every simulated program — the
// simulator's analogue of an MPI communicator plus a cost meter.
#pragma once

#include <span>
#include <vector>

#include "sim/cost_hooks.hpp"
#include "sim/group.hpp"
#include "sim/machine.hpp"
#include "sim/sim_transport.hpp"

namespace alge::sim {

/// RAII-tracked allocation of `words` doubles, counted against the rank's
/// memory high-water mark (and against the configured per-rank memory M,
/// when one is set — exceeding it throws SimError). Movable: the words move
/// with the storage, and move assignment releases the destination's old
/// registration first, so accounting is exact across reassignment.
///
/// On a ghost-mode machine (sim/payload.hpp) the words are registered —
/// memory high-water, the M cap and kMem trace events are identical to a
/// full run — but no storage is allocated. Dereferencing the absent data
/// (span()/data()/operator[]) is then an internal error in every build,
/// exactly like reading a poison-filled pool buffer; pass view() to the
/// Comm API instead, which works in both modes.
class Buffer {
 public:
  Buffer(Comm& comm, std::size_t words);
  ~Buffer();
  Buffer(Buffer&& o) noexcept;
  Buffer& operator=(Buffer&& o) noexcept;
  Buffer(const Buffer&) = delete;
  Buffer& operator=(const Buffer&) = delete;

  std::span<double> span() {
    require_data();
    return data_;
  }
  std::span<const double> span() const {
    require_data();
    return data_;
  }
  double* data() {
    require_data();
    return data_.data();
  }
  const double* data() const {
    require_data();
    return data_.data();
  }
  std::size_t size() const { return words_; }
  bool is_ghost() const { return ghost_; }
  double& operator[](std::size_t i) {
    require_data();
    return data_[i];
  }
  double operator[](std::size_t i) const {
    require_data();
    return data_[i];
  }

  /// Mode-appropriate payload view of the whole buffer: a real span in full
  /// mode, a sizes-only ghost view in ghost mode. Use .sub(off, len) for
  /// subranges.
  Payload view() {
    if (ghost_) return Payload::ghost(words_);
    return Payload(std::span<double>(data_));
  }
  ConstPayload view() const {
    if (ghost_) return ConstPayload::ghost(words_);
    return ConstPayload(std::span<const double>(data_));
  }

 private:
  /// Ghost poison guard (always on, release builds included): the bytes
  /// behind a ghost buffer do not exist, so any dereference is a bug.
  void require_data() const {
    ALGE_CHECK(!ghost_, "ghost Buffer dereferenced (%zu words have no "
               "storage; use view() for the Comm API)", words_);
  }

  Comm* comm_;
  std::size_t words_ = 0;
  bool ghost_ = false;
  std::vector<double> data_;
};

class Comm {
 public:
  Comm(Machine& machine, int rank);

  /// A Comm whose cross-rank traffic flows through `transport` instead of
  /// the machine's mailboxes — the real-backend entry point
  /// (transport/run.hpp). The machine still carries the cost model: every
  /// send/recv charges CostHooks exactly as a simulated run would, so the
  /// per-rank virtual clocks and W/S counters of a real run are
  /// bit-identical to the simulator's. Self-sends stay on the machine's
  /// mailbox (a send to self is a free local copy, never wire traffic).
  /// Null `transport` behaves exactly like the plain constructor.
  Comm(Machine& machine, int rank, transport::Transport* transport);

  int rank() const { return rank_; }
  int size() const;
  const core::MachineParams& params() const;
  double clock() const;
  const RankCounters& counters() const;

  /// The machine's data mode (see sim/payload.hpp). Algorithms branch on
  /// ghost() around data movement and local arithmetic only — every
  /// compute/send/recv/alloc call must run identically in both modes.
  DataMode data_mode() const;
  bool ghost() const { return data_mode() == DataMode::kGhost; }

  /// Advance the local clock by γt·flops and count F += flops.
  void compute(double flops);

  /// Eager (buffered) send; never blocks. Sends of more than m words are
  /// split into ceil(k/m) messages for both time and counter purposes.
  /// A send to self is a free local copy (no time, no counters).
  void send(int dst, ConstPayload data, int tag = 0);

  /// Blocking receive from a specific source and tag; `out.size()` must
  /// equal the payload size of the matching message. Matching is O(1):
  /// per-(src, tag) FIFO queues, not a mailbox scan.
  void recv(int src, Payload out, int tag = 0);

  /// send + recv, safe in exchange patterns because sends are eager.
  void sendrecv(int dst, ConstPayload send_data, int src, Payload recv_data,
                int tag = 0);

  // --- Collectives (binomial/ring/Bruck trees over point-to-point) ---
  // `root` is an index *within the group*. Every member must call with the
  // same group and root. See collectives.cpp for algorithms and costs.

  void barrier();                 ///< all ranks of the machine
  void barrier(const Group& g);
  void bcast(Payload data, int root, const Group& g);
  /// Pipelined ring broadcast: every rank (root included) sends the payload
  /// at most once (W ≤ k per rank vs the binomial root's k·log g), at the
  /// price of Θ(g + segments) latency. `segments` splits the payload for
  /// pipelining; 0 picks ~√ of the ring length.
  void bcast_ring(Payload data, int root, const Group& g, int segments = 0);
  void reduce_sum(ConstPayload in, Payload out, int root, const Group& g);
  void allreduce_sum(Payload inout, const Group& g);
  /// Recursive-doubling allreduce: S = log2 g rounds of full-payload
  /// exchanges (W = k·log2 g per rank) vs allreduce_sum's reduce+bcast
  /// (up to 2·k·log2 g at the tree roots, 2·log2 g latency).
  void allreduce_doubling(Payload inout, const Group& g);
  /// in: my block (k words) -> out: g.size()*k words in group index order.
  void allgather(ConstPayload in, Payload out, const Group& g);
  /// in/out: g.size() blocks of k words; block j of `in` goes to index j.
  /// Direct pairwise exchange: S = g-1 per rank, W = (g-1)·k.
  void alltoall(ConstPayload in, Payload out, const Group& g);
  /// Bruck all-to-all: S = ceil(log2 g), W ≈ (k·g/2)·log2 g.
  void alltoall_bruck(ConstPayload in, Payload out, const Group& g);
  /// Each member's k-word block collected at root (direct fan-in).
  void gather(ConstPayload in, Payload out, int root, const Group& g);
  void scatter(ConstPayload in, Payload out, int root, const Group& g);

  /// Allocate a tracked buffer (see Buffer).
  Buffer alloc(std::size_t words);

  /// Register/unregister words held outside Buffer (e.g. analytic
  /// footprints in tests). Prefer Buffer in algorithms.
  void register_memory(std::size_t words);
  void unregister_memory(std::size_t words);

  /// Enter energy-ledger phase `name` on the calling rank until the returned
  /// scope closes (see Machine::phase for the whole-machine variant and
  /// MachineConfig::enable_ledger for what is accumulated). When tracing is
  /// on, the scope also records a kPhase span over its virtual-time extent.
  [[nodiscard]] Machine::PhaseScope phase(const std::string& name);

  /// This rank's transport endpoints: the backend carrying cross-rank
  /// traffic, and the simulator endpoint that always carries self-sends
  /// (identical to transport() under the sim backend). Conformance reads
  /// their wire_stats() to separate wire traffic from self-traffic.
  const transport::Transport& transport() const { return *transport_; }
  const SimTransport& self_transport() const { return sim_transport_; }

 private:
  friend class Buffer;

  RankCounters& mutable_counters();
  /// Fault hook at the top of send/recv: counts the rank's comm event and
  /// applies any injected pause as a virtual-time stall (clock + idle).
  /// No-op without MachineConfig::faults.
  void fault_pause();
  /// Folded-execution message paths (Machine::fold_active()): sends append
  /// to the (sender-class, tag) event log after charging the usual cost
  /// through hooks_; recvs consume entries through the class cursor,
  /// blocking until a matching one exists.
  void fold_send(int dst, std::size_t words, int tag);
  void fold_recv(int src, Payload out, int tag);
  /// Collective-span helpers used by collectives.cpp: remember the clock at
  /// entry, record a kColl trace span [t0, now] labelled `name` on exit.
  double coll_begin() const { return counters().clock; }
  void coll_end(const char* name, double t0);
  /// Internal tag space for collectives, disjoint from user tags.
  static constexpr int kCollTag = 1 << 24;

  Machine& machine_;
  int rank_;  ///< world rank the program sees
  int slot_;  ///< counter/mailbox index: == rank_ unless folding
  /// All time/energy/ledger/trace accounting goes through this seam, so
  /// the fiber, folded and real-transport paths charge bit-identical
  /// costs: the transports below move bytes, never clocks or counters.
  CostHooks hooks_;
  /// The simulator's own delivery endpoint (mailboxes + rendezvous). The
  /// default backend, and the self-send path under every backend.
  SimTransport sim_transport_;
  /// Where cross-rank traffic goes: &sim_transport_ unless an external
  /// backend was injected via the three-argument constructor.
  transport::Transport* transport_;
};

}  // namespace alge::sim
