#include "sim/trace.hpp"

#include <algorithm>

#include "support/common.hpp"

namespace alge::sim {

std::vector<TraceEvent> Trace::rank_events(int rank) const {
  std::vector<TraceEvent> out;
  for (const TraceEvent& ev : events_) {
    if (ev.rank == rank) out.push_back(ev);
  }
  return out;
}

Trace::RankSummary Trace::summarize(int rank) const {
  RankSummary s;
  for (const TraceEvent& ev : events_) {
    if (ev.rank != rank) continue;
    const double dt = ev.t1 - ev.t0;
    switch (ev.kind) {
      case TraceEvent::Kind::kCompute:
        s.compute_time += dt;
        break;
      case TraceEvent::Kind::kSend:
        s.send_time += dt;
        ++s.sends;
        break;
      case TraceEvent::Kind::kRecv:
        ++s.recvs;
        break;
      case TraceEvent::Kind::kIdle:
        s.idle_time += dt;
        break;
      case TraceEvent::Kind::kColl:
      case TraceEvent::Kind::kPhase:
      case TraceEvent::Kind::kMem:
      case TraceEvent::Kind::kFault:
        // Envelopes, watermarks and fault markers: their time is already
        // counted by the point-to-point / idle events they overlap (or they
        // have no duration).
        break;
    }
  }
  return s;
}

std::string Trace::render_timeline(int p, int width) const {
  ALGE_REQUIRE(p >= 1 && width >= 1, "need positive rank count and width");
  double t_end = 0.0;
  for (const TraceEvent& ev : events_) t_end = std::max(t_end, ev.t1);
  if (t_end <= 0.0) t_end = 1.0;

  // Rank-major bucket occupancy; priority idle < send < compute so the
  // "work" wins ties within a bucket.
  auto level = [](TraceEvent::Kind k) {
    switch (k) {
      case TraceEvent::Kind::kIdle:
        return 1;
      case TraceEvent::Kind::kSend:
        return 2;
      case TraceEvent::Kind::kCompute:
        return 3;
      case TraceEvent::Kind::kRecv:
        return 0;  // instantaneous; never fills a bucket
      case TraceEvent::Kind::kColl:
      case TraceEvent::Kind::kPhase:
      case TraceEvent::Kind::kMem:
      case TraceEvent::Kind::kFault:
        return 0;  // envelopes/watermarks/fault markers; the enclosed (or
                   // co-recorded idle) events fill buckets
    }
    return 0;
  };
  std::vector<std::vector<int>> grid(
      static_cast<std::size_t>(p),
      std::vector<int>(static_cast<std::size_t>(width), 0));
  for (const TraceEvent& ev : events_) {
    if (ev.rank < 0 || ev.rank >= p) continue;
    const int lv = level(ev.kind);
    if (lv == 0 || ev.t1 <= ev.t0) continue;
    int b0 = static_cast<int>(ev.t0 / t_end * width);
    int b1 = static_cast<int>(ev.t1 / t_end * width);
    b0 = std::clamp(b0, 0, width - 1);
    b1 = std::clamp(b1, b0, width - 1);
    for (int b = b0; b <= b1; ++b) {
      int& cell = grid[static_cast<std::size_t>(ev.rank)]
                      [static_cast<std::size_t>(b)];
      cell = std::max(cell, lv);
    }
  }
  const char glyph[] = {' ', '.', '>', '#'};
  std::string out;
  for (int r = 0; r < p; ++r) {
    out += strfmt("rank %3d |", r);
    for (int b = 0; b < width; ++b) {
      out += glyph[grid[static_cast<std::size_t>(r)]
                       [static_cast<std::size_t>(b)]];
    }
    out += "|\n";
  }
  out += strfmt("          0%*s%.4g s  (# compute, > send, . idle)\n",
                width - 6, "", t_end);
  return out;
}

}  // namespace alge::sim
