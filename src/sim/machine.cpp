#include "sim/machine.hpp"

#include <algorithm>

#include "sim/comm.hpp"
#include "support/common.hpp"

namespace alge::sim {

Machine::Machine(MachineConfig cfg) : cfg_(std::move(cfg)) {
  ALGE_REQUIRE(cfg_.p >= 1, "machine needs at least one processor");
  cfg_.params.validate();
  if (!cfg_.speed.empty()) {
    ALGE_REQUIRE(cfg_.speed.size() == static_cast<std::size_t>(cfg_.p),
                 "speed vector must have exactly p entries");
    for (double s : cfg_.speed) {
      ALGE_REQUIRE(s > 0.0, "speed multipliers must be positive");
    }
  }
  ranks_.resize(static_cast<std::size_t>(cfg_.p));
}

Machine::~Machine() = default;

void Machine::reset() {
  for (auto& r : ranks_) {
    ALGE_CHECK(!r.waiting, "reset() during a run");
    r = Rank{};
  }
  phase_names_ = {"(main)"};
  trace_.clear();
}

int Machine::phase_id(const std::string& name) {
  for (std::size_t i = 0; i < phase_names_.size(); ++i) {
    if (phase_names_[i] == name) return static_cast<int>(i);
  }
  phase_names_.push_back(name);
  return static_cast<int>(phase_names_.size() - 1);
}

Machine::PhaseScope Machine::phase(const std::string& name) {
  ALGE_REQUIRE(sched_ == nullptr,
               "Machine::phase() inside run(); use Comm::phase from a "
               "simulated program");
  const int id = phase_id(name);
  std::vector<int> prev;
  prev.reserve(ranks_.size());
  for (auto& r : ranks_) {
    prev.push_back(r.phase);
    r.phase = id;
  }
  return PhaseScope(this, -1, 0.0, std::move(prev), nullptr);
}

Machine::PhaseScope::~PhaseScope() {
  if (m_ == nullptr) return;
  if (rank_ < 0) {
    for (std::size_t r = 0; r < m_->ranks_.size(); ++r) {
      m_->ranks_[r].phase = prev_[r];
    }
    return;
  }
  Rank& r = m_->ranks_[static_cast<std::size_t>(rank_)];
  if (m_->cfg_.enable_trace && name_ != nullptr) {
    TraceEvent ev;
    ev.kind = TraceEvent::Kind::kPhase;
    ev.rank = rank_;
    ev.t0 = t0_;
    ev.t1 = r.counters.clock;
    ev.label = name_;
    m_->trace_.record(ev);
  }
  r.phase = prev_.front();
}

const std::vector<PhaseCounters>& Machine::phase_counters(int rank) const {
  ALGE_REQUIRE(rank >= 0 && rank < cfg_.p, "rank %d out of range", rank);
  return ranks_[static_cast<std::size_t>(rank)].ledger;
}

void Machine::run(const std::function<void(Comm&)>& program) {
  ALGE_REQUIRE(program != nullptr, "program must be callable");
  ALGE_REQUIRE(sched_ == nullptr, "Machine::run() is not reentrant");

  fiber::Scheduler sched;
  sched.set_wake_policy(cfg_.wake_policy.get());
  sched_ = &sched;
  for (int r = 0; r < cfg_.p; ++r) {
    ranks_[static_cast<std::size_t>(r)].fid = sched.spawn(
        [this, r, &program] {
          Comm comm(*this, r);
          program(comm);
        },
        cfg_.stack_bytes);
  }
  try {
    sched.run();
  } catch (const fiber::DeadlockError& e) {
    sched_ = nullptr;
    for (auto& r : ranks_) r.waiting = false;
    throw SimError(e.what());
  } catch (...) {
    sched_ = nullptr;
    for (auto& r : ranks_) r.waiting = false;
    throw;
  }
  sched_ = nullptr;

  // A clean finish must not leave unconsumed traffic: that is a program bug
  // (mismatched send/recv counts) that would silently skew counters.
  for (int r = 0; r < cfg_.p; ++r) {
    const auto& mb = ranks_[static_cast<std::size_t>(r)].mailbox;
    if (!mb.empty()) {
      const Message* first = mb.oldest();
      throw SimError(strfmt(
          "rank %d finished with %zu unconsumed message(s); first is from "
          "rank %d tag %d (%zu words)",
          r, mb.pending(), first->src, first->tag, first->words));
    }
  }
}

double Machine::makespan() const {
  double t = 0.0;
  for (const auto& r : ranks_) t = std::max(t, r.counters.clock);
  return t;
}

const RankCounters& Machine::rank_counters(int rank) const {
  ALGE_REQUIRE(rank >= 0 && rank < cfg_.p, "rank %d out of range", rank);
  return ranks_[static_cast<std::size_t>(rank)].counters;
}

SimTotals Machine::totals() const {
  SimTotals t;
  for (const auto& r : ranks_) {
    const RankCounters& c = r.counters;
    t.flops_total += c.flops;
    t.words_total += c.words_sent;
    t.msgs_total += c.msgs_sent;
    t.words_hops_total += c.words_hops;
    t.msgs_hops_total += c.msgs_hops;
    t.flops_max = std::max(t.flops_max, c.flops);
    t.words_sent_max = std::max(t.words_sent_max, c.words_sent);
    t.msgs_sent_max = std::max(t.msgs_sent_max, c.msgs_sent);
    t.mem_highwater_max = std::max(t.mem_highwater_max, c.mem_highwater);
    t.mem_highwater_total += c.mem_highwater;
  }
  return t;
}

SimEnergy Machine::energy() const {
  const SimTotals t = totals();
  const double mean_mem = static_cast<double>(t.mem_highwater_total) /
                          static_cast<double>(cfg_.p);
  return energy_with_memory(mean_mem);
}

SimEnergy Machine::energy_with_memory(double mem_words_per_rank) const {
  const SimTotals t = totals();
  const double T = makespan();
  const core::MachineParams& mp = cfg_.params;
  SimEnergy e;
  e.makespan = T;
  // Summed counts are the physical energy: p·(γe·F_per_proc) == γe·F_total
  // for balanced work, but the summed form stays correct when it is not.
  e.breakdown.flops = mp.gamma_e * t.flops_total;
  // Hop-weighted traffic: every traversed link spends energy. Equal to the
  // plain counts on the default fully connected network.
  e.breakdown.words = mp.beta_e * t.words_hops_total;
  e.breakdown.messages = mp.alpha_e * t.msgs_hops_total;
  e.breakdown.memory =
      static_cast<double>(cfg_.p) * mp.delta_e * mem_words_per_rank * T;
  e.breakdown.leakage = static_cast<double>(cfg_.p) * mp.eps_e * T;
  return e;
}

}  // namespace alge::sim
