#include "sim/machine.hpp"

#include <algorithm>

#include "sim/comm.hpp"
#include "sim/fold_rotor.hpp"
#include "support/common.hpp"

namespace alge::sim {

Machine::Machine(MachineConfig cfg) : cfg_(std::move(cfg)) {
  ALGE_REQUIRE(cfg_.p >= 1, "machine needs at least one processor");
  cfg_.params.validate();
  if (!cfg_.speed.empty()) {
    ALGE_REQUIRE(cfg_.speed.size() == static_cast<std::size_t>(cfg_.p),
                 "speed vector must have exactly p entries");
    for (double s : cfg_.speed) {
      ALGE_REQUIRE(s > 0.0, "speed multipliers must be positive");
    }
  }
  ALGE_REQUIRE(
      cfg_.exec_mode != ExecMode::kFolded ||
          cfg_.data_mode == DataMode::kGhost,
      "ExecMode::kFolded requires DataMode::kGhost: folded execution "
      "replays cost deltas and cannot move data");
  if (cfg_.fold != nullptr) {
    ALGE_REQUIRE(cfg_.fold->p() == cfg_.p,
                 "fold map built for p=%d attached to a p=%d machine",
                 cfg_.fold->p(), cfg_.p);
  }
  // Folding only engages for configurations it can reproduce exactly.
  // Faults make individual ranks diverge (the divergent-rank fallback the
  // differential gate exercises); per-rank speeds break class congruence;
  // a routed network makes hop counts rank-pair-specific; traces record
  // per-rank events folding does not materialize. Each of these silently
  // degrades to per-fiber execution with identical results.
  fold_active_ = cfg_.exec_mode == ExecMode::kFolded &&
                 cfg_.fold != nullptr && !cfg_.fold->trivial() &&
                 cfg_.faults == nullptr && cfg_.speed.empty() &&
                 !cfg_.enable_trace && cfg_.network == nullptr;
  // Rotor schedules (position-parameterized folds, sim/fold_rotor.hpp) are
  // evaluated by array sweep, which does not materialize the per-phase
  // counter slices the energy ledger needs — one more fall-back condition.
  if (fold_active_ && cfg_.fold->rotor() != nullptr && cfg_.enable_ledger) {
    fold_active_ = false;
  }
  ranks_.resize(static_cast<std::size_t>(
      fold_active_ ? cfg_.fold->num_classes() : cfg_.p));
}

Machine::~Machine() = default;

void Machine::reset() {
  for (auto& r : ranks_) {
    ALGE_CHECK(!r.waiting, "reset() during a run");
    r = Rank{};
  }
  fold_channels_.clear();
  rotor_counters_.clear();
  phase_names_ = {"(main)"};
  trace_.clear();
}

int Machine::phase_id(const std::string& name) {
  for (std::size_t i = 0; i < phase_names_.size(); ++i) {
    if (phase_names_[i] == name) return static_cast<int>(i);
  }
  phase_names_.push_back(name);
  return static_cast<int>(phase_names_.size() - 1);
}

Machine::PhaseScope Machine::phase(const std::string& name) {
  ALGE_REQUIRE(sched_ == nullptr,
               "Machine::phase() inside run(); use Comm::phase from a "
               "simulated program");
  const int id = phase_id(name);
  std::vector<int> prev;
  prev.reserve(ranks_.size());
  for (auto& r : ranks_) {
    prev.push_back(r.phase);
    r.phase = id;
  }
  return PhaseScope(this, -1, 0.0, std::move(prev), nullptr);
}

Machine::PhaseScope::~PhaseScope() {
  if (m_ == nullptr) return;
  if (rank_ < 0) {
    for (std::size_t r = 0; r < m_->ranks_.size(); ++r) {
      m_->ranks_[r].phase = prev_[r];
    }
    return;
  }
  Rank& r = m_->ranks_[static_cast<std::size_t>(rank_)];
  if (m_->cfg_.enable_trace && name_ != nullptr) {
    TraceEvent ev;
    ev.kind = TraceEvent::Kind::kPhase;
    ev.rank = rank_;
    ev.t0 = t0_;
    ev.t1 = r.counters.clock;
    ev.label = name_;
    m_->trace_.record(ev);
  }
  r.phase = prev_.front();
}

const std::vector<PhaseCounters>& Machine::phase_counters(int rank) const {
  ALGE_REQUIRE(rank >= 0 && rank < cfg_.p, "rank %d out of range", rank);
  return ranks_[static_cast<std::size_t>(slot_of(rank))].ledger;
}

void Machine::run(const std::function<void(Comm&)>& program) {
  ALGE_REQUIRE(program != nullptr, "program must be callable");
  ALGE_REQUIRE(sched_ == nullptr, "Machine::run() is not reentrant");

  if (fold_active_ && cfg_.fold->rotor() != nullptr) {
    // Position-parameterized fold: the rotor schedule *is* the program's
    // cost structure, evaluated as an array sweep — no fibers, and the
    // program callable is never entered.
    run_rotor();
    return;
  }

  fiber::Scheduler sched;
  sched.set_wake_policy(cfg_.wake_policy.get());
  sched_ = &sched;
  // One fiber per slot: per rank normally, per fold class when folding
  // (the class representative's program stands in for every member).
  for (int s = 0; s < num_slots(); ++s) {
    const int r = fold_active_ ? cfg_.fold->cls(s).rep : s;
    ranks_[static_cast<std::size_t>(s)].fid = sched.spawn(
        [this, r, &program] {
          Comm comm(*this, r);
          program(comm);
        },
        cfg_.stack_bytes);
  }
  try {
    sched.run();
  } catch (const fiber::DeadlockError& e) {
    sched_ = nullptr;
    for (auto& r : ranks_) r.waiting = false;
    throw SimError(e.what());
  } catch (...) {
    sched_ = nullptr;
    for (auto& r : ranks_) r.waiting = false;
    throw;
  }
  sched_ = nullptr;

  // A clean finish must not leave unconsumed traffic: that is a program bug
  // (mismatched send/recv counts) that would silently skew counters.
  for (int s = 0; s < num_slots(); ++s) {
    const auto& mb = ranks_[static_cast<std::size_t>(s)].mailbox;
    if (!mb.empty()) {
      const Message* first = mb.oldest();
      throw SimError(strfmt(
          "rank %d finished with %zu unconsumed message(s); first is from "
          "rank %d tag %d (%zu words)",
          s, mb.pending(), first->src, first->tag, first->words));
    }
  }
  if (fold_active_) {
    // Same invariant for fold channels: on a uniform channel every entry
    // addressed to a class must have been consumed by that class's cursor.
    // (Scatter channels match positionally, so per-class leftovers cannot
    // be attributed and are covered by the class-size send/recv balance.)
    for (const auto& [key, ch] : fold_channels_) {
      const int sender = static_cast<int>(key >> 32);
      const int tag = static_cast<int>(key & 0xffffffffu);
      if (cfg_.fold->cls(sender).scatter) continue;
      for (int s = 0; s < num_slots(); ++s) {
        for (std::size_t i = ch.cursors[static_cast<std::size_t>(s)];
             i < ch.entries.size(); ++i) {
          if (ch.entries[i].dst_class != s) continue;
          throw SimError(strfmt(
              "fold class %d finished with unconsumed message(s) from "
              "class %d tag %d (%zu words)",
              s, sender, tag, ch.entries[i].words));
        }
      }
    }
  }
}

void Machine::run_rotor() {
  if (rotor_counters_.empty()) {
    rotor_counters_.assign(static_cast<std::size_t>(cfg_.p), RankCounters{});
  }
  rotor_run(*cfg_.fold->rotor(), cfg_, rotor_counters_);
}

Machine::FoldChannel& Machine::fold_channel(int sender_slot, int tag) {
  const std::uint64_t key =
      (static_cast<std::uint64_t>(static_cast<std::uint32_t>(sender_slot))
       << 32) |
      static_cast<std::uint32_t>(tag);
  auto [it, inserted] = fold_channels_.try_emplace(key);
  if (inserted) it->second.cursors.assign(ranks_.size(), 0);
  return it->second;
}

void Machine::fold_append(int sender_slot, int dst_rank, int tag,
                          std::size_t words, double msg_count,
                          double arrival) {
  FoldChannel& ch = fold_channel(sender_slot, tag);
  ch.entries.push_back(
      {cfg_.fold->class_of(dst_rank), arrival, words, msg_count});
  if (!ch.waiters.empty()) {
    ALGE_CHECK(sched_ != nullptr, "send outside a run");
    // Wake everyone parked on this channel; non-matching readers filter
    // the new entry and re-block. Appends only happen from running fibers
    // on the single scheduler thread, so push-then-block cannot race.
    for (fiber::Scheduler::FiberId fid : ch.waiters) sched_->unblock(fid);
    ch.waiters.clear();
  }
}

double Machine::makespan() const {
  double t = 0.0;
  if (!rotor_counters_.empty()) {
    for (const auto& c : rotor_counters_) t = std::max(t, c.clock);
    return t;
  }
  for (const auto& r : ranks_) t = std::max(t, r.counters.clock);
  return t;
}

const RankCounters& Machine::rank_counters(int rank) const {
  ALGE_REQUIRE(rank >= 0 && rank < cfg_.p, "rank %d out of range", rank);
  if (!rotor_counters_.empty()) {
    return rotor_counters_[static_cast<std::size_t>(rank)];
  }
  return ranks_[static_cast<std::size_t>(slot_of(rank))].counters;
}

SimTotals Machine::totals() const {
  SimTotals t;
  const auto add = [&t](const RankCounters& c) {
    t.flops_total += c.flops;
    t.words_total += c.words_sent;
    t.msgs_total += c.msgs_sent;
    t.words_hops_total += c.words_hops;
    t.msgs_hops_total += c.msgs_hops;
    t.flops_max = std::max(t.flops_max, c.flops);
    t.words_sent_max = std::max(t.words_sent_max, c.words_sent);
    t.msgs_sent_max = std::max(t.msgs_sent_max, c.msgs_sent);
    t.mem_highwater_max = std::max(t.mem_highwater_max, c.mem_highwater);
    t.mem_highwater_total += c.mem_highwater;
  };
  if (!rotor_counters_.empty()) {
    // Rotor evaluation already stores one RankCounters per world rank, in
    // world-rank order — the per-fiber summation order by construction.
    for (const auto& c : rotor_counters_) add(c);
  } else if (fold_active_) {
    // Accumulate in world-rank order through the fold map: every class
    // member contributes its (shared) class counters at its own position,
    // reproducing the per-fiber floating-point summation order exactly —
    // this is what makes folded totals and energy bit-identical, not just
    // close.
    for (int r = 0; r < cfg_.p; ++r) {
      add(ranks_[static_cast<std::size_t>(cfg_.fold->class_of(r))].counters);
    }
  } else {
    for (const auto& r : ranks_) add(r.counters);
  }
  return t;
}

SimEnergy Machine::energy() const {
  const SimTotals t = totals();
  const double mean_mem = static_cast<double>(t.mem_highwater_total) /
                          static_cast<double>(cfg_.p);
  return energy_with_memory(mean_mem);
}

SimEnergy Machine::energy_with_memory(double mem_words_per_rank) const {
  const SimTotals t = totals();
  const double T = makespan();
  const core::MachineParams& mp = cfg_.params;
  SimEnergy e;
  e.makespan = T;
  // Summed counts are the physical energy: p·(γe·F_per_proc) == γe·F_total
  // for balanced work, but the summed form stays correct when it is not.
  e.breakdown.flops = mp.gamma_e * t.flops_total;
  // Hop-weighted traffic: every traversed link spends energy. Equal to the
  // plain counts on the default fully connected network.
  e.breakdown.words = mp.beta_e * t.words_hops_total;
  e.breakdown.messages = mp.alpha_e * t.msgs_hops_total;
  e.breakdown.memory =
      static_cast<double>(cfg_.p) * mp.delta_e * mem_words_per_rank * T;
  e.breakdown.leakage = static_cast<double>(cfg_.p) * mp.eps_e * T;
  return e;
}

}  // namespace alge::sim
