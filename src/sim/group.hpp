// An ordered set of world ranks — a lightweight MPI-communicator analogue.
// Collectives take a Group plus a root *index within the group*, so the same
// tree code serves rows, columns, and depth fibers of a process grid.
#pragma once

#include <vector>

namespace alge::sim {

class Group {
 public:
  Group() = default;

  /// Group of the explicit rank list (must be non-empty, ranks distinct).
  static Group of(std::vector<int> ranks);

  /// {begin, begin+stride, ..., begin+(count-1)*stride}.
  static Group strided(int begin, int count, int stride);

  /// {0, 1, ..., p-1}.
  static Group world(int p);

  int size() const { return static_cast<int>(ranks_.size()); }
  int world_rank(int index) const;
  /// Index of a world rank inside this group, or -1 if absent.
  int index_of(int world_rank) const;
  bool contains(int world_rank) const { return index_of(world_rank) >= 0; }

  const std::vector<int>& ranks() const { return ranks_; }

 private:
  std::vector<int> ranks_;
};

}  // namespace alge::sim
