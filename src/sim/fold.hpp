// Symmetry folding: collapse SPMD ranks with congruent communication
// schedules into equivalence classes so a ghost run executes one fiber per
// *class* instead of one per rank.
//
// A FoldMap partitions the p world ranks into classes whose members are
// *fold-congruent*: they execute the same sequence of compute / alloc /
// send / recv events, with identical flop counts, payload sizes and tags,
// and with every peer's *class* (not its rank) determined by the event's
// position in the schedule. Under that condition every member of a class
// carries bit-identical RankCounters through the whole run, so it suffices
// to execute the class representative and replay its per-event cost deltas
// for the others — which is what Machine does in ExecMode::kFolded (see
// machine.hpp for the message-channel mechanics and the fallback rules).
//
// The map is pure geometry: algorithms provide (p, rank) -> class functions
// derived from their schedule structure (src/algs/foldmaps.hpp), and a
// differential harness (chaos::fold_explore) plus a trace-based property
// test (tests/test_fold.cpp) verify the congruence claim against per-fiber
// execution rather than trusting it.
#pragma once

#include <functional>
#include <memory>
#include <vector>

namespace alge::sim {

struct RotorSchedule;

/// How a Machine executes its p rank programs (MachineConfig::exec_mode).
enum class ExecMode {
  /// One fiber per rank — the default, and the only mode that can move
  /// data. Every other execution mode is measured against this one.
  kFibers,
  /// One fiber per fold-equivalence class (requires DataMode::kGhost and a
  /// MachineConfig::fold map). Cost signatures are bit-identical to kFibers
  /// at every p where both execute; configurations folding cannot represent
  /// exactly (faults, per-rank speeds, tracing, a routed network, or a
  /// trivial map) transparently fall back to per-fiber execution.
  kFolded,
};

struct FoldClass {
  int rep = 0;   ///< lowest world rank of the class — the member executed
  int size = 0;  ///< number of world ranks in the class
  /// Destination semantics of this class's sends, used by channel readers
  /// (see Machine): false (uniform) = at each schedule position every
  /// member addresses the same destination *class*, so a reader skips
  /// entries not addressed to its own class; true (scatter) = members
  /// address per-member-varying classes (e.g. TSQR's binomial fan-in,
  /// where rank me sends to me - 2^nu), so readers match positionally
  /// without destination filtering.
  bool scatter = false;
};

/// Immutable partition of [0, p) into fold classes. class_of must be O(1)-ish
/// and allocation-free: Machine::totals() calls it once per world rank to
/// reproduce the per-fiber rank-order floating-point summation exactly.
class FoldMap {
 public:
  FoldMap(int p, std::vector<FoldClass> classes,
          std::function<int(int)> class_of);

  /// Position-parameterized fold: a single class covering all p ranks,
  /// carrying a rotor schedule (sim/fold_rotor.hpp) that Machine evaluates
  /// with an array sweep instead of channel replay. Covers schedules whose
  /// peers *rotate* with the schedule position (SUMMA/LU broadcast roots,
  /// 2.5D skews), which the per-position class semantics of FoldClass
  /// cannot fold.
  static FoldMap with_rotor(int p, std::shared_ptr<const RotorSchedule> rs);

  int p() const { return p_; }
  int num_classes() const { return static_cast<int>(classes_.size()); }
  int class_of(int rank) const { return class_of_(rank); }
  const FoldClass& cls(int c) const {
    return classes_[static_cast<std::size_t>(c)];
  }
  /// Folding cannot help: every class is a singleton (the fold machine
  /// would spawn p fibers anyway, so Machine falls back to kFibers).
  /// Rotor maps never fall back on this rule — the array sweep spawns no
  /// fibers at all.
  bool trivial() const {
    return rotor_ == nullptr && num_classes() >= p_;
  }

  /// Non-null when this map folds via a rotor schedule; Machine evaluates
  /// it in place of the channel-replay machinery.
  const RotorSchedule* rotor() const { return rotor_.get(); }

  /// O(p) structural check used by tests and the fold builders at small p:
  /// class ids in range, reps self-consistent (class_of(rep) == id, rep is
  /// the minimum member), sizes exact. Throws on violation.
  void validate() const;

 private:
  int p_;
  std::vector<FoldClass> classes_;
  std::function<int(int)> class_of_;
  std::shared_ptr<const RotorSchedule> rotor_;
};

}  // namespace alge::sim
