// Collective operations built from point-to-point messages, so their word
// and message counts are exactly what a real implementation would pay:
//
//   bcast / reduce_sum : binomial tree, S = ceil(log2 g) on the critical
//                        path, W = k per tree edge.
//   allreduce_sum      : reduce to index 0 + bcast.
//   allgather          : ring, S = g-1, W = (g-1)·k per rank.
//   alltoall           : direct pairwise exchange, S = g-1, W = (g-1)·k.
//   alltoall_bruck     : Bruck, S = ceil(log2 g), W ≈ (k·g/2)·log2 g.
//   gather / scatter   : direct fan-in/fan-out at the root.
//   barrier            : 0-word reduce + bcast.
//
// Reduction arithmetic is charged as real flops through compute(), so a
// simulated reduce also contributes to F.
//
// Ghost mode (sim/payload.hpp): every send/recv/compute call below runs
// with identical sizes and granularity in both modes — only the scratch
// allocations, copies and reduction arithmetic are skipped. Transfer sizes
// that full mode reads off a packed scratch vector (e.g. Bruck's send
// buffer) are computed from the same index lists ghost mode still builds.
#include <algorithm>
#include <cmath>
#include <vector>

#include "sim/comm.hpp"
#include "support/common.hpp"

namespace alge::sim {

namespace {
// Tags for the internal collective traffic; disjoint from user tags and from
// one another so interleaved collectives on different groups cannot collide
// with user messages.
enum CollOp : int {
  kBarrier = 0,
  kBcast,
  kReduce,
  kAllgather,
  kAlltoall,
  kBruck,
  kGather,
  kScatter,
  kBcastRing,
  kAllreduceDoubling,
};
}  // namespace

void Comm::barrier() { barrier(Group::world(size())); }

void Comm::barrier(const Group& g) {
  const int idx = g.index_of(rank_);
  ALGE_REQUIRE(idx >= 0, "rank %d not in barrier group", rank_);
  const int n = g.size();
  const int tag = kCollTag + kBarrier;
  const double ct0 = coll_begin();
  // Binomial fan-in to index 0, then binomial fan-out; empty payloads.
  Payload none;
  for (int mask = 1; mask < n; mask <<= 1) {
    if (idx & mask) {
      send(g.world_rank(idx - mask), none, tag);
      break;
    }
    if (idx + mask < n) recv(g.world_rank(idx + mask), none, tag);
  }
  int mask = 1;
  while (mask < n) {
    if (idx & mask) {
      recv(g.world_rank(idx - mask), none, tag);
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if (idx + mask < n && !(idx & (mask - 1))) {
      send(g.world_rank(idx + mask), none, tag);
    }
    mask >>= 1;
  }
  coll_end("barrier", ct0);
}

void Comm::bcast(Payload data, int root, const Group& g) {
  const int idx = g.index_of(rank_);
  ALGE_REQUIRE(idx >= 0, "rank %d not in bcast group", rank_);
  ALGE_REQUIRE(root >= 0 && root < g.size(), "bcast root %d out of range",
               root);
  const int n = g.size();
  const int tag = kCollTag + kBcast;
  const double ct0 = coll_begin();
  const int vr = (idx - root + n) % n;
  auto world_of = [&](int rel) { return g.world_rank((rel + root) % n); };

  int mask = 1;
  while (mask < n) {
    if (vr & mask) {
      recv(world_of(vr - mask), data, tag);
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if (vr + mask < n && !(vr & (mask - 1))) {
      send(world_of(vr + mask), data, tag);
    }
    mask >>= 1;
  }
  coll_end("bcast", ct0);
}

void Comm::bcast_ring(Payload data, int root, const Group& g, int segments) {
  const int idx = g.index_of(rank_);
  ALGE_REQUIRE(idx >= 0, "rank %d not in bcast group", rank_);
  ALGE_REQUIRE(root >= 0 && root < g.size(), "bcast root %d out of range",
               root);
  ALGE_REQUIRE(segments >= 0, "segment count must be non-negative");
  const int n = g.size();
  const double ct0 = coll_begin();
  if (n == 1 || data.empty()) {
    coll_end("bcast_ring", ct0);
    return;
  }
  const int tag = kCollTag + kBcastRing;
  if (segments == 0) {
    // Balance pipeline fill (n-2 hops) against per-segment latency.
    segments = static_cast<int>(std::max(
        1.0, std::min<double>(static_cast<double>(data.size()),
                              std::ceil(std::sqrt(n)))));
  }
  segments = std::min<int>(segments, static_cast<int>(data.size()));
  const int vr = (idx - root + n) % n;
  const int next = g.world_rank((idx + 1) % n);
  const int prev = g.world_rank((idx - 1 + n) % n);
  const std::size_t base = data.size() / static_cast<std::size_t>(segments);
  const std::size_t rem = data.size() % static_cast<std::size_t>(segments);
  std::size_t off = 0;
  for (int s = 0; s < segments; ++s) {
    const std::size_t len = base + (static_cast<std::size_t>(s) < rem ? 1 : 0);
    const Payload chunk = data.sub(off, len);
    off += len;
    if (vr != 0) recv(prev, chunk, tag);
    // Everyone forwards except the last rank before the root on the ring.
    if (vr != n - 1) send(next, chunk, tag);
  }
  coll_end("bcast_ring", ct0);
}

void Comm::reduce_sum(ConstPayload in, Payload out, int root, const Group& g) {
  const int idx = g.index_of(rank_);
  ALGE_REQUIRE(idx >= 0, "rank %d not in reduce group", rank_);
  ALGE_REQUIRE(root >= 0 && root < g.size(), "reduce root %d out of range",
               root);
  const int n = g.size();
  const int tag = kCollTag + kReduce;
  const bool gm = ghost();
  const std::size_t k = in.size();
  const double ct0 = coll_begin();
  const int vr = (idx - root + n) % n;
  auto world_of = [&](int rel) { return g.world_rank((rel + root) % n); };

  std::vector<double> acc;
  std::vector<double> tmp;
  if (!gm) {
    acc.assign(in.span().begin(), in.span().end());
    tmp.resize(k);
  }
  for (int mask = 1; mask < n; mask <<= 1) {
    if (vr & mask) {
      send(world_of(vr - mask),
           gm ? ConstPayload::ghost(k) : ConstPayload(acc), tag);
      break;
    }
    if (vr + mask < n) {
      recv(world_of(vr + mask), gm ? Payload::ghost(k) : Payload(tmp), tag);
      if (!gm) {
        for (std::size_t i = 0; i < acc.size(); ++i) acc[i] += tmp[i];
      }
      compute(static_cast<double>(k));
    }
  }
  if (vr == 0) {
    ALGE_REQUIRE(out.size() == in.size(),
                 "reduce output size %zu != input size %zu", out.size(),
                 in.size());
    if (!gm) std::copy(acc.begin(), acc.end(), out.span().begin());
  }
  coll_end("reduce_sum", ct0);
}

void Comm::allreduce_sum(Payload inout, const Group& g) {
  const double ct0 = coll_begin();
  const bool gm = ghost();
  std::vector<double> result;
  if (!gm) result.resize(inout.size());
  reduce_sum(inout, gm ? Payload::ghost(inout.size()) : Payload(result), 0,
             g);
  if (!gm && g.index_of(rank_) == 0) {
    std::copy(result.begin(), result.end(), inout.span().begin());
  }
  bcast(inout, 0, g);
  coll_end("allreduce_sum", ct0);
}

void Comm::allreduce_doubling(Payload inout, const Group& g) {
  const int idx = g.index_of(rank_);
  ALGE_REQUIRE(idx >= 0, "rank %d not in allreduce group", rank_);
  const int n = g.size();
  const int tag = kCollTag + kAllreduceDoubling;
  const bool gm = ghost();
  const std::size_t k = inout.size();
  const double ct0 = coll_begin();
  // Largest power of two <= n; the remainder folds into [0, r) first.
  int r = 1;
  while (r * 2 <= n) r *= 2;
  const int rem = n - r;
  std::vector<double> tmp;
  if (!gm) tmp.resize(k);
  const Payload tmp_view = gm ? Payload::ghost(k) : Payload(tmp);
  auto absorb = [&] {
    if (!gm) {
      const std::span<double> io = inout.span();
      for (std::size_t i = 0; i < tmp.size(); ++i) io[i] += tmp[i];
    }
    compute(static_cast<double>(k));
  };

  if (idx >= r) {
    // Fold my contribution into my pair and wait for the final result.
    send(g.world_rank(idx - r), inout, tag);
    recv(g.world_rank(idx - r), inout, tag);
    coll_end("allreduce_doubling", ct0);
    return;
  }
  if (idx < rem) {
    recv(g.world_rank(idx + r), tmp_view, tag);
    absorb();
  }
  for (int mask = 1; mask < r; mask <<= 1) {
    const int partner = idx ^ mask;
    sendrecv(g.world_rank(partner), inout, g.world_rank(partner), tmp_view,
             tag);
    absorb();
  }
  if (idx < rem) send(g.world_rank(idx + r), inout, tag);
  coll_end("allreduce_doubling", ct0);
}

void Comm::allgather(ConstPayload in, Payload out, const Group& g) {
  const int idx = g.index_of(rank_);
  ALGE_REQUIRE(idx >= 0, "rank %d not in allgather group", rank_);
  const int n = g.size();
  const std::size_t k = in.size();
  ALGE_REQUIRE(out.size() == k * static_cast<std::size_t>(n),
               "allgather output size %zu != %d * %zu", out.size(), n, k);
  const int tag = kCollTag + kAllgather;
  const bool gm = ghost();
  const double ct0 = coll_begin();

  auto block = [&](int j) {
    return out.sub(static_cast<std::size_t>(j) * k, k);
  };
  if (!gm) {
    const std::span<const double> self = in.span();
    std::copy(self.begin(), self.end(), block(idx).span().begin());
  }
  // Ring: step s passes block (idx - s) to the right neighbor.
  const int right = g.world_rank((idx + 1) % n);
  const int left = g.world_rank((idx - 1 + n) % n);
  for (int s = 0; s < n - 1; ++s) {
    const int send_block = (idx - s + n) % n;
    const int recv_block = (idx - s - 1 + 2 * n) % n;
    sendrecv(right, block(send_block), left, block(recv_block), tag);
  }
  coll_end("allgather", ct0);
}

void Comm::alltoall(ConstPayload in, Payload out, const Group& g) {
  const int idx = g.index_of(rank_);
  ALGE_REQUIRE(idx >= 0, "rank %d not in alltoall group", rank_);
  const int n = g.size();
  ALGE_REQUIRE(in.size() == out.size() && in.size() % n == 0,
               "alltoall buffers must hold g equal blocks");
  const std::size_t k = in.size() / static_cast<std::size_t>(n);
  const int tag = kCollTag + kAlltoall;
  const bool gm = ghost();
  const double ct0 = coll_begin();

  auto in_block = [&](int j) {
    return in.sub(static_cast<std::size_t>(j) * k, k);
  };
  auto out_block = [&](int j) {
    return out.sub(static_cast<std::size_t>(j) * k, k);
  };
  if (!gm) {
    const std::span<const double> self = in_block(idx).span();
    std::copy(self.begin(), self.end(), out_block(idx).span().begin());
  }
  for (int s = 1; s < n; ++s) {
    const int dst = (idx + s) % n;
    const int src = (idx - s + n) % n;
    sendrecv(g.world_rank(dst), in_block(dst), g.world_rank(src),
             out_block(src), tag);
  }
  coll_end("alltoall", ct0);
}

void Comm::alltoall_bruck(ConstPayload in, Payload out, const Group& g) {
  const int idx = g.index_of(rank_);
  ALGE_REQUIRE(idx >= 0, "rank %d not in alltoall group", rank_);
  const int n = g.size();
  ALGE_REQUIRE(in.size() == out.size() && in.size() % n == 0,
               "alltoall buffers must hold g equal blocks");
  const std::size_t k = in.size() / static_cast<std::size_t>(n);
  const int tag = kCollTag + kBruck;
  const bool gm = ghost();
  const double ct0 = coll_begin();

  // Phase 1: local rotation so block 0 is my own.
  std::vector<double> tmp;
  if (!gm) {
    tmp.resize(in.size());
    for (int i = 0; i < n; ++i) {
      const int src_block = (idx + i) % n;
      std::copy_n(in.span().begin() + static_cast<std::ptrdiff_t>(src_block) *
                                          static_cast<std::ptrdiff_t>(k),
                  k,
                  tmp.begin() + static_cast<std::ptrdiff_t>(i) *
                                    static_cast<std::ptrdiff_t>(k));
    }
  }
  // Phase 2: log2 rounds; round `pof2` ships every block whose index has
  // that bit set. Ghost mode keeps the `moved` index list — it is what
  // determines the transfer size full mode reads off the packed buffer.
  std::vector<double> sbuf;
  std::vector<double> rbuf;
  for (int pof2 = 1; pof2 < n; pof2 <<= 1) {
    sbuf.clear();
    std::vector<int> moved;
    for (int i = 0; i < n; ++i) {
      if (i & pof2) {
        moved.push_back(i);
        if (!gm) {
          sbuf.insert(sbuf.end(),
                      tmp.begin() + static_cast<std::ptrdiff_t>(i) *
                                        static_cast<std::ptrdiff_t>(k),
                      tmp.begin() + static_cast<std::ptrdiff_t>(i + 1) *
                                        static_cast<std::ptrdiff_t>(k));
        }
      }
    }
    const std::size_t xfer = moved.size() * k;
    if (!gm) rbuf.resize(xfer);
    const int dst = g.world_rank((idx + pof2) % n);
    const int src = g.world_rank((idx - pof2 + n) % n);
    sendrecv(dst, gm ? ConstPayload::ghost(xfer) : ConstPayload(sbuf), src,
             gm ? Payload::ghost(xfer) : Payload(rbuf), tag);
    if (!gm) {
      for (std::size_t b = 0; b < moved.size(); ++b) {
        std::copy_n(rbuf.begin() + static_cast<std::ptrdiff_t>(b) *
                                       static_cast<std::ptrdiff_t>(k),
                    k,
                    tmp.begin() + static_cast<std::ptrdiff_t>(moved[b]) *
                                      static_cast<std::ptrdiff_t>(k));
      }
    }
  }
  // Phase 3: inverse rotation into the output.
  if (!gm) {
    for (int i = 0; i < n; ++i) {
      const int dst_block = (idx - i + n) % n;
      std::copy_n(tmp.begin() + static_cast<std::ptrdiff_t>(i) *
                                    static_cast<std::ptrdiff_t>(k),
                  k,
                  out.span().begin() + static_cast<std::ptrdiff_t>(dst_block) *
                                           static_cast<std::ptrdiff_t>(k));
    }
  }
  coll_end("alltoall_bruck", ct0);
}

void Comm::gather(ConstPayload in, Payload out, int root, const Group& g) {
  const int idx = g.index_of(rank_);
  ALGE_REQUIRE(idx >= 0, "rank %d not in gather group", rank_);
  const int n = g.size();
  const std::size_t k = in.size();
  const int tag = kCollTag + kGather;
  const bool gm = ghost();
  const double ct0 = coll_begin();
  if (idx == root) {
    ALGE_REQUIRE(out.size() == k * static_cast<std::size_t>(n),
                 "gather output size %zu != %d * %zu", out.size(), n, k);
    for (int j = 0; j < n; ++j) {
      const Payload dst = out.sub(static_cast<std::size_t>(j) * k, k);
      if (j == idx) {
        if (!gm) {
          const std::span<const double> self = in.span();
          std::copy(self.begin(), self.end(), dst.span().begin());
        }
      } else {
        recv(g.world_rank(j), dst, tag);
      }
    }
  } else {
    send(g.world_rank(root), in, tag);
  }
  coll_end("gather", ct0);
}

void Comm::scatter(ConstPayload in, Payload out, int root, const Group& g) {
  const int idx = g.index_of(rank_);
  ALGE_REQUIRE(idx >= 0, "rank %d not in scatter group", rank_);
  const int n = g.size();
  const std::size_t k = out.size();
  const int tag = kCollTag + kScatter;
  const bool gm = ghost();
  const double ct0 = coll_begin();
  if (idx == root) {
    ALGE_REQUIRE(in.size() == k * static_cast<std::size_t>(n),
                 "scatter input size %zu != %d * %zu", in.size(), n, k);
    for (int j = 0; j < n; ++j) {
      const ConstPayload src = in.sub(static_cast<std::size_t>(j) * k, k);
      if (j == idx) {
        if (!gm) {
          std::copy(src.span().begin(), src.span().end(),
                    out.span().begin());
        }
      } else {
        send(g.world_rank(j), src, tag);
      }
    }
  } else {
    recv(g.world_rank(root), out, tag);
  }
  coll_end("scatter", ct0);
}

}  // namespace alge::sim
