// Free-list pool for message payload buffers, owned by a Machine so the
// single-thread confinement documented in sim/machine.hpp carries over.
// Steady-state traffic reuses heap capacity instead of allocating: acquire
// hands out a recycled vector, release takes it back once the message is
// delivered.
//
// A lease is a plain std::vector, so two bugs are structurally possible and
// invisible in release builds: returning the same storage twice (the pool
// would then hand one buffer to two messages) and touching storage after
// returning it (the next lease silently corrupts, or reads, stale traffic).
// With `checked` on — the default in debug builds — both are caught: a
// released buffer is poison-filled and remembered by address, a second
// release of the same storage throws, and a poison mismatch on acquire
// means someone wrote through a stale handle. Checked mode is a runtime
// flag (not an #ifdef) so release-built tests can still exercise the guard
// by constructing PayloadPool(true).
#pragma once

#include <bit>
#include <cstdint>
#include <span>
#include <vector>

#include "support/common.hpp"

namespace alge::sim {

class PayloadPool {
 public:
#ifdef NDEBUG
  static constexpr bool kCheckedByDefault = false;
#else
  static constexpr bool kCheckedByDefault = true;
#endif

  explicit PayloadPool(bool checked = kCheckedByDefault)
      : checked_(checked) {}

  /// Lease a buffer holding a copy of `data`. assign() reuses the pooled
  /// capacity: one copy, no allocation once the pool has warmed up to the
  /// traffic's message sizes.
  std::vector<double> acquire(std::span<const double> data) {
    std::vector<double> buf;
    if (!free_.empty()) {
      buf = std::move(free_.back());
      free_.pop_back();
      if (checked_) {
        for (double v : buf) {
          ALGE_CHECK(std::bit_cast<std::uint64_t>(v) == kPoisonBits,
                     "payload pool: buffer written after release "
                     "(use-after-return through a stale handle)");
        }
      }
    }
    buf.assign(data.begin(), data.end());
    return buf;
  }

  /// Return a delivered message's buffer to the free list.
  void release(std::vector<double>&& buf) {
    if (checked_) {
      // Double-return guard: the same storage must not sit in the pool
      // twice. O(pool size), debug only; pools stay shallow (bounded by
      // in-flight messages).
      for (const std::vector<double>& pooled : free_) {
        ALGE_CHECK(pooled.data() == nullptr || pooled.data() != buf.data(),
                   "payload pool: buffer released twice");
      }
      // Poison at full size so acquire can detect later writes; the pooled
      // vector keeps its elements (not clear()ed) until it is re-leased.
      buf.assign(buf.capacity(), std::bit_cast<double>(kPoisonBits));
    } else {
      buf.clear();
    }
    free_.push_back(std::move(buf));
  }

  std::size_t size() const { return free_.size(); }
  bool checked() const { return checked_; }

 private:
  /// A quiet-NaN payload no simulated algorithm produces by accident;
  /// compared by bit pattern (NaN compares unequal to itself by value).
  static constexpr std::uint64_t kPoisonBits = 0xfff8'abad'1dea'0b0eULL;

  std::vector<std::vector<double>> free_;
  bool checked_;
};

}  // namespace alge::sim
