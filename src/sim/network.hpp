// Interconnect topology models.
//
// The paper assumes per-word and per-message link costs stay constant as p
// grows and notes (Section IV) that a 3D torus is "a perfect match" for the
// 2.5D algorithm — its traffic is nearest-neighbour, so the assumption
// holds. These models let the simulator check that: each message is charged
// by the hop distance between source and destination,
//
//   time   = hops·αt per message + k·βt          (wormhole: latency per
//                                                 hop, bandwidth once)
//   energy = hops·αe per message + hops·k·βe     (every traversed link
//                                                 spends energy per word)
//
// and per-rank counters additionally accumulate hop-weighted words and
// messages, which Machine::energy() uses for the βe/αe terms.
//
// Rank numbering matches the topo:: grids: Torus3D(q, q, c) puts grid rank
// l·q² + i·q + j at coordinates (j, i, l), so Cannon shifts and depth
// broadcasts are 1-hop.
#pragma once

#include <memory>
#include <string>

namespace alge::sim {

class NetworkModel {
 public:
  virtual ~NetworkModel() = default;
  virtual std::string name() const = 0;
  /// Hop count between two distinct ranks (>= 1). p is the machine size.
  virtual int hops(int src, int dst, int p) const = 0;
};

/// Crossbar / fat enough fat-tree: every pair is one hop. This is the
/// default and reproduces the paper's flat link model exactly.
class FullyConnectedNetwork final : public NetworkModel {
 public:
  std::string name() const override { return "fully-connected"; }
  int hops(int src, int dst, int p) const override;
};

/// 1D ring with bidirectional links.
class RingNetwork final : public NetworkModel {
 public:
  std::string name() const override { return "ring"; }
  int hops(int src, int dst, int p) const override;
};

/// dx × dy × dz torus; rank = z·dx·dy + y·dx + x (so Grid3D(q,c) ranks land
/// on a (q, q, c) torus with rows/columns/layers as the three dimensions).
class Torus3DNetwork final : public NetworkModel {
 public:
  Torus3DNetwork(int dx, int dy, int dz);
  std::string name() const override;
  int hops(int src, int dst, int p) const override;

 private:
  int dx_;
  int dy_;
  int dz_;
};

/// dx × dy torus (a Torus3D with dz = 1, provided for clarity).
std::shared_ptr<const NetworkModel> make_torus_2d(int dx, int dy);

}  // namespace alge::sim
