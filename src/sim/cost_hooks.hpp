// The accounting seam between *what a simulated program costs* and *how it
// executes*. Every execution path — per-rank fibers moving real data, ghost
// fibers moving none, folded class replay (sim/fold.hpp), and any future
// real transport backend — charges time, energy counters, the per-phase
// ledger and trace events through these hooks, so cost signatures are
// bit-identical across execution modes by construction: there is exactly
// one place that knows how a send or a recv turns into clock and counter
// deltas.
//
// A CostHooks instance is bound to one (machine, world rank, slot) triple:
// `rank` is the world-visible id used in trace events and diagnostics,
// `slot` indexes the Machine's counter storage (equal to `rank` under
// per-fiber execution; the fold class id under ExecMode::kFolded).
#pragma once

#include <cstddef>

#include "sim/fault.hpp"
#include "sim/machine.hpp"

namespace alge::sim {

class CostHooks {
 public:
  CostHooks(Machine& machine, int rank, int slot)
      : m_(machine), rank_(rank), slot_(slot) {}

  /// compute(F): clock += γt·F/speed, F counted, ledger + trace updated.
  void compute(double flops);

  /// Injected virtual-time stall (fault pause): clock and idle advance,
  /// ledger idle/time accumulate, a kFault("pause") span is traced.
  void pause(double stall);

  /// Charge one outbound transmission of `words` to another rank: counters
  /// (words/msgs, hop-weighted), link time, drop-timeout backoff idle,
  /// ledger and kSend/kFault trace. Returns the message count nmsg (after
  /// splitting at the m-word cap) — the sender's cost is
  /// (nmsg·hops·αt + k·βt)·tx with tx = 1 + drops + duplicates.
  /// Self-sends are free and must not be charged here.
  double send(double words, int dst, int tag, const FaultDecision& fd);

  /// Receiver-side arrival synchronization: clock = max(clock, arrival),
  /// the gap recorded as idle (counters, ledger, kIdle trace).
  void recv_sync(double arrival, int src, int tag);

  /// Account one delivered message: words/msgs received plus the kRecv
  /// trace event. msg_count is the sender-computed nmsg (0 for self-sends).
  void recv_message(double words, double msg_count, int src, int tag);

  /// Registered-memory accounting: live words, high-water mark, the
  /// configured per-rank M cap (SimError on overflow) and kMem trace.
  void mem_register(std::size_t words);
  void mem_unregister(std::size_t words);

  const RankCounters& counters() const;

 private:
  RankCounters& c();
  PhaseCounters& phase_ledger();

  Machine& m_;
  int rank_;  ///< world rank: trace events, error messages, speed lookup
  int slot_;  ///< counter-storage index (== rank_ unless folded)
};

}  // namespace alge::sim
