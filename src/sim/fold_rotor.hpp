// Rotating-root fold schedules: position-parameterized destination
// semantics for the fold engine.
//
// The FoldClass uniform/scatter dichotomy (sim/fold.hpp) covers schedules
// whose peers are fixed per schedule position. SUMMA and LU rotate their
// broadcast roots through a row/column every step, and 2.5D matmul with
// c > 1 replica layers skews each layer by a layer-dependent offset — so
// no two ranks are fold-congruent under the per-position peer-class
// definition, and channel replay degenerates to one fiber per rank.
//
// A RotorSchedule is the generalization: instead of collapsing ranks into
// congruence classes, it carries the *whole* SPMD schedule as a compact op
// program parameterized by grid position (row i, column j, layer l of a
// q x q x c grid, world rank = l*q^2 + i*q + j). Machine::run evaluates
// the program with an array sweep over all p ranks — no fibers at all —
// producing per-rank RankCounters whose every field is bit-identical to
// the per-fiber ghost run:
//
//   * clock / idle_time / flops are replayed per rank in exact fiber op
//     order with the exact CostHooks expressions (floating-point addition
//     order preserved), including binomial bcast/reduce tree arrivals:
//     a child's arrival is its parent's clock after that specific
//     sequential send charge, never a closed form;
//   * words/messages sent/received are integer-valued (< 2^53), hence
//     order-independent, and accumulate in int64 profiles: one scalar
//     axis profile per grid dimension for mask-free ops (O(q) per op) and
//     a per-rank array for masked and skew ops;
//   * memory registration is uniform across ranks in these schedules, so
//     the high-water mark and the M-capacity check replay from a scalar.
//
// Participation masks (row_rep/col_rep/layer_rep) make one op vector
// describe LU's shrinking active grid: member (i, j, l) participates
// row_rep[i]*col_rep[j]*layer_rep[l] times consecutively (empty = 1 for
// every coordinate). A group collective runs rep times for the group
// selected by the cross-axis masks; repetition count >1 reproduces e.g.
// LU ranks holding several block rows of a panel.
//
// Builders live in src/algs/foldmaps.cpp (foldmap_summa / foldmap_lu /
// foldmap_mm25d for c > 1); the congruence claim is verified against
// per-fiber execution by chaos::fold_explore and tests/test_fold.cpp,
// including an off-by-one root-rotation mutant that must be caught.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace alge::sim {

struct MachineConfig;
struct RankCounters;

/// One schedule position of a rotor program. Coordinates refer to the
/// q x q x c grid of RotorSchedule (rank = l*q^2 + i*q + j).
struct RotorOp {
  enum class Kind : std::uint8_t {
    kAlloc,       ///< every rank registers `words` (Buffer construction)
    kFree,        ///< every rank unregisters `words` (Buffer destruction)
    kCompute,     ///< participating ranks charge compute(`flops`)
    kBcastRow,    ///< binomial bcast over row groups, root index `root`
    kBcastCol,    ///< binomial bcast over column groups, root index `root`
    kBcastDepth,  ///< binomial bcast over layer (depth) groups
    kReduceDepth, ///< binomial reduce_sum to `root` over depth groups
    kSkewA,       ///< Cannon A-alignment sendrecv, offset l*(q/c) per layer
    kSkewB,       ///< Cannon B-alignment sendrecv
    kShiftA,      ///< Cannon step: A moves one column left
    kShiftB,      ///< Cannon step: B moves one row up
  };
  Kind kind = Kind::kCompute;
  /// Group index of the collective root (row coordinate for kBcastCol,
  /// column coordinate for kBcastRow, layer for the depth collectives).
  int root = 0;
  std::size_t words = 0;  ///< payload words (collectives, skews, alloc/free)
  double flops = 0.0;     ///< compute cost (kCompute only)
  /// Participation masks, indexed by row / column / layer coordinate.
  /// Empty means "1 for every coordinate". A group collective must leave
  /// its own axis unmasked (all members of a selected group take part).
  std::vector<std::int32_t> row_rep, col_rep, layer_rep;
};

/// A complete rotor schedule for a q x q x c grid (p = q*q*c ranks).
/// Attached to a single-class FoldMap via FoldMap::with_rotor; Machine
/// evaluates it instead of spawning fibers whenever fold_active() holds
/// and the energy ledger is off (per-phase slices are the one signal the
/// array sweep does not materialize).
struct RotorSchedule {
  int q = 0;  ///< grid side
  int c = 1;  ///< replica layers
  std::vector<RotorOp> ops;

  int p() const { return q * q * c; }
};

/// Evaluate `rs` once, accumulating into `out` (size p, one RankCounters
/// per world rank). Replays the exact CostHooks cost expressions; throws
/// SimError with the fiber path's message when the per-rank memory
/// capacity is exceeded. `cfg` must describe a fold-eligible machine
/// (ghost data, no faults/speeds/trace/ledger/network) — violations are
/// programming errors and trip ALGE_CHECK.
void rotor_run(const RotorSchedule& rs, const MachineConfig& cfg,
               std::vector<RankCounters>& out);

}  // namespace alge::sim
