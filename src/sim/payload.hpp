// Data modes and payload views for the simulator.
//
// Every quantity the paper's bounds talk about — F, W, S, M, the virtual
// clocks, the Eq. (2) energy — depends only on *sizes*: how many words a
// message carries, how many flops a kernel executes, how many words a
// buffer registers. The numeric contents of the doubles never enter. A
// ghost run (DataMode::kGhost) exploits that: payloads carry a word count
// but no storage, local kernels advance the clock analytically, and the
// simulator charges the identical αt/βt/αe/βe, retry/backoff and
// message-cap-splitting costs while moving zero bytes. The differential
// gate in src/chaos asserts the two modes agree bit-for-bit.
//
// Payload / ConstPayload are the view types the Comm API takes in place of
// raw spans: a (pointer, words, ghost) triple. In full mode they convert
// implicitly from std::span / std::vector so existing call sites compile
// unchanged; in ghost mode they are built with the ghost(words) factory and
// dereferencing them (span()/data()) is an internal error — sizes flow,
// bytes do not.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "support/common.hpp"

namespace alge::sim {

/// How a Machine treats payload bytes. Costs, counters, traces and ledger
/// entries are bit-identical across modes (enforced by the ghost
/// differential gate); only data movement and local arithmetic differ.
enum class DataMode {
  kFull,   ///< real doubles move and kernels compute (verifiable output)
  kGhost,  ///< sizes-only traffic and analytic kernels (cost-exact, no data)
};

/// Read-only payload view: (pointer, words) in full mode, (words) in ghost
/// mode. Implicitly constructible from the span/vector types algorithm code
/// already passes to Comm::send and the collectives.
class ConstPayload {
 public:
  ConstPayload() = default;
  ConstPayload(std::span<const double> s)  // NOLINT(google-explicit-constructor)
      : ptr_(s.data()), words_(s.size()) {}
  ConstPayload(std::span<double> s)  // NOLINT(google-explicit-constructor)
      : ptr_(s.data()), words_(s.size()) {}
  ConstPayload(const std::vector<double>& v)  // NOLINT(google-explicit-constructor)
      : ptr_(v.data()), words_(v.size()) {}

  /// A payload of `words` words with no backing storage.
  static ConstPayload ghost(std::size_t words) {
    ConstPayload p;
    p.words_ = words;
    p.ghost_ = true;
    return p;
  }

  std::size_t size() const { return words_; }
  bool empty() const { return words_ == 0; }
  bool is_ghost() const { return ghost_; }

  /// Subview [off, off+len): pure size arithmetic, valid in both modes.
  ConstPayload sub(std::size_t off, std::size_t len) const {
    ALGE_CHECK(off + len <= words_, "payload subview [%zu, %zu) out of %zu",
               off, off + len, words_);
    ConstPayload p;
    p.words_ = len;
    p.ghost_ = ghost_;
    if (!ghost_) p.ptr_ = ptr_ + off;
    return p;
  }

  /// The backing storage. Dereferencing a ghost payload is the data-access
  /// analogue of reading a poisoned pool buffer: always an internal error,
  /// in release builds too — ghost bytes do not exist.
  std::span<const double> span() const {
    ALGE_CHECK(!ghost_, "ghost payload dereferenced (%zu words have no "
               "storage; ghost runs measure cost, not output)", words_);
    return {ptr_, words_};
  }
  const double* data() const { return span().data(); }

 private:
  const double* ptr_ = nullptr;
  std::size_t words_ = 0;
  bool ghost_ = false;
};

/// Mutable payload view; converts implicitly to ConstPayload.
class Payload {
 public:
  Payload() = default;
  Payload(std::span<double> s)  // NOLINT(google-explicit-constructor)
      : ptr_(s.data()), words_(s.size()) {}
  Payload(std::vector<double>& v)  // NOLINT(google-explicit-constructor)
      : ptr_(v.data()), words_(v.size()) {}

  static Payload ghost(std::size_t words) {
    Payload p;
    p.words_ = words;
    p.ghost_ = true;
    return p;
  }

  std::size_t size() const { return words_; }
  bool empty() const { return words_ == 0; }
  bool is_ghost() const { return ghost_; }

  Payload sub(std::size_t off, std::size_t len) const {
    ALGE_CHECK(off + len <= words_, "payload subview [%zu, %zu) out of %zu",
               off, off + len, words_);
    Payload p;
    p.words_ = len;
    p.ghost_ = ghost_;
    if (!ghost_) p.ptr_ = ptr_ + off;
    return p;
  }

  std::span<double> span() const {
    ALGE_CHECK(!ghost_, "ghost payload dereferenced (%zu words have no "
               "storage; ghost runs measure cost, not output)", words_);
    return {ptr_, words_};
  }
  double* data() const { return span().data(); }

  operator ConstPayload() const {  // NOLINT(google-explicit-constructor)
    if (ghost_) return ConstPayload::ghost(words_);
    return ConstPayload(std::span<const double>{ptr_, words_});
  }

 private:
  double* ptr_ = nullptr;
  std::size_t words_ = 0;
  bool ghost_ = false;
};

}  // namespace alge::sim
