// Indexed per-rank mailbox: one FIFO queue per (source, tag) pair behind a
// flat hash on the packed key, so receive matching is O(1) in the number
// of pending messages (the old single-deque mailbox scanned linearly — an
// all-to-all at p ranks paid O(p²) scans per rank).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "support/flat_map.hpp"

namespace alge::sim {

/// One in-flight point-to-point message. The payload vector is leased from
/// the owning Machine's payload pool and returned to it on delivery. In
/// ghost mode (sim/payload.hpp) the vector stays empty and `words` alone
/// carries the size; `words` is authoritative in both modes.
struct Message {
  int src = 0;
  int tag = 0;
  double arrival = 0.0;
  double msg_count = 0.0;   ///< messages after splitting at cap m
  std::uint64_t seq = 0;    ///< per-destination arrival order (diagnostics)
  std::size_t words = 0;    ///< payload size in words (ghost: storage-free)
  std::vector<double> payload;
};

/// FIFO of messages for one (src, tag) pair: a vector with a consumed-prefix
/// head index, compacted once the dead prefix dominates, so push and pop are
/// amortized O(1) with no per-node allocation.
class MessageQueue {
 public:
  bool empty() const { return head_ == items_.size(); }
  std::size_t size() const { return items_.size() - head_; }
  const Message& front() const { return items_[head_]; }
  Message& front() { return items_[head_]; }
  /// Most recently pushed pending message (the fault layer's "queued
  /// predecessor" for reorder injection). Queue must be non-empty.
  Message& back() { return items_.back(); }

  void push(Message&& m) { items_.push_back(std::move(m)); }

  /// Retire the front message (its contents have been consumed in place).
  void drop_front() {
    ++head_;
    if (head_ == items_.size()) {
      items_.clear();
      head_ = 0;
    } else if (head_ >= 32 && head_ * 2 >= items_.size()) {
      items_.erase(items_.begin(),
                   items_.begin() + static_cast<std::ptrdiff_t>(head_));
      head_ = 0;
    }
  }

  Message pop() {
    Message m = std::move(items_[head_]);
    drop_front();
    return m;
  }

  std::size_t capacity() const { return items_.capacity(); }

  /// Storage recycling between queues (see Mailbox::queue_index). Only
  /// meaningful on an empty queue: the returned vector is logically empty
  /// but keeps its heap capacity.
  std::vector<Message> take_storage() {
    head_ = 0;
    std::vector<Message> s = std::move(items_);
    s.clear();
    return s;
  }
  void adopt_storage(std::vector<Message>&& s) {
    items_ = std::move(s);
    head_ = 0;
  }

  template <typename F>
  void for_each(F&& f) const {
    for (std::size_t i = head_; i < items_.size(); ++i) f(items_[i]);
  }

 private:
  std::vector<Message> items_;
  std::size_t head_ = 0;
};

class Mailbox {
 public:
  /// Stable index of the queue for (src, tag), created on first use. Valid
  /// for the mailbox's lifetime — safe to cache across blocking waits.
  std::uint32_t queue_index(int src, int tag) {
    constexpr std::uint32_t kUnset = 0xffffffffu;
    std::uint32_t& idx = index_.find_or_emplace(key(src, tag), kUnset);
    if (idx == kUnset) {
      idx = static_cast<std::uint32_t>(queues_.size());
      queues_.emplace_back();
      // Tags churn over a run (collectives take a fresh tag per phase), so
      // old queues drain for good while new ones appear. Hand a drained
      // queue's heap storage to the newcomer instead of allocating: the
      // cursor is monotone, so each queue donates at most once and the
      // scan is amortized O(1) per queue ever created. Steady-state
      // same-(src, tag) traffic never enters this branch at all.
      while (scavenge_ < idx) {
        MessageQueue& old = queues_[scavenge_];
        ++scavenge_;
        if (old.empty() && old.capacity() > 0) {
          queues_.back().adopt_storage(old.take_storage());
          break;
        }
      }
    }
    return idx;
  }

  MessageQueue& queue(std::uint32_t index) { return queues_[index]; }

  void push(Message&& m) {
    ++pending_;
    queues_[queue_index(m.src, m.tag)].push(std::move(m));
  }

  Message pop(std::uint32_t index) {
    --pending_;
    return queues_[index].pop();
  }

  /// In-place consumption: read queue(i).front(), then drop it here.
  void consume(std::uint32_t index) {
    --pending_;
    queues_[index].drop_front();
  }

  std::size_t pending() const { return pending_; }
  bool empty() const { return pending_ == 0; }

  /// The earliest-arrived pending message (smallest seq), or nullptr if
  /// none. Error-path only: scans queue fronts, O(distinct (src, tag)).
  const Message* oldest() const {
    const Message* best = nullptr;
    for (const MessageQueue& q : queues_) {
      if (q.empty()) continue;
      if (best == nullptr || q.front().seq < best->seq) best = &q.front();
    }
    return best;
  }

 private:
  static std::uint64_t key(int src, int tag) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src))
            << 32) |
           static_cast<std::uint32_t>(tag);
  }

  FlatU64Map<std::uint32_t> index_;
  std::vector<MessageQueue> queues_;
  std::size_t pending_ = 0;
  std::uint32_t scavenge_ = 0;  ///< storage-recycling cursor (queue_index)
};

}  // namespace alge::sim
