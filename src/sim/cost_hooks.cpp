#include "sim/cost_hooks.hpp"

#include <algorithm>
#include <cmath>

#include "support/common.hpp"

namespace alge::sim {

const RankCounters& CostHooks::counters() const {
  return m_.ranks_[static_cast<std::size_t>(slot_)].counters;
}

RankCounters& CostHooks::c() {
  return m_.ranks_[static_cast<std::size_t>(slot_)].counters;
}

PhaseCounters& CostHooks::phase_ledger() { return m_.ledger_cell(slot_); }

void CostHooks::compute(double flops) {
  ALGE_REQUIRE(flops >= 0.0, "negative flop count");
  RankCounters& cc = c();
  const double t0 = cc.clock;
  const double speed =
      m_.cfg_.speed.empty()
          ? 1.0
          : m_.cfg_.speed[static_cast<std::size_t>(rank_)];
  cc.flops += flops;
  cc.clock += m_.cfg_.params.gamma_t * flops / speed;
  if (m_.cfg_.enable_ledger) {
    PhaseCounters& pc = phase_ledger();
    pc.flops += flops;
    pc.time += cc.clock - t0;
  }
  if (m_.cfg_.enable_trace) {
    m_.trace_.record({TraceEvent::Kind::kCompute, rank_, t0, cc.clock, -1,
                      0.0, 0, flops});
  }
}

void CostHooks::pause(double stall) {
  RankCounters& cc = c();
  const double t0 = cc.clock;
  cc.clock += stall;
  cc.idle_time += stall;
  if (m_.cfg_.enable_ledger) {
    PhaseCounters& pc = phase_ledger();
    pc.idle += stall;
    pc.time += stall;
  }
  if (m_.cfg_.enable_trace) {
    TraceEvent ev;
    ev.kind = TraceEvent::Kind::kFault;
    ev.rank = rank_;
    ev.t0 = t0;
    ev.t1 = cc.clock;
    ev.label = "pause";
    m_.trace_.record(ev);
  }
}

double CostHooks::send(double k, int dst, int tag, const FaultDecision& fd) {
  RankCounters& cc = c();
  const double t0 = cc.clock;
  const double m = m_.cfg_.params.max_msg_words;
  const int hops =
      m_.cfg_.network ? m_.cfg_.network->hops(rank_, dst, m_.cfg_.p) : 1;
  const double nmsg = std::max(1.0, std::ceil(k / m));
  // Every transmission — the delivered one, each dropped attempt, each
  // spurious duplicate — moves k words over the links and is paid in
  // full, so injected faults surface in Eq. (1)/(2) through the ordinary
  // counters with no special cases.
  const double tx = 1.0 + fd.drops + fd.duplicates;
  cc.words_sent += k * tx;
  cc.msgs_sent += nmsg * tx;
  cc.words_hops += k * hops * tx;
  cc.msgs_hops += nmsg * hops * tx;
  // Wormhole routing: latency accumulates per hop, bandwidth is paid
  // once (the message pipelines through intermediate links).
  cc.clock += (nmsg * hops * m_.cfg_.params.alpha_t +
               k * m_.cfg_.params.beta_t) *
              tx;
  // A drop is only detected by the retransmission timeout: the sender
  // idles timeout·backoff^i before attempt i+1.
  double wait = 0.0;
  if (fd.drops > 0) {
    double to = m_.cfg_.retry.resolve_timeout(m_.cfg_.params.alpha_t);
    for (int i = 0; i < fd.drops; ++i) {
      wait += to;
      to *= m_.cfg_.retry.backoff;
    }
    cc.clock += wait;
    cc.idle_time += wait;
  }
  if (m_.cfg_.enable_ledger) {
    PhaseCounters& pc = phase_ledger();
    pc.words_sent += k * tx;
    pc.msgs_sent += nmsg * tx;
    pc.words_hops += k * hops * tx;
    pc.msgs_hops += nmsg * hops * tx;
    pc.time += cc.clock - t0;
    pc.idle += wait;
  }
  if (m_.cfg_.enable_trace) {
    m_.trace_.record({TraceEvent::Kind::kSend, rank_, t0, cc.clock, dst,
                      k * tx, tag, 0.0, nmsg * tx});
    if (fd.any()) {
      const char* label = fd.drops > 0        ? "drop"
                          : fd.duplicates > 0 ? "dup"
                          : fd.overtake       ? "reorder"
                                              : "delay";
      m_.trace_.record({TraceEvent::Kind::kFault, rank_, cc.clock - wait,
                        cc.clock, dst, k, tag, 0.0,
                        static_cast<double>(fd.drops + fd.duplicates),
                        label});
    }
  }
  return nmsg;
}

void CostHooks::recv_sync(double arrival, int src, int tag) {
  RankCounters& cc = c();
  if (arrival <= cc.clock) return;
  if (m_.cfg_.enable_trace) {
    m_.trace_.record(
        {TraceEvent::Kind::kIdle, rank_, cc.clock, arrival, src, 0.0, tag});
  }
  if (m_.cfg_.enable_ledger) {
    PhaseCounters& pc = phase_ledger();
    pc.idle += arrival - cc.clock;
    pc.time += arrival - cc.clock;
  }
  cc.idle_time += arrival - cc.clock;
  cc.clock = arrival;
}

void CostHooks::recv_message(double words, double msg_count, int src,
                             int tag) {
  RankCounters& cc = c();
  if (m_.cfg_.enable_trace) {
    m_.trace_.record({TraceEvent::Kind::kRecv, rank_, cc.clock, cc.clock,
                      src, words, tag});
  }
  cc.words_recv += words;
  cc.msgs_recv += msg_count;
}

void CostHooks::mem_register(std::size_t words) {
  RankCounters& cc = c();
  cc.mem_words += words;
  cc.mem_highwater = std::max(cc.mem_highwater, cc.mem_words);
  const double cap = m_.cfg_.params.mem_words;
  if (cap > 0.0 && static_cast<double>(cc.mem_words) > cap) {
    throw SimError(strfmt(
        "rank %d out of memory: %zu words live, per-rank capacity M=%.0f",
        rank_, cc.mem_words, cap));
  }
  if (m_.cfg_.enable_trace) {
    m_.trace_.record({TraceEvent::Kind::kMem, rank_, cc.clock, cc.clock, -1,
                      static_cast<double>(cc.mem_words)});
  }
}

void CostHooks::mem_unregister(std::size_t words) {
  RankCounters& cc = c();
  ALGE_CHECK(cc.mem_words >= words, "memory underflow on rank %d", rank_);
  cc.mem_words -= words;
  if (m_.cfg_.enable_trace) {
    m_.trace_.record({TraceEvent::Kind::kMem, rank_, cc.clock, cc.clock, -1,
                      static_cast<double>(cc.mem_words)});
  }
}

}  // namespace alge::sim
