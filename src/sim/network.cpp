#include "sim/network.hpp"

#include <algorithm>
#include <cstdlib>

#include "support/common.hpp"

namespace alge::sim {

namespace {
/// Wrap-around distance on a ring of size d.
int ring_distance(int a, int b, int d) {
  const int diff = std::abs(a - b);
  return std::min(diff, d - diff);
}
}  // namespace

int FullyConnectedNetwork::hops(int src, int dst, int p) const {
  ALGE_REQUIRE(src >= 0 && src < p && dst >= 0 && dst < p,
               "ranks out of range");
  return src == dst ? 0 : 1;
}

int RingNetwork::hops(int src, int dst, int p) const {
  ALGE_REQUIRE(src >= 0 && src < p && dst >= 0 && dst < p,
               "ranks out of range");
  return ring_distance(src, dst, p);
}

Torus3DNetwork::Torus3DNetwork(int dx, int dy, int dz)
    : dx_(dx), dy_(dy), dz_(dz) {
  ALGE_REQUIRE(dx >= 1 && dy >= 1 && dz >= 1,
               "torus dimensions must be positive");
}

std::string Torus3DNetwork::name() const {
  return strfmt("torus-%dx%dx%d", dx_, dy_, dz_);
}

int Torus3DNetwork::hops(int src, int dst, int p) const {
  ALGE_REQUIRE(p == dx_ * dy_ * dz_,
               "machine size %d does not match torus %dx%dx%d", p, dx_, dy_,
               dz_);
  ALGE_REQUIRE(src >= 0 && src < p && dst >= 0 && dst < p,
               "ranks out of range");
  const int sx = src % dx_;
  const int sy = (src / dx_) % dy_;
  const int sz = src / (dx_ * dy_);
  const int tx = dst % dx_;
  const int ty = (dst / dx_) % dy_;
  const int tz = dst / (dx_ * dy_);
  return ring_distance(sx, tx, dx_) + ring_distance(sy, ty, dy_) +
         ring_distance(sz, tz, dz_);
}

std::shared_ptr<const NetworkModel> make_torus_2d(int dx, int dy) {
  return std::make_shared<Torus3DNetwork>(dx, dy, 1);
}

}  // namespace alge::sim
