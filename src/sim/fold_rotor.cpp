// Array evaluation of rotor schedules (see fold_rotor.hpp).
//
// Bit-identity with the per-fiber ghost run rests on three invariants:
//
//   1. Clock, idle and flop deltas use the *same floating-point
//      expressions* CostHooks evaluates, specialized to the fold-eligible
//      configuration (hops = 1, tx = 1.0, speed = 1.0 — all exact
//      identities under IEEE-754), and are applied per rank in the exact
//      per-fiber op order. Binomial-tree arrivals are replayed send by
//      send: a child's arrival is the parent's clock after that specific
//      sequential send charge (parents send to children in descending
//      subtree order), never a closed form.
//
//   2. Word/message counters only ever accumulate integer values, and
//      every partial sum stays far below 2^53, so any summation order is
//      exact; they aggregate in int64 and are added to the RankCounters
//      doubles once at the end.
//
//   3. Memory registration is rank-uniform in every rotor schedule, so
//      one scalar live/peak pair stands for all ranks; the M-capacity
//      check throws the fiber path's SimError verbatim.
//
// The group sweeps are the hot path — a q = 1024 SUMMA run replays ~2·10⁹
// member visits — so the binomial child lists are flattened to CSR, the
// per-group replay runs in raw-pointer loops with the rank index stepped
// incrementally, and masked compute ops iterate only the coordinates with
// nonzero participation (a one-hot panel mask costs O(q), not O(q²)).
#include "sim/fold_rotor.hpp"

#include <algorithm>
#include <cmath>
#include <memory>

#include "sim/machine.hpp"
#include "support/common.hpp"

namespace alge::sim {

namespace {

/// Binomial-tree child lists per virtual rank, flattened to CSR in the
/// exact descending order of Comm::bcast's send loop. val[] holds the
/// child's virtual rank (vr + offset). The reduce tree receives from the
/// same children (ascending); only the counts matter there.
struct KidsCsr {
  std::vector<int> off;  // size n+1
  std::vector<int> val;
};

KidsCsr make_kids(int n) {
  KidsCsr k;
  k.off.reserve(static_cast<std::size_t>(n) + 1);
  for (int vr = 0; vr < n; ++vr) {
    k.off.push_back(static_cast<int>(k.val.size()));
    int mask = 1;
    while (mask < n) {
      if (vr & mask) break;
      mask <<= 1;
    }
    mask >>= 1;
    while (mask > 0) {
      if (vr + mask < n && !(vr & (mask - 1))) k.val.push_back(vr + mask);
      mask >>= 1;
    }
  }
  k.off.push_back(static_cast<int>(k.val.size()));
  return k;
}

/// Integer word/message deltas for one index domain (an axis or the whole
/// rank space).
struct Profile {
  std::vector<std::int64_t> ws, ms, wr, mr;
  explicit Profile(int n)
      : ws(static_cast<std::size_t>(n), 0),
        ms(static_cast<std::size_t>(n), 0),
        wr(static_cast<std::size_t>(n), 0),
        mr(static_cast<std::size_t>(n), 0) {}
};

/// One point-to-point send, precomputed: the model message count, the
/// sender clock delta, and the integer counter deltas.
struct PointCost {
  double cost = 0.0;
  std::int64_t k = 0;
  std::int64_t m = 0;
};

int rep_at(const std::vector<std::int32_t>& mask, int i) {
  return mask.empty() ? 1 : mask[static_cast<std::size_t>(i)];
}

/// One binomial bcast over the group at (base, stride, n) with root index
/// rho — clocks only (uniform ops account integers once per op via the
/// axis profile). Ascending virtual rank visits parents before children;
/// arr[vr] carries each member's arrival.
void bcast_group(double* clk, double* idl, double* arr, const int* koff,
                 const int* kval, int n, int rho, double cost,
                 std::size_t base, std::size_t stride) {
  const std::size_t wrap = static_cast<std::size_t>(n) * stride;
  std::size_t r = base + static_cast<std::size_t>(rho) * stride;
  for (int vr = 0; vr < n; ++vr) {
    double cl = clk[r];
    if (vr != 0) {
      const double a = arr[vr];
      if (a > cl) {
        idl[r] += a - cl;
        cl = a;
      }
    }
    const int end = koff[vr + 1];
    for (int t = koff[vr]; t < end; ++t) {
      cl += cost;
      arr[kval[t]] = cl;
    }
    clk[r] = cl;
    r += stride;
    if (r >= base + wrap) r -= wrap;
  }
}

/// Masked-group variant: the same replay plus per-rank integer deltas.
void bcast_group_masked(double* clk, double* idl, double* arr,
                        const int* koff, const int* kval, int n, int rho,
                        const PointCost& pc, std::size_t base,
                        std::size_t stride, Profile& pr) {
  const std::size_t wrap = static_cast<std::size_t>(n) * stride;
  std::size_t r = base + static_cast<std::size_t>(rho) * stride;
  for (int vr = 0; vr < n; ++vr) {
    double cl = clk[r];
    if (vr != 0) {
      const double a = arr[vr];
      if (a > cl) {
        idl[r] += a - cl;
        cl = a;
      }
      pr.wr[r] += pc.k;
      pr.mr[r] += pc.m;
    }
    const int beg = koff[vr];
    const int end = koff[vr + 1];
    for (int t = beg; t < end; ++t) {
      cl += pc.cost;
      arr[kval[t]] = cl;
    }
    pr.ws[r] += (end - beg) * pc.k;
    pr.ms[r] += (end - beg) * pc.m;
    clk[r] = cl;
    r += stride;
    if (r >= base + wrap) r -= wrap;
  }
}

}  // namespace

void rotor_run(const RotorSchedule& rs, const MachineConfig& cfg,
               std::vector<RankCounters>& out) {
  const int q = rs.q;
  const int c = rs.c;
  const int p = rs.p();
  ALGE_CHECK(q >= 1 && c >= 1, "rotor schedule needs q >= 1 and c >= 1");
  ALGE_CHECK(static_cast<int>(out.size()) == p,
             "rotor counters sized %zu for p=%d", out.size(), p);
  ALGE_CHECK(cfg.data_mode == DataMode::kGhost && cfg.faults == nullptr &&
                 cfg.speed.empty() && !cfg.enable_trace &&
                 !cfg.enable_ledger && cfg.network == nullptr,
             "rotor evaluation on a non-fold-eligible machine");

  const core::MachineParams& mp = cfg.params;
  const double alpha = mp.alpha_t;
  const double beta = mp.beta_t;
  const double gamma = mp.gamma_t;
  const double mcap = mp.mem_words;
  const double mwords = mp.max_msg_words;
  const std::size_t qq = static_cast<std::size_t>(q) * q;

  auto send_cost = [&](std::size_t words) {
    PointCost pc;
    const double k = static_cast<double>(words);
    const double nmsg = std::max(1.0, std::ceil(k / mwords));
    // CostHooks::send with hops=1, tx=1.0: (nmsg*1*alpha_t + k*beta_t)*1.0.
    pc.cost = nmsg * alpha + k * beta;
    pc.k = static_cast<std::int64_t>(words);
    pc.m = static_cast<std::int64_t>(nmsg);
    return pc;
  };

  // Hot per-rank state, SoA so sweeps stream through memory.
  std::vector<double> clock(static_cast<std::size_t>(p));
  std::vector<double> idle(static_cast<std::size_t>(p));
  std::vector<double> flops(static_cast<std::size_t>(p));
  for (int r = 0; r < p; ++r) {
    const std::size_t ur = static_cast<std::size_t>(r);
    clock[ur] = out[ur].clock;
    idle[ur] = out[ur].idle_time;
    flops[ur] = out[ur].flops;
  }
  double* const clk = clock.data();
  double* const idl = idle.data();
  double* const flp = flops.data();

  // Axis profiles for mask-free collectives (O(group size) integer work
  // per op); the per-rank profile is only materialized when a masked or
  // skew op needs it.
  Profile prof_i(q);  // indexed by row coordinate (column collectives)
  Profile prof_j(q);  // indexed by column coordinate (row collectives)
  Profile prof_l(c);  // indexed by layer (depth collectives)
  std::unique_ptr<Profile> prof_r;
  auto rank_ints = [&]() -> Profile& {
    if (!prof_r) prof_r = std::make_unique<Profile>(p);
    return *prof_r;
  };

  // Uniform memory registration: live delta over the pre-run baseline.
  std::int64_t mem_cur = 0;
  std::int64_t mem_peak = 0;
  const std::size_t mem_base = out[0].mem_words;

  const KidsCsr kids_q = make_kids(q);
  const KidsCsr kids_c = make_kids(c);
  std::vector<double> arr_buf(static_cast<std::size_t>(std::max(q, c)));
  double* const arr = arr_buf.data();
  std::vector<double> arr_rank;  // skew/shift arrivals, all ranks
  // Column-collective arrival scratch, [virtual rank][column]: column
  // groups sweep vr-major so the inner loop walks one member row of the
  // grid contiguously across all q groups — the group-major order would
  // touch a fresh page per member (stride q doubles) and run ~7x slower
  // TLB-bound. Groups are rank-disjoint, so evaluating them in lockstep
  // is the same per-rank op sequence the fiber path runs.
  std::vector<double> arr_cols;
  std::vector<int> col_reps;  // per-column replay counts, one layer
  // Scratch coordinate lists for masked ops: indices with a nonzero
  // participation count (all of them when the mask is empty).
  std::vector<int> row_act, col_act, lay_act;
  auto active = [](const std::vector<std::int32_t>& mask, int n,
                   std::vector<int>& out_act) {
    out_act.clear();
    for (int i = 0; i < n; ++i) {
      if (mask.empty() || mask[static_cast<std::size_t>(i)] > 0) {
        out_act.push_back(i);
      }
    }
  };

  // One binomial reduce_sum: descending virtual rank visits children
  // before their parent; each merge replays Comm::reduce_sum's
  // recv-then-compute(k) pair in order.
  auto reduce_group = [&](std::size_t base, std::size_t stride, int n,
                          int rho, const PointCost& pc, double fk,
                          double dt_merge, Profile* pr) {
    for (int vr = n - 1; vr >= 0; --vr) {
      int coord = vr + rho;
      if (coord >= n) coord -= n;
      const std::size_t r = base + static_cast<std::size_t>(coord) * stride;
      double cl = clk[r];
      for (int mask = 1; mask < n; mask <<= 1) {
        if (vr & mask) {
          cl += pc.cost;
          arr[vr] = cl;
          if (pr != nullptr) {
            pr->ws[r] += pc.k;
            pr->ms[r] += pc.m;
          }
          break;
        }
        if (vr + mask < n) {
          const double a = arr[vr + mask];
          if (a > cl) {
            idl[r] += a - cl;
            cl = a;
          }
          if (pr != nullptr) {
            pr->wr[r] += pc.k;
            pr->mr[r] += pc.m;
          }
          flp[r] += fk;
          cl += dt_merge;
        }
      }
      clk[r] = cl;
    }
  };

  // Uniform-op integer profile: per member position, the tree's send and
  // recv counts depend only on the virtual rank.
  auto tree_profile = [&](Profile& pf, const KidsCsr& kids, int n, int rho,
                          const PointCost& pc, bool reduce) {
    for (int vr = 0; vr < n; ++vr) {
      int coord = vr + rho;
      if (coord >= n) coord -= n;
      const std::size_t uc = static_cast<std::size_t>(coord);
      const std::int64_t nk = kids.off[static_cast<std::size_t>(vr) + 1] -
                              kids.off[static_cast<std::size_t>(vr)];
      if (reduce) {
        if (vr != 0) {
          pf.ws[uc] += pc.k;
          pf.ms[uc] += pc.m;
        }
        pf.wr[uc] += nk * pc.k;
        pf.mr[uc] += nk * pc.m;
      } else {
        pf.ws[uc] += nk * pc.k;
        pf.ms[uc] += nk * pc.m;
        if (vr != 0) {
          pf.wr[uc] += pc.k;
          pf.mr[uc] += pc.m;
        }
      }
    }
  };

  auto check_mask = [&](const std::vector<std::int32_t>& mask, int n) {
    ALGE_CHECK(mask.empty() || static_cast<int>(mask.size()) == n,
               "rotor mask sized %zu on an axis of %d", mask.size(), n);
    for (const std::int32_t v : mask) {
      ALGE_CHECK(v >= 0, "negative rotor participation count");
    }
  };

  for (const RotorOp& op : rs.ops) {
    check_mask(op.row_rep, q);
    check_mask(op.col_rep, q);
    check_mask(op.layer_rep, c);
    switch (op.kind) {
      case RotorOp::Kind::kAlloc: {
        mem_cur += static_cast<std::int64_t>(op.words);
        mem_peak = std::max(mem_peak, mem_cur);
        const std::size_t live =
            mem_base + static_cast<std::size_t>(mem_cur);
        if (mcap > 0.0 && static_cast<double>(live) > mcap) {
          // Rank 0's fiber registers first and throws first.
          throw SimError(strfmt(
              "rank %d out of memory: %zu words live, per-rank capacity "
              "M=%.0f",
              0, live, mcap));
        }
        break;
      }
      case RotorOp::Kind::kFree: {
        ALGE_CHECK(mem_cur >= static_cast<std::int64_t>(op.words),
                   "memory underflow on rank %d", 0);
        mem_cur -= static_cast<std::int64_t>(op.words);
        break;
      }
      case RotorOp::Kind::kCompute: {
        const double f = op.flops;
        // CostHooks::compute with speed=1.0: gamma_t*flops/1.0.
        const double dt = gamma * f;
        if (op.row_rep.empty() && op.col_rep.empty() &&
            op.layer_rep.empty()) {
          for (int r = 0; r < p; ++r) {
            flp[r] += f;
            clk[r] += dt;
          }
          break;
        }
        active(op.row_rep, q, row_act);
        active(op.col_rep, q, col_act);
        active(op.layer_rep, c, lay_act);
        for (const int l : lay_act) {
          const int lr = rep_at(op.layer_rep, l);
          const std::size_t lay_base = static_cast<std::size_t>(l) * qq;
          for (const int i : row_act) {
            const int ir = rep_at(op.row_rep, i) * lr;
            const std::size_t row_base =
                lay_base + static_cast<std::size_t>(i) * q;
            for (const int j : col_act) {
              const int reps = ir * rep_at(op.col_rep, j);
              const std::size_t r = row_base + static_cast<std::size_t>(j);
              double fl = flp[r];
              double cl = clk[r];
              for (int t = 0; t < reps; ++t) {
                fl += f;
                cl += dt;
              }
              flp[r] = fl;
              clk[r] = cl;
            }
          }
        }
        break;
      }
      case RotorOp::Kind::kBcastRow:
      case RotorOp::Kind::kBcastCol:
      case RotorOp::Kind::kBcastDepth:
      case RotorOp::Kind::kReduceDepth: {
        const bool depth = op.kind == RotorOp::Kind::kBcastDepth ||
                           op.kind == RotorOp::Kind::kReduceDepth;
        const bool reduce = op.kind == RotorOp::Kind::kReduceDepth;
        const bool row_groups = op.kind == RotorOp::Kind::kBcastRow;
        const int n = depth ? c : q;
        ALGE_CHECK(op.root >= 0 && op.root < n,
                   "rotor collective root %d on a group of %d", op.root, n);
        const PointCost pc = send_cost(op.words);
        const KidsCsr& kids = depth ? kids_c : kids_q;
        const int* const koff = kids.off.data();
        const int* const kval = kids.val.data();
        const double fk = static_cast<double>(op.words);
        const double dt_merge = gamma * fk;
        // The member axis must be unmasked: a group collective always
        // involves the whole group.
        if (depth) {
          ALGE_CHECK(op.layer_rep.empty(),
                     "depth collective with a masked layer axis");
        } else if (row_groups) {
          ALGE_CHECK(op.col_rep.empty(),
                     "row collective with a masked column axis");
        } else {
          ALGE_CHECK(op.row_rep.empty(),
                     "column collective with a masked row axis");
        }
        const bool uniform = op.row_rep.empty() && op.col_rep.empty() &&
                             op.layer_rep.empty();
        Profile* pr = uniform ? nullptr : &rank_ints();
        if (uniform) {
          Profile& pf = depth ? prof_l : (row_groups ? prof_j : prof_i);
          tree_profile(pf, kids, n, op.root, pc, reduce);
        }
        // Enumerate group instances (every instance when uniform,
        // selected ones otherwise) and replay the tree per instance.
        auto run_one = [&](std::size_t base, std::size_t stride, int reps) {
          for (int t = 0; t < reps; ++t) {
            if (reduce) {
              reduce_group(base, stride, n, op.root, pc, fk, dt_merge, pr);
            } else if (pr == nullptr) {
              bcast_group(clk, idl, arr, koff, kval, n, op.root, pc.cost,
                          base, stride);
            } else {
              bcast_group_masked(clk, idl, arr, koff, kval, n, op.root, pc,
                                 base, stride, *pr);
            }
          }
        };
        if (depth) {
          active(op.row_rep, q, row_act);
          active(op.col_rep, q, col_act);
          for (const int i : row_act) {
            const int ir = rep_at(op.row_rep, i);
            for (const int j : col_act) {
              const int reps = ir * rep_at(op.col_rep, j);
              run_one(static_cast<std::size_t>(i) * q +
                          static_cast<std::size_t>(j),
                      qq, reps);
            }
          }
        } else if (row_groups) {
          active(op.layer_rep, c, lay_act);
          active(op.row_rep, q, row_act);
          for (const int l : lay_act) {
            const int lr = rep_at(op.layer_rep, l);
            for (const int i : row_act) {
              const int reps = lr * rep_at(op.row_rep, i);
              run_one(static_cast<std::size_t>(l) * qq +
                          static_cast<std::size_t>(i) * q,
                      1, reps);
            }
          }
        } else {
          // Column groups, vr-major (see arr_cols above). Sweep t runs
          // replay t of every column whose count exceeds t, so replays of
          // one column stay sequential while columns advance in lockstep.
          active(op.layer_rep, c, lay_act);
          if (arr_cols.empty()) arr_cols.resize(qq);
          double* const arrc = arr_cols.data();
          col_reps.assign(static_cast<std::size_t>(q), 0);
          for (const int l : lay_act) {
            const int lr = rep_at(op.layer_rep, l);
            int rmax = 0;
            for (int j = 0; j < q; ++j) {
              col_reps[static_cast<std::size_t>(j)] =
                  lr * rep_at(op.col_rep, j);
              rmax = std::max(rmax, col_reps[static_cast<std::size_t>(j)]);
            }
            const int* const reps = col_reps.data();
            const std::size_t lbase = static_cast<std::size_t>(l) * qq;
            for (int t = 0; t < rmax; ++t) {
              for (int vr = 0; vr < q; ++vr) {
                int coord = vr + op.root;
                if (coord >= q) coord -= q;
                const std::size_t row =
                    lbase + static_cast<std::size_t>(coord) * q;
                double* const crow = clk + row;
                double* const irow = idl + row;
                const double* const av =
                    arrc + static_cast<std::size_t>(vr) * q;
                const int beg = koff[vr];
                const int end = koff[vr + 1];
                if (pr == nullptr) {
                  for (int j = 0; j < q; ++j) {
                    double cl = crow[j];
                    if (vr != 0) {
                      const double a = av[j];
                      if (a > cl) {
                        irow[j] += a - cl;
                        cl = a;
                      }
                    }
                    for (int t2 = beg; t2 < end; ++t2) {
                      cl += pc.cost;
                      arrc[static_cast<std::size_t>(kval[t2]) * q + j] = cl;
                    }
                    crow[j] = cl;
                  }
                } else {
                  std::int64_t* const wsr = pr->ws.data() + row;
                  std::int64_t* const msr = pr->ms.data() + row;
                  std::int64_t* const wrr = pr->wr.data() + row;
                  std::int64_t* const mrr = pr->mr.data() + row;
                  const std::int64_t dws = (end - beg) * pc.k;
                  const std::int64_t dms = (end - beg) * pc.m;
                  for (int j = 0; j < q; ++j) {
                    if (reps[j] <= t) continue;
                    double cl = crow[j];
                    if (vr != 0) {
                      const double a = av[j];
                      if (a > cl) {
                        irow[j] += a - cl;
                        cl = a;
                      }
                      wrr[j] += pc.k;
                      mrr[j] += pc.m;
                    }
                    for (int t2 = beg; t2 < end; ++t2) {
                      cl += pc.cost;
                      arrc[static_cast<std::size_t>(kval[t2]) * q + j] = cl;
                    }
                    wsr[j] += dws;
                    msr[j] += dms;
                    crow[j] = cl;
                  }
                }
              }
            }
          }
        }
        break;
      }
      case RotorOp::Kind::kSkewA:
      case RotorOp::Kind::kSkewB:
      case RotorOp::Kind::kShiftA:
      case RotorOp::Kind::kShiftB: {
        ALGE_CHECK(op.row_rep.empty() && op.col_rep.empty() &&
                       op.layer_rep.empty(),
                   "skew/shift ops are unmasked");
        ALGE_CHECK(q % c == 0, "skew needs c | q");
        const PointCost pc = send_cost(op.words);
        if (arr_rank.empty()) {
          arr_rank.resize(static_cast<std::size_t>(p));
        }
        Profile& pr = rank_ints();
        const int steps = q / c;
        const bool skew = op.kind == RotorOp::Kind::kSkewA ||
                          op.kind == RotorOp::Kind::kSkewB;
        const bool on_a = op.kind == RotorOp::Kind::kSkewA ||
                          op.kind == RotorOp::Kind::kShiftA;
        // Self-exchange coordinate per layer: Cannon's alignment leaves
        // row i = -s0 mod q (A) / column j = -s0 mod q (B) in place; the
        // one-step shifts never self-send (q >= 2 whenever they appear).
        // Both phases run in world-rank order, sends before receives,
        // exactly like the fiber sendrecv (send charge, then sync to the
        // source's post-send clock).
        auto src_of = [&](int l, int i, int j) -> std::size_t {
          const int s0 = skew ? l * steps : 0;
          int si = i;
          int sj = j;
          if (skew) {
            const int t = (i + j + s0) % q;
            if (on_a) {
              sj = t;
            } else {
              si = t;
            }
          } else if (on_a) {
            sj = j + 1 == q ? 0 : j + 1;
          } else {
            si = i + 1 == q ? 0 : i + 1;
          }
          return static_cast<std::size_t>(l) * qq +
                 static_cast<std::size_t>(si) * q +
                 static_cast<std::size_t>(sj);
        };
        auto is_self = [&](int l, int i, int j) {
          if (!skew) return q == 1;
          const int coord = on_a ? i : j;
          return (coord + l * steps) % q == 0;
        };
        std::size_t r = 0;
        for (int l = 0; l < c; ++l) {
          for (int i = 0; i < q; ++i) {
            for (int j = 0; j < q; ++j, ++r) {
              if (is_self(l, i, j)) continue;
              const double cl = clk[r] + pc.cost;
              clk[r] = cl;
              arr_rank[r] = cl;
              pr.ws[r] += pc.k;
              pr.ms[r] += pc.m;
            }
          }
        }
        r = 0;
        for (int l = 0; l < c; ++l) {
          for (int i = 0; i < q; ++i) {
            for (int j = 0; j < q; ++j, ++r) {
              pr.wr[r] += pc.k;
              if (is_self(l, i, j)) continue;  // arrival == own clock, 0 msgs
              const double a = arr_rank[src_of(l, i, j)];
              if (a > clk[r]) {
                idl[r] += a - clk[r];
                clk[r] = a;
              }
              pr.mr[r] += pc.m;
            }
          }
        }
        break;
      }
    }
  }

  // Materialize: exact doubles back in place, integer deltas added once
  // (hop-weighted counters equal the plain ones on the flat network).
  const std::size_t mem_end = static_cast<std::size_t>(mem_cur);
  const std::size_t peak = static_cast<std::size_t>(mem_peak);
  std::size_t r = 0;
  for (int l = 0; l < c; ++l) {
    for (int i = 0; i < q; ++i) {
      for (int j = 0; j < q; ++j, ++r) {
        RankCounters& rc = out[r];
        rc.clock = clock[r];
        rc.idle_time = idle[r];
        rc.flops = flops[r];
        const std::size_t ui = static_cast<std::size_t>(i);
        const std::size_t uj = static_cast<std::size_t>(j);
        const std::size_t ul = static_cast<std::size_t>(l);
        std::int64_t ws = prof_i.ws[ui] + prof_j.ws[uj] + prof_l.ws[ul];
        std::int64_t ms = prof_i.ms[ui] + prof_j.ms[uj] + prof_l.ms[ul];
        std::int64_t wr = prof_i.wr[ui] + prof_j.wr[uj] + prof_l.wr[ul];
        std::int64_t mr = prof_i.mr[ui] + prof_j.mr[uj] + prof_l.mr[ul];
        if (prof_r) {
          ws += prof_r->ws[r];
          ms += prof_r->ms[r];
          wr += prof_r->wr[r];
          mr += prof_r->mr[r];
        }
        rc.words_sent += static_cast<double>(ws);
        rc.msgs_sent += static_cast<double>(ms);
        rc.words_hops += static_cast<double>(ws);
        rc.msgs_hops += static_cast<double>(ms);
        rc.words_recv += static_cast<double>(wr);
        rc.msgs_recv += static_cast<double>(mr);
        rc.mem_highwater =
            std::max(rc.mem_highwater, rc.mem_words + peak);
        rc.mem_words += mem_end;
      }
    }
  }
}

}  // namespace alge::sim
