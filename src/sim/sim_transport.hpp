// The virtual-clock simulator as a transport::Transport: the mailbox /
// rendezvous delivery machinery that used to live inside Comm::send/recv,
// moved verbatim behind the transport seam. Costs are NOT charged here —
// Comm's CostHooks charge clocks and counters before deliver() and after
// receive(), so refactoring delivery behind the interface cannot perturb a
// single counter bit (the tier-1 suites assert exactly that).
//
// Every Comm owns one SimTransport. Under the simulator backend it carries
// all traffic; under a real backend (transport/shm.hpp, transport/tcp.hpp)
// it still carries self-sends — a send to self is a free local copy in the
// model, so it must never touch the wire — and its stats let conformance
// separate self-traffic from wire traffic.
#pragma once

#include "sim/machine.hpp"
#include "transport/transport.hpp"

namespace alge::sim {

class SimTransport final : public transport::Transport {
 public:
  SimTransport(Machine& machine, int rank, int slot)
      : machine_(machine), rank_(rank), slot_(slot) {}

  const char* name() const override { return "sim"; }

  void deliver(int dst, int tag, ConstPayload data, double clock_after_send,
               double msg_count, const FaultDecision& fd) override;

  transport::RecvMeta receive(int src, int tag, Payload out) override;

  /// Logical deliveries through this endpoint: everything under the sim
  /// backend, self-sends only under a real one. Each delivery counts one
  /// message regardless of the model's nmsg split (nothing is chunked —
  /// nothing moves over a wire).
  const transport::TransportStats* wire_stats() const override {
    return &stats_;
  }

 private:
  Machine& machine_;
  int rank_;  ///< sending/receiving world rank this endpoint belongs to
  int slot_;  ///< counter/mailbox index of rank_ (== rank_ unless folding)
  transport::TransportStats stats_;
};

}  // namespace alge::sim
