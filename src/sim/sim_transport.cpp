#include "sim/sim_transport.hpp"

#include <algorithm>

#include "support/common.hpp"

namespace alge::sim {

void SimTransport::deliver(int dst, int tag, ConstPayload data,
                           double clock_after_send, double msg_count,
                           const FaultDecision& fd) {
  const bool gm = machine_.cfg_.data_mode == DataMode::kGhost;
  stats_.msgs_sent += 1.0;
  stats_.words_sent += static_cast<double>(data.size());
  Machine::Rank& target = machine_.ranks_[static_cast<std::size_t>(dst)];
  if (target.waiting && target.wait_src == rank_ && target.wait_tag == tag) {
    if (target.wait_out.size() == data.size()) {
      // Rendezvous: the receiver is already blocked on exactly this
      // message, so deliver straight into its output payload — one copy, no
      // queue traffic, no pool buffer (and no copy at all in ghost mode).
      // The receiver applies clocks, counters, and trace from the metadata
      // exactly as the queued path would, so results are bit-identical
      // either way. An overtake fault has no queued predecessor here and
      // degrades to its reorder window of extra delay.
      if (!gm) {
        const std::span<const double> src_bytes = data.span();
        std::copy(src_bytes.begin(), src_bytes.end(),
                  target.wait_out.span().begin());
      }
      target.direct = true;
      target.direct_arrival =
          clock_after_send + fd.delay + (fd.overtake ? fd.reorder_window : 0.0);
      target.direct_msg_count = msg_count;
      target.waiting = false;  // satisfied: later sends must queue
      ALGE_CHECK(machine_.sched_ != nullptr, "send outside a run");
      machine_.sched_->unblock(target.fid);
      return;
    }
    // Size mismatch: queue it so the receiver raises its usual error.
    ALGE_CHECK(machine_.sched_ != nullptr, "send outside a run");
    machine_.sched_->unblock(target.fid);
  }
  Message msg;
  msg.src = rank_;
  msg.tag = tag;
  // Available once the sender has pushed it out, plus any injected
  // in-flight delay.
  msg.arrival = clock_after_send + fd.delay;
  msg.msg_count = msg_count;
  msg.seq = target.next_seq++;
  msg.words = data.size();
  if (!gm) msg.payload = machine_.acquire_payload(data.span());
  MessageQueue& q =
      target.mailbox.queue(target.mailbox.queue_index(rank_, tag));
  if (fd.overtake) {
    if (!q.empty()) {
      // This message overtakes its queued predecessor in flight; the
      // reliable transport resequences, so payload order is preserved and
      // only the arrival times swap (the predecessor is delayed to this
      // message's arrival). recv's max(clock, arrival) makes the
      // non-monotone times safe.
      std::swap(q.back().arrival, msg.arrival);
    } else {
      msg.arrival += fd.reorder_window;
    }
  }
  target.mailbox.push(std::move(msg));
}

namespace {
struct RecvWait {
  int rank;
  int src;
  int tag;
};

std::string describe_recv_wait(const void* arg) {
  const auto* w = static_cast<const RecvWait*>(arg);
  return strfmt("rank %d waiting for recv from rank %d tag %d", w->rank,
                w->src, w->tag);
}
}  // namespace

transport::RecvMeta SimTransport::receive(int src, int tag, Payload out) {
  const bool gm = machine_.cfg_.data_mode == DataMode::kGhost;
  Machine::Rank& me = machine_.ranks_[static_cast<std::size_t>(slot_)];

  // O(1) matching: the (src, tag) queue holds exactly the candidates, in
  // arrival order. The index stays valid across blocking waits.
  const std::uint32_t qi = me.mailbox.queue_index(src, tag);
  if (me.mailbox.queue(qi).empty()) {
    if (machine_.sched_ == nullptr) {
      // Only reachable on a real backend, where self-sends route here
      // without a fiber scheduler to park on: an empty queue means the
      // program consumed a self-message it never produced.
      throw SimError(strfmt(
          "rank %d recv from itself tag %d with no pending self-send "
          "(self-messages cannot travel the wire — deadlock)",
          rank_, tag));
    }
    const RecvWait wait{rank_, src, tag};
    me.waiting = true;
    me.wait_src = src;
    me.wait_tag = tag;
    me.wait_out = out;
    me.direct = false;
    do {
      machine_.sched_->block(&describe_recv_wait, &wait);
    } while (!me.direct && me.mailbox.queue(qi).empty());
    me.waiting = false;
    if (me.direct) {
      // Rendezvous delivery: the payload is already in `out`; the caller
      // accounts for it exactly as the queued path below would.
      me.direct = false;
      stats_.msgs_recv += 1.0;
      stats_.words_recv += static_cast<double>(out.size());
      return {me.direct_arrival, me.direct_msg_count};
    }
  }
  // Consume the message in place (no pop-by-value move); the payload
  // buffer goes back to the pool and the queue slot is retired.
  Message& msg = me.mailbox.queue(qi).front();

  if (msg.words != out.size()) {
    throw SimError(strfmt(
        "rank %d recv from %d tag %d: expected %zu words, message has "
        "%zu",
        rank_, src, tag, out.size(), msg.words));
  }
  const transport::RecvMeta meta{msg.arrival, msg.msg_count};
  if (!gm) {
    std::copy(msg.payload.begin(), msg.payload.end(), out.span().begin());
    machine_.release_payload(std::move(msg.payload));
  }
  me.mailbox.consume(qi);
  stats_.msgs_recv += 1.0;
  stats_.words_recv += static_cast<double>(out.size());
  return meta;
}

}  // namespace alge::sim
