#include "sim/group.hpp"

#include <unordered_set>

#include "support/common.hpp"

namespace alge::sim {

Group Group::of(std::vector<int> ranks) {
  ALGE_REQUIRE(!ranks.empty(), "group must be non-empty");
  std::unordered_set<int> seen;
  for (int r : ranks) {
    ALGE_REQUIRE(r >= 0, "negative rank %d in group", r);
    ALGE_REQUIRE(seen.insert(r).second, "duplicate rank %d in group", r);
  }
  Group g;
  g.ranks_ = std::move(ranks);
  return g;
}

Group Group::strided(int begin, int count, int stride) {
  ALGE_REQUIRE(count > 0, "group must be non-empty");
  ALGE_REQUIRE(stride != 0, "stride must be non-zero");
  std::vector<int> ranks;
  ranks.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) ranks.push_back(begin + i * stride);
  return of(std::move(ranks));
}

Group Group::world(int p) { return strided(0, p, 1); }

int Group::world_rank(int index) const {
  ALGE_REQUIRE(index >= 0 && index < size(), "group index %d out of range",
               index);
  return ranks_[static_cast<std::size_t>(index)];
}

int Group::index_of(int world_rank) const {
  for (std::size_t i = 0; i < ranks_.size(); ++i) {
    if (ranks_[i] == world_rank) return static_cast<int>(i);
  }
  return -1;
}

}  // namespace alge::sim
