// Heterogeneous extension (Section III cites Ballard–Demmel–Gearhart [7]:
// "communication bounds for heterogeneous architectures"): processors with
// different flop rates, link speeds, memories and energy coefficients.
//
// For a perfectly parallelizable kernel with per-processor communication
// floor W_i = F_i / √M_i (the matmul-type bound), processor i finishing
// F_i flops takes
//
//     T_i = F_i · r_i,   r_i = γt_i + (βt_i + αt_i/m_i)/√M_i
//
// so the makespan-optimal partition gives every processor work inversely
// proportional to its rate: F_i = F_total · (1/r_i) / Σ(1/r_j), making all
// T_i equal — the heterogeneous analogue of "2D balanced blocks", and the
// partition that also attains each processor's communication lower bound
// simultaneously.
#pragma once

#include <vector>

namespace alge::core {

/// One processor class of a heterogeneous machine.
struct HeteroProc {
  double gamma_t = 1.0;  ///< s/flop
  double beta_t = 0.0;   ///< s/word
  double alpha_t = 0.0;  ///< s/message
  double gamma_e = 0.0;  ///< J/flop
  double beta_e = 0.0;   ///< J/word
  double alpha_e = 0.0;  ///< J/message
  double delta_e = 0.0;  ///< J/word/s
  double eps_e = 0.0;    ///< J/s
  double mem_words = 1.0;      ///< M_i
  double max_msg_words = 1e18; ///< m_i
  int count = 1;               ///< processors of this class

  /// Effective seconds per flop including the communication the flop
  /// drags along (the r_i above, for matmul-type kernels).
  double time_rate() const;
  /// Joules per flop including per-word energy of the attached traffic.
  double energy_rate() const;
};

struct HeteroPartition {
  std::vector<double> flops_per_class;  ///< per *processor* of each class
  double makespan = 0.0;
  double energy = 0.0;       ///< dynamic + (δe·M + εe)·T per processor
  double total_flops = 0.0;
};

/// Makespan-optimal work partition of `total_flops` across the classes
/// (flops ∝ 1/r_i per processor); all processors finish together.
HeteroPartition hetero_balance(const std::vector<HeteroProc>& classes,
                               double total_flops);

/// Naive equal split (the baseline the balanced partition beats): every
/// processor gets total/Σcount flops; makespan is set by the slowest.
HeteroPartition hetero_equal_split(const std::vector<HeteroProc>& classes,
                                   double total_flops);

}  // namespace alge::core
