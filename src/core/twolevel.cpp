#include "core/twolevel.hpp"

#include <cmath>

#include "support/common.hpp"

namespace alge::core {

void TwoLevelParams::validate() const {
  auto ok = [](double x) { return std::isfinite(x) && x >= 0.0; };
  ALGE_REQUIRE(p_nodes >= 1.0 && p_cores >= 1.0,
               "node/core counts must be >= 1");
  ALGE_REQUIRE(mem_node > 0.0 && mem_core > 0.0,
               "memory sizes must be positive");
  ALGE_REQUIRE(ok(gamma_t) && ok(beta_t_node) && ok(beta_t_core) &&
                   ok(alpha_t_node) && ok(alpha_t_core),
               "time parameters must be finite and non-negative");
  ALGE_REQUIRE(ok(gamma_e) && ok(beta_e_node) && ok(beta_e_core) &&
                   ok(alpha_e_node) && ok(alpha_e_core) &&
                   ok(delta_e_node) && ok(delta_e_core) && ok(eps_e),
               "energy parameters must be finite and non-negative");
  ALGE_REQUIRE(msg_node >= 1.0 && msg_core >= 1.0,
               "message caps must be >= 1 word");
}

double twolevel_mm_time(double n, const TwoLevelParams& tp) {
  tp.validate();
  const double n3 = n * n * n;
  const double p = tp.p_total();
  return tp.gamma_t * n3 / p +
         tp.beta_t_node_eff() * n3 / (tp.p_nodes * std::sqrt(tp.mem_node)) +
         tp.beta_t_core_eff() * n3 / (p * std::sqrt(tp.mem_core));
}

double twolevel_mm_energy(double n, const TwoLevelParams& tp) {
  tp.validate();
  const double n3 = n * n * n;
  const double pl = tp.p_cores;
  const double rMn = std::sqrt(tp.mem_node);
  const double rMl = std::sqrt(tp.mem_core);
  const double bn_t = tp.beta_t_node_eff();
  const double bl_t = tp.beta_t_core_eff();
  const double bn_e = tp.beta_e_node_eff();
  const double bl_e = tp.beta_e_core_eff();
  // Memory held per core: its share of the node memory plus its local store.
  const double mem_per_core = tp.delta_e_node * tp.mem_node / pl +
                              tp.delta_e_core * tp.mem_core;
  return n3 * (tp.gamma_e + tp.gamma_t * tp.eps_e +
               (bn_e + bn_t * tp.eps_e) / (pl * rMn) +
               (bl_e + bl_t * tp.eps_e) / rMl + tp.gamma_t * mem_per_core +
               mem_per_core * (bn_t * pl / rMn + bl_t / rMl));
}

double twolevel_nbody_time(double n, double f, const TwoLevelParams& tp) {
  tp.validate();
  ALGE_REQUIRE(f > 0.0, "flops per interaction must be positive");
  const double n2 = n * n;
  const double p = tp.p_total();
  return tp.gamma_t * f * n2 / p +
         tp.beta_t_node_eff() * n2 / (tp.mem_node * tp.p_nodes) +
         tp.beta_t_core_eff() * n2 / (tp.mem_core * p);
}

double twolevel_nbody_energy(double n, double f, const TwoLevelParams& tp) {
  tp.validate();
  ALGE_REQUIRE(f > 0.0, "flops per interaction must be positive");
  const double n2 = n * n;
  const double pl = tp.p_cores;
  const double Mn = tp.mem_node;
  const double Ml = tp.mem_core;
  const double bn_t = tp.beta_t_node_eff();
  const double bl_t = tp.beta_t_core_eff();
  const double bn_e = tp.beta_e_node_eff();
  const double bl_e = tp.beta_e_core_eff();
  const double dn = tp.delta_e_node;
  const double dl = tp.delta_e_core;
  // Eq. (17); grouped exactly as in the paper (constant bracket, 1/Mn and
  // 1/Ml brackets, then the four memory-rate cross terms).
  return n2 * ((f * tp.gamma_e + f * tp.gamma_t * tp.eps_e + dn * bn_t +
                dl * bl_t) +
               (pl * bn_e + tp.eps_e * pl * bn_t) / Mn +
               (bl_e + tp.eps_e * bl_t) / Ml +
               dn * f * tp.gamma_t * Mn / pl + dl * f * tp.gamma_t * Ml +
               dn * bl_t * Mn / (pl * Ml) + dl * pl * bn_t * Ml / Mn);
}

}  // namespace alge::core
