// Technology-scaling / co-design questions (Section VI and Figures 6–7, plus
// question 5 of the introduction): how does energy efficiency (GFLOPS/W)
// respond when individual energy parameters improve by a constant factor per
// process generation, and how many generations until a target is met?
#pragma once

#include <string>
#include <vector>

#include "core/algmodel.hpp"

namespace alge::core {

/// Which energy parameters a technology generation improves.
struct ParamScaleSpec {
  bool gamma_e = false;
  bool beta_e = false;
  bool alpha_e = false;
  bool delta_e = false;
  bool eps_e = false;

  static ParamScaleSpec all() { return {true, true, true, true, true}; }
  static ParamScaleSpec only_gamma_e() { return {true, false, false, false, false}; }
  static ParamScaleSpec only_beta_e() { return {false, true, false, false, false}; }
  static ParamScaleSpec only_alpha_e() { return {false, false, true, false, false}; }
  static ParamScaleSpec only_delta_e() { return {false, false, false, true, false}; }
  std::string label() const;
};

/// Multiply the selected energy parameters by `factor` (e.g. 0.5 per
/// generation); time parameters are left untouched, matching the paper's
/// "fixed process technology" scaling experiment.
MachineParams scale_energy_params(const MachineParams& mp,
                                  const ParamScaleSpec& which, double factor);

/// Achieved efficiency of a run: total flops / total energy, in GFLOPS/W
/// (= flops per nanojoule).
double gflops_per_watt(const AlgModel& model, double n, double p, double M,
                       const MachineParams& mp);

struct GenerationPoint {
  int generation = 0;
  double factor = 1.0;  ///< cumulative improvement multiplier
  double gflops_per_watt = 0.0;
};

/// Figures 6/7: efficiency after 0..generations halvings of the selected
/// parameters (per-generation factor defaults to 1/2).
std::vector<GenerationPoint> efficiency_vs_generation(
    const AlgModel& model, double n, double p, double M,
    const MachineParams& mp, const ParamScaleSpec& which, int generations,
    double per_generation_factor = 0.5);

/// Question 5 / V-F: smallest number of generations (scaling `which` by the
/// per-generation factor) until the target efficiency is reached; returns -1
/// if max_generations is not enough (the improvement saturates against the
/// unscaled terms).
int generations_to_target(const AlgModel& model, double n, double p, double M,
                          const MachineParams& mp, const ParamScaleSpec& which,
                          double target_gflops_per_watt, int max_generations,
                          double per_generation_factor = 0.5);

}  // namespace alge::core
