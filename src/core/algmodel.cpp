#include "core/algmodel.hpp"

#include <algorithm>
#include <cmath>

#include "support/common.hpp"

namespace alge::core {

namespace {
void check_npm(double n, double p, double M) {
  ALGE_REQUIRE(n >= 1.0 && std::isfinite(n), "problem size n=%g invalid", n);
  ALGE_REQUIRE(p >= 1.0 && std::isfinite(p), "processor count p=%g invalid",
               p);
  ALGE_REQUIRE(M > 0.0 && std::isfinite(M), "memory M=%g invalid", M);
}

// Allow a hair of slack so optimizer probes on the boundary don't trip.
constexpr double kFitSlack = 1.0 - 1e-9;
}  // namespace

double AlgModel::time(double n, double p, double M,
                      const MachineParams& mp) const {
  return time_of(costs(n, p, M, mp.max_msg_words), mp);
}

double AlgModel::energy(double n, double p, double M,
                        const MachineParams& mp) const {
  const Costs c = costs(n, p, M, mp.max_msg_words);
  return energy_of(c, p, M, time_of(c, mp), mp);
}

EnergyBreakdown AlgModel::breakdown(double n, double p, double M,
                                    const MachineParams& mp) const {
  const Costs c = costs(n, p, M, mp.max_msg_words);
  return energy_breakdown(c, p, M, time_of(c, mp), mp);
}

double AlgModel::avg_power(double n, double p, double M,
                           const MachineParams& mp) const {
  return energy(n, p, M, mp) / time(n, p, M, mp);
}

double AlgModel::proc_power(double n, double p, double M,
                            const MachineParams& mp) const {
  return avg_power(n, p, M, mp) / p;
}

bool AlgModel::in_strong_scaling_range(double n, double p, double M) const {
  return p >= p_min(n, M) * kFitSlack && p <= p_max(n, M) / kFitSlack;
}

// --- Classical matrix multiplication ---

Costs ClassicalMatmulModel::costs(double n, double p, double M,
                                  double m) const {
  check_npm(n, p, M);
  ALGE_REQUIRE(M >= min_memory(n, p) * kFitSlack,
               "M=%g too small: one copy of the matrices needs %g words", M,
               min_memory(n, p));
  const double Meff = std::min(M, max_useful_memory(n, p));
  Costs c;
  c.F = n * n * n / p;
  c.W = n * n * n / (p * std::sqrt(Meff));
  c.S = c.W / m;
  return c;
}

double ClassicalMatmulModel::min_memory(double n, double p) const {
  return n * n / p;
}

double ClassicalMatmulModel::max_useful_memory(double n, double p) const {
  return n * n / std::pow(p, 2.0 / 3.0);
}

double ClassicalMatmulModel::p_min(double n, double M) const {
  return n * n / M;
}

double ClassicalMatmulModel::p_max(double n, double M) const {
  return n * n * n / std::pow(M, 1.5);
}

// --- Strassen / fast matrix multiplication ---

StrassenModel::StrassenModel(double omega0) : omega0_(omega0) {
  ALGE_REQUIRE(omega0 > 2.0 && omega0 <= 3.0, "omega0=%g out of (2,3]",
               omega0);
}

std::string StrassenModel::name() const {
  return strfmt("strassen-mm(w0=%.4f)", omega0_);
}

Costs StrassenModel::costs(double n, double p, double M, double m) const {
  check_npm(n, p, M);
  ALGE_REQUIRE(M >= min_memory(n, p) * kFitSlack,
               "M=%g too small: one copy of the matrices needs %g words", M,
               min_memory(n, p));
  const double Meff = std::min(M, max_useful_memory(n, p));
  Costs c;
  c.F = std::pow(n, omega0_) / p;
  c.W = std::pow(n, omega0_) / (p * std::pow(Meff, omega0_ / 2.0 - 1.0));
  c.S = c.W / m;
  return c;
}

double StrassenModel::min_memory(double n, double p) const {
  return n * n / p;
}

double StrassenModel::max_useful_memory(double n, double p) const {
  return n * n / std::pow(p, 2.0 / omega0_);
}

double StrassenModel::p_min(double n, double M) const { return n * n / M; }

double StrassenModel::p_max(double n, double M) const {
  return std::pow(n, omega0_) / std::pow(M, omega0_ / 2.0);
}

// --- Direct n-body ---

NBodyModel::NBodyModel(double flops_per_interaction)
    : f_(flops_per_interaction) {
  ALGE_REQUIRE(f_ > 0.0, "flops per interaction must be positive");
}

Costs NBodyModel::costs(double n, double p, double M, double m) const {
  check_npm(n, p, M);
  ALGE_REQUIRE(M >= min_memory(n, p) * kFitSlack,
               "M=%g too small: the particles need %g words per processor",
               M, min_memory(n, p));
  const double Meff = std::min(M, max_useful_memory(n, p));
  Costs c;
  c.F = f_ * n * n / p;
  c.W = n * n / (p * Meff);
  c.S = c.W / m;
  return c;
}

double NBodyModel::min_memory(double n, double p) const { return n / p; }

double NBodyModel::max_useful_memory(double n, double p) const {
  return n / std::sqrt(p);
}

double NBodyModel::p_min(double n, double M) const { return n / M; }

double NBodyModel::p_max(double n, double M) const { return n * n / (M * M); }

// --- 2.5D LU ---

Costs LuModel::costs(double n, double p, double M, double m) const {
  check_npm(n, p, M);
  ALGE_REQUIRE(M >= min_memory(n, p) * kFitSlack,
               "M=%g too small: one copy of the matrix needs %g words", M,
               min_memory(n, p));
  (void)m;
  const double Meff = std::min(M, max_useful_memory(n, p));
  Costs c;
  c.F = n * n * n / p;
  c.W = n * n * n / (p * std::sqrt(Meff));
  // Critical-path latency: S = n²/W = p·√M/n, which *grows* with p·√M —
  // this is the term that breaks perfect strong scaling for LU.
  c.S = n * n / c.W;
  return c;
}

double LuModel::min_memory(double n, double p) const { return n * n / p; }

double LuModel::max_useful_memory(double n, double p) const {
  return n * n / std::pow(p, 2.0 / 3.0);
}

double LuModel::p_min(double n, double M) const { return n * n / M; }

double LuModel::p_max(double n, double M) const {
  // Bandwidth term scales like matmul; latency never does. We report the
  // bandwidth range; callers examine S separately.
  return n * n * n / std::pow(M, 1.5);
}

// --- FFT ---

FftModel::FftModel(AllToAll variant) : variant_(variant) {}

std::string FftModel::name() const {
  return variant_ == AllToAll::kNaive ? "fft(naive-a2a)" : "fft(tree-a2a)";
}

Costs FftModel::costs(double n, double p, double M, double m) const {
  check_npm(n, p, M);
  ALGE_REQUIRE(M >= min_memory(n, p) * kFitSlack,
               "M=%g too small: the FFT input needs %g words per processor",
               M, min_memory(n, p));
  Costs c;
  c.F = n * std::log2(n) / p;
  if (p <= 1.0) return c;  // no communication on one processor
  if (variant_ == AllToAll::kNaive) {
    c.W = n / p;
    c.S = p;
  } else {
    c.W = n * std::log2(p) / p;
    c.S = std::log2(p);
  }
  (void)m;  // the paper's FFT message counts are structural, not W/m
  return c;
}

double FftModel::min_memory(double n, double p) const { return n / p; }

double FftModel::max_useful_memory(double n, double p) const {
  return n / p;  // extra memory has no use (Section IV)
}

double FftModel::p_min(double n, double M) const { return n / M; }

double FftModel::p_max(double n, double M) const {
  return n / M;  // empty range: no perfect strong scaling regime
}

// --- factory ---

std::unique_ptr<AlgModel> make_model(const std::string& name, double f,
                                     double omega0) {
  if (name == "nbody") return std::make_unique<NBodyModel>(f);
  if (name == "classical-mm") return std::make_unique<ClassicalMatmulModel>();
  if (name == "strassen") return std::make_unique<StrassenModel>(omega0);
  if (name == "lu-2.5d") return std::make_unique<LuModel>();
  if (name == "fft-naive") {
    return std::make_unique<FftModel>(FftModel::AllToAll::kNaive);
  }
  if (name == "fft-tree") {
    return std::make_unique<FftModel>(FftModel::AllToAll::kTree);
  }
  throw invalid_argument_error(strfmt(
      "unknown model \"%s\" (use \"nbody\", \"classical-mm\", \"strassen\", "
      "\"lu-2.5d\", \"fft-naive\", or \"fft-tree\")",
      name.c_str()));
}

}  // namespace alge::core
