#include "core/nbody_opt.hpp"

#include <cmath>
#include <limits>

#include "core/closed_forms.hpp"
#include "support/common.hpp"

namespace alge::core {

namespace {
/// B = βe + βt·εe + (αe + αt·εe)/m — the per-word energy (including leakage
/// during transfer time) that appears throughout Section V.
double word_energy(const MachineParams& mp) {
  return mp.beta_e + mp.beta_t * mp.eps_e +
         (mp.alpha_e + mp.alpha_t * mp.eps_e) / mp.max_msg_words;
}

/// βt + αt/m — the per-word time.
double word_time(const MachineParams& mp) {
  return mp.beta_t + mp.alpha_t / mp.max_msg_words;
}
}  // namespace

NBodyOptimum::NBodyOptimum(double f, const MachineParams& mp)
    : f_(f), mp_(mp) {
  ALGE_REQUIRE(f > 0.0, "flops per interaction must be positive");
  mp_.validate();
}

double NBodyOptimum::M0() const { return closed::nbody_M0(f_, mp_); }

double NBodyOptimum::min_energy(double n) const {
  return closed::nbody_min_energy(n, f_, mp_);
}

double NBodyOptimum::min_energy_p_lo(double n) const { return n / M0(); }

double NBodyOptimum::min_energy_p_hi(double n) const {
  const double m0 = M0();
  return n * n / (m0 * m0);
}

double NBodyOptimum::min_time(double n, double p_available) const {
  ALGE_REQUIRE(p_available >= 1.0, "need at least one processor");
  const double M = n / std::sqrt(p_available);  // 2D limit
  return closed::nbody_time(n, p_available, M, f_, mp_);
}

double NBodyOptimum::time_threshold_for_optimum() const {
  const double m0 = M0();
  return mp_.gamma_t * f_ * m0 * m0 + word_time(mp_) * m0;
}

double NBodyOptimum::p_min_for_time(double n, double Tmax) const {
  ALGE_REQUIRE(Tmax > 0.0, "Tmax must be positive");
  // 2D-limit runtime: T(p) = γt·f·n²/p + (βt+αt/m)·n/√p. Solve T = Tmax as
  // a quadratic in x = √p (Section V-B).
  const double bt = word_time(mp_);
  const double x = bt * n / (2.0 * Tmax) +
                   std::sqrt(bt * bt * n * n +
                             4.0 * Tmax * mp_.gamma_t * f_ * n * n) /
                       (2.0 * Tmax);
  return x * x;
}

double NBodyOptimum::min_energy_given_time(double n, double Tmax) const {
  if (Tmax >= time_threshold_for_optimum()) return min_energy(n);
  const double p = p_min_for_time(n, Tmax);
  return closed::nbody_energy(n, n / std::sqrt(p), f_, mp_);
}

double NBodyOptimum::max_p_given_energy(double n, double Emax) const {
  // Section V-C: at the 2D limit M = n/√p,
  //   E(M) = A·n² + B·n²/M + δe·γt·f·M·n²
  // with A, B as in the paper. Solve for the largest p (smallest M).
  const double A = f_ * (mp_.gamma_e + mp_.gamma_t * mp_.eps_e) +
                   mp_.delta_e * word_time(mp_);
  const double B = word_energy(mp_);
  const double C = Emax - A * n * n;
  const double disc = C * C - 4.0 * B * n * n * n * n * mp_.delta_e *
                                  mp_.gamma_t * f_;
  ALGE_REQUIRE(C > 0.0 && disc >= 0.0,
               "energy budget Emax=%g is below the attainable minimum %g",
               Emax, min_energy(n));
  const double sqrt_p = (C + std::sqrt(disc)) / (2.0 * n * B);
  return sqrt_p * sqrt_p;
}

double NBodyOptimum::min_time_given_energy(double n, double Emax) const {
  const double p = max_p_given_energy(n, Emax);
  return closed::nbody_time(n, p, n / std::sqrt(p), f_, mp_);
}

double NBodyOptimum::proc_power(double M) const {
  ALGE_REQUIRE(M > 0.0, "memory must be positive");
  const double m = mp_.max_msg_words;
  const double e_rate = mp_.gamma_e * f_ + mp_.beta_e / M +
                        mp_.alpha_e / (m * M);
  const double t_rate = mp_.gamma_t * f_ + mp_.beta_t / M +
                        mp_.alpha_t / (m * M);
  ALGE_REQUIRE(t_rate > 0.0, "all time parameters are zero");
  return e_rate / t_rate + mp_.delta_e * M + mp_.eps_e;
}

double NBodyOptimum::max_p_given_total_power(double P_total_max,
                                             double M) const {
  ALGE_REQUIRE(P_total_max > 0.0, "power budget must be positive");
  return P_total_max / proc_power(M);  // Eq. (19)
}

double NBodyOptimum::max_M_given_proc_power(double P_proc_max) const {
  ALGE_REQUIRE(P_proc_max > 0.0, "power budget must be positive");
  // Corrected Eq. (20); see the header comment. Feasible set in M is the
  // interval between the two roots of
  //   δe·γt·f·M² − C·M + D ≤ 0.
  const double bt = word_time(mp_);
  const double be = mp_.beta_e + mp_.alpha_e / mp_.max_msg_words;
  const double C = mp_.gamma_t * f_ * P_proc_max - mp_.gamma_e * f_ -
                   mp_.eps_e * mp_.gamma_t * f_ - mp_.delta_e * bt;
  const double D = be - (P_proc_max - mp_.eps_e) * bt;
  const double a = mp_.delta_e * mp_.gamma_t * f_;
  if (a == 0.0) {
    // Memory is free in power terms: bound is vacuous when C > 0.
    return C > 0.0 ? std::numeric_limits<double>::infinity() : 0.0;
  }
  const double disc = C * C - 4.0 * a * D;
  if (disc < 0.0) return 0.0;  // power curve never dips below the budget
  // The larger root. When D < 0 (a budget above εe + be/bt, so arbitrarily
  // small memory is affordable) it is positive even with C <= 0; a sign
  // test on C alone would wrongly report infeasibility there.
  const double M_hi = (C + std::sqrt(disc)) / (2.0 * a);
  return M_hi > 0.0 ? M_hi : 0.0;
}

double NBodyOptimum::flops_per_joule_at_optimum() const {
  // f·n²/E*(n): E* is proportional to n², so this is scale-free (V-F).
  const double n = 2.0;  // any n works; pick one that avoids over/underflow
  return f_ * n * n / min_energy(n);
}

}  // namespace alge::core
