// Analytic per-algorithm cost models (Section IV of the paper).
//
// Every algorithm is described by its per-processor asymptotic counts
// F(n,p,M), W(n,p,M), S = W/m (constants omitted, exactly as in the paper),
// plus the memory range within which the communication-avoiding algorithm
// can actually use the memory. Time and energy then follow mechanically
// from Eqs. (1) and (2); the explicit closed forms of the paper
// (Eqs. 9–16) live in closed_forms.hpp and are tested to agree with this
// generic evaluation.
#pragma once

#include <memory>
#include <string>

#include "core/costs.hpp"
#include "core/params.hpp"

namespace alge::core {

class AlgModel {
 public:
  virtual ~AlgModel() = default;

  virtual std::string name() const = 0;

  /// Per-processor counts for problem size n on p processors using M words
  /// of memory per processor; m is the message-size cap. Implementations
  /// clamp the *communication-effective* memory at max_useful_memory — extra
  /// memory beyond the 3D/replication limit cannot reduce communication
  /// (Ballard et al. [12]) but is still paid for in the δe·M·T term.
  virtual Costs costs(double n, double p, double M, double m) const = 0;

  /// Smallest M for which the problem fits: one copy of the data spread
  /// over p processors.
  virtual double min_memory(double n, double p) const = 0;

  /// Largest M that can still reduce communication (the 3D / full
  /// replication limit). For FFT this equals min_memory: extra memory has
  /// no use.
  virtual double max_useful_memory(double n, double p) const = 0;

  /// Perfect strong scaling range in p for fixed per-processor memory M:
  /// [p_min, p_max]. Within it, T scales as 1/p and E is independent of p.
  /// Models with no such region (FFT, and LU's latency term) return
  /// p_max <= p_min.
  virtual double p_min(double n, double M) const = 0;
  virtual double p_max(double n, double M) const = 0;

  // --- Derived quantities (Eqs. 1 and 2) ---
  double time(double n, double p, double M, const MachineParams& mp) const;
  double energy(double n, double p, double M, const MachineParams& mp) const;
  EnergyBreakdown breakdown(double n, double p, double M,
                            const MachineParams& mp) const;
  /// Average power P = E / T.
  double avg_power(double n, double p, double M,
                   const MachineParams& mp) const;
  /// Per-processor average power (the bound of Eq. 20 applies to this).
  double proc_power(double n, double p, double M,
                    const MachineParams& mp) const;

  bool in_strong_scaling_range(double n, double p, double M) const;
};

/// Classical O(n³) matrix multiplication run as 2D/2.5D/3D depending on M
/// (Eq. 8): F = n³/p, W = n³/(p·√M), S = W/m; n²/p ≤ M ≤ n²/p^(2/3).
class ClassicalMatmulModel final : public AlgModel {
 public:
  std::string name() const override { return "classical-mm"; }
  Costs costs(double n, double p, double M, double m) const override;
  double min_memory(double n, double p) const override;
  double max_useful_memory(double n, double p) const override;
  double p_min(double n, double M) const override;
  double p_max(double n, double M) const override;
};

/// Fast (Strassen-like) matrix multiplication via CAPS [15]:
/// F = n^ω0/p, W = n^ω0/(p·M^(ω0/2-1)), S = W/m; n²/p ≤ M ≤ n²/p^(2/ω0).
class StrassenModel final : public AlgModel {
 public:
  /// ω0 defaults to log2(7) ≈ 2.807 (Strassen).
  explicit StrassenModel(double omega0 = kStrassenOmega);
  static constexpr double kStrassenOmega = 2.8073549220576042;  // log2 7

  std::string name() const override;
  double omega() const { return omega0_; }
  Costs costs(double n, double p, double M, double m) const override;
  double min_memory(double n, double p) const override;
  double max_useful_memory(double n, double p) const override;
  double p_min(double n, double M) const override;
  double p_max(double n, double M) const override;

 private:
  double omega0_;
};

/// Direct O(n²) n-body with data replication [16]:
/// F = f·n²/p, W = n²/(p·M), S = W/m; n/p ≤ M ≤ n/√p.
class NBodyModel final : public AlgModel {
 public:
  /// f = flops per pairwise interaction.
  explicit NBodyModel(double flops_per_interaction = 1.0);

  std::string name() const override { return "nbody"; }
  double interaction_flops() const { return f_; }
  Costs costs(double n, double p, double M, double m) const override;
  double min_memory(double n, double p) const override;
  double max_useful_memory(double n, double p) const override;
  double p_min(double n, double M) const override;
  double p_max(double n, double M) const override;

 private:
  double f_;
};

/// 2.5D LU factorization [11]: F = n³/p, W = n³/(p·√M), but S = n²/W
/// = p·√M/n — the latency term does NOT strong-scale (critical path).
class LuModel final : public AlgModel {
 public:
  std::string name() const override { return "lu-2.5d"; }
  Costs costs(double n, double p, double M, double m) const override;
  double min_memory(double n, double p) const override;
  double max_useful_memory(double n, double p) const override;
  /// Bandwidth-only scaling range (the paper's point is that S breaks it).
  double p_min(double n, double M) const override;
  double p_max(double n, double M) const override;
};

/// Parallel FFT, cyclic layout. No perfect strong scaling range and no use
/// for extra memory (M = n/p always).
class FftModel final : public AlgModel {
 public:
  enum class AllToAll { kNaive, kTree };
  explicit FftModel(AllToAll variant);

  std::string name() const override;
  /// kNaive: W = n/p, S = p.  kTree: W = n·log2(p)/p, S = log2(p).
  Costs costs(double n, double p, double M, double m) const override;
  double min_memory(double n, double p) const override;
  double max_useful_memory(double n, double p) const override;
  double p_min(double n, double M) const override;
  double p_max(double n, double M) const override;

 private:
  AllToAll variant_;
};

/// Model factory over the request-level names ("nbody", "classical-mm",
/// "strassen", "lu-2.5d", "fft-naive", "fft-tree") shared by src/serve and
/// src/navigator; `f` feeds NBodyModel, `omega0` feeds StrassenModel.
/// Throws invalid_argument_error on an unknown name, listing the options.
std::unique_ptr<AlgModel> make_model(
    const std::string& name, double f = 1.0,
    double omega0 = StrassenModel::kStrassenOmega);

}  // namespace alge::core
