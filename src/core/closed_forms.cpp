#include "core/closed_forms.hpp"

#include <cmath>

#include "support/common.hpp"

namespace alge::core::closed {

double mm25d_time(double n, double p, double M, const MachineParams& mp) {
  const double n3 = n * n * n;
  const double rM = std::sqrt(M);
  return mp.gamma_t * n3 / p + mp.beta_t * n3 / (rM * p) +
         mp.alpha_t * n3 / (mp.max_msg_words * rM * p);
}

double mm25d_energy(double n, double M, const MachineParams& mp) {
  const double n3 = n * n * n;
  const double rM = std::sqrt(M);
  const double m = mp.max_msg_words;
  return (mp.gamma_e + mp.gamma_t * mp.eps_e) * n3 +
         ((mp.beta_e + mp.beta_t * mp.eps_e) +
          (mp.alpha_e + mp.alpha_t * mp.eps_e) / m) *
             n3 / rM +
         mp.delta_e * mp.gamma_t * M * n3 +
         (mp.delta_e * mp.beta_t + mp.delta_e * mp.alpha_t / m) * rM * n3;
}

double mm3d_energy(double n, double p, const MachineParams& mp) {
  const double n3 = n * n * n;
  const double m = mp.max_msg_words;
  return (mp.gamma_e + mp.gamma_t * mp.eps_e) * n3 +
         ((mp.beta_e + mp.beta_t * mp.eps_e) +
          (mp.alpha_e + mp.alpha_t * mp.eps_e) / m) *
             n * n * std::cbrt(p) +
         mp.delta_e * mp.gamma_t * std::pow(n, 5.0) / std::pow(p, 2.0 / 3.0) +
         (mp.delta_e * mp.beta_t + mp.delta_e * mp.alpha_t / m) *
             std::pow(n, 4.0) / std::cbrt(p);
}

double strassen_energy(double n, double M, double omega0,
                       const MachineParams& mp) {
  const double nw = std::pow(n, omega0);
  const double m = mp.max_msg_words;
  return (mp.gamma_e + mp.gamma_t * mp.eps_e) * nw +
         ((mp.beta_e + mp.beta_t * mp.eps_e) +
          (mp.alpha_e + mp.alpha_t * mp.eps_e) / m) *
             nw / std::pow(M, omega0 / 2.0 - 1.0) +
         mp.delta_e * mp.gamma_t * M * nw +
         (mp.delta_e * mp.beta_t + mp.delta_e * mp.alpha_t / m) *
             std::pow(M, 2.0 - omega0 / 2.0) * nw;
}

double strassen_energy_unlimited(double n, double p, double omega0,
                                 const MachineParams& mp) {
  const double nw = std::pow(n, omega0);
  const double m = mp.max_msg_words;
  return (mp.gamma_e + mp.gamma_t * mp.eps_e) * nw +
         ((mp.beta_e + mp.beta_t * mp.eps_e) +
          (mp.alpha_e + mp.alpha_t * mp.eps_e) / m) *
             n * n * std::pow(p, 1.0 - 2.0 / omega0) +
         // The paper prints n⁵ here, which is the ω0=3 special case; the
         // substitution M = n²/p^(2/ω0) into δe·γt·M·n^ω0 gives n^(ω0+2).
         mp.delta_e * mp.gamma_t * std::pow(n, omega0 + 2.0) *
             std::pow(p, -2.0 / omega0) +
         (mp.delta_e * mp.beta_t + mp.delta_e * mp.alpha_t / m) *
             std::pow(n, 4.0) * std::pow(p, 1.0 - 4.0 / omega0);
}

double nbody_time(double n, double p, double M, double f,
                  const MachineParams& mp) {
  const double n2 = n * n;
  return mp.gamma_t * f * n2 / p + mp.beta_t * n2 / (M * p) +
         mp.alpha_t * n2 / (mp.max_msg_words * M * p);
}

double nbody_energy(double n, double M, double f, const MachineParams& mp) {
  const double n2 = n * n;
  const double m = mp.max_msg_words;
  return (f * (mp.gamma_e + mp.gamma_t * mp.eps_e) +
          mp.delta_e * (mp.beta_t + mp.alpha_t / m)) *
             n2 +
         ((mp.beta_e + mp.beta_t * mp.eps_e) +
          (mp.alpha_e + mp.alpha_t * mp.eps_e) / m) *
             n2 / M +
         mp.delta_e * mp.gamma_t * f * M * n2;
}

double nbody_M0(double f, const MachineParams& mp) {
  const double m = mp.max_msg_words;
  const double numer = mp.beta_e + mp.beta_t * mp.eps_e +
                       (mp.alpha_e + mp.alpha_t * mp.eps_e) / m;
  const double denom = mp.delta_e * mp.gamma_t * f;
  ALGE_REQUIRE(denom > 0.0,
               "M0 undefined when delta_e or gamma_t is zero (memory is "
               "free, so more is always better)");
  return std::sqrt(numer / denom);
}

double nbody_min_energy(double n, double f, const MachineParams& mp) {
  const double n2 = n * n;
  const double m = mp.max_msg_words;
  const double B = mp.beta_e + mp.beta_t * mp.eps_e +
                   (mp.alpha_e + mp.alpha_t * mp.eps_e) / m;
  return n2 * (f * (mp.gamma_e + mp.gamma_t * mp.eps_e) +
               mp.delta_e * (mp.beta_t + mp.alpha_t / m) +
               2.0 * std::sqrt(mp.delta_e * mp.gamma_t * f * B));
}

double fft_time(double n, double p, const MachineParams& mp) {
  const double lgp = p > 1.0 ? std::log2(p) : 0.0;
  return mp.gamma_t * n * std::log2(n) / p + mp.beta_t * n * lgp / p +
         mp.alpha_t * lgp;
}

double fft_energy(double n, double p, const MachineParams& mp) {
  const double lgp = p > 1.0 ? std::log2(p) : 0.0;
  const double lgn = std::log2(n);
  return (mp.gamma_e + mp.eps_e * mp.gamma_t) * n * lgn +
         (mp.alpha_e + mp.eps_e * mp.alpha_t) * p * lgp +
         (mp.beta_e + mp.eps_e * mp.beta_t + mp.delta_e * mp.alpha_t) * n *
             lgp +
         mp.delta_e * mp.gamma_t * n * n * lgn / p +
         mp.delta_e * mp.beta_t * n * n * lgp / p;
}

}  // namespace alge::core::closed
