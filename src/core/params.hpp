// Machine parameters of the paper's abstract distributed machine
// (Section II). These seed both the analytic model (src/core) and the
// executable simulator (src/sim).
//
//   T = γt·F + βt·W + αt·S                         (Eq. 1)
//   E = p·(γe·F + βe·W + αe·S + δe·M·T + εe·T)     (Eq. 2)
#pragma once

#include <string>

namespace alge::core {

struct MachineParams {
  // --- time ---
  double gamma_t = 1.0;  ///< seconds per flop
  double beta_t = 1.0;   ///< seconds per word (reciprocal link bandwidth)
  double alpha_t = 1.0;  ///< seconds per message (link latency)

  // --- energy ---
  double gamma_e = 1.0;  ///< joules per flop
  double beta_e = 1.0;   ///< joules per word transferred
  double alpha_e = 1.0;  ///< joules per message
  double delta_e = 1.0;  ///< joules per stored word per second
  double eps_e = 1.0;    ///< joules per second leaked per processor

  // --- capacities ---
  /// M: memory available per processor, in words. <= 0 means unlimited
  /// (the simulator then skips out-of-memory enforcement and the model must
  /// be given an explicit M).
  double mem_words = 0.0;
  /// m: maximum message size in words (sends longer than this are split).
  double max_msg_words = 1e18;

  /// All-ones parameters: with these, simulated time equals F + W + S and
  /// each energy term equals the corresponding raw count, which makes unit
  /// tests of the counters direct.
  static MachineParams unit();

  /// Throws invalid_argument_error unless every parameter is finite,
  /// non-negative, and max_msg_words >= 1.
  void validate() const;

  std::string to_string() const;
};

}  // namespace alge::core
