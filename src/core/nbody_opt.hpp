// Closed-form answers to the Section-V questions for the data-replicating
// direct n-body algorithm — the paper works these out explicitly
// (Sections V-A through V-F); matmul and Strassen go through the generic
// Optimizer instead.
//
// Two places where the code follows the *derivation* rather than the
// printed formula (the printed versions contain typos; see EXPERIMENTS.md):
//   - Eq. (20)'s discriminant is C² − 4·δe·γt·f·D (the paper prints γe for
//     δe), and D's εe term enters as −εe·(βt+αt/m) *added to* +Pmax·(βt+αt/m),
//     i.e. D = βe + αe/m − (Pmax − εe)(βt + αt/m).
// Both corrections are property-tested against direct evaluation of the
// power expression.
#pragma once

#include "core/params.hpp"

namespace alge::core {

class NBodyOptimum {
 public:
  /// f = flops per pairwise interaction.
  NBodyOptimum(double f, const MachineParams& mp);

  double f() const { return f_; }

  // --- V-A: minimizing energy or runtime ---

  /// Energy-optimal memory M0 = sqrt((βe+βt·εe+(αe+αt·εe)/m)/(δe·γt·f)).
  /// Independent of both n and p.
  double M0() const;

  /// Eq. (18): E*(n) = E_nbody(n, M0).
  double min_energy(double n) const;

  /// The p interval within which M0 is usable (and thus E* attainable):
  /// n/M0 ≤ p ≤ n²/M0².
  double min_energy_p_lo(double n) const;
  double min_energy_p_hi(double n) const;

  /// Minimum-runtime configuration for ≤ p_available processors: largest p,
  /// M at the 2D limit n/√p. Returns the time.
  double min_time(double n, double p_available) const;

  // --- V-B: minimize energy given T ≤ Tmax ---

  /// Threshold from the paper: if Tmax ≥ γt·f·M0² + (βt+αt/m)·M0 then the
  /// global optimum E*(n) is attainable within the deadline.
  double time_threshold_for_optimum() const;

  /// Smallest p meeting the deadline (2D limit), from the quadratic in √p.
  double p_min_for_time(double n, double Tmax) const;

  /// Minimum energy subject to T ≤ Tmax (either E*, or the 2D run at
  /// p_min_for_time).
  double min_energy_given_time(double n, double Tmax) const;

  // --- V-C: minimize time given E ≤ Emax ---

  /// Largest p whose 2D run fits the energy budget (Section V-C closed
  /// form). Throws invalid_argument_error when Emax < E*(n) — the paper
  /// notes the expression "has an imaginary component" then.
  double max_p_given_energy(double n, double Emax) const;

  double min_time_given_energy(double n, double Emax) const;

  // --- V-D / V-E: power bounds ---

  /// Average power of one processor running with memory M (the
  /// parenthesized factor of Eq. 19).
  double proc_power(double M) const;

  /// Eq. (19): largest p under a total average power budget, given M.
  double max_p_given_total_power(double P_total_max, double M) const;

  /// Eq. (20), corrected (see header comment): largest M a per-processor
  /// power budget allows. Returns 0 when no M satisfies the bound.
  double max_M_given_proc_power(double P_proc_max) const;

  // --- V-F: fixed GFLOPS/W target ---

  /// Flops-per-joule at the energy-optimal configuration: f·n²/E*(n),
  /// independent of n, p and M. Multiply by 1e-9 for GFLOPS/W.
  double flops_per_joule_at_optimum() const;

 private:
  double f_;
  MachineParams mp_;
};

}  // namespace alge::core
