#include "core/bounds.hpp"

#include <algorithm>
#include <cmath>

#include "support/common.hpp"

namespace alge::core::bounds {

namespace {
void check_positive(double F, double M) {
  ALGE_REQUIRE(F >= 0.0, "flop count must be non-negative");
  ALGE_REQUIRE(M > 0.0, "memory must be positive");
}
}  // namespace

double sequential_words(double F, double M, double inputs, double outputs) {
  check_positive(F, M);
  return std::max(inputs + outputs, F / std::sqrt(M));
}

double sequential_messages(double F, double M, double m, double inputs,
                           double outputs) {
  ALGE_REQUIRE(m >= 1.0, "message cap must be >= 1 word");
  return sequential_words(F, M, inputs, outputs) / m;
}

double parallel_words(double F, double M, double io) {
  check_positive(F, M);
  return std::max(0.0, F / std::sqrt(M) - io);
}

double matmul_words(double n, double p, double M) {
  ALGE_REQUIRE(n >= 1.0 && p >= 1.0 && M > 0.0, "bad arguments");
  const double memory_dependent = n * n * n / (p * std::sqrt(M));
  const double memory_independent = n * n / std::pow(p, 2.0 / 3.0);
  return std::max(memory_dependent, memory_independent);
}

double strassen_words(double n, double p, double M, double omega0) {
  ALGE_REQUIRE(n >= 1.0 && p >= 1.0 && M > 0.0, "bad arguments");
  ALGE_REQUIRE(omega0 > 2.0 && omega0 <= 3.0, "omega0 out of range");
  const double memory_dependent =
      std::pow(n, omega0) / (p * std::pow(M, omega0 / 2.0 - 1.0));
  const double memory_independent = n * n / std::pow(p, 2.0 / omega0);
  return std::max(memory_dependent, memory_independent);
}

double nbody_words(double n, double p, double M) {
  ALGE_REQUIRE(n >= 1.0 && p >= 1.0 && M > 0.0, "bad arguments");
  return std::max(n * n / (p * M), n / std::sqrt(p));
}

double fft_sequential_words(double n, double M) {
  ALGE_REQUIRE(n >= 2.0 && M >= 2.0, "need n, M >= 2");
  return n * std::log2(n) / std::log2(M);
}

}  // namespace alge::core::bounds
