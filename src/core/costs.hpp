// Per-processor cost triple (F, W, S) and its mapping to time and energy via
// Equations (1) and (2) of the paper.
#pragma once

#include "core/params.hpp"

namespace alge::core {

/// Per-processor counts along the critical path: flops, words sent,
/// messages sent. Doubles (not integers) because the analytic models produce
/// fractional asymptotic values.
struct Costs {
  double F = 0.0;  ///< flops
  double W = 0.0;  ///< words moved
  double S = 0.0;  ///< messages

  Costs operator+(const Costs& o) const { return {F + o.F, W + o.W, S + o.S}; }
  Costs operator*(double k) const { return {F * k, W * k, S * k}; }
};

/// Eq. (1): T = γt·F + βt·W + αt·S.
double time_of(const Costs& c, const MachineParams& mp);

/// Eq. (2) for one processor class: E = p·(γe·F + βe·W + αe·S + δe·M·T + εe·T)
/// where c holds the *per-processor* counts, M is words of memory used per
/// processor, and T is the total runtime.
double energy_of(const Costs& c, double p, double M, double T,
                 const MachineParams& mp);

/// Itemized Eq. (2) terms; `total()` equals energy_of.
struct EnergyBreakdown {
  double flops = 0.0;    ///< p·γe·F
  double words = 0.0;    ///< p·βe·W
  double messages = 0.0; ///< p·αe·S
  double memory = 0.0;   ///< p·δe·M·T
  double leakage = 0.0;  ///< p·εe·T
  double total() const {
    return flops + words + messages + memory + leakage;
  }

  bool operator==(const EnergyBreakdown&) const = default;
};

EnergyBreakdown energy_breakdown(const Costs& c, double p, double M, double T,
                                 const MachineParams& mp);

}  // namespace alge::core
