#include "core/scaling.hpp"

#include <cmath>

#include "support/common.hpp"

namespace alge::core {

std::vector<ScalingPoint> strong_scaling_series(const AlgModel& model,
                                                double n, double M,
                                                const MachineParams& mp,
                                                double overshoot,
                                                int samples) {
  ALGE_REQUIRE(overshoot >= 1.0, "overshoot must be >= 1");
  ALGE_REQUIRE(samples >= 2, "need at least two samples");
  const double p_lo = model.p_min(n, M);
  const double p_hi =
      std::max(p_lo * overshoot, model.p_max(n, M) * overshoot);
  std::vector<ScalingPoint> out;
  out.reserve(static_cast<std::size_t>(samples));
  for (int i = 0; i < samples; ++i) {
    const double t = static_cast<double>(i) / (samples - 1);
    const double p = std::exp(std::log(p_lo) + t * (std::log(p_hi) -
                                                    std::log(p_lo)));
    // The machine offers M words/processor; the algorithm can only exploit
    // up to max_useful_memory of them.
    const double M_use = std::min(M, model.max_useful_memory(n, p));
    const Costs c = model.costs(n, p, M_use, mp.max_msg_words);
    ScalingPoint pt;
    pt.p = p;
    pt.W = c.W;
    pt.W_times_p = c.W * p;
    pt.S = c.S;
    pt.T = time_of(c, mp);
    pt.E = energy_of(c, p, M_use, pt.T, mp);
    pt.in_scaling_range = model.in_strong_scaling_range(n, p, M);
    out.push_back(pt);
  }
  return out;
}

}  // namespace alge::core
