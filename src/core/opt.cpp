#include "core/opt.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "support/common.hpp"

namespace alge::core {

namespace {
constexpr int kRounds = 5;      // zoom iterations
constexpr int kPSamples = 96;   // log-grid points in p per round
constexpr int kMSamples = 64;   // log-grid points in M per round
// Improvements smaller than this are treated as ties (and ties go to the
// run with fewer processors): the energy objective is exactly flat in p
// inside the strong-scaling region, so the argmin in p is otherwise grid
// noise.
constexpr double kImproveTol = 1.0 - 1e-9;

/// Log-spaced samples including both endpoints.
void log_grid(double lo, double hi, int count, std::vector<double>& out) {
  out.clear();
  if (lo > hi) return;
  if (lo == hi || count <= 1) {
    out.push_back(lo);
    return;
  }
  const double llo = std::log(lo);
  const double lhi = std::log(hi);
  for (int i = 0; i < count; ++i) {
    const double t = static_cast<double>(i) / (count - 1);
    out.push_back(std::exp(llo + t * (lhi - llo)));
  }
}
}  // namespace

Optimizer::Optimizer(const AlgModel& model, double n, const MachineParams& mp)
    : model_(model), n_(n), mp_(mp) {
  ALGE_REQUIRE(n >= 1.0 && std::isfinite(n), "problem size n=%g invalid", n);
  mp_.validate();
}

RunPoint Optimizer::evaluate(double p, double M) const {
  RunPoint pt;
  pt.p = p;
  pt.M = M;
  if (p < 1.0 || M <= 0.0) return pt;
  if (M < model_.min_memory(n_, p) * (1.0 - 1e-12)) return pt;
  pt.T = model_.time(n_, p, M, mp_);
  pt.E = model_.energy(n_, p, M, mp_);
  pt.feasible = std::isfinite(pt.T) && std::isfinite(pt.E);
  return pt;
}

bool Optimizer::satisfies(const RunPoint& pt, const Constraint& con) const {
  if (!pt.feasible) return false;
  // A hair of slack so boundary-exact optima (e.g. T == Tmax) survive the
  // discrete grid.
  constexpr double kSlack = 1.0 + 1e-9;
  if (con.t_max && pt.T > *con.t_max * kSlack) return false;
  if (con.e_max && pt.E > *con.e_max * kSlack) return false;
  if (con.total_power_max && pt.total_power() > *con.total_power_max * kSlack)
    return false;
  if (con.proc_power_max && pt.proc_power() > *con.proc_power_max * kSlack)
    return false;
  return true;
}

RunPoint Optimizer::search(Objective obj, const Constraint& con,
                           const OptLimits& limits) const {
  ALGE_REQUIRE(limits.p_available >= 1.0, "need at least one processor");
  ALGE_REQUIRE(limits.M_cap > 0.0, "memory cap must be positive");

  // Smallest p whose minimum footprint fits under the memory cap. All our
  // models have min_memory monotone non-increasing in p, so bisect.
  double p_lo = 1.0;
  double p_hi = limits.p_available;
  if (model_.min_memory(n_, p_hi) > limits.M_cap) {
    return RunPoint{};  // does not fit even at full machine size
  }
  if (model_.min_memory(n_, p_lo) > limits.M_cap) {
    double bad = p_lo;
    double good = p_hi;
    for (int i = 0; i < 200 && good / bad > 1.0 + 1e-12; ++i) {
      const double mid = std::sqrt(bad * good);
      (model_.min_memory(n_, mid) > limits.M_cap ? bad : good) = mid;
    }
    p_lo = good;
  }

  RunPoint best;
  double obj_best = std::numeric_limits<double>::infinity();
  double zoom_p_lo = p_lo;
  double zoom_p_hi = p_hi;
  std::vector<double> ps;
  std::vector<double> ms;

  for (int round = 0; round < kRounds; ++round) {
    log_grid(zoom_p_lo, zoom_p_hi, kPSamples, ps);
    RunPoint round_best;
    double round_obj = std::numeric_limits<double>::infinity();
    for (double p : ps) {
      const double m_lo = model_.min_memory(n_, p);
      const double m_hi =
          std::min(limits.M_cap,
                   std::max(m_lo, model_.max_useful_memory(n_, p)));
      log_grid(m_lo, m_hi, kMSamples, ms);
      for (double M : ms) {
        const RunPoint pt = evaluate(p, M);
        if (!satisfies(pt, con)) continue;
        const double v = obj == Objective::kTime ? pt.T : pt.E;
        // Accept strict improvements; on near-ties (the energy objective is
        // exactly flat in p inside the scaling region) prefer fewer
        // processors.
        const bool better = v < round_obj * kImproveTol;
        const bool tie = !better && round_best.feasible &&
                         v <= round_obj * (1.0 + 1e-9) && pt.p < round_best.p;
        if (better || tie) {
          round_obj = std::min(v, round_obj);
          round_best = pt;
        }
      }
    }
    if (!round_best.feasible) break;
    const bool better = round_obj < obj_best * kImproveTol;
    const bool tie = !better && best.feasible &&
                     round_obj <= obj_best * (1.0 + 1e-9) &&
                     round_best.p < best.p;
    if (better || tie || !best.feasible) {
      best = round_best;
      obj_best = std::min(round_obj, obj_best);
    }
    // Zoom the p window around the incumbent (keep within the full range).
    const double span = std::pow(zoom_p_hi / zoom_p_lo, 1.0 / 6.0);
    zoom_p_lo = std::max(p_lo, best.p / span);
    zoom_p_hi = std::min(p_hi, best.p * span);
  }

  if (best.feasible && obj == Objective::kEnergy) {
    // Energy is flat in p across the strong-scaling region, so the zoom can
    // converge on the right M at an arbitrary p within it. Slide left to
    // the smallest p that can still hold M (min_memory is ∝ 1/p for every
    // model here, so the boundary is p·min_memory(p)/M).
    const double p_slide = std::clamp(
        best.p * model_.min_memory(n_, best.p) / best.M, p_lo, best.p);
    const RunPoint slid = evaluate(p_slide, best.M);
    if (satisfies(slid, con) && slid.E <= best.E * (1.0 + 1e-9)) {
      best = slid;
    }
  }
  return best;
}

RunPoint Optimizer::minimize_energy(const OptLimits& limits) const {
  return search(Objective::kEnergy, {}, limits);
}

RunPoint Optimizer::minimize_time(const OptLimits& limits) const {
  return search(Objective::kTime, {}, limits);
}

RunPoint Optimizer::min_energy_given_time(double Tmax,
                                          const OptLimits& limits) const {
  ALGE_REQUIRE(Tmax > 0.0, "Tmax must be positive");
  Constraint con;
  con.t_max = Tmax;
  return search(Objective::kEnergy, con, limits);
}

RunPoint Optimizer::min_time_given_energy(double Emax,
                                          const OptLimits& limits) const {
  ALGE_REQUIRE(Emax > 0.0, "Emax must be positive");
  Constraint con;
  con.e_max = Emax;
  return search(Objective::kTime, con, limits);
}

RunPoint Optimizer::min_time_given_total_power(double Pmax,
                                               const OptLimits& limits) const {
  ALGE_REQUIRE(Pmax > 0.0, "Pmax must be positive");
  Constraint con;
  con.total_power_max = Pmax;
  return search(Objective::kTime, con, limits);
}

RunPoint Optimizer::min_energy_given_total_power(
    double Pmax, const OptLimits& limits) const {
  ALGE_REQUIRE(Pmax > 0.0, "Pmax must be positive");
  Constraint con;
  con.total_power_max = Pmax;
  return search(Objective::kEnergy, con, limits);
}

RunPoint Optimizer::min_time_given_proc_power(double Pmax,
                                              const OptLimits& limits) const {
  ALGE_REQUIRE(Pmax > 0.0, "Pmax must be positive");
  Constraint con;
  con.proc_power_max = Pmax;
  return search(Objective::kTime, con, limits);
}

RunPoint Optimizer::min_energy_given_proc_power(
    double Pmax, const OptLimits& limits) const {
  ALGE_REQUIRE(Pmax > 0.0, "Pmax must be positive");
  Constraint con;
  con.proc_power_max = Pmax;
  return search(Objective::kEnergy, con, limits);
}

}  // namespace alge::core
