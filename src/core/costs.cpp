#include "core/costs.hpp"

namespace alge::core {

double time_of(const Costs& c, const MachineParams& mp) {
  return mp.gamma_t * c.F + mp.beta_t * c.W + mp.alpha_t * c.S;
}

EnergyBreakdown energy_breakdown(const Costs& c, double p, double M, double T,
                                 const MachineParams& mp) {
  EnergyBreakdown e;
  e.flops = p * mp.gamma_e * c.F;
  e.words = p * mp.beta_e * c.W;
  e.messages = p * mp.alpha_e * c.S;
  e.memory = p * mp.delta_e * M * T;
  e.leakage = p * mp.eps_e * T;
  return e;
}

double energy_of(const Costs& c, double p, double M, double T,
                 const MachineParams& mp) {
  return energy_breakdown(c, p, M, T, mp).total();
}

}  // namespace alge::core
