#include "core/hetero.hpp"

#include <algorithm>
#include <cmath>

#include "support/common.hpp"

namespace alge::core {

double HeteroProc::time_rate() const {
  ALGE_REQUIRE(mem_words > 0.0 && max_msg_words >= 1.0,
               "memory and message cap must be positive");
  return gamma_t + (beta_t + alpha_t / max_msg_words) / std::sqrt(mem_words);
}

double HeteroProc::energy_rate() const {
  return gamma_e + (beta_e + alpha_e / max_msg_words) / std::sqrt(mem_words);
}

namespace {
void validate(const std::vector<HeteroProc>& classes, double total_flops) {
  ALGE_REQUIRE(!classes.empty(), "need at least one processor class");
  ALGE_REQUIRE(total_flops >= 0.0, "flop count must be non-negative");
  for (const auto& c : classes) {
    ALGE_REQUIRE(c.count >= 1, "class count must be >= 1");
    ALGE_REQUIRE(c.time_rate() > 0.0, "processor with zero time rate");
  }
}

double energy_of(const std::vector<HeteroProc>& classes,
                 const std::vector<double>& flops_per_proc, double T) {
  double e = 0.0;
  for (std::size_t i = 0; i < classes.size(); ++i) {
    const HeteroProc& c = classes[i];
    e += c.count * (flops_per_proc[i] * c.energy_rate() +
                    (c.delta_e * c.mem_words + c.eps_e) * T);
  }
  return e;
}
}  // namespace

HeteroPartition hetero_balance(const std::vector<HeteroProc>& classes,
                               double total_flops) {
  validate(classes, total_flops);
  double inv_rate_sum = 0.0;
  for (const auto& c : classes) inv_rate_sum += c.count / c.time_rate();
  HeteroPartition out;
  out.total_flops = total_flops;
  out.makespan = total_flops / inv_rate_sum;
  out.flops_per_class.reserve(classes.size());
  for (const auto& c : classes) {
    out.flops_per_class.push_back(out.makespan / c.time_rate());
  }
  out.energy = energy_of(classes, out.flops_per_class, out.makespan);
  return out;
}

HeteroPartition hetero_equal_split(const std::vector<HeteroProc>& classes,
                                   double total_flops) {
  validate(classes, total_flops);
  int total_procs = 0;
  for (const auto& c : classes) total_procs += c.count;
  const double per_proc = total_flops / total_procs;
  HeteroPartition out;
  out.total_flops = total_flops;
  out.flops_per_class.assign(classes.size(), per_proc);
  for (const auto& c : classes) {
    out.makespan = std::max(out.makespan, per_proc * c.time_rate());
  }
  out.energy = energy_of(classes, out.flops_per_class, out.makespan);
  return out;
}

}  // namespace alge::core
