// Two-level machine model (Fig. 2 of the paper): p = pn·pl processors
// organized as pn nodes of pl cores each, with separate inter-node and
// intra-node link and memory parameters. Equations (12) and (17) give the
// runtime and energy of 2.5D matrix multiplication and the replicating
// n-body algorithm on this machine.
//
// Transcription notes (documented in EXPERIMENTS.md):
//  - Eq. (12)'s first runtime term is printed as γt·n²/p; dimensional
//    analysis and the one-level model (Eq. 9) require γt·n³/p, which is what
//    we implement.
//  - As in the paper, latency is folded in by the substitution
//    β ← β + α/m applied per level.
#pragma once

#include <string>

namespace alge::core {

struct TwoLevelParams {
  // --- structure ---
  double p_nodes = 1.0;  ///< pn: number of nodes
  double p_cores = 1.0;  ///< pl: cores per node
  double mem_node = 1.0;  ///< Mn: words of memory per node
  double mem_core = 1.0;  ///< Ml: words of local (core) memory

  // --- time ---
  double gamma_t = 1.0;       ///< s/flop
  double beta_t_node = 1.0;   ///< s/word on the inter-node link
  double beta_t_core = 1.0;   ///< s/word on the intra-node link
  double alpha_t_node = 0.0;  ///< s/message, inter-node
  double alpha_t_core = 0.0;  ///< s/message, intra-node
  double msg_node = 1e18;     ///< mn: inter-node message cap (words)
  double msg_core = 1e18;     ///< ml: intra-node message cap (words)

  // --- energy ---
  double gamma_e = 1.0;
  double beta_e_node = 1.0;
  double beta_e_core = 1.0;
  double alpha_e_node = 0.0;
  double alpha_e_core = 0.0;
  double delta_e_node = 1.0;  ///< J/word/s, node memory
  double delta_e_core = 1.0;  ///< J/word/s, core memory
  double eps_e = 1.0;         ///< J/s leaked per core

  double p_total() const { return p_nodes * p_cores; }
  /// Effective per-word costs with latency folded in (β + α/m).
  double beta_t_node_eff() const { return beta_t_node + alpha_t_node / msg_node; }
  double beta_t_core_eff() const { return beta_t_core + alpha_t_core / msg_core; }
  double beta_e_node_eff() const { return beta_e_node + alpha_e_node / msg_node; }
  double beta_e_core_eff() const { return beta_e_core + alpha_e_core / msg_core; }

  void validate() const;
};

/// Eq. (12) runtime: T = γt·n³/p + βtn·n³/(pn·√Mn) + βtl·n³/(p·√Ml).
double twolevel_mm_time(double n, const TwoLevelParams& tp);

/// Eq. (12) energy (per the paper, total over the machine is the bracket
/// times n³).
double twolevel_mm_energy(double n, const TwoLevelParams& tp);

/// Eq. (17) runtime: T = γt·f·n²/p + βtn·n²/(Mn·pn) + βtl·n²/(Ml·p).
double twolevel_nbody_time(double n, double f, const TwoLevelParams& tp);

/// Eq. (17) energy.
double twolevel_nbody_energy(double n, double f, const TwoLevelParams& tp);

}  // namespace alge::core
