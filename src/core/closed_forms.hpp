// The paper's explicit closed-form time/energy expressions, transcribed
// term by term (Eqs. 9–11, 13–16, 18). They are algebraically identical to
// the generic AlgModel evaluation; the test suite asserts that equality,
// which guards both the transcription and the generic machinery.
#pragma once

#include "core/params.hpp"

namespace alge::core::closed {

/// Eq. (9): T_2.5DMM(n,p,M) = γt·n³/p + βt·n³/(√M·p) + αt·n³/(m·√M·p).
double mm25d_time(double n, double p, double M, const MachineParams& mp);

/// Eq. (10): E_2.5DMM(n,p,M) — independent of p:
///   (γe+γt·εe)n³ + ((βe+βt·εe) + (αe+αt·εe)/m)·n³/√M
///   + δe·γt·M·n³ + (δe·βt + δe·αt/m)·√M·n³.
double mm25d_energy(double n, double M, const MachineParams& mp);

/// Eq. (11): E_3DMM(n,p) at the limit M = n²/p^(2/3).
double mm3d_energy(double n, double p, const MachineParams& mp);

/// Eq. (13): E_FLM (fast matmul, limited memory), independent of p.
double strassen_energy(double n, double M, double omega0,
                       const MachineParams& mp);

/// Eq. (14): E_FUM at M = n²/p^(2/ω0).
double strassen_energy_unlimited(double n, double p, double omega0,
                                 const MachineParams& mp);

/// Eq. (15): T_nbody(n,p,M) = γt·f·n²/p + βt·n²/(M·p) + αt·n²/(m·M·p).
double nbody_time(double n, double p, double M, double f,
                  const MachineParams& mp);

/// Eq. (16): E_nbody(n,M) — independent of p:
///   (f(γe+γt·εe) + δe(βt+αt/m))n² + ((βe+βt·εe) + (αe+αt·εe)/m)·n²/M
///   + δe·γt·f·M·n².
double nbody_energy(double n, double M, double f, const MachineParams& mp);

/// Section V-A: the energy-optimal memory
///   M0 = sqrt((βe+βt·εe + (αe+αt·εe)/m) / (δe·γt·f)).
double nbody_M0(double f, const MachineParams& mp);

/// Eq. (18): E*_nbody(n) = E_nbody(n, M0) in explicit form.
double nbody_min_energy(double n, double f, const MachineParams& mp);

/// FFT (Section IV, tree all-to-all):
///   T = γt·n·log2 n/p + βt·n·log2 p/p + αt·log2 p.
double fft_time(double n, double p, const MachineParams& mp);

/// E_FFT = (γe+εe·γt)n·log2 n + (αe+εe·αt)p·log2 p
///         + (βe+εe·βt+δe·αt)n·log2 p + δe·γt·n²·log2 n/p
///         + δe·βt·n²·log2 p/p.
double fft_energy(double n, double p, const MachineParams& mp);

}  // namespace alge::core::closed
