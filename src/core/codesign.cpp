#include "core/codesign.hpp"

#include "support/common.hpp"

namespace alge::core {

std::string ParamScaleSpec::label() const {
  std::string out;
  auto add = [&](bool on, const char* name) {
    if (!on) return;
    if (!out.empty()) out += "+";
    out += name;
  };
  add(gamma_e, "gamma_e");
  add(beta_e, "beta_e");
  add(alpha_e, "alpha_e");
  add(delta_e, "delta_e");
  add(eps_e, "eps_e");
  return out.empty() ? "none" : out;
}

MachineParams scale_energy_params(const MachineParams& mp,
                                  const ParamScaleSpec& which, double factor) {
  ALGE_REQUIRE(factor > 0.0, "scale factor must be positive");
  MachineParams out = mp;
  if (which.gamma_e) out.gamma_e *= factor;
  if (which.beta_e) out.beta_e *= factor;
  if (which.alpha_e) out.alpha_e *= factor;
  if (which.delta_e) out.delta_e *= factor;
  if (which.eps_e) out.eps_e *= factor;
  return out;
}

double gflops_per_watt(const AlgModel& model, double n, double p, double M,
                       const MachineParams& mp) {
  const Costs c = model.costs(n, p, M, mp.max_msg_words);
  const double total_flops = c.F * p;
  const double E = model.energy(n, p, M, mp);
  ALGE_REQUIRE(E > 0.0, "zero-energy run: all energy parameters are zero?");
  // flops/J == GFLOPS/W after dividing by 1e9.
  return total_flops / E / 1e9;
}

std::vector<GenerationPoint> efficiency_vs_generation(
    const AlgModel& model, double n, double p, double M,
    const MachineParams& mp, const ParamScaleSpec& which, int generations,
    double per_generation_factor) {
  ALGE_REQUIRE(generations >= 0, "generation count must be non-negative");
  ALGE_REQUIRE(per_generation_factor > 0.0 && per_generation_factor <= 1.0,
               "per-generation factor must be in (0, 1]");
  std::vector<GenerationPoint> out;
  out.reserve(static_cast<std::size_t>(generations) + 1);
  double factor = 1.0;
  for (int g = 0; g <= generations; ++g) {
    const MachineParams scaled = scale_energy_params(mp, which, factor);
    out.push_back({g, factor, gflops_per_watt(model, n, p, M, scaled)});
    factor *= per_generation_factor;
  }
  return out;
}

int generations_to_target(const AlgModel& model, double n, double p, double M,
                          const MachineParams& mp, const ParamScaleSpec& which,
                          double target_gflops_per_watt, int max_generations,
                          double per_generation_factor) {
  ALGE_REQUIRE(target_gflops_per_watt > 0.0, "target must be positive");
  const auto series = efficiency_vs_generation(model, n, p, M, mp, which,
                                               max_generations,
                                               per_generation_factor);
  for (const GenerationPoint& pt : series) {
    if (pt.gflops_per_watt >= target_gflops_per_watt) return pt.generation;
  }
  return -1;
}

}  // namespace alge::core
