// Generic numeric answers to the Section-V optimization questions, for ANY
// AlgModel (the paper gives closed forms for the n-body problem and notes
// that matmul/Strassen are "harder to obtain analytically" — this solver is
// how we answer them anyway, and the closed forms in nbody_opt.hpp
// cross-check it).
//
// The feasible set is the paper's Figure-4 region:
//   1 ≤ p ≤ limits.p_available,
//   min_memory(n,p) ≤ M ≤ min(limits.M_cap, physically held memory),
// optionally intersected with a time / energy / power budget. The search is
// a logarithmic grid over (p, M) with iterative zoom; objectives are smooth
// and unimodal in M, so a few rounds give ~1e-6 relative accuracy.
#pragma once

#include <optional>

#include "core/algmodel.hpp"

namespace alge::core {

struct OptLimits {
  double p_available = 1e15;  ///< largest machine we may use
  double M_cap = 1e18;        ///< physical memory per processor (words)
};

struct RunPoint {
  bool feasible = false;
  double p = 0.0;
  double M = 0.0;
  double T = 0.0;
  double E = 0.0;
  double total_power() const { return T > 0.0 ? E / T : 0.0; }
  double proc_power() const { return p > 0.0 ? total_power() / p : 0.0; }
};

class Optimizer {
 public:
  Optimizer(const AlgModel& model, double n, const MachineParams& mp);

  /// V-A: unconstrained minimum energy. Within the strong-scaling region E
  /// is independent of p; the returned point uses the *smallest* p that
  /// attains the optimum (ties broken toward fewer processors).
  RunPoint minimize_energy(const OptLimits& limits = {}) const;

  /// V-A: unconstrained minimum time (use every processor, all the memory
  /// that helps).
  RunPoint minimize_time(const OptLimits& limits = {}) const;

  /// V-B: min energy subject to T ≤ Tmax.
  RunPoint min_energy_given_time(double Tmax,
                                 const OptLimits& limits = {}) const;

  /// V-C: min time subject to E ≤ Emax.
  RunPoint min_time_given_energy(double Emax,
                                 const OptLimits& limits = {}) const;

  /// V-D: min time / min energy subject to total average power E/T ≤ Pmax.
  RunPoint min_time_given_total_power(double Pmax,
                                      const OptLimits& limits = {}) const;
  RunPoint min_energy_given_total_power(double Pmax,
                                        const OptLimits& limits = {}) const;

  /// V-E: min time / min energy subject to per-processor power ≤ Pmax.
  RunPoint min_time_given_proc_power(double Pmax,
                                     const OptLimits& limits = {}) const;
  RunPoint min_energy_given_proc_power(double Pmax,
                                       const OptLimits& limits = {}) const;

  /// Evaluate one candidate (p, M); infeasible if M is out of range.
  RunPoint evaluate(double p, double M) const;

 private:
  enum class Objective { kTime, kEnergy };
  struct Constraint {
    std::optional<double> t_max;
    std::optional<double> e_max;
    std::optional<double> total_power_max;
    std::optional<double> proc_power_max;
  };

  RunPoint search(Objective obj, const Constraint& con,
                  const OptLimits& limits) const;
  bool satisfies(const RunPoint& pt, const Constraint& con) const;

  const AlgModel& model_;
  double n_;
  MachineParams mp_;
};

}  // namespace alge::core
