// Communication lower bounds (Section III, Eqs. 3–5): the floor that the
// communication-avoiding algorithms attain within constant factors. Used
// by the optimality-check bench and tests to certify that the *measured*
// traffic of every executable algorithm sits within a small constant of
// its bound.
//
// As in the paper, constants are omitted: these are the Ω(·) arguments of
// [4], [5] and [2], so "attaining" a bound means measured/bound = O(1).
#pragma once

namespace alge::core::bounds {

/// Eq. (3), sequential model: W = Ω(max(I+O, F/√M)) for algorithms
/// satisfying the surface-to-volume conditions of [2] (three-nested-loop
/// linear algebra with F "useful" flops).
double sequential_words(double F, double M, double inputs, double outputs);

/// Eq. (4): S = Ω(max((I+O)/m, F/(m·√M))).
double sequential_messages(double F, double M, double m, double inputs,
                           double outputs);

/// Eq. (5), parallel model: W = Ω(max(0, F/√M − (I+O))) per processor.
double parallel_words(double F, double M, double io);

/// Matmul-family per-processor bound with the memory-independent floor of
/// Ballard et al. [12]: W = Ω(max(n³/(p·√M), n²/p^{2/3})) — the second
/// term is why perfect strong scaling stops at p = n³/M^{3/2}.
double matmul_words(double n, double p, double M);

/// Strassen-family version [13]: W = Ω(max(n^ω0/(p·M^{ω0/2−1}),
/// n²/p^{2/ω0})).
double strassen_words(double n, double p, double M, double omega0);

/// Replicating n-body [16]: W = Ω(max(n²/(p·M), n/√p)).
double nbody_words(double n, double p, double M);

/// Sequential FFT bound of Hong & Kung [4]: W = Θ(n·log n / log M).
double fft_sequential_words(double n, double M);

}  // namespace alge::core::bounds
