#include "core/params.hpp"

#include <cmath>

#include "support/common.hpp"

namespace alge::core {

MachineParams MachineParams::unit() {
  MachineParams p;
  p.gamma_t = p.beta_t = p.alpha_t = 1.0;
  p.gamma_e = p.beta_e = p.alpha_e = p.delta_e = p.eps_e = 1.0;
  p.mem_words = 0.0;
  p.max_msg_words = 1e18;
  return p;
}

void MachineParams::validate() const {
  auto ok = [](double x) { return std::isfinite(x) && x >= 0.0; };
  ALGE_REQUIRE(ok(gamma_t) && ok(beta_t) && ok(alpha_t),
               "time parameters must be finite and non-negative");
  ALGE_REQUIRE(ok(gamma_e) && ok(beta_e) && ok(alpha_e) && ok(delta_e) &&
                   ok(eps_e),
               "energy parameters must be finite and non-negative");
  ALGE_REQUIRE(max_msg_words >= 1.0, "max message size must be >= 1 word");
  ALGE_REQUIRE(std::isfinite(mem_words), "mem_words must be finite");
}

std::string MachineParams::to_string() const {
  return strfmt(
      "gamma_t=%.4g beta_t=%.4g alpha_t=%.4g | gamma_e=%.4g beta_e=%.4g "
      "alpha_e=%.4g delta_e=%.4g eps_e=%.4g | M=%.4g m=%.4g",
      gamma_t, beta_t, alpha_t, gamma_e, beta_e, alpha_e, delta_e, eps_e,
      mem_words, max_msg_words);
}

}  // namespace alge::core
