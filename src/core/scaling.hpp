// Strong-scaling analysis series (Figure 3 of the paper): for a fixed
// problem size n and fixed per-processor memory M, sweep p and record the
// per-processor bandwidth cost W times p. Inside the perfect-strong-scaling
// region W·p is constant; past p_max the algorithm cannot use the memory and
// W·p grows as p^(1/3) (classical) / p^(1-2/ω0)·p^(2/ω0)... — the exact
// exponents come out of the models automatically.
#pragma once

#include <vector>

#include "core/algmodel.hpp"

namespace alge::core {

struct ScalingPoint {
  double p = 0.0;
  double W = 0.0;           ///< per-processor words
  double W_times_p = 0.0;   ///< the Figure-3 y-axis
  double S = 0.0;           ///< per-processor messages
  double T = 0.0;           ///< modeled runtime
  double E = 0.0;           ///< modeled energy
  bool in_scaling_range = false;
};

/// Sweep p log-spaced from p_min(n, M) to overshoot·p_max(n, M). Each point
/// uses per-processor memory min(M, max_useful_memory(n, p)) — i.e. a
/// machine with M words per processor running the best algorithm for that p.
std::vector<ScalingPoint> strong_scaling_series(const AlgModel& model,
                                                double n, double M,
                                                const MachineParams& mp,
                                                double overshoot = 8.0,
                                                int samples = 33);

}  // namespace alge::core
