#include "obs/chrome_trace.hpp"

#include <fstream>

#include "support/common.hpp"
#include "support/json.hpp"

namespace alge::obs {

namespace {

constexpr double kUsPerSecond = 1e6;  // trace_event ts/dur are microseconds

json::Value span(const char* name, int pid, int tid, double t0, double t1) {
  json::Value v = json::Value::object();
  v.set("name", name)
      .set("ph", "X")
      .set("pid", pid)
      .set("tid", tid)
      .set("ts", t0 * kUsPerSecond)
      .set("dur", (t1 - t0) * kUsPerSecond);
  return v;
}

json::Value counter(const char* name, int pid, double ts, double value) {
  json::Value args = json::Value::object();
  args.set(name, value);
  json::Value v = json::Value::object();
  v.set("name", name)
      .set("ph", "C")
      .set("pid", pid)
      .set("tid", 0)
      .set("ts", ts * kUsPerSecond)
      .set("args", std::move(args));
  return v;
}

json::Value metadata(const char* what, int pid, int tid, std::string name) {
  json::Value args = json::Value::object();
  args.set("name", std::move(name));
  json::Value v = json::Value::object();
  v.set("name", what)
      .set("ph", "M")
      .set("pid", pid)
      .set("tid", tid)
      .set("args", std::move(args));
  return v;
}

}  // namespace

ChromeTraceWriter::ChromeTraceWriter(std::ostream& out, int p) : out_(out) {
  ALGE_REQUIRE(p >= 1, "chrome trace needs at least one rank, got %d", p);
  cum_.resize(static_cast<std::size_t>(p));
  out_ << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  for (int r = 0; r < p; ++r) {
    emit(metadata("process_name", r, 0, strfmt("rank %d", r)));
    emit(metadata("thread_name", r, 0, "p2p"));
    emit(metadata("thread_name", r, 1, "collectives"));
    emit(metadata("thread_name", r, 2, "phases"));
  }
}

ChromeTraceWriter::~ChromeTraceWriter() { finish(); }

void ChromeTraceWriter::emit(const json::Value& v) {
  if (!first_) out_ << ",\n";
  first_ = false;
  out_ << v.dump();
}

void ChromeTraceWriter::on_event(const sim::TraceEvent& ev) {
  ALGE_CHECK(!finished_, "trace event after finish()");
  ALGE_CHECK(ev.rank >= 0 &&
                 static_cast<std::size_t>(ev.rank) < cum_.size(),
             "trace event for rank %d outside machine", ev.rank);
  Cum& c = cum_[static_cast<std::size_t>(ev.rank)];
  using Kind = sim::TraceEvent::Kind;
  switch (ev.kind) {
    case Kind::kCompute: {
      json::Value v = span("compute", ev.rank, 0, ev.t0, ev.t1);
      json::Value args = json::Value::object();
      args.set("flops", ev.flops);
      v.set("args", std::move(args));
      emit(v);
      c.flops += ev.flops;
      emit(counter("F", ev.rank, ev.t1, c.flops));
      break;
    }
    case Kind::kSend: {
      json::Value v = span("send", ev.rank, 0, ev.t0, ev.t1);
      json::Value args = json::Value::object();
      args.set("dst", ev.peer).set("words", ev.words).set("msgs", ev.msgs)
          .set("tag", ev.tag);
      v.set("args", std::move(args));
      emit(v);
      c.words += ev.words;
      c.msgs += ev.msgs;
      emit(counter("W", ev.rank, ev.t1, c.words));
      emit(counter("S", ev.rank, ev.t1, c.msgs));
      break;
    }
    case Kind::kRecv: {
      json::Value args = json::Value::object();
      args.set("src", ev.peer).set("words", ev.words).set("tag", ev.tag);
      json::Value v = json::Value::object();
      v.set("name", "recv")
          .set("ph", "i")
          .set("pid", ev.rank)
          .set("tid", 0)
          .set("ts", ev.t0 * kUsPerSecond)
          .set("s", "t")
          .set("args", std::move(args));
      emit(v);
      break;
    }
    case Kind::kIdle: {
      json::Value v = span("idle", ev.rank, 0, ev.t0, ev.t1);
      json::Value args = json::Value::object();
      args.set("src", ev.peer).set("tag", ev.tag);
      v.set("args", std::move(args));
      emit(v);
      break;
    }
    case Kind::kColl:
      emit(span(ev.label != nullptr ? ev.label : "collective", ev.rank, 1,
                ev.t0, ev.t1));
      break;
    case Kind::kPhase:
      emit(span(ev.label != nullptr ? ev.label : "phase", ev.rank, 2, ev.t0,
                ev.t1));
      break;
    case Kind::kMem:
      emit(counter("M", ev.rank, ev.t0, ev.words));
      break;
    case Kind::kFault: {
      // Injected fault marker (src/chaos): an instant event named after
      // the fault kind, so drops/dups/delays/pauses line up visually with
      // the send/idle spans whose cost they explain.
      json::Value args = json::Value::object();
      args.set("peer", ev.peer).set("words", ev.words).set("tag", ev.tag)
          .set("count", ev.msgs);
      json::Value v = json::Value::object();
      v.set("name", ev.label != nullptr ? ev.label : "fault")
          .set("ph", "i")
          .set("pid", ev.rank)
          .set("tid", 0)
          .set("ts", ev.t0 * kUsPerSecond)
          .set("s", "t")
          .set("args", std::move(args));
      emit(v);
      break;
    }
  }
}

void ChromeTraceWriter::finish() {
  if (finished_) return;
  finished_ = true;
  out_ << "\n]}\n";
}

void write_chrome_trace(const sim::Trace& trace, int p, std::ostream& out) {
  ChromeTraceWriter w(out, p);
  for (const sim::TraceEvent& ev : trace.events()) w.on_event(ev);
  w.finish();
}

void write_chrome_trace_file(const sim::Trace& trace, int p,
                             const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    throw invalid_argument_error(
        strfmt("cannot open trace output file '%s'", path.c_str()));
  }
  write_chrome_trace(trace, p, out);
}

}  // namespace alge::obs
