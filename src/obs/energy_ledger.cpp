#include "obs/energy_ledger.hpp"

#include <sstream>

#include "support/common.hpp"
#include "support/table.hpp"

namespace alge::obs {

LedgerCell& LedgerCell::operator+=(const LedgerCell& o) {
  counters.flops += o.counters.flops;
  counters.words_sent += o.counters.words_sent;
  counters.msgs_sent += o.counters.msgs_sent;
  counters.words_hops += o.counters.words_hops;
  counters.msgs_hops += o.counters.msgs_hops;
  counters.time += o.counters.time;
  counters.idle += o.counters.idle;
  flops_e += o.flops_e;
  words_e += o.words_e;
  msgs_e += o.msgs_e;
  memory_e += o.memory_e;
  leakage_e += o.leakage_e;
  return *this;
}

const LedgerCell& EnergyLedger::cell(int rank, int phase) const {
  ALGE_REQUIRE(rank >= 0 && rank < p(), "rank %d out of range", rank);
  ALGE_REQUIRE(phase >= 0 &&
                   static_cast<std::size_t>(phase) < phases_.size(),
               "phase %d out of range", phase);
  return cells_[static_cast<std::size_t>(rank)]
               [static_cast<std::size_t>(phase)];
}

LedgerCell EnergyLedger::rank_total(int rank) const {
  ALGE_REQUIRE(rank >= 0 && rank < p(), "rank %d out of range", rank);
  LedgerCell sum;
  for (const LedgerCell& c : cells_[static_cast<std::size_t>(rank)]) sum += c;
  return sum;
}

LedgerCell EnergyLedger::phase_total(int phase) const {
  ALGE_REQUIRE(phase >= 0 &&
                   static_cast<std::size_t>(phase) < phases_.size(),
               "phase %d out of range", phase);
  LedgerCell sum;
  for (const auto& rank : cells_) {
    sum += rank[static_cast<std::size_t>(phase)];
  }
  return sum;
}

double EnergyLedger::total() const {
  double e = 0.0;
  for (const auto& rank : cells_) {
    for (const LedgerCell& c : rank) e += c.total();
  }
  return e;
}

std::string EnergyLedger::render() const {
  Table t({"phase", "time", "gamma_e*F", "beta_e*W", "alpha_e*S",
           "delta_e*M*T", "eps_e*T", "energy", "share"});
  const double grand = total();
  LedgerCell all;
  for (std::size_t ph = 0; ph < phases_.size(); ++ph) {
    const LedgerCell c = phase_total(static_cast<int>(ph));
    all += c;
    t.row()
        .cell(phases_[ph])
        .cell(c.counters.time)
        .cell(c.flops_e)
        .cell(c.words_e)
        .cell(c.msgs_e)
        .cell(c.memory_e)
        .cell(c.leakage_e)
        .cell(c.total())
        .cell(grand > 0.0 ? c.total() / grand : 0.0, "%.3f");
  }
  t.row()
      .cell("TOTAL")
      .cell(all.counters.time)
      .cell(all.flops_e)
      .cell(all.words_e)
      .cell(all.msgs_e)
      .cell(all.memory_e)
      .cell(all.leakage_e)
      .cell(all.total())
      .cell(grand > 0.0 ? 1.0 : 0.0, "%.3f");
  std::ostringstream os;
  t.print(os);
  return os.str();
}

json::Value EnergyLedger::to_json() const {
  auto cell_json = [](const LedgerCell& c) {
    json::Value v = json::Value::object();
    v.set("time", c.counters.time)
        .set("idle", c.counters.idle)
        .set("flops", c.counters.flops)
        .set("words_hops", c.counters.words_hops)
        .set("msgs_hops", c.counters.msgs_hops)
        .set("flops_e", c.flops_e)
        .set("words_e", c.words_e)
        .set("msgs_e", c.msgs_e)
        .set("memory_e", c.memory_e)
        .set("leakage_e", c.leakage_e)
        .set("energy", c.total());
    return v;
  };
  json::Value phases = json::Value::array();
  for (const std::string& name : phases_) phases.push_back(name);
  json::Value per_phase = json::Value::object();
  for (std::size_t ph = 0; ph < phases_.size(); ++ph) {
    per_phase.set(phases_[ph], cell_json(phase_total(static_cast<int>(ph))));
  }
  json::Value per_rank = json::Value::array();
  for (int r = 0; r < p(); ++r) {
    per_rank.push_back(cell_json(rank_total(r)));
  }
  json::Value v = json::Value::object();
  v.set("p", p())
      .set("phases", std::move(phases))
      .set("per_phase", std::move(per_phase))
      .set("per_rank", std::move(per_rank))
      .set("total", total());
  return v;
}

EnergyLedger build_energy_ledger(const sim::Machine& m,
                                 double mem_words_per_rank) {
  ALGE_REQUIRE(m.ledger_enabled(),
               "energy ledger needs MachineConfig::enable_ledger");
  const core::MachineParams& mp = m.params();
  const double T = m.makespan();

  EnergyLedger ledger;
  for (const std::string& name : m.phase_names()) {
    ledger.phases_.push_back(name);
  }
  ledger.phases_.push_back("(tail)");
  const std::size_t nphase = ledger.phases_.size();

  ledger.cells_.resize(static_cast<std::size_t>(m.p()));
  for (int r = 0; r < m.p(); ++r) {
    auto& row = ledger.cells_[static_cast<std::size_t>(r)];
    row.resize(nphase);
    const std::vector<sim::PhaseCounters>& slices = m.phase_counters(r);
    for (std::size_t ph = 0; ph < slices.size(); ++ph) {
      row[ph].counters = slices[ph];
    }
    // The tail: static power between this rank's finish and the machine
    // makespan. Eq. (2) charges δe·M·T + εe·T per rank over the full T.
    sim::PhaseCounters& tail = row[nphase - 1].counters;
    tail.time = T - m.rank_counters(r).clock;
    tail.idle = tail.time;
    for (LedgerCell& c : row) {
      c.flops_e = mp.gamma_e * c.counters.flops;
      c.words_e = mp.beta_e * c.counters.words_hops;
      c.msgs_e = mp.alpha_e * c.counters.msgs_hops;
      c.memory_e = mp.delta_e * mem_words_per_rank * c.counters.time;
      c.leakage_e = mp.eps_e * c.counters.time;
    }
  }
  return ledger;
}

EnergyLedger build_energy_ledger(const sim::Machine& m) {
  const sim::SimTotals t = m.totals();
  const double mean_mem = static_cast<double>(t.mem_highwater_total) /
                          static_cast<double>(m.p());
  return build_energy_ledger(m, mean_mem);
}

}  // namespace alge::obs
