// Term-by-term attribution of the paper's Eq. (2) energy
//
//   E = p·(γe·F + βe·W + αe·S + δe·M·T + εe·T)
//
// to (rank, phase) cells, built from the per-phase counter slices a Machine
// accumulates when MachineConfig::enable_ledger is set (phases come from
// Machine::phase / Comm::phase scopes; unlabelled work lands in "(main)").
//
// Attribution rules, chosen so the cells sum EXACTLY (up to floating-point
// reassociation) to Machine::energy_with_memory(M).total():
//
//   γe·F, βe·W, αe·S   from each cell's own flop / hop-weighted traffic
//                      counts (the dynamic terms follow the work);
//   δe·M·T, εe·T       prorated over each cell's virtual-clock advance —
//                      static power is paid per wall second, wherever the
//                      rank's clock moved;
//   "(tail)"           a synthetic final phase per rank holding the static
//                      energy of T − clock_r, the window between a rank's
//                      own finish and the machine makespan, which belongs
//                      to no user phase but is paid in Eq. (2).
#pragma once

#include <string>
#include <vector>

#include "sim/counters.hpp"
#include "sim/machine.hpp"
#include "support/json.hpp"

namespace alge::obs {

/// One (rank, phase) slice of Eq. (2), in joules (model units).
struct LedgerCell {
  sim::PhaseCounters counters;  ///< the measured slice the terms came from
  double flops_e = 0.0;         ///< γe·F of the slice
  double words_e = 0.0;         ///< βe·W (hop-weighted)
  double msgs_e = 0.0;          ///< αe·S (hop-weighted)
  double memory_e = 0.0;        ///< δe·M·t of the slice
  double leakage_e = 0.0;       ///< εe·t of the slice

  double total() const {
    return flops_e + words_e + msgs_e + memory_e + leakage_e;
  }

  LedgerCell& operator+=(const LedgerCell& o);
};

class EnergyLedger {
 public:
  int p() const { return static_cast<int>(cells_.size()); }

  /// Phase labels, index == phase id; the last entry is the synthetic
  /// "(tail)" phase (see file comment).
  const std::vector<std::string>& phases() const { return phases_; }

  const LedgerCell& cell(int rank, int phase) const;

  /// Sum over phases for one rank (== the rank's full Eq. (2) share).
  LedgerCell rank_total(int rank) const;

  /// Sum over ranks for one phase.
  LedgerCell phase_total(int phase) const;

  /// Grand total; equals Machine::energy_with_memory(M).total() up to
  /// floating-point reassociation (verified by tests/test_obs.cpp).
  double total() const;

  /// Aligned table: one row per phase (summed over ranks) + TOTAL, one
  /// column per Eq. (2) term.
  std::string render() const;

  json::Value to_json() const;

 private:
  friend EnergyLedger build_energy_ledger(const sim::Machine& m,
                                          double mem_words_per_rank);
  std::vector<std::string> phases_;
  std::vector<std::vector<LedgerCell>> cells_;  ///< [rank][phase]
};

/// Build the ledger from a finished run with an explicit per-rank memory M
/// (the same convention as Machine::energy_with_memory). Requires
/// cfg.enable_ledger; throws invalid_argument_error otherwise.
EnergyLedger build_energy_ledger(const sim::Machine& m,
                                 double mem_words_per_rank);

/// Same, with M = the mean per-rank memory high-water mark — the convention
/// of Machine::energy(), so ledger.total() matches m.energy().total().
EnergyLedger build_energy_ledger(const sim::Machine& m);

}  // namespace alge::obs
