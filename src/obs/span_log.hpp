// Wall-clock span recorder for long-running processes (the optimizer query
// service), exported in the same Chrome trace_event JSON dialect as
// chrome_trace.hpp — but on host time, not the simulator's virtual clocks:
// chrome_trace answers "where did the simulated run's time go", SpanLog
// answers "where did the server's wall time go".
//
// Each record is one complete ("ph":"X") event: a name (the query class), a
// small integer lane (the worker thread), microsecond timestamps relative to
// the log's construction, and an args payload ({"cached": ...}). Recording
// is thread-safe and O(1); the store is bounded (drops-and-counts beyond the
// cap) so an unattended server cannot grow without limit.
#pragma once

#include <chrono>
#include <cstddef>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

namespace alge::obs {

class SpanLog {
 public:
  using Clock = std::chrono::steady_clock;

  /// `capacity` bounds the stored span count; further records are dropped
  /// (and counted) rather than allocated.
  explicit SpanLog(std::size_t capacity = 1 << 20);

  /// The log's time origin; callers time spans against this clock.
  Clock::time_point origin() const { return origin_; }

  /// Record one span. `lane` becomes the Chrome tid (use a small worker
  /// index); `cached` lands in the event's args.
  void record(std::string name, int lane, Clock::time_point start,
              Clock::time_point end, bool cached);

  std::size_t size() const;
  std::size_t dropped() const;

  /// Chrome trace_event JSON ({"traceEvents":[...]}), loadable in
  /// chrome://tracing and ui.perfetto.dev alongside chrome_trace exports.
  void write_chrome(std::ostream& out) const;
  /// Same, to a file; throws invalid_argument_error when it cannot open.
  void write_chrome_file(const std::string& path) const;

 private:
  struct Span {
    std::string name;
    int lane = 0;
    double ts_us = 0.0;
    double dur_us = 0.0;
    bool cached = false;
  };

  Clock::time_point origin_;
  std::size_t capacity_;
  mutable std::mutex mu_;
  std::vector<Span> spans_;
  std::size_t dropped_ = 0;
};

}  // namespace alge::obs
