// Chrome trace_event JSON export of a simulated run's timeline, for
// chrome://tracing and https://ui.perfetto.dev.
//
// One trace "process" (pid) per simulated rank, on virtual-clock timestamps
// (simulated seconds × 1e6, the format's microsecond unit). Each rank gets
// three named threads so nesting is unambiguous:
//
//   tid 0 "p2p"         compute / send / idle spans, recv instants
//   tid 1 "collectives" one span per collective call (bcast, allgather, …)
//   tid 2 "phases"      user phase scopes (Comm::phase)
//
// plus per-process counter tracks F/W/S (running cumulative flops, words
// and messages sent) and M (live registered words, from kMem events).
//
// ChromeTraceWriter is a streaming sim::TraceSink: attach it with
// Machine::set_trace_sink(&w, /*keep_events=*/false) to export arbitrarily
// long runs without holding the event vector in memory, or convert a stored
// trace after the fact with write_chrome_trace().
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "sim/trace.hpp"

namespace alge::json {
class Value;
}

namespace alge::obs {

class ChromeTraceWriter : public sim::TraceSink {
 public:
  /// Writes the JSON header and per-rank process metadata immediately;
  /// `p` is the simulated rank count (pids 0..p-1).
  ChromeTraceWriter(std::ostream& out, int p);

  /// finish()es if the caller has not.
  ~ChromeTraceWriter() override;
  ChromeTraceWriter(const ChromeTraceWriter&) = delete;
  ChromeTraceWriter& operator=(const ChromeTraceWriter&) = delete;

  void on_event(const sim::TraceEvent& ev) override;

  /// Close the traceEvents array and the document. Idempotent; no events
  /// may be recorded after it.
  void finish();

 private:
  void emit(const json::Value& v);

  std::ostream& out_;
  bool first_ = true;
  bool finished_ = false;
  /// Running cumulative F/W/S per rank, for the counter tracks.
  struct Cum {
    double flops = 0.0;
    double words = 0.0;
    double msgs = 0.0;
  };
  std::vector<Cum> cum_;
};

/// Export a stored trace (cfg.enable_trace with events kept) in one call.
void write_chrome_trace(const sim::Trace& trace, int p, std::ostream& out);

/// Same, to a file; throws alge::invalid_argument_error when the file
/// cannot be opened.
void write_chrome_trace_file(const sim::Trace& trace, int p,
                             const std::string& path);

}  // namespace alge::obs
