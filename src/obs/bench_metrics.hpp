// Normalization and comparison of the repo's benchmark JSON files, shared
// by tools/bench_diff and the CI bench-regression gate.
//
// These on-disk formats are understood, detected by shape:
//
//   BENCH_sim.json          object with a "benchmarks" OBJECT of named
//                           {baseline, optimized, speedup} entries — the
//                           "optimized" record (the current performance
//                           contract) is emitted under the bare name
//                           ("BM_PingPong.real_time_ns"), so the committed
//                           baseline compares directly against a fresh
//                           --benchmark_out run of the same binary
//   google-benchmark output object with a "benchmarks" ARRAY — each entry
//                           keyed by its "name" field, times normalized to
//                           ns via "time_unit"
//   BENCH_ghost.json        object with "bench": "ghost" and a "results"
//                           array of named full-vs-ghost records — the
//                           speedup ratio and the deterministic simulation
//                           fields are emitted as "ghost.<name>.<field>";
//                           raw wall-clock seconds are machine-dependent
//                           and skipped
//   BENCH_engine.json       top-level array of run records — the LAST
//                           record per "bench" name wins (it is an
//                           append-only history), keyed "engine.<bench>.*"
//   BENCH_navigator.json    object with "bench": "navigator" and a
//                           "results" array of per-(model, generation)
//                           frontier records — emitted as
//                           "navigator.<name>.<field>" (frontier_area /
//                           crossover / inflation lower-better,
//                           robust_fraction and gflops_per_watt
//                           higher-better); navigate_seconds is wall
//                           clock and skipped, negative crossover
//                           sentinels ("unreachable") are skipped
//   BENCH_serve.json        object with "bench": "serve" and a "results"
//                           array of per-phase loadtest records — emitted
//                           as "serve.<phase>.<field>" (queries_per_sec
//                           higher-better, p50_us/p99_us/max_us
//                           lower-better); raw query counts and elapsed
//                           seconds scale with --duration and are skipped
//   BENCH_transport.json    object with "bench": "transport" and a
//                           "results" array of per-(alg, backend) records
//                           from bench/transport_micro — the deterministic
//                           model fields (makespan, wire message/word
//                           totals, p) are emitted as
//                           "transport.<name>.<field>"; wall_seconds is
//                           real machine-dependent clock and skipped
//
// Everything else falls back to the generic numeric-leaf flatten, so the
// tool keeps working when a new format appears. Wall-clock keys
// ("unix_time", "date") are dropped: they change every run by construction.
#pragma once

#include <string>
#include <vector>

#include "support/json.hpp"

namespace alge::obs {

/// A named numeric metric extracted from a bench file.
struct Metric {
  std::string name;
  double value = 0.0;
};

/// Which direction is better for a metric, inferred from its name:
/// +1 higher-better (throughput-like), -1 lower-better (time-like),
/// 0 neutral (counts/configuration: reported, never a regression).
int metric_direction(const std::string& name);

/// Flatten `doc` (any of the formats above) into sorted name→value pairs.
std::vector<Metric> normalize_bench_json(const json::Value& doc);

struct MetricDiff {
  std::string name;
  double base = 0.0;
  double current = 0.0;
  /// Signed relative change (current - base) / |base|; ±inf when base is 0
  /// and current is not.
  double rel_change = 0.0;
  int direction = 0;       ///< see metric_direction
  double threshold = 0.0;  ///< the threshold this metric was gated at
  bool regression = false; ///< worsened beyond the threshold
};

struct BenchDiff {
  std::vector<MetricDiff> metrics;        ///< metrics present in both files
  std::vector<std::string> only_base;     ///< disappeared metrics
  std::vector<std::string> only_current;  ///< new metrics
  int regressions = 0;
};

/// Per-metric threshold override: metrics whose name contains `substring`
/// are gated at `threshold` instead of the default. When several
/// substrings match one metric, the longest match wins (most specific);
/// ties break toward the later entry.
struct ThresholdOverride {
  std::string substring;
  double threshold = 0.0;
};

/// Compare two bench documents. A metric regresses when it moves against
/// its direction by more than its threshold (relative, e.g. 0.1 = 10%):
/// the default for most metrics, or the best-matching override. CI uses
/// overrides to gate deterministic simulated metrics tightly (~1e-4)
/// while leaving machine-dependent wall-clock ratios loose.
BenchDiff diff_bench_json(const json::Value& base, const json::Value& current,
                          double threshold,
                          const std::vector<ThresholdOverride>& overrides = {});

/// Human-readable report: regressions first, then improvements and notable
/// changes; `verbose` lists every common metric.
std::string render_diff(const BenchDiff& diff, double threshold,
                        bool verbose = false);

}  // namespace alge::obs
