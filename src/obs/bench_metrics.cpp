#include "obs/bench_metrics.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <limits>
#include <map>

#include "support/common.hpp"

namespace alge::obs {

namespace {

bool contains(const std::string& haystack, const char* needle) {
  return haystack.find(needle) != std::string::npos;
}

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

/// Keys that change every run by construction and must never be compared.
bool is_timestamp_key(const std::string& key) {
  const std::string k = lower(key);
  return contains(k, "unix_time") || contains(k, "timestamp") || k == "date";
}

void flatten(const std::string& prefix, const json::Value& v,
             std::vector<Metric>& out) {
  switch (v.kind()) {
    case json::Value::Kind::kNumber:
      out.push_back({prefix, v.as_double()});
      break;
    case json::Value::Kind::kObject:
      for (const auto& [key, child] : v.as_object()) {
        if (is_timestamp_key(key)) continue;
        flatten(prefix.empty() ? key : prefix + "." + key, child, out);
      }
      break;
    case json::Value::Kind::kArray: {
      int i = 0;
      for (const json::Value& child : v.as_array()) {
        flatten(strfmt("%s[%d]", prefix.c_str(), i++), child, out);
      }
      break;
    }
    default:
      break;  // strings/bools/null are not metrics
  }
}

double time_unit_to_ns(const json::Value& entry) {
  const json::Value* unit = entry.find("time_unit");
  if (unit == nullptr || !unit->is_string()) return 1.0;
  const std::string& u = unit->as_string();
  if (u == "ns") return 1.0;
  if (u == "us") return 1e3;
  if (u == "ms") return 1e6;
  if (u == "s") return 1e9;
  return 1.0;
}

/// google-benchmark --benchmark_out JSON: {"context":…, "benchmarks":[…]}.
void normalize_google_benchmark(const json::Value& doc,
                                std::vector<Metric>& out) {
  for (const json::Value& entry : doc.at("benchmarks").as_array()) {
    const json::Value* name = entry.find("name");
    if (name == nullptr || !name->is_string()) continue;
    const double to_ns = time_unit_to_ns(entry);
    for (const auto& [key, field] : entry.as_object()) {
      if (!field.is_number() || is_timestamp_key(key)) continue;
      if (key == "real_time" || key == "cpu_time") {
        out.push_back(
            {name->as_string() + "." + key + "_ns",
             field.as_double() * to_ns});
      } else if (key == "items_per_second" || key == "bytes_per_second") {
        out.push_back({name->as_string() + "." + key, field.as_double()});
      }
      // repetition indices, thread counts etc. are configuration, not
      // performance; skip them.
    }
  }
}

/// BENCH_sim.json: {"benchmarks": {"BM_X": {"baseline": {…}, "optimized":
/// {…}, "speedup": s}}}. The "optimized" record is the current performance
/// contract, so its fields are emitted under the bare benchmark name
/// ("BM_X.real_time_ns") — directly comparable with a fresh
/// --benchmark_out run of the same binary. Entries without an "optimized"
/// object are flattened whole (still under the bare name).
void normalize_baseline_table(const json::Value& doc,
                              std::vector<Metric>& out) {
  for (const auto& [name, entry] : doc.at("benchmarks").as_object()) {
    const json::Value* opt =
        entry.is_object() ? entry.find("optimized") : nullptr;
    flatten(name, (opt != nullptr && opt->is_object()) ? *opt : entry, out);
  }
}

/// BENCH_ghost.json: {"bench": "ghost", "results": [{"name": …,
/// "full_seconds": …, "ghost_seconds": …, "speedup": …, …}]}. Raw
/// wall-clock seconds vary with the machine running the bench and are
/// skipped; the speedup ratio (the file's contract) and the deterministic
/// simulation fields (makespan, energy, p) are emitted as
/// "ghost.<name>.<field>".
void normalize_ghost_speedup(const json::Value& doc,
                             std::vector<Metric>& out) {
  for (const json::Value& entry : doc.at("results").as_array()) {
    const json::Value* name = entry.find("name");
    if (name == nullptr || !name->is_string() || !entry.is_object()) continue;
    for (const auto& [key, field] : entry.as_object()) {
      if (!field.is_number() || is_timestamp_key(key)) continue;
      if (key == "full_seconds" || key == "ghost_seconds") continue;
      out.push_back(
          {"ghost." + name->as_string() + "." + key, field.as_double()});
    }
  }
}

/// BENCH_serve.json: {"bench": "serve", "results": [{"name": …,
/// "queries_per_sec": …, "p50_us": …, "p99_us": …, "max_us": …, …}]}.
/// Raw query counts and elapsed seconds scale with the loadtest's
/// --duration flag, not with service performance, and are skipped; the
/// rates and latency quantiles are emitted as "serve.<phase>.<field>".
void normalize_serve_loadtest(const json::Value& doc,
                              std::vector<Metric>& out) {
  for (const json::Value& entry : doc.at("results").as_array()) {
    if (!entry.is_object()) continue;
    const json::Value* name = entry.find("name");
    if (name == nullptr || !name->is_string()) continue;
    for (const auto& [key, field] : entry.as_object()) {
      if (!field.is_number() || is_timestamp_key(key)) continue;
      if (key == "queries" || key == "seconds") continue;
      out.push_back(
          {"serve." + name->as_string() + "." + key, field.as_double()});
    }
  }
}

/// BENCH_frontier.json: {"bench": "frontier", "results": [{"name": …,
/// "p": …, "slots": …, "seconds": …, "makespan": …, "energy": …,
/// "flops_per_rank": …, "words_per_rank": …, "msgs_per_rank": …}]} from
/// bench/frontier_folded. This covers both the static-class rows and the
/// rotor-replay rows (summa/lu/mm25d c>1): "slots" is the executed fiber
/// count (1 for a rotor sweep) and per-rank counters are the folded run's
/// exact values. Wall-clock "seconds" is machine-dependent and skipped;
/// the simulated frontier points themselves are deterministic and emitted
/// as "frontier.<name>.<field>" ("folded"/"anchor_identical" are booleans
/// and fall out of the numeric filter).
void normalize_frontier(const json::Value& doc, std::vector<Metric>& out) {
  for (const json::Value& entry : doc.at("results").as_array()) {
    if (!entry.is_object()) continue;
    const json::Value* name = entry.find("name");
    if (name == nullptr || !name->is_string()) continue;
    for (const auto& [key, field] : entry.as_object()) {
      if (!field.is_number() || is_timestamp_key(key)) continue;
      if (key == "seconds") continue;
      out.push_back(
          {"frontier." + name->as_string() + "." + key, field.as_double()});
    }
  }
}

/// BENCH_navigator.json: {"bench": "navigator", "results": [{"name": …,
/// "frontier_area": …, "crossover_generations": …, "robust_fraction": …,
/// "fault_energy_inflation": …, "folded_scored": …, "fiber_scored": …,
/// …}]} from bench/navigator_sweep (the fold-coverage pair counts scored
/// survivors that took the folded fast path vs per-fiber execution). The
/// frontier metrics are deterministic navigator outputs and are emitted as
/// "navigator.<name>.<field>"; navigate_seconds is wall clock and skipped.
/// Crossover generation counts of -1 mean "target unreachable" — a
/// sentinel, not a small count — so negative values are skipped too (the
/// metric then shows up as removed/added instead of as a fake
/// improvement).
void normalize_navigator(const json::Value& doc, std::vector<Metric>& out) {
  for (const json::Value& entry : doc.at("results").as_array()) {
    if (!entry.is_object()) continue;
    const json::Value* name = entry.find("name");
    if (name == nullptr || !name->is_string()) continue;
    for (const auto& [key, field] : entry.as_object()) {
      if (!field.is_number() || is_timestamp_key(key)) continue;
      if (key == "navigate_seconds") continue;
      if (contains(key, "crossover") && field.as_double() < 0.0) continue;
      out.push_back(
          {"navigator." + name->as_string() + "." + key, field.as_double()});
    }
  }
}

/// BENCH_transport.json: {"bench": "transport", "results": [{"name":
/// "<alg>.<backend>", "p": …, "makespan": …, "wire_msgs_total": …,
/// "wire_words_total": …, "wall_seconds": …}]} from bench/transport_micro.
/// Everything but wall_seconds is a deterministic model quantity (the real
/// backends carry the simulator's ledger bit-identically), so any move is
/// a real cost-schedule change; wall_seconds is the benching machine's
/// clock and is skipped.
void normalize_transport(const json::Value& doc, std::vector<Metric>& out) {
  for (const json::Value& entry : doc.at("results").as_array()) {
    if (!entry.is_object()) continue;
    const json::Value* name = entry.find("name");
    if (name == nullptr || !name->is_string()) continue;
    for (const auto& [key, field] : entry.as_object()) {
      if (!field.is_number() || is_timestamp_key(key)) continue;
      if (key == "wall_seconds") continue;
      out.push_back(
          {"transport." + name->as_string() + "." + key, field.as_double()});
    }
  }
}

/// BENCH_engine.json: an append-only array of run records; compare the
/// latest record of each bench.
void normalize_engine_history(const json::Value& doc,
                              std::vector<Metric>& out) {
  std::map<std::string, const json::Value*> latest;
  for (const json::Value& rec : doc.as_array()) {
    if (!rec.is_object()) continue;
    const json::Value* bench = rec.find("bench");
    if (bench == nullptr || !bench->is_string()) continue;
    latest[bench->as_string()] = &rec;  // later records overwrite
  }
  for (const auto& [bench, rec] : latest) {
    for (const auto& [key, field] : rec->as_object()) {
      if (key == "bench" || is_timestamp_key(key)) continue;
      flatten("engine." + bench + "." + key, field, out);
    }
  }
}

}  // namespace

int metric_direction(const std::string& name) {
  const std::string n = lower(name);
  // Throughput-like: more is better. Checked first so "items_per_second"
  // is not caught by the time-like rules below.
  if (contains(n, "per_second") || contains(n, "per_sec") ||
      contains(n, "speedup") || contains(n, "occupancy") ||
      contains(n, "hits") || contains(n, "per_watt") ||
      contains(n, "robust")) {
    return 1;
  }
  // Latency-like: less is better. "_us"/"_ms" cover the serve loadtest's
  // quantile fields (p50_us, p99_us, max_us) the way "_ns" covers
  // google-benchmark times.
  if (contains(n, "time") || contains(n, "seconds") || contains(n, "_ns") ||
      contains(n, "_us") || contains(n, "_ms") || contains(n, "latency") ||
      contains(n, "p50") || contains(n, "p99") || contains(n, "wall") ||
      contains(n, "wait") || contains(n, "miss")) {
    return -1;
  }
  // Simulated cost-model outputs: less makespan, energy, or per-rank
  // traffic is better. These never vary with the benching machine, so any
  // move is a real cost-schedule change.
  if (contains(n, "makespan") || contains(n, "energy") ||
      contains(n, "per_proc") || contains(n, "per_rank")) {
    return -1;
  }
  // Navigator frontier metrics: a smaller frontier_area hugs the ideal
  // corner tighter, fewer crossover generations reach the efficiency
  // target sooner, and a smaller fault-energy inflation means faults cost
  // less at the optimum. ("fault_energy_inflation" is already caught by
  // the "energy" rule above; listed here for the name's sake.)
  if (contains(n, "area") || contains(n, "crossover") ||
      contains(n, "inflation")) {
    return -1;
  }
  return 0;
}

std::vector<Metric> normalize_bench_json(const json::Value& doc) {
  std::vector<Metric> out;
  if (doc.is_array()) {
    normalize_engine_history(doc, out);
  } else if (doc.is_object()) {
    const json::Value* bench = doc.find("bench");
    const json::Value* results = doc.find("results");
    const json::Value* benchmarks = doc.find("benchmarks");
    if (bench != nullptr && bench->is_string() &&
        bench->as_string() == "ghost" && results != nullptr &&
        results->is_array()) {
      normalize_ghost_speedup(doc, out);
    } else if (bench != nullptr && bench->is_string() &&
               bench->as_string() == "serve" && results != nullptr &&
               results->is_array()) {
      normalize_serve_loadtest(doc, out);
    } else if (bench != nullptr && bench->is_string() &&
               bench->as_string() == "frontier" && results != nullptr &&
               results->is_array()) {
      normalize_frontier(doc, out);
    } else if (bench != nullptr && bench->is_string() &&
               bench->as_string() == "navigator" && results != nullptr &&
               results->is_array()) {
      normalize_navigator(doc, out);
    } else if (bench != nullptr && bench->is_string() &&
               bench->as_string() == "transport" && results != nullptr &&
               results->is_array()) {
      normalize_transport(doc, out);
    } else if (benchmarks != nullptr && benchmarks->is_array()) {
      normalize_google_benchmark(doc, out);
    } else if (benchmarks != nullptr && benchmarks->is_object()) {
      normalize_baseline_table(doc, out);
    } else {
      flatten("", doc, out);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const Metric& a, const Metric& b) { return a.name < b.name; });
  return out;
}

BenchDiff diff_bench_json(const json::Value& base, const json::Value& current,
                          double threshold,
                          const std::vector<ThresholdOverride>& overrides) {
  ALGE_REQUIRE(threshold >= 0.0, "threshold must be non-negative");
  for (const ThresholdOverride& o : overrides) {
    ALGE_REQUIRE(!o.substring.empty() && o.threshold >= 0.0,
                 "bad threshold override");
  }
  // Longest matching substring wins; ties break toward later entries
  // (<=), so callers can append more-specific rules last.
  auto effective_threshold = [&](const std::string& name) {
    double best = threshold;
    std::size_t best_len = 0;
    for (const ThresholdOverride& o : overrides) {
      if (o.substring.size() >= best_len &&
          name.find(o.substring) != std::string::npos) {
        best = o.threshold;
        best_len = o.substring.size();
      }
    }
    return best;
  };
  const std::vector<Metric> b = normalize_bench_json(base);
  const std::vector<Metric> c = normalize_bench_json(current);
  BenchDiff diff;
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < b.size() || j < c.size()) {
    if (j >= c.size() || (i < b.size() && b[i].name < c[j].name)) {
      diff.only_base.push_back(b[i++].name);
      continue;
    }
    if (i >= b.size() || c[j].name < b[i].name) {
      diff.only_current.push_back(c[j++].name);
      continue;
    }
    MetricDiff m;
    m.name = b[i].name;
    m.base = b[i].value;
    m.current = c[j].value;
    if (m.base != 0.0) {
      m.rel_change = (m.current - m.base) / std::abs(m.base);
    } else if (m.current != 0.0) {
      m.rel_change = m.current > 0.0
                         ? std::numeric_limits<double>::infinity()
                         : -std::numeric_limits<double>::infinity();
    }
    m.direction = metric_direction(m.name);
    m.threshold = effective_threshold(m.name);
    m.regression = (m.direction < 0 && m.rel_change > m.threshold) ||
                   (m.direction > 0 && m.rel_change < -m.threshold);
    if (m.regression) ++diff.regressions;
    diff.metrics.push_back(std::move(m));
    ++i;
    ++j;
  }
  return diff;
}

std::string render_diff(const BenchDiff& diff, double threshold,
                        bool verbose) {
  std::string out;
  int improvements = 0;
  for (const MetricDiff& m : diff.metrics) {
    // Classified at the metric's own (possibly overridden) threshold.
    const bool improved =
        (m.direction < 0 && m.rel_change < -m.threshold) ||
        (m.direction > 0 && m.rel_change > m.threshold);
    if (improved) ++improvements;
    if (m.regression) {
      out += strfmt("REGRESSION  %-60s %14.6g -> %14.6g  (%+.1f%%)\n",
                    m.name.c_str(), m.base, m.current, m.rel_change * 100.0);
    } else if (verbose || improved) {
      out += strfmt("%-11s %-60s %14.6g -> %14.6g  (%+.1f%%)\n",
                    improved ? "improved" : "ok", m.name.c_str(), m.base,
                    m.current, m.rel_change * 100.0);
    }
  }
  for (const std::string& name : diff.only_base) {
    out += strfmt("removed     %s\n", name.c_str());
  }
  for (const std::string& name : diff.only_current) {
    out += strfmt("added       %s\n", name.c_str());
  }
  out += strfmt(
      "%zu metric(s) compared at threshold %.0f%%: %d regression(s), "
      "%d improvement(s), %zu removed, %zu added\n",
      diff.metrics.size(), threshold * 100.0, diff.regressions, improvements,
      diff.only_base.size(), diff.only_current.size());
  return out;
}

}  // namespace alge::obs
