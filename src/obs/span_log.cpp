#include "obs/span_log.hpp"

#include <fstream>

#include "support/common.hpp"
#include "support/json.hpp"

namespace alge::obs {

SpanLog::SpanLog(std::size_t capacity)
    : origin_(Clock::now()), capacity_(capacity) {}

void SpanLog::record(std::string name, int lane, Clock::time_point start,
                     Clock::time_point end, bool cached) {
  const double ts_us =
      std::chrono::duration<double, std::micro>(start - origin_).count();
  const double dur_us =
      std::chrono::duration<double, std::micro>(end - start).count();
  std::lock_guard lock(mu_);
  if (spans_.size() >= capacity_) {
    ++dropped_;
    return;
  }
  spans_.push_back(Span{std::move(name), lane, ts_us, dur_us, cached});
}

std::size_t SpanLog::size() const {
  std::lock_guard lock(mu_);
  return spans_.size();
}

std::size_t SpanLog::dropped() const {
  std::lock_guard lock(mu_);
  return dropped_;
}

void SpanLog::write_chrome(std::ostream& out) const {
  std::lock_guard lock(mu_);
  out << "{\"traceEvents\":[";
  bool first = true;
  for (const Span& s : spans_) {
    json::Value ev = json::Value::object();
    ev.set("name", s.name)
        .set("cat", "serve")
        .set("ph", "X")
        .set("pid", 0)
        .set("tid", s.lane)
        .set("ts", s.ts_us)
        .set("dur", s.dur_us);
    json::Value args = json::Value::object();
    args.set("cached", s.cached);
    ev.set("args", std::move(args));
    if (!first) out << ',';
    first = false;
    out << '\n' << ev.dump();
  }
  out << "\n]}\n";
}

void SpanLog::write_chrome_file(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  ALGE_REQUIRE(out.good(), "cannot open \"%s\" for writing", path.c_str());
  write_chrome(out);
}

}  // namespace alge::obs
