#include "seqsim/cache.hpp"

#include <algorithm>
#include <cmath>

#include "algs/lu/local.hpp"
#include "algs/matmul/local.hpp"
#include "support/common.hpp"
#include "support/rng.hpp"

namespace alge::seqsim {

LruCache::LruCache(std::size_t capacity_words) : capacity_(capacity_words) {
  ALGE_REQUIRE(capacity_words >= 1, "cache needs at least one word");
}

void LruCache::touch(std::size_t addr, bool dirty) {
  ++accesses_;
  auto it = map_.find(addr);
  if (it != map_.end()) {
    // Hit: move to front, possibly upgrading to dirty.
    it->second->dirty = it->second->dirty || dirty;
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  ++misses_;
  if (map_.size() == capacity_) {
    const Entry& victim = lru_.back();
    if (victim.dirty) ++writebacks_;
    map_.erase(victim.addr);
    lru_.pop_back();
  }
  lru_.push_front(Entry{addr, dirty});
  map_[addr] = lru_.begin();
}

void LruCache::read(std::size_t addr) { touch(addr, false); }

void LruCache::write(std::size_t addr) { touch(addr, true); }

std::size_t LruCache::traffic_with_flush() const {
  std::size_t dirty = 0;
  for (const Entry& e : lru_) dirty += e.dirty ? 1 : 0;
  return misses_ + writebacks_ + dirty;
}

double LruCache::hit_rate() const {
  return accesses_ == 0
             ? 0.0
             : 1.0 - static_cast<double>(misses_) /
                         static_cast<double>(accesses_);
}

namespace {
/// Shared state for the traced kernels: real data plus address mapping
/// A -> [0, n²), B -> [n², 2n²), C -> [2n², 3n²).
struct TracedProduct {
  TracedProduct(int n_, std::size_t fast_words)
      : n(n_), cache(fast_words) {
    ALGE_REQUIRE(n >= 1, "matrix size must be positive");
    Rng rng(2024);
    a = algs::random_matrix(n, n, rng);
    b = algs::random_matrix(n, n, rng);
    c.assign(a.size(), 0.0);
  }

  double read_a(int i, int k) {
    cache.read(static_cast<std::size_t>(i) * n + k);
    return a[static_cast<std::size_t>(i) * n + k];
  }
  double read_b(int k, int j) {
    const std::size_t n2 = a.size();
    cache.read(n2 + static_cast<std::size_t>(k) * n + j);
    return b[static_cast<std::size_t>(k) * n + j];
  }
  void update_c(int i, int j, double delta) {
    const std::size_t n2 = a.size();
    const std::size_t addr = 2 * n2 + static_cast<std::size_t>(i) * n + j;
    cache.read(addr);
    cache.write(addr);
    c[static_cast<std::size_t>(i) * n + j] += delta;
  }

  SeqRun finish() {
    SeqRun run;
    run.flops = algs::matmul_flops(n, n, n);
    run.words_moved = cache.traffic_with_flush();
    run.accesses = cache.accesses();
    std::vector<double> ref(a.size(), 0.0);
    algs::matmul_add(a.data(), b.data(), ref.data(), n, n, n);
    run.max_abs_error = algs::max_abs_diff(c, ref);
    return run;
  }

  int n;
  LruCache cache;
  std::vector<double> a;
  std::vector<double> b;
  std::vector<double> c;
};
}  // namespace

SeqRun traced_matmul_naive(int n, std::size_t fast_words) {
  TracedProduct t(n, fast_words);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      for (int k = 0; k < n; ++k) {
        t.update_c(i, j, t.read_a(i, k) * t.read_b(k, j));
      }
    }
  }
  return t.finish();
}

SeqRun traced_matmul_blocked(int n, int block, std::size_t fast_words) {
  ALGE_REQUIRE(block >= 1, "block must be positive");
  TracedProduct t(n, fast_words);
  for (int i0 = 0; i0 < n; i0 += block) {
    const int i1 = std::min(n, i0 + block);
    for (int j0 = 0; j0 < n; j0 += block) {
      const int j1 = std::min(n, j0 + block);
      for (int k0 = 0; k0 < n; k0 += block) {
        const int k1 = std::min(n, k0 + block);
        for (int i = i0; i < i1; ++i) {
          for (int j = j0; j < j1; ++j) {
            double acc = 0.0;
            for (int k = k0; k < k1; ++k) {
              acc += t.read_a(i, k) * t.read_b(k, j);
            }
            t.update_c(i, j, acc);
          }
        }
      }
    }
  }
  return t.finish();
}

int optimal_block(std::size_t fast_words) {
  const int b = static_cast<int>(
      std::floor(std::sqrt(static_cast<double>(fast_words) / 3.0)));
  return std::max(1, b);
}

namespace {
/// Traced in-place LU state: one n×n matrix at address base 0.
struct TracedLu {
  TracedLu(int n_, std::size_t fast_words) : n(n_), cache(fast_words) {
    ALGE_REQUIRE(n >= 1, "matrix size must be positive");
    Rng rng(4096);
    a = algs::random_matrix(n, n, rng);
    for (int i = 0; i < n; ++i) {
      a[static_cast<std::size_t>(i) * n + i] += static_cast<double>(n);
    }
    reference = a;
  }

  double get(int i, int j) {
    cache.read(static_cast<std::size_t>(i) * n + j);
    return a[static_cast<std::size_t>(i) * n + j];
  }
  void put(int i, int j, double v) {
    cache.write(static_cast<std::size_t>(i) * n + j);
    a[static_cast<std::size_t>(i) * n + j] = v;
  }

  /// Eliminate column k of rows (i0..i1) against columns (j0..j1):
  /// A[i][k] /= A[k][k] (when j0 <= k), then A[i][j] -= A[i][k]·A[k][j].
  void eliminate(int k, int i0, int i1, int j0, int j1, bool form_l) {
    for (int i = i0; i < i1; ++i) {
      double lik;
      if (form_l) {
        lik = get(i, k) / get(k, k);
        put(i, k, lik);
        flops += 1.0;
      } else {
        lik = get(i, k);
      }
      for (int j = std::max(j0, k + 1); j < j1; ++j) {
        const double v = get(i, j) - lik * get(k, j);
        put(i, j, v);
        flops += 2.0;
      }
    }
  }

  SeqRun finish() {
    SeqRun run;
    run.flops = flops;
    run.words_moved = cache.traffic_with_flush();
    run.accesses = cache.accesses();
    auto ref = reference;
    algs::lu_factor_inplace(ref, n);
    run.max_abs_error = algs::max_abs_diff(a, ref);
    return run;
  }

  int n;
  LruCache cache;
  double flops = 0.0;
  std::vector<double> a;
  std::vector<double> reference;
};
}  // namespace

SeqRun traced_lu_naive(int n, std::size_t fast_words) {
  TracedLu t(n, fast_words);
  for (int k = 0; k < n; ++k) {
    t.eliminate(k, k + 1, n, k + 1, n, /*form_l=*/true);
  }
  return t.finish();
}

SeqRun traced_lu_blocked(int n, int block, std::size_t fast_words) {
  ALGE_REQUIRE(block >= 1, "block must be positive");
  TracedLu t(n, fast_words);
  for (int k0 = 0; k0 < n; k0 += block) {
    const int k1 = std::min(n, k0 + block);
    // Panel factorization: columns k0..k1 over all rows below.
    for (int k = k0; k < k1; ++k) {
      t.eliminate(k, k + 1, n, k + 1, k1, /*form_l=*/true);
    }
    // Row panel (U block row): apply the same eliminations to columns
    // right of the panel, tile by tile.
    for (int j0 = k1; j0 < n; j0 += block) {
      const int j1 = std::min(n, j0 + block);
      for (int k = k0; k < k1; ++k) {
        t.eliminate(k, k + 1, k1, j0, j1, /*form_l=*/false);
      }
      // Trailing tiles below, reusing the resident U tile.
      for (int i0 = k1; i0 < n; i0 += block) {
        const int i1 = std::min(n, i0 + block);
        for (int k = k0; k < k1; ++k) {
          t.eliminate(k, i0, i1, j0, j1, /*form_l=*/false);
        }
      }
    }
  }
  return t.finish();
}

}  // namespace alge::seqsim
