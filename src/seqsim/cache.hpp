// The paper's *sequential* machine (Fig. 1(a)): a fast memory of M words in
// front of a slow memory, with W counting the words moved between them —
// the setting of the Hong–Kung / Irony–Toledo–Tiskin bounds (Eqs. 3–4).
//
// LruCache simulates a fully associative, write-back, LRU fast memory over
// a flat word-addressed space. The traced kernels run the real computation
// (results are verified) while pushing every operand access through the
// cache, so the measured miss/write-back traffic is the W of Eq. (3) for
// the actual access pattern — and the blocked variant demonstrates the
// paper's theme at the sequential level: using all of fast memory brings
// W down to the Θ(n³/√M) floor, which no schedule can beat.
#pragma once

#include <cstddef>
#include <list>
#include <unordered_map>
#include <vector>

namespace alge::seqsim {

/// Fully associative LRU cache with write-back accounting. Addresses are
/// word indices into a flat slow memory.
class LruCache {
 public:
  explicit LruCache(std::size_t capacity_words);

  /// Read access: counts a miss (one word loaded) if absent.
  void read(std::size_t addr);
  /// Write access: like read, but marks the resident word dirty; evicting
  /// a dirty word later counts one write-back.
  void write(std::size_t addr);

  std::size_t capacity() const { return capacity_; }
  std::size_t accesses() const { return accesses_; }
  std::size_t misses() const { return misses_; }
  std::size_t writebacks() const { return writebacks_; }
  std::size_t resident() const { return map_.size(); }
  /// Words moved between fast and slow memory: loads + write-backs,
  /// including the final flush of dirty contents.
  std::size_t traffic_with_flush() const;

  double hit_rate() const;

 private:
  struct Entry {
    std::size_t addr;
    bool dirty;
  };
  void touch(std::size_t addr, bool dirty);

  std::size_t capacity_;
  std::size_t accesses_ = 0;
  std::size_t misses_ = 0;
  std::size_t writebacks_ = 0;
  std::list<Entry> lru_;  // front = most recent
  std::unordered_map<std::size_t, std::list<Entry>::iterator> map_;
};

/// Cost report of a traced sequential kernel.
struct SeqRun {
  double flops = 0.0;
  std::size_t words_moved = 0;  ///< W: loads + write-backs (with flush)
  std::size_t accesses = 0;
  double max_abs_error = 0.0;   ///< result vs untraced reference
};

/// C = A·B (n×n, row-major) with the naive i-j-k loop order, every element
/// access passed through a fast memory of `fast_words`.
SeqRun traced_matmul_naive(int n, std::size_t fast_words);

/// Same product, blocked with tile edge `block` (choose ~sqrt(fast/3) to
/// fit three tiles). The paper's communication-optimal sequential schedule.
SeqRun traced_matmul_blocked(int n, int block, std::size_t fast_words);

/// Largest tile edge such that three tiles fit in `fast_words`.
int optimal_block(std::size_t fast_words);

/// In-place LU without pivoting (diagonally dominant input), every element
/// access traced: the classical right-looking element order.
SeqRun traced_lu_naive(int n, std::size_t fast_words);

/// Same factorization tiled with edge `block` (panel factor, panel solves,
/// tile-by-tile trailing update) — the schedule that brings LU's traffic to
/// the same Θ(n³/√M) floor (Section III covers LU alongside matmul).
SeqRun traced_lu_blocked(int n, int block, std::size_t fast_words);

}  // namespace alge::seqsim
