// One-call experiment harness: build a simulated machine, distribute a
// random problem, run a distributed algorithm, optionally verify the result
// against a sequential reference, and report the measured counters and
// Eq. (2) energy. Used by the benches (bench/) and the examples
// (examples/) so every experiment exercises the same code paths the tests
// verify.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "algs/fft/fft.hpp"
#include "algs/matmul/distributed.hpp"
#include "algs/strassen/caps.hpp"
#include "core/params.hpp"
#include "sim/machine.hpp"

namespace alge::algs::harness {

/// Per-thread observation hooks for harness runs. The run_* entry points
/// construct their MachineConfig from the calling thread's observer
/// (run_observer()), so callers — e.g. engine::execute_traced — can turn on
/// tracing or the energy ledger and inspect the finished Machine without any
/// change to the run_* signatures (and therefore without perturbing the
/// engine's content-addressed cache keys, which hash only the spec).
///
/// Thread-local on purpose: each engine pool worker observes only its own
/// Machines, preserving the one-Machine-per-thread confinement documented in
/// sim/machine.hpp.
struct RunObserver {
  bool enable_trace = false;   ///< sets MachineConfig::enable_trace
  bool enable_ledger = false;  ///< sets MachineConfig::enable_ledger
  /// Called on the MachineConfig just before the Machine is constructed —
  /// the hook chaos uses to install fault injectors and wake policies
  /// (MachineConfig::faults / wake_policy) without new run_* parameters.
  std::function<void(sim::MachineConfig&)> configure;
  /// Called with the finished Machine (counters final, run complete) before
  /// the harness returns, e.g. to copy the trace or build an energy ledger.
  std::function<void(const sim::Machine&)> after_run;
};

/// The calling thread's observer; default-constructed (inert) until set.
RunObserver& run_observer();

/// MachineConfig seeded from the calling thread's observer (trace/ledger
/// flags applied, then the configure hook); with the default (inert)
/// observer this is exactly the config the harness always built. Exported
/// so engine::run_collective shares the identical config path.
sim::MachineConfig observed_config(const core::MachineParams& mp);

/// RAII: install `obs` on the current thread, restore the previous observer
/// on destruction.
class ScopedRunObserver {
 public:
  explicit ScopedRunObserver(RunObserver obs);
  ~ScopedRunObserver();
  ScopedRunObserver(const ScopedRunObserver&) = delete;
  ScopedRunObserver& operator=(const ScopedRunObserver&) = delete;

 private:
  RunObserver prev_;
};

struct RunResult {
  int p = 0;               ///< machine size
  double makespan = 0.0;   ///< simulated seconds
  sim::SimTotals totals;   ///< measured F/W/S aggregates
  sim::SimEnergy energy;   ///< Eq. (2) on the measured run
  double max_abs_error = 0.0;  ///< vs the sequential reference (if verified)
  bool verified = false;
  /// Fold execution slots: the fiber count (or 0 fibers + 1 rotor sweep =
  /// 1) when the machine folded, 0 when it ran one fiber per rank. Lets
  /// callers see whether a run actually took the folded fast path.
  int fold_slots = 0;

  /// Per-processor critical-path words/messages (what the paper's W and S
  /// bound).
  double words_per_proc() const { return totals.words_sent_max; }
  double msgs_per_proc() const { return totals.msgs_sent_max; }
};

/// 2.5D (c=1: 2D Cannon; c=q: 3D) matrix multiplication, p = q²c ranks.
RunResult run_mm25d(int n, int q, int c, const core::MachineParams& mp,
                    bool verify = false, std::uint64_t seed = 1,
                    const Mm25dOptions& opts = {});

/// SUMMA 2D baseline, p = q² ranks.
RunResult run_summa(int n, int q, const core::MachineParams& mp,
                    bool verify = false, std::uint64_t seed = 1);

/// CAPS Strassen, p = 7^k ranks.
RunResult run_caps(int n, int k, const core::MachineParams& mp,
                   const CapsOptions& opts = {}, bool verify = false,
                   std::uint64_t seed = 1);

/// Replicating n-body, p ranks in c teams-of-replicas.
RunResult run_nbody(int n, int p, int c, const core::MachineParams& mp,
                    bool verify = false, std::uint64_t seed = 1);

/// Block-cyclic LU: c = 1 runs lu_2d on q², otherwise lu_25d on q²c ranks.
RunResult run_lu(int n, int nb, int q, int c, const core::MachineParams& mp,
                 bool verify = false, std::uint64_t seed = 1);

/// Four-step FFT of n = R·C complex points on p ranks.
RunResult run_fft(int r_dim, int c_dim, int p, AllToAllKind kind,
                  const core::MachineParams& mp, bool verify = false,
                  std::uint64_t seed = 1);

/// TSQR tree reduction of a (rows_local·p)×b tall matrix, p ranks.
/// Verification checks the factorization-independent Gram identity
/// AᵀA = RᵀR on rank 0's global R.
RunResult run_tsqr(int rows_local, int b, int p,
                   const core::MachineParams& mp, bool verify = false,
                   std::uint64_t seed = 1);

}  // namespace alge::algs::harness
