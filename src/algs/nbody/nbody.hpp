// Direct O(n²) n-body: the pairwise kernel, a serial reference, and the
// communication-optimal data-replicating parallel algorithm of Driscoll et
// al. [16] that the paper analyzes (Eqs. 15–16).
//
// Particles are packed 4 doubles each (x, y, z, mass); forces 3 doubles
// each. The interaction is softened gravity — any associatively combinable
// pairwise interaction works, which is all the algorithm needs.
#pragma once

#include <span>
#include <vector>

#include "sim/comm.hpp"
#include "support/rng.hpp"
#include "topo/grid.hpp"

namespace alge::algs {

inline constexpr int kParticleWords = 4;  ///< x, y, z, mass
inline constexpr int kForceWords = 3;     ///< fx, fy, fz
/// Flops charged per pairwise interaction (the paper's f).
inline constexpr double kInteractionFlops = 20.0;

/// n random particles in the unit cube with masses in [0.5, 1.5).
std::vector<double> random_particles(int n, Rng& rng);

/// Add to `forces` the softened-gravity pull of every source on every
/// target. If `same_block`, targets and sources are the same particles and
/// the diagonal (self) pairs are skipped. Returns the number of
/// interactions evaluated (for flop charging).
double accumulate_forces(std::span<const double> targets,
                         std::span<const double> sources,
                         std::span<double> forces, bool same_block);

/// Serial reference: all-pairs forces for n particles.
std::vector<double> direct_forces(std::span<const double> particles);

/// The replicating parallel algorithm on a c×(p/c) TeamGrid:
///  - particle block j (n/(p/c) particles) enters on rank (0, j) and is
///    replicated down team column j;
///  - team member i computes the interactions with source blocks at ring
///    offsets ≡ i (mod c), shifting blocks around its row by c each step —
///    so each rank moves Θ(n/c) words instead of Θ(n);
///  - partial forces are summed back to rank (0, j).
/// c = 1 (a 1×p grid) is exactly the classical force-ring baseline.
/// Ranks with row > 0 pass empty payloads. Requires (p/c) | n. Buffers are
/// payload views — spans convert implicitly in full-data mode; ghost views
/// replay the identical cost schedule without data (the interaction count
/// is analytic: nt·ns − nt on the diagonal block).
void nbody_replicated(sim::Comm& comm, const topo::TeamGrid& grid, int n,
                      sim::ConstPayload my_particles,
                      sim::Payload my_forces);

}  // namespace alge::algs
