#include "algs/nbody/nbody.hpp"

#include <cmath>
#include <vector>

#include "support/common.hpp"

namespace alge::algs {

namespace {
constexpr double kSoftening2 = 1e-4;  // Plummer softening ε²
constexpr double kG = 1.0;            // gravitational constant (model units)
}  // namespace

std::vector<double> random_particles(int n, Rng& rng) {
  ALGE_REQUIRE(n >= 0, "negative particle count");
  std::vector<double> p(static_cast<std::size_t>(n) * kParticleWords);
  for (int i = 0; i < n; ++i) {
    double* q = p.data() + static_cast<std::size_t>(i) * kParticleWords;
    q[0] = rng.uniform(0.0, 1.0);
    q[1] = rng.uniform(0.0, 1.0);
    q[2] = rng.uniform(0.0, 1.0);
    q[3] = rng.uniform(0.5, 1.5);
  }
  return p;
}

double accumulate_forces(std::span<const double> targets,
                         std::span<const double> sources,
                         std::span<double> forces, bool same_block) {
  ALGE_REQUIRE(targets.size() % kParticleWords == 0 &&
                   sources.size() % kParticleWords == 0,
               "particle buffers must be multiples of %d words",
               kParticleWords);
  const std::size_t nt = targets.size() / kParticleWords;
  const std::size_t ns = sources.size() / kParticleWords;
  ALGE_REQUIRE(forces.size() == nt * kForceWords,
               "forces must be %zu words", nt * kForceWords);
  if (same_block) {
    ALGE_REQUIRE(nt == ns, "same_block requires equal sizes");
  }
  double interactions = 0.0;
  for (std::size_t i = 0; i < nt; ++i) {
    const double* ti = targets.data() + i * kParticleWords;
    double fx = 0.0;
    double fy = 0.0;
    double fz = 0.0;
    for (std::size_t j = 0; j < ns; ++j) {
      if (same_block && i == j) continue;
      const double* sj = sources.data() + j * kParticleWords;
      const double dx = sj[0] - ti[0];
      const double dy = sj[1] - ti[1];
      const double dz = sj[2] - ti[2];
      const double r2 = dx * dx + dy * dy + dz * dz + kSoftening2;
      const double inv_r = 1.0 / std::sqrt(r2);
      const double w = kG * ti[3] * sj[3] * inv_r * inv_r * inv_r;
      fx += w * dx;
      fy += w * dy;
      fz += w * dz;
      interactions += 1.0;
    }
    forces[i * kForceWords + 0] += fx;
    forces[i * kForceWords + 1] += fy;
    forces[i * kForceWords + 2] += fz;
  }
  return interactions;
}

std::vector<double> direct_forces(std::span<const double> particles) {
  const std::size_t n = particles.size() / kParticleWords;
  std::vector<double> forces(n * kForceWords, 0.0);
  accumulate_forces(particles, particles, forces, /*same_block=*/true);
  return forces;
}

void nbody_replicated(sim::Comm& comm, const topo::TeamGrid& grid, int n,
                      sim::ConstPayload my_particles,
                      sim::Payload my_forces) {
  const int P = grid.cols();  // number of particle blocks
  const int c = grid.rows();  // replication factor
  ALGE_REQUIRE(grid.p() <= comm.size(), "grid larger than the machine");
  ALGE_REQUIRE(n > 0 && n % P == 0, "block count %d must divide n=%d", P, n);
  const bool gm = comm.ghost();
  const int nb = n / P;  // particles per block
  const std::size_t part_words = static_cast<std::size_t>(nb) * kParticleWords;
  const std::size_t force_words = static_cast<std::size_t>(nb) * kForceWords;
  const int i = grid.row_of(comm.rank());
  const int j = grid.col_of(comm.rank());
  if (i == 0) {
    ALGE_REQUIRE(my_particles.size() == part_words &&
                     my_forces.size() == force_words,
                 "row-0 ranks pass %zu particle and %zu force words",
                 part_words, force_words);
  } else {
    ALGE_REQUIRE(my_particles.empty() && my_forces.empty(),
                 "non-root team members pass empty payloads");
  }
  const sim::Group team = grid.team_group(j);
  constexpr int kTagShift = 301;

  // Replicate block j down the team column.
  sim::Buffer resident = comm.alloc(part_words);
  if (i == 0 && !gm) {
    std::copy(my_particles.span().begin(), my_particles.span().end(),
              resident.data());
  }
  comm.bcast(resident.view(), /*root=*/0, team);

  // Member i handles source-block ring offsets o ≡ i (mod c), o < P.
  sim::Buffer traveling = comm.alloc(part_words);
  sim::Buffer scratch = comm.alloc(part_words);
  sim::Buffer partial = comm.alloc(force_words);
  auto row_rank = [&](int col) {
    return grid.rank_of(i, ((col % P) + P) % P);
  };
  int steps = 0;
  for (int o = i; o < P; o += c) ++steps;
  if (steps > 0) {
    // Fetch block (j + i): my replica travels to the rank i columns left.
    comm.sendrecv(row_rank(j - i), resident.view(), row_rank(j + i),
                  traveling.view(), kTagShift);
    for (int t = 0; t < steps; ++t) {
      const int o = i + t * c;
      // The interaction count is data-independent: every target-source
      // pair except the diagonal of the o == 0 block. Full mode evaluates
      // the kernel; both modes charge the same analytic pair count.
      const double pairs =
          static_cast<double>(nb) * nb - (o == 0 ? nb : 0);
      if (!gm) {
        accumulate_forces(resident.span(), traveling.span(), partial.span(),
                          /*same_block=*/o == 0);
      }
      comm.compute(kInteractionFlops * pairs);
      if (t + 1 < steps) {
        comm.sendrecv(row_rank(j - c), traveling.view(), row_rank(j + c),
                      scratch.view(), kTagShift);
        if (!gm) {
          std::copy(scratch.data(), scratch.data() + part_words,
                    traveling.data());
        }
      }
    }
  }

  // Sum the team's partial forces back to the block owner.
  comm.reduce_sum(partial.view(), i == 0 ? my_forces : sim::Payload{},
                  /*root=*/0, team);
}

}  // namespace alge::algs
