#include "algs/harness.hpp"

#include <algorithm>
#include <vector>

#include "algs/fft/fft.hpp"
#include "algs/foldmaps.hpp"
#include "algs/lu/distributed.hpp"
#include "algs/lu/local.hpp"
#include "algs/matmul/distributed.hpp"
#include "algs/matmul/local.hpp"
#include "algs/nbody/nbody.hpp"
#include "algs/qr/tsqr.hpp"
#include "algs/strassen/layout.hpp"
#include "sim/comm.hpp"
#include "support/common.hpp"
#include "support/rng.hpp"
#include "topo/grid.hpp"

namespace alge::algs::harness {

namespace {
thread_local RunObserver tls_observer;
}  // namespace

RunObserver& run_observer() { return tls_observer; }

ScopedRunObserver::ScopedRunObserver(RunObserver obs)
    : prev_(std::move(tls_observer)) {
  tls_observer = std::move(obs);
}

ScopedRunObserver::~ScopedRunObserver() { tls_observer = std::move(prev_); }

sim::MachineConfig observed_config(const core::MachineParams& mp) {
  sim::MachineConfig cfg;
  cfg.params = mp;
  cfg.enable_trace = tls_observer.enable_trace;
  cfg.enable_ledger = tls_observer.enable_ledger;
  if (tls_observer.configure) tls_observer.configure(cfg);
  return cfg;
}

namespace {
std::vector<double> block_of(const std::vector<double>& m, int n, int q,
                             int bi, int bj) {
  const int nb = n / q;
  std::vector<double> out(static_cast<std::size_t>(nb) * nb);
  for (int r = 0; r < nb; ++r) {
    for (int c = 0; c < nb; ++c) {
      out[static_cast<std::size_t>(r) * nb + c] =
          m[static_cast<std::size_t>(bi * nb + r) * n + (bj * nb + c)];
    }
  }
  return out;
}

/// True iff `cfg` runs ghost payloads; ghost runs replay the exact cost
/// schedule without data, so there is no output to verify.
bool ghost_mode(const sim::MachineConfig& cfg, bool verify) {
  const bool ghost = cfg.data_mode == sim::DataMode::kGhost;
  ALGE_REQUIRE(!(ghost && verify),
               "ghost data mode measures cost, not output; run with "
               "verify=false");
  return ghost;
}

/// Attach the algorithm's fold map when the observer asked for folded
/// execution and nothing supplied one. Builders may return nullptr (no
/// exact fold at this parameter point) — the machine then transparently
/// stays on the per-fiber path, so attaching is always safe.
template <typename Builder>
void attach_fold(sim::MachineConfig& cfg, Builder&& build) {
  if (cfg.exec_mode == sim::ExecMode::kFolded && cfg.fold == nullptr) {
    cfg.fold = build();
  }
}

RunResult finish(sim::Machine& m, bool verified, double err) {
  RunResult res;
  res.p = m.p();
  res.makespan = m.makespan();
  res.totals = m.totals();
  res.energy = m.energy();
  res.verified = verified;
  res.max_abs_error = err;
  res.fold_slots = m.fold_active() ? m.num_slots() : 0;
  if (tls_observer.after_run) tls_observer.after_run(m);
  return res;
}
}  // namespace

RunResult run_mm25d(int n, int q, int c, const core::MachineParams& mp,
                    bool verify, std::uint64_t seed,
                    const Mm25dOptions& opts) {
  topo::Grid3D grid(q, c);
  sim::MachineConfig cfg = observed_config(mp);
  cfg.p = grid.p();
  attach_fold(cfg,
              [&] { return foldmap_mm25d(q, c, n / q, opts.ring_replication); });
  const bool ghost = ghost_mode(cfg, verify);
  sim::Machine m(cfg);
  Rng rng(seed);
  std::vector<double> A, B;
  if (!ghost) {
    A = random_matrix(n, n, rng);
    B = random_matrix(n, n, rng);
  }
  const std::size_t nb2 = static_cast<std::size_t>(n / q) *
                          static_cast<std::size_t>(n / q);
  std::vector<std::vector<double>> c_blocks(
      ghost ? 0 : static_cast<std::size_t>(q) * q);
  m.run([&](sim::Comm& comm) {
    const int i = grid.row_of(comm.rank());
    const int j = grid.col_of(comm.rank());
    if (grid.layer_of(comm.rank()) != 0) {
      mm_25d(comm, grid, n, {}, {}, {}, opts);
      return;
    }
    if (ghost) {
      mm_25d(comm, grid, n, sim::ConstPayload::ghost(nb2),
             sim::ConstPayload::ghost(nb2), sim::Payload::ghost(nb2), opts);
      return;
    }
    const auto a = block_of(A, n, q, i, j);
    const auto b = block_of(B, n, q, i, j);
    std::vector<double> cb(a.size(), 0.0);
    mm_25d(comm, grid, n, a, b, cb, opts);
    c_blocks[static_cast<std::size_t>(i) * q + j] = std::move(cb);
  });
  double err = 0.0;
  if (verify) {
    std::vector<double> ref(static_cast<std::size_t>(n) * n, 0.0);
    matmul_add(A.data(), B.data(), ref.data(), n, n, n);
    for (int i = 0; i < q; ++i) {
      for (int j = 0; j < q; ++j) {
        const auto want = block_of(ref, n, q, i, j);
        err = std::max(err, max_abs_diff(
                                c_blocks[static_cast<std::size_t>(i) * q + j],
                                want));
      }
    }
  }
  return finish(m, verify, err);
}

RunResult run_summa(int n, int q, const core::MachineParams& mp, bool verify,
                    std::uint64_t seed) {
  topo::Grid2D grid(q);
  sim::MachineConfig cfg = observed_config(mp);
  cfg.p = grid.p();
  attach_fold(cfg, [&] { return foldmap_summa(n, q); });
  const bool ghost = ghost_mode(cfg, verify);
  sim::Machine m(cfg);
  Rng rng(seed);
  std::vector<double> A, B;
  if (!ghost) {
    A = random_matrix(n, n, rng);
    B = random_matrix(n, n, rng);
  }
  const std::size_t nb2 = static_cast<std::size_t>(n / q) *
                          static_cast<std::size_t>(n / q);
  std::vector<std::vector<double>> c_blocks(
      ghost ? 0 : static_cast<std::size_t>(q) * q);
  m.run([&](sim::Comm& comm) {
    const int i = grid.row_of(comm.rank());
    const int j = grid.col_of(comm.rank());
    if (ghost) {
      summa_2d(comm, grid, n, sim::ConstPayload::ghost(nb2),
               sim::ConstPayload::ghost(nb2), sim::Payload::ghost(nb2));
      return;
    }
    const auto a = block_of(A, n, q, i, j);
    const auto b = block_of(B, n, q, i, j);
    std::vector<double> cb(a.size(), 0.0);
    summa_2d(comm, grid, n, a, b, cb);
    c_blocks[static_cast<std::size_t>(i) * q + j] = std::move(cb);
  });
  double err = 0.0;
  if (verify) {
    std::vector<double> ref(static_cast<std::size_t>(n) * n, 0.0);
    matmul_add(A.data(), B.data(), ref.data(), n, n, n);
    for (int i = 0; i < q; ++i) {
      for (int j = 0; j < q; ++j) {
        err = std::max(err, max_abs_diff(
                                c_blocks[static_cast<std::size_t>(i) * q + j],
                                block_of(ref, n, q, i, j)));
      }
    }
  }
  return finish(m, verify, err);
}

RunResult run_caps(int n, int k, const core::MachineParams& mp,
                   const CapsOptions& opts, bool verify, std::uint64_t seed) {
  const int p = caps_ranks(k);
  const std::string sched =
      opts.schedule.empty() ? std::string(static_cast<std::size_t>(k), 'B')
                            : opts.schedule;
  const int levels = static_cast<int>(sched.size());
  sim::MachineConfig cfg = observed_config(mp);
  cfg.p = p;
  attach_fold(cfg, [&] { return foldmap_caps(p); });
  const bool ghost = ghost_mode(cfg, verify);
  sim::Machine m(cfg);
  Rng rng(seed);
  std::vector<double> A, B, Az, Bz;
  if (!ghost) {
    A = random_matrix(n, n, rng);
    B = random_matrix(n, n, rng);
    Az = to_z_order(A, n, levels);
    Bz = to_z_order(B, n, levels);
  }
  const std::size_t share = static_cast<std::size_t>(n) *
                            static_cast<std::size_t>(n) /
                            static_cast<std::size_t>(p);
  std::vector<std::vector<double>> c_shares(
      ghost ? 0 : static_cast<std::size_t>(p));
  m.run([&](sim::Comm& comm) {
    if (ghost) {
      caps_multiply(comm, n, k, sim::ConstPayload::ghost(share),
                    sim::ConstPayload::ghost(share),
                    sim::Payload::ghost(share), opts);
      return;
    }
    const auto a = extract_share(Az, p, comm.rank());
    const auto b = extract_share(Bz, p, comm.rank());
    std::vector<double> cs(a.size());
    caps_multiply(comm, n, k, a, b, cs, opts);
    c_shares[static_cast<std::size_t>(comm.rank())] = std::move(cs);
  });
  double err = 0.0;
  if (verify) {
    std::vector<double> Cz(static_cast<std::size_t>(n) * n, 0.0);
    for (int r = 0; r < p; ++r) {
      place_share(Cz, p, r, c_shares[static_cast<std::size_t>(r)]);
    }
    const auto C = from_z_order(Cz, n, levels);
    std::vector<double> ref(static_cast<std::size_t>(n) * n, 0.0);
    matmul_add(A.data(), B.data(), ref.data(), n, n, n);
    err = max_abs_diff(C, ref);
  }
  return finish(m, verify, err);
}

RunResult run_nbody(int n, int p, int c, const core::MachineParams& mp,
                    bool verify, std::uint64_t seed) {
  topo::TeamGrid grid(p, c);
  sim::MachineConfig cfg = observed_config(mp);
  cfg.p = p;
  attach_fold(cfg, [&] { return foldmap_nbody(p, c); });
  const bool ghost = ghost_mode(cfg, verify);
  sim::Machine m(cfg);
  Rng rng(seed);
  std::vector<double> parts;
  if (!ghost) parts = random_particles(n, rng);
  const int P = grid.cols();
  const int nb = n / P;
  std::vector<std::vector<double>> force_blocks(
      ghost ? 0 : static_cast<std::size_t>(P));
  m.run([&](sim::Comm& comm) {
    const int i = grid.row_of(comm.rank());
    const int j = grid.col_of(comm.rank());
    if (i != 0) {
      nbody_replicated(comm, grid, n, {}, {});
      return;
    }
    if (ghost) {
      nbody_replicated(
          comm, grid, n,
          sim::ConstPayload::ghost(static_cast<std::size_t>(nb) *
                                   kParticleWords),
          sim::Payload::ghost(static_cast<std::size_t>(nb) * kForceWords));
      return;
    }
    auto mine = std::span<const double>(parts).subspan(
        static_cast<std::size_t>(j) * nb * kParticleWords,
        static_cast<std::size_t>(nb) * kParticleWords);
    std::vector<double> f(static_cast<std::size_t>(nb) * kForceWords, 0.0);
    nbody_replicated(comm, grid, n, mine, f);
    force_blocks[static_cast<std::size_t>(j)] = std::move(f);
  });
  double err = 0.0;
  if (verify) {
    const auto ref = direct_forces(parts);
    std::vector<double> got;
    for (const auto& blk : force_blocks) {
      got.insert(got.end(), blk.begin(), blk.end());
    }
    err = max_abs_diff(got, ref);
  }
  return finish(m, verify, err);
}

RunResult run_lu(int n, int nb, int q, int c, const core::MachineParams& mp,
                 bool verify, std::uint64_t seed) {
  BlockCyclic bc{n, nb, q};
  bc.validate();
  sim::MachineConfig cfg = observed_config(mp);
  const bool ghost = ghost_mode(cfg, verify);
  Rng rng(seed);
  std::vector<double> A;
  std::vector<std::vector<double>> local;
  if (!ghost) {
    A = diagonally_dominant_matrix(n, rng);
    // Scatter block-cyclically over the q×q (layer-0) grid.
    local.assign(static_cast<std::size_t>(q) * q,
                 std::vector<double>(bc.local_words(), 0.0));
    for (int I = 0; I < bc.nt(); ++I) {
      for (int J = 0; J < bc.nt(); ++J) {
        auto& dst = local[static_cast<std::size_t>(I % q) * q + (J % q)];
        for (int r = 0; r < nb; ++r) {
          std::copy_n(
              A.data() + static_cast<std::size_t>(I * nb + r) * n + J * nb,
              nb,
              dst.data() + bc.local_offset(I, J) +
                  static_cast<std::size_t>(r) * nb);
        }
      }
    }
  }

  double err = 0.0;
  if (c <= 1) {
    topo::Grid2D grid(q);
    cfg.p = grid.p();
    attach_fold(cfg, [&] { return foldmap_lu(n, nb, q, c); });
    sim::Machine m(cfg);
    m.run([&](sim::Comm& comm) {
      if (ghost) {
        lu_2d(comm, grid, bc, sim::Payload::ghost(bc.local_words()));
      } else {
        lu_2d(comm, grid, bc, local[static_cast<std::size_t>(comm.rank())]);
      }
    });
    if (verify) {
      auto serial = A;
      lu_factor_inplace(serial, n);
      for (int I = 0; I < bc.nt(); ++I) {
        for (int J = 0; J < bc.nt(); ++J) {
          const auto& src =
              local[static_cast<std::size_t>(I % q) * q + (J % q)];
          for (int r = 0; r < nb; ++r) {
            for (int cc = 0; cc < nb; ++cc) {
              const double want =
                  serial[static_cast<std::size_t>(I * nb + r) * n + J * nb +
                         cc];
              const double got = src[bc.local_offset(I, J) +
                                     static_cast<std::size_t>(r) * nb + cc];
              err = std::max(err, std::abs(want - got));
            }
          }
        }
      }
    }
    return finish(m, verify, err);
  }
  topo::Grid3D grid(q, c);
  cfg.p = grid.p();
  attach_fold(cfg, [&] { return foldmap_lu(n, nb, q, c); });
  sim::Machine m(cfg);
  m.run([&](sim::Comm& comm) {
    if (grid.layer_of(comm.rank()) != 0) {
      lu_25d(comm, grid, bc, {});
    } else if (ghost) {
      lu_25d(comm, grid, bc, sim::Payload::ghost(bc.local_words()));
    } else {
      const int r = grid.row_of(comm.rank());
      const int cc = grid.col_of(comm.rank());
      lu_25d(comm, grid, bc, local[static_cast<std::size_t>(r) * q + cc]);
    }
  });
  if (verify) {
    auto serial = A;
    lu_factor_inplace(serial, n);
    for (int I = 0; I < bc.nt(); ++I) {
      for (int J = 0; J < bc.nt(); ++J) {
        const auto& src = local[static_cast<std::size_t>(I % q) * q + (J % q)];
        for (int r = 0; r < nb; ++r) {
          for (int cc = 0; cc < nb; ++cc) {
            const double want =
                serial[static_cast<std::size_t>(I * nb + r) * n + J * nb +
                       cc];
            const double got = src[bc.local_offset(I, J) +
                                   static_cast<std::size_t>(r) * nb + cc];
            err = std::max(err, std::abs(want - got));
          }
        }
      }
    }
  }
  return finish(m, verify, err);
}

RunResult run_fft(int r_dim, int c_dim, int p, AllToAllKind kind,
                  const core::MachineParams& mp, bool verify,
                  std::uint64_t seed) {
  const int n = r_dim * c_dim;
  sim::MachineConfig cfg = observed_config(mp);
  cfg.p = p;
  attach_fold(cfg, [&] { return foldmap_fft(p); });
  const bool ghost = ghost_mode(cfg, verify);
  sim::Machine m(cfg);
  Rng rng(seed);
  std::vector<double> x;
  if (!ghost) {
    x.resize(2 * static_cast<std::size_t>(n));
    rng.fill_uniform(x, -1.0, 1.0);
  }
  const int cl = c_dim / p;
  const int rl = r_dim / p;
  std::vector<std::vector<double>> rows(
      ghost ? 0 : static_cast<std::size_t>(p));
  m.run([&](sim::Comm& comm) {
    const int h = comm.rank();
    if (ghost) {
      fft_parallel(comm, n, r_dim, c_dim,
                   sim::ConstPayload::ghost(
                       2 * static_cast<std::size_t>(r_dim) * cl),
                   sim::Payload::ghost(
                       2 * static_cast<std::size_t>(c_dim) * rl),
                   kind);
      return;
    }
    std::vector<double> cols(2 * static_cast<std::size_t>(r_dim) * cl);
    for (int jl = 0; jl < cl; ++jl) {
      const int j2 = h * cl + jl;
      for (int j1 = 0; j1 < r_dim; ++j1) {
        cols[2 * (static_cast<std::size_t>(jl) * r_dim + j1)] =
            x[2 * (static_cast<std::size_t>(j1) * c_dim + j2)];
        cols[2 * (static_cast<std::size_t>(jl) * r_dim + j1) + 1] =
            x[2 * (static_cast<std::size_t>(j1) * c_dim + j2) + 1];
      }
    }
    std::vector<double> out(2 * static_cast<std::size_t>(c_dim) * rl);
    fft_parallel(comm, n, r_dim, c_dim, cols, out, kind);
    rows[static_cast<std::size_t>(h)] = std::move(out);
  });
  double err = 0.0;
  if (verify) {
    const auto ref = naive_dft(x, n);
    for (int k1 = 0; k1 < r_dim; ++k1) {
      const auto& blk = rows[static_cast<std::size_t>(k1 / rl)];
      for (int k2 = 0; k2 < c_dim; ++k2) {
        const std::size_t src =
            2 * (static_cast<std::size_t>(k1 % rl) * c_dim + k2);
        const std::size_t dst =
            2 * (static_cast<std::size_t>(k2) * r_dim + k1);
        err = std::max(err, std::abs(blk[src] - ref[dst]));
        err = std::max(err, std::abs(blk[src + 1] - ref[dst + 1]));
      }
    }
  }
  return finish(m, verify, err);
}

RunResult run_tsqr(int rows_local, int b, int p,
                   const core::MachineParams& mp, bool verify,
                   std::uint64_t seed) {
  ALGE_REQUIRE(rows_local >= b && b >= 1 && p >= 1,
               "tsqr needs rows_local >= b >= 1 and p >= 1");
  sim::MachineConfig cfg = observed_config(mp);
  cfg.p = p;
  attach_fold(cfg, [&] { return foldmap_tsqr(p); });
  const bool ghost = ghost_mode(cfg, verify);
  sim::Machine m(cfg);
  Rng rng(seed);
  std::vector<double> A;
  const std::size_t lw = static_cast<std::size_t>(rows_local) * b;
  if (!ghost) A = random_matrix(rows_local * p, b, rng);
  std::vector<double> r(static_cast<std::size_t>(b) * b, 0.0);
  m.run([&](sim::Comm& comm) {
    if (ghost) {
      const std::size_t b2 = static_cast<std::size_t>(b) * b;
      tsqr(comm, b, sim::ConstPayload::ghost(lw),
           comm.rank() == 0 ? sim::Payload::ghost(b2) : sim::Payload{});
      return;
    }
    auto mine = std::span<const double>(A).subspan(
        lw * static_cast<std::size_t>(comm.rank()), lw);
    std::span<double> out =
        comm.rank() == 0 ? std::span<double>(r) : std::span<double>{};
    tsqr(comm, b, mine, out);
  });
  double err = 0.0;
  if (verify) {
    // QᵀQ = I  =>  AᵀA = RᵀR: the factorization-independent check (R is
    // only unique up to row signs, so compare Gram matrices, not entries).
    auto gram = [b](std::span<const double> a, int rows) {
      std::vector<double> g(static_cast<std::size_t>(b) * b, 0.0);
      for (int i = 0; i < b; ++i) {
        for (int j = 0; j < b; ++j) {
          double s = 0.0;
          for (int row = 0; row < rows; ++row) {
            s += a[static_cast<std::size_t>(row) * b + i] *
                 a[static_cast<std::size_t>(row) * b + j];
          }
          g[static_cast<std::size_t>(i) * b + j] = s;
        }
      }
      return g;
    };
    err = max_abs_diff(gram(r, b), gram(A, rows_local * p));
  }
  return finish(m, verify, err);
}

}  // namespace alge::algs::harness
