// Local (single-rank) dense kernels shared by the distributed algorithms:
// row-major matmul with a cache-blocked variant, plus small helpers used by
// tests and benches.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "support/rng.hpp"

namespace alge::algs {

/// C += A·B with A m×k, B k×n, C m×n, all row-major. Naive ikj loop order
/// (streaming-friendly); correct for any aliasing-free inputs.
void matmul_add(const double* a, const double* b, double* c, int m, int k,
                int n);

/// Same contract, blocked for cache reuse. `block` is the tile edge.
void matmul_add_blocked(const double* a, const double* b, double* c, int m,
                        int k, int n, int block = 64);

/// Flop count charged for an m×k by k×n multiply-accumulate (2 flops per
/// multiply-add, the convention used throughout the benches).
double matmul_flops(int m, int k, int n);

/// Row-major random matrix with entries uniform in [-1, 1).
std::vector<double> random_matrix(int rows, int cols, Rng& rng);

/// max_i |a[i] - b[i]|; spans must have equal length.
double max_abs_diff(std::span<const double> a, std::span<const double> b);

}  // namespace alge::algs
