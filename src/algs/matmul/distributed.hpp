// Distributed dense matrix multiplication on the simulator:
//
//   cannon_2d  — Cannon's algorithm [8] on a √p×√p grid (the "2D" baseline:
//                M = n²/p, W = Θ(n²/√p)).
//   summa_2d   — SUMMA [9] with one block panel per step (same asymptotics,
//                broadcast-based; the 2D ablation baseline).
//   mm_25d     — the 2.5D algorithm of Solomonik & Demmel [11] on a
//                (p/c)^½ × (p/c)^½ × c grid: c replicas of the input,
//                W = Θ(n²/√(cp)). c = 1 degenerates to Cannon; c = p^⅓
//                is the 3D algorithm of Agarwal et al. [10].
//
// All take each rank's local block(s) and leave each rank's result block in
// place, so correctness is verified by comparing gathered blocks against a
// sequential reference. Blocks are passed as payload views
// (sim/payload.hpp): spans/vectors convert implicitly in full-data mode,
// and ghost views run the identical communication and flop schedule with
// no data movement.
#pragma once

#include "sim/comm.hpp"
#include "topo/grid.hpp"

namespace alge::algs {

/// Cannon's algorithm. Every rank passes its n/q × n/q row-major blocks of
/// A and B (block (i,j) on grid rank (i,j)); C(i,j) is accumulated into
/// c_block. Requires q | n.
void cannon_2d(sim::Comm& comm, const topo::Grid2D& grid, int n,
               sim::ConstPayload a_block, sim::ConstPayload b_block,
               sim::Payload c_block);

/// SUMMA with panel width n/q (one block per step).
void summa_2d(sim::Comm& comm, const topo::Grid2D& grid, int n,
              sim::ConstPayload a_block, sim::ConstPayload b_block,
              sim::Payload c_block);

struct Mm25dOptions {
  /// Replicate A and B down the depth fiber with the pipelined ring
  /// broadcast instead of the binomial tree: every rank then sends each
  /// block at most once (the root of a binomial tree sends log c copies),
  /// at Θ(c) extra latency. Tightens the per-rank W toward the asymptotic
  /// 2·nb²·q/c; the default keeps the classic tree.
  bool ring_replication = false;
};

/// 2.5D matrix multiplication. Input blocks A(i,j), B(i,j) of size
/// (n/q)² live on layer 0 (ranks with grid.layer_of(rank)==0); other layers
/// pass empty payloads for a/b and receive replicas internally. The result
/// C(i,j) is reduced back onto layer 0's c_block (other layers pass an
/// empty payload). Requires q | n and c | q (each layer executes q/c Cannon
/// steps starting at offset layer·q/c).
void mm_25d(sim::Comm& comm, const topo::Grid3D& grid, int n,
            sim::ConstPayload a_block, sim::ConstPayload b_block,
            sim::Payload c_block, const Mm25dOptions& opts = {});

}  // namespace alge::algs
