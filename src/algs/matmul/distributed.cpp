#include "algs/matmul/distributed.hpp"

#include <algorithm>
#include <utility>

#include "algs/matmul/local.hpp"
#include "support/common.hpp"

namespace alge::algs {

namespace {
constexpr int kTagSkewA = 101;
constexpr int kTagSkewB = 102;
constexpr int kTagShiftA = 103;
constexpr int kTagShiftB = 104;

int mod(int a, int q) { return ((a % q) + q) % q; }

/// Shared core of Cannon and 2.5D: run `steps` Cannon steps on one layer of
/// a q×q grid, starting at logical step offset `s0`, accumulating into c.
/// a_cur/b_cur must already hold the step-s0-aligned operands:
///   a_cur = A(i, i+j+s0),  b_cur = B(i+j+s0, j).
template <typename RankOf>
void cannon_steps(sim::Comm& comm, int q, int i, int j, int nb, int steps,
                  sim::Payload a_cur, sim::Payload b_cur, sim::Payload c,
                  sim::Payload scratch, const RankOf& rank_of) {
  const bool gm = comm.ghost();
  for (int s = 0; s < steps; ++s) {
    if (!gm) {
      matmul_add_blocked(a_cur.data(), b_cur.data(), c.data(), nb, nb, nb);
    }
    comm.compute(matmul_flops(nb, nb, nb));
    if (s + 1 < steps) {
      // A moves one step left, B one step up.
      comm.sendrecv(rank_of(i, mod(j - 1, q)), a_cur,
                    rank_of(i, mod(j + 1, q)), scratch, kTagShiftA);
      if (!gm) {
        std::copy(scratch.span().begin(), scratch.span().end(),
                  a_cur.span().begin());
      }
      comm.sendrecv(rank_of(mod(i - 1, q), j), b_cur,
                    rank_of(mod(i + 1, q), j), scratch, kTagShiftB);
      if (!gm) {
        std::copy(scratch.span().begin(), scratch.span().end(),
                  b_cur.span().begin());
      }
    }
  }
}

/// Align the locally owned blocks for step offset s0: fetch A(i, i+j+s0)
/// and B(i+j+s0, j) from their owners while shipping ours to whoever needs
/// them.
template <typename RankOf>
void cannon_align(sim::Comm& comm, int q, int i, int j, int s0,
                  sim::ConstPayload a_mine, sim::ConstPayload b_mine,
                  sim::Payload a_cur, sim::Payload b_cur,
                  const RankOf& rank_of) {
  // My A block A(i,j) plays the role of A(i, i+j'+s0) for the rank (i,j')
  // with j' = j - i - s0; symmetrically for B.
  const int a_dst = rank_of(i, mod(j - i - s0, q));
  const int a_src = rank_of(i, mod(i + j + s0, q));
  comm.sendrecv(a_dst, a_mine, a_src, a_cur, kTagSkewA);
  const int b_dst = rank_of(mod(i - j - s0, q), j);
  const int b_src = rank_of(mod(i + j + s0, q), j);
  comm.sendrecv(b_dst, b_mine, b_src, b_cur, kTagSkewB);
}

void check_blocks(int n, int q, sim::ConstPayload a, sim::ConstPayload b,
                  sim::ConstPayload c) {
  ALGE_REQUIRE(n > 0 && n % q == 0, "grid size q=%d must divide n=%d", q, n);
  const std::size_t nb2 = static_cast<std::size_t>(n / q) *
                          static_cast<std::size_t>(n / q);
  ALGE_REQUIRE(a.size() == nb2 && b.size() == nb2 && c.size() == nb2,
               "blocks must be (n/q)² = %zu words (got %zu/%zu/%zu)", nb2,
               a.size(), b.size(), c.size());
}
}  // namespace

void cannon_2d(sim::Comm& comm, const topo::Grid2D& grid, int n,
               sim::ConstPayload a_block, sim::ConstPayload b_block,
               sim::Payload c_block) {
  const int q = grid.q();
  ALGE_REQUIRE(grid.p() <= comm.size(), "grid larger than the machine");
  check_blocks(n, q, a_block, b_block, c_block);
  const int nb = n / q;
  const std::size_t nb2 = static_cast<std::size_t>(nb) * nb;
  const int i = grid.row_of(comm.rank());
  const int j = grid.col_of(comm.rank());
  auto rank_of = [&](int r, int c) { return grid.rank_of(r, c); };

  sim::Buffer a_cur = comm.alloc(nb2);
  sim::Buffer b_cur = comm.alloc(nb2);
  sim::Buffer scratch = comm.alloc(nb2);
  cannon_align(comm, q, i, j, /*s0=*/0, a_block, b_block, a_cur.view(),
               b_cur.view(), rank_of);
  cannon_steps(comm, q, i, j, nb, /*steps=*/q, a_cur.view(), b_cur.view(),
               c_block, scratch.view(), rank_of);
}

void summa_2d(sim::Comm& comm, const topo::Grid2D& grid, int n,
              sim::ConstPayload a_block, sim::ConstPayload b_block,
              sim::Payload c_block) {
  const int q = grid.q();
  ALGE_REQUIRE(grid.p() <= comm.size(), "grid larger than the machine");
  check_blocks(n, q, a_block, b_block, c_block);
  const bool gm = comm.ghost();
  const int nb = n / q;
  const std::size_t nb2 = static_cast<std::size_t>(nb) * nb;
  const int i = grid.row_of(comm.rank());
  const int j = grid.col_of(comm.rank());
  const sim::Group row = grid.row_group(i);
  const sim::Group col = grid.col_group(j);

  sim::Buffer a_panel = comm.alloc(nb2);
  sim::Buffer b_panel = comm.alloc(nb2);
  for (int k = 0; k < q; ++k) {
    // Row broadcast of A(:,k) from the column-k owner, column broadcast of
    // B(k,:) from the row-k owner.
    if (j == k && !gm) {
      std::copy(a_block.span().begin(), a_block.span().end(),
                a_panel.data());
    }
    comm.bcast(a_panel.view(), /*root=*/k, row);
    if (i == k && !gm) {
      std::copy(b_block.span().begin(), b_block.span().end(),
                b_panel.data());
    }
    comm.bcast(b_panel.view(), /*root=*/k, col);
    if (!gm) {
      matmul_add_blocked(a_panel.data(), b_panel.data(),
                         c_block.data(), nb, nb, nb);
    }
    comm.compute(matmul_flops(nb, nb, nb));
  }
}

void mm_25d(sim::Comm& comm, const topo::Grid3D& grid, int n,
            sim::ConstPayload a_block, sim::ConstPayload b_block,
            sim::Payload c_block, const Mm25dOptions& opts) {
  const int q = grid.q();
  const int c = grid.c();
  ALGE_REQUIRE(grid.p() <= comm.size(), "grid larger than the machine");
  ALGE_REQUIRE(q % c == 0, "replication factor c=%d must divide q=%d", c, q);
  ALGE_REQUIRE(n > 0 && n % q == 0, "grid size q=%d must divide n=%d", q, n);
  const bool gm = comm.ghost();
  const int nb = n / q;
  const std::size_t nb2 = static_cast<std::size_t>(nb) * nb;
  const int i = grid.row_of(comm.rank());
  const int j = grid.col_of(comm.rank());
  const int l = grid.layer_of(comm.rank());
  if (l == 0) {
    ALGE_REQUIRE(a_block.size() == nb2 && b_block.size() == nb2 &&
                     c_block.size() == nb2,
                 "layer-0 blocks must be (n/q)² = %zu words", nb2);
  } else {
    ALGE_REQUIRE(a_block.empty() && b_block.empty() && c_block.empty(),
                 "non-root layers pass empty payloads");
  }
  auto layer_rank_of = [&](int r, int cc) { return grid.rank_of(r, cc, l); };
  const sim::Group depth = grid.depth_group(i, j);

  // Replicate A(i,j), B(i,j) to every layer.
  sim::Buffer a_mine = comm.alloc(nb2);
  sim::Buffer b_mine = comm.alloc(nb2);
  if (l == 0 && !gm) {
    std::copy(a_block.span().begin(), a_block.span().end(), a_mine.data());
    std::copy(b_block.span().begin(), b_block.span().end(), b_mine.data());
  }
  if (opts.ring_replication) {
    comm.bcast_ring(a_mine.view(), /*root=*/0, depth);
    comm.bcast_ring(b_mine.view(), /*root=*/0, depth);
  } else {
    comm.bcast(a_mine.view(), /*root=*/0, depth);
    comm.bcast(b_mine.view(), /*root=*/0, depth);
  }

  // Each layer runs q/c Cannon steps, layer l starting at offset l·q/c.
  const int steps = q / c;
  const int s0 = l * steps;
  sim::Buffer a_cur = comm.alloc(nb2);
  sim::Buffer b_cur = comm.alloc(nb2);
  sim::Buffer scratch = comm.alloc(nb2);
  sim::Buffer c_partial = comm.alloc(nb2);
  cannon_align(comm, q, i, j, s0, a_mine.view(), b_mine.view(), a_cur.view(),
               b_cur.view(), layer_rank_of);
  cannon_steps(comm, q, i, j, nb, steps, a_cur.view(), b_cur.view(),
               c_partial.view(), scratch.view(), layer_rank_of);

  // Sum the layer contributions back onto layer 0.
  comm.reduce_sum(c_partial.view(), l == 0 ? c_block : sim::Payload{},
                  /*root=*/0, depth);
}

}  // namespace alge::algs
