#include "algs/matmul/local.hpp"

#include <algorithm>
#include <cmath>

#include "support/common.hpp"

namespace alge::algs {

void matmul_add(const double* a, const double* b, double* c, int m, int k,
                int n) {
  ALGE_REQUIRE(m >= 0 && k >= 0 && n >= 0, "negative matrix dimension");
  for (int i = 0; i < m; ++i) {
    for (int l = 0; l < k; ++l) {
      const double ail = a[static_cast<std::size_t>(i) * k + l];
      const double* brow = b + static_cast<std::size_t>(l) * n;
      double* crow = c + static_cast<std::size_t>(i) * n;
      for (int j = 0; j < n; ++j) crow[j] += ail * brow[j];
    }
  }
}

void matmul_add_blocked(const double* a, const double* b, double* c, int m,
                        int k, int n, int block) {
  ALGE_REQUIRE(block >= 1, "block size must be >= 1");
  for (int i0 = 0; i0 < m; i0 += block) {
    const int i1 = std::min(m, i0 + block);
    for (int l0 = 0; l0 < k; l0 += block) {
      const int l1 = std::min(k, l0 + block);
      for (int j0 = 0; j0 < n; j0 += block) {
        const int j1 = std::min(n, j0 + block);
        for (int i = i0; i < i1; ++i) {
          for (int l = l0; l < l1; ++l) {
            const double ail = a[static_cast<std::size_t>(i) * k + l];
            const double* brow = b + static_cast<std::size_t>(l) * n;
            double* crow = c + static_cast<std::size_t>(i) * n;
            for (int j = j0; j < j1; ++j) crow[j] += ail * brow[j];
          }
        }
      }
    }
  }
}

double matmul_flops(int m, int k, int n) {
  return 2.0 * static_cast<double>(m) * static_cast<double>(k) *
         static_cast<double>(n);
}

std::vector<double> random_matrix(int rows, int cols, Rng& rng) {
  std::vector<double> out(static_cast<std::size_t>(rows) *
                          static_cast<std::size_t>(cols));
  rng.fill_uniform(out, -1.0, 1.0);
  return out;
}

double max_abs_diff(std::span<const double> a, std::span<const double> b) {
  ALGE_REQUIRE(a.size() == b.size(), "span sizes differ: %zu vs %zu",
               a.size(), b.size());
  double worst = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    worst = std::max(worst, std::fabs(a[i] - b[i]));
  }
  return worst;
}

}  // namespace alge::algs
