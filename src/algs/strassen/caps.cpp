#include "algs/strassen/caps.hpp"

#include <algorithm>
#include <string_view>
#include <vector>

#include "algs/matmul/local.hpp"
#include "algs/strassen/layout.hpp"
#include "algs/strassen/local.hpp"
#include "support/common.hpp"

namespace alge::algs {

namespace {
constexpr int kTagDown = 201;
constexpr int kTagUp = 202;

struct Ctx {
  sim::Comm* comm = nullptr;
  const CapsOptions* opts = nullptr;
  bool ghost = false;
};

/// out = x + sign·y over `len` doubles, charged as real flops.
void combine(Ctx& ctx, const double* x, const double* y, double sign,
             double* out, std::size_t len) {
  for (std::size_t i = 0; i < len; ++i) out[i] = x[i] + sign * y[i];
  ctx.comm->compute(static_cast<double>(len));
}

// Ghost-mode twins of form_operands / form_result: charge the same
// compute() calls — one per combine, at the same granularity, in the same
// count (10 down-sweep, 8 up-sweep) — so trace streams and clocks match the
// full-data path bit-for-bit. The quadrant copies charge nothing there and
// so have no twin here.
void form_operands_cost(Ctx& ctx, std::size_t len) {
  for (int i = 0; i < 10; ++i) ctx.comm->compute(static_cast<double>(len));
}

void form_result_cost(Ctx& ctx, std::size_t len) {
  for (int i = 0; i < 8; ++i) ctx.comm->compute(static_cast<double>(len));
}

/// Form the share-level Strassen operands from the quadrant runs of the A
/// and B shares (each quadrant is a contiguous run of length `len`).
/// s_ops/t_ops are buffers of 7·len; slice i holds the operands of M_{i+1}.
void form_operands(Ctx& ctx, std::span<const double> a,
                   std::span<const double> b, std::size_t len, double* s_ops,
                   double* t_ops) {
  const double* a11 = a.data();
  const double* a12 = a.data() + len;
  const double* a21 = a.data() + 2 * len;
  const double* a22 = a.data() + 3 * len;
  const double* b11 = b.data();
  const double* b12 = b.data() + len;
  const double* b21 = b.data() + 2 * len;
  const double* b22 = b.data() + 3 * len;
  auto s_i = [&](int i) { return s_ops + static_cast<std::size_t>(i) * len; };
  auto t_i = [&](int i) { return t_ops + static_cast<std::size_t>(i) * len; };
  combine(ctx, a11, a22, +1.0, s_i(0), len);  // M1 = (A11+A22)(B11+B22)
  combine(ctx, b11, b22, +1.0, t_i(0), len);
  combine(ctx, a21, a22, +1.0, s_i(1), len);  // M2 = (A21+A22)·B11
  std::copy_n(b11, len, t_i(1));
  std::copy_n(a11, len, s_i(2));              // M3 = A11·(B12-B22)
  combine(ctx, b12, b22, -1.0, t_i(2), len);
  std::copy_n(a22, len, s_i(3));              // M4 = A22·(B21-B11)
  combine(ctx, b21, b11, -1.0, t_i(3), len);
  combine(ctx, a11, a12, +1.0, s_i(4), len);  // M5 = (A11+A12)·B22
  std::copy_n(b22, len, t_i(4));
  combine(ctx, a21, a11, -1.0, s_i(5), len);  // M6 = (A21-A11)(B11+B12)
  combine(ctx, b11, b12, +1.0, t_i(5), len);
  combine(ctx, a12, a22, -1.0, s_i(6), len);  // M7 = (A12-A22)(B21+B22)
  combine(ctx, b21, b22, +1.0, t_i(6), len);
}

/// Assemble the C-share quadrant runs from the 7 product slices (7·len).
void form_result(Ctx& ctx, const double* prods, std::span<double> c,
                 std::size_t len) {
  auto m = [&](int i) { return prods + static_cast<std::size_t>(i) * len; };
  double* c11 = c.data();
  double* c12 = c.data() + len;
  double* c21 = c.data() + 2 * len;
  double* c22 = c.data() + 3 * len;
  combine(ctx, m(0), m(3), +1.0, c11, len);  // C11 = M1+M4-M5+M7
  combine(ctx, c11, m(4), -1.0, c11, len);
  combine(ctx, c11, m(6), +1.0, c11, len);
  combine(ctx, m(2), m(4), +1.0, c12, len);  // C12 = M3+M5
  combine(ctx, m(1), m(3), +1.0, c21, len);  // C21 = M2+M4
  combine(ctx, m(0), m(1), -1.0, c22, len);  // C22 = M1-M2+M3+M6
  combine(ctx, c22, m(2), +1.0, c22, len);
  combine(ctx, c22, m(5), +1.0, c22, len);
}

/// Recursive CAPS step. The calling rank belongs to the group of world
/// ranks [base, base+g); its shares of the current s×s operands have length
/// s²/g. `sched` is the remaining schedule.
void caps_rec(Ctx& ctx, int base, int g, int s, sim::ConstPayload a,
              sim::ConstPayload b, sim::Payload c, std::string_view sched) {
  sim::Comm& comm = *ctx.comm;
  const bool gm = ctx.ghost;
  const std::size_t share = a.size();
  ALGE_CHECK(share == static_cast<std::size_t>(s) * s /
                          static_cast<std::size_t>(g),
             "share length mismatch at s=%d g=%d", s, g);

  if (sched.empty()) {
    ALGE_CHECK(g == 1, "schedule exhausted with %d ranks still grouped", g);
    // The share is the whole s×s submatrix, already row-major (0 Z-levels
    // remain below this depth).
    const int cutoff = ctx.opts->local_cutoff;
    sim::Buffer prod = comm.alloc(share);
    if (cutoff > 0) {
      if (!gm) strassen_multiply(a.span(), b.span(), prod.span(), s, cutoff);
      comm.compute(strassen_flops(s, cutoff));
    } else {
      if (!gm) matmul_add_blocked(a.data(), b.data(), prod.data(), s, s, s);
      comm.compute(matmul_flops(s, s, s));
    }
    if (!gm) std::copy(prod.data(), prod.data() + share, c.span().begin());
    return;
  }

  const std::size_t len = share / 4;  // share of one quadrant / product
  sim::Buffer s_ops = comm.alloc(7 * len);
  sim::Buffer t_ops = comm.alloc(7 * len);
  if (gm) {
    form_operands_cost(ctx, len);
  } else {
    form_operands(ctx, a.span(), b.span(), len, s_ops.data(), t_ops.data());
  }

  const char step = sched.front();
  const std::string_view rest = sched.substr(1);

  if (step == 'D') {
    // All g ranks walk the 7 subproblems sequentially; no data movement.
    sim::Buffer prods = comm.alloc(7 * len);
    for (int i = 0; i < 7; ++i) {
      const std::size_t off = static_cast<std::size_t>(i) * len;
      caps_rec(ctx, base, g, s / 2, s_ops.view().sub(off, len),
               t_ops.view().sub(off, len), prods.view().sub(off, len), rest);
    }
    if (gm) {
      form_result_cost(ctx, len);
    } else {
      form_result(ctx, prods.data(), c.span(), len);
    }
    return;
  }

  ALGE_CHECK(step == 'B', "schedule characters must be B or D");
  ALGE_CHECK(g % 7 == 0, "BFS step needs a group divisible by 7 (g=%d)", g);
  const int gc = g / 7;
  const int r = comm.rank() - base;  // my index within the group
  const int my_sub = r / gc;         // subproblem (subgroup) I join
  const int j = r % gc;              // my index within the subgroup

  // Ship my slice of (S_i, T_i) to my counterpart in subgroup i.
  {
    sim::Buffer send_buf = comm.alloc(2 * len);
    for (int i = 0; i < 7; ++i) {
      const std::size_t off = static_cast<std::size_t>(i) * len;
      if (!gm) {
        std::copy_n(s_ops.data() + off, len, send_buf.data());
        std::copy_n(t_ops.data() + off, len, send_buf.data() + len);
      }
      comm.send(base + i * gc + j, send_buf.view(), kTagDown);
    }
  }
  // Receive the 7 parent slices of my subproblem's operands and interleave
  // them into the child (mod gc) cyclic share: element u of the child share
  // came from parent u mod 7, slot u/7 of its slice.
  const std::size_t child_len = 7 * len;
  sim::Buffer a_child = comm.alloc(child_len);
  sim::Buffer b_child = comm.alloc(child_len);
  {
    sim::Buffer recv_buf = comm.alloc(2 * len);
    for (int d = 0; d < 7; ++d) {
      comm.recv(base + j + d * gc, recv_buf.view(), kTagDown);
      if (!gm) {
        for (std::size_t t = 0; t < len; ++t) {
          a_child[t * 7 + static_cast<std::size_t>(d)] = recv_buf[t];
          b_child[t * 7 + static_cast<std::size_t>(d)] = recv_buf[len + t];
        }
      }
    }
  }

  sim::Buffer p_child = comm.alloc(child_len);
  caps_rec(ctx, base + my_sub * gc, gc, s / 2, a_child.view(),
           b_child.view(), p_child.view(), rest);

  // Up-sweep: slice d of my product share goes back to parent rank j+d·gc.
  {
    sim::Buffer send_buf = comm.alloc(len);
    for (int d = 0; d < 7; ++d) {
      if (!gm) {
        for (std::size_t t = 0; t < len; ++t) {
          send_buf[t] = p_child[t * 7 + static_cast<std::size_t>(d)];
        }
      }
      comm.send(base + j + d * gc, send_buf.view(), kTagUp);
    }
  }
  // Collect my slice of every subproblem's product and combine into C.
  sim::Buffer prods = comm.alloc(7 * len);
  for (int i = 0; i < 7; ++i) {
    comm.recv(base + i * gc + j,
              prods.view().sub(static_cast<std::size_t>(i) * len, len),
              kTagUp);
  }
  if (gm) {
    form_result_cost(ctx, len);
  } else {
    form_result(ctx, prods.data(), c.span(), len);
  }
}
}  // namespace

int caps_ranks(int k) {
  ALGE_REQUIRE(k >= 0 && k <= 10, "k=%d out of range", k);
  int p = 1;
  for (int i = 0; i < k; ++i) p *= 7;
  return p;
}

bool caps_schedule_valid(int n, int k, const std::string& schedule) {
  if (n <= 0 || k < 0) return false;
  const std::string sched =
      schedule.empty() ? std::string(static_cast<std::size_t>(k), 'B')
                       : schedule;
  int bs = 0;
  for (char ch : sched) {
    if (ch == 'B') {
      ++bs;
    } else if (ch != 'D') {
      return false;
    }
  }
  if (bs != k) return false;
  long long g = caps_ranks(k);
  long long s = n;
  for (char ch : sched) {
    if (s % 2 != 0) return false;
    const long long quad = (s / 2) * (s / 2);
    if (quad % g != 0) return false;  // share alignment at this level
    s /= 2;
    if (ch == 'B') g /= 7;
  }
  return true;
}

void caps_multiply(sim::Comm& comm, int n, int k, sim::ConstPayload a_share,
                   sim::ConstPayload b_share, sim::Payload c_share,
                   const CapsOptions& opts) {
  const int p = caps_ranks(k);
  ALGE_REQUIRE(comm.size() == p, "CAPS with k=%d needs exactly %d ranks", k,
               p);
  const std::string sched =
      opts.schedule.empty() ? std::string(static_cast<std::size_t>(k), 'B')
                            : opts.schedule;
  ALGE_REQUIRE(caps_schedule_valid(n, k, sched),
               "layout misaligned for n=%d, k=%d, schedule '%s'", n, k,
               sched.c_str());
  const std::size_t share =
      static_cast<std::size_t>(n) * static_cast<std::size_t>(n) /
      static_cast<std::size_t>(p);
  ALGE_REQUIRE(a_share.size() == share && b_share.size() == share &&
                   c_share.size() == share,
               "shares must be n²/p = %zu words", share);
  Ctx ctx{&comm, &opts, comm.ghost()};
  caps_rec(ctx, /*base=*/0, p, n, a_share, b_share, c_share, sched);
}

}  // namespace alge::algs
