// CAPS — Communication-Avoiding Parallel Strassen [15] — on the simulator.
//
// p = 7^k ranks cooperate on C = A·B. The matrices live in the cyclic
// Z-order layout of layout.hpp. The schedule is a string over {B, D} with
// exactly k 'B's:
//
//   B (breadth-first) step: the 7 Strassen subproblems are *distributed*,
//     one per subgroup of g/7 ranks. Each rank locally forms its share of
//     all seven (S_i, T_i) operand pairs (quadrant additions are local by
//     the layout), ships share i to its counterpart in subgroup i, and the
//     subproblems proceed in parallel. This is the step that trades extra
//     memory (7/4 growth per level) for a 7^(level)-fold drop in the
//     per-subproblem group size — the source of CAPS's communication
//     optimality.
//
//   D (depth-first) step: all g ranks recurse into the 7 subproblems one
//     after another. No communication and no memory growth; used when
//     memory is scarce (the FLM regime of the paper).
//
// When the group size reaches 1 the rank converts its share (by then the
// whole submatrix) to row-major and multiplies locally (Strassen with a
// cutoff, or the classical kernel).
#pragma once

#include <string>

#include "sim/comm.hpp"

namespace alge::algs {

struct CapsOptions {
  /// Schedule over {'B','D'}; empty means all-BFS ("BB...B", k times).
  std::string schedule;
  /// Local multiply: Strassen below this size switches to the classical
  /// kernel; 0 means use the classical kernel outright.
  int local_cutoff = 32;
};

/// Multiply two n×n matrices distributed over p = 7^k ranks (the whole
/// machine). Each rank passes its layout shares of A and B (length n²/p,
/// Z-levels = schedule length) and receives its share of C. Shares are
/// payload views (sim/payload.hpp): spans convert implicitly in full-data
/// mode; ghost views replay the identical cost schedule without data.
void caps_multiply(sim::Comm& comm, int n, int k, sim::ConstPayload a_share,
                   sim::ConstPayload b_share, sim::Payload c_share,
                   const CapsOptions& opts = {});

/// 7^k.
int caps_ranks(int k);

/// True iff the cyclic layout stays aligned for this (n, k, schedule).
bool caps_schedule_valid(int n, int k, const std::string& schedule);

}  // namespace alge::algs
