#include "algs/strassen/layout.hpp"

#include "support/common.hpp"

namespace alge::algs {

std::size_t z_index(int r, int c, int s, int levels) {
  ALGE_REQUIRE(r >= 0 && r < s && c >= 0 && c < s,
               "element (%d,%d) out of range for s=%d", r, c, s);
  std::size_t idx = 0;
  for (int lvl = 0; lvl < levels; ++lvl) {
    ALGE_REQUIRE(s % 2 == 0, "s=%d not divisible at level %d", s, lvl);
    const int h = s / 2;
    const int quad = (r >= h ? 2 : 0) + (c >= h ? 1 : 0);
    idx += static_cast<std::size_t>(quad) * static_cast<std::size_t>(h) * h;
    r %= h;
    c %= h;
    s = h;
  }
  return idx + static_cast<std::size_t>(r) * s + c;
}

std::vector<double> to_z_order(std::span<const double> row_major, int s,
                               int levels) {
  ALGE_REQUIRE(row_major.size() == static_cast<std::size_t>(s) * s,
               "matrix must be s² = %d words", s * s);
  std::vector<double> z(row_major.size());
  for (int r = 0; r < s; ++r) {
    for (int c = 0; c < s; ++c) {
      z[z_index(r, c, s, levels)] = row_major[static_cast<std::size_t>(r) * s + c];
    }
  }
  return z;
}

std::vector<double> from_z_order(std::span<const double> z, int s,
                                 int levels) {
  ALGE_REQUIRE(z.size() == static_cast<std::size_t>(s) * s,
               "matrix must be s² = %d words", s * s);
  std::vector<double> m(z.size());
  for (int r = 0; r < s; ++r) {
    for (int c = 0; c < s; ++c) {
      m[static_cast<std::size_t>(r) * s + c] = z[z_index(r, c, s, levels)];
    }
  }
  return m;
}

std::vector<double> extract_share(std::span<const double> z, int g, int r) {
  ALGE_REQUIRE(g >= 1 && r >= 0 && r < g, "bad share (g=%d, r=%d)", g, r);
  ALGE_REQUIRE(z.size() % static_cast<std::size_t>(g) == 0,
               "g=%d must divide the vector length %zu", g, z.size());
  std::vector<double> share(z.size() / static_cast<std::size_t>(g));
  for (std::size_t i = 0; i < share.size(); ++i) {
    share[i] = z[i * static_cast<std::size_t>(g) + static_cast<std::size_t>(r)];
  }
  return share;
}

void place_share(std::span<double> z, int g, int r,
                 std::span<const double> share) {
  ALGE_REQUIRE(g >= 1 && r >= 0 && r < g, "bad share (g=%d, r=%d)", g, r);
  ALGE_REQUIRE(share.size() * static_cast<std::size_t>(g) == z.size(),
               "share length %zu times g=%d must equal %zu", share.size(), g,
               z.size());
  for (std::size_t i = 0; i < share.size(); ++i) {
    z[i * static_cast<std::size_t>(g) + static_cast<std::size_t>(r)] = share[i];
  }
}

bool caps_layout_valid(int n, int k) {
  if (n <= 0 || k < 0) return false;
  // At BFS depth d (0-based): matrix size s = n/2^d over g = 7^(k-d) ranks;
  // the cyclic layout needs g | (s/2)² (quadrant alignment) — and the leaf
  // size n/2^k must be a whole number of rows.
  long long s = n;
  long long g = 1;
  for (int d = 0; d < k; ++d) g *= 7;
  for (int d = 0; d < k; ++d) {
    if (s % 2 != 0) return false;
    const long long quad = (s / 2) * (s / 2);
    if (quad % g != 0) return false;
    s /= 2;
    g /= 7;
  }
  return true;
}

}  // namespace alge::algs
