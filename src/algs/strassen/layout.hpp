// The CAPS data layout [15]: matrices are linearized in quadrant-recursive
// (Morton/Z) order down to `levels` quadrant splits with row-major leaf
// blocks, and each of g = 7^k ranks owns the elements whose Z-index is
// ≡ rank (mod g), stored densely in increasing Z-index.
//
// Two properties make this the right layout for CAPS:
//  1. A quadrant of the matrix is a *contiguous run* of the Z-order, so a
//     rank's share of a quadrant is a contiguous slice of its share vector,
//     and (because quadrant base offsets are multiples of g) the slice holds
//     the same relative positions in every quadrant — Strassen's quadrant
//     additions are purely local and perfectly aligned across ranks.
//  2. When a group of g ranks hands subproblem i to its i-th subgroup of
//     g/7 ranks, every parent rank r sends its whole slice to the single
//     child rank r mod (g/7), and the child rebuilds its (mod g/7)-cyclic
//     share by round-robin interleaving the 7 received slices — an exact,
//     invertible exchange of (s/2)²/g words per operand per rank.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace alge::algs {

/// Z-order index of element (r, c) in an s×s matrix with `levels` quadrant
/// levels (leaves of size s/2^levels are row-major).
std::size_t z_index(int r, int c, int s, int levels);

/// Reorder a row-major s×s matrix into Z-order (inverse: from_z_order).
std::vector<double> to_z_order(std::span<const double> row_major, int s,
                               int levels);
std::vector<double> from_z_order(std::span<const double> z, int s,
                                 int levels);

/// Extract rank r's cyclic share (elements with index ≡ r mod g) of a
/// Z-ordered vector. Requires g to divide z.size().
std::vector<double> extract_share(std::span<const double> z, int g, int r);

/// Scatter a share back into a Z-ordered vector.
void place_share(std::span<double> z, int g, int r,
                 std::span<const double> share);

/// Validity check for a CAPS run: n divisible into 2^k quadrant levels with
/// 7^k dividing every quadrant size along the way. Returns true iff the
/// cyclic layout stays aligned at every BFS level.
bool caps_layout_valid(int n, int k);

}  // namespace alge::algs
