// Sequential Strassen matrix multiplication with a cutoff to the blocked
// classical kernel, plus the exact flop-count formula used to charge
// simulated compute time.
#pragma once

#include <span>

namespace alge::algs {

/// C = A·B for n×n row-major matrices using Strassen recursion down to
/// `cutoff` (then the classical kernel). Recursion also stops at odd sizes
/// instead of padding, so any n works; only the even-halving prefix of the
/// size gets the Strassen flop savings.
void strassen_multiply(std::span<const double> a, std::span<const double> b,
                       std::span<double> c, int n, int cutoff = 64);

/// Exact flops performed by strassen_multiply: 7 recursive products + 18
/// quadrant-size additions per level, 2·n³ at the leaves.
double strassen_flops(int n, int cutoff = 64);

/// Number of Strassen levels strassen_multiply(n, cutoff) recurses through.
int strassen_levels(int n, int cutoff = 64);

}  // namespace alge::algs
