#include "algs/strassen/local.hpp"

#include <vector>

#include "algs/matmul/local.hpp"
#include "support/common.hpp"

namespace alge::algs {

namespace {

void add(const double* x, const double* y, double* out, int len) {
  for (int i = 0; i < len; ++i) out[i] = x[i] + y[i];
}

void sub(const double* x, const double* y, double* out, int len) {
  for (int i = 0; i < len; ++i) out[i] = x[i] - y[i];
}

/// Copy quadrant (qi, qj) of the n×n matrix m into the dense h×h buffer.
void get_quadrant(const double* m, int n, int qi, int qj, double* out) {
  const int h = n / 2;
  for (int r = 0; r < h; ++r) {
    const double* src = m + static_cast<std::size_t>(qi * h + r) * n + qj * h;
    std::copy(src, src + h, out + static_cast<std::size_t>(r) * h);
  }
}

void set_quadrant(double* m, int n, int qi, int qj, const double* in) {
  const int h = n / 2;
  for (int r = 0; r < h; ++r) {
    double* dst = m + static_cast<std::size_t>(qi * h + r) * n + qj * h;
    std::copy(in + static_cast<std::size_t>(r) * h,
              in + static_cast<std::size_t>(r + 1) * h, dst);
  }
}

void strassen_rec(const double* a, const double* b, double* c, int n,
                  int cutoff) {
  if (n <= cutoff || n % 2 != 0) {
    // Base case: at or below the cutoff, or an odd size (recursion stops
    // rather than padding).
    std::fill(c, c + static_cast<std::size_t>(n) * n, 0.0);
    matmul_add_blocked(a, b, c, n, n, n);
    return;
  }
  const int h = n / 2;
  const std::size_t h2 = static_cast<std::size_t>(h) * h;
  const int len = static_cast<int>(h2);
  // 4 quadrants each of A and B, 7 products, 2 scratch operands.
  std::vector<double> store(h2 * 17);
  double* a11 = store.data();
  double* a12 = a11 + h2;
  double* a21 = a12 + h2;
  double* a22 = a21 + h2;
  double* b11 = a22 + h2;
  double* b12 = b11 + h2;
  double* b21 = b12 + h2;
  double* b22 = b21 + h2;
  double* m1 = b22 + h2;
  double* m2 = m1 + h2;
  double* m3 = m2 + h2;
  double* m4 = m3 + h2;
  double* m5 = m4 + h2;
  double* m6 = m5 + h2;
  double* m7 = m6 + h2;
  double* s = m7 + h2;
  double* t = s + h2;
  get_quadrant(a, n, 0, 0, a11);
  get_quadrant(a, n, 0, 1, a12);
  get_quadrant(a, n, 1, 0, a21);
  get_quadrant(a, n, 1, 1, a22);
  get_quadrant(b, n, 0, 0, b11);
  get_quadrant(b, n, 0, 1, b12);
  get_quadrant(b, n, 1, 0, b21);
  get_quadrant(b, n, 1, 1, b22);

  add(a11, a22, s, len);
  add(b11, b22, t, len);
  strassen_rec(s, t, m1, h, cutoff);  // M1 = (A11+A22)(B11+B22)
  add(a21, a22, s, len);
  strassen_rec(s, b11, m2, h, cutoff);  // M2 = (A21+A22)B11
  sub(b12, b22, t, len);
  strassen_rec(a11, t, m3, h, cutoff);  // M3 = A11(B12-B22)
  sub(b21, b11, t, len);
  strassen_rec(a22, t, m4, h, cutoff);  // M4 = A22(B21-B11)
  add(a11, a12, s, len);
  strassen_rec(s, b22, m5, h, cutoff);  // M5 = (A11+A12)B22
  sub(a21, a11, s, len);
  add(b11, b12, t, len);
  strassen_rec(s, t, m6, h, cutoff);  // M6 = (A21-A11)(B11+B12)
  sub(a12, a22, s, len);
  add(b21, b22, t, len);
  strassen_rec(s, t, m7, h, cutoff);  // M7 = (A12-A22)(B21+B22)

  // C11 = M1+M4-M5+M7, C12 = M3+M5, C21 = M2+M4, C22 = M1-M2+M3+M6.
  add(m1, m4, s, len);
  sub(s, m5, s, len);
  add(s, m7, s, len);
  set_quadrant(c, n, 0, 0, s);
  add(m3, m5, s, len);
  set_quadrant(c, n, 0, 1, s);
  add(m2, m4, s, len);
  set_quadrant(c, n, 1, 0, s);
  sub(m1, m2, s, len);
  add(s, m3, s, len);
  add(s, m6, s, len);
  set_quadrant(c, n, 1, 1, s);
}

}  // namespace

void strassen_multiply(std::span<const double> a, std::span<const double> b,
                       std::span<double> c, int n, int cutoff) {
  ALGE_REQUIRE(n >= 1, "matrix size must be positive");
  ALGE_REQUIRE(cutoff >= 1, "cutoff must be positive");
  const std::size_t n2 = static_cast<std::size_t>(n) * n;
  ALGE_REQUIRE(a.size() == n2 && b.size() == n2 && c.size() == n2,
               "buffers must be n² = %zu words", n2);
  strassen_rec(a.data(), b.data(), c.data(), n, cutoff);
}

double strassen_flops(int n, int cutoff) {
  if (n <= cutoff || n % 2 != 0) {
    return 2.0 * static_cast<double>(n) * n * n;
  }
  const double h2 = static_cast<double>(n / 2) * (n / 2);
  return 7.0 * strassen_flops(n / 2, cutoff) + 18.0 * h2;
}

int strassen_levels(int n, int cutoff) {
  int levels = 0;
  while (n > cutoff && n % 2 == 0) {
    n /= 2;
    ++levels;
  }
  return levels;
}

}  // namespace alge::algs
