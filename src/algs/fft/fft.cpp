#include "algs/fft/fft.hpp"

#include <cmath>
#include <numbers>

#include "support/common.hpp"

namespace alge::algs {

namespace {
bool is_pow2(int n) { return n > 0 && (n & (n - 1)) == 0; }

int ilog2(int n) {
  int lg = 0;
  while ((1 << lg) < n) ++lg;
  return lg;
}
}  // namespace

void fft_inplace(std::span<double> data, int n, bool inverse) {
  ALGE_REQUIRE(is_pow2(n), "FFT size %d must be a power of two", n);
  ALGE_REQUIRE(data.size() == 2 * static_cast<std::size_t>(n),
               "buffer must hold %d complex points (%d words)", n, 2 * n);
  // Bit-reversal permutation.
  const int lg = ilog2(n);
  for (int i = 0; i < n; ++i) {
    int rev = 0;
    for (int b = 0; b < lg; ++b) rev |= ((i >> b) & 1) << (lg - 1 - b);
    if (i < rev) {
      std::swap(data[2 * static_cast<std::size_t>(i)],
                data[2 * static_cast<std::size_t>(rev)]);
      std::swap(data[2 * static_cast<std::size_t>(i) + 1],
                data[2 * static_cast<std::size_t>(rev) + 1]);
    }
  }
  const double sign = inverse ? +1.0 : -1.0;
  for (int len = 2; len <= n; len <<= 1) {
    const double ang = sign * 2.0 * std::numbers::pi / len;
    const double wr = std::cos(ang);
    const double wi = std::sin(ang);
    for (int start = 0; start < n; start += len) {
      double cr = 1.0;
      double ci = 0.0;
      for (int off = 0; off < len / 2; ++off) {
        const std::size_t a = 2 * static_cast<std::size_t>(start + off);
        const std::size_t b =
            2 * static_cast<std::size_t>(start + off + len / 2);
        const double xr = data[b] * cr - data[b + 1] * ci;
        const double xi = data[b] * ci + data[b + 1] * cr;
        data[b] = data[a] - xr;
        data[b + 1] = data[a + 1] - xi;
        data[a] += xr;
        data[a + 1] += xi;
        const double ncr = cr * wr - ci * wi;
        ci = cr * wi + ci * wr;
        cr = ncr;
      }
    }
  }
  if (inverse) {
    const double inv_n = 1.0 / n;
    for (double& x : data) x *= inv_n;
  }
}

std::vector<double> naive_dft(std::span<const double> in, int n,
                              bool inverse) {
  ALGE_REQUIRE(in.size() == 2 * static_cast<std::size_t>(n),
               "buffer must hold %d complex points", n);
  std::vector<double> out(in.size(), 0.0);
  const double sign = inverse ? +1.0 : -1.0;
  for (int k = 0; k < n; ++k) {
    double sr = 0.0;
    double si = 0.0;
    for (int j = 0; j < n; ++j) {
      const double ang = sign * 2.0 * std::numbers::pi * j * k / n;
      const double cr = std::cos(ang);
      const double ci = std::sin(ang);
      const double xr = in[2 * static_cast<std::size_t>(j)];
      const double xi = in[2 * static_cast<std::size_t>(j) + 1];
      sr += xr * cr - xi * ci;
      si += xr * ci + xi * cr;
    }
    out[2 * static_cast<std::size_t>(k)] = sr;
    out[2 * static_cast<std::size_t>(k) + 1] = si;
  }
  if (inverse) {
    for (double& x : out) x /= n;
  }
  return out;
}

double fft_flops(int n) {
  return 5.0 * static_cast<double>(n) * ilog2(n);
}

void fft_parallel(sim::Comm& comm, int n, int r_dim, int c_dim,
                  sim::ConstPayload my_cols, sim::Payload my_rows,
                  AllToAllKind kind) {
  const int p = comm.size();
  const bool gm = comm.ghost();
  ALGE_REQUIRE(r_dim >= 1 && c_dim >= 1 && r_dim * c_dim == n,
               "need n = R·C (got %d ≠ %d·%d)", n, r_dim, c_dim);
  ALGE_REQUIRE(is_pow2(r_dim) && is_pow2(c_dim),
               "R=%d and C=%d must be powers of two", r_dim, c_dim);
  ALGE_REQUIRE(r_dim % p == 0 && c_dim % p == 0,
               "p=%d must divide both R=%d and C=%d", p, r_dim, c_dim);
  const int cl = c_dim / p;  // my columns
  const int rl = r_dim / p;  // my output rows
  ALGE_REQUIRE(my_cols.size() == 2 * static_cast<std::size_t>(r_dim) * cl,
               "input must be 2·R·C/p words");
  ALGE_REQUIRE(my_rows.size() == 2 * static_cast<std::size_t>(c_dim) * rl,
               "output must be 2·C·R/p words");
  const int h = comm.rank();

  // Step 1+2: R-point FFT down each of my columns, then twiddle
  // Z[k1,j2] = Y[k1,j2]·w_n^{j2·k1}.
  sim::Buffer work = comm.alloc(my_cols.size());
  if (!gm) std::copy(my_cols.span().begin(), my_cols.span().end(),
                     work.data());
  for (int jl = 0; jl < cl; ++jl) {
    if (!gm) {
      auto col = work.span().subspan(2 * static_cast<std::size_t>(jl) * r_dim,
                                     2 * static_cast<std::size_t>(r_dim));
      fft_inplace(col, r_dim);
    }
    comm.compute(fft_flops(r_dim));
    if (!gm) {
      auto col = work.span().subspan(2 * static_cast<std::size_t>(jl) * r_dim,
                                     2 * static_cast<std::size_t>(r_dim));
      const int j2 = h * cl + jl;
      for (int k1 = 0; k1 < r_dim; ++k1) {
        const double ang = -2.0 * std::numbers::pi *
                           static_cast<double>(j2) * k1 / n;
        const double cr = std::cos(ang);
        const double ci = std::sin(ang);
        double& re = col[2 * static_cast<std::size_t>(k1)];
        double& im = col[2 * static_cast<std::size_t>(k1) + 1];
        const double nr = re * cr - im * ci;
        im = re * ci + im * cr;
        re = nr;
      }
    }
    comm.compute(6.0 * r_dim);  // twiddle multiplies
  }

  // Step 3: all-to-all transpose. Block for rank h': my columns × its k1
  // range, (C/p)·(R/p) complex points each.
  const std::size_t blk = 2 * static_cast<std::size_t>(cl) * rl;
  sim::Buffer sendbuf = comm.alloc(blk * static_cast<std::size_t>(p));
  sim::Buffer recvbuf = comm.alloc(blk * static_cast<std::size_t>(p));
  if (!gm) {
    for (int dst = 0; dst < p; ++dst) {
      double* out = sendbuf.data() + blk * static_cast<std::size_t>(dst);
      std::size_t w = 0;
      for (int jl = 0; jl < cl; ++jl) {
        for (int k1l = 0; k1l < rl; ++k1l) {
          const int k1 = dst * rl + k1l;
          const std::size_t src =
              2 * (static_cast<std::size_t>(jl) * r_dim + k1);
          out[w++] = work[src];
          out[w++] = work[src + 1];
        }
      }
    }
  }
  const sim::Group world = sim::Group::world(p);
  if (kind == AllToAllKind::kDirect) {
    comm.alltoall(sendbuf.view(), recvbuf.view(), world);
  } else {
    comm.alltoall_bruck(sendbuf.view(), recvbuf.view(), world);
  }

  // Reassemble my rows: the block from rank `src` holds its columns
  // j2 = src·C/p + jl at my k1 values.
  if (!gm) {
    for (int src = 0; src < p; ++src) {
      const double* in = recvbuf.data() + blk * static_cast<std::size_t>(src);
      std::size_t w = 0;
      for (int jl = 0; jl < cl; ++jl) {
        const int j2 = src * cl + jl;
        for (int k1l = 0; k1l < rl; ++k1l) {
          const std::size_t dst =
              2 * (static_cast<std::size_t>(k1l) * c_dim + j2);
          my_rows.span()[dst] = in[w++];
          my_rows.span()[dst + 1] = in[w++];
        }
      }
    }
  }

  // Step 4: C-point FFT along each of my rows; entry k2 of the row FFT is
  // X[k1 + k2·R].
  for (int k1l = 0; k1l < rl; ++k1l) {
    if (!gm) {
      auto row = my_rows.span().subspan(
          2 * static_cast<std::size_t>(k1l) * c_dim,
          2 * static_cast<std::size_t>(c_dim));
      fft_inplace(row, c_dim);
    }
    comm.compute(fft_flops(c_dim));
  }
}

}  // namespace alge::algs
