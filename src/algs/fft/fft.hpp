// FFT: an iterative radix-2 local kernel, a naive-DFT reference, and the
// parallel four-step FFT the paper analyzes in Section IV — the version
// whose single all-to-all can be done either directly (W = n/p words,
// S = p messages per rank) or with a Bruck/tree exchange (W = (n/p)·log p,
// S = log p), the exact trade-off of the paper's two cost rows.
//
// Complex data is stored as interleaved doubles (re, im), so a buffer of n
// complex points is 2n words — the factor 2 is a constant the models absorb.
#pragma once

#include <span>
#include <vector>

#include "sim/comm.hpp"

namespace alge::algs {

/// In-place radix-2 Cooley-Tukey on n complex points (n a power of two).
/// Forward uses w = e^{-2πi/n}; `inverse` uses the conjugate and scales by
/// 1/n.
void fft_inplace(std::span<double> data, int n, bool inverse = false);

/// O(n²) reference DFT.
std::vector<double> naive_dft(std::span<const double> in, int n,
                              bool inverse = false);

/// Flop convention for charging simulated time: 5·n·log2(n).
double fft_flops(int n);

enum class AllToAllKind { kDirect, kBruck };

/// Four-step parallel FFT of n = R·C complex points on all p ranks
/// (p | R and p | C, all powers of two).
///
/// View the input as an R×C matrix x[j1][j2] = x[j1·C + j2]. Rank h holds
/// columns j2 ∈ [h·C/p, (h+1)·C/p), column-major:
///   my_cols[(jl·R + j1)·2 + {0,1}], jl local.
/// After column FFTs, twiddles, the all-to-all transpose, and row FFTs,
/// rank h holds output rows k1 ∈ [h·R/p, (h+1)·R/p):
///   my_rows[(k1l·C + k2)·2] = X[k1 + k2·R]  (row-major in k2).
/// Buffers are payload views — spans convert implicitly in full-data mode;
/// ghost views replay the identical cost schedule without data.
void fft_parallel(sim::Comm& comm, int n, int r_dim, int c_dim,
                  sim::ConstPayload my_cols, sim::Payload my_rows,
                  AllToAllKind kind = AllToAllKind::kDirect);

}  // namespace alge::algs
