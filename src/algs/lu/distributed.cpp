#include "algs/lu/distributed.hpp"

#include <algorithm>
#include <vector>

#include "algs/lu/local.hpp"
#include "algs/matmul/local.hpp"
#include "support/common.hpp"

namespace alge::algs {

namespace {
constexpr int kTagGather = 401;

/// C -= A·B for nb×nb row-major blocks.
void gemm_minus(const double* a, const double* b, double* c, int nb) {
  for (int i = 0; i < nb; ++i) {
    for (int l = 0; l < nb; ++l) {
      const double ail = a[static_cast<std::size_t>(i) * nb + l];
      const double* brow = b + static_cast<std::size_t>(l) * nb;
      double* crow = c + static_cast<std::size_t>(i) * nb;
      for (int j = 0; j < nb; ++j) crow[j] -= ail * brow[j];
    }
  }
}
}  // namespace

void BlockCyclic::validate() const {
  ALGE_REQUIRE(n >= 1 && nb >= 1 && q >= 1, "sizes must be positive");
  ALGE_REQUIRE(n % nb == 0, "block size nb=%d must divide n=%d", nb, n);
  ALGE_REQUIRE((n / nb) % q == 0, "grid q=%d must divide block count %d", q,
               n / nb);
}

void lu_2d(sim::Comm& comm, const topo::Grid2D& grid, const BlockCyclic& bc,
           sim::Payload local_blocks) {
  bc.validate();
  const int q = grid.q();
  ALGE_REQUIRE(bc.q == q, "BlockCyclic.q=%d must match the grid q=%d", bc.q,
               q);
  ALGE_REQUIRE(local_blocks.size() == bc.local_words(),
               "local buffer must be %zu words", bc.local_words());
  const bool gm = comm.ghost();
  const int nt = bc.nt();
  const int nb = bc.nb;
  const std::size_t nbw = bc.block_words();
  const int myrow = grid.row_of(comm.rank());
  const int mycol = grid.col_of(comm.rank());
  const sim::Group row_g = grid.row_group(myrow);
  const sim::Group col_g = grid.col_group(mycol);
  auto block = [&](int I, int J) {
    return local_blocks.sub(bc.local_offset(I, J), nbw);
  };

  sim::Buffer akk = comm.alloc(nbw);
  // One slot per local block-row/column for the panels of the current step.
  sim::Buffer l_panel = comm.alloc(static_cast<std::size_t>(bc.local_dim()) *
                                   nbw);
  sim::Buffer u_panel = comm.alloc(static_cast<std::size_t>(bc.local_dim()) *
                                   nbw);
  auto l_slot = [&](int I) {
    return l_panel.view().sub(static_cast<std::size_t>(I / q) * nbw, nbw);
  };
  auto u_slot = [&](int J) {
    return u_panel.view().sub(static_cast<std::size_t>(J / q) * nbw, nbw);
  };

  for (int k = 0; k < nt; ++k) {
    const int kr = k % q;
    const int kc = k % q;
    // Factor A(k,k) on its owner, then send it where the panels need it.
    if (myrow == kr && mycol == kc) {
      if (!gm) lu_factor_inplace(block(k, k).span(), nb);
      comm.compute(lu_factor_flops(nb));
      if (!gm) std::copy_n(block(k, k).data(), nbw, akk.data());
    }
    if (mycol == kc) comm.bcast(akk.view(), kr, col_g);
    if (myrow == kr) comm.bcast(akk.view(), kc, row_g);

    // Panels: L(i,k) = A(i,k)·U(k,k)⁻¹ on column kc; U(k,j) = L(k,k)⁻¹·A(k,j)
    // on row kr.
    if (mycol == kc) {
      for (int i = k + 1; i < nt; ++i) {
        if (i % q != myrow) continue;
        if (!gm) trsm_upper_right(akk.span(), block(i, k).span(), nb);
        comm.compute(trsm_flops(nb));
      }
    }
    if (myrow == kr) {
      for (int j = k + 1; j < nt; ++j) {
        if (j % q != mycol) continue;
        if (!gm) trsm_lower_left(akk.span(), block(k, j).span(), nb);
        comm.compute(trsm_flops(nb));
      }
    }

    // Broadcast the panels into the trailing submatrix.
    for (int i = k + 1; i < nt; ++i) {
      if (i % q != myrow) continue;
      if (mycol == kc && !gm) {
        std::copy_n(block(i, k).data(), nbw, l_slot(i).data());
      }
      comm.bcast(l_slot(i), kc, row_g);
    }
    for (int j = k + 1; j < nt; ++j) {
      if (j % q != mycol) continue;
      if (myrow == kr && !gm) {
        std::copy_n(block(k, j).data(), nbw, u_slot(j).data());
      }
      comm.bcast(u_slot(j), kr, col_g);
    }

    // Trailing update of my blocks.
    for (int i = k + 1; i < nt; ++i) {
      if (i % q != myrow) continue;
      for (int j = k + 1; j < nt; ++j) {
        if (j % q != mycol) continue;
        if (!gm) {
          gemm_minus(l_slot(i).data(), u_slot(j).data(), block(i, j).data(),
                     nb);
        }
        comm.compute(gemm_update_flops(nb));
      }
    }
  }
}

void lu_25d(sim::Comm& comm, const topo::Grid3D& grid, const BlockCyclic& bc,
            sim::Payload local_blocks) {
  bc.validate();
  const int q = grid.q();
  const int c = grid.c();
  ALGE_REQUIRE(bc.q == q, "BlockCyclic.q=%d must match the grid q=%d", bc.q,
               q);
  const bool gm = comm.ghost();
  const int myrow = grid.row_of(comm.rank());
  const int mycol = grid.col_of(comm.rank());
  const int l = grid.layer_of(comm.rank());
  if (l == 0) {
    ALGE_REQUIRE(local_blocks.size() == bc.local_words(),
                 "layer-0 local buffer must be %zu words", bc.local_words());
  } else {
    ALGE_REQUIRE(local_blocks.empty(), "non-root layers pass empty payloads");
  }
  const int nt = bc.nt();
  const int nb = bc.nb;
  const std::size_t nbw = bc.block_words();
  const sim::Group row_g = grid.row_group(myrow, l);
  const sim::Group col_g = grid.col_group(mycol, l);
  const sim::Group depth_g = grid.depth_group(myrow, mycol);
  auto slice_of = [&](int J) { return J % c; };  // layer updating column J

  // Replicate the matrix across the layers.
  sim::Buffer mine = comm.alloc(bc.local_words());
  if (l == 0 && !gm) {
    std::copy_n(local_blocks.data(), bc.local_words(), mine.data());
  }
  comm.bcast(mine.view(), 0, depth_g);
  auto block = [&](int I, int J) {
    return mine.view().sub(bc.local_offset(I, J), nbw);
  };

  sim::Buffer akk = comm.alloc(nbw);
  sim::Buffer l_panel = comm.alloc(static_cast<std::size_t>(bc.local_dim()) *
                                   nbw);
  sim::Buffer u_panel = comm.alloc(static_cast<std::size_t>(bc.local_dim()) *
                                   nbw);
  auto l_slot = [&](int I) {
    return l_panel.view().sub(static_cast<std::size_t>(I / q) * nbw, nbw);
  };
  auto u_slot = [&](int J) {
    return u_panel.view().sub(static_cast<std::size_t>(J / q) * nbw, nbw);
  };

  for (int k = 0; k < nt; ++k) {
    const int kr = k % q;
    const int kc = k % q;
    const int lk = slice_of(k);  // layer whose copy of column k is current

    // 1. Layer lk factors the diagonal block and forms the L panel.
    if (l == lk) {
      if (myrow == kr && mycol == kc) {
        if (!gm) lu_factor_inplace(block(k, k).span(), nb);
        comm.compute(lu_factor_flops(nb));
        if (!gm) std::copy_n(block(k, k).data(), nbw, akk.data());
      }
      if (mycol == kc) {
        comm.bcast(akk.view(), kr, col_g);
        for (int i = k + 1; i < nt; ++i) {
          if (i % q != myrow) continue;
          if (!gm) trsm_upper_right(akk.span(), block(i, k).span(), nb);
          comm.compute(trsm_flops(nb));
          if (!gm) std::copy_n(block(i, k).data(), nbw, l_slot(i).data());
        }
      }
    }

    // 2. Depth broadcasts: A(k,k) and the L panel leave layer lk.
    if (myrow == kr && mycol == kc) comm.bcast(akk.view(), lk, depth_g);
    if (mycol == kc) {
      for (int i = k + 1; i < nt; ++i) {
        if (i % q != myrow) continue;
        comm.bcast(l_slot(i), lk, depth_g);
        // Keep every layer's copy of column k current (it is column k's
        // home slice only on layer lk, but the factored panel is part of
        // the final answer gathered from layer lk; copies keep the
        // replicated matrix consistent).
        if (!gm) std::copy_n(l_slot(i).data(), nbw, block(i, k).data());
      }
    }
    if (myrow == kr && mycol == kc && !gm) {
      std::copy_n(akk.data(), nbw, block(k, k).data());
    }

    // 3. Within each layer: U panel for this layer's slice columns.
    if (myrow == kr) comm.bcast(akk.view(), kc, row_g);
    if (myrow == kr) {
      for (int j = k + 1; j < nt; ++j) {
        if (j % q != mycol || slice_of(j) != l) continue;
        if (!gm) trsm_lower_left(akk.span(), block(k, j).span(), nb);
        comm.compute(trsm_flops(nb));
      }
    }

    // 4. Panel broadcasts within the layer.
    for (int i = k + 1; i < nt; ++i) {
      if (i % q != myrow) continue;
      // l_slot(i) already holds L(i,k) on column kc ranks (depth bcast).
      comm.bcast(l_slot(i), kc, row_g);
    }
    for (int j = k + 1; j < nt; ++j) {
      if (j % q != mycol || slice_of(j) != l) continue;
      if (myrow == kr && !gm) {
        std::copy_n(block(k, j).data(), nbw, u_slot(j).data());
      }
      comm.bcast(u_slot(j), kr, col_g);
    }

    // 5. Trailing update of my slice.
    for (int i = k + 1; i < nt; ++i) {
      if (i % q != myrow) continue;
      for (int j = k + 1; j < nt; ++j) {
        if (j % q != mycol || slice_of(j) != l) continue;
        if (!gm) {
          gemm_minus(l_slot(i).data(), u_slot(j).data(), block(i, j).data(),
                     nb);
        }
        comm.compute(gemm_update_flops(nb));
      }
    }
  }

  // Gather: block (I,J)'s final value lives on layer slice_of(J).
  for (int I = 0; I < nt; ++I) {
    if (I % q != myrow) continue;
    for (int J = 0; J < nt; ++J) {
      if (J % q != mycol) continue;
      const int home = slice_of(J);
      if (home == 0) {
        if (l == 0 && !gm) {
          std::copy_n(block(I, J).data(), nbw,
                      local_blocks.data() + bc.local_offset(I, J));
        }
        continue;
      }
      if (l == home) {
        comm.send(grid.rank_of(myrow, mycol, 0), block(I, J), kTagGather);
      } else if (l == 0) {
        comm.recv(grid.rank_of(myrow, mycol, home),
                  local_blocks.sub(bc.local_offset(I, J), nbw), kTagGather);
      }
    }
  }
}

}  // namespace alge::algs
