#include "algs/lu/local.hpp"

#include <cmath>

#include "support/common.hpp"

namespace alge::algs {

namespace {
void check_square(std::size_t len, int n) {
  ALGE_REQUIRE(n >= 1, "matrix size must be positive");
  ALGE_REQUIRE(len == static_cast<std::size_t>(n) * n,
               "buffer must be n² = %d words", n * n);
}
}  // namespace

void lu_factor_inplace(std::span<double> a, int n) {
  check_square(a.size(), n);
  for (int k = 0; k < n; ++k) {
    const double pivot = a[static_cast<std::size_t>(k) * n + k];
    ALGE_REQUIRE(std::fabs(pivot) > 1e-300,
                 "zero pivot at %d: matrix needs pivoting", k);
    for (int i = k + 1; i < n; ++i) {
      a[static_cast<std::size_t>(i) * n + k] /= pivot;
      const double lik = a[static_cast<std::size_t>(i) * n + k];
      for (int j = k + 1; j < n; ++j) {
        a[static_cast<std::size_t>(i) * n + j] -=
            lik * a[static_cast<std::size_t>(k) * n + j];
      }
    }
  }
}

void trsm_lower_left(std::span<const double> lu, std::span<double> b, int n) {
  check_square(lu.size(), n);
  check_square(b.size(), n);
  // Solve L·X = B row by row (L unit lower).
  for (int i = 0; i < n; ++i) {
    for (int k = 0; k < i; ++k) {
      const double lik = lu[static_cast<std::size_t>(i) * n + k];
      for (int j = 0; j < n; ++j) {
        b[static_cast<std::size_t>(i) * n + j] -=
            lik * b[static_cast<std::size_t>(k) * n + j];
      }
    }
  }
}

void trsm_upper_right(std::span<const double> lu, std::span<double> b,
                      int n) {
  check_square(lu.size(), n);
  check_square(b.size(), n);
  // Solve X·U = B column by column (U non-unit upper).
  for (int j = 0; j < n; ++j) {
    const double ujj = lu[static_cast<std::size_t>(j) * n + j];
    ALGE_REQUIRE(std::fabs(ujj) > 1e-300, "singular U at %d", j);
    for (int i = 0; i < n; ++i) {
      double x = b[static_cast<std::size_t>(i) * n + j];
      for (int k = 0; k < j; ++k) {
        x -= b[static_cast<std::size_t>(i) * n + k] *
             lu[static_cast<std::size_t>(k) * n + j];
      }
      b[static_cast<std::size_t>(i) * n + j] = x / ujj;
    }
  }
}

std::vector<double> lu_reconstruct(std::span<const double> lu, int n) {
  check_square(lu.size(), n);
  std::vector<double> out(lu.size(), 0.0);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      double sum = 0.0;
      const int kmax = std::min(i, j);
      for (int k = 0; k <= kmax; ++k) {
        const double lik =
            k == i ? 1.0 : lu[static_cast<std::size_t>(i) * n + k];
        sum += lik * lu[static_cast<std::size_t>(k) * n + j];
      }
      out[static_cast<std::size_t>(i) * n + j] = sum;
    }
  }
  return out;
}

std::vector<double> diagonally_dominant_matrix(int n, Rng& rng) {
  std::vector<double> a(static_cast<std::size_t>(n) * n);
  rng.fill_uniform(a, -1.0, 1.0);
  for (int i = 0; i < n; ++i) {
    a[static_cast<std::size_t>(i) * n + i] += static_cast<double>(n);
  }
  return a;
}

double lu_factor_flops(int n) {
  return 2.0 / 3.0 * static_cast<double>(n) * n * n;
}

double trsm_flops(int n) { return static_cast<double>(n) * n * n; }

double gemm_update_flops(int n) {
  return 2.0 * static_cast<double>(n) * n * n;
}

}  // namespace alge::algs
