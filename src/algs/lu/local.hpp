// Local dense LU kernels (no pivoting — callers supply diagonally dominant
// matrices, the standard setting for the communication-cost analyses of
// [11]): in-place factorization, the two triangular panel solves of
// right-looking block LU, and flop-count helpers for simulator charging.
#pragma once

#include <span>
#include <vector>

#include "support/rng.hpp"

namespace alge::algs {

/// In-place LU without pivoting: A -> (L\U) with unit lower L.
void lu_factor_inplace(std::span<double> a, int n);

/// B <- L⁻¹·B where lu holds (L\U) and L is unit lower (forward subst.).
void trsm_lower_left(std::span<const double> lu, std::span<double> b, int n);

/// B <- B·U⁻¹ where lu holds (L\U) and U is non-unit upper.
void trsm_upper_right(std::span<const double> lu, std::span<double> b, int n);

/// Reconstruct L·U from the packed factor (for verification).
std::vector<double> lu_reconstruct(std::span<const double> lu, int n);

/// Random diagonally dominant matrix (safe for unpivoted LU).
std::vector<double> diagonally_dominant_matrix(int n, Rng& rng);

/// Flop conventions used for simulator charging.
double lu_factor_flops(int n);    ///< 2n³/3
double trsm_flops(int n);         ///< n³
double gemm_update_flops(int n);  ///< 2n³

}  // namespace alge::algs
