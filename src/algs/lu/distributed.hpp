// Distributed right-looking block LU (no pivoting) on the simulator:
//
//   lu_2d  — 2D block-cyclic LU on a q×q grid (the classical baseline).
//   lu_25d — a layered 2.5D variant: the matrix is replicated on c layers,
//            layer (k mod c) factors panel k, the panel is broadcast across
//            the depth, and each layer updates only its 1/c slice of the
//            trailing block columns. This realizes the paper's Section-IV
//            observation about 2.5D LU: bandwidth drops with replication
//            but the per-step critical-path synchronization means the
//            message count grows as Θ(n/nb · log(qc)) — it does NOT strong
//            scale in latency. (The asymptotically optimal 2.5D LU of [11]
//            pipelines these steps; the dependency structure, and hence the
//            latency behaviour we reproduce, is the same.)
//
// Blocks are distributed block-cyclically: block (I,J) lives on grid rank
// (I mod q, J mod q), stored locally in lexicographic (I/q, J/q) order.
#pragma once

#include "sim/comm.hpp"
#include "topo/grid.hpp"

namespace alge::algs {

/// Block-cyclic bookkeeping shared by callers and tests.
struct BlockCyclic {
  int n = 0;   ///< matrix size
  int nb = 0;  ///< block edge
  int q = 0;   ///< grid edge

  int nt() const { return n / nb; }          ///< blocks per dimension
  int local_dim() const { return nt() / q; } ///< local blocks per dimension
  std::size_t block_words() const {
    return static_cast<std::size_t>(nb) * nb;
  }
  std::size_t local_words() const {
    return static_cast<std::size_t>(local_dim()) * local_dim() *
           block_words();
  }
  bool owns(int I, int J, int row, int col) const {
    return I % q == row && J % q == col;
  }
  /// Offset of block (I,J) within the owner's local buffer.
  std::size_t local_offset(int I, int J) const {
    return (static_cast<std::size_t>(I / q) * local_dim() +
            static_cast<std::size_t>(J / q)) *
           block_words();
  }
  void validate() const;
};

/// Factor the block-cyclically distributed matrix in place. Each rank
/// passes its local blocks (layout per BlockCyclic) as a payload view —
/// spans convert implicitly in full-data mode, ghost views replay the
/// identical cost schedule without data. Requires nb | n and q | n/nb.
void lu_2d(sim::Comm& comm, const topo::Grid2D& grid, const BlockCyclic& bc,
           sim::Payload local_blocks);

/// 2.5D variant; input/output block-cyclic over layer 0 of the q×q×c grid
/// (other layers pass empty payloads).
void lu_25d(sim::Comm& comm, const topo::Grid3D& grid, const BlockCyclic& bc,
            sim::Payload local_blocks);

}  // namespace alge::algs
