// Fold-map builders: the (p, rank) -> equivalence-class geometry of each
// algorithm's communication schedule, consumed by ExecMode::kFolded
// (sim/fold.hpp). A builder returns nullptr when the algorithm (or that
// parameter point) has no exact fold — the machine then transparently runs
// per-fiber, so attaching a map is always safe.
//
// What folds, and why:
//
//  - Cannon / 2.5D at c=1 (foldmap_mm25d): the alignment step makes row 0
//    and column 0 self-send their A/B blocks (free) while everyone else
//    pays a real send, so the q×q layer splits into exactly four cost
//    classes: {(0,0)}, row 0, column 0, interior. 4 fibers at any p = q².
//    For c>1 the depth broadcast/reduce crosses layers whose class
//    structure differs per (i,j) and the per-layer skew offset l·(q/c)
//    moves the self-send rows/columns per layer, which class-level replay
//    cannot align — those points fold through a rotor schedule instead
//    (the binomial depth tree only; ring replication stays per-fiber).
//  - CAPS / Strassen (foldmap_caps): every rank runs the same BFS
//    schedule with peers determined by its own coordinates; one class of
//    all 7^k ranks. 1 fiber at p = 40 million.
//  - FFT (foldmap_fft): transpose all-to-all (direct or Bruck) is fully
//    translation-symmetric with a local self-block copy; one class.
//  - N-body (foldmap_nbody): team broadcast/reduce roles and ring-shift
//    distances depend only on the team row; c row classes, and every
//    peer's class is position-uniform, so channels keep destination
//    filtering (scatter=false) and the stricter leftover-entry check.
//  - TSQR (foldmap_tsqr): the binomial fan-in skeleton is analytic in
//    (p, rank); classes come from partition refinement on each rank's
//    (kind, level, source-class) receive schedule, so two ranks only fold
//    if every message they receive comes from the same class at the same
//    position. O(log p)-ish classes for p = 2^k.
//  - SUMMA and LU (foldmap_summa / foldmap_lu) have no class-level fold:
//    their broadcast roots rotate through every grid position with the
//    step index, making each rank's role unique over the run. They fold
//    through *rotor schedules* (sim/fold_rotor.hpp) instead: the builder
//    emits the whole position-parameterized op program and the machine
//    evaluates it as an array sweep — zero fibers, bit-identical counters,
//    p = 10^6 in seconds.
#pragma once

#include <memory>

#include "sim/fold.hpp"

namespace alge::algs {

/// 2.5D matmul on a q×q×c grid (p = q²c). Non-null only for c == 1.
std::shared_ptr<const sim::FoldMap> foldmap_mm25d(int q, int c);

/// 2.5D matmul with the full parameter point: c == 1 delegates to the
/// four-class map above; c > 1 builds a rotor schedule (binomial depth
/// replication only — ring replication returns nullptr, per-fiber).
/// `nb` = n/q, the block edge the run uses.
std::shared_ptr<const sim::FoldMap> foldmap_mm25d(int q, int c, int nb,
                                                  bool ring_replication);

/// SUMMA on a q×q grid multiplying n×n matrices: rotor schedule (the
/// broadcast root rotates through the grid per step). Non-null for
/// q >= 2 with q | n.
std::shared_ptr<const sim::FoldMap> foldmap_summa(int n, int q);

/// Block-cyclic 2D LU on a q×q grid (c == 1 only; the layered 2.5D
/// variant's gather traffic is point-to-point per block and stays
/// per-fiber): rotor schedule with per-step masks for the shrinking
/// active grid. Non-null for q >= 2, nb | n, q | n/nb.
std::shared_ptr<const sim::FoldMap> foldmap_lu(int n, int nb, int q, int c);

/// CAPS Strassen with p = 7^k ranks: one class.
std::shared_ptr<const sim::FoldMap> foldmap_caps(int p);

/// Parallel FFT over p ranks: one class.
std::shared_ptr<const sim::FoldMap> foldmap_fft(int p);

/// Replicating n-body on a c×(p/c) team grid: one class per team row.
std::shared_ptr<const sim::FoldMap> foldmap_nbody(int p, int c);

/// TSQR binomial fan-in over p ranks; refinement is O(p·log²p), capped at
/// p ≤ 2^24 (nullptr above; see the builder comment for the memory bound).
std::shared_ptr<const sim::FoldMap> foldmap_tsqr(int p);

}  // namespace alge::algs
