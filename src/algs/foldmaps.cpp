#include "algs/foldmaps.hpp"

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "algs/lu/local.hpp"
#include "algs/matmul/local.hpp"
#include "sim/fold_rotor.hpp"
#include "support/common.hpp"

namespace alge::algs {

namespace {

/// Single-class map: every rank fold-congruent, one fiber total.
std::shared_ptr<const sim::FoldMap> single_class(int p) {
  if (p < 2) return nullptr;
  std::vector<sim::FoldClass> classes{{/*rep=*/0, /*size=*/p,
                                       /*scatter=*/true}};
  return std::make_shared<const sim::FoldMap>(p, std::move(classes),
                                              [](int) { return 0; });
}

/// Wrap a finished rotor schedule as a fold map (sim/fold_rotor.hpp).
std::shared_ptr<const sim::FoldMap> rotor_map(sim::RotorSchedule rs) {
  const int p = rs.p();
  return std::make_shared<const sim::FoldMap>(sim::FoldMap::with_rotor(
      p, std::make_shared<const sim::RotorSchedule>(std::move(rs))));
}

}  // namespace

std::shared_ptr<const sim::FoldMap> foldmap_mm25d(int q, int c) {
  // c > 1: the depth broadcast/reduce couples layers whose four-way class
  // structure differs per (i, j); class replay cannot align those channels
  // exactly, so the machine runs per-fiber. c == 1 is pure Cannon.
  if (c != 1 || q < 2) return nullptr;
  // cannon_align with s0 = 0 makes row 0 keep its A block (self-send,
  // free) and column 0 keep its B block; everyone else pays a real send.
  // That splits the layer into exactly four cost classes; within each,
  // all traffic is translation-congruent.
  std::vector<sim::FoldClass> classes{
      {/*rep=*/0, /*size=*/1, /*scatter=*/true},          // (0,0)
      {/*rep=*/1, /*size=*/q - 1, /*scatter=*/true},      // row 0, j > 0
      {/*rep=*/q, /*size=*/q - 1, /*scatter=*/true},      // col 0, i > 0
      {/*rep=*/q + 1, /*size=*/(q - 1) * (q - 1),
       /*scatter=*/true},                                 // interior
  };
  return std::make_shared<const sim::FoldMap>(
      q * q, std::move(classes), [q](int r) {
        const int i = r / q;
        const int j = r % q;
        return i == 0 ? (j == 0 ? 0 : 1) : (j == 0 ? 2 : 3);
      });
}

std::shared_ptr<const sim::FoldMap> foldmap_mm25d(int q, int c, int nb,
                                                  bool ring_replication) {
  if (c == 1) return foldmap_mm25d(q, c);
  // c > 1: rotor schedule transcribing mm_25d (algs/matmul/distributed.cpp)
  // op for op. The layer-l skew offset s0 = l·(q/c) is what defeats the
  // class-level fold — the rotor evaluator's kSkewA/kSkewB ops carry it as
  // a position parameter instead. Ring replication's pipelined depth chain
  // has no rotor op; that option stays per-fiber.
  if (q < 2 || c < 1 || q % c != 0 || nb < 1 || ring_replication) {
    return nullptr;
  }
  const std::size_t nb2 = static_cast<std::size_t>(nb) * nb;
  const double mm = matmul_flops(nb, nb, nb);
  sim::RotorSchedule rs;
  rs.q = q;
  rs.c = c;
  using K = sim::RotorOp::Kind;
  auto op = [&rs](K k) -> sim::RotorOp& {
    rs.ops.push_back({});
    rs.ops.back().kind = k;
    return rs.ops.back();
  };
  op(K::kAlloc).words = nb2;  // a_mine
  op(K::kAlloc).words = nb2;  // b_mine
  op(K::kBcastDepth).words = nb2;
  op(K::kBcastDepth).words = nb2;
  op(K::kAlloc).words = nb2;  // a_cur
  op(K::kAlloc).words = nb2;  // b_cur
  op(K::kAlloc).words = nb2;  // scratch
  op(K::kAlloc).words = nb2;  // c_partial
  op(K::kSkewA).words = nb2;
  op(K::kSkewB).words = nb2;
  const int steps = q / c;
  for (int s = 0; s < steps; ++s) {
    op(K::kCompute).flops = mm;
    if (s + 1 < steps) {
      op(K::kShiftA).words = nb2;
      op(K::kShiftB).words = nb2;
    }
  }
  op(K::kReduceDepth).words = nb2;
  // Buffer destruction, reverse declaration order.
  op(K::kFree).words = nb2;  // c_partial
  op(K::kFree).words = nb2;  // scratch
  op(K::kFree).words = nb2;  // b_cur
  op(K::kFree).words = nb2;  // a_cur
  op(K::kFree).words = nb2;  // b_mine
  op(K::kFree).words = nb2;  // a_mine
  return rotor_map(std::move(rs));
}

std::shared_ptr<const sim::FoldMap> foldmap_summa(int n, int q) {
  if (q < 2 || n < 1 || n % q != 0) return nullptr;
  // Rotor transcription of summa_2d: per step k, a row broadcast of the
  // A panel rooted at column k and a column broadcast of the B panel
  // rooted at row k — the rotating root is the position parameter.
  const int nb = n / q;
  const std::size_t nb2 = static_cast<std::size_t>(nb) * nb;
  const double mm = matmul_flops(nb, nb, nb);
  sim::RotorSchedule rs;
  rs.q = q;
  rs.c = 1;
  using K = sim::RotorOp::Kind;
  auto op = [&rs](K k) -> sim::RotorOp& {
    rs.ops.push_back({});
    rs.ops.back().kind = k;
    return rs.ops.back();
  };
  op(K::kAlloc).words = nb2;  // a_panel
  op(K::kAlloc).words = nb2;  // b_panel
  for (int k = 0; k < q; ++k) {
    sim::RotorOp& a = op(K::kBcastRow);
    a.root = k;
    a.words = nb2;
    sim::RotorOp& b = op(K::kBcastCol);
    b.root = k;
    b.words = nb2;
    op(K::kCompute).flops = mm;
  }
  op(K::kFree).words = nb2;  // b_panel
  op(K::kFree).words = nb2;  // a_panel
  return rotor_map(std::move(rs));
}

std::shared_ptr<const sim::FoldMap> foldmap_lu(int n, int nb, int q, int c) {
  // The 2.5D variant gathers finished blocks to layer 0 with per-block
  // point-to-point sends whose peers depend on (I, J) beyond any axis
  // structure; c > 1 stays per-fiber.
  if (c != 1) return nullptr;
  if (q < 2 || nb < 1 || n < 1 || n % nb != 0 || (n / nb) % q != 0) {
    return nullptr;
  }
  // Rotor transcription of lu_2d: per step k the diagonal owner (kr, kr)
  // factors, A(k,k) runs down column kr and across row kr, the panel
  // triangular solves and broadcasts repeat t[i] times per row/column
  // coordinate (the block-cyclic count of local panels beyond k), and the
  // trailing update runs t[i]·t[j] times — all expressed with the
  // participation masks, roots rotating with k % q.
  const int nt = n / nb;
  const int ld = nt / q;
  const std::size_t nbw = static_cast<std::size_t>(nb) * nb;
  const std::size_t panel = static_cast<std::size_t>(ld) * nbw;
  const double f_getrf = lu_factor_flops(nb);
  const double f_trsm = trsm_flops(nb);
  const double f_gemm = gemm_update_flops(nb);
  sim::RotorSchedule rs;
  rs.q = q;
  rs.c = 1;
  using K = sim::RotorOp::Kind;
  auto op = [&rs](K k) -> sim::RotorOp& {
    rs.ops.push_back({});
    rs.ops.back().kind = k;
    return rs.ops.back();
  };
  op(K::kAlloc).words = nbw;    // akk
  op(K::kAlloc).words = panel;  // l_panel
  op(K::kAlloc).words = panel;  // u_panel
  for (int k = 0; k < nt; ++k) {
    const int kr = k % q;
    std::vector<std::int32_t> diag(static_cast<std::size_t>(q), 0);
    diag[static_cast<std::size_t>(kr)] = 1;
    // t[r] = how many of the remaining block rows/columns k+1..nt-1 land
    // on grid coordinate r.
    std::vector<std::int32_t> t(static_cast<std::size_t>(q), 0);
    for (int m = k + 1; m < nt; ++m) ++t[static_cast<std::size_t>(m % q)];
    const bool trailing = nt - (k + 1) > 0;

    sim::RotorOp& getrf = op(K::kCompute);
    getrf.flops = f_getrf;
    getrf.row_rep = diag;
    getrf.col_rep = diag;
    sim::RotorOp& akk_col = op(K::kBcastCol);
    akk_col.root = kr;
    akk_col.words = nbw;
    akk_col.col_rep = diag;
    sim::RotorOp& akk_row = op(K::kBcastRow);
    akk_row.root = kr;
    akk_row.words = nbw;
    akk_row.row_rep = diag;
    if (trailing) {
      sim::RotorOp& trsm_l = op(K::kCompute);
      trsm_l.flops = f_trsm;
      trsm_l.row_rep = t;
      trsm_l.col_rep = diag;
      sim::RotorOp& trsm_u = op(K::kCompute);
      trsm_u.flops = f_trsm;
      trsm_u.row_rep = diag;
      trsm_u.col_rep = t;
      sim::RotorOp& l_bcast = op(K::kBcastRow);
      l_bcast.root = kr;
      l_bcast.words = nbw;
      l_bcast.row_rep = t;
      sim::RotorOp& u_bcast = op(K::kBcastCol);
      u_bcast.root = kr;
      u_bcast.words = nbw;
      u_bcast.col_rep = t;
      sim::RotorOp& gemm = op(K::kCompute);
      gemm.flops = f_gemm;
      gemm.row_rep = t;
      gemm.col_rep = std::move(t);
    }
  }
  op(K::kFree).words = panel;  // u_panel
  op(K::kFree).words = panel;  // l_panel
  op(K::kFree).words = nbw;    // akk
  return rotor_map(std::move(rs));
}

std::shared_ptr<const sim::FoldMap> foldmap_caps(int p) {
  // Every CAPS rank runs the identical BFS/DFS schedule with peers given
  // by its own base/sub-index coordinates; costs are rank-independent
  // (each BFS exchange includes exactly one free self-send, at a
  // per-rank position that only permutes the order of identical charges).
  return single_class(p);
}

std::shared_ptr<const sim::FoldMap> foldmap_fft(int p) {
  // Transpose all-to-all, direct or Bruck: fully translation-symmetric;
  // the "self block" is a local copy outside the Comm layer.
  return single_class(p);
}

std::shared_ptr<const sim::FoldMap> foldmap_nbody(int p, int c) {
  if (c < 1 || p % c != 0) return nullptr;
  const int cols = p / c;
  if (cols < 1) return nullptr;
  // Team broadcast/reduce roles, ring-shift distances and the step count
  // all depend only on the team row; every peer of a row-i rank sits in a
  // row determined by the schedule position alone, so channels keep
  // destination filtering (scatter=false) and the leftover-entry check.
  std::vector<sim::FoldClass> classes;
  classes.reserve(static_cast<std::size_t>(c));
  for (int i = 0; i < c; ++i) {
    classes.push_back({/*rep=*/i * cols, /*size=*/cols, /*scatter=*/false});
  }
  return std::make_shared<const sim::FoldMap>(
      p, std::move(classes), [cols](int r) { return r / cols; });
}

std::shared_ptr<const sim::FoldMap> foldmap_tsqr(int p) {
  // The eager refinement tables are load-bearing (the fixpoint needs the
  // previous round's class of rank me+mask, which a closed form per rank
  // would recompute O(log p) deep); their footprint is ~3 int vectors of
  // length p plus the hash map — about 300 MB at the 2^24 cap, built in a
  // few seconds. Beyond that, per-fiber execution of the O(log p)-class
  // fold costs less than the build itself.
  if (p < 2 || p > (1 << 24)) return nullptr;
  // Partition refinement over the analytic fan-in skeleton
  // (algs/qr/tsqr.cpp): at round `mask`, rank me either sends to me-mask
  // and stops (me & mask) or receives from me+mask (me+mask < p). Two
  // ranks fold together only when they have the same (kind, level)
  // skeleton AND, at every receive, sources in the same class — iterated
  // to fixpoint, so merged ranks provably share per-event cost schedules.
  // Send destinations are deliberately NOT part of the signature: their
  // classes vary per member (me - mask), which is exactly what
  // FoldClass::scatter's positional channel matching handles.
  auto cls = std::make_shared<std::vector<int>>(static_cast<std::size_t>(p),
                                                0);
  std::vector<int> next(static_cast<std::size_t>(p), 0);
  int num = 1;
  for (int round = 0; round < 2 * 24 + 2; ++round) {
    std::unordered_map<std::uint64_t, int> ids;
    ids.reserve(static_cast<std::size_t>(num) * 2);
    int n_next = 0;
    for (int me = 0; me < p; ++me) {
      std::uint64_t h = 1469598103934665603ull;
      const auto mix = [&h](std::uint64_t v) {
        h ^= v;
        h *= 1099511628211ull;
      };
      mix(static_cast<std::uint64_t>(
          (*cls)[static_cast<std::size_t>(me)]));  // keeps splits monotone
      int level = 0;
      for (int mask = 1; mask < p; mask <<= 1, ++level) {
        if (me & mask) {
          mix(0x5eu);
          mix(static_cast<std::uint64_t>(level));
          break;
        }
        if (me + mask < p) {
          mix(0x2cu);
          mix(static_cast<std::uint64_t>(level));
          mix(static_cast<std::uint64_t>(
              (*cls)[static_cast<std::size_t>(me + mask)]));
        }
      }
      const auto [it, inserted] = ids.try_emplace(h, n_next);
      if (inserted) ++n_next;
      next[static_cast<std::size_t>(me)] = it->second;
    }
    const bool stable = n_next == num && next == *cls;
    cls->swap(next);
    num = n_next;
    if (stable) break;
  }
  std::vector<sim::FoldClass> classes(static_cast<std::size_t>(num));
  std::vector<bool> seen(static_cast<std::size_t>(num), false);
  for (int r = 0; r < p; ++r) {
    const int c = (*cls)[static_cast<std::size_t>(r)];
    auto& fc = classes[static_cast<std::size_t>(c)];
    if (!seen[static_cast<std::size_t>(c)]) {
      seen[static_cast<std::size_t>(c)] = true;
      fc.rep = r;  // ids assigned in ascending-rank first appearance
    }
    ++fc.size;
    fc.scatter = true;
  }
  return std::make_shared<const sim::FoldMap>(
      p, std::move(classes),
      [cls](int r) { return (*cls)[static_cast<std::size_t>(r)]; });
}

}  // namespace alge::algs
