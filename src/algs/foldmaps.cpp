#include "algs/foldmaps.hpp"

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "support/common.hpp"

namespace alge::algs {

namespace {

/// Single-class map: every rank fold-congruent, one fiber total.
std::shared_ptr<const sim::FoldMap> single_class(int p) {
  if (p < 2) return nullptr;
  std::vector<sim::FoldClass> classes{{/*rep=*/0, /*size=*/p,
                                       /*scatter=*/true}};
  return std::make_shared<const sim::FoldMap>(p, std::move(classes),
                                              [](int) { return 0; });
}

}  // namespace

std::shared_ptr<const sim::FoldMap> foldmap_mm25d(int q, int c) {
  // c > 1: the depth broadcast/reduce couples layers whose four-way class
  // structure differs per (i, j); class replay cannot align those channels
  // exactly, so the machine runs per-fiber. c == 1 is pure Cannon.
  if (c != 1 || q < 2) return nullptr;
  // cannon_align with s0 = 0 makes row 0 keep its A block (self-send,
  // free) and column 0 keep its B block; everyone else pays a real send.
  // That splits the layer into exactly four cost classes; within each,
  // all traffic is translation-congruent.
  std::vector<sim::FoldClass> classes{
      {/*rep=*/0, /*size=*/1, /*scatter=*/true},          // (0,0)
      {/*rep=*/1, /*size=*/q - 1, /*scatter=*/true},      // row 0, j > 0
      {/*rep=*/q, /*size=*/q - 1, /*scatter=*/true},      // col 0, i > 0
      {/*rep=*/q + 1, /*size=*/(q - 1) * (q - 1),
       /*scatter=*/true},                                 // interior
  };
  return std::make_shared<const sim::FoldMap>(
      q * q, std::move(classes), [q](int r) {
        const int i = r / q;
        const int j = r % q;
        return i == 0 ? (j == 0 ? 0 : 1) : (j == 0 ? 2 : 3);
      });
}

std::shared_ptr<const sim::FoldMap> foldmap_caps(int p) {
  // Every CAPS rank runs the identical BFS/DFS schedule with peers given
  // by its own base/sub-index coordinates; costs are rank-independent
  // (each BFS exchange includes exactly one free self-send, at a
  // per-rank position that only permutes the order of identical charges).
  return single_class(p);
}

std::shared_ptr<const sim::FoldMap> foldmap_fft(int p) {
  // Transpose all-to-all, direct or Bruck: fully translation-symmetric;
  // the "self block" is a local copy outside the Comm layer.
  return single_class(p);
}

std::shared_ptr<const sim::FoldMap> foldmap_nbody(int p, int c) {
  if (c < 1 || p % c != 0) return nullptr;
  const int cols = p / c;
  if (cols < 1) return nullptr;
  // Team broadcast/reduce roles, ring-shift distances and the step count
  // all depend only on the team row; every peer of a row-i rank sits in a
  // row determined by the schedule position alone, so channels keep
  // destination filtering (scatter=false) and the leftover-entry check.
  std::vector<sim::FoldClass> classes;
  classes.reserve(static_cast<std::size_t>(c));
  for (int i = 0; i < c; ++i) {
    classes.push_back({/*rep=*/i * cols, /*size=*/cols, /*scatter=*/false});
  }
  return std::make_shared<const sim::FoldMap>(
      p, std::move(classes), [cols](int r) { return r / cols; });
}

std::shared_ptr<const sim::FoldMap> foldmap_tsqr(int p) {
  if (p < 2 || p > (1 << 20)) return nullptr;
  // Partition refinement over the analytic fan-in skeleton
  // (algs/qr/tsqr.cpp): at round `mask`, rank me either sends to me-mask
  // and stops (me & mask) or receives from me+mask (me+mask < p). Two
  // ranks fold together only when they have the same (kind, level)
  // skeleton AND, at every receive, sources in the same class — iterated
  // to fixpoint, so merged ranks provably share per-event cost schedules.
  // Send destinations are deliberately NOT part of the signature: their
  // classes vary per member (me - mask), which is exactly what
  // FoldClass::scatter's positional channel matching handles.
  auto cls = std::make_shared<std::vector<int>>(static_cast<std::size_t>(p),
                                                0);
  std::vector<int> next(static_cast<std::size_t>(p), 0);
  int num = 1;
  for (int round = 0; round < 2 * 20 + 2; ++round) {
    std::unordered_map<std::uint64_t, int> ids;
    ids.reserve(static_cast<std::size_t>(num) * 2);
    int n_next = 0;
    for (int me = 0; me < p; ++me) {
      std::uint64_t h = 1469598103934665603ull;
      const auto mix = [&h](std::uint64_t v) {
        h ^= v;
        h *= 1099511628211ull;
      };
      mix(static_cast<std::uint64_t>(
          (*cls)[static_cast<std::size_t>(me)]));  // keeps splits monotone
      int level = 0;
      for (int mask = 1; mask < p; mask <<= 1, ++level) {
        if (me & mask) {
          mix(0x5eu);
          mix(static_cast<std::uint64_t>(level));
          break;
        }
        if (me + mask < p) {
          mix(0x2cu);
          mix(static_cast<std::uint64_t>(level));
          mix(static_cast<std::uint64_t>(
              (*cls)[static_cast<std::size_t>(me + mask)]));
        }
      }
      const auto [it, inserted] = ids.try_emplace(h, n_next);
      if (inserted) ++n_next;
      next[static_cast<std::size_t>(me)] = it->second;
    }
    const bool stable = n_next == num && next == *cls;
    cls->swap(next);
    num = n_next;
    if (stable) break;
  }
  std::vector<sim::FoldClass> classes(static_cast<std::size_t>(num));
  std::vector<bool> seen(static_cast<std::size_t>(num), false);
  for (int r = 0; r < p; ++r) {
    const int c = (*cls)[static_cast<std::size_t>(r)];
    auto& fc = classes[static_cast<std::size_t>(c)];
    if (!seen[static_cast<std::size_t>(c)]) {
      seen[static_cast<std::size_t>(c)] = true;
      fc.rep = r;  // ids assigned in ascending-rank first appearance
    }
    ++fc.size;
    fc.scatter = true;
  }
  return std::make_shared<const sim::FoldMap>(
      p, std::move(classes),
      [cls](int r) { return (*cls)[static_cast<std::size_t>(r)]; });
}

}  // namespace alge::algs
