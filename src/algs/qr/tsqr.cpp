#include "algs/qr/tsqr.hpp"

#include <algorithm>
#include <cmath>

#include "support/common.hpp"

namespace alge::algs {

std::vector<double> householder_qr_r(std::span<double> a, int m, int b) {
  ALGE_REQUIRE(m >= b && b >= 1, "need m >= b >= 1 (got %d x %d)", m, b);
  ALGE_REQUIRE(a.size() == static_cast<std::size_t>(m) * b,
               "block must be m*b = %d words", m * b);
  std::vector<double> v(static_cast<std::size_t>(m));
  for (int k = 0; k < b; ++k) {
    // Householder vector for column k below the diagonal.
    double norm2 = 0.0;
    for (int i = k; i < m; ++i) {
      const double x = a[static_cast<std::size_t>(i) * b + k];
      norm2 += x * x;
    }
    const double norm = std::sqrt(norm2);
    if (norm == 0.0) continue;  // column already zero below; R entry is 0
    const double x0 = a[static_cast<std::size_t>(k) * b + k];
    const double alpha = x0 >= 0.0 ? -norm : norm;
    double vnorm2 = 0.0;
    for (int i = k; i < m; ++i) {
      v[static_cast<std::size_t>(i)] =
          a[static_cast<std::size_t>(i) * b + k] - (i == k ? alpha : 0.0);
      vnorm2 += v[static_cast<std::size_t>(i)] * v[static_cast<std::size_t>(i)];
    }
    if (vnorm2 == 0.0) continue;
    // Apply H = I - 2 v vᵀ / (vᵀv) to columns k..b-1.
    for (int j = k; j < b; ++j) {
      double dot = 0.0;
      for (int i = k; i < m; ++i) {
        dot += v[static_cast<std::size_t>(i)] *
               a[static_cast<std::size_t>(i) * b + j];
      }
      const double scale = 2.0 * dot / vnorm2;
      for (int i = k; i < m; ++i) {
        a[static_cast<std::size_t>(i) * b + j] -=
            scale * v[static_cast<std::size_t>(i)];
      }
    }
  }
  std::vector<double> r(static_cast<std::size_t>(b) * b, 0.0);
  for (int i = 0; i < b; ++i) {
    for (int j = i; j < b; ++j) {
      r[static_cast<std::size_t>(i) * b + j] =
          a[static_cast<std::size_t>(i) * b + j];
    }
  }
  return r;
}

double qr_flops(int m, int b) {
  return 2.0 * static_cast<double>(m) * b * b -
         2.0 / 3.0 * static_cast<double>(b) * b * b;
}

namespace {
constexpr int kTagTsqr = 501;
constexpr int kTagGatherQr = 502;
}  // namespace

void tsqr(sim::Comm& comm, int b, sim::ConstPayload a_local,
          sim::Payload r_out) {
  ALGE_REQUIRE(b >= 1, "column count must be positive");
  ALGE_REQUIRE(a_local.size() % static_cast<std::size_t>(b) == 0,
               "local block must be a whole number of rows");
  const int rows = static_cast<int>(a_local.size()) / b;
  ALGE_REQUIRE(rows >= b, "each rank needs at least b=%d rows (has %d)", b,
               rows);
  const bool gm = comm.ghost();
  const std::size_t b2 = static_cast<std::size_t>(b) * b;
  const int me = comm.rank();
  const int p = comm.size();
  if (me == 0) {
    ALGE_REQUIRE(r_out.size() == b2, "rank 0 output must be b*b words");
  } else {
    ALGE_REQUIRE(r_out.empty(), "only rank 0 receives R");
  }

  // Local factorization.
  sim::Buffer work = comm.alloc(a_local.size());
  std::vector<double> r;
  if (!gm) {
    std::copy(a_local.span().begin(), a_local.span().end(), work.data());
    r = householder_qr_r(work.span(), rows, b);
  }
  comm.compute(qr_flops(rows, b));

  // Binomial fan-in: at round `mask`, odd multiples send their R to the
  // even partner, which stacks [R_mine; R_theirs] and re-factors.
  sim::Buffer stacked = comm.alloc(2 * b2);
  for (int mask = 1; mask < p; mask <<= 1) {
    if (me & mask) {
      comm.send(me - mask, gm ? sim::ConstPayload::ghost(b2)
                              : sim::ConstPayload(r), kTagTsqr);
      return;  // this rank is done
    }
    if (me + mask < p) {
      if (!gm) std::copy(r.begin(), r.end(), stacked.data());
      comm.recv(me + mask, stacked.view().sub(b2, b2), kTagTsqr);
      if (!gm) r = householder_qr_r(stacked.span(), 2 * b, b);
      comm.compute(qr_flops(2 * b, b));
    }
  }
  if (!gm) std::copy(r.begin(), r.end(), r_out.span().begin());
}

void gather_qr(sim::Comm& comm, int b, sim::ConstPayload a_local,
               sim::Payload r_out) {
  ALGE_REQUIRE(b >= 1, "column count must be positive");
  const bool gm = comm.ghost();
  const int me = comm.rank();
  const int p = comm.size();
  const std::size_t b2 = static_cast<std::size_t>(b) * b;
  if (me != 0) {
    ALGE_REQUIRE(r_out.empty(), "only rank 0 receives R");
    comm.send(0, a_local, kTagGatherQr);
    return;
  }
  ALGE_REQUIRE(r_out.size() == b2, "rank 0 output must be b*b words");
  // Assume equal block sizes (the harness arranges this).
  sim::Buffer all = comm.alloc(a_local.size() * static_cast<std::size_t>(p));
  if (!gm) {
    std::copy(a_local.span().begin(), a_local.span().end(), all.data());
  }
  for (int src = 1; src < p; ++src) {
    comm.recv(src,
              all.view().sub(a_local.size() * static_cast<std::size_t>(src),
                             a_local.size()),
              kTagGatherQr);
  }
  const int rows = static_cast<int>(all.size()) / b;
  if (!gm) {
    const auto r = householder_qr_r(all.span(), rows, b);
    std::copy(r.begin(), r.end(), r_out.span().begin());
  }
  comm.compute(qr_flops(rows, b));
}

}  // namespace alge::algs
