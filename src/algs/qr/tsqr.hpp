// TSQR — Tall-Skinny QR by tree reduction, the communication-optimal QR
// building block from the communication-avoiding linear algebra line of
// work the paper extends ([2] covers QR among the bounded algorithms).
//
// Each rank holds an (n/p)×b row block of a tall matrix A (n ≥ p·b rows).
// A local Householder QR reduces it to a b×b R factor; a binomial tree then
// repeatedly stacks pairs of R factors (2b×b) and re-factors, so the root
// ends with the R of the whole A after log2(p) rounds of b²-word messages:
//
//   F = Θ(n·b²/p),  W = Θ(b²·log p),  S = Θ(log p)
//
// — against the naive gather-to-root QR's W = Θ(n·b/p · p). Q is implicit
// (the usual TSQR convention); correctness is verified through
// AᵀA = RᵀR and the uniqueness of R up to row signs.
#pragma once

#include <span>
#include <vector>

#include "sim/comm.hpp"

namespace alge::algs {

/// In-place Householder QR of an m×b row-major block (m >= b >= 1).
/// Returns the b×b upper-triangular R (row-major); `a` is destroyed.
std::vector<double> householder_qr_r(std::span<double> a, int m, int b);

/// Flops charged for an m×b Householder QR: 2mb² - 2b³/3.
double qr_flops(int m, int b);

/// Distributed TSQR over all p ranks. Each rank passes its local rows
/// (rows_local × b, row-major); rank 0 receives the global R (b×b,
/// row-major) in r_out — other ranks pass an empty payload. Requires
/// rows_local >= b on every rank. Buffers are payload views — spans convert
/// implicitly in full-data mode; ghost views replay the identical cost
/// schedule without data.
void tsqr(sim::Comm& comm, int b, sim::ConstPayload a_local,
          sim::Payload r_out);

/// Baseline for the ablation: gather all rows to rank 0 and factor there.
/// Same result, W = Θ(n·b) at the root.
void gather_qr(sim::Comm& comm, int b, sim::ConstPayload a_local,
               sim::Payload r_out);

}  // namespace alge::algs
