// Small shared utilities: printf-style string formatting, fatal checks.
//
// GCC 12 does not ship <format>, so `strfmt` wraps vsnprintf. Every other
// module uses ALGE_CHECK / ALGE_REQUIRE instead of bare assert so that
// failures carry a message and fire in release builds too.
#pragma once

#include <cstdarg>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace alge {

/// printf-style formatting into a std::string.
[[gnu::format(printf, 1, 2)]] std::string strfmt(const char* fmt, ...);
std::string vstrfmt(const char* fmt, std::va_list ap);

/// Thrown by ALGE_REQUIRE on precondition violation (bad user arguments).
class invalid_argument_error : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// Thrown by ALGE_CHECK on internal invariant violation.
class internal_error : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

[[noreturn]] void throw_check_failure(const char* file, int line,
                                      const char* expr, const std::string& msg);
[[noreturn]] void throw_require_failure(const char* file, int line,
                                        const char* expr,
                                        const std::string& msg);

}  // namespace alge

/// Internal invariant: always on, throws alge::internal_error.
#define ALGE_CHECK(expr, ...)                                             \
  do {                                                                    \
    if (!(expr)) [[unlikely]] {                                           \
      ::alge::throw_check_failure(__FILE__, __LINE__, #expr,              \
                                  ::alge::strfmt("" __VA_ARGS__));        \
    }                                                                     \
  } while (false)

/// Public-API precondition: always on, throws alge::invalid_argument_error.
#define ALGE_REQUIRE(expr, ...)                                           \
  do {                                                                    \
    if (!(expr)) [[unlikely]] {                                           \
      ::alge::throw_require_failure(__FILE__, __LINE__, #expr,            \
                                    ::alge::strfmt("" __VA_ARGS__));      \
    }                                                                     \
  } while (false)
