// Minimal JSON value type with a recursive-descent parser and a canonical
// compact serializer. Used by the experiment engine (src/engine) for stable
// spec/result encoding: the serialized form of a Value built by our encoders
// is deterministic (objects keep insertion order, numbers print either as
// integers or with enough digits to round-trip a double exactly), so it can
// be hashed for content addressing and compared for bit-identity.
//
// Deliberately small: objects, arrays, strings, finite doubles, bools, null.
// No external dependencies.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

namespace alge::json {

/// Thrown on malformed input (parse) or type-mismatched access.
class json_error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class Value {
 public:
  using Array = std::vector<Value>;
  /// Insertion-ordered: serialization is deterministic for encoder-built
  /// objects, which is what the engine's content hashing relies on.
  using Object = std::vector<std::pair<std::string, Value>>;

  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Value() : v_(nullptr) {}
  Value(std::nullptr_t) : v_(nullptr) {}
  Value(bool b) : v_(b) {}
  Value(double d) : v_(d) {}
  Value(int i) : v_(static_cast<double>(i)) {}
  Value(long long i) : v_(static_cast<double>(i)) {}
  Value(std::size_t i) : v_(static_cast<double>(i)) {}
  Value(std::string s) : v_(std::move(s)) {}
  Value(const char* s) : v_(std::string(s)) {}

  static Value array() { return Value(Array{}); }
  static Value object() { return Value(Object{}); }

  Kind kind() const { return static_cast<Kind>(v_.index()); }
  bool is_null() const { return kind() == Kind::kNull; }
  bool is_bool() const { return kind() == Kind::kBool; }
  bool is_number() const { return kind() == Kind::kNumber; }
  bool is_string() const { return kind() == Kind::kString; }
  bool is_array() const { return kind() == Kind::kArray; }
  bool is_object() const { return kind() == Kind::kObject; }

  bool as_bool() const;
  double as_double() const;
  const std::string& as_string() const;
  const Array& as_array() const;
  Array& as_array();
  const Object& as_object() const;

  /// Append an element (requires an array value).
  Value& push_back(Value v);

  /// Append a key (requires an object value); keys are not deduplicated —
  /// encoders are expected to emit each key once.
  Value& set(std::string key, Value v);

  /// Pointer to a member, or nullptr (requires an object value).
  const Value* find(std::string_view key) const;
  /// Member access that throws json_error when the key is absent.
  const Value& at(std::string_view key) const;

  /// Compact canonical serialization (no whitespace).
  std::string dump() const;

  bool operator==(const Value& o) const = default;

 private:
  explicit Value(Array a) : v_(std::move(a)) {}
  explicit Value(Object o) : v_(std::move(o)) {}

  std::variant<std::nullptr_t, bool, double, std::string, Array, Object> v_;
};

/// Parse a complete JSON document; trailing non-whitespace is an error.
Value parse(std::string_view text);

}  // namespace alge::json
