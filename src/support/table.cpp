#include "support/table.hpp"

#include <algorithm>

#include "support/common.hpp"

namespace alge {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  ALGE_REQUIRE(!header_.empty(), "table needs at least one column");
}

Table& Table::row() {
  if (!cells_.empty()) {
    ALGE_REQUIRE(cells_.back().size() == header_.size(),
                 "previous row has %zu cells, header has %zu",
                 cells_.back().size(), header_.size());
  }
  cells_.emplace_back();
  return *this;
}

Table& Table::cell(const std::string& value) {
  ALGE_REQUIRE(!cells_.empty(), "cell() before row()");
  ALGE_REQUIRE(cells_.back().size() < header_.size(),
               "row already has %zu cells", header_.size());
  cells_.back().push_back(value);
  return *this;
}

Table& Table::cell(const char* value) { return cell(std::string(value)); }

Table& Table::cell(double value, const char* fmt) {
  return cell(strfmt(fmt, value));
}

Table& Table::cell(long long value) { return cell(strfmt("%lld", value)); }
Table& Table::cell(int value) { return cell(strfmt("%d", value)); }
Table& Table::cell(std::size_t value) { return cell(strfmt("%zu", value)); }

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : cells_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < header_.size(); ++c) {
      const std::string& v = c < row.size() ? row[c] : std::string();
      os << v << std::string(width[c] - v.size(), ' ');
      os << (c + 1 < header_.size() ? "  " : "");
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) {
    total += width[c] + (c + 1 < width.size() ? 2 : 0);
  }
  os << std::string(total, '-') << '\n';
  for (const auto& row : cells_) emit(row);
}

namespace {
std::string csv_escape(const std::string& v) {
  if (v.find_first_of(",\"\n") == std::string::npos) return v;
  std::string out = "\"";
  for (char ch : v) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}
}  // namespace

void Table::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << csv_escape(row[c]) << (c + 1 < row.size() ? "," : "");
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : cells_) emit(row);
}

}  // namespace alge
