#include "support/common.hpp"

#include <cstdio>
#include <vector>

namespace alge {

std::string vstrfmt(const char* fmt, std::va_list ap) {
  std::va_list ap2;
  va_copy(ap2, ap);
  const int n = std::vsnprintf(nullptr, 0, fmt, ap);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<std::size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, ap2);
  }
  va_end(ap2);
  return out;
}

std::string strfmt(const char* fmt, ...) {
  std::va_list ap;
  va_start(ap, fmt);
  std::string out = vstrfmt(fmt, ap);
  va_end(ap);
  return out;
}

namespace {
std::string describe(const char* kind, const char* file, int line,
                     const char* expr, const std::string& msg) {
  std::string out = strfmt("%s failed at %s:%d: %s", kind, file, line, expr);
  if (!msg.empty()) {
    out += " — ";
    out += msg;
  }
  return out;
}
}  // namespace

void throw_check_failure(const char* file, int line, const char* expr,
                         const std::string& msg) {
  throw internal_error(describe("ALGE_CHECK", file, line, expr, msg));
}

void throw_require_failure(const char* file, int line, const char* expr,
                           const std::string& msg) {
  throw invalid_argument_error(
      describe("ALGE_REQUIRE", file, line, expr, msg));
}

}  // namespace alge
