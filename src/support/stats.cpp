#include "support/stats.hpp"

#include <algorithm>
#include <cmath>

#include "support/common.hpp"

namespace alge {

void StatAccumulator::add(double x) {
  ++n_;
  sum_ += x;
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double StatAccumulator::min() const {
  ALGE_REQUIRE(n_ > 0, "min() of empty accumulator");
  return min_;
}

double StatAccumulator::max() const {
  ALGE_REQUIRE(n_ > 0, "max() of empty accumulator");
  return max_;
}

double StatAccumulator::mean() const {
  ALGE_REQUIRE(n_ > 0, "mean() of empty accumulator");
  return mean_;
}

double StatAccumulator::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double StatAccumulator::stddev() const { return std::sqrt(variance()); }

double rel_diff(double a, double b) {
  const double scale =
      std::max({std::fabs(a), std::fabs(b), 1e-300});
  return std::fabs(a - b) / scale;
}

}  // namespace alge
