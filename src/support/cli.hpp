// Minimal command-line flag parsing for the bench/example executables.
// Flags are `--name=value` or `--name value`; unknown flags are an error so
// typos surface immediately.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace alge {

class CliArgs {
 public:
  /// Declare a flag with a default before parse(); `help` is shown by usage().
  void add_flag(const std::string& name, const std::string& default_value,
                const std::string& help);

  /// Parse argv; throws invalid_argument_error on unknown flags or missing
  /// values. Recognizes --help and sets help_requested().
  void parse(int argc, const char* const* argv);

  bool help_requested() const { return help_requested_; }
  std::string usage(const std::string& program) const;

  std::string get(const std::string& name) const;
  long long get_int(const std::string& name) const;
  double get_double(const std::string& name) const;
  bool get_bool(const std::string& name) const;

  /// Comma-separated integer list, e.g. --p=1,2,4,8.
  std::vector<long long> get_int_list(const std::string& name) const;

 private:
  struct Flag {
    std::string value;
    std::string help;
  };
  std::map<std::string, Flag> flags_;
  bool help_requested_ = false;
};

}  // namespace alge
