#include "support/rng.hpp"

#include "support/common.hpp"

namespace alge {

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::next_double() {
  // 53 high bits -> [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  return lo + (hi - lo) * next_double();
}

std::uint64_t Rng::next_below(std::uint64_t n) {
  ALGE_REQUIRE(n > 0, "next_below needs a positive bound");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % n);
  std::uint64_t x;
  do {
    x = next_u64();
  } while (x >= limit);
  return x % n;
}

void Rng::fill_uniform(std::span<double> out, double lo, double hi) {
  for (double& x : out) x = uniform(lo, hi);
}

}  // namespace alge
