#include "support/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "support/common.hpp"

namespace alge::json {

namespace {

[[noreturn]] void fail(const char* what, std::size_t pos) {
  throw json_error(strfmt("json: %s at offset %zu", what, pos));
}

/// Canonical number text: integers in [-2^53, 2^53] print without an
/// exponent or fraction; everything else uses %.17g, which round-trips a
/// finite double exactly through strtod.
void append_number(std::string& out, double d) {
  if (!std::isfinite(d)) {
    throw json_error("json: cannot serialize a non-finite number");
  }
  constexpr double kExact = 9007199254740992.0;  // 2^53
  if (d == std::floor(d) && d >= -kExact && d <= kExact) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.0f", d);
    out += buf;
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", d);
  out += buf;
}

void append_string(std::string& out, const std::string& s) {
  out += '"';
  for (const char ch : s) {
    const unsigned char c = static_cast<unsigned char>(ch);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  out += '"';
}

void append_value(std::string& out, const Value& v) {
  switch (v.kind()) {
    case Value::Kind::kNull: out += "null"; break;
    case Value::Kind::kBool: out += v.as_bool() ? "true" : "false"; break;
    case Value::Kind::kNumber: append_number(out, v.as_double()); break;
    case Value::Kind::kString: append_string(out, v.as_string()); break;
    case Value::Kind::kArray: {
      out += '[';
      bool first = true;
      for (const Value& e : v.as_array()) {
        if (!first) out += ',';
        first = false;
        append_value(out, e);
      }
      out += ']';
      break;
    }
    case Value::Kind::kObject: {
      out += '{';
      bool first = true;
      for (const auto& [k, e] : v.as_object()) {
        if (!first) out += ',';
        first = false;
        append_string(out, k);
        out += ':';
        append_value(out, e);
      }
      out += '}';
      break;
    }
  }
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value parse_document() {
    Value v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters", pos_);
    return v;
  }

 private:
  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input", pos_);
    return text_[pos_];
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  void expect(char c) {
    if (!consume(c)) fail("unexpected character", pos_);
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  Value parse_value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Value(parse_string());
      case 't':
        if (literal("true")) return Value(true);
        fail("invalid literal", pos_);
      case 'f':
        if (literal("false")) return Value(false);
        fail("invalid literal", pos_);
      case 'n':
        if (literal("null")) return Value(nullptr);
        fail("invalid literal", pos_);
      default: return parse_number();
    }
  }

  Value parse_object() {
    expect('{');
    Value obj = Value::object();
    skip_ws();
    if (consume('}')) return obj;
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj.set(std::move(key), parse_value());
      skip_ws();
      if (consume('}')) return obj;
      expect(',');
    }
  }

  Value parse_array() {
    expect('[');
    Value arr = Value::array();
    skip_ws();
    if (consume(']')) return arr;
    while (true) {
      arr.push_back(parse_value());
      skip_ws();
      if (consume(']')) return arr;
      expect(',');
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string", pos_);
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail("raw control character in string", pos_ - 1);
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape", pos_);
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            if (pos_ >= text_.size()) fail("truncated \\u escape", pos_);
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("invalid \\u escape", pos_ - 1);
          }
          // UTF-8 encode the BMP code point (surrogate pairs unsupported;
          // engine strings are ASCII).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xc0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3f));
          } else {
            out += static_cast<char>(0xe0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (code & 0x3f));
          }
          break;
        }
        default: fail("invalid escape", pos_ - 1);
      }
    }
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (consume('-')) {
    }
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '+' || c == '-' || c == '.' ||
          c == 'e' || c == 'E') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) fail("invalid number", start);
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double d = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) fail("invalid number", start);
    return Value(d);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

bool Value::as_bool() const {
  if (!is_bool()) throw json_error("json: value is not a bool");
  return std::get<bool>(v_);
}

double Value::as_double() const {
  if (!is_number()) throw json_error("json: value is not a number");
  return std::get<double>(v_);
}

const std::string& Value::as_string() const {
  if (!is_string()) throw json_error("json: value is not a string");
  return std::get<std::string>(v_);
}

const Value::Array& Value::as_array() const {
  if (!is_array()) throw json_error("json: value is not an array");
  return std::get<Array>(v_);
}

Value::Array& Value::as_array() {
  if (!is_array()) throw json_error("json: value is not an array");
  return std::get<Array>(v_);
}

const Value::Object& Value::as_object() const {
  if (!is_object()) throw json_error("json: value is not an object");
  return std::get<Object>(v_);
}

Value& Value::push_back(Value v) {
  as_array().push_back(std::move(v));
  return *this;
}

Value& Value::set(std::string key, Value v) {
  if (!is_object()) throw json_error("json: value is not an object");
  std::get<Object>(v_).emplace_back(std::move(key), std::move(v));
  return *this;
}

const Value* Value::find(std::string_view key) const {
  for (const auto& [k, v] : as_object()) {
    if (k == key) return &v;
  }
  return nullptr;
}

const Value& Value::at(std::string_view key) const {
  const Value* v = find(key);
  if (v == nullptr) {
    throw json_error(strfmt("json: missing key \"%.*s\"",
                            static_cast<int>(key.size()), key.data()));
  }
  return *v;
}

std::string Value::dump() const {
  std::string out;
  append_value(out, *this);
  return out;
}

Value parse(std::string_view text) { return Parser(text).parse_document(); }

}  // namespace alge::json
