// Aligned-text and CSV table emission. Every figure/table bench prints its
// series through this so the output format is uniform and machine-readable.
#pragma once

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

namespace alge {

/// Column-aligned table with a header row; also exports CSV.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Start a new row; subsequent cell() calls fill it left to right.
  Table& row();
  Table& cell(const std::string& value);
  Table& cell(const char* value);
  Table& cell(double value, const char* fmt = "%.6g");
  Table& cell(long long value);
  Table& cell(int value);
  Table& cell(std::size_t value);

  std::size_t rows() const { return cells_.size(); }

  /// Pretty aligned text (for the terminal / bench_output.txt).
  void print(std::ostream& os) const;

  /// RFC-4180-ish CSV (quotes cells containing commas/quotes/newlines).
  void print_csv(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> cells_;
};

}  // namespace alge
