#include "support/cli.hpp"

#include <cstdlib>

#include "support/common.hpp"

namespace alge {

void CliArgs::add_flag(const std::string& name,
                       const std::string& default_value,
                       const std::string& help) {
  ALGE_REQUIRE(!flags_.contains(name), "duplicate flag --%s", name.c_str());
  flags_[name] = Flag{default_value, help};
}

void CliArgs::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      help_requested_ = true;
      continue;
    }
    ALGE_REQUIRE(arg.rfind("--", 0) == 0, "expected --flag, got '%s'",
                 arg.c_str());
    arg = arg.substr(2);
    std::string name;
    std::string value;
    if (const auto eq = arg.find('='); eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
    } else {
      name = arg;
      ALGE_REQUIRE(i + 1 < argc, "flag --%s needs a value", name.c_str());
      value = argv[++i];
    }
    auto it = flags_.find(name);
    ALGE_REQUIRE(it != flags_.end(), "unknown flag --%s", name.c_str());
    it->second.value = value;
  }
}

std::string CliArgs::usage(const std::string& program) const {
  std::string out = "usage: " + program + " [flags]\n";
  for (const auto& [name, flag] : flags_) {
    out += strfmt("  --%-20s %s (default: %s)\n", name.c_str(),
                  flag.help.c_str(), flag.value.c_str());
  }
  return out;
}

std::string CliArgs::get(const std::string& name) const {
  auto it = flags_.find(name);
  ALGE_REQUIRE(it != flags_.end(), "undeclared flag --%s", name.c_str());
  return it->second.value;
}

long long CliArgs::get_int(const std::string& name) const {
  const std::string v = get(name);
  char* end = nullptr;
  const long long x = std::strtoll(v.c_str(), &end, 10);
  ALGE_REQUIRE(end && *end == '\0' && !v.empty(),
               "flag --%s: '%s' is not an integer", name.c_str(), v.c_str());
  return x;
}

double CliArgs::get_double(const std::string& name) const {
  const std::string v = get(name);
  char* end = nullptr;
  const double x = std::strtod(v.c_str(), &end);
  ALGE_REQUIRE(end && *end == '\0' && !v.empty(),
               "flag --%s: '%s' is not a number", name.c_str(), v.c_str());
  return x;
}

bool CliArgs::get_bool(const std::string& name) const {
  const std::string v = get(name);
  if (v == "true" || v == "1" || v == "yes") return true;
  if (v == "false" || v == "0" || v == "no") return false;
  throw invalid_argument_error(
      strfmt("flag --%s: '%s' is not a boolean", name.c_str(), v.c_str()));
}

std::vector<long long> CliArgs::get_int_list(const std::string& name) const {
  const std::string v = get(name);
  std::vector<long long> out;
  std::size_t pos = 0;
  while (pos < v.size()) {
    std::size_t comma = v.find(',', pos);
    if (comma == std::string::npos) comma = v.size();
    const std::string piece = v.substr(pos, comma - pos);
    char* end = nullptr;
    const long long x = std::strtoll(piece.c_str(), &end, 10);
    ALGE_REQUIRE(end && *end == '\0' && !piece.empty(),
                 "flag --%s: '%s' is not an integer list", name.c_str(),
                 v.c_str());
    out.push_back(x);
    pos = comma + 1;
  }
  return out;
}

}  // namespace alge
