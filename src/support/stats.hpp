// Streaming summary statistics (Welford) used by benches and tests.
#pragma once

#include <cstddef>
#include <limits>

namespace alge {

/// Single-pass accumulator for count / min / max / mean / stddev.
class StatAccumulator {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double min() const;
  double max() const;
  double mean() const;
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double sum() const { return sum_; }

 private:
  std::size_t n_ = 0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
};

/// Relative difference |a-b| / max(|a|,|b|,eps); convenient for comparing
/// model predictions against simulator measurements.
double rel_diff(double a, double b);

}  // namespace alge
