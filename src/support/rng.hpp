// Deterministic PRNG (xoshiro256++) used everywhere instead of std::mt19937
// so that simulated runs and generated workloads are bit-reproducible across
// platforms and standard-library versions.
//
// Thread-safety: all state is per-instance (no statics), so distinct Rng
// objects may be used from distinct threads concurrently — the experiment
// engine (src/engine) seeds one Rng per job from ExperimentSpec::seed. A
// single instance is not synchronized; do not share one across threads.
#pragma once

#include <cstdint>
#include <span>

namespace alge {

/// xoshiro256++ by Blackman & Vigna (public domain reference implementation
/// re-expressed in C++). Seeded via splitmix64 so any 64-bit seed is fine.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  std::uint64_t next_u64();

  /// Uniform in [0, 1).
  double next_double();

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t next_below(std::uint64_t n);

  /// Fill a span with uniform values in [lo, hi).
  void fill_uniform(std::span<double> out, double lo, double hi);

 private:
  std::uint64_t s_[4];
};

}  // namespace alge
