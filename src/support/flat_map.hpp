// Minimal open-addressing hash map from 64-bit keys, built for the
// simulator's message-matching hot path: no per-node allocation, no
// iterator invalidation rules to think about (values are looked up again
// after any mutation), and no erase — only clear — which keeps probing
// tombstone-free.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace alge {

/// Flat hash map from std::uint64_t keys to V with linear probing over a
/// power-of-two slot array (max load factor 1/2). V must be movable and
/// cheap to move: slots are rehashed by moving on growth.
template <typename V>
class FlatU64Map {
 public:
  FlatU64Map() = default;

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Value for `key`, inserting a copy of `init` if absent. The reference
  /// is invalidated by the next find_or_emplace (growth may rehash).
  V& find_or_emplace(std::uint64_t key, const V& init) {
    if ((size_ + 1) * 2 > slots_.size()) grow();
    std::size_t i = probe_start(key);
    for (;;) {
      Slot& s = slots_[i];
      if (!s.used) {
        s.used = true;
        s.key = key;
        s.value = init;
        ++size_;
        return s.value;
      }
      if (s.key == key) return s.value;
      i = (i + 1) & (slots_.size() - 1);
    }
  }

  /// Pointer to the value for `key`, or nullptr if absent.
  V* find(std::uint64_t key) {
    if (slots_.empty()) return nullptr;
    std::size_t i = probe_start(key);
    for (;;) {
      Slot& s = slots_[i];
      if (!s.used) return nullptr;
      if (s.key == key) return &s.value;
      i = (i + 1) & (slots_.size() - 1);
    }
  }
  const V* find(std::uint64_t key) const {
    return const_cast<FlatU64Map*>(this)->find(key);
  }

  void clear() {
    for (Slot& s : slots_) s.used = false;
    size_ = 0;
  }

  /// Visit every (key, value) pair in unspecified order.
  template <typename F>
  void for_each(F&& f) const {
    for (const Slot& s : slots_) {
      if (s.used) f(s.key, s.value);
    }
  }

 private:
  struct Slot {
    std::uint64_t key = 0;
    V value{};
    bool used = false;
  };

  static std::uint64_t mix(std::uint64_t k) {
    // splitmix64 finalizer: full avalanche so packed (src, tag) keys that
    // differ only in low bits spread across the table.
    k ^= k >> 30;
    k *= 0xbf58476d1ce4e5b9ULL;
    k ^= k >> 27;
    k *= 0x94d049bb133111ebULL;
    k ^= k >> 31;
    return k;
  }

  std::size_t probe_start(std::uint64_t key) const {
    return static_cast<std::size_t>(mix(key)) & (slots_.size() - 1);
  }

  void grow() {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(old.empty() ? 16 : old.size() * 2, Slot{});
    for (Slot& s : old) {
      if (!s.used) continue;
      std::size_t i = probe_start(s.key);
      while (slots_[i].used) i = (i + 1) & (slots_.size() - 1);
      slots_[i].used = true;
      slots_[i].key = s.key;
      slots_[i].value = std::move(s.value);
    }
  }

  std::vector<Slot> slots_;
  std::size_t size_ = 0;
};

}  // namespace alge
