// Sweep runner: execute a vector of ExperimentSpecs through the result
// cache and the thread pool, returning results in input order.
//
// Every job is a self-contained deterministic simulation (one Machine, its
// fibers, and its Rng live entirely on the executing thread — see the
// threading note in sim/machine.hpp), so a sweep's results are bit-identical
// regardless of thread count; threads only change wall-clock time. The bench
// binaries build their parameter grids as specs, call run(), and print the
// same tables they always printed — with --threads N for concurrency and
// --cache-dir PATH to persist results so re-runs only compute changed
// points.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "engine/cache.hpp"
#include "engine/job.hpp"
#include "support/cli.hpp"

namespace alge::engine {

/// Execute one spec on the calling thread (cache not consulted): dispatches
/// to the algs/harness entry point (or runs the collective microbench) named
/// by spec.alg.
ExperimentResult execute(const ExperimentSpec& spec);

struct SweepOptions {
  int threads = 1;        ///< <= 1: run inline on the calling thread
  std::string cache_dir;  ///< "" = in-memory cache only
  /// Called after each job completes with (done, total). May be invoked
  /// from pool workers (serialized); keep it cheap and write to stderr so
  /// table output on stdout stays clean.
  std::function<void(int done, int total)> progress;
};

struct SweepStats {
  int jobs = 0;
  int cache_hits = 0;
  int executed = 0;
  double wall_seconds = 0.0;
  double jobs_per_sec = 0.0;
};

class SweepRunner {
 public:
  explicit SweepRunner(SweepOptions opts = {});

  /// Run all specs; result[i] corresponds to specs[i]. Rethrows the first
  /// job exception after the remaining jobs finish.
  std::vector<ExperimentResult> run(const std::vector<ExperimentSpec>& specs);

  /// Stats of the most recent run().
  const SweepStats& stats() const { return stats_; }
  ResultCache& cache() { return *cache_; }
  const SweepOptions& options() const { return opts_; }

 private:
  ExperimentResult run_one(const ExperimentSpec& spec, bool* was_hit);

  SweepOptions opts_;
  std::unique_ptr<ResultCache> cache_;
  SweepStats stats_;
};

/// Declare the standard engine flags (--threads, --cache-dir, --progress,
/// --bench-json) on a bench binary's CLI.
void add_engine_flags(CliArgs& cli);

/// Build SweepOptions from flags declared by add_engine_flags(). When
/// --progress is set, wires a stderr progress printer.
SweepOptions sweep_options_from_cli(const CliArgs& cli);

/// Append {bench, jobs, cache_hits, executed, threads, wall_seconds,
/// jobs_per_sec} to the JSON array in `path` (the --bench-json flag;
/// empty path disables). Creates the file on first use; a malformed
/// existing file is replaced rather than fatal. Gives later PRs a perf
/// trajectory to compare against.
void append_bench_record(const std::string& bench_name,
                         const SweepRunner& runner, const std::string& path);

}  // namespace alge::engine
