// Sweep runner: execute a vector of ExperimentSpecs through the result
// cache and the thread pool, returning results in input order.
//
// Every job is a self-contained deterministic simulation (one Machine, its
// fibers, and its Rng live entirely on the executing thread — see the
// threading note in sim/machine.hpp), so a sweep's results are bit-identical
// regardless of thread count; threads only change wall-clock time. The bench
// binaries build their parameter grids as specs, call run(), and print the
// same tables they always printed — with --threads N for concurrency and
// --cache-dir PATH to persist results so re-runs only compute changed
// points.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "engine/cache.hpp"
#include "engine/job.hpp"
#include "sim/trace.hpp"
#include "support/cli.hpp"

namespace alge::engine {

/// Execute one spec on the calling thread (cache not consulted): dispatches
/// to the algs/harness entry point (or runs the collective microbench) named
/// by spec.alg.
ExperimentResult execute(const ExperimentSpec& spec);

/// Like execute(), but with tracing enabled on the simulated machine: the
/// run's event stream is copied into *trace before the machine is torn
/// down (via the thread's harness RunObserver, so cache keys and the
/// execute() path itself are untouched). Use result.p for the rank count
/// when exporting, e.g. obs::write_chrome_trace.
ExperimentResult execute_traced(const ExperimentSpec& spec, sim::Trace* trace);

struct SweepOptions {
  int threads = 1;        ///< <= 1: run inline on the calling thread
  std::string cache_dir;  ///< "" = in-memory cache only
  /// Called after each job completes with (done, total). May be invoked
  /// from pool workers (serialized); keep it cheap and write to stderr so
  /// table output on stdout stays clean.
  std::function<void(int done, int total)> progress;
};

/// Where a sweep's wall-clock time went (seconds, summed over jobs). Emitted
/// as the "profile" block of the --bench-json record so perf regressions can
/// be localized (queueing vs simulation vs cache serialization) rather than
/// just detected.
struct SweepProfile {
  double cache_lookup_seconds = 0.0;  ///< total time in ResultCache::lookup
  double serialize_seconds = 0.0;     ///< total time in ResultCache::store
  double run_seconds = 0.0;           ///< total time in execute()
  double run_max_seconds = 0.0;       ///< slowest single job's execute()
  double queue_wait_seconds = 0.0;    ///< pool: total submit-to-start latency
  double queue_wait_max_seconds = 0.0;
  double pool_busy_seconds = 0.0;     ///< pool: total time workers ran jobs
  /// pool_busy / (threads × wall): 1.0 = workers never idle. Serial runs
  /// report job time over wall time (so ~1.0 unless spec-building dominates).
  double pool_occupancy = 0.0;
};

struct SweepStats {
  int jobs = 0;
  int cache_hits = 0;
  int executed = 0;
  double wall_seconds = 0.0;
  double jobs_per_sec = 0.0;
  SweepProfile profile;
};

class SweepRunner {
 public:
  explicit SweepRunner(SweepOptions opts = {});

  /// Run all specs; result[i] corresponds to specs[i]. Rethrows the first
  /// job exception after the remaining jobs finish.
  std::vector<ExperimentResult> run(const std::vector<ExperimentSpec>& specs);

  /// Stats of the most recent run().
  const SweepStats& stats() const { return stats_; }
  ResultCache& cache() { return *cache_; }
  const SweepOptions& options() const { return opts_; }

 private:
  /// Per-job wall-clock breakdown, folded into SweepStats::profile.
  struct JobTiming {
    bool hit = false;
    double lookup = 0.0;  ///< cache lookup seconds
    double run = 0.0;     ///< execute() seconds (0 on a hit)
    double store = 0.0;   ///< cache store seconds (0 on a hit)
  };

  ExperimentResult run_one(const ExperimentSpec& spec, JobTiming* timing);

  SweepOptions opts_;
  std::unique_ptr<ResultCache> cache_;
  SweepStats stats_;
};

/// Declare the standard engine flags (--threads, --cache-dir, --progress,
/// --bench-json) on a bench binary's CLI.
void add_engine_flags(CliArgs& cli);

/// Build SweepOptions from flags declared by add_engine_flags(). When
/// --progress is set, wires a stderr progress printer.
SweepOptions sweep_options_from_cli(const CliArgs& cli);

/// Append {bench, jobs, cache_hits, executed, threads, wall_seconds,
/// jobs_per_sec} to the JSON array in `path` (the --bench-json flag;
/// empty path disables). Creates the file on first use; a malformed
/// existing file is replaced rather than fatal. Gives later PRs a perf
/// trajectory to compare against.
void append_bench_record(const std::string& bench_name,
                         const SweepRunner& runner, const std::string& path);

}  // namespace alge::engine
