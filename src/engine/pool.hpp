// Fixed-size thread pool with a bounded work queue.
//
// The experiment engine runs one simulated Machine per job; jobs are
// CPU-bound and independent, so the pool is deliberately simple: N OS
// threads pull std::function jobs from one locked deque. submit() blocks
// when the queue is full (backpressure instead of unbounded memory growth),
// and every job's exceptions are captured into its std::future rather than
// taking the process down.
//
// Shutdown is explicit and graceful:
//   drain()    stop accepting, run everything already queued, join.
//   discard()  stop accepting, drop queued jobs (their futures report
//              broken_promise), finish only the in-flight jobs, join.
// The destructor drains.
#pragma once

#include <chrono>
#include <cstddef>
#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace alge::engine {

/// Aggregate timing of everything the pool has run so far (wall-clock
/// seconds). queue_wait is submit-to-dequeue latency per job; busy is the
/// time workers spent inside job callables. busy_total / (threads × span)
/// is the pool's occupancy over any span of interest.
struct PoolProfile {
  double queue_wait_total = 0.0;
  double queue_wait_max = 0.0;
  double busy_total = 0.0;
  double busy_max = 0.0;  ///< longest single job
};

class ThreadPool {
 public:
  /// Spawns `threads` >= 1 workers; submit() blocks once `queue_capacity`
  /// jobs are waiting (capacity must be >= 1).
  explicit ThreadPool(int threads, std::size_t queue_capacity = 1024);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a callable; returns a future for its result. Blocks while the
  /// queue is at capacity. Throws invalid_argument_error after shutdown.
  template <class F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> fut = task->get_future();
    enqueue([task]() { (*task)(); });
    return fut;
  }

  /// Graceful shutdown: run all queued jobs, then join. Idempotent.
  void drain();

  /// Drop queued jobs (futures get std::future_error/broken_promise),
  /// finish in-flight jobs, join. Returns the number of jobs dropped.
  std::size_t discard();

  int thread_count() const { return static_cast<int>(workers_.size()); }

  /// Jobs completed so far (including ones whose callable threw).
  std::size_t jobs_run() const;

  /// Queue-wait and busy-time aggregates over all jobs run so far.
  PoolProfile profile() const;

 private:
  struct Item {
    std::function<void()> fn;
    std::chrono::steady_clock::time_point enqueued;
  };

  void enqueue(std::function<void()> job);
  void worker_loop();
  void join_all();

  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<Item> queue_;
  std::vector<std::thread> workers_;
  std::size_t capacity_;
  std::size_t jobs_run_ = 0;
  PoolProfile profile_;
  bool accepting_ = true;
  bool exit_when_empty_ = false;
  bool joined_ = false;
};

}  // namespace alge::engine
