#include "engine/job.hpp"

#include <cinttypes>
#include <cstdlib>

#include "support/common.hpp"

namespace alge::engine {

namespace {

constexpr struct {
  Alg alg;
  std::string_view name;
} kAlgNames[] = {
    {Alg::kMm25d, "mm25d"},
    {Alg::kSumma, "summa"},
    {Alg::kCaps, "caps"},
    {Alg::kNBody, "nbody"},
    {Alg::kLu, "lu"},
    {Alg::kFft, "fft"},
    {Alg::kTsqr, "tsqr"},
    {Alg::kCollBcast, "coll_bcast"},
    {Alg::kCollReduce, "coll_reduce"},
    {Alg::kCollAllgather, "coll_allgather"},
    {Alg::kCollA2aDirect, "coll_a2a_direct"},
    {Alg::kCollA2aBruck, "coll_a2a_bruck"},
};

int get_int(const json::Value& v, std::string_view key) {
  return static_cast<int>(v.at(key).as_double());
}

}  // namespace

json::Value machine_params_to_json(const core::MachineParams& mp) {
  json::Value o = json::Value::object();
  o.set("gamma_t", mp.gamma_t)
      .set("beta_t", mp.beta_t)
      .set("alpha_t", mp.alpha_t)
      .set("gamma_e", mp.gamma_e)
      .set("beta_e", mp.beta_e)
      .set("alpha_e", mp.alpha_e)
      .set("delta_e", mp.delta_e)
      .set("eps_e", mp.eps_e)
      .set("mem_words", mp.mem_words)
      .set("max_msg_words", mp.max_msg_words);
  return o;
}

core::MachineParams machine_params_from_json(const json::Value& v) {
  core::MachineParams mp;
  mp.gamma_t = v.at("gamma_t").as_double();
  mp.beta_t = v.at("beta_t").as_double();
  mp.alpha_t = v.at("alpha_t").as_double();
  mp.gamma_e = v.at("gamma_e").as_double();
  mp.beta_e = v.at("beta_e").as_double();
  mp.alpha_e = v.at("alpha_e").as_double();
  mp.delta_e = v.at("delta_e").as_double();
  mp.eps_e = v.at("eps_e").as_double();
  mp.mem_words = v.at("mem_words").as_double();
  mp.max_msg_words = v.at("max_msg_words").as_double();
  return mp;
}

std::string_view to_string(Alg alg) {
  for (const auto& e : kAlgNames) {
    if (e.alg == alg) return e.name;
  }
  ALGE_CHECK(false, "unnamed Alg value %d", static_cast<int>(alg));
  return {};
}

Alg alg_from_string(std::string_view name) {
  for (const auto& e : kAlgNames) {
    if (e.name == name) return e.alg;
  }
  throw invalid_argument_error(
      strfmt("unknown algorithm \"%.*s\"", static_cast<int>(name.size()),
             name.data()));
}

json::Value ExperimentSpec::to_json() const {
  json::Value o = json::Value::object();
  o.set("alg", std::string(to_string(alg)))
      .set("n", n)
      .set("q", q)
      .set("c", c)
      .set("p", p)
      .set("k", k)
      .set("nb", nb)
      .set("r_dim", r_dim)
      .set("c_dim", c_dim)
      .set("payload_words", payload_words)
      .set("ring_replication", ring_replication)
      .set("caps_schedule", caps_schedule)
      .set("caps_cutoff", caps_cutoff)
      .set("fft_bruck", fft_bruck)
      .set("verify", verify)
      // Decimal string: a double could not hold every 64-bit seed exactly.
      .set("seed", strfmt("%" PRIu64, seed))
      .set("params", machine_params_to_json(params));
  // Chaos/data-mode axes only when active: the canonical encoding of every
  // pre-existing spec — and therefore its cache key — is unchanged.
  if (chaos_seed != 0) o.set("chaos_seed", strfmt("%" PRIu64, chaos_seed));
  if (!fault_plan.empty()) o.set("fault_plan", fault_plan);
  if (data_mode == sim::DataMode::kGhost) o.set("data_mode", "ghost");
  if (exec_mode == sim::ExecMode::kFolded) o.set("exec_mode", "folded");
  if (!transport.empty()) o.set("transport", transport);
  return o;
}

ExperimentSpec ExperimentSpec::from_json(const json::Value& v) {
  ExperimentSpec s;
  s.alg = alg_from_string(v.at("alg").as_string());
  s.n = get_int(v, "n");
  s.q = get_int(v, "q");
  s.c = get_int(v, "c");
  s.p = get_int(v, "p");
  s.k = get_int(v, "k");
  s.nb = get_int(v, "nb");
  s.r_dim = get_int(v, "r_dim");
  s.c_dim = get_int(v, "c_dim");
  s.payload_words = get_int(v, "payload_words");
  s.ring_replication = v.at("ring_replication").as_bool();
  s.caps_schedule = v.at("caps_schedule").as_string();
  s.caps_cutoff = get_int(v, "caps_cutoff");
  s.fft_bruck = v.at("fft_bruck").as_bool();
  s.verify = v.at("verify").as_bool();
  s.seed = std::strtoull(v.at("seed").as_string().c_str(), nullptr, 10);
  s.params = machine_params_from_json(v.at("params"));
  if (const json::Value* cs = v.find("chaos_seed"); cs != nullptr) {
    s.chaos_seed = std::strtoull(cs->as_string().c_str(), nullptr, 10);
  }
  if (const json::Value* fp = v.find("fault_plan"); fp != nullptr) {
    s.fault_plan = fp->as_string();
  }
  if (const json::Value* dm = v.find("data_mode"); dm != nullptr) {
    const std::string& mode = dm->as_string();
    if (mode == "ghost") {
      s.data_mode = sim::DataMode::kGhost;
    } else {
      ALGE_REQUIRE(mode == "full", "unknown data_mode \"%s\"", mode.c_str());
    }
  }
  if (const json::Value* em = v.find("exec_mode"); em != nullptr) {
    const std::string& mode = em->as_string();
    if (mode == "folded") {
      s.exec_mode = sim::ExecMode::kFolded;
    } else {
      ALGE_REQUIRE(mode == "fibers", "unknown exec_mode \"%s\"",
                   mode.c_str());
    }
  }
  if (const json::Value* tr = v.find("transport"); tr != nullptr) {
    s.transport = tr->as_string();
  }
  return s;
}

json::Value ExperimentResult::to_json() const {
  json::Value t = json::Value::object();
  t.set("flops_total", totals.flops_total)
      .set("words_total", totals.words_total)
      .set("msgs_total", totals.msgs_total)
      .set("words_hops_total", totals.words_hops_total)
      .set("msgs_hops_total", totals.msgs_hops_total)
      .set("flops_max", totals.flops_max)
      .set("words_sent_max", totals.words_sent_max)
      .set("msgs_sent_max", totals.msgs_sent_max)
      .set("mem_highwater_max", totals.mem_highwater_max)
      .set("mem_highwater_total", totals.mem_highwater_total);
  json::Value e = json::Value::object();
  e.set("flops", energy.flops)
      .set("words", energy.words)
      .set("messages", energy.messages)
      .set("memory", energy.memory)
      .set("leakage", energy.leakage);
  json::Value o = json::Value::object();
  o.set("p", p)
      .set("makespan", makespan)
      .set("totals", std::move(t))
      .set("energy", std::move(e))
      .set("max_abs_error", max_abs_error)
      .set("verified", verified);
  if (fold_slots != 0) o.set("fold_slots", fold_slots);
  return o;
}

ExperimentResult ExperimentResult::from_json(const json::Value& v) {
  ExperimentResult r;
  r.p = get_int(v, "p");
  r.makespan = v.at("makespan").as_double();
  const json::Value& t = v.at("totals");
  r.totals.flops_total = t.at("flops_total").as_double();
  r.totals.words_total = t.at("words_total").as_double();
  r.totals.msgs_total = t.at("msgs_total").as_double();
  r.totals.words_hops_total = t.at("words_hops_total").as_double();
  r.totals.msgs_hops_total = t.at("msgs_hops_total").as_double();
  r.totals.flops_max = t.at("flops_max").as_double();
  r.totals.words_sent_max = t.at("words_sent_max").as_double();
  r.totals.msgs_sent_max = t.at("msgs_sent_max").as_double();
  r.totals.mem_highwater_max =
      static_cast<std::size_t>(t.at("mem_highwater_max").as_double());
  r.totals.mem_highwater_total =
      static_cast<std::size_t>(t.at("mem_highwater_total").as_double());
  const json::Value& e = v.at("energy");
  r.energy.flops = e.at("flops").as_double();
  r.energy.words = e.at("words").as_double();
  r.energy.messages = e.at("messages").as_double();
  r.energy.memory = e.at("memory").as_double();
  r.energy.leakage = e.at("leakage").as_double();
  r.max_abs_error = v.at("max_abs_error").as_double();
  r.verified = v.at("verified").as_bool();
  if (const json::Value* fs = v.find("fold_slots"); fs != nullptr) {
    r.fold_slots = static_cast<int>(fs->as_double());
  }
  return r;
}

}  // namespace alge::engine
