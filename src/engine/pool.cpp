#include "engine/pool.hpp"

#include <algorithm>

#include "support/common.hpp"

namespace alge::engine {

ThreadPool::ThreadPool(int threads, std::size_t queue_capacity)
    : capacity_(queue_capacity) {
  ALGE_REQUIRE(threads >= 1, "thread pool needs at least one thread, got %d",
               threads);
  ALGE_REQUIRE(queue_capacity >= 1, "queue capacity must be >= 1");
  workers_.reserve(static_cast<std::size_t>(threads));
  for (int i = 0; i < threads; ++i) {
    workers_.emplace_back([this]() { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() { drain(); }

void ThreadPool::enqueue(std::function<void()> job) {
  std::unique_lock lock(mu_);
  not_full_.wait(lock,
                 [this]() { return !accepting_ || queue_.size() < capacity_; });
  ALGE_REQUIRE(accepting_, "submit() on a shut-down thread pool");
  queue_.push_back({std::move(job), std::chrono::steady_clock::now()});
  not_empty_.notify_one();
}

void ThreadPool::worker_loop() {
  using clock = std::chrono::steady_clock;
  while (true) {
    std::function<void()> job;
    double waited = 0.0;
    {
      std::unique_lock lock(mu_);
      not_empty_.wait(lock,
                      [this]() { return !queue_.empty() || exit_when_empty_; });
      if (queue_.empty()) return;  // exit_when_empty_ and nothing left
      Item item = std::move(queue_.front());
      queue_.pop_front();
      job = std::move(item.fn);
      waited = std::chrono::duration<double>(clock::now() - item.enqueued)
                   .count();
      not_full_.notify_one();
    }
    const auto t0 = clock::now();
    job();  // a packaged_task: exceptions land in the job's future
    const double busy = std::chrono::duration<double>(clock::now() - t0)
                            .count();
    {
      std::lock_guard lock(mu_);
      ++jobs_run_;
      profile_.queue_wait_total += waited;
      profile_.queue_wait_max = std::max(profile_.queue_wait_max, waited);
      profile_.busy_total += busy;
      profile_.busy_max = std::max(profile_.busy_max, busy);
    }
  }
}

void ThreadPool::drain() {
  {
    std::lock_guard lock(mu_);
    accepting_ = false;
    exit_when_empty_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
  }
  join_all();
}

std::size_t ThreadPool::discard() {
  std::size_t dropped = 0;
  {
    std::lock_guard lock(mu_);
    accepting_ = false;
    exit_when_empty_ = true;
    dropped = queue_.size();
    queue_.clear();  // destroying a packaged_task breaks its promise
    not_empty_.notify_all();
    not_full_.notify_all();
  }
  join_all();
  return dropped;
}

void ThreadPool::join_all() {
  {
    std::lock_guard lock(mu_);
    if (joined_) return;
    joined_ = true;
  }
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
}

std::size_t ThreadPool::jobs_run() const {
  std::lock_guard lock(mu_);
  return jobs_run_;
}

PoolProfile ThreadPool::profile() const {
  std::lock_guard lock(mu_);
  return profile_;
}

}  // namespace alge::engine
