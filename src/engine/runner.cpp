#include "engine/runner.hpp"

#include <chrono>
#include <cstdio>
#include <fstream>
#include <future>
#include <sstream>
#include <utility>

#include "algs/harness.hpp"
#include "engine/pool.hpp"
#include "sim/comm.hpp"
#include "sim/machine.hpp"
#include "support/common.hpp"
#include "support/json.hpp"

namespace alge::engine {

namespace {

ExperimentResult from_run(const algs::harness::RunResult& r) {
  ExperimentResult out;
  out.p = r.p;
  out.makespan = r.makespan;
  out.totals = r.totals;
  out.energy = r.energy.breakdown;
  out.max_abs_error = r.max_abs_error;
  out.verified = r.verified;
  return out;
}

/// The collective microbenches of ablation_collectives as engine jobs: one
/// Machine of spec.p ranks runs the collective once on a payload of
/// spec.payload_words.
ExperimentResult run_collective(const ExperimentSpec& spec) {
  ALGE_REQUIRE(spec.p >= 1, "collective spec needs p >= 1");
  ALGE_REQUIRE(spec.payload_words >= 1,
               "collective spec needs payload_words >= 1");
  sim::MachineConfig cfg;
  cfg.p = spec.p;
  cfg.params = spec.params;
  sim::Machine m(cfg);
  const std::size_t k = static_cast<std::size_t>(spec.payload_words);
  const int p = spec.p;
  m.run([&](sim::Comm& c) {
    switch (spec.alg) {
      case Alg::kCollBcast: {
        std::vector<double> d(k, 1.0);
        c.bcast(d, 0, sim::Group::world(p));
        break;
      }
      case Alg::kCollReduce: {
        std::vector<double> d(k, 1.0);
        std::vector<double> out(k);
        c.reduce_sum(d, out, 0, sim::Group::world(p));
        break;
      }
      case Alg::kCollAllgather: {
        std::vector<double> d(k, 1.0);
        std::vector<double> out(k * static_cast<std::size_t>(p));
        c.allgather(d, out, sim::Group::world(p));
        break;
      }
      case Alg::kCollA2aDirect: {
        std::vector<double> d(k * static_cast<std::size_t>(p), 1.0);
        std::vector<double> out(d.size());
        c.alltoall(d, out, sim::Group::world(p));
        break;
      }
      case Alg::kCollA2aBruck: {
        std::vector<double> d(k * static_cast<std::size_t>(p), 1.0);
        std::vector<double> out(d.size());
        c.alltoall_bruck(d, out, sim::Group::world(p));
        break;
      }
      default:
        ALGE_CHECK(false, "not a collective alg");
    }
  });
  ExperimentResult out;
  out.p = m.p();
  out.makespan = m.makespan();
  out.totals = m.totals();
  out.energy = m.energy().breakdown;
  return out;
}

}  // namespace

ExperimentResult execute(const ExperimentSpec& spec) {
  using namespace algs;
  switch (spec.alg) {
    case Alg::kMm25d: {
      Mm25dOptions opts;
      opts.ring_replication = spec.ring_replication;
      return from_run(harness::run_mm25d(spec.n, spec.q, spec.c, spec.params,
                                         spec.verify, spec.seed, opts));
    }
    case Alg::kSumma:
      return from_run(harness::run_summa(spec.n, spec.q, spec.params,
                                         spec.verify, spec.seed));
    case Alg::kCaps: {
      CapsOptions opts;
      opts.schedule = spec.caps_schedule;
      opts.local_cutoff = spec.caps_cutoff;
      return from_run(harness::run_caps(spec.n, spec.k, spec.params, opts,
                                        spec.verify, spec.seed));
    }
    case Alg::kNBody:
      return from_run(harness::run_nbody(spec.n, spec.p, spec.c, spec.params,
                                         spec.verify, spec.seed));
    case Alg::kLu:
      return from_run(harness::run_lu(spec.n, spec.nb, spec.q, spec.c,
                                      spec.params, spec.verify, spec.seed));
    case Alg::kFft:
      return from_run(harness::run_fft(
          spec.r_dim, spec.c_dim, spec.p,
          spec.fft_bruck ? AllToAllKind::kBruck : AllToAllKind::kDirect,
          spec.params, spec.verify, spec.seed));
    case Alg::kCollBcast:
    case Alg::kCollReduce:
    case Alg::kCollAllgather:
    case Alg::kCollA2aDirect:
    case Alg::kCollA2aBruck:
      return run_collective(spec);
  }
  ALGE_CHECK(false, "unhandled Alg value %d", static_cast<int>(spec.alg));
  return {};
}

SweepRunner::SweepRunner(SweepOptions opts)
    : opts_(std::move(opts)),
      cache_(std::make_unique<ResultCache>(opts_.cache_dir)) {}

ExperimentResult SweepRunner::run_one(const ExperimentSpec& spec,
                                      bool* was_hit) {
  if (auto hit = cache_->lookup(spec)) {
    *was_hit = true;
    return *hit;
  }
  *was_hit = false;
  ExperimentResult r = execute(spec);
  cache_->store(spec, r);
  return r;
}

std::vector<ExperimentResult> SweepRunner::run(
    const std::vector<ExperimentSpec>& specs) {
  const auto t0 = std::chrono::steady_clock::now();
  const int total = static_cast<int>(specs.size());
  stats_ = SweepStats{};
  stats_.jobs = total;
  std::vector<ExperimentResult> out(specs.size());

  std::mutex mu;  // guards done/hits and serializes the progress callback
  int done = 0;
  int hits = 0;
  auto finish_job = [&](bool hit) {
    std::lock_guard lock(mu);
    ++done;
    if (hit) ++hits;
    if (opts_.progress) opts_.progress(done, total);
  };

  if (opts_.threads <= 1) {
    for (std::size_t i = 0; i < specs.size(); ++i) {
      bool hit = false;
      out[i] = run_one(specs[i], &hit);
      finish_job(hit);
    }
  } else {
    ThreadPool pool(opts_.threads);
    std::vector<std::future<void>> futures;
    futures.reserve(specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
      futures.push_back(pool.submit([this, &specs, &out, &finish_job, i]() {
        bool hit = false;
        out[i] = run_one(specs[i], &hit);
        finish_job(hit);
      }));
    }
    pool.drain();
    // All jobs finished; surface the first failure (if any) after the
    // sweep so no future is abandoned mid-flight.
    std::exception_ptr first;
    for (auto& f : futures) {
      try {
        f.get();
      } catch (...) {
        if (!first) first = std::current_exception();
      }
    }
    if (first) std::rethrow_exception(first);
  }

  stats_.cache_hits = hits;
  stats_.executed = total - hits;
  stats_.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  stats_.jobs_per_sec =
      stats_.wall_seconds > 0.0 ? total / stats_.wall_seconds : 0.0;
  return out;
}

void add_engine_flags(CliArgs& cli) {
  cli.add_flag("threads", "1",
               "worker threads for the experiment sweep (1 = serial)");
  cli.add_flag("cache-dir", "",
               "directory for the persistent result cache (empty = off)");
  cli.add_flag("progress", "false", "print sweep progress to stderr");
  cli.add_flag("bench-json", "BENCH_engine.json",
               "append a machine-readable perf record here (empty = off)");
}

SweepOptions sweep_options_from_cli(const CliArgs& cli) {
  SweepOptions opts;
  opts.threads = static_cast<int>(cli.get_int("threads"));
  ALGE_REQUIRE(opts.threads >= 1, "--threads must be >= 1");
  opts.cache_dir = cli.get("cache-dir");
  if (cli.get_bool("progress")) {
    opts.progress = [](int done, int total) {
      std::fprintf(stderr, "[engine] %d/%d jobs done\n", done, total);
    };
  }
  return opts;
}

void append_bench_record(const std::string& bench_name,
                         const SweepRunner& runner, const std::string& path) {
  if (path.empty()) return;
  json::Value records = json::Value::array();
  {
    std::ifstream in(path);
    if (in) {
      std::ostringstream buf;
      buf << in.rdbuf();
      try {
        json::Value existing = json::parse(buf.str());
        if (existing.is_array()) records = std::move(existing);
      } catch (const json::json_error&) {
        // Malformed history: start a fresh array rather than failing the
        // bench run.
      }
    }
  }
  const SweepStats& s = runner.stats();
  json::Value rec = json::Value::object();
  rec.set("bench", bench_name)
      .set("jobs", s.jobs)
      .set("cache_hits", s.cache_hits)
      .set("executed", s.executed)
      .set("threads", runner.options().threads)
      .set("wall_seconds", s.wall_seconds)
      .set("jobs_per_sec", s.jobs_per_sec)
      .set("unix_time",
           static_cast<double>(std::chrono::duration_cast<std::chrono::seconds>(
                                   std::chrono::system_clock::now()
                                       .time_since_epoch())
                                   .count()));
  records.push_back(std::move(rec));
  std::ofstream out(path, std::ios::trunc);
  if (out) out << records.dump() << '\n';
}

}  // namespace alge::engine
