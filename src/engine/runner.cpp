#include "engine/runner.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <future>
#include <sstream>
#include <utility>

#include "algs/harness.hpp"
#include "chaos/fault_plan.hpp"
#include "chaos/schedule.hpp"
#include "engine/backend.hpp"
#include "engine/pool.hpp"
#include "sim/comm.hpp"
#include "sim/machine.hpp"
#include "support/common.hpp"
#include "support/json.hpp"

namespace alge::engine {

namespace {

ExperimentResult from_run(const algs::harness::RunResult& r) {
  ExperimentResult out;
  out.p = r.p;
  out.makespan = r.makespan;
  out.totals = r.totals;
  out.energy = r.energy.breakdown;
  out.max_abs_error = r.max_abs_error;
  out.verified = r.verified;
  out.fold_slots = r.fold_slots;
  return out;
}

/// The collective microbenches of ablation_collectives as engine jobs: one
/// Machine of spec.p ranks runs the collective once on a payload of
/// spec.payload_words.
ExperimentResult run_collective(const ExperimentSpec& spec) {
  ALGE_REQUIRE(spec.p >= 1, "collective spec needs p >= 1");
  ALGE_REQUIRE(spec.payload_words >= 1,
               "collective spec needs payload_words >= 1");
  const algs::harness::RunObserver& obs = algs::harness::run_observer();
  // Shared config path with the harness run_* entry points, so the
  // observer's trace/ledger flags and configure hook (chaos fault
  // injection, wake policies) apply to collectives too.
  sim::MachineConfig cfg = algs::harness::observed_config(spec.params);
  cfg.p = spec.p;
  const bool ghost = cfg.data_mode == sim::DataMode::kGhost;
  sim::Machine m(cfg);
  const std::size_t k = static_cast<std::size_t>(spec.payload_words);
  const int p = spec.p;
  m.run([&](sim::Comm& c) {
    const sim::Group world = sim::Group::world(p);
    const std::size_t kp = k * static_cast<std::size_t>(p);
    // Ghost runs pass storage-free views of the same sizes; the cost
    // schedule is identical either way.
    std::vector<double> d, out;
    switch (spec.alg) {
      case Alg::kCollBcast:
        if (!ghost) d.assign(k, 1.0);
        c.bcast(ghost ? sim::Payload::ghost(k) : sim::Payload(d), 0, world);
        break;
      case Alg::kCollReduce:
        if (!ghost) {
          d.assign(k, 1.0);
          out.resize(k);
        }
        c.reduce_sum(
            ghost ? sim::ConstPayload::ghost(k) : sim::ConstPayload(d),
            ghost ? sim::Payload::ghost(k) : sim::Payload(out), 0, world);
        break;
      case Alg::kCollAllgather:
        if (!ghost) {
          d.assign(k, 1.0);
          out.resize(kp);
        }
        c.allgather(
            ghost ? sim::ConstPayload::ghost(k) : sim::ConstPayload(d),
            ghost ? sim::Payload::ghost(kp) : sim::Payload(out), world);
        break;
      case Alg::kCollA2aDirect:
        if (!ghost) {
          d.assign(kp, 1.0);
          out.resize(kp);
        }
        c.alltoall(
            ghost ? sim::ConstPayload::ghost(kp) : sim::ConstPayload(d),
            ghost ? sim::Payload::ghost(kp) : sim::Payload(out), world);
        break;
      case Alg::kCollA2aBruck:
        if (!ghost) {
          d.assign(kp, 1.0);
          out.resize(kp);
        }
        c.alltoall_bruck(
            ghost ? sim::ConstPayload::ghost(kp) : sim::ConstPayload(d),
            ghost ? sim::Payload::ghost(kp) : sim::Payload(out), world);
        break;
      default:
        ALGE_CHECK(false, "not a collective alg");
    }
  });
  ExperimentResult out;
  out.p = m.p();
  out.makespan = m.makespan();
  out.totals = m.totals();
  out.energy = m.energy().breakdown;
  if (obs.after_run) obs.after_run(m);
  return out;
}

}  // namespace

ExperimentResult execute(const ExperimentSpec& spec) {
  using namespace algs;
  if (!spec.transport.empty()) {
    // Transport axis, resolved before every other axis: a real backend
    // executes the whole spec itself (and rejects incompatible axes), so
    // nothing below should see the field. "sim" is the explicit name of
    // the default path — strip it and run normally (distinct cache key,
    // identical result).
    if (spec.transport == "sim") {
      ExperimentSpec inner = spec;
      inner.transport.clear();
      return execute(inner);
    }
    const BackendExecutor* exec = find_backend_executor(spec.transport);
    ALGE_REQUIRE(exec != nullptr,
                 "no executor registered for transport \"%s\" — link "
                 "alge_transport and call "
                 "transport::register_engine_backends() first",
                 spec.transport.c_str());
    return (*exec)(spec);
  }
  if (spec.exec_mode == sim::ExecMode::kFolded) {
    // Execution-mode axis, resolved before the data-mode axis below so the
    // two configure hooks stack. Folded replay carries costs, not data, so
    // a full-data folded run has nothing to produce — reject it up front
    // rather than deep inside the Machine constructor.
    ALGE_REQUIRE(spec.data_mode == sim::DataMode::kGhost,
                 "exec_mode=folded requires data_mode=ghost (class replay "
                 "moves costs, not data)");
    harness::RunObserver obs = harness::run_observer();
    auto prev = obs.configure;
    obs.configure = [prev](sim::MachineConfig& cfg) {
      if (prev) prev(cfg);
      cfg.exec_mode = sim::ExecMode::kFolded;
    };
    harness::ScopedRunObserver scoped(std::move(obs));
    ExperimentSpec inner = spec;
    inner.exec_mode = sim::ExecMode::kFibers;
    return execute(inner);
  }
  if (spec.data_mode == sim::DataMode::kGhost) {
    // Data-mode axis: like the chaos axes below, chain a configure hook
    // onto the caller's observer, strip the field, and dispatch the plain
    // spec — the harness reads cfg.data_mode via observed_config().
    harness::RunObserver obs = harness::run_observer();
    auto prev = obs.configure;
    obs.configure = [prev](sim::MachineConfig& cfg) {
      if (prev) prev(cfg);
      cfg.data_mode = sim::DataMode::kGhost;
    };
    harness::ScopedRunObserver scoped(std::move(obs));
    ExperimentSpec inner = spec;
    inner.data_mode = sim::DataMode::kFull;
    return execute(inner);
  }
  if (spec.chaos_seed != 0 || !spec.fault_plan.empty()) {
    // Chaos axes: chain a configure hook onto the caller's observer (so
    // tracing/ledger/after_run still work), strip the chaos fields, and
    // dispatch the plain spec under the scoped observer.
    harness::RunObserver obs = harness::run_observer();
    const std::uint64_t seed = spec.chaos_seed;
    const chaos::FaultPlan plan =
        spec.fault_plan.empty() ? chaos::FaultPlan{}
                                : chaos::FaultPlan::bundled(spec.fault_plan);
    auto prev = obs.configure;
    obs.configure = [prev, seed, plan](sim::MachineConfig& cfg) {
      if (prev) prev(cfg);
      if (seed != 0) {
        cfg.wake_policy = std::make_shared<chaos::SchedulePermuter>(seed);
      }
      if (!plan.inert()) {
        cfg.faults =
            plan.make_injector(seed != 0 ? seed : 1, cfg.params.alpha_t);
      }
    };
    harness::ScopedRunObserver scoped(std::move(obs));
    ExperimentSpec inner = spec;
    inner.chaos_seed = 0;
    inner.fault_plan.clear();
    return execute(inner);
  }
  switch (spec.alg) {
    case Alg::kMm25d: {
      Mm25dOptions opts;
      opts.ring_replication = spec.ring_replication;
      return from_run(harness::run_mm25d(spec.n, spec.q, spec.c, spec.params,
                                         spec.verify, spec.seed, opts));
    }
    case Alg::kSumma:
      return from_run(harness::run_summa(spec.n, spec.q, spec.params,
                                         spec.verify, spec.seed));
    case Alg::kCaps: {
      CapsOptions opts;
      opts.schedule = spec.caps_schedule;
      opts.local_cutoff = spec.caps_cutoff;
      return from_run(harness::run_caps(spec.n, spec.k, spec.params, opts,
                                        spec.verify, spec.seed));
    }
    case Alg::kNBody:
      return from_run(harness::run_nbody(spec.n, spec.p, spec.c, spec.params,
                                         spec.verify, spec.seed));
    case Alg::kLu:
      return from_run(harness::run_lu(spec.n, spec.nb, spec.q, spec.c,
                                      spec.params, spec.verify, spec.seed));
    case Alg::kFft:
      return from_run(harness::run_fft(
          spec.r_dim, spec.c_dim, spec.p,
          spec.fft_bruck ? AllToAllKind::kBruck : AllToAllKind::kDirect,
          spec.params, spec.verify, spec.seed));
    case Alg::kTsqr:
      return from_run(harness::run_tsqr(spec.n, spec.nb, spec.p, spec.params,
                                        spec.verify, spec.seed));
    case Alg::kCollBcast:
    case Alg::kCollReduce:
    case Alg::kCollAllgather:
    case Alg::kCollA2aDirect:
    case Alg::kCollA2aBruck:
      return run_collective(spec);
  }
  ALGE_CHECK(false, "unhandled Alg value %d", static_cast<int>(spec.alg));
  return {};
}

ExperimentResult execute_traced(const ExperimentSpec& spec,
                                sim::Trace* trace) {
  ALGE_REQUIRE(trace != nullptr, "execute_traced needs a trace to fill");
  algs::harness::RunObserver obs;
  obs.enable_trace = true;
  obs.after_run = [trace](const sim::Machine& m) { *trace = m.trace(); };
  algs::harness::ScopedRunObserver scoped(std::move(obs));
  return execute(spec);
}

SweepRunner::SweepRunner(SweepOptions opts)
    : opts_(std::move(opts)),
      cache_(std::make_unique<ResultCache>(opts_.cache_dir)) {}

ExperimentResult SweepRunner::run_one(const ExperimentSpec& spec,
                                      JobTiming* timing) {
  using clock = std::chrono::steady_clock;
  auto seconds_since = [](clock::time_point t0) {
    return std::chrono::duration<double>(clock::now() - t0).count();
  };
  const auto t_lookup = clock::now();
  auto hit = cache_->lookup(spec);
  timing->lookup = seconds_since(t_lookup);
  if (hit) {
    timing->hit = true;
    return *hit;
  }
  timing->hit = false;
  const auto t_run = clock::now();
  ExperimentResult r = execute(spec);
  timing->run = seconds_since(t_run);
  const auto t_store = clock::now();
  cache_->store(spec, r);
  timing->store = seconds_since(t_store);
  return r;
}

std::vector<ExperimentResult> SweepRunner::run(
    const std::vector<ExperimentSpec>& specs) {
  const auto t0 = std::chrono::steady_clock::now();
  const int total = static_cast<int>(specs.size());
  stats_ = SweepStats{};
  stats_.jobs = total;
  std::vector<ExperimentResult> out(specs.size());

  std::mutex mu;  // guards done/hits/prof and serializes progress callbacks
  int done = 0;
  int hits = 0;
  SweepProfile prof;
  auto finish_job = [&](const JobTiming& t) {
    std::lock_guard lock(mu);
    ++done;
    if (t.hit) ++hits;
    prof.cache_lookup_seconds += t.lookup;
    prof.run_seconds += t.run;
    prof.run_max_seconds = std::max(prof.run_max_seconds, t.run);
    prof.serialize_seconds += t.store;
    if (opts_.progress) opts_.progress(done, total);
  };

  if (opts_.threads <= 1) {
    for (std::size_t i = 0; i < specs.size(); ++i) {
      JobTiming t;
      out[i] = run_one(specs[i], &t);
      finish_job(t);
    }
  } else {
    ThreadPool pool(opts_.threads);
    std::vector<std::future<void>> futures;
    futures.reserve(specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
      futures.push_back(pool.submit([this, &specs, &out, &finish_job, i]() {
        JobTiming t;
        out[i] = run_one(specs[i], &t);
        finish_job(t);
      }));
    }
    pool.drain();
    const PoolProfile pp = pool.profile();
    prof.queue_wait_seconds = pp.queue_wait_total;
    prof.queue_wait_max_seconds = pp.queue_wait_max;
    prof.pool_busy_seconds = pp.busy_total;
    // All jobs finished; surface the first failure (if any) after the
    // sweep so no future is abandoned mid-flight.
    std::exception_ptr first;
    for (auto& f : futures) {
      try {
        f.get();
      } catch (...) {
        if (!first) first = std::current_exception();
      }
    }
    if (first) std::rethrow_exception(first);
  }

  stats_.cache_hits = hits;
  stats_.executed = total - hits;
  stats_.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  stats_.jobs_per_sec =
      stats_.wall_seconds > 0.0 ? total / stats_.wall_seconds : 0.0;
  if (opts_.threads <= 1) {
    // Serial runs have no pool: jobs are "busy" for their whole duration.
    prof.pool_busy_seconds =
        prof.cache_lookup_seconds + prof.run_seconds + prof.serialize_seconds;
  }
  if (stats_.wall_seconds > 0.0) {
    prof.pool_occupancy = prof.pool_busy_seconds /
                          (std::max(opts_.threads, 1) * stats_.wall_seconds);
  }
  stats_.profile = prof;
  return out;
}

void add_engine_flags(CliArgs& cli) {
  cli.add_flag("threads", "1",
               "worker threads for the experiment sweep (1 = serial)");
  cli.add_flag("cache-dir", "",
               "directory for the persistent result cache (empty = off)");
  cli.add_flag("progress", "false", "print sweep progress to stderr");
  cli.add_flag("bench-json", "BENCH_engine.json",
               "append a machine-readable perf record here (empty = off)");
}

SweepOptions sweep_options_from_cli(const CliArgs& cli) {
  SweepOptions opts;
  opts.threads = static_cast<int>(cli.get_int("threads"));
  ALGE_REQUIRE(opts.threads >= 1, "--threads must be >= 1");
  opts.cache_dir = cli.get("cache-dir");
  if (cli.get_bool("progress")) {
    opts.progress = [](int done, int total) {
      std::fprintf(stderr, "[engine] %d/%d jobs done\n", done, total);
    };
  }
  return opts;
}

void append_bench_record(const std::string& bench_name,
                         const SweepRunner& runner, const std::string& path) {
  if (path.empty()) return;
  json::Value records = json::Value::array();
  {
    std::ifstream in(path);
    if (in) {
      std::ostringstream buf;
      buf << in.rdbuf();
      try {
        json::Value existing = json::parse(buf.str());
        if (existing.is_array()) records = std::move(existing);
      } catch (const json::json_error&) {
        // Malformed history: start a fresh array rather than failing the
        // bench run.
      }
    }
  }
  const SweepStats& s = runner.stats();
  json::Value prof = json::Value::object();
  prof.set("cache_lookup_seconds", s.profile.cache_lookup_seconds)
      .set("serialize_seconds", s.profile.serialize_seconds)
      .set("run_seconds", s.profile.run_seconds)
      .set("run_max_seconds", s.profile.run_max_seconds)
      .set("queue_wait_seconds", s.profile.queue_wait_seconds)
      .set("queue_wait_max_seconds", s.profile.queue_wait_max_seconds)
      .set("pool_busy_seconds", s.profile.pool_busy_seconds)
      .set("pool_occupancy", s.profile.pool_occupancy);
  json::Value rec = json::Value::object();
  rec.set("bench", bench_name)
      .set("jobs", s.jobs)
      .set("cache_hits", s.cache_hits)
      .set("executed", s.executed)
      .set("threads", runner.options().threads)
      .set("wall_seconds", s.wall_seconds)
      .set("jobs_per_sec", s.jobs_per_sec)
      .set("profile", std::move(prof))
      .set("unix_time",
           static_cast<double>(std::chrono::duration_cast<std::chrono::seconds>(
                                   std::chrono::system_clock::now()
                                       .time_since_epoch())
                                   .count()));
  records.push_back(std::move(rec));
  std::ofstream out(path, std::ios::trunc);
  if (out) out << records.dump() << '\n';
}

}  // namespace alge::engine
