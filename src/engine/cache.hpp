// Content-addressed result cache for experiment jobs.
//
// The key is the FNV-1a-64 hash of the spec's canonical JSON encoding, so
// any change to any field (including machine parameters or the seed) is a
// different address. Lookups check an in-memory map first and then the
// optional on-disk store (one JSON file per key, holding both the spec and
// the result). The stored spec is compared byte-for-byte against the probe
// before a disk entry is accepted: hash collisions and stale/corrupt/torn
// files degrade to cache misses, never to wrong results. store() writes via
// a uniquely named temp file + atomic rename, so a crash cannot leave a
// half-written entry behind and concurrent writers — multiple server
// workers and CLI processes sharing one cache directory — never observe
// each other's partial writes (last completed rename wins).
//
// All public methods are thread-safe; the runner calls them from pool
// workers concurrently.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>

#include "engine/job.hpp"

namespace alge::engine {

/// FNV-1a 64-bit over bytes; the cache's content address.
std::uint64_t fnv1a64(std::string_view bytes);

class ResultCache {
 public:
  /// `dir` empty = in-memory only. Otherwise the directory is created and
  /// used as the persistent store.
  explicit ResultCache(std::string dir = "");

  std::uint64_t key_of(const ExperimentSpec& spec) const {
    return fnv1a64(spec.canonical_json());
  }

  /// In-memory hit, then disk hit (loading it into memory), else nullopt.
  std::optional<ExperimentResult> lookup(const ExperimentSpec& spec);

  void store(const ExperimentSpec& spec, const ExperimentResult& result);

  const std::string& dir() const { return dir_; }

  struct Stats {
    std::size_t hits = 0;         ///< memory + disk
    std::size_t disk_hits = 0;    ///< subset of hits served from disk
    std::size_t misses = 0;
    std::size_t corrupt = 0;      ///< unreadable/mismatched disk entries
  };
  Stats stats() const;

 private:
  struct Entry {
    std::string canonical_spec;  ///< collision guard
    ExperimentResult result;
  };

  std::string path_of(std::uint64_t key) const;
  std::optional<Entry> load_disk(std::uint64_t key,
                                 const std::string& canonical_spec);

  std::string dir_;
  mutable std::mutex mu_;
  std::unordered_map<std::uint64_t, Entry> mem_;
  Stats stats_;
};

}  // namespace alge::engine
