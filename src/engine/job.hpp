// The engine's unit of work: a serializable experiment specification and a
// typed result.
//
// An ExperimentSpec names everything that determines a simulated run —
// algorithm, machine parameters, problem/grid dimensions, options, seed —
// so that (a) the runner can execute it on any thread, and (b) its
// canonical JSON encoding can be hashed for content-addressed result
// caching. ExperimentResult carries the measured counters (F/W/S aggregates),
// the simulated makespan, the itemized Eq. (2) energy ledger, and the
// verification outcome; it round-trips through JSON bit-exactly (doubles are
// serialized with round-trip precision), which is what makes cached and
// freshly computed results interchangeable.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "core/costs.hpp"
#include "core/params.hpp"
#include "sim/machine.hpp"
#include "support/json.hpp"

namespace alge::engine {

/// Everything the runner knows how to execute: the six harness algorithms
/// plus the collective microbenchmarks (used by ablation_collectives).
enum class Alg {
  kMm25d,          ///< 2.5D matmul (c=1: Cannon 2D; c=q: 3D), p = q²c
  kSumma,          ///< SUMMA 2D baseline, p = q²
  kCaps,           ///< CAPS Strassen, p = 7^k
  kNBody,          ///< replicating n-body, p ranks in c teams
  kLu,             ///< block-cyclic LU (2D or 2.5D), p = q²c
  kFft,            ///< four-step FFT, n = r_dim·c_dim
  kTsqr,           ///< TSQR tree QR: n rows per rank × nb columns, p ranks
  kCollBcast,      ///< binomial broadcast of payload_words
  kCollReduce,     ///< binomial reduce of payload_words
  kCollAllgather,  ///< ring allgather of payload_words per rank
  kCollA2aDirect,  ///< direct all-to-all, payload_words per peer
  kCollA2aBruck,   ///< Bruck all-to-all, payload_words per peer
};

std::string_view to_string(Alg alg);
Alg alg_from_string(std::string_view name);

/// MachineParams <-> JSON in the spec's canonical field order. Shared with
/// src/serve, whose requests carry explicit machine parameters in exactly
/// the encoding the cache keys already use.
json::Value machine_params_to_json(const core::MachineParams& mp);
core::MachineParams machine_params_from_json(const json::Value& v);

struct ExperimentSpec {
  Alg alg = Alg::kMm25d;
  core::MachineParams params;

  // Problem / grid dimensions; an algorithm reads only the fields it needs
  // (matching the harness entry points), the rest stay at their defaults.
  int n = 0;      ///< problem size (matrix dim, particles, FFT points)
  int q = 0;      ///< grid edge (mm25d/summa/lu)
  int c = 0;      ///< replication factor / team count
  int p = 0;      ///< rank count (nbody/fft/collectives)
  int k = 0;      ///< CAPS levels (p = 7^k)
  int nb = 0;     ///< LU block size
  int r_dim = 0;  ///< FFT row dimension
  int c_dim = 0;  ///< FFT column dimension
  int payload_words = 0;  ///< collective payload per rank/peer

  bool ring_replication = false;   ///< mm25d: ring instead of tree bcast
  std::string caps_schedule;       ///< CAPS {B,D}* schedule ("" = all-BFS)
  int caps_cutoff = 32;            ///< CAPS local Strassen cutoff
  bool fft_bruck = false;          ///< FFT transpose: Bruck vs direct
  bool verify = false;             ///< check against the sequential reference
  std::uint64_t seed = 1;

  // Chaos axes (src/chaos): both default-inert. Serialized only when set,
  // so existing cache keys (and cached results) stay valid.
  std::uint64_t chaos_seed = 0;  ///< nonzero: permute the fiber wake order
  std::string fault_plan;        ///< bundled chaos::FaultPlan name ("" = off)

  // Data mode (sim/payload.hpp): kGhost runs the identical cost schedule
  // without data movement or local kernels. Default-inert and serialized
  // only when set, like the chaos axes, so kFull cache keys are unchanged.
  sim::DataMode data_mode = sim::DataMode::kFull;

  // Execution mode (sim/fold.hpp): kFolded collapses fold-congruent ranks
  // onto class representatives and replays per-class cost deltas (requires
  // kGhost; the machine transparently falls back to fibers when the
  // algorithm has no fold map or chaos axes are active). Default-inert and
  // serialized only when set, so existing cache keys are unchanged.
  sim::ExecMode exec_mode = sim::ExecMode::kFibers;

  // Transport backend (src/transport): "" or "sim" runs on the virtual-
  // clock simulator; "shm" / "tcp" execute the algorithm for real through
  // the registered backend executor (engine/backend.hpp). Default-inert and
  // serialized only when set, like the axes above, so existing cache keys
  // are unchanged. Real backends require the fault/ghost/fold axes to stay
  // at their defaults and verify=false.
  std::string transport;

  json::Value to_json() const;
  static ExperimentSpec from_json(const json::Value& v);

  /// Deterministic compact encoding; equal specs produce equal strings.
  /// This string (not the struct) is what the result cache hashes.
  std::string canonical_json() const { return to_json().dump(); }

  bool operator==(const ExperimentSpec& o) const {
    return canonical_json() == o.canonical_json();
  }
};

struct ExperimentResult {
  int p = 0;
  double makespan = 0.0;            ///< simulated seconds
  sim::SimTotals totals;            ///< measured F/W/S aggregates
  core::EnergyBreakdown energy;     ///< itemized Eq. (2) terms
  double max_abs_error = 0.0;       ///< vs sequential reference (if verified)
  bool verified = false;
  /// Fold execution slots: the fiber count when the machine folded (0 when
  /// it ran one fiber per rank). Serialized only when nonzero so cached
  /// per-fiber results keep their encoding.
  int fold_slots = 0;

  double words_per_proc() const { return totals.words_sent_max; }
  double msgs_per_proc() const { return totals.msgs_sent_max; }
  double energy_total() const { return energy.total(); }
  double power() const { return energy.total() / makespan; }

  json::Value to_json() const;
  static ExperimentResult from_json(const json::Value& v);

  bool operator==(const ExperimentResult& o) const = default;
};

}  // namespace alge::engine
