#include "engine/backend.hpp"

#include <algorithm>
#include <map>
#include <mutex>

namespace alge::engine {

namespace {

std::mutex& registry_mu() {
  static std::mutex mu;
  return mu;
}

/// Node-based map: values never move, so find_backend_executor can hand out
/// stable pointers while later registrations replace contents in place.
std::map<std::string, BackendExecutor>& registry() {
  static std::map<std::string, BackendExecutor> m;
  return m;
}

}  // namespace

void register_backend_executor(const std::string& name, BackendExecutor fn) {
  std::lock_guard lock(registry_mu());
  registry()[name] = std::move(fn);
}

const BackendExecutor* find_backend_executor(const std::string& name) {
  std::lock_guard lock(registry_mu());
  const auto it = registry().find(name);
  return it == registry().end() ? nullptr : &it->second;
}

std::vector<std::string> backend_executor_names() {
  std::lock_guard lock(registry_mu());
  std::vector<std::string> names;
  names.reserve(registry().size());
  for (const auto& [name, fn] : registry()) names.push_back(name);
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace alge::engine
