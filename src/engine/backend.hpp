// Runtime registry of transport-backend executors.
//
// ExperimentSpec::transport selects where a spec runs ("" / "sim" = the
// virtual-clock simulator; "shm" / "tcp" = a real backend). The real
// executors live in alge_transport, which links alge_engine — so the engine
// cannot call them directly without a dependency cycle. Instead the engine
// consults this name → executor registry at dispatch time, and
// transport::register_engine_backends() populates it from the other side of
// the seam. A binary that never links alge_transport simply has an empty
// registry and gets a clear error for real-backend specs.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "engine/job.hpp"

namespace alge::engine {

using BackendExecutor = std::function<ExperimentResult(const ExperimentSpec&)>;

/// Register (or replace) the executor for transport `name`. Thread-safe.
void register_backend_executor(const std::string& name, BackendExecutor fn);

/// The executor for `name`, or nullptr when none is registered. The pointer
/// stays valid for the process lifetime (registrations replace in place).
const BackendExecutor* find_backend_executor(const std::string& name);

/// Registered names, sorted — for diagnostics.
std::vector<std::string> backend_executor_names();

}  // namespace alge::engine
