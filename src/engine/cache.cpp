#include "engine/cache.hpp"

#include <unistd.h>

#include <atomic>
#include <cinttypes>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "support/common.hpp"
#include "support/json.hpp"

namespace alge::engine {

std::uint64_t fnv1a64(std::string_view bytes) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

ResultCache::ResultCache(std::string dir) : dir_(std::move(dir)) {
  if (!dir_.empty()) {
    std::filesystem::create_directories(dir_);
  }
}

std::string ResultCache::path_of(std::uint64_t key) const {
  return dir_ + "/" + strfmt("%016" PRIx64 ".json", key);
}

std::optional<ResultCache::Entry> ResultCache::load_disk(
    std::uint64_t key, const std::string& canonical_spec) {
  // Caller holds mu_.
  const std::string path = path_of(key);
  std::ifstream in(path);
  if (!in) return std::nullopt;  // plain miss, not corruption
  std::ostringstream buf;
  buf << in.rdbuf();
  try {
    const json::Value doc = json::parse(buf.str());
    Entry e;
    e.canonical_spec = doc.at("spec").dump();
    if (e.canonical_spec != canonical_spec) {
      // Hash collision or a stale/foreign file under this address.
      ++stats_.corrupt;
      return std::nullopt;
    }
    e.result = ExperimentResult::from_json(doc.at("result"));
    return e;
  } catch (const std::exception&) {
    // Malformed JSON (torn/partial write by a crashed peer), a missing
    // member, or a field that fails decoding — all degrade to a miss.
    ++stats_.corrupt;
    return std::nullopt;
  }
}

std::optional<ExperimentResult> ResultCache::lookup(
    const ExperimentSpec& spec) {
  const std::string canonical = spec.canonical_json();
  const std::uint64_t key = fnv1a64(canonical);
  std::lock_guard lock(mu_);
  if (const auto it = mem_.find(key);
      it != mem_.end() && it->second.canonical_spec == canonical) {
    ++stats_.hits;
    return it->second.result;
  }
  if (!dir_.empty()) {
    if (auto e = load_disk(key, canonical)) {
      ++stats_.hits;
      ++stats_.disk_hits;
      ExperimentResult result = e->result;
      mem_[key] = std::move(*e);
      return result;
    }
  }
  ++stats_.misses;
  return std::nullopt;
}

void ResultCache::store(const ExperimentSpec& spec,
                        const ExperimentResult& result) {
  const std::string canonical = spec.canonical_json();
  const std::uint64_t key = fnv1a64(canonical);
  std::lock_guard lock(mu_);
  mem_[key] = Entry{canonical, result};
  if (dir_.empty()) return;
  json::Value doc = json::Value::object();
  doc.set("spec", spec.to_json()).set("result", result.to_json());
  const std::string path = path_of(key);
  // The temp name is unique per (process, store call): concurrent writers —
  // several server workers plus a CLI sharing one cache directory — each
  // stage into their own file and the atomic rename publishes whichever
  // finishes last. A fixed ".tmp" suffix would let two writers truncate
  // each other mid-write and rename a torn entry into place.
  static std::atomic<std::uint64_t> tmp_seq{0};
  const std::string tmp =
      path + strfmt(".%d.%" PRIu64 ".tmp", static_cast<int>(::getpid()),
                    tmp_seq.fetch_add(1, std::memory_order_relaxed));
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) return;  // disk store is best-effort; memory entry stands
    out << doc.dump() << '\n';
    if (!out.good()) {
      out.close();
      std::remove(tmp.c_str());
      return;
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) std::remove(tmp.c_str());
}

ResultCache::Stats ResultCache::stats() const {
  std::lock_guard lock(mu_);
  return stats_;
}

}  // namespace alge::engine
