#include "transport/programs.hpp"

#include <algorithm>
#include <span>

#include "algs/fft/fft.hpp"
#include "algs/lu/distributed.hpp"
#include "algs/lu/local.hpp"
#include "algs/matmul/distributed.hpp"
#include "algs/matmul/local.hpp"
#include "algs/nbody/nbody.hpp"
#include "algs/qr/tsqr.hpp"
#include "algs/strassen/caps.hpp"
#include "algs/strassen/layout.hpp"
#include "sim/comm.hpp"
#include "support/common.hpp"
#include "support/rng.hpp"
#include "topo/grid.hpp"

namespace alge::transport {

namespace {

using algs::BlockCyclic;

/// Row-major (bi, bj) block of an n×n matrix on a q×q grid — the harness's
/// slicing, reproduced here so every rank can carve its share out of the
/// regenerated whole.
std::vector<double> block_of(const std::vector<double>& m, int n, int q,
                             int bi, int bj) {
  const int nb = n / q;
  std::vector<double> out(static_cast<std::size_t>(nb) * nb);
  for (int r = 0; r < nb; ++r) {
    for (int c = 0; c < nb; ++c) {
      out[static_cast<std::size_t>(r) * nb + c] =
          m[static_cast<std::size_t>(bi * nb + r) * n + (bj * nb + c)];
    }
  }
  return out;
}

/// Rank (row, col)'s block-cyclic share of A, laid out per BlockCyclic.
std::vector<double> lu_local_blocks(const std::vector<double>& a,
                                    const BlockCyclic& bc, int row, int col) {
  std::vector<double> dst(bc.local_words(), 0.0);
  for (int I = 0; I < bc.nt(); ++I) {
    if (I % bc.q != row) continue;
    for (int J = 0; J < bc.nt(); ++J) {
      if (J % bc.q != col) continue;
      for (int r = 0; r < bc.nb; ++r) {
        std::copy_n(a.data() +
                        static_cast<std::size_t>(I * bc.nb + r) * bc.n +
                        J * bc.nb,
                    bc.nb,
                    dst.data() + bc.local_offset(I, J) +
                        static_cast<std::size_t>(r) * bc.nb);
      }
    }
  }
  return dst;
}

AlgProgram make_mm25d(const ProgramSpec& spec) {
  const topo::Grid3D grid(spec.q, spec.c);
  AlgProgram out;
  out.p = grid.p();
  out.program = [spec](sim::Comm& comm, std::vector<double>& output) {
    const topo::Grid3D g(spec.q, spec.c);
    algs::Mm25dOptions opts;
    opts.ring_replication = spec.ring_replication;
    if (g.layer_of(comm.rank()) != 0) {
      algs::mm_25d(comm, g, spec.n, {}, {}, {}, opts);
      return;
    }
    Rng rng(spec.seed);
    const auto A = algs::random_matrix(spec.n, spec.n, rng);
    const auto B = algs::random_matrix(spec.n, spec.n, rng);
    const int i = g.row_of(comm.rank());
    const int j = g.col_of(comm.rank());
    const auto a = block_of(A, spec.n, spec.q, i, j);
    const auto b = block_of(B, spec.n, spec.q, i, j);
    output.assign(a.size(), 0.0);
    algs::mm_25d(comm, g, spec.n, a, b, output, opts);
  };
  return out;
}

AlgProgram make_summa(const ProgramSpec& spec) {
  const topo::Grid2D grid(spec.q);
  AlgProgram out;
  out.p = grid.p();
  out.program = [spec](sim::Comm& comm, std::vector<double>& output) {
    const topo::Grid2D g(spec.q);
    Rng rng(spec.seed);
    const auto A = algs::random_matrix(spec.n, spec.n, rng);
    const auto B = algs::random_matrix(spec.n, spec.n, rng);
    const int i = g.row_of(comm.rank());
    const int j = g.col_of(comm.rank());
    const auto a = block_of(A, spec.n, spec.q, i, j);
    const auto b = block_of(B, spec.n, spec.q, i, j);
    output.assign(a.size(), 0.0);
    algs::summa_2d(comm, g, spec.n, a, b, output);
  };
  return out;
}

AlgProgram make_caps(const ProgramSpec& spec) {
  AlgProgram out;
  out.p = algs::caps_ranks(spec.k);
  out.program = [spec, p = out.p](sim::Comm& comm,
                                  std::vector<double>& output) {
    algs::CapsOptions opts;
    opts.schedule = spec.caps_schedule;
    opts.local_cutoff = spec.caps_cutoff;
    const int levels =
        spec.caps_schedule.empty()
            ? spec.k
            : static_cast<int>(spec.caps_schedule.size());
    Rng rng(spec.seed);
    const auto A = algs::random_matrix(spec.n, spec.n, rng);
    const auto B = algs::random_matrix(spec.n, spec.n, rng);
    const auto Az = algs::to_z_order(A, spec.n, levels);
    const auto Bz = algs::to_z_order(B, spec.n, levels);
    const auto a = algs::extract_share(Az, p, comm.rank());
    const auto b = algs::extract_share(Bz, p, comm.rank());
    output.assign(a.size(), 0.0);
    algs::caps_multiply(comm, spec.n, spec.k, a, b, output, opts);
  };
  return out;
}

AlgProgram make_nbody(const ProgramSpec& spec) {
  const topo::TeamGrid grid(spec.p, spec.c);
  (void)grid;
  AlgProgram out;
  out.p = spec.p;
  out.program = [spec](sim::Comm& comm, std::vector<double>& output) {
    const topo::TeamGrid g(spec.p, spec.c);
    if (g.row_of(comm.rank()) != 0) {
      algs::nbody_replicated(comm, g, spec.n, {}, {});
      return;
    }
    Rng rng(spec.seed);
    const auto parts = algs::random_particles(spec.n, rng);
    const int P = g.cols();
    const int nb = spec.n / P;
    const int j = g.col_of(comm.rank());
    const auto mine = std::span<const double>(parts).subspan(
        static_cast<std::size_t>(j) * nb * algs::kParticleWords,
        static_cast<std::size_t>(nb) * algs::kParticleWords);
    output.assign(static_cast<std::size_t>(nb) * algs::kForceWords, 0.0);
    algs::nbody_replicated(comm, g, spec.n, mine, output);
  };
  return out;
}

AlgProgram make_lu(const ProgramSpec& spec) {
  BlockCyclic bc{spec.n, spec.nb, spec.q};
  bc.validate();
  AlgProgram out;
  if (spec.c <= 1) {
    const topo::Grid2D grid(spec.q);
    out.p = grid.p();
    out.program = [spec, bc](sim::Comm& comm, std::vector<double>& output) {
      const topo::Grid2D g(spec.q);
      Rng rng(spec.seed);
      const auto A = algs::diagonally_dominant_matrix(spec.n, rng);
      output = lu_local_blocks(A, bc, g.row_of(comm.rank()),
                               g.col_of(comm.rank()));
      algs::lu_2d(comm, g, bc, output);
    };
    return out;
  }
  const topo::Grid3D grid(spec.q, spec.c);
  out.p = grid.p();
  out.program = [spec, bc](sim::Comm& comm, std::vector<double>& output) {
    const topo::Grid3D g(spec.q, spec.c);
    if (g.layer_of(comm.rank()) != 0) {
      algs::lu_25d(comm, g, bc, {});
      return;
    }
    Rng rng(spec.seed);
    const auto A = algs::diagonally_dominant_matrix(spec.n, rng);
    output = lu_local_blocks(A, bc, g.row_of(comm.rank()),
                             g.col_of(comm.rank()));
    algs::lu_25d(comm, g, bc, output);
  };
  return out;
}

AlgProgram make_fft(const ProgramSpec& spec) {
  AlgProgram out;
  out.p = spec.p;
  out.program = [spec](sim::Comm& comm, std::vector<double>& output) {
    const int n = spec.r_dim * spec.c_dim;
    const int cl = spec.c_dim / spec.p;
    const int rl = spec.r_dim / spec.p;
    Rng rng(spec.seed);
    std::vector<double> x(2 * static_cast<std::size_t>(n));
    rng.fill_uniform(x, -1.0, 1.0);
    const int h = comm.rank();
    std::vector<double> cols(2 * static_cast<std::size_t>(spec.r_dim) * cl);
    for (int jl = 0; jl < cl; ++jl) {
      const int j2 = h * cl + jl;
      for (int j1 = 0; j1 < spec.r_dim; ++j1) {
        cols[2 * (static_cast<std::size_t>(jl) * spec.r_dim + j1)] =
            x[2 * (static_cast<std::size_t>(j1) * spec.c_dim + j2)];
        cols[2 * (static_cast<std::size_t>(jl) * spec.r_dim + j1) + 1] =
            x[2 * (static_cast<std::size_t>(j1) * spec.c_dim + j2) + 1];
      }
    }
    output.assign(2 * static_cast<std::size_t>(spec.c_dim) * rl, 0.0);
    algs::fft_parallel(comm, n, spec.r_dim, spec.c_dim, cols, output,
                       spec.fft_bruck ? algs::AllToAllKind::kBruck
                                      : algs::AllToAllKind::kDirect);
  };
  return out;
}

AlgProgram make_tsqr(const ProgramSpec& spec) {
  AlgProgram out;
  out.p = spec.p;
  out.program = [spec](sim::Comm& comm, std::vector<double>& output) {
    const int rows_local = spec.n;
    const int b = spec.nb;
    const std::size_t lw = static_cast<std::size_t>(rows_local) * b;
    Rng rng(spec.seed);
    const auto A = algs::random_matrix(rows_local * spec.p, b, rng);
    const auto mine = std::span<const double>(A).subspan(
        lw * static_cast<std::size_t>(comm.rank()), lw);
    if (comm.rank() == 0) {
      output.assign(static_cast<std::size_t>(b) * b, 0.0);
      algs::tsqr(comm, b, mine, output);
    } else {
      algs::tsqr(comm, b, mine, {});
    }
  };
  return out;
}

}  // namespace

AlgProgram make_program(const ProgramSpec& spec) {
  if (spec.alg == "mm25d") return make_mm25d(spec);
  if (spec.alg == "summa") return make_summa(spec);
  if (spec.alg == "caps") return make_caps(spec);
  if (spec.alg == "nbody") return make_nbody(spec);
  if (spec.alg == "lu") return make_lu(spec);
  if (spec.alg == "fft") return make_fft(spec);
  if (spec.alg == "tsqr") return make_tsqr(spec);
  ALGE_REQUIRE(false, "unknown program '%s' (mm25d, summa, caps, nbody, "
               "lu, fft, tsqr)",
               spec.alg.c_str());
  return {};
}

const std::vector<std::string>& program_names() {
  static const std::vector<std::string> names{
      "mm25d", "summa", "caps", "nbody", "lu", "fft", "tsqr"};
  return names;
}

ProgramSpec conformance_spec(const std::string& alg) {
  ProgramSpec spec;
  spec.alg = alg;
  if (alg == "mm25d") {
    // c=2 exercises the cross-layer replication/reduction traffic: p = 8.
    spec.n = 8;
    spec.q = 2;
    spec.c = 2;
  } else if (alg == "summa") {
    spec.n = 8;
    spec.q = 2;
  } else if (alg == "caps") {
    spec.n = 14;  // 7 | n so the 7 ranks share n² evenly; even for level 0
    spec.k = 1;   // p = 7
  } else if (alg == "nbody") {
    spec.n = 8;
    spec.p = 4;
    spec.c = 2;
  } else if (alg == "lu") {
    spec.n = 8;
    spec.nb = 2;
    spec.q = 2;
    spec.c = 1;
  } else if (alg == "fft") {
    spec.r_dim = 4;
    spec.c_dim = 4;
    spec.p = 4;
  } else if (alg == "tsqr") {
    spec.n = 4;   // rows per rank
    spec.nb = 2;  // columns b
    spec.p = 4;
  } else {
    ALGE_REQUIRE(false, "unknown program '%s'", alg.c_str());
  }
  return spec;
}

}  // namespace alge::transport
