#include "transport/run.hpp"

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <thread>

#include "serve/protocol.hpp"
#include "sim/comm.hpp"
#include "support/common.hpp"
#include "transport/shm.hpp"
#include "transport/tcp.hpp"

namespace alge::transport {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

sim::MachineConfig machine_config(const RunOptions& opts) {
  sim::MachineConfig cfg;
  cfg.p = opts.p;
  cfg.params = opts.params;
  return cfg;
}

void validate(const RunOptions& opts) {
  ALGE_REQUIRE(opts.p >= 1, "transport run needs p >= 1, got %d", opts.p);
  ALGE_REQUIRE(opts.timeout_s > 0.0, "transport run needs timeout_s > 0");
}

void record_span(const RunOptions& opts, int rank, Clock::time_point start,
                 Clock::time_point end) {
  if (opts.spans == nullptr) return;
  opts.spans->record(strfmt("rank %d", rank), rank, start, end,
                     /*cached=*/false);
}

/// The shared per-rank tail of every backend: run the program, time it,
/// then capture the model counters and both transports' wire stats.
void run_rank_body(const RunOptions& opts, sim::Comm& comm,
                   const RankProgram& program, RankReport* out) {
  const Clock::time_point t0 = Clock::now();
  program(comm, out->output);
  const Clock::time_point t1 = Clock::now();
  out->wall_s = std::chrono::duration<double>(t1 - t0).count();
  record_span(opts, comm.rank(), t0, t1);
  out->model = comm.counters();
  if (const TransportStats* w = comm.transport().wire_stats()) {
    out->wire = *w;
  }
  if (const TransportStats* s = comm.self_transport().wire_stats()) {
    out->self = *s;
  }
}

}  // namespace

std::string_view to_string(Backend b) {
  switch (b) {
    case Backend::kSim: return "sim";
    case Backend::kShm: return "shm";
    case Backend::kTcp: return "tcp";
  }
  ALGE_CHECK(false, "unhandled Backend value %d", static_cast<int>(b));
  return "";
}

Backend backend_from_string(std::string_view name) {
  if (name == "sim") return Backend::kSim;
  if (name == "shm") return Backend::kShm;
  if (name == "tcp") return Backend::kTcp;
  ALGE_REQUIRE(false, "unknown transport backend '%.*s' (sim, shm, tcp)",
               static_cast<int>(name.size()), name.data());
  return Backend::kSim;
}

double RunReport::makespan() const {
  double t = 0.0;
  for (const RankReport& r : ranks) t = std::max(t, r.model.clock);
  return t;
}

sim::SimTotals RunReport::totals() const {
  sim::SimTotals t;
  for (const RankReport& r : ranks) {
    const sim::RankCounters& c = r.model;
    t.flops_total += c.flops;
    t.words_total += c.words_sent;
    t.msgs_total += c.msgs_sent;
    t.words_hops_total += c.words_hops;
    t.msgs_hops_total += c.msgs_hops;
    t.flops_max = std::max(t.flops_max, c.flops);
    t.words_sent_max = std::max(t.words_sent_max, c.words_sent);
    t.msgs_sent_max = std::max(t.msgs_sent_max, c.msgs_sent);
    t.mem_highwater_max = std::max(t.mem_highwater_max, c.mem_highwater);
    t.mem_highwater_total += c.mem_highwater;
  }
  return t;
}

sim::SimEnergy RunReport::energy(const core::MachineParams& mp) const {
  const sim::SimTotals t = totals();
  const double T = makespan();
  const double mean_mem = static_cast<double>(t.mem_highwater_total) /
                          static_cast<double>(p);
  sim::SimEnergy e;
  e.makespan = T;
  e.breakdown.flops = mp.gamma_e * t.flops_total;
  e.breakdown.words = mp.beta_e * t.words_hops_total;
  e.breakdown.messages = mp.alpha_e * t.msgs_hops_total;
  e.breakdown.memory = static_cast<double>(p) * mp.delta_e * mean_mem * T;
  e.breakdown.leakage = static_cast<double>(p) * mp.eps_e * T;
  return e;
}

RunReport run(Backend backend, const RunOptions& opts,
              const RankProgram& program) {
  switch (backend) {
    case Backend::kSim: return run_sim(opts, program);
    case Backend::kShm: return run_shm(opts, program);
    case Backend::kTcp: return run_tcp_threads(opts, program);
  }
  ALGE_CHECK(false, "unhandled Backend value %d", static_cast<int>(backend));
  return {};
}

RunReport run_sim(const RunOptions& opts, const RankProgram& program) {
  validate(opts);
  RunReport report;
  report.backend = Backend::kSim;
  report.p = opts.p;
  report.ranks.resize(static_cast<std::size_t>(opts.p));
  sim::Machine machine(machine_config(opts));
  const Clock::time_point t0 = Clock::now();
  machine.run([&](sim::Comm& comm) {
    run_rank_body(opts, comm, program,
                  &report.ranks[static_cast<std::size_t>(comm.rank())]);
  });
  report.wall_s = seconds_since(t0);
  return report;
}

// --- shm ---

namespace {

/// The forked child's whole life: run the rank, publish results into the
/// arena, flip the status word, _exit. Never returns; never unwinds into
/// the parent's stack/atexit state.
[[noreturn]] void shm_child(ShmArena& arena, int rank, const RunOptions& opts,
                            const RankProgram& program) {
  ShmRankSlot& slot = arena.slot(rank);
  try {
    sim::Machine machine(machine_config(opts));
    ShmTransport t(arena, rank, opts.timeout_s);
    sim::Comm comm(machine, rank, &t);
    std::vector<double> output;
    const Clock::time_point t0 = Clock::now();
    program(comm, output);
    slot.wall_s = seconds_since(t0);
    if (output.size() > arena.max_output_words()) {
      throw TransportError(strfmt(
          "rank %d output of %zu words exceeds the arena's "
          "max_output_words=%zu",
          rank, output.size(), arena.max_output_words()));
    }
    if (!output.empty()) {
      std::memcpy(arena.output(rank), output.data(),
                  output.size() * sizeof(double));
    }
    slot.output_words = output.size();
    slot.model = comm.counters();
    if (const TransportStats* w = t.wire_stats()) slot.wire = *w;
    if (const TransportStats* s = comm.self_transport().wire_stats()) {
      slot.self = *s;
    }
    slot.state.store(ShmRankSlot::kDone, std::memory_order_release);
    ::_exit(0);
  } catch (const std::exception& e) {
    std::strncpy(slot.error, e.what(), kShmErrorBytes - 1);
    slot.state.store(ShmRankSlot::kFailed, std::memory_order_release);
    ::_exit(1);
  } catch (...) {
    std::strncpy(slot.error, "unknown exception", kShmErrorBytes - 1);
    slot.state.store(ShmRankSlot::kFailed, std::memory_order_release);
    ::_exit(1);
  }
}

}  // namespace

RunReport run_shm(const RunOptions& opts, const RankProgram& program) {
  validate(opts);
  const int p = opts.p;
  ShmArena arena(p, opts.ring_bytes, opts.max_output_words);
  const Clock::time_point t0 = Clock::now();
  std::vector<pid_t> pids(static_cast<std::size_t>(p), -1);
  for (int r = 0; r < p; ++r) {
    const pid_t pid = ::fork();
    if (pid == 0) {
      shm_child(arena, r, opts, program);  // never returns
    }
    if (pid < 0) {
      // Could not spawn the full world: mark the missing rank dead so
      // already-running children fail fast, then kill and reap them.
      arena.slot(r).dead.store(1, std::memory_order_release);
      for (int k = 0; k < r; ++k) {
        ::kill(pids[static_cast<std::size_t>(k)], SIGKILL);
        int status = 0;
        ::waitpid(pids[static_cast<std::size_t>(k)], &status, 0);
      }
      throw TransportError(
          strfmt("fork of shm rank %d failed: %s", r, std::strerror(errno)));
    }
    pids[static_cast<std::size_t>(r)] = pid;
  }

  // Supervise: reap as children finish, mark crashed ones dead (so blocked
  // siblings error out instead of timing out), and SIGKILL stragglers after
  // the children's own deadlines have had time to fire.
  const Clock::time_point hard_deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(opts.timeout_s + 10.0));
  std::vector<bool> reaped(static_cast<std::size_t>(p), false);
  int live = p;
  bool killed = false;
  while (live > 0) {
    bool progress = false;
    for (int r = 0; r < p; ++r) {
      if (reaped[static_cast<std::size_t>(r)]) continue;
      int status = 0;
      const pid_t rv =
          ::waitpid(pids[static_cast<std::size_t>(r)], &status, WNOHANG);
      if (rv != pids[static_cast<std::size_t>(r)]) continue;
      reaped[static_cast<std::size_t>(r)] = true;
      --live;
      progress = true;
      ShmRankSlot& slot = arena.slot(r);
      if (slot.state.load(std::memory_order_acquire) ==
          ShmRankSlot::kRunning) {
        // Exited without reporting: crash or kill. Record what the wait
        // status says and unblock its peers.
        if (WIFSIGNALED(status)) {
          std::snprintf(slot.error, kShmErrorBytes,
                        "rank %d process killed by signal %d", r,
                        WTERMSIG(status));
        } else {
          std::snprintf(slot.error, kShmErrorBytes,
                        "rank %d process exited with status %d without "
                        "reporting",
                        r, WIFEXITED(status) ? WEXITSTATUS(status) : -1);
        }
        slot.dead.store(1, std::memory_order_release);
      }
    }
    if (live == 0) break;
    if (Clock::now() >= hard_deadline && !killed) {
      killed = true;
      for (int r = 0; r < p; ++r) {
        if (!reaped[static_cast<std::size_t>(r)]) {
          ::kill(pids[static_cast<std::size_t>(r)], SIGKILL);
        }
      }
    }
    if (!progress) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }

  std::string failures;
  for (int r = 0; r < p; ++r) {
    const ShmRankSlot& slot = arena.slot(r);
    if (slot.state.load(std::memory_order_acquire) == ShmRankSlot::kDone) {
      continue;
    }
    if (!failures.empty()) failures += "; ";
    failures += slot.error[0] != '\0'
                    ? slot.error
                    : strfmt("rank %d did not finish", r).c_str();
  }
  if (!failures.empty()) {
    throw TransportError(strfmt("shm run failed: %s%s", failures.c_str(),
                                killed ? " (stragglers killed)" : ""));
  }

  RunReport report;
  report.backend = Backend::kShm;
  report.p = p;
  report.wall_s = seconds_since(t0);
  report.ranks.resize(static_cast<std::size_t>(p));
  for (int r = 0; r < p; ++r) {
    const ShmRankSlot& slot = arena.slot(r);
    RankReport& rr = report.ranks[static_cast<std::size_t>(r)];
    rr.output.assign(arena.output(r),
                     arena.output(r) + slot.output_words);
    rr.model = slot.model;
    rr.wire = slot.wire;
    rr.self = slot.self;
    rr.wall_s = slot.wall_s;
    if (opts.spans != nullptr) {
      opts.spans->record(
          strfmt("rank %d", r), r, t0,
          t0 + std::chrono::duration_cast<Clock::duration>(
                   std::chrono::duration<double>(slot.wall_s)),
          /*cached=*/false);
    }
  }
  return report;
}

// --- tcp ---

namespace {

RankReport tcp_rank_body(int rank, const RunOptions& opts, int rendezvous_fd,
                         const std::string& host, int port,
                         const RankProgram& program) {
  std::vector<int> fds =
      tcp_mesh(rank, opts.p, rendezvous_fd, host, port, opts.timeout_s);
  TcpTransport t(rank, opts.p, std::move(fds), opts.max_frame_bytes,
                 opts.timeout_s);
  sim::Machine machine(machine_config(opts));
  sim::Comm comm(machine, rank, &t);
  RankReport report;
  run_rank_body(opts, comm, program, &report);
  return report;
}

}  // namespace

RunReport run_tcp_threads(const RunOptions& opts, const RankProgram& program) {
  validate(opts);
  const int p = opts.p;
  int bound_port = 0;
  const int listen_fd = serve::listen_tcp(0, p, &bound_port);
  RunReport report;
  report.backend = Backend::kTcp;
  report.p = p;
  report.ranks.resize(static_cast<std::size_t>(p));
  std::vector<std::string> errors(static_cast<std::size_t>(p));
  const Clock::time_point t0 = Clock::now();
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(p));
  for (int r = 0; r < p; ++r) {
    threads.emplace_back([&, r]() {
      try {
        report.ranks[static_cast<std::size_t>(r)] =
            tcp_rank_body(r, opts, r == 0 ? listen_fd : -1, "127.0.0.1",
                          bound_port, program);
      } catch (const std::exception& e) {
        errors[static_cast<std::size_t>(r)] = e.what();
      }
    });
  }
  for (std::thread& th : threads) th.join();
  ::close(listen_fd);
  report.wall_s = seconds_since(t0);
  std::string failures;
  for (int r = 0; r < p; ++r) {
    if (errors[static_cast<std::size_t>(r)].empty()) continue;
    if (!failures.empty()) failures += "; ";
    failures += errors[static_cast<std::size_t>(r)];
  }
  if (!failures.empty()) {
    throw TransportError(strfmt("tcp run failed: %s", failures.c_str()));
  }
  return report;
}

RankReport run_tcp_rank(int rank, const RunOptions& opts,
                        const std::string& host, int port,
                        const RankProgram& program) {
  validate(opts);
  ALGE_REQUIRE(rank >= 0 && rank < opts.p, "rank %d out of p=%d", rank,
               opts.p);
  ALGE_REQUIRE(port > 0, "multi-process tcp needs an explicit port");
  int listen_fd = -1;
  if (rank == 0) {
    int bound = 0;
    listen_fd = serve::listen_tcp(port, opts.p, &bound);
  }
  try {
    RankReport report =
        tcp_rank_body(rank, opts, listen_fd, host, port, program);
    if (listen_fd >= 0) ::close(listen_fd);
    return report;
  } catch (...) {
    if (listen_fd >= 0) ::close(listen_fd);
    throw;
  }
}

}  // namespace alge::transport
