// Loopback TCP socket backend: one socket per rank pair, chunk frames
// wrapped in src/serve's 4-byte length-prefix framing, read through
// serve::FrameReader so every malformed-stream case (disconnect, truncated
// frame, oversized frame) is classified and surfaces as a TransportError —
// never a hang (sockets carry SO_RCVTIMEO/SO_SNDTIMEO deadlines).
//
// Mesh establishment (tcp_mesh) is a rank-0 rendezvous: every other rank
// connects to rank 0's listener and that connection *is* the (0, r) mesh
// link. Rank r sends a fixed-size hello carrying its rank and the port of
// its own mesh listener; once all p-1 hellos are in, rank 0 broadcasts the
// port table and each pair (i, j) with 0 < j < i completes the mesh by i
// connecting to j's listener. The control phase reads exact byte counts
// (never buffering ahead), so the sockets hand over to the transport's
// FrameReaders with nothing in flight. Loopback-only by design, like the
// query service the framing comes from.
//
// The fd-vector constructor is the seam the fault tests use: any set of
// pre-connected stream sockets (e.g. socketpairs with a scripted peer)
// makes a valid TcpTransport, so frame truncation and mid-collective
// disconnects are testable without a real mesh.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "serve/protocol.hpp"
#include "transport/wire.hpp"

namespace alge::transport {

/// Establish the full rank mesh; returns p fds with fds[rank] == -1.
/// `rendezvous_fd`: rank 0 passes its listening socket (not closed; the
/// caller owns it) and ignores host/port; other ranks pass -1 and connect
/// to host:port. Throws TransportError on malformed hellos, rank/p
/// mismatches, duplicate ranks, or timeout.
std::vector<int> tcp_mesh(int rank, int p, int rendezvous_fd,
                          const std::string& host, int port,
                          double timeout_s);

/// One rank's TCP endpoint over pre-connected per-peer sockets. Takes
/// ownership of the fds (closed on destruction) and applies `timeout_s` as
/// each socket's send/receive deadline.
class TcpTransport final : public ChunkedTransport {
 public:
  TcpTransport(int rank, int p, std::vector<int> fds,
               std::size_t max_frame_bytes, double timeout_s);
  ~TcpTransport() override;

  const char* name() const override { return "tcp"; }

 protected:
  void send_frame(int dst, const void* bytes, std::size_t len) override;
  void recv_frame(int src, WireChunkHeader* header,
                  std::vector<double>* payload) override;

 private:
  int fd(int peer) const;

  std::vector<int> fds_;  ///< fds_[peer]; -1 at our own rank
  std::vector<std::unique_ptr<serve::FrameReader>> readers_;
  std::size_t max_frame_bytes_;
  std::string frame_out_;  ///< framed-send scratch, reused
};

}  // namespace alge::transport
