#include "transport/engine_backend.hpp"

#include "engine/backend.hpp"
#include "support/common.hpp"
#include "transport/programs.hpp"

namespace alge::transport {

namespace {

ProgramSpec program_spec_of(const engine::ExperimentSpec& spec) {
  ProgramSpec ps;
  ps.alg = std::string(engine::to_string(spec.alg));
  ps.n = spec.n;
  ps.q = spec.q;
  ps.c = spec.c;
  ps.p = spec.p;
  ps.k = spec.k;
  ps.nb = spec.nb;
  ps.r_dim = spec.r_dim;
  ps.c_dim = spec.c_dim;
  ps.fft_bruck = spec.fft_bruck;
  ps.caps_schedule = spec.caps_schedule;
  ps.caps_cutoff = spec.caps_cutoff;
  ps.ring_replication = spec.ring_replication;
  ps.seed = spec.seed;
  return ps;
}

}  // namespace

engine::ExperimentResult execute_on(Backend backend,
                                    const engine::ExperimentSpec& spec) {
  ALGE_REQUIRE(backend != Backend::kSim,
               "execute_on is the real-backend path; leave spec.transport "
               "empty (or \"sim\") for the simulator");
  ALGE_REQUIRE(spec.chaos_seed == 0 && spec.fault_plan.empty(),
               "transport \"%s\" runs fault-free: chaos axes apply to the "
               "simulator only",
               std::string(to_string(backend)).c_str());
  ALGE_REQUIRE(spec.data_mode == sim::DataMode::kFull,
               "transport \"%s\" moves real data: ghost mode applies to "
               "the simulator only",
               std::string(to_string(backend)).c_str());
  ALGE_REQUIRE(spec.exec_mode == sim::ExecMode::kFibers,
               "transport \"%s\" cannot fold ranks: folded execution "
               "applies to the simulator only",
               std::string(to_string(backend)).c_str());
  ALGE_REQUIRE(!spec.verify,
               "real-backend specs must set verify=false; output checking "
               "is the cross-backend conformance suite's job");
  const AlgProgram ap = make_program(program_spec_of(spec));
  RunOptions opts;
  opts.p = ap.p;
  opts.params = spec.params;
  const RunReport report = run(backend, opts, ap.program);
  engine::ExperimentResult out;
  out.p = report.p;
  out.makespan = report.makespan();
  out.totals = report.totals();
  out.energy = report.energy(spec.params).breakdown;
  return out;
}

void register_engine_backends() {
  engine::register_backend_executor(
      "shm", [](const engine::ExperimentSpec& spec) {
        return execute_on(Backend::kShm, spec);
      });
  engine::register_backend_executor(
      "tcp", [](const engine::ExperimentSpec& spec) {
        return execute_on(Backend::kTcp, spec);
      });
}

}  // namespace alge::transport
