// The transport seam under sim::Comm — ROADMAP item 2, the MTCL-style
// Handle/CollectiveImpl shape: one delivery interface, three backends.
//
// Comm keeps everything that defines the paper's cost model — validation,
// fault decisions, and every CostHooks charge (clock, counters, ledger,
// trace) — and delegates only *delivery* and *receipt* of payload bytes to a
// Transport. The virtual-clock simulator (sim::SimTransport, the mailbox /
// rendezvous machinery moved verbatim behind this interface), the
// shared-memory multi-process backend (transport/shm.hpp) and the TCP socket
// backend (transport/tcp.hpp) all implement it, which is what lets the 7
// algorithms in src/algs run unmodified on any of them.
//
// Real backends carry the model with them: each rank owns a full Machine and
// CostHooks, the wire frames carry the sender's post-send virtual clock and
// model message count, and the receiver synchronizes exactly as the
// simulator would — so per-rank virtual clocks and the W/S ledger are
// bit-identical to a simulated run, while TransportStats counts what
// actually moved. Measured == ledger is the conformance oracle
// (tests/test_transport_conformance.cpp).
//
// This header is intentionally link-free (pure interface + PODs): sim/
// includes it without depending on the alge_transport library.
#pragma once

#include <cstdint>

#include "sim/fault.hpp"
#include "sim/machine.hpp"
#include "sim/payload.hpp"

namespace alge::transport {

/// Structured failure of a real backend (peer death, disconnect, truncated
/// frame, timeout). A SimError subtype so callers that already handle
/// simulation failures — the engine, the tests' EXPECT_THROW(SimError) —
/// handle transport failures the same way, per the fault-test contract:
/// no hangs, always a typed error.
class TransportError : public sim::SimError {
 public:
  using sim::SimError::SimError;
};

/// Delivery metadata returned by Transport::receive: the sender's post-send
/// virtual clock (the arrival time recv_sync charges) and the model message
/// count nmsg = max(1, ceil(k/m)) the sender charged (0 for self-sends).
struct RecvMeta {
  double arrival = 0.0;
  double msg_count = 0.0;
};

/// What actually moved through a transport, counted at the wire: one count
/// per physical chunk frame (a logical k-word message is split into the
/// model's nmsg chunks) and the payload words it carried. Doubles so the
/// exact-equality comparison against RankCounters needs no casts; counts
/// stay integral far beyond any test's traffic.
struct TransportStats {
  double msgs_sent = 0.0;
  double words_sent = 0.0;
  double msgs_recv = 0.0;
  double words_recv = 0.0;

  bool operator==(const TransportStats&) const = default;
};

/// One rank's endpoint of a message layer. deliver() never blocks on the
/// receiver's program (eager-send semantics, matching the simulator);
/// receive() blocks until the matching (src, tag) message is available and
/// must fail with TransportError — never hang — when the peer is gone.
class Transport {
 public:
  virtual ~Transport() = default;

  virtual const char* name() const = 0;

  /// Deliver `data` to rank `dst` under `tag`. `clock_after_send` is the
  /// sender's virtual clock after CostHooks::send charged the transmission
  /// (the arrival time under eager-send semantics); `msg_count` is the nmsg
  /// that charge returned. `fd` carries the fault layer's decision — only
  /// the simulator backend accepts a non-zero one (real backends run
  /// fault-free; injection is rejected at configuration time).
  virtual void deliver(int dst, int tag, sim::ConstPayload data,
                       double clock_after_send, double msg_count,
                       const sim::FaultDecision& fd) = 0;

  /// Blocking receive of the next (src, tag) message into `out` (FIFO per
  /// pair). Size mismatches raise SimError with the simulator's wording.
  virtual RecvMeta receive(int src, int tag, sim::Payload out) = 0;

  /// Wire-level counters, when the backend measures any (real backends do;
  /// the simulator counts logical deliveries so conformance can separate
  /// self-traffic from wire traffic).
  virtual const TransportStats* wire_stats() const { return nullptr; }
};

}  // namespace alge::transport
