// Shared-memory multi-process backend: p forked rank processes exchanging
// chunk frames over p×p single-producer/single-consumer byte rings in one
// anonymous MAP_SHARED arena mapped before fork.
//
// The arena is laid out by ShmArena: per-rank result slots first (status
// word, error text, wall time, the rank's model RankCounters and wire/self
// TransportStats, and a fixed-capacity output area the parent harvests),
// then one ring per ordered (src, dst) pair. Rings are byte streams, not
// frame buffers: a frame larger than the ring flows through in pieces while
// the consumer drains, so ring_bytes bounds memory, never message size.
//
// Liveness contract: every blocking ring wait polls the peer's status and
// the parent-maintained death flag under a deadline, so a peer that exits,
// crashes, or is killed turns into a TransportError at every rank still
// talking to it — never a hang. The parent (transport/run.cpp) reaps
// children, marks abnormal exits dead, and SIGKILLs the stragglers when the
// global timeout expires.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "sim/counters.hpp"
#include "transport/wire.hpp"

namespace alge::transport {

inline constexpr std::size_t kShmErrorBytes = 512;

/// One rank's result slot in the arena, written by the child just before
/// _exit and read by the parent after reaping (plus the two flags siblings
/// poll while blocked). Trivially copyable throughout — it lives in raw
/// shared memory.
struct ShmRankSlot {
  static constexpr std::uint32_t kRunning = 0;
  static constexpr std::uint32_t kDone = 1;
  static constexpr std::uint32_t kFailed = 2;

  std::atomic<std::uint32_t> state{kRunning};
  /// Set by the parent when the child exited without reporting (crash,
  /// signal, kill): peers blocked on its rings fail fast instead of timing
  /// out.
  std::atomic<std::uint32_t> dead{0};
  double wall_s = 0.0;
  sim::RankCounters model;
  TransportStats wire;
  TransportStats self;
  std::uint64_t output_words = 0;
  char error[kShmErrorBytes] = {};
};
static_assert(std::atomic<std::uint32_t>::is_always_lock_free,
              "shm status flags must be address-free atomics");

/// SPSC byte-ring header; the data buffer follows it in the arena.
/// `head`/`tail` are monotone byte counts (never wrapped), so `head - tail`
/// is the buffered byte count and position = count % ring_bytes.
struct ShmRing {
  alignas(64) std::atomic<std::uint64_t> head{0};  ///< produced (src writes)
  alignas(64) std::atomic<std::uint64_t> tail{0};  ///< consumed (dst reads)
};

/// The mapped arena: owns one anonymous MAP_SHARED mapping sized for p rank
/// slots (each with `max_output_words` doubles of output space) and p·p
/// rings of `ring_bytes` each. Construct in the parent before fork; the
/// children inherit the same mapping at the same address.
class ShmArena {
 public:
  ShmArena(int p, std::size_t ring_bytes, std::size_t max_output_words);
  ~ShmArena();
  ShmArena(const ShmArena&) = delete;
  ShmArena& operator=(const ShmArena&) = delete;

  int p() const { return p_; }
  std::size_t ring_bytes() const { return ring_bytes_; }
  std::size_t max_output_words() const { return max_output_words_; }

  ShmRankSlot& slot(int rank);
  double* output(int rank);
  ShmRing& ring(int src, int dst);
  char* ring_data(int src, int dst);

 private:
  int p_;
  std::size_t ring_bytes_;
  std::size_t max_output_words_;
  std::size_t slot_stride_;
  std::size_t ring_stride_;
  std::size_t total_bytes_;
  char* base_ = nullptr;
};

/// One rank's shm endpoint. send_frame streams onto the (rank_, dst) ring;
/// recv_frame drains the (src, rank_) ring. Chunking, reassembly and the
/// wire stats live in ChunkedTransport.
class ShmTransport final : public ChunkedTransport {
 public:
  ShmTransport(ShmArena& arena, int rank, double timeout_s);

  const char* name() const override { return "shm"; }

 protected:
  void send_frame(int dst, const void* bytes, std::size_t len) override;
  void recv_frame(int src, WireChunkHeader* header,
                  std::vector<double>* payload) override;

 private:
  /// Stream `len` bytes onto the (rank_, dst) ring, waiting for the
  /// consumer when full; throws TransportError on peer death or timeout.
  void ring_write(int dst, const char* bytes, std::size_t len);
  /// Read exactly `len` bytes from the (src, rank_) ring; throws
  /// TransportError when the producer is gone or the deadline passes.
  void ring_read(int src, char* out, std::size_t len);

  ShmArena& arena_;
  double timeout_s_;
};

}  // namespace alge::transport
