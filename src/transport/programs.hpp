// Self-contained per-rank programs for the 7 algorithms, runnable on any
// transport backend.
//
// The harness (algs/harness.cpp) generates inputs once in the driver and
// hands each fiber a slice — fine inside one process, useless across fork
// or separate shells. These programs instead regenerate the deterministic
// inputs from Rng(seed) *inside every rank* (same seed → same matrix on
// every process) and carve out the rank's share locally, so the identical
// closure runs under the simulator, in a forked shm child, or in a rank's
// own shell over TCP. Each rank publishes its natural local result (its C
// block, force block, factored blocks, FFT rows, or R) through the
// RankProgram output vector; the conformance suite compares those outputs
// bitwise across backends.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "transport/run.hpp"

namespace alge::transport {

/// Problem parameters for one algorithm run; field meanings match
/// engine::ExperimentSpec (n/q/c/p/k/nb/r_dim/c_dim and the per-algorithm
/// options).
struct ProgramSpec {
  std::string alg;  ///< mm25d, summa, caps, nbody, lu, fft, tsqr
  int n = 8;
  int q = 2;
  int c = 1;
  int p = 4;      ///< rank count where independent (nbody, fft, tsqr)
  int k = 1;      ///< CAPS levels (p = 7^k)
  int nb = 2;     ///< LU block size; TSQR column count b
  int r_dim = 4;  ///< FFT rows
  int c_dim = 4;  ///< FFT columns
  bool fft_bruck = false;
  std::string caps_schedule;
  int caps_cutoff = 32;
  bool ring_replication = false;
  std::uint64_t seed = 1;
};

struct AlgProgram {
  int p = 0;  ///< world size the spec implies (q²c, 7^k, or spec.p)
  RankProgram program;
};

/// Build the rank program for `spec.alg`; throws invalid_argument_error on
/// an unknown name or invalid dimensions.
AlgProgram make_program(const ProgramSpec& spec);

/// The 7 algorithm names make_program accepts, in conformance order.
const std::vector<std::string>& program_names();

/// A small, fast parameterization of `alg` for the cross-backend
/// conformance matrix (p ≤ 8 everywhere).
ProgramSpec conformance_spec(const std::string& alg);

}  // namespace alge::transport
