// Backend-agnostic runner for rank programs: the same program — a function
// of (sim::Comm&, output) — executes on the virtual-clock simulator, on p
// forked processes over shared memory, or on p threads (or p shells, via
// run_tcp_rank) over loopback TCP, and every backend returns the same
// RunReport shape: per-rank outputs, the model's RankCounters (carried by
// the real backends bit-identically to a simulated run), and the wire-level
// TransportStats the conformance suite compares against the W/S ledger.
//
// The model travels with the rank: each real-backend rank owns a full
// Machine(p) whose CostHooks charge exactly as the simulator's, with the
// peer clocks arriving inside chunk frames. RunReport::totals()/energy()
// reproduce Machine::totals()/energy() — world-rank summation order
// included — so a real run plugs into the same Eq. (1)/(2) comparisons.
#pragma once

#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "core/params.hpp"
#include "obs/span_log.hpp"
#include "sim/counters.hpp"
#include "sim/machine.hpp"
#include "transport/transport.hpp"

namespace alge::sim {
class Comm;
}

namespace alge::transport {

enum class Backend {
  kSim,  ///< virtual-clock simulator (fibers, mailboxes)
  kShm,  ///< forked rank processes over shared-memory rings
  kTcp,  ///< rank threads (or shells) over loopback TCP sockets
};

std::string_view to_string(Backend b);
Backend backend_from_string(std::string_view name);

struct RunOptions {
  int p = 0;
  core::MachineParams params;
  /// Bound on every blocking transport wait and on the whole multi-process
  /// run: real backends fail with TransportError instead of hanging.
  double timeout_s = 30.0;
  /// shm: bytes per (src, dst) ring. Bounds buffering, not message size —
  /// larger frames stream through in pieces.
  std::size_t ring_bytes = std::size_t{1} << 20;
  /// shm: per-rank output capacity in the arena (the parent harvests rank
  /// outputs through shared memory).
  std::size_t max_output_words = std::size_t{1} << 20;
  /// tcp: per-frame cap handed to serve::FrameReader.
  std::size_t max_frame_bytes = std::size_t{1} << 24;
  /// Optional real-clock span sink: each rank's program execution is
  /// recorded as one span (lane = rank) for chrome://tracing next to the
  /// simulator's virtual-time traces.
  obs::SpanLog* spans = nullptr;
};

/// One rank's work: runs against the Comm (any backend) and publishes its
/// result through `output`.
using RankProgram = std::function<void(sim::Comm&, std::vector<double>&)>;

struct RankReport {
  std::vector<double> output;
  sim::RankCounters model;  ///< the rank's virtual clocks and W/S counters
  TransportStats wire;      ///< what the backend actually moved
  TransportStats self;      ///< self-send traffic (never on the wire)
  double wall_s = 0.0;      ///< real seconds inside the rank program
};

struct RunReport {
  Backend backend = Backend::kSim;
  int p = 0;
  std::vector<RankReport> ranks;
  double wall_s = 0.0;  ///< real seconds for the whole run

  /// Virtual makespan: max over ranks of the model clock.
  double makespan() const;
  /// World-rank-order aggregation, reproducing Machine::totals() exactly
  /// (summation order included).
  sim::SimTotals totals() const;
  /// Eq. (2) on the model counters, as Machine::energy() computes it.
  sim::SimEnergy energy(const core::MachineParams& params) const;
};

/// Run `program` on every rank over the chosen backend.
RunReport run(Backend backend, const RunOptions& opts,
              const RankProgram& program);

RunReport run_sim(const RunOptions& opts, const RankProgram& program);
RunReport run_shm(const RunOptions& opts, const RankProgram& program);
RunReport run_tcp_threads(const RunOptions& opts, const RankProgram& program);

/// One rank of a multi-process TCP run (e.g. one shell per rank). Rank 0
/// listens on `port`; every other rank connects to host:port. Returns this
/// rank's report only — there is no cross-process aggregation.
RankReport run_tcp_rank(int rank, const RunOptions& opts,
                        const std::string& host, int port,
                        const RankProgram& program);

}  // namespace alge::transport
