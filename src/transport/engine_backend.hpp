// The transport side of the engine's backend-executor seam
// (engine/backend.hpp): registers "shm" and "tcp" executors that turn an
// ExperimentSpec into a per-rank program (transport/programs.hpp), run it
// for real, and rebuild the ExperimentResult from the per-rank model
// counters exactly as the simulator would.
#pragma once

#include "engine/job.hpp"
#include "transport/run.hpp"

namespace alge::transport {

/// Register the "shm" and "tcp" executors with the engine. Idempotent;
/// call once from any binary that wants spec.transport to reach a real
/// backend.
void register_engine_backends();

/// Execute `spec` on `backend` directly (the registered executors call
/// this). Requires the default-inert axes: no chaos, full data, fiber exec
/// mode, verify=false (output checking is the conformance suite's job —
/// tests/test_transport_conformance.cpp compares real-backend outputs and
/// counters against the simulator's).
engine::ExperimentResult execute_on(Backend backend,
                                    const engine::ExperimentSpec& spec);

}  // namespace alge::transport
