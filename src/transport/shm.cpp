#include "transport/shm.hpp"

#include <sys/mman.h>

#include <chrono>
#include <cstring>
#include <new>
#include <thread>

#include "support/common.hpp"

namespace alge::transport {

namespace {

constexpr std::size_t kAlign = 64;

std::size_t round_up(std::size_t n) { return (n + kAlign - 1) & ~(kAlign - 1); }

/// Largest chunk payload recv_frame will believe from a header before the
/// wire-format validation even runs: a corrupted chunk_words must not turn
/// into a multi-gigabyte allocation.
constexpr std::uint64_t kMaxChunkWords = std::uint64_t{1} << 31;

using Clock = std::chrono::steady_clock;

Clock::time_point deadline_after(double timeout_s) {
  return Clock::now() + std::chrono::duration_cast<Clock::duration>(
                            std::chrono::duration<double>(timeout_s));
}

}  // namespace

// --- ShmArena ---

ShmArena::ShmArena(int p, std::size_t ring_bytes,
                   std::size_t max_output_words)
    : p_(p), ring_bytes_(ring_bytes), max_output_words_(max_output_words) {
  ALGE_REQUIRE(p >= 1, "shm arena needs p >= 1, got %d", p);
  ALGE_REQUIRE(ring_bytes >= kAlign, "ring_bytes %zu too small", ring_bytes);
  slot_stride_ =
      round_up(sizeof(ShmRankSlot) + max_output_words * sizeof(double));
  ring_stride_ = round_up(sizeof(ShmRing) + ring_bytes);
  const std::size_t np = static_cast<std::size_t>(p);
  total_bytes_ = np * slot_stride_ + np * np * ring_stride_;
  void* mem = ::mmap(nullptr, total_bytes_, PROT_READ | PROT_WRITE,
                     MAP_SHARED | MAP_ANONYMOUS, -1, 0);
  ALGE_CHECK(mem != MAP_FAILED, "mmap of %zu-byte shm arena failed (p=%d)",
             total_bytes_, p);
  base_ = static_cast<char*>(mem);
  for (int r = 0; r < p; ++r) {
    new (base_ + static_cast<std::size_t>(r) * slot_stride_) ShmRankSlot();
  }
  for (int s = 0; s < p; ++s) {
    for (int d = 0; d < p; ++d) {
      new (&ring(s, d)) ShmRing();
    }
  }
}

ShmArena::~ShmArena() {
  if (base_ != nullptr) ::munmap(base_, total_bytes_);
}

ShmRankSlot& ShmArena::slot(int rank) {
  ALGE_CHECK(rank >= 0 && rank < p_, "shm slot rank %d out of %d", rank, p_);
  return *reinterpret_cast<ShmRankSlot*>(
      base_ + static_cast<std::size_t>(rank) * slot_stride_);
}

double* ShmArena::output(int rank) {
  return reinterpret_cast<double*>(reinterpret_cast<char*>(&slot(rank)) +
                                   sizeof(ShmRankSlot));
}

ShmRing& ShmArena::ring(int src, int dst) {
  ALGE_CHECK(src >= 0 && src < p_ && dst >= 0 && dst < p_,
             "shm ring (%d, %d) out of %d", src, dst, p_);
  const std::size_t idx = static_cast<std::size_t>(src) *
                              static_cast<std::size_t>(p_) +
                          static_cast<std::size_t>(dst);
  return *reinterpret_cast<ShmRing*>(
      base_ + static_cast<std::size_t>(p_) * slot_stride_ +
      idx * ring_stride_);
}

char* ShmArena::ring_data(int src, int dst) {
  return reinterpret_cast<char*>(&ring(src, dst)) + sizeof(ShmRing);
}

// --- ShmTransport ---

ShmTransport::ShmTransport(ShmArena& arena, int rank, double timeout_s)
    : ChunkedTransport(rank, arena.p()), arena_(arena),
      timeout_s_(timeout_s) {}

void ShmTransport::ring_write(int dst, const char* bytes, std::size_t len) {
  ShmRing& r = arena_.ring(rank_, dst);
  char* data = arena_.ring_data(rank_, dst);
  const std::size_t cap = arena_.ring_bytes();
  std::uint64_t head = r.head.load(std::memory_order_relaxed);
  std::size_t done = 0;
  const Clock::time_point deadline = deadline_after(timeout_s_);
  while (done < len) {
    const std::uint64_t tail = r.tail.load(std::memory_order_acquire);
    const std::size_t free_bytes = cap - static_cast<std::size_t>(head - tail);
    if (free_bytes == 0) {
      const ShmRankSlot& peer = arena_.slot(dst);
      // A full ring only drains if the consumer is still alive to drain it.
      if (peer.dead.load(std::memory_order_acquire) != 0) {
        throw TransportError(strfmt(
            "rank %d send to rank %d: peer process died with the ring full",
            rank_, dst));
      }
      if (peer.state.load(std::memory_order_acquire) !=
          ShmRankSlot::kRunning) {
        throw TransportError(strfmt(
            "rank %d send to rank %d: peer finished without draining the "
            "ring (%zu of %zu bytes unsent)",
            rank_, dst, len - done, len));
      }
      if (Clock::now() >= deadline) {
        throw TransportError(strfmt(
            "rank %d send to rank %d timed out after %.1fs with the ring "
            "full (%zu of %zu bytes unsent)",
            rank_, dst, timeout_s_, len - done, len));
      }
      std::this_thread::yield();
      continue;
    }
    const std::size_t n = std::min(free_bytes, len - done);
    const std::size_t pos = static_cast<std::size_t>(head % cap);
    const std::size_t first = std::min(n, cap - pos);
    std::memcpy(data + pos, bytes + done, first);
    std::memcpy(data, bytes + done + first, n - first);
    head += n;
    r.head.store(head, std::memory_order_release);
    done += n;
  }
}

void ShmTransport::ring_read(int src, char* out, std::size_t len) {
  ShmRing& r = arena_.ring(src, rank_);
  const char* data = arena_.ring_data(src, rank_);
  const std::size_t cap = arena_.ring_bytes();
  std::uint64_t tail = r.tail.load(std::memory_order_relaxed);
  std::size_t done = 0;
  const Clock::time_point deadline = deadline_after(timeout_s_);
  while (done < len) {
    const std::uint64_t head = r.head.load(std::memory_order_acquire);
    const std::size_t avail = static_cast<std::size_t>(head - tail);
    if (avail == 0) {
      const ShmRankSlot& peer = arena_.slot(src);
      if (peer.dead.load(std::memory_order_acquire) != 0) {
        throw TransportError(strfmt(
            "rank %d recv from rank %d: peer process died mid-stream (%zu "
            "of %zu frame bytes arrived)",
            rank_, src, done, len));
      }
      const std::uint32_t st = peer.state.load(std::memory_order_acquire);
      if (st == ShmRankSlot::kFailed) {
        throw TransportError(strfmt(
            "rank %d recv from rank %d: peer failed before sending", rank_,
            src));
      }
      if (st == ShmRankSlot::kDone) {
        throw TransportError(strfmt(
            "rank %d recv from rank %d: peer finished without sending the "
            "expected message",
            rank_, src));
      }
      if (Clock::now() >= deadline) {
        throw TransportError(strfmt(
            "rank %d recv from rank %d timed out after %.1fs (%zu of %zu "
            "frame bytes arrived)",
            rank_, src, timeout_s_, done, len));
      }
      std::this_thread::yield();
      continue;
    }
    const std::size_t n = std::min(avail, len - done);
    const std::size_t pos = static_cast<std::size_t>(tail % cap);
    const std::size_t first = std::min(n, cap - pos);
    std::memcpy(out + done, data + pos, first);
    std::memcpy(out + done + first, data, n - first);
    tail += n;
    r.tail.store(tail, std::memory_order_release);
    done += n;
  }
}

void ShmTransport::send_frame(int dst, const void* bytes, std::size_t len) {
  ring_write(dst, static_cast<const char*>(bytes), len);
}

void ShmTransport::recv_frame(int src, WireChunkHeader* header,
                              std::vector<double>* payload) {
  ring_read(src, reinterpret_cast<char*>(header), sizeof(*header));
  if (header->magic != kWireMagic || header->chunk_words > kMaxChunkWords) {
    throw TransportError(strfmt(
        "rank %d: ring from rank %d desynchronized (magic %08x, %llu chunk "
        "words)",
        rank_, src, header->magic,
        static_cast<unsigned long long>(header->chunk_words)));
  }
  payload->resize(static_cast<std::size_t>(header->chunk_words));
  ring_read(src, reinterpret_cast<char*>(payload->data()),
            payload->size() * sizeof(double));
}

}  // namespace alge::transport
