#include "transport/tcp.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "support/common.hpp"

namespace alge::transport {

namespace {

using Clock = std::chrono::steady_clock;

Clock::time_point deadline_after(double timeout_s) {
  return Clock::now() + std::chrono::duration_cast<Clock::duration>(
                            std::chrono::duration<double>(timeout_s));
}

/// Fixed-size rendezvous hello, sent as one serve frame. Host byte order:
/// the mesh is loopback-only, both ends are the same build on the same
/// machine.
struct HelloPayload {
  std::uint32_t magic = kHelloMagic;
  std::int32_t rank = 0;
  std::int32_t mesh_port = 0;
  std::int32_t p = 0;
};
static_assert(sizeof(HelloPayload) == 16, "hello layout drifted");

void set_socket_deadline(int fd, double timeout_s) {
  timeval tv;
  tv.tv_sec = static_cast<time_t>(timeout_s);
  tv.tv_usec = static_cast<suseconds_t>(
      (timeout_s - static_cast<double>(tv.tv_sec)) * 1e6);
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

/// Exact-count read for the control phase: never buffers past `len`, so
/// the socket hands over to the transport's FrameReader with nothing lost.
void read_exact(int fd, void* out, std::size_t len, const char* what) {
  char* p = static_cast<char*>(out);
  std::size_t done = 0;
  while (done < len) {
    const ssize_t n = ::recv(fd, p + done, len - done, 0);
    if (n > 0) {
      done += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    throw TransportError(strfmt(
        "tcp mesh: reading %s: %s after %zu of %zu bytes", what,
        n == 0 ? "peer closed" : std::strerror(errno), done, len));
  }
}

/// Read a control frame's 4-byte big-endian length and require it to be
/// exactly `expected` (the control phase only carries fixed-size frames).
void read_control_len(int fd, std::size_t expected, const char* what) {
  unsigned char b[4];
  read_exact(fd, b, sizeof(b), what);
  const std::size_t len = (static_cast<std::size_t>(b[0]) << 24) |
                          (static_cast<std::size_t>(b[1]) << 16) |
                          (static_cast<std::size_t>(b[2]) << 8) |
                          static_cast<std::size_t>(b[3]);
  if (len != expected) {
    throw TransportError(strfmt(
        "tcp mesh: %s frame is %zu bytes, expected %zu", what, len,
        expected));
  }
}

void write_control(int fd, const void* payload, std::size_t len,
                   const char* what) {
  std::string out;
  serve::append_frame(
      out, std::string_view(static_cast<const char*>(payload), len));
  if (!serve::write_all(fd, out)) {
    throw TransportError(
        strfmt("tcp mesh: writing %s: peer gone (%s)", what,
               std::strerror(errno)));
  }
}

int accept_with_deadline(int listen_fd, Clock::time_point deadline) {
  for (;;) {
    pollfd pfd{};
    pfd.fd = listen_fd;
    pfd.events = POLLIN;
    const auto left = deadline - Clock::now();
    const int left_ms = std::max(
        0, static_cast<int>(
               std::chrono::duration_cast<std::chrono::milliseconds>(left)
                   .count()));
    const int rv = ::poll(&pfd, 1, left_ms);
    if (rv > 0) {
      const int c = ::accept(listen_fd, nullptr, nullptr);
      if (c >= 0) return c;
      if (errno == EINTR || errno == ECONNABORTED) continue;
      throw TransportError(
          strfmt("tcp mesh: accept failed: %s", std::strerror(errno)));
    }
    if (rv < 0 && errno == EINTR) continue;
    if (Clock::now() >= deadline) {
      throw TransportError(
          "tcp mesh: timed out waiting for a peer to connect");
    }
  }
}

int connect_with_deadline(const std::string& host, int port,
                          Clock::time_point deadline, int rank, int peer) {
  for (;;) {
    try {
      return serve::connect_tcp(host, port);
    } catch (const std::exception& e) {
      if (Clock::now() >= deadline) {
        throw TransportError(strfmt(
            "rank %d: cannot reach rank %d at %s:%d before the deadline: "
            "%s",
            rank, peer, host.c_str(), port, e.what()));
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
}

HelloPayload read_hello(int fd, int p, const char* what) {
  read_control_len(fd, sizeof(HelloPayload), what);
  HelloPayload h;
  read_exact(fd, &h, sizeof(h), what);
  if (h.magic != kHelloMagic || h.p != p || h.rank < 0 || h.rank >= p) {
    throw TransportError(strfmt(
        "tcp mesh: malformed %s (magic %08x rank %d p %d, expected p %d)",
        what, h.magic, h.rank, h.p, p));
  }
  return h;
}

}  // namespace

std::vector<int> tcp_mesh(int rank, int p, int rendezvous_fd,
                          const std::string& host, int port,
                          double timeout_s) {
  ALGE_REQUIRE(p >= 1 && rank >= 0 && rank < p,
               "tcp mesh rank %d out of p=%d", rank, p);
  std::vector<int> fds(static_cast<std::size_t>(p), -1);
  if (p == 1) return fds;
  const Clock::time_point deadline = deadline_after(timeout_s);
  int mesh_listen = -1;
  auto close_all = [&]() {
    for (int& fd : fds) {
      if (fd >= 0) ::close(fd);
      fd = -1;
    }
    if (mesh_listen >= 0) ::close(mesh_listen);
  };
  try {
    if (rank == 0) {
      ALGE_REQUIRE(rendezvous_fd >= 0,
                   "rank 0 must pass its rendezvous listener");
      std::vector<std::int32_t> ports(static_cast<std::size_t>(p), 0);
      for (int i = 0; i < p - 1; ++i) {
        const int c = accept_with_deadline(rendezvous_fd, deadline);
        set_socket_deadline(c, timeout_s);
        HelloPayload h;
        try {
          h = read_hello(c, p, "rendezvous hello");
        } catch (...) {
          ::close(c);
          throw;
        }
        if (h.rank == 0 || fds[static_cast<std::size_t>(h.rank)] != -1) {
          ::close(c);
          throw TransportError(strfmt(
              "tcp mesh: duplicate or invalid rendezvous rank %d", h.rank));
        }
        fds[static_cast<std::size_t>(h.rank)] = c;
        ports[static_cast<std::size_t>(h.rank)] = h.mesh_port;
      }
      std::vector<std::int32_t> table(static_cast<std::size_t>(p) + 2);
      table[0] = static_cast<std::int32_t>(kHelloMagic);
      table[1] = p;
      for (int r = 1; r < p; ++r) {
        table[static_cast<std::size_t>(r) + 2] =
            ports[static_cast<std::size_t>(r)];
      }
      for (int r = 1; r < p; ++r) {
        write_control(fds[static_cast<std::size_t>(r)], table.data(),
                      table.size() * sizeof(std::int32_t), "port table");
      }
    } else {
      // The listener must exist before the hello advertises its port.
      int mesh_port = 0;
      mesh_listen = serve::listen_tcp(0, p, &mesh_port);
      const int c = connect_with_deadline(host, port, deadline, rank, 0);
      set_socket_deadline(c, timeout_s);
      fds[0] = c;
      HelloPayload hello;
      hello.rank = rank;
      hello.mesh_port = mesh_port;
      hello.p = p;
      write_control(c, &hello, sizeof(hello), "rendezvous hello");
      const std::size_t table_words = static_cast<std::size_t>(p) + 2;
      read_control_len(c, table_words * sizeof(std::int32_t), "port table");
      std::vector<std::int32_t> table(table_words);
      read_exact(c, table.data(), table_words * sizeof(std::int32_t),
                 "port table");
      if (table[0] != static_cast<std::int32_t>(kHelloMagic) ||
          table[1] != p) {
        throw TransportError(strfmt(
            "tcp mesh: malformed port table (magic %08x p %d, expected %d)",
            static_cast<std::uint32_t>(table[0]), table[1], p));
      }
      for (int j = 1; j < rank; ++j) {
        const int cj = connect_with_deadline(
            host, table[static_cast<std::size_t>(j) + 2], deadline, rank, j);
        set_socket_deadline(cj, timeout_s);
        fds[static_cast<std::size_t>(j)] = cj;
        HelloPayload hj;
        hj.rank = rank;
        hj.p = p;
        write_control(cj, &hj, sizeof(hj), "mesh hello");
      }
      for (int i = 0; i < p - 1 - rank; ++i) {
        const int c2 = accept_with_deadline(mesh_listen, deadline);
        set_socket_deadline(c2, timeout_s);
        HelloPayload h;
        try {
          h = read_hello(c2, p, "mesh hello");
        } catch (...) {
          ::close(c2);
          throw;
        }
        if (h.rank <= rank || fds[static_cast<std::size_t>(h.rank)] != -1) {
          ::close(c2);
          throw TransportError(strfmt(
              "tcp mesh: duplicate or out-of-order mesh rank %d at rank %d",
              h.rank, rank));
        }
        fds[static_cast<std::size_t>(h.rank)] = c2;
      }
      ::close(mesh_listen);
      mesh_listen = -1;
    }
  } catch (...) {
    close_all();
    throw;
  }
  return fds;
}

// --- TcpTransport ---

TcpTransport::TcpTransport(int rank, int p, std::vector<int> fds,
                           std::size_t max_frame_bytes, double timeout_s)
    : ChunkedTransport(rank, p), fds_(std::move(fds)),
      readers_(static_cast<std::size_t>(p)),
      max_frame_bytes_(max_frame_bytes) {
  ALGE_REQUIRE(static_cast<int>(fds_.size()) == p,
               "tcp transport needs %d fds, got %zu", p, fds_.size());
  ALGE_REQUIRE(fds_[static_cast<std::size_t>(rank)] == -1,
               "tcp transport rank %d must not have a socket to itself",
               rank);
  for (int peer = 0; peer < p; ++peer) {
    const int fd = fds_[static_cast<std::size_t>(peer)];
    if (fd < 0) continue;
    set_socket_deadline(fd, timeout_s);
    readers_[static_cast<std::size_t>(peer)] =
        std::make_unique<serve::FrameReader>(fd, max_frame_bytes_);
  }
}

TcpTransport::~TcpTransport() {
  for (const int fd : fds_) {
    if (fd >= 0) ::close(fd);
  }
}

int TcpTransport::fd(int peer) const {
  ALGE_CHECK(peer >= 0 && peer < p_, "tcp peer %d out of %d", peer, p_);
  const int f = fds_[static_cast<std::size_t>(peer)];
  if (f < 0) {
    throw TransportError(
        strfmt("rank %d has no connection to rank %d", rank_, peer));
  }
  return f;
}

void TcpTransport::send_frame(int dst, const void* bytes, std::size_t len) {
  const int f = fd(dst);
  frame_out_.clear();
  serve::append_frame(
      frame_out_, std::string_view(static_cast<const char*>(bytes), len));
  if (!serve::write_all(f, frame_out_)) {
    throw TransportError(strfmt(
        "rank %d send to rank %d: connection lost mid-write (%s)", rank_,
        dst, std::strerror(errno)));
  }
}

void TcpTransport::recv_frame(int src, WireChunkHeader* header,
                              std::vector<double>* payload) {
  (void)fd(src);  // rejects a missing connection before touching readers_
  serve::FrameReader& reader = *readers_[static_cast<std::size_t>(src)];
  std::string_view frame;
  switch (reader.next(&frame)) {
    case serve::FrameReader::Status::kFrame:
      break;
    case serve::FrameReader::Status::kEmpty:
      throw TransportError(strfmt(
          "rank %d recv from rank %d: empty frame (protocol violation)",
          rank_, src));
    case serve::FrameReader::Status::kTooLarge:
      throw TransportError(strfmt(
          "rank %d recv from rank %d: frame exceeds the %zu-byte cap",
          rank_, src, max_frame_bytes_));
    case serve::FrameReader::Status::kClosed:
      throw TransportError(strfmt(
          "rank %d recv from rank %d: peer closed the connection", rank_,
          src));
    case serve::FrameReader::Status::kTruncated:
      throw TransportError(strfmt(
          "rank %d recv from rank %d: connection dropped mid-frame "
          "(truncated frame)",
          rank_, src));
    case serve::FrameReader::Status::kError:
      throw TransportError(strfmt(
          "rank %d recv from rank %d: socket read failed or timed out (%s)",
          rank_, src, std::strerror(errno)));
  }
  if (frame.size() < sizeof(WireChunkHeader)) {
    throw TransportError(strfmt(
        "rank %d recv from rank %d: %zu-byte frame is smaller than a chunk "
        "header",
        rank_, src, frame.size()));
  }
  std::memcpy(header, frame.data(), sizeof(WireChunkHeader));
  const std::size_t body = frame.size() - sizeof(WireChunkHeader);
  if (body % sizeof(double) != 0 ||
      body / sizeof(double) != header->chunk_words) {
    throw TransportError(strfmt(
        "rank %d recv from rank %d: frame body is %zu bytes but the header "
        "declares %llu words",
        rank_, src, body,
        static_cast<unsigned long long>(header->chunk_words)));
  }
  payload->resize(static_cast<std::size_t>(header->chunk_words));
  std::memcpy(payload->data(), frame.data() + sizeof(WireChunkHeader), body);
}

}  // namespace alge::transport
