#include "transport/wire.hpp"

#include "support/common.hpp"

namespace alge::transport {

void ChunkedTransport::deliver(int dst, int tag, sim::ConstPayload data,
                               double clock_after_send, double msg_count,
                               const sim::FaultDecision& fd) {
  ALGE_CHECK(!fd.any(),
             "fault injection reached a real transport (rank %d -> %d); "
             "real backends must be configured fault-free",
             rank_, dst);
  ALGE_CHECK(!data.is_ghost(),
             "ghost payload reached a real transport (rank %d -> %d)",
             rank_, dst);
  ALGE_REQUIRE(msg_count >= 1.0 && msg_count <= 0x7fffffff,
               "message of %zu words splits into %.0f chunks at this "
               "msg cap — beyond what a real transport will move",
               data.size(), msg_count);
  const auto chunk_count = static_cast<std::uint32_t>(msg_count);
  const std::uint64_t msg_words = data.size();
  const double* words = msg_words > 0 ? data.span().data() : nullptr;

  WireChunkHeader h;
  h.src = rank_;
  h.tag = tag;
  h.chunk_count = chunk_count;
  h.msg_words = msg_words;
  h.arrival = clock_after_send;
  h.msg_count = msg_count;

  std::uint64_t off = 0;
  for (std::uint32_t i = 0; i < chunk_count; ++i) {
    h.chunk_index = i;
    h.chunk_words = chunk_words_at(msg_words, chunk_count, i);
    frame_buf_.assign(reinterpret_cast<const char*>(&h), sizeof(h));
    frame_buf_.append(reinterpret_cast<const char*>(words + off),
                      static_cast<std::size_t>(h.chunk_words) *
                          sizeof(double));
    send_frame(dst, frame_buf_.data(), frame_buf_.size());
    off += h.chunk_words;
    stats_.msgs_sent += 1.0;
    stats_.words_sent += static_cast<double>(h.chunk_words);
  }
}

StashedMessage ChunkedTransport::read_message(int src, int* tag_out) {
  WireChunkHeader h;
  std::vector<double> payload;
  StashedMessage msg;
  std::uint32_t expect_count = 0;
  for (std::uint32_t i = 0;; ++i) {
    recv_frame(src, &h, &payload);
    if (h.magic != kWireMagic || h.src != src || h.chunk_index != i ||
        h.chunk_count == 0 ||
        h.chunk_words != chunk_words_at(h.msg_words, h.chunk_count, i) ||
        (i > 0 && h.chunk_count != expect_count)) {
      throw TransportError(strfmt(
          "rank %d: malformed frame from rank %d (magic %08x src %d chunk "
          "%u/%u, %llu of %llu words)",
          rank_, src, h.magic, h.src, h.chunk_index, h.chunk_count,
          static_cast<unsigned long long>(h.chunk_words),
          static_cast<unsigned long long>(h.msg_words)));
    }
    stats_.msgs_recv += 1.0;
    stats_.words_recv += static_cast<double>(h.chunk_words);
    if (i == 0) {
      expect_count = h.chunk_count;
      *tag_out = h.tag;
      msg.arrival = h.arrival;
      msg.msg_count = h.msg_count;
      msg.words.clear();
      msg.words.reserve(static_cast<std::size_t>(h.msg_words));
    } else if (h.tag != *tag_out) {
      throw TransportError(strfmt(
          "rank %d: chunk %u from rank %d switched tag %d -> %d mid-message",
          rank_, h.chunk_index, src, *tag_out, h.tag));
    }
    msg.words.insert(msg.words.end(), payload.begin(), payload.end());
    if (i + 1 == expect_count) break;
  }
  return msg;
}

RecvMeta ChunkedTransport::receive(int src, int tag, sim::Payload out) {
  ALGE_CHECK(!out.is_ghost(),
             "ghost payload reached a real transport (rank %d <- %d)",
             rank_, src);
  StashedMessage msg;
  auto stashed = stash_.find({src, tag});
  if (stashed != stash_.end() && !stashed->second.empty()) {
    msg = std::move(stashed->second.front());
    stashed->second.pop_front();
  } else {
    for (;;) {
      int got_tag = 0;
      StashedMessage m = read_message(src, &got_tag);
      if (got_tag == tag) {
        msg = std::move(m);
        break;
      }
      stash_[{src, got_tag}].push_back(std::move(m));
    }
  }
  if (msg.words.size() != out.size()) {
    throw sim::SimError(strfmt(
        "rank %d recv from %d tag %d: expected %zu words, message has "
        "%zu",
        rank_, src, tag, out.size(), msg.words.size()));
  }
  std::memcpy(out.span().data(), msg.words.data(),
              msg.words.size() * sizeof(double));
  return {msg.arrival, msg.msg_count};
}

}  // namespace alge::transport
