// Wire format shared by the shm and tcp backends, plus the chunking base
// class both build on.
//
// A logical k-word message is physically split into exactly the model's
// nmsg = max(1, ceil(k/m)) chunk frames — one frame per message the
// simulator's W/S ledger counted — so the wire-level TransportStats are an
// *oracle* for the ledger, not an approximation: conformance asserts
// measured frames == RankCounters::msgs_sent and measured payload words ==
// RankCounters::words_sent, exactly. Words are spread evenly across the
// nmsg chunks (sizes differ by at most one word); with a fractional cap m
// a chunk may exceed floor(m) words, but the count and the total are the
// invariants the model defines.
//
// Each frame is a fixed WireChunkHeader followed by chunk_words doubles,
// byte-copied in host representation (both backends connect processes on
// one host; the tcp rendezvous rejects nothing, but model-vs-real only
// ever compares runs from the same build).
#pragma once

#include <cstdint>
#include <cstring>
#include <deque>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "transport/transport.hpp"

namespace alge::transport {

inline constexpr std::uint32_t kWireMagic = 0x414c4754;  // "ALGT"
inline constexpr std::uint32_t kHelloMagic = 0x414c4748; // "ALGH"

struct WireChunkHeader {
  std::uint32_t magic = kWireMagic;
  std::int32_t src = 0;
  std::int32_t tag = 0;
  std::uint32_t chunk_index = 0;  ///< 0-based position within the message
  std::uint32_t chunk_count = 0;  ///< the model's nmsg for this message
  std::uint32_t reserved = 0;
  std::uint64_t msg_words = 0;    ///< total logical payload words
  std::uint64_t chunk_words = 0;  ///< doubles following this header
  double arrival = 0.0;           ///< sender's post-send virtual clock
  double msg_count = 0.0;         ///< model nmsg as charged (== chunk_count)
};
static_assert(sizeof(WireChunkHeader) == 56, "wire header layout drifted");

/// Frame byte size of one chunk: header + payload doubles.
inline std::size_t wire_frame_bytes(std::uint64_t chunk_words) {
  return sizeof(WireChunkHeader) +
         static_cast<std::size_t>(chunk_words) * sizeof(double);
}

/// Split `msg_words` into `chunk_count` near-equal pieces; piece `index`
/// gets the remainder spread over the leading chunks.
inline std::uint64_t chunk_words_at(std::uint64_t msg_words,
                                    std::uint32_t chunk_count,
                                    std::uint32_t index) {
  const std::uint64_t base = msg_words / chunk_count;
  const std::uint64_t extra = msg_words % chunk_count;
  return base + (index < extra ? 1 : 0);
}

/// One fully reassembled inbound message, parked until the program asks for
/// its (src, tag).
struct StashedMessage {
  double arrival = 0.0;
  double msg_count = 0.0;
  std::vector<double> words;
};

/// Chunking, reassembly, tag matching and wire stats, shared by the shm and
/// tcp backends: subclasses only move raw frames. A sender writes every
/// chunk of a message back-to-back on its single thread, so chunks of one
/// (src -> dst) message are contiguous on that channel and reassembly needs
/// no interleaving logic — only validation.
class ChunkedTransport : public Transport {
 public:
  void deliver(int dst, int tag, sim::ConstPayload data,
               double clock_after_send, double msg_count,
               const sim::FaultDecision& fd) final;
  RecvMeta receive(int src, int tag, sim::Payload out) final;
  const TransportStats* wire_stats() const final { return &stats_; }

 protected:
  ChunkedTransport(int rank, int p) : rank_(rank), p_(p) {}

  /// Write one frame (header + payload bytes) to `dst`'s channel. Must
  /// throw TransportError (never block forever) when the peer is gone.
  virtual void send_frame(int dst, const void* bytes, std::size_t len) = 0;

  /// Blocking read of the next frame from `src`'s channel into
  /// header/payload. Must throw TransportError on disconnect, truncation,
  /// malformed framing, peer death, or timeout — never hang.
  virtual void recv_frame(int src, WireChunkHeader* header,
                          std::vector<double>* payload) = 0;

  int rank_;
  int p_;

 private:
  /// Read one whole logical message from `src` (chunk 0 .. chunk n-1,
  /// validated), counting every frame into stats_.
  StashedMessage read_message(int src, int* tag_out);

  TransportStats stats_;
  std::map<std::pair<int, int>, std::deque<StashedMessage>> stash_;
  std::string frame_buf_;  ///< send-side scratch, reused across sends
};

}  // namespace alge::transport
