#include "fiber/fiber.hpp"

#include <ucontext.h>

#include <cstdint>
#include <exception>
#include <utility>

#include "fiber/ready_set.hpp"
#include "support/common.hpp"

// Context-switch mechanism selection.
//
// swapcontext() preserves the signal mask, which costs a sigprocmask
// syscall on every switch — an order of magnitude more than all of the
// scheduler's own bookkeeping combined. Fibers never touch the signal
// mask, so on x86-64 we switch stacks directly: push the System V
// callee-saved registers, swap %rsp, pop, ret (the classic fcontext
// technique). Sanitizer builds keep the ucontext path: TSan/ASan track
// fiber stacks through the intercepted swapcontext and would lose their
// shadow state across a raw %rsp swap. -DALGE_FIBER_FORCE_UCONTEXT
// restores the portable path everywhere. Both mechanisms are pure
// plumbing; scheduling order and all observable behavior are identical.
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
#define ALGE_FIBER_SANITIZED 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
#define ALGE_FIBER_SANITIZED 1
#endif
#endif
#if defined(__x86_64__) && !defined(ALGE_FIBER_SANITIZED) && \
    !defined(ALGE_FIBER_FORCE_UCONTEXT)
#define ALGE_FIBER_FAST_SWITCH 1
#endif

#if defined(ALGE_FIBER_FAST_SWITCH)
// Save the callee-saved registers on the current stack, store the stack
// pointer through save_sp, adopt load_sp, restore, return "into" the
// resumed context. The compiler treats the call as a normal opaque
// function call, so caller-saved state is already spilled per the ABI.
extern "C" void alge_fiber_switch(void** save_sp, void* load_sp);
asm(".text\n"
    ".align 16\n"
    ".globl alge_fiber_switch\n"
    ".type alge_fiber_switch, @function\n"
    "alge_fiber_switch:\n"
    "  pushq %rbp\n"
    "  pushq %rbx\n"
    "  pushq %r12\n"
    "  pushq %r13\n"
    "  pushq %r14\n"
    "  pushq %r15\n"
    "  movq %rsp, (%rdi)\n"
    "  movq %rsi, %rsp\n"
    "  popq %r15\n"
    "  popq %r14\n"
    "  popq %r13\n"
    "  popq %r12\n"
    "  popq %rbx\n"
    "  popq %rbp\n"
    "  retq\n"
    ".size alge_fiber_switch, . - alge_fiber_switch\n");
#endif

namespace alge::fiber {

namespace {
thread_local Scheduler* g_active = nullptr;

#if defined(ALGE_FIBER_FAST_SWITCH)
/// Lay out a fresh fiber stack so that the first alge_fiber_switch into it
/// pops six zeroed registers and `ret`s into `entry`. The entry slot sits
/// at a 16-byte boundary so `entry` starts with the ABI-mandated
/// rsp % 16 == 8 of a just-called function; the zero word above it stops
/// stack walkers at the fiber boundary.
void* prepare_fast_stack(char* base, std::size_t size, void (*entry)()) {
  std::uintptr_t top = reinterpret_cast<std::uintptr_t>(base + size);
  top &= ~static_cast<std::uintptr_t>(15);
  top -= 16;
  void** slots = reinterpret_cast<void**>(top);
  slots[0] = reinterpret_cast<void*>(entry);
  slots[1] = nullptr;
  void** sp = slots - 6;
  for (int i = 0; i < 6; ++i) sp[i] = nullptr;
  return sp;
}
#endif
}  // namespace

struct Scheduler::Impl {
  ucontext_t main_ctx{};
#if defined(ALGE_FIBER_FAST_SWITCH)
  void* main_sp = nullptr;
#endif
  ReadySet ready;
};

struct Scheduler::Fiber {
  enum class State { Ready, Blocked, Done };

  // make_unique_for_overwrite: a fiber stack must not be value-initialized
  // — zeroing would touch (and fault in) every page of every stack up
  // front, where actual use only ever touches the top few.
  explicit Fiber(std::function<void()> f, std::size_t bytes)
      : fn(std::move(f)),
        stack(std::make_unique_for_overwrite<char[]>(bytes)),
        stack_bytes(bytes) {}

  /// The reason shown in deadlock diagnostics: describe(describe_arg) when
  /// the lazy block() overload was used, block_reason otherwise.
  std::string reason() const {
    return describe != nullptr ? describe(describe_arg) : block_reason;
  }

  std::function<void()> fn;
  std::unique_ptr<char[]> stack;
  std::size_t stack_bytes;
  ucontext_t ctx{};
#if defined(ALGE_FIBER_FAST_SWITCH)
  void* sp = nullptr;  ///< suspended stack pointer (fast-switch mode)
#endif
  State state = State::Ready;
  bool started = false;
  bool cancel_requested = false;
  std::string block_reason;
  BlockDescriber describe = nullptr;
  const void* describe_arg = nullptr;
  std::exception_ptr exception;
};

Scheduler::Scheduler() : impl_(std::make_unique<Impl>()) {}

Scheduler::~Scheduler() {
  // If fibers are still live (run() threw, or was never called), unwind
  // their stacks so RAII objects on them are destroyed.
  if (live_ > 0) {
    try {
      cancel_all_live();
    } catch (...) {
      // Destructors must not throw; swallow any secondary failure.
    }
  }
}

Scheduler* Scheduler::active() { return g_active; }

Scheduler::FiberId Scheduler::spawn(std::function<void()> fn,
                                    std::size_t stack_bytes) {
  ALGE_REQUIRE(fn != nullptr, "fiber function must be callable");
  ALGE_REQUIRE(stack_bytes >= 16 * 1024, "stack of %zu bytes is too small",
               stack_bytes);
  fibers_.push_back(std::make_unique<Fiber>(std::move(fn), stack_bytes));
  ++live_;
  impl_->ready.resize(fibers_.size());
  impl_->ready.insert(fibers_.size() - 1);
  return static_cast<FiberId>(fibers_.size()) - 1;
}

void Scheduler::trampoline() {
  Scheduler* sched = g_active;
  Fiber& self = *sched->fibers_[static_cast<std::size_t>(sched->current_)];
  try {
    self.fn();
  } catch (const FiberCancelled&) {
    // Normal teardown path; not an error.
  } catch (...) {
    self.exception = std::current_exception();
  }
  self.state = Fiber::State::Done;
  --sched->live_;
  // Jump back to the scheduler; this fiber never resumes.
#if defined(ALGE_FIBER_FAST_SWITCH)
  alge_fiber_switch(&self.sp, sched->impl_->main_sp);
#else
  swapcontext(&self.ctx, &sched->impl_->main_ctx);
#endif
  ALGE_CHECK(false, "resumed a finished fiber");
  std::abort();
}

void Scheduler::run() {
  ALGE_REQUIRE(!running_, "Scheduler::run() is not reentrant");
  running_ = true;
  Scheduler* prev_active = g_active;
  g_active = this;
  std::exception_ptr failure;

  std::size_t cursor = 0;
  while (live_ > 0) {
    // Round-robin: first ready fiber at or after the cursor, cyclically.
    // The ready set keeps this O(1) regardless of how many fibers are
    // blocked; the wake order is identical to the historical linear scan.
    // A wake policy (schedule exploration) substitutes its own pick among
    // the same ready fibers — still a legal cooperative interleaving.
    std::ptrdiff_t next;
    if (policy_ != nullptr && !impl_->ready.empty()) {
      const std::size_t pick = policy_->pick(impl_->ready, cursor);
      ALGE_CHECK(impl_->ready.contains(pick),
                 "wake policy picked non-ready fiber %zu", pick);
      next = static_cast<std::ptrdiff_t>(pick);
    } else {
      next = impl_->ready.next_cyclic(cursor);
    }
    if (next < 0) {
      // Every live fiber is blocked: deadlock.
      std::string msg = "deadlock: all live fibers blocked:";
      for (std::size_t i = 0; i < fibers_.size(); ++i) {
        const Fiber& f = *fibers_[i];
        if (f.state == Fiber::State::Blocked) {
          msg += strfmt("\n  fiber %zu: %s", i, f.reason().c_str());
        }
      }
      failure = std::make_exception_ptr(DeadlockError(msg));
      break;
    }
    const std::size_t idx = static_cast<std::size_t>(next);
    Fiber& f = *fibers_[idx];
    cursor = idx + 1;  // next_cyclic wraps an off-the-end cursor to 0
    current_ = static_cast<FiberId>(idx);
    if (!f.started) {
      f.started = true;
#if defined(ALGE_FIBER_FAST_SWITCH)
      f.sp = prepare_fast_stack(f.stack.get(), f.stack_bytes, &trampoline);
#else
      getcontext(&f.ctx);
      f.ctx.uc_stack.ss_sp = f.stack.get();
      f.ctx.uc_stack.ss_size = f.stack_bytes;
      f.ctx.uc_link = nullptr;
      makecontext(&f.ctx, reinterpret_cast<void (*)()>(&trampoline), 0);
#endif
    }
#if defined(ALGE_FIBER_FAST_SWITCH)
    alge_fiber_switch(&impl_->main_sp, f.sp);
#else
    swapcontext(&impl_->main_ctx, &f.ctx);
#endif
    current_ = -1;
    if (f.state == Fiber::State::Done) impl_->ready.erase(idx);
    if (f.exception && !failure) {
      failure = f.exception;
      f.exception = nullptr;
    }
    if (failure) break;
  }

  if (failure) {
    try {
      cancel_all_live();
    } catch (...) {
      // Keep the primary failure.
    }
  }
  g_active = prev_active;
  running_ = false;
  if (failure) std::rethrow_exception(failure);
}

void Scheduler::cancel_all_live() {
  // Resume every live fiber with the cancel flag set; its next (or current)
  // suspension point throws FiberCancelled, unwinding the fiber stack.
  for (std::size_t i = 0; i < fibers_.size() && live_ > 0; ++i) {
    Fiber& f = *fibers_[i];
    if (f.state == Fiber::State::Done) continue;
    f.cancel_requested = true;
    if (!f.started) {
      // Never ran: nothing on its stack; just retire it.
      f.state = Fiber::State::Done;
      impl_->ready.erase(i);
      --live_;
      continue;
    }
    Scheduler* prev_active = g_active;
    g_active = this;
    f.state = Fiber::State::Ready;
    current_ = static_cast<FiberId>(i);
#if defined(ALGE_FIBER_FAST_SWITCH)
    alge_fiber_switch(&impl_->main_sp, f.sp);
#else
    swapcontext(&impl_->main_ctx, &f.ctx);
#endif
    current_ = -1;
    g_active = prev_active;
    impl_->ready.erase(i);
    ALGE_CHECK(f.state == Fiber::State::Done,
               "cancelled fiber %zu suspended again", i);
  }
}

void Scheduler::check_cancel() const {
  const Fiber& f = *fibers_[static_cast<std::size_t>(current_)];
  if (f.cancel_requested) throw FiberCancelled();
}

void Scheduler::switch_to_scheduler() {
  Fiber& f = *fibers_[static_cast<std::size_t>(current_)];
#if defined(ALGE_FIBER_FAST_SWITCH)
  alge_fiber_switch(&f.sp, impl_->main_sp);
#else
  swapcontext(&f.ctx, &impl_->main_ctx);
#endif
  // Resumed: if the scheduler wants us dead, unwind now.
  check_cancel();
}

void Scheduler::yield() {
  ALGE_REQUIRE(current_ >= 0, "yield() outside a fiber");
  check_cancel();
  switch_to_scheduler();
}

void Scheduler::block_common(Fiber& f) {
  f.state = Fiber::State::Blocked;
  impl_->ready.erase(static_cast<std::size_t>(current_));
  switch_to_scheduler();
  // Resumed: the describer argument pointed at stack state that is only
  // guaranteed alive while blocked; drop it before running on.
  f.describe = nullptr;
  f.describe_arg = nullptr;
}

void Scheduler::block(std::string reason) {
  ALGE_REQUIRE(current_ >= 0, "block() outside a fiber");
  check_cancel();
  Fiber& f = *fibers_[static_cast<std::size_t>(current_)];
  f.block_reason = std::move(reason);
  f.describe = nullptr;
  block_common(f);
}

void Scheduler::block(BlockDescriber describe, const void* arg) {
  ALGE_REQUIRE(current_ >= 0, "block() outside a fiber");
  ALGE_REQUIRE(describe != nullptr, "block() needs a describer");
  check_cancel();
  Fiber& f = *fibers_[static_cast<std::size_t>(current_)];
  f.describe = describe;
  f.describe_arg = arg;
  block_common(f);
}

void Scheduler::unblock(FiberId id) {
  ALGE_REQUIRE(id >= 0 && static_cast<std::size_t>(id) < fibers_.size(),
               "unblock(%d): no such fiber", id);
  Fiber& f = *fibers_[static_cast<std::size_t>(id)];
  ALGE_REQUIRE(f.state != Fiber::State::Done, "unblock(%d): fiber finished",
               id);
  if (f.state == Fiber::State::Blocked) {
    f.state = Fiber::State::Ready;
    impl_->ready.insert(static_cast<std::size_t>(id));
  }
}

}  // namespace alge::fiber
