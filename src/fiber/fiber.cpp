#include "fiber/fiber.hpp"

#include <ucontext.h>

#include <exception>
#include <utility>

#include "support/common.hpp"

namespace alge::fiber {

namespace {
thread_local Scheduler* g_active = nullptr;
}  // namespace

struct Scheduler::Impl {
  ucontext_t main_ctx{};
};

struct Scheduler::Fiber {
  enum class State { Ready, Blocked, Done };

  explicit Fiber(std::function<void()> f, std::size_t stack_bytes)
      : fn(std::move(f)), stack(stack_bytes) {}

  std::function<void()> fn;
  std::vector<char> stack;
  ucontext_t ctx{};
  State state = State::Ready;
  bool started = false;
  bool cancel_requested = false;
  std::string block_reason;
  std::exception_ptr exception;
};

Scheduler::Scheduler() : impl_(std::make_unique<Impl>()) {}

Scheduler::~Scheduler() {
  // If fibers are still live (run() threw, or was never called), unwind
  // their stacks so RAII objects on them are destroyed.
  if (live_ > 0) {
    try {
      cancel_all_live();
    } catch (...) {
      // Destructors must not throw; swallow any secondary failure.
    }
  }
}

Scheduler* Scheduler::active() { return g_active; }

Scheduler::FiberId Scheduler::spawn(std::function<void()> fn,
                                    std::size_t stack_bytes) {
  ALGE_REQUIRE(fn != nullptr, "fiber function must be callable");
  ALGE_REQUIRE(stack_bytes >= 16 * 1024, "stack of %zu bytes is too small",
               stack_bytes);
  fibers_.push_back(std::make_unique<Fiber>(std::move(fn), stack_bytes));
  ++live_;
  return static_cast<FiberId>(fibers_.size()) - 1;
}

void Scheduler::trampoline() {
  Scheduler* sched = g_active;
  Fiber& self = *sched->fibers_[static_cast<std::size_t>(sched->current_)];
  try {
    self.fn();
  } catch (const FiberCancelled&) {
    // Normal teardown path; not an error.
  } catch (...) {
    self.exception = std::current_exception();
  }
  self.state = Fiber::State::Done;
  --sched->live_;
  // Jump back to the scheduler; this fiber never resumes.
  swapcontext(&self.ctx, &sched->impl_->main_ctx);
  ALGE_CHECK(false, "resumed a finished fiber");
  std::abort();
}

void Scheduler::run() {
  ALGE_REQUIRE(!running_, "Scheduler::run() is not reentrant");
  running_ = true;
  Scheduler* prev_active = g_active;
  g_active = this;
  std::exception_ptr failure;

  std::size_t cursor = 0;
  while (live_ > 0) {
    // Round-robin scan for the next ready fiber. (volatile: the value is
    // read after swapcontext, which the compiler models like setjmp.)
    volatile bool found = false;
    for (std::size_t i = 0; i < fibers_.size(); ++i) {
      const std::size_t idx = (cursor + i) % fibers_.size();
      Fiber& f = *fibers_[idx];
      if (f.state != Fiber::State::Ready) continue;
      found = true;
      cursor = (idx + 1) % fibers_.size();
      current_ = static_cast<FiberId>(idx);
      if (!f.started) {
        f.started = true;
        getcontext(&f.ctx);
        f.ctx.uc_stack.ss_sp = f.stack.data();
        f.ctx.uc_stack.ss_size = f.stack.size();
        f.ctx.uc_link = nullptr;
        makecontext(&f.ctx, reinterpret_cast<void (*)()>(&trampoline), 0);
      }
      swapcontext(&impl_->main_ctx, &f.ctx);
      current_ = -1;
      if (f.exception && !failure) {
        failure = f.exception;
        f.exception = nullptr;
      }
      if (failure) break;
      break;  // Re-scan from cursor so newly unblocked fibers are seen.
    }
    if (failure) break;
    if (!found && live_ > 0) {
      // Every live fiber is blocked: deadlock.
      std::string msg = "deadlock: all live fibers blocked:";
      for (std::size_t i = 0; i < fibers_.size(); ++i) {
        const Fiber& f = *fibers_[i];
        if (f.state == Fiber::State::Blocked) {
          msg += strfmt("\n  fiber %zu: %s", i, f.block_reason.c_str());
        }
      }
      failure = std::make_exception_ptr(DeadlockError(msg));
      break;
    }
  }

  if (failure) {
    try {
      cancel_all_live();
    } catch (...) {
      // Keep the primary failure.
    }
  }
  g_active = prev_active;
  running_ = false;
  if (failure) std::rethrow_exception(failure);
}

void Scheduler::cancel_all_live() {
  // Resume every live fiber with the cancel flag set; its next (or current)
  // suspension point throws FiberCancelled, unwinding the fiber stack.
  for (std::size_t i = 0; i < fibers_.size() && live_ > 0; ++i) {
    Fiber& f = *fibers_[i];
    if (f.state == Fiber::State::Done) continue;
    f.cancel_requested = true;
    if (!f.started) {
      // Never ran: nothing on its stack; just retire it.
      f.state = Fiber::State::Done;
      --live_;
      continue;
    }
    Scheduler* prev_active = g_active;
    g_active = this;
    f.state = Fiber::State::Ready;
    current_ = static_cast<FiberId>(i);
    swapcontext(&impl_->main_ctx, &f.ctx);
    current_ = -1;
    g_active = prev_active;
    ALGE_CHECK(f.state == Fiber::State::Done,
               "cancelled fiber %zu suspended again", i);
  }
}

void Scheduler::check_cancel() const {
  const Fiber& f = *fibers_[static_cast<std::size_t>(current_)];
  if (f.cancel_requested) throw FiberCancelled();
}

void Scheduler::switch_to_scheduler() {
  Fiber& f = *fibers_[static_cast<std::size_t>(current_)];
  swapcontext(&f.ctx, &impl_->main_ctx);
  // Resumed: if the scheduler wants us dead, unwind now.
  check_cancel();
}

void Scheduler::yield() {
  ALGE_REQUIRE(current_ >= 0, "yield() outside a fiber");
  check_cancel();
  switch_to_scheduler();
}

void Scheduler::block(std::string reason) {
  ALGE_REQUIRE(current_ >= 0, "block() outside a fiber");
  check_cancel();
  Fiber& f = *fibers_[static_cast<std::size_t>(current_)];
  f.state = Fiber::State::Blocked;
  f.block_reason = std::move(reason);
  switch_to_scheduler();
}

void Scheduler::unblock(FiberId id) {
  ALGE_REQUIRE(id >= 0 && static_cast<std::size_t>(id) < fibers_.size(),
               "unblock(%d): no such fiber", id);
  Fiber& f = *fibers_[static_cast<std::size_t>(id)];
  ALGE_REQUIRE(f.state != Fiber::State::Done, "unblock(%d): fiber finished",
               id);
  f.state = Fiber::State::Ready;
}

}  // namespace alge::fiber
