// The scheduler's ready structure: a set of fiber ids supporting O(1)
// insert/erase and O(1) "first ready id at or after a cursor, cyclically".
//
// A plain FIFO ready queue would be O(1) too, but it wakes fibers in
// unblock order, which differs from the historical round-robin scan
// whenever one fiber unblocks several others before suspending (binomial
// collectives do exactly that). Cyclic-next over a bitmap reproduces the
// scan's wake order bit-for-bit — the determinism the trace and counter
// tests rely on — while a context switch stays O(1) no matter how many
// fibers are blocked.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace alge::fiber {

/// Two-level bitmap over ids in [0, capacity): leaf words of 64 ids and one
/// summary bit per leaf word. next_cyclic touches at most two leaf words,
/// two summary words, and a linear pass over the summary array (one word up
/// to 4096 ids), so lookups are O(1) for any realistic fiber count.
class ReadySet {
 public:
  /// Grow capacity to at least `n` ids (never shrinks).
  void resize(std::size_t n) {
    if (n <= n_) return;
    n_ = n;
    leaf_.resize((n_ + 63) / 64, 0);
    summary_.resize((leaf_.size() + 63) / 64, 0);
  }

  std::size_t capacity() const { return n_; }
  std::size_t size() const { return count_; }
  bool empty() const { return count_ == 0; }

  bool contains(std::size_t i) const {
    return i < n_ && ((leaf_[i >> 6] >> (i & 63)) & 1) != 0;
  }

  void insert(std::size_t i) {
    if (contains(i)) return;
    leaf_[i >> 6] |= std::uint64_t{1} << (i & 63);
    summary_[i >> 12] |= std::uint64_t{1} << ((i >> 6) & 63);
    ++count_;
  }

  void erase(std::size_t i) {
    if (!contains(i)) return;
    leaf_[i >> 6] &= ~(std::uint64_t{1} << (i & 63));
    if (leaf_[i >> 6] == 0) {
      summary_[i >> 12] &= ~(std::uint64_t{1} << ((i >> 6) & 63));
    }
    --count_;
  }

  /// The k-th smallest member id (k < size()); -1 when out of range. Used
  /// by schedule-exploring wake policies to pick a uniformly indexed ready
  /// fiber; O(words), off the default round-robin path.
  std::ptrdiff_t select(std::size_t k) const {
    if (k >= count_) return -1;
    for (std::size_t w = 0; w < leaf_.size(); ++w) {
      std::uint64_t m = leaf_[w];
      const auto pop = static_cast<std::size_t>(std::popcount(m));
      if (k >= pop) {
        k -= pop;
        continue;
      }
      while (k > 0) {
        m &= m - 1;  // drop the lowest set bit
        --k;
      }
      return static_cast<std::ptrdiff_t>(
          (w << 6) + static_cast<std::size_t>(std::countr_zero(m)));
    }
    return -1;
  }

  /// Smallest member id >= start, wrapping past capacity-1 back to 0;
  /// -1 if the set is empty. start may equal capacity (treated as 0).
  std::ptrdiff_t next_cyclic(std::size_t start) const {
    if (count_ == 0) return -1;
    if (start >= n_) start = 0;
    const std::size_t w0 = start >> 6;
    const unsigned b0 = static_cast<unsigned>(start & 63);
    // Tail of the starting word.
    if (const std::uint64_t m = leaf_[w0] >> b0) {
      return static_cast<std::ptrdiff_t>(start) + std::countr_zero(m);
    }
    // Next non-empty leaf word strictly after w0, cyclically, then w0's
    // low bits as the final wrap-around candidate.
    const std::size_t w = next_word_cyclic(w0);
    if (w == w0) {
      const std::uint64_t m =
          b0 == 0 ? 0 : (leaf_[w0] & ((std::uint64_t{1} << b0) - 1));
      if (m == 0) return -1;
      return static_cast<std::ptrdiff_t>((w0 << 6) +
                                         static_cast<std::size_t>(
                                             std::countr_zero(m)));
    }
    return static_cast<std::ptrdiff_t>(
        (w << 6) + static_cast<std::size_t>(std::countr_zero(leaf_[w])));
  }

 private:
  /// Index of the first non-empty leaf word strictly after w0 in cyclic
  /// order; returns w0 itself when every other word is empty (the caller
  /// then inspects w0's wrapped-around low bits).
  std::size_t next_word_cyclic(std::size_t w0) const {
    const std::size_t s0 = w0 >> 6;
    const unsigned sb = static_cast<unsigned>(w0 & 63);
    // Summary bits for leaf words in block s0 strictly above w0.
    if (sb != 63) {
      if (const std::uint64_t m = summary_[s0] >> (sb + 1)) {
        return (s0 << 6) + sb + 1 +
               static_cast<std::size_t>(std::countr_zero(m));
      }
    }
    const std::size_t ns = summary_.size();
    for (std::size_t i = 1; i < ns; ++i) {
      const std::size_t si = (s0 + i) % ns;
      if (summary_[si] != 0) {
        return (si << 6) +
               static_cast<std::size_t>(std::countr_zero(summary_[si]));
      }
    }
    // Only block s0 remains: leaf words at or below w0.
    const std::uint64_t low =
        summary_[s0] & ((sb == 63) ? ~std::uint64_t{0}
                                   : ((std::uint64_t{1} << (sb + 1)) - 1));
    if (const std::uint64_t m = low) {
      const std::size_t w =
          (s0 << 6) + static_cast<std::size_t>(std::countr_zero(m));
      if (w != w0) return w;
    }
    return w0;
  }

  std::vector<std::uint64_t> leaf_;
  std::vector<std::uint64_t> summary_;
  std::size_t n_ = 0;
  std::size_t count_ = 0;
};

}  // namespace alge::fiber
