// Cooperative user-level threads (fibers) on top of POSIX ucontext.
//
// This is the execution substrate for the machine simulator: each simulated
// rank runs its program on its own fiber, so algorithms are written with
// ordinary *blocking* send/recv calls anywhere in their call stack (the way
// MPI programs are written), while the whole simulation executes
// deterministically on one OS thread.
//
// Scheduling is strictly deterministic: runnable fibers are resumed in
// round-robin order, so a given program and seed always produce the same
// interleaving, virtual times, and counter values. The runnable set is a
// cyclic bitmap (ready_set.hpp), so picking the next fiber is O(1) no
// matter how many fibers are blocked. On x86-64 the switch itself skips
// ucontext's per-switch sigprocmask syscall by swapping stacks directly
// (see fiber.cpp); sanitizer builds keep the portable ucontext path.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

namespace alge::fiber {

/// Thrown inside a fiber when the scheduler cancels it (e.g. another fiber
/// failed, or the scheduler detected deadlock). Fiber code must let this
/// propagate so stack objects are destroyed.
class FiberCancelled : public std::runtime_error {
 public:
  FiberCancelled() : std::runtime_error("fiber cancelled") {}
};

/// Thrown by Scheduler::run() when every live fiber is blocked.
class DeadlockError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class ReadySet;

/// Pluggable wake-order policy for schedule exploration (src/chaos). The
/// default (no policy) is the strictly deterministic round-robin scan; a
/// policy substitutes any other choice among the *ready* fibers — every
/// pick is a legal interleaving of the cooperative schedule, which is
/// exactly the space the differential determinism harness explores.
class WakePolicy {
 public:
  virtual ~WakePolicy() = default;
  /// Choose the next fiber to resume. `ready` is non-empty and the return
  /// value must be a member of it; `cursor` is the round-robin position
  /// (the id after the previously resumed fiber).
  virtual std::size_t pick(const ReadySet& ready, std::size_t cursor) = 0;
};

class Scheduler {
 public:
  using FiberId = int;
  static constexpr std::size_t kDefaultStackBytes = 512 * 1024;

  Scheduler();
  ~Scheduler();
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Create a fiber; it becomes runnable but does not start until run().
  FiberId spawn(std::function<void()> fn,
                std::size_t stack_bytes = kDefaultStackBytes);

  /// Drive all fibers to completion. Rethrows the first fiber exception
  /// (after cancelling and unwinding the others). Throws DeadlockError if
  /// all live fibers are blocked; the message includes each fiber's
  /// block-reason string.
  void run();

  // --- Calls made from inside a running fiber ---

  /// Reschedule: stay runnable, let other fibers progress.
  void yield();

  /// Block the current fiber until some other fiber calls unblock(). The
  /// reason string appears in deadlock diagnostics.
  void block(std::string reason);

  /// Lazy-diagnostics variant for hot blocking paths: `describe(arg)` is
  /// invoked only if deadlock is actually detected, so the common
  /// block/unblock cycle never builds a reason string. `arg` must stay
  /// valid while the fiber is blocked (it normally points into the
  /// blocking fiber's own stack, which is alive for exactly that long).
  using BlockDescriber = std::string (*)(const void* arg);
  void block(BlockDescriber describe, const void* arg);

  /// Make a blocked fiber runnable again. May be called from any fiber (or
  /// from outside run(), though that is only useful in tests).
  void unblock(FiberId id);

  /// Id of the fiber currently executing; -1 when called from the scheduler.
  FiberId current() const { return current_; }

  /// The scheduler driving the calling fiber, or nullptr outside run().
  static Scheduler* active();

  /// Install a wake-order policy (nullptr restores round-robin). The
  /// policy must outlive run(); it is consulted once per context switch.
  void set_wake_policy(WakePolicy* policy) { policy_ = policy; }
  WakePolicy* wake_policy() const { return policy_; }

  std::size_t fiber_count() const { return fibers_.size(); }
  std::size_t live_count() const { return live_; }

 private:
  struct Fiber;

  void block_common(Fiber& f);
  void switch_to_scheduler();
  [[noreturn]] static void trampoline();
  void check_cancel() const;
  void cancel_all_live();

  std::vector<std::unique_ptr<Fiber>> fibers_;
  WakePolicy* policy_ = nullptr;
  FiberId current_ = -1;
  std::size_t live_ = 0;
  bool running_ = false;
  // Opaque storage for the scheduler's own ucontext (kept out of the header
  // to avoid leaking <ucontext.h> into every include site).
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace alge::fiber
