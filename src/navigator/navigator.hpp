// Robustness-aware Pareto navigator: map the whole energy/time frontier of
// a workload on a machine family, then ask the question the paper could
// not — how much of it survives faults?
//
// The §V optimizer answers single-point questions (min E, min T, bounded
// variants). The navigator composes everything the repo has grown since:
//
//   1. closed forms to PRUNE: the analytic AlgModel (Eqs. 1/2 over the
//      Section-IV cost expressions) scores a log-grid over the
//      (p, M, m) space in microseconds per point, seeded with the exact
//      §V core::Optimizer answers so the frontier endpoints reproduce the
//      paper's optima bit-for-bit;
//   2. ghost/folded engine runs to SCORE survivors: executable candidates
//      — (q, c) grid shapes, replication counts, message caps, collective
//      implementations (tree vs ring broadcast, direct vs Bruck
//      all-to-all, Cannon vs SUMMA) — whose closed-form score lands near
//      the model frontier are simulated through engine::SweepRunner in
//      ghost mode (folded where a fold map exists) against the shared
//      result cache;
//   3. chaos to RE-SCORE: every measured frontier point is re-run under
//      seeded fault plans (1% drop / delay / reorder by default) and the
//      points that stay Pareto-optimal under every plan are reported as
//      the *robust* optima, together with where the Fig. 6/7 crossover
//      (75 GFLOPS/W by default) moves when serving energy inflates by the
//      measured fault overhead.
//
// Self-validation is built in (validate()): no reported point may beat
// the core/bounds communication lower bound, every reported point must be
// undominated, the perfect-strong-scaling region edges must equal the
// closed-form p_min/p_max bit-exactly, and the frontier's min-energy /
// min-time endpoints must equal the §V optimizer answers bit-exactly.
// tools/navigator exits nonzero when any of this fails, which is what the
// navigator-smoke CI gate runs.
//
// Everything here is deterministic: no wall clocks, no RNG beyond the
// request's chaos seed, and engine results are bit-identical across
// thread counts — so two navigate() calls with the same request produce
// byte-identical report JSON (property-tested, TSan included).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/algmodel.hpp"
#include "core/opt.hpp"
#include "core/params.hpp"
#include "engine/job.hpp"
#include "support/json.hpp"

namespace alge::navigator {

/// Optional run budgets (the §V-B..E constraint axes). Candidates that
/// violate a budget are discarded before they can reach the frontier.
struct Budgets {
  std::optional<double> t_max;
  std::optional<double> e_max;
  std::optional<double> total_power_max;
  std::optional<double> proc_power_max;

  bool any() const {
    return t_max || e_max || total_power_max || proc_power_max;
  }
};

struct NavRequest {
  // --- workload ---
  std::string model = "nbody";  ///< core::make_model name
  double f = 1.0;               ///< nbody flops per interaction
  double omega0 = core::StrassenModel::kStrassenOmega;
  double n = 1e7;               ///< analytic problem size

  // --- machine family + budgets ---
  core::MachineParams params;   ///< base machine parameters
  core::OptLimits limits;       ///< p_available, M_cap
  Budgets budgets;

  // --- analytic grid resolution ---
  int p_samples = 48;  ///< log-grid samples in p
  int m_samples = 24;  ///< log-grid samples in M per p
  /// Message-size caps (the m axis). The machine's own cap is always
  /// swept; entries here add alternatives (words).
  std::vector<double> msg_caps;

  // --- sim stage (ghost/folded engine scoring of survivors) ---
  bool simulate = false;
  int sim_n = 0;        ///< executable problem size (0 = per-model default)
  int sim_points = 8;   ///< survivors kept after closed-form pruning
  /// Bundled chaos::FaultPlan names used for the robustness re-score.
  std::vector<std::string> fault_plans = {"drop1", "delay1", "reorder1"};
  std::uint64_t chaos_seed = 1;
  std::string cache_dir;  ///< shared engine result cache ("" = in-memory)
  int threads = 1;

  // --- crossover analysis (Figs. 6/7) ---
  double crossover_target_gflops_per_watt = 75.0;
  int crossover_max_generations = 40;
};

/// One point of the analytic (closed-form) frontier.
struct ModelPoint {
  double p = 0.0;
  double M = 0.0;
  double m = 0.0;  ///< message cap in effect
  double T = 0.0;
  double E = 0.0;
  double words = 0.0;        ///< model W per processor
  double words_bound = 0.0;  ///< core/bounds floor at (n, p, M)
  /// Provenance: "optimizer:<question>" for §V-seeded points, "grid"
  /// for log-grid samples. Seeded points carry the optimizer's exact
  /// doubles, which is what makes the endpoint reproduction bit-exact.
  std::string source;
};

/// Fault re-score of one measured frontier point under one plan.
struct SimRescore {
  std::string plan;
  double makespan = 0.0;
  double energy = 0.0;
  bool still_pareto = false;  ///< undominated among faulted frontier scores
};

/// One executable (engine-scored) frontier point.
struct SimPoint {
  engine::ExperimentSpec spec;  ///< exact spec the engine ran (ghost mode)
  std::string label;            ///< e.g. "mm25d q=8 c=2"
  std::string topology;         ///< grid shape, e.g. "8x8x2"
  std::string impl;             ///< collective impl, e.g. "bcast-ring"
  int p = 0;
  double M_words = 0.0;  ///< measured per-rank memory high-water
  double model_T = 0.0;  ///< closed-form prune score
  double model_E = 0.0;
  double makespan = 0.0;  ///< measured (ghost engine)
  double energy = 0.0;
  double words_per_rank = 0.0;
  double words_bound = 0.0;  ///< 0 = bound not applicable to this alg
  /// Fold execution slots of the scoring run: the fiber count when the
  /// engine folded this point, 0 when it ran one fiber per rank.
  int fold_slots = 0;
  std::vector<SimRescore> rescored;
  bool robust = false;  ///< Pareto-optimal under every requested plan
};

struct NavReport {
  // Echo of the request essentials (everything a reader needs to
  // reproduce the report; deliberately no timestamps).
  std::string model;
  double n = 0.0;

  /// Analytic Pareto frontier, sorted by T ascending (so E descends).
  std::vector<ModelPoint> model_frontier;
  /// The §V answers the frontier endpoints must reproduce bit-exactly.
  core::RunPoint min_energy;
  core::RunPoint min_time;
  /// Perfect-strong-scaling region at the min-energy memory: p_min/p_max
  /// are the closed forms of Section III evaluated at (n, scaling_M).
  double scaling_M = 0.0;
  double scaling_p_min = 0.0;
  double scaling_p_max = 0.0;

  /// Measured (engine-scored) Pareto frontier, sorted by makespan.
  std::vector<SimPoint> measured_frontier;

  // Search statistics.
  int grid_candidates = 0;   ///< analytic points evaluated
  int sim_candidates = 0;    ///< executable configs enumerated
  int sim_pruned = 0;        ///< discarded by the closed-form prune
  int simulated = 0;         ///< engine runs for clean scoring
  int rescore_runs = 0;      ///< engine runs for fault re-scoring
  int cache_hits = 0;        ///< engine result-cache hits, both stages
  // Fold coverage of the clean scoring stage: how many scored survivors
  // took the folded fast path vs one fiber per rank. Folded + fiber =
  // scored survivors (bench/navigator_sweep tracks the split).
  int folded_scored = 0;
  int fiber_scored = 0;

  // Headline metrics (bench/navigator_sweep tracks these).
  double frontier_area = 0.0;           ///< normalized staircase area (lower
                                        ///< = frontier hugs the ideal corner)
  double measured_frontier_area = 0.0;  ///< same, over the measured frontier
  int robust_points = 0;
  double robust_fraction = 1.0;  ///< robust / measured frontier points
  /// Worst measured energy inflation E_faulted/E_clean at the min-energy
  /// measured point, over all plans (1.0 without simulation).
  double fault_energy_inflation = 1.0;
  double crossover_target = 75.0;         ///< GFLOPS/W
  double gflops_per_watt_at_opt = 0.0;    ///< at the min-energy point, gen 0
  int crossover_generations = -1;         ///< Fig. 6/7 halvings to target
  int crossover_generations_faulted = -1; ///< same, energy inflated by faults

  json::Value to_json() const;
};

/// Map the frontier. Deterministic in the request (thread count changes
/// wall-clock only); throws invalid_argument_error on bad requests.
NavReport navigate(const NavRequest& req);

/// Re-derive every self-validation claim from the report (see the header
/// comment). Returns ok=false with one message per violated claim.
struct ValidationResult {
  bool ok = true;
  std::vector<std::string> failures;
};
ValidationResult validate(const NavReport& report, const NavRequest& req);

/// Communication lower bound (words per processor) for the named model at
/// (n, p, M); 0 when core/bounds has no parallel bound for it (FFT, LU's
/// latency term). Exposed for the property tests.
double words_lower_bound(const std::string& model, double omega0, double n,
                         double p, double M);

}  // namespace alge::navigator
