#include "navigator/navigator.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <utility>

#include "algs/nbody/nbody.hpp"
#include "core/bounds.hpp"
#include "core/codesign.hpp"
#include "engine/runner.hpp"
#include "support/common.hpp"

namespace alge::navigator {

namespace {

// Same slack conventions as core::Optimizer: budgets tolerate a hair of
// overshoot so boundary optima survive, and dominance/duplicate tests use a
// relative epsilon so FP noise cannot evict an analytically-equal point.
constexpr double kSlack = 1.0 + 1e-9;
constexpr double kEps = 1e-9;

// Closed-form prune margin: an executable candidate survives unless some
// other candidate is better in BOTH time and energy by more than this
// factor. Generous on purpose — the model omits constants, the engine
// doesn't, so near-frontier candidates deserve a real run.
constexpr double kPruneMargin = 1.25;

bool within_budgets(double T, double E, double p, const Budgets& b) {
  if (b.t_max && T > *b.t_max * kSlack) return false;
  if (b.e_max && E > *b.e_max * kSlack) return false;
  if (b.total_power_max && T > 0.0 && E / T > *b.total_power_max * kSlack) {
    return false;
  }
  if (b.proc_power_max && T > 0.0 && p > 0.0 &&
      E / T / p > *b.proc_power_max * kSlack) {
    return false;
  }
  return true;
}

int active_budgets(const Budgets& b) {
  return (b.t_max ? 1 : 0) + (b.e_max ? 1 : 0) + (b.total_power_max ? 1 : 0) +
         (b.proc_power_max ? 1 : 0);
}

/// a dominates b in (T, E) when it is no worse in both (exactly — FP noise
/// in the aggressor direction must not evict analytically-tied points) and
/// meaningfully better in at least one.
bool dominates(double aT, double aE, double bT, double bE) {
  return aT <= bT && aE <= bE &&
         (aT < bT * (1.0 - kEps) || aE < bE * (1.0 - kEps));
}

struct Cand {
  ModelPoint pt;
  int priority = 1;  ///< 0 = optimizer-seeded (wins duplicate ties)
};

/// Exact skyline of one message-cap group, then a fuzzy dedupe pass that
/// prefers optimizer-seeded points over eps-identical grid points (so the
/// §V answers survive verbatim into the frontier).
std::vector<ModelPoint> pareto_group(std::vector<Cand> cands) {
  std::sort(cands.begin(), cands.end(), [](const Cand& a, const Cand& b) {
    if (a.pt.T != b.pt.T) return a.pt.T < b.pt.T;
    if (a.pt.E != b.pt.E) return a.pt.E < b.pt.E;
    if (a.priority != b.priority) return a.priority < b.priority;
    return a.pt.p < b.pt.p;
  });
  std::vector<Cand> sky;
  double best_e = std::numeric_limits<double>::infinity();
  for (const Cand& c : cands) {
    // Seeded points tolerate an eps tie so FP noise in the flat valley
    // cannot evict an optimizer answer; grid points must strictly improve.
    const bool keep =
        c.priority == 0 ? c.pt.E < best_e * (1.0 + kEps) : c.pt.E < best_e;
    if (keep) {
      sky.push_back(c);
      best_e = std::min(best_e, c.pt.E);
    }
  }
  std::vector<ModelPoint> out;
  for (const Cand& c : sky) {
    if (!out.empty()) {
      ModelPoint& prev = out.back();
      const bool same = std::abs(c.pt.T - prev.T) <= kEps * prev.T &&
                        std::abs(c.pt.E - prev.E) <= kEps * prev.E;
      if (same) {
        const bool prev_seeded = prev.source.rfind("optimizer:", 0) == 0;
        if (c.priority == 0 && !prev_seeded) {
          prev = c.pt;  // the seeded twin replaces its grid double
          continue;
        }
        // Two seeded points may legitimately coincide up to FP noise
        // (e.g. a corner meeting min-time at p_available): keep both so
        // each stays on the frontier verbatim.
        if (!(c.priority == 0 && prev_seeded)) continue;
      }
      if (dominates(prev.T, prev.E, c.pt.T, c.pt.E)) continue;
    }
    out.push_back(c.pt);
  }
  return out;
}

/// Normalized staircase area between a (T, E) frontier and its own ideal
/// corner (min T, min E): 0 when the frontier collapses to a point, grows
/// with the size of the time/energy trade-off region. Lower = better.
double staircase_area(const std::vector<std::pair<double, double>>& pts) {
  if (pts.size() < 2) return 0.0;
  const double t0 = pts.front().first;     // min T (sorted ascending)
  const double e0 = pts.back().second;     // min E (E descends along T)
  if (t0 <= 0.0 || e0 <= 0.0) return 0.0;
  double area = 0.0;
  for (std::size_t i = 0; i + 1 < pts.size(); ++i) {
    area += (pts[i + 1].first - pts[i].first) / t0 *
            (pts[i].second - e0) / e0;
  }
  return area;
}

double geom(double lo, double hi, int i, int count) {
  if (count <= 1 || hi <= lo) return lo;
  const double t = static_cast<double>(i) / static_cast<double>(count - 1);
  return lo * std::pow(hi / lo, t);
}

ModelPoint make_model_point(const core::AlgModel& model, double n, double p,
                            double M, double m, const std::string& omega_name,
                            double omega0, std::string source) {
  ModelPoint pt;
  pt.p = p;
  pt.M = M;
  pt.m = m;
  pt.words = model.costs(n, p, M, m).W;
  pt.words_bound = words_lower_bound(omega_name, omega0, n, p, M);
  pt.source = std::move(source);
  return pt;
}

/// One executable configuration awaiting a closed-form score.
struct ExecCand {
  engine::ExperimentSpec spec;
  std::string label;
  std::string topology;
  std::string impl;
  double model_M = 0.0;  ///< memory fed to the analytic model (model units)
  double bound_words = 0.0;
  double model_T = 0.0;
  double model_E = 0.0;
};

int default_sim_n(const std::string& model) {
  if (model == "strassen") return 392;  // CAPS share-aligned for k <= 3
  if (model == "nbody" || model.rfind("fft", 0) == 0) return 4096;
  return 192;  // classical-mm, lu-2.5d
}

/// Enumerate every executable candidate the harness accepts for this
/// model: topology (grid shape / replication), and collective
/// implementation axes. Deterministic order.
std::vector<ExecCand> enumerate_exec(const NavRequest& req, int n) {
  std::vector<ExecCand> out;
  const double p_avail = req.limits.p_available;
  auto push = [&](engine::ExperimentSpec spec, std::string label,
                  std::string topology, std::string impl, double model_M,
                  double bound_words) {
    spec.params = req.params;
    spec.n = n;
    spec.data_mode = sim::DataMode::kGhost;
    spec.exec_mode = sim::ExecMode::kFolded;  // transparent fiber fallback
    ExecCand c;
    c.spec = std::move(spec);
    c.label = std::move(label);
    c.topology = std::move(topology);
    c.impl = std::move(impl);
    c.model_M = model_M;
    c.bound_words = bound_words;
    out.push_back(std::move(c));
  };

  if (req.model == "classical-mm") {
    for (int q = 2; static_cast<double>(q) * q <= p_avail; q *= 2) {
      if (n % q != 0) continue;
      for (int c = 1; c <= q; c *= 2) {
        const double p = static_cast<double>(q) * q * c;
        if (q % c != 0 || p > p_avail) continue;
        const double M = 3.0 * n * n * c / p;  // A, B, C blocks
        for (const bool ring : {false, true}) {
          engine::ExperimentSpec s;
          s.alg = engine::Alg::kMm25d;
          s.q = q;
          s.c = c;
          s.ring_replication = ring;
          push(std::move(s), strfmt("mm25d q=%d c=%d %s", q, c,
                                    ring ? "ring" : "tree"),
               strfmt("%dx%dx%d", q, q, c), ring ? "bcast-ring" : "bcast-tree",
               M, core::bounds::matmul_words(n, p, M));
        }
      }
      // SUMMA: same 2D footprint, panel-broadcast pipeline instead of
      // Cannon shifts.
      const double p2 = static_cast<double>(q) * q;
      const double M2 = 3.0 * n * n / p2;
      engine::ExperimentSpec s;
      s.alg = engine::Alg::kSumma;
      s.q = q;
      push(std::move(s), strfmt("summa q=%d", q), strfmt("%dx%d", q, q),
           "summa-pipeline", M2, core::bounds::matmul_words(n, p2, M2));
    }
  } else if (req.model == "strassen") {
    for (int k = 1; k <= 10; ++k) {
      double p = 1.0;
      for (int i = 0; i < k; ++i) p *= 7.0;
      if (p > p_avail) break;
      // All-BFS share alignment: n divisible by 2^k * 7^ceil(k/2).
      long long align = 1LL << k;
      for (int i = 0; i < (k + 1) / 2; ++i) align *= 7;
      if (align == 0 || n % align != 0) continue;
      const double M = 7.0 * n * n / (4.0 * p) * 3.0;  // BFS working set
      engine::ExperimentSpec s;
      s.alg = engine::Alg::kCaps;
      s.k = k;
      push(std::move(s), strfmt("caps k=%d", k), strfmt("7^%d", k),
           "caps-bfs", M,
           core::bounds::strassen_words(n, p, M, req.omega0));
    }
  } else if (req.model == "nbody") {
    for (int p = 2; static_cast<double>(p) <= std::min(p_avail, 256.0);
         p *= 2) {
      for (int c = 1; c * c <= p; c *= 2) {
        if (p % c != 0 || n % (p / c) != 0) continue;
        const int blocks = p / c;
        const double M = static_cast<double>(n) * c / p;  // particles/rank
        // The ring circulates blocks-1 of the blocks the bound charges
        // for; fold that Ω-constant in so "measured >= bound" is exact.
        const double ring_factor =
            static_cast<double>(blocks - 1) / static_cast<double>(blocks);
        engine::ExperimentSpec s;
        s.alg = engine::Alg::kNBody;
        s.p = p;
        s.c = c;
        push(std::move(s), strfmt("nbody p=%d c=%d", p, c),
             strfmt("%d blocks x%d replicas", blocks, c), "team-ring", M,
             core::bounds::nbody_words(n, p, M) * algs::kParticleWords *
                 ring_factor);
      }
    }
  } else if (req.model == "lu-2.5d") {
    const int nb = n % 12 == 0 ? 12 : 4;
    for (int q = 2; static_cast<double>(q) * q <= p_avail; q *= 2) {
      if (n % nb != 0 || (n / nb) % q != 0) continue;
      for (int c = 1; c <= q; c *= 2) {
        const double p = static_cast<double>(q) * q * c;
        if (q % c != 0 || p > p_avail) continue;
        const double M = static_cast<double>(n) * n * c / p;
        engine::ExperimentSpec s;
        s.alg = engine::Alg::kLu;
        s.nb = nb;
        s.q = q;
        s.c = c;
        push(std::move(s), strfmt("lu q=%d c=%d", q, c),
             strfmt("%dx%dx%d", q, q, c), "block-cyclic", M,
             core::bounds::matmul_words(n, p, M) / 3.0);  // n³/3 flops
      }
    }
  } else if (req.model == "fft-naive" || req.model == "fft-tree") {
    int r_dim = 1;
    while (r_dim * r_dim < n) r_dim *= 2;
    const int c_dim = n / r_dim;
    ALGE_REQUIRE(r_dim * c_dim == n && (n & (n - 1)) == 0,
                 "fft sim_n=%d must be a power of two", n);
    const int dim_min = std::min(r_dim, c_dim);
    for (int p = 2; p <= dim_min && static_cast<double>(p) <= p_avail;
         p *= 2) {
      const double M = static_cast<double>(n) / p;
      for (const bool bruck : {false, true}) {
        engine::ExperimentSpec s;
        s.alg = engine::Alg::kFft;
        s.r_dim = r_dim;
        s.c_dim = c_dim;
        s.p = p;
        s.fft_bruck = bruck;
        push(std::move(s), strfmt("fft p=%d %s", p, bruck ? "bruck" : "direct"),
             strfmt("%dx%d", r_dim, c_dim),
             bruck ? "a2a-bruck" : "a2a-direct", M, 0.0);
      }
    }
  } else {
    throw invalid_argument_error(
        strfmt("model \"%s\" has no executable candidates",
               req.model.c_str()));
  }
  return out;
}

json::Value run_point_json(const core::RunPoint& pt) {
  json::Value o = json::Value::object();
  o.set("feasible", pt.feasible)
      .set("p", pt.p)
      .set("M", pt.M)
      .set("T", pt.T)
      .set("E", pt.E);
  return o;
}

}  // namespace

double words_lower_bound(const std::string& model, double omega0, double n,
                         double p, double M) {
  // One processor is never forced to communicate: the per-processor
  // parallel bounds of Section III assume p >= 2.
  if (p < 2.0) return 0.0;
  if (model == "classical-mm") return core::bounds::matmul_words(n, p, M);
  if (model == "strassen") {
    return core::bounds::strassen_words(n, p, M, omega0);
  }
  if (model == "nbody") return core::bounds::nbody_words(n, p, M);
  // LU does n³/3 useful flops; its W bound is the matmul bound at a third.
  if (model == "lu-2.5d") return core::bounds::matmul_words(n, p, M) / 3.0;
  return 0.0;  // FFT: no parallel per-processor bound in core/bounds
}

NavReport navigate(const NavRequest& req) {
  ALGE_REQUIRE(req.n >= 1.0 && std::isfinite(req.n), "bad n=%g", req.n);
  ALGE_REQUIRE(req.p_samples >= 2 && req.m_samples >= 1,
               "need p_samples >= 2, m_samples >= 1 (got %d, %d)",
               req.p_samples, req.m_samples);
  ALGE_REQUIRE(req.sim_points >= 1, "sim_points must be >= 1");
  req.params.validate();
  const std::unique_ptr<core::AlgModel> model =
      core::make_model(req.model, req.f, req.omega0);

  NavReport rep;
  rep.model = req.model;
  rep.n = req.n;
  rep.crossover_target = req.crossover_target_gflops_per_watt;

  // --- analytic stage: seeded + gridded candidates, one group per m ---
  std::vector<double> caps = {req.params.max_msg_words};
  for (const double m : req.msg_caps) {
    ALGE_REQUIRE(m > 0.0 && std::isfinite(m), "bad msg cap %g", m);
    if (std::find(caps.begin(), caps.end(), m) == caps.end()) {
      caps.push_back(m);
    }
  }

  for (const double m : caps) {
    core::MachineParams mp = req.params;
    mp.max_msg_words = m;
    const core::Optimizer solver(*model, req.n, mp);

    std::vector<std::pair<std::string, core::RunPoint>> seeds;
    seeds.emplace_back("min_energy", solver.minimize_energy(req.limits));
    seeds.emplace_back("min_time", solver.minimize_time(req.limits));
    if (req.budgets.t_max) {
      seeds.emplace_back(
          "min_energy_given_time",
          solver.min_energy_given_time(*req.budgets.t_max, req.limits));
    }
    if (req.budgets.e_max) {
      seeds.emplace_back(
          "min_time_given_energy",
          solver.min_time_given_energy(*req.budgets.e_max, req.limits));
    }
    if (req.budgets.total_power_max) {
      seeds.emplace_back("min_time_given_total_power",
                         solver.min_time_given_total_power(
                             *req.budgets.total_power_max, req.limits));
      seeds.emplace_back("min_energy_given_total_power",
                         solver.min_energy_given_total_power(
                             *req.budgets.total_power_max, req.limits));
    }
    if (req.budgets.proc_power_max) {
      seeds.emplace_back("min_time_given_proc_power",
                         solver.min_time_given_proc_power(
                             *req.budgets.proc_power_max, req.limits));
      seeds.emplace_back("min_energy_given_proc_power",
                         solver.min_energy_given_proc_power(
                             *req.budgets.proc_power_max, req.limits));
    }

    // Per-group §V minima (the optimizer breaks flat-valley ties toward
    // fewer processors, so the min-energy answer sits at the slow end of
    // the perfect-scaling valley; the *frontier* endpoint is its V-B/V-C
    // corner — min time among points no worse in energy, and vice versa —
    // seeded below so both reproduce optimizer answers bit-exactly).
    core::RunPoint group_min_e;
    core::RunPoint group_min_t;
    for (const auto& [question, pt] : seeds) {
      if (!pt.feasible || !within_budgets(pt.T, pt.E, pt.p, req.budgets)) {
        continue;
      }
      if (question.rfind("min_energy", 0) == 0 &&
          (!group_min_e.feasible || pt.E < group_min_e.E ||
           (pt.E == group_min_e.E && pt.p < group_min_e.p))) {
        group_min_e = pt;
      }
      if (question.rfind("min_time", 0) == 0 &&
          (!group_min_t.feasible || pt.T < group_min_t.T ||
           (pt.T == group_min_t.T && pt.p < group_min_t.p))) {
        group_min_t = pt;
      }
    }
    if (group_min_e.feasible) {
      seeds.emplace_back(
          "corner_min_time_given_energy",
          solver.min_time_given_energy(group_min_e.E, req.limits));
    }
    if (group_min_t.feasible) {
      seeds.emplace_back(
          "corner_min_energy_given_time",
          solver.min_energy_given_time(group_min_t.T, req.limits));
    }

    std::vector<Cand> cands;
    for (const auto& [question, pt] : seeds) {
      if (!pt.feasible || !within_budgets(pt.T, pt.E, pt.p, req.budgets)) {
        continue;
      }
      Cand c;
      c.pt = make_model_point(*model, req.n, pt.p, pt.M, m, req.model,
                              req.omega0, "optimizer:" + question);
      // Carry the optimizer's doubles verbatim — bit-exact reproduction.
      c.pt.T = pt.T;
      c.pt.E = pt.E;
      c.priority = 0;
      cands.push_back(std::move(c));
      ++rep.grid_candidates;
    }

    // The machine's own cap defines the headline §V answers.
    if (m == req.params.max_msg_words) {
      rep.min_energy = group_min_e;
      rep.min_time = group_min_t;
    }

    for (int i = 0; i < req.p_samples; ++i) {
      const double p = geom(1.0, req.limits.p_available, i, req.p_samples);
      const double M_lo = model->min_memory(req.n, p);
      if (M_lo > req.limits.M_cap * kSlack) continue;  // does not fit
      const double M_hi = std::max(
          M_lo, std::min(req.limits.M_cap,
                         model->max_useful_memory(req.n, p)));
      const int m_count = M_hi > M_lo * kSlack ? req.m_samples : 1;
      for (int j = 0; j < m_count; ++j) {
        const double M = geom(M_lo, M_hi, j, m_count);
        Cand c;
        c.pt = make_model_point(*model, req.n, p, M, m, req.model,
                                req.omega0, "grid");
        c.pt.T = model->time(req.n, p, M, mp);
        c.pt.E = model->energy(req.n, p, M, mp);
        ++rep.grid_candidates;
        if (!within_budgets(c.pt.T, c.pt.E, p, req.budgets)) continue;
        cands.push_back(std::move(c));
      }
    }

    std::vector<ModelPoint> frontier = pareto_group(std::move(cands));
    rep.model_frontier.insert(rep.model_frontier.end(), frontier.begin(),
                              frontier.end());
  }

  if (rep.min_energy.feasible) {
    rep.scaling_M = rep.min_energy.M;
    rep.scaling_p_min = model->p_min(req.n, rep.scaling_M);
    rep.scaling_p_max = model->p_max(req.n, rep.scaling_M);
    rep.gflops_per_watt_at_opt = core::gflops_per_watt(
        *model, req.n, rep.min_energy.p, rep.min_energy.M, req.params);
  }

  {
    std::vector<std::pair<double, double>> pts;
    for (const ModelPoint& pt : rep.model_frontier) {
      if (pt.m == req.params.max_msg_words) pts.emplace_back(pt.T, pt.E);
    }
    rep.frontier_area = staircase_area(pts);
  }

  // --- sim stage: score survivors with the ghost/folded engine ---
  double inflation = 1.0;
  if (req.simulate) {
    const int n = req.sim_n > 0 ? req.sim_n : default_sim_n(req.model);
    std::vector<ExecCand> cands = enumerate_exec(req, n);
    rep.sim_candidates = static_cast<int>(cands.size());
    for (ExecCand& c : cands) {
      // Closed-form prune score at the candidate's replication memory.
      double pp = 0.0;
      switch (c.spec.alg) {
        case engine::Alg::kMm25d:
          pp = static_cast<double>(c.spec.q) * c.spec.q * c.spec.c;
          break;
        case engine::Alg::kSumma:
          pp = static_cast<double>(c.spec.q) * c.spec.q;
          break;
        case engine::Alg::kCaps:
          pp = std::pow(7.0, c.spec.k);
          break;
        case engine::Alg::kNBody:
        case engine::Alg::kFft:
          pp = c.spec.p;
          break;
        case engine::Alg::kLu:
          pp = static_cast<double>(c.spec.q) * c.spec.q * c.spec.c;
          break;
        default:
          ALGE_CHECK(false, "unexpected exec alg");
      }
      const double model_M =
          std::max(c.model_M, model->min_memory(n, pp));
      c.model_T = model->time(n, pp, model_M, req.params);
      c.model_E = model->energy(n, pp, model_M, req.params);
    }

    // Prune: drop candidates beaten by > kPruneMargin in both objectives,
    // then thin to sim_points spread across the surviving score range.
    std::vector<ExecCand> kept;
    for (const ExecCand& c : cands) {
      bool beaten = false;
      for (const ExecCand& o : cands) {
        if (&o == &c) continue;
        if (o.model_T * kPruneMargin < c.model_T &&
            o.model_E * kPruneMargin < c.model_E) {
          beaten = true;
          break;
        }
      }
      if (!beaten) kept.push_back(c);
    }
    std::sort(kept.begin(), kept.end(), [](const ExecCand& a,
                                           const ExecCand& b) {
      if (a.model_T != b.model_T) return a.model_T < b.model_T;
      if (a.model_E != b.model_E) return a.model_E < b.model_E;
      return a.label < b.label;
    });
    if (static_cast<int>(kept.size()) > req.sim_points) {
      std::vector<ExecCand> thinned;
      const int want = req.sim_points;
      for (int i = 0; i < want; ++i) {
        const std::size_t idx =
            want == 1 ? 0
                      : static_cast<std::size_t>(i) * (kept.size() - 1) /
                            (want - 1);
        if (thinned.empty() || thinned.back().label != kept[idx].label) {
          thinned.push_back(kept[idx]);
        }
      }
      kept = std::move(thinned);
    }
    rep.sim_pruned = rep.sim_candidates - static_cast<int>(kept.size());

    engine::SweepOptions sopts;
    sopts.threads = req.threads;
    sopts.cache_dir = req.cache_dir;
    engine::SweepRunner runner(sopts);

    std::vector<engine::ExperimentSpec> specs;
    specs.reserve(kept.size());
    for (const ExecCand& c : kept) specs.push_back(c.spec);
    const std::vector<engine::ExperimentResult> results = runner.run(specs);
    rep.simulated += runner.stats().executed;
    rep.cache_hits += runner.stats().cache_hits;

    std::vector<SimPoint> scored;
    for (std::size_t i = 0; i < kept.size(); ++i) {
      SimPoint sp;
      sp.spec = kept[i].spec;
      sp.label = kept[i].label;
      sp.topology = kept[i].topology;
      sp.impl = kept[i].impl;
      sp.p = results[i].p;
      sp.M_words = static_cast<double>(results[i].totals.mem_highwater_max);
      sp.model_T = kept[i].model_T;
      sp.model_E = kept[i].model_E;
      sp.makespan = results[i].makespan;
      sp.energy = results[i].energy_total();
      sp.words_per_rank = results[i].words_per_proc();
      sp.words_bound = kept[i].bound_words;
      sp.fold_slots = results[i].fold_slots;
      if (sp.fold_slots > 0) {
        ++rep.folded_scored;
      } else {
        ++rep.fiber_scored;
      }
      scored.push_back(std::move(sp));
    }

    // Measured Pareto frontier over (makespan, energy).
    std::sort(scored.begin(), scored.end(),
              [](const SimPoint& a, const SimPoint& b) {
                if (a.makespan != b.makespan) return a.makespan < b.makespan;
                if (a.energy != b.energy) return a.energy < b.energy;
                return a.label < b.label;
              });
    for (const SimPoint& sp : scored) {
      bool dominated = false;
      for (const SimPoint& o : scored) {
        if (&o == &sp) continue;
        if (dominates(o.makespan, o.energy, sp.makespan, sp.energy)) {
          dominated = true;
          break;
        }
      }
      if (!dominated) rep.measured_frontier.push_back(sp);
    }

    {
      std::vector<std::pair<double, double>> pts;
      for (const SimPoint& sp : rep.measured_frontier) {
        pts.emplace_back(sp.makespan, sp.energy);
      }
      rep.measured_frontier_area = staircase_area(pts);
    }

    // --- chaos stage: re-score the frontier under each fault plan ---
    if (!req.fault_plans.empty() && !rep.measured_frontier.empty()) {
      std::vector<engine::ExperimentSpec> fspecs;
      for (const SimPoint& sp : rep.measured_frontier) {
        for (const std::string& plan : req.fault_plans) {
          engine::ExperimentSpec s = sp.spec;
          s.fault_plan = plan;
          s.chaos_seed = req.chaos_seed;
          fspecs.push_back(std::move(s));
        }
      }
      const std::vector<engine::ExperimentResult> fres = runner.run(fspecs);
      rep.rescore_runs += runner.stats().executed;
      rep.cache_hits += runner.stats().cache_hits;

      const std::size_t n_plans = req.fault_plans.size();
      for (std::size_t i = 0; i < rep.measured_frontier.size(); ++i) {
        for (std::size_t j = 0; j < n_plans; ++j) {
          const engine::ExperimentResult& r = fres[i * n_plans + j];
          SimRescore rs;
          rs.plan = req.fault_plans[j];
          rs.makespan = r.makespan;
          rs.energy = r.energy_total();
          rep.measured_frontier[i].rescored.push_back(std::move(rs));
        }
      }
      // A point is robust when its *faulted* score is still undominated
      // among the faulted scores of the whole frontier, for every plan.
      for (std::size_t j = 0; j < n_plans; ++j) {
        for (SimPoint& a : rep.measured_frontier) {
          bool dominated = false;
          for (const SimPoint& b : rep.measured_frontier) {
            if (&b == &a) continue;
            if (dominates(b.rescored[j].makespan, b.rescored[j].energy,
                          a.rescored[j].makespan, a.rescored[j].energy)) {
              dominated = true;
              break;
            }
          }
          a.rescored[j].still_pareto = !dominated;
        }
      }
      for (SimPoint& sp : rep.measured_frontier) {
        sp.robust = true;
        for (const SimRescore& rs : sp.rescored) {
          sp.robust = sp.robust && rs.still_pareto;
        }
        if (sp.robust) ++rep.robust_points;
      }
      rep.robust_fraction =
          static_cast<double>(rep.robust_points) /
          static_cast<double>(rep.measured_frontier.size());

      // Energy inflation at the measured min-energy point: the factor by
      // which faults move the efficiency crossover.
      const SimPoint* min_e = &rep.measured_frontier.front();
      for (const SimPoint& sp : rep.measured_frontier) {
        if (sp.energy < min_e->energy) min_e = &sp;
      }
      for (const SimRescore& rs : min_e->rescored) {
        if (min_e->energy > 0.0) {
          inflation = std::max(inflation, rs.energy / min_e->energy);
        }
      }
      rep.fault_energy_inflation = inflation;
    }
  }

  // --- crossover: Fig. 6/7 generations-to-target, clean and faulted ---
  if (rep.min_energy.feasible) {
    rep.crossover_generations = core::generations_to_target(
        *model, req.n, rep.min_energy.p, rep.min_energy.M, req.params,
        core::ParamScaleSpec::all(), rep.crossover_target,
        req.crossover_max_generations);
    // Faults inflate delivered energy by `inflation`, so hitting the same
    // delivered GFLOPS/W needs the clean efficiency target scaled up.
    rep.crossover_generations_faulted = core::generations_to_target(
        *model, req.n, rep.min_energy.p, rep.min_energy.M, req.params,
        core::ParamScaleSpec::all(), rep.crossover_target * inflation,
        req.crossover_max_generations);
  }
  return rep;
}

json::Value NavReport::to_json() const {
  json::Value o = json::Value::object();
  o.set("model", model).set("n", n);

  json::Value mf = json::Value::array();
  for (const ModelPoint& pt : model_frontier) {
    json::Value e = json::Value::object();
    e.set("p", pt.p)
        .set("M", pt.M)
        .set("m", pt.m)
        .set("T", pt.T)
        .set("E", pt.E)
        .set("words", pt.words)
        .set("words_bound", pt.words_bound)
        .set("source", pt.source);
    mf.push_back(std::move(e));
  }
  o.set("model_frontier", std::move(mf))
      .set("min_energy", run_point_json(min_energy))
      .set("min_time", run_point_json(min_time))
      .set("scaling_M", scaling_M)
      .set("scaling_p_min", scaling_p_min)
      .set("scaling_p_max", scaling_p_max);

  json::Value sf = json::Value::array();
  for (const SimPoint& sp : measured_frontier) {
    json::Value e = json::Value::object();
    e.set("label", sp.label)
        .set("topology", sp.topology)
        .set("impl", sp.impl)
        .set("p", sp.p)
        .set("M_words", sp.M_words)
        .set("model_T", sp.model_T)
        .set("model_E", sp.model_E)
        .set("makespan", sp.makespan)
        .set("energy", sp.energy)
        .set("words_per_rank", sp.words_per_rank)
        .set("words_bound", sp.words_bound)
        .set("fold_slots", sp.fold_slots)
        .set("robust", sp.robust)
        .set("spec", sp.spec.to_json());
    json::Value rs = json::Value::array();
    for (const SimRescore& r : sp.rescored) {
      json::Value re = json::Value::object();
      re.set("plan", r.plan)
          .set("makespan", r.makespan)
          .set("energy", r.energy)
          .set("still_pareto", r.still_pareto);
      rs.push_back(std::move(re));
    }
    e.set("rescored", std::move(rs));
    sf.push_back(std::move(e));
  }
  o.set("measured_frontier", std::move(sf));

  json::Value stats = json::Value::object();
  stats.set("grid_candidates", grid_candidates)
      .set("sim_candidates", sim_candidates)
      .set("sim_pruned", sim_pruned)
      .set("simulated", simulated)
      .set("rescore_runs", rescore_runs)
      .set("cache_hits", cache_hits)
      .set("folded_scored", folded_scored)
      .set("fiber_scored", fiber_scored);
  o.set("stats", std::move(stats))
      .set("frontier_area", frontier_area)
      .set("measured_frontier_area", measured_frontier_area)
      .set("robust_points", robust_points)
      .set("robust_fraction", robust_fraction)
      .set("fault_energy_inflation", fault_energy_inflation)
      .set("crossover_target", crossover_target)
      .set("gflops_per_watt_at_opt", gflops_per_watt_at_opt)
      .set("crossover_generations", crossover_generations)
      .set("crossover_generations_faulted", crossover_generations_faulted);
  return o;
}

ValidationResult validate(const NavReport& rep, const NavRequest& req) {
  ValidationResult out;
  auto fail = [&](std::string msg) {
    out.ok = false;
    out.failures.push_back(std::move(msg));
  };
  const std::unique_ptr<core::AlgModel> model =
      core::make_model(req.model, req.f, req.omega0);
  const double machine_m = req.params.max_msg_words;

  // 1. §V endpoint reproduction. The optimizer answers single constraints;
  //    with two or more simultaneous budgets the composite optimum may
  //    legitimately lie off every seeded point, so the reproduction claims
  //    are scoped: bit-exact recomputation with no budgets, never-beaten
  //    endpoints with at most one.
  const bool endpoint_claims = active_budgets(req.budgets) <= 1;
  if (!req.budgets.any() && rep.min_energy.feasible) {
    const core::Optimizer solver(*model, rep.n, req.params);
    auto same = [](const core::RunPoint& a, const core::RunPoint& b) {
      return a.p == b.p && a.M == b.M && a.T == b.T && a.E == b.E;
    };
    const core::RunPoint want_e = solver.minimize_energy(req.limits);
    const core::RunPoint want_t = solver.minimize_time(req.limits);
    if (!same(rep.min_energy, want_e)) {
      fail("reported min-energy point is not the optimizer answer "
           "bit-exactly");
    }
    if (!same(rep.min_time, want_t)) {
      fail("reported min-time point is not the optimizer answer "
           "bit-exactly");
    }
    // The frontier endpoints are the V-B/V-C corners of those optima;
    // recompute them and demand verbatim membership.
    const core::RunPoint corner_e =
        solver.min_time_given_energy(want_e.E, req.limits);
    const core::RunPoint corner_t =
        solver.min_energy_given_time(want_t.T, req.limits);
    bool found_e = !corner_e.feasible;
    bool found_t = !corner_t.feasible;
    for (const ModelPoint& pt : rep.model_frontier) {
      if (pt.m != machine_m) continue;
      if (pt.p == corner_e.p && pt.M == corner_e.M && pt.T == corner_e.T &&
          pt.E == corner_e.E) {
        found_e = true;
      }
      if (pt.p == corner_t.p && pt.M == corner_t.M && pt.T == corner_t.T &&
          pt.E == corner_t.E) {
        found_t = true;
      }
    }
    if (!found_e) {
      fail("min-time-given-energy corner is not on the frontier "
           "bit-exactly");
    }
    if (!found_t) {
      fail("min-energy-given-time corner is not on the frontier "
           "bit-exactly");
    }
  }
  if (endpoint_claims && rep.min_energy.feasible) {
    for (const ModelPoint& pt : rep.model_frontier) {
      if (pt.m != machine_m) continue;
      if (pt.E < rep.min_energy.E * (1.0 - kEps)) {
        fail(strfmt("frontier point p=%g beats the optimizer min-energy "
                    "answer (E=%g < %g)",
                    pt.p, pt.E, rep.min_energy.E));
      }
      if (pt.T < rep.min_time.T * (1.0 - kEps)) {
        fail(strfmt("frontier point p=%g beats the optimizer min-time "
                    "answer (T=%g < %g)",
                    pt.p, pt.T, rep.min_time.T));
      }
    }
  }

  // 2. Undominated within each message-cap group.
  for (std::size_t i = 0; i < rep.model_frontier.size(); ++i) {
    const ModelPoint& a = rep.model_frontier[i];
    for (std::size_t j = 0; j < rep.model_frontier.size(); ++j) {
      const ModelPoint& b = rep.model_frontier[j];
      if (i == j || a.m != b.m) continue;
      if (dominates(a.T, a.E, b.T, b.E)) {
        fail(strfmt("frontier point (p=%g, M=%g, m=%g) is dominated by "
                    "(p=%g, M=%g)",
                    b.p, b.M, b.m, a.p, a.M));
      }
    }
  }

  // 3. No model point may beat the communication lower bound.
  for (const ModelPoint& pt : rep.model_frontier) {
    const double bound =
        words_lower_bound(req.model, req.omega0, rep.n, pt.p, pt.M);
    if (pt.words < bound * (1.0 - kEps)) {
      fail(strfmt("frontier point (p=%g, M=%g) beats the lower bound: "
                  "W=%g < %g",
                  pt.p, pt.M, pt.words, bound));
    }
  }

  // 4. Perfect-strong-scaling region edges match the closed forms
  //    bit-exactly (they are evaluated from the same expressions).
  if (rep.min_energy.feasible) {
    if (rep.scaling_M != rep.min_energy.M) {
      fail("scaling_M does not equal the min-energy memory");
    }
    if (rep.scaling_p_min != model->p_min(rep.n, rep.scaling_M) ||
        rep.scaling_p_max != model->p_max(rep.n, rep.scaling_M)) {
      fail(strfmt("scaling region [%g, %g] does not match the closed forms "
                  "[%g, %g] bit-exactly",
                  rep.scaling_p_min, rep.scaling_p_max,
                  model->p_min(rep.n, rep.scaling_M),
                  model->p_max(rep.n, rep.scaling_M)));
    }
  }

  // 5. Measured frontier: undominated, above its bound, fully re-scored.
  for (std::size_t i = 0; i < rep.measured_frontier.size(); ++i) {
    const SimPoint& a = rep.measured_frontier[i];
    for (std::size_t j = 0; j < rep.measured_frontier.size(); ++j) {
      if (i == j) continue;
      const SimPoint& b = rep.measured_frontier[j];
      if (dominates(b.makespan, b.energy, a.makespan, a.energy)) {
        fail(strfmt("measured point %s is dominated by %s", a.label.c_str(),
                    b.label.c_str()));
      }
    }
    if (a.words_bound > 0.0 && a.p >= 2 &&
        a.words_per_rank < a.words_bound * (1.0 - kEps)) {
      fail(strfmt("measured point %s beats its lower bound: W/rank=%g < %g",
                  a.label.c_str(), a.words_per_rank, a.words_bound));
    }
    if (req.simulate && !req.fault_plans.empty() &&
        a.rescored.size() != req.fault_plans.size()) {
      fail(strfmt("measured point %s is missing fault re-scores",
                  a.label.c_str()));
    }
  }
  if (req.simulate && !req.fault_plans.empty() &&
      !rep.measured_frontier.empty() && rep.robust_points == 0) {
    fail("no measured frontier point is robust under all fault plans");
  }
  return out;
}

}  // namespace alge::navigator
