#include "topo/grid.hpp"

#include <cmath>

#include "support/common.hpp"

namespace alge::topo {

int exact_isqrt(int p) {
  if (p < 0) return -1;
  const int r = static_cast<int>(std::lround(std::sqrt(static_cast<double>(p))));
  for (int cand = std::max(0, r - 1); cand <= r + 1; ++cand) {
    if (cand * cand == p) return cand;
  }
  return -1;
}

int exact_icbrt(int p) {
  if (p < 0) return -1;
  const int r = static_cast<int>(std::lround(std::cbrt(static_cast<double>(p))));
  for (int cand = std::max(0, r - 1); cand <= r + 1; ++cand) {
    if (cand * cand * cand == p) return cand;
  }
  return -1;
}

// --- Ring ---

Ring::Ring(int p) : p_(p) { ALGE_REQUIRE(p >= 1, "ring needs p >= 1"); }

int Ring::right_of(int rank, int steps) const {
  ALGE_REQUIRE(rank >= 0 && rank < p_, "rank %d out of range", rank);
  const int s = ((steps % p_) + p_) % p_;
  return (rank + s) % p_;
}

int Ring::left_of(int rank, int steps) const { return right_of(rank, -steps); }

// --- Grid2D ---

Grid2D::Grid2D(int q) : q_(q) { ALGE_REQUIRE(q >= 1, "grid needs q >= 1"); }

Grid2D Grid2D::for_p(int p) {
  const int q = exact_isqrt(p);
  ALGE_REQUIRE(q > 0, "p=%d is not a perfect square", p);
  return Grid2D(q);
}

int Grid2D::rank_of(int i, int j) const {
  ALGE_REQUIRE(i >= 0 && i < q_ && j >= 0 && j < q_,
               "grid coordinate (%d,%d) out of range for q=%d", i, j, q_);
  return i * q_ + j;
}

int Grid2D::row_of(int rank) const {
  ALGE_REQUIRE(rank >= 0 && rank < p(), "rank %d out of range", rank);
  return rank / q_;
}

int Grid2D::col_of(int rank) const {
  ALGE_REQUIRE(rank >= 0 && rank < p(), "rank %d out of range", rank);
  return rank % q_;
}

Group Grid2D::row_group(int i) const {
  return Group::strided(rank_of(i, 0), q_, 1);
}

Group Grid2D::col_group(int j) const {
  return Group::strided(rank_of(0, j), q_, q_);
}

// --- Grid3D ---

Grid3D::Grid3D(int q, int c) : q_(q), c_(c) {
  ALGE_REQUIRE(q >= 1 && c >= 1, "grid needs q,c >= 1");
}

Grid3D Grid3D::for_p(int p, int c) {
  ALGE_REQUIRE(c >= 1 && p % c == 0, "c=%d must divide p=%d", c, p);
  const int q = exact_isqrt(p / c);
  ALGE_REQUIRE(q > 0, "p/c=%d is not a perfect square", p / c);
  return Grid3D(q, c);
}

int Grid3D::rank_of(int i, int j, int l) const {
  ALGE_REQUIRE(i >= 0 && i < q_ && j >= 0 && j < q_ && l >= 0 && l < c_,
               "grid coordinate (%d,%d,%d) out of range for q=%d c=%d", i, j,
               l, q_, c_);
  return l * q_ * q_ + i * q_ + j;
}

int Grid3D::row_of(int rank) const {
  ALGE_REQUIRE(rank >= 0 && rank < p(), "rank %d out of range", rank);
  return (rank % (q_ * q_)) / q_;
}

int Grid3D::col_of(int rank) const {
  ALGE_REQUIRE(rank >= 0 && rank < p(), "rank %d out of range", rank);
  return rank % q_;
}

int Grid3D::layer_of(int rank) const {
  ALGE_REQUIRE(rank >= 0 && rank < p(), "rank %d out of range", rank);
  return rank / (q_ * q_);
}

Group Grid3D::row_group(int i, int l) const {
  return Group::strided(rank_of(i, 0, l), q_, 1);
}

Group Grid3D::col_group(int j, int l) const {
  return Group::strided(rank_of(0, j, l), q_, q_);
}

Group Grid3D::depth_group(int i, int j) const {
  return Group::strided(rank_of(i, j, 0), c_, q_ * q_);
}

Group Grid3D::layer_group(int l) const {
  return Group::strided(rank_of(0, 0, l), q_ * q_, 1);
}

// --- TeamGrid ---

TeamGrid::TeamGrid(int p, int c) : rows_(c), cols_(p / c) {
  ALGE_REQUIRE(c >= 1 && p >= 1 && p % c == 0,
               "replication factor c=%d must divide p=%d", c, p);
}

int TeamGrid::rank_of(int i, int j) const {
  ALGE_REQUIRE(i >= 0 && i < rows_ && j >= 0 && j < cols_,
               "team coordinate (%d,%d) out of range", i, j);
  return i * cols_ + j;
}

int TeamGrid::row_of(int rank) const {
  ALGE_REQUIRE(rank >= 0 && rank < p(), "rank %d out of range", rank);
  return rank / cols_;
}

int TeamGrid::col_of(int rank) const {
  ALGE_REQUIRE(rank >= 0 && rank < p(), "rank %d out of range", rank);
  return rank % cols_;
}

Group TeamGrid::team_group(int j) const {
  return Group::strided(rank_of(0, j), rows_, cols_);
}

Group TeamGrid::row_group(int i) const {
  return Group::strided(rank_of(i, 0), cols_, 1);
}

}  // namespace alge::topo
