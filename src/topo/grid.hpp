// Process-grid topologies: rank <-> coordinate maps and the row / column /
// depth groups the algorithms communicate within.
//
//  Ring    — 1D, p ranks (n-body baseline, allgather rings)
//  Grid2D  — √p × √p (Cannon, SUMMA, 2D LU)
//  Grid3D  — (p/c)^½ × (p/c)^½ × c cuboid of the 2.5D algorithms; c = q
//            gives the 3D cube limit, c = 1 degenerates to Grid2D
//  TeamGrid— c × (p/c) layout of the replicating n-body algorithm
#pragma once

#include "sim/group.hpp"

namespace alge::topo {

using sim::Group;

class Ring {
 public:
  explicit Ring(int p);
  int p() const { return p_; }
  int right_of(int rank, int steps = 1) const;
  int left_of(int rank, int steps = 1) const;
  Group all() const { return Group::world(p_); }

 private:
  int p_;
};

/// q×q grid, row-major rank numbering: rank = i*q + j.
class Grid2D {
 public:
  explicit Grid2D(int q);
  /// Builds the grid for p ranks; requires p to be a perfect square.
  static Grid2D for_p(int p);

  int q() const { return q_; }
  int p() const { return q_ * q_; }
  int rank_of(int i, int j) const;
  int row_of(int rank) const;
  int col_of(int rank) const;
  Group row_group(int i) const;   ///< ranks (i, 0..q-1)
  Group col_group(int j) const;   ///< ranks (0..q-1, j)

 private:
  int q_;
};

/// q×q×c cuboid: rank = l*q*q + i*q + j (layer-major, so layer 0 is the
/// front face that initially owns the data in the 2.5D algorithms).
class Grid3D {
 public:
  Grid3D(int q, int c);
  /// p = q²c with the replication factor c given; requires p/c square.
  static Grid3D for_p(int p, int c);

  int q() const { return q_; }
  int c() const { return c_; }
  int p() const { return q_ * q_ * c_; }
  int rank_of(int i, int j, int l) const;
  int row_of(int rank) const;    ///< i
  int col_of(int rank) const;    ///< j
  int layer_of(int rank) const;  ///< l
  Group row_group(int i, int l) const;    ///< vary j
  Group col_group(int j, int l) const;    ///< vary i
  Group depth_group(int i, int j) const;  ///< vary l
  Group layer_group(int l) const;         ///< all q² ranks of layer l

 private:
  int q_;
  int c_;
};

/// c rows × (p/c) columns for the replicating n-body algorithm:
/// rank = i*(p/c) + j; column j is the team replicating particle block j.
class TeamGrid {
 public:
  TeamGrid(int p, int c);
  int p() const { return rows_ * cols_; }
  int rows() const { return rows_; }  ///< c
  int cols() const { return cols_; }  ///< p / c
  int rank_of(int i, int j) const;
  int row_of(int rank) const;
  int col_of(int rank) const;
  Group team_group(int j) const;  ///< the c replicas of block j (vary i)
  Group row_group(int i) const;   ///< one replica per block (vary j)

 private:
  int rows_;
  int cols_;
};

/// Exact integer square root if p is a perfect square, else -1.
int exact_isqrt(int p);

/// Exact integer cube root if p is a perfect cube, else -1.
int exact_icbrt(int p);

}  // namespace alge::topo
