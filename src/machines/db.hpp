// Machine parameter database: the dual-socket Sandy Bridge "Jaketown" case
// study of Section VI (Table I) and the processor survey of Table II.
//
// Table II's derived columns (peak FP, γt, γe, GFLOPS/W) are *computed* from
// the datasheet fields here and unit-tested against the values printed in
// the paper, which documents the derivation the authors used:
//   peak = freq · cores · simd · issue_factor   (+ the on-package GPU part
//          for the Ivy Bridge rows),
//   γt = 1 / peak, γe = TDP / peak, GFLOPS/W = peak / TDP.
#pragma once

#include <string>
#include <vector>

#include "core/params.hpp"
#include "core/twolevel.hpp"

namespace alge::machines {

/// One row of Table II.
struct ProcessorSpec {
  std::string name;
  double freq_ghz = 0.0;
  int cores = 0;
  int simd_width = 0;           ///< single-precision SIMD lanes
  double issue_factor = 2.0;    ///< flops per lane per cycle (FMA/dual-issue)
  double tdp_watts = 0.0;
  // Optional on-package GPU (the Ivy Bridge rows fold its throughput in).
  double gpu_freq_ghz = 0.0;
  int gpu_cores = 0;
  int gpu_simd = 0;
  double gpu_issue_factor = 1.0;

  double peak_gflops() const;
  double gamma_t() const;          ///< s/flop = 1e-9 / peak_gflops
  double gamma_e() const;          ///< J/flop = TDP / (peak · 1e9)
  double gflops_per_watt() const;  ///< peak / TDP
};

/// The 11 processors of Table II, in paper order.
const std::vector<ProcessorSpec>& table2_processors();

/// Section VI case study: dual-socket Intel Sandy Bridge 2687W (Jaketown).
struct CaseStudyMachine {
  // Datasheet fields (Table I, upper half).
  double core_freq_ghz = 3.1;
  int simd_width = 8;
  int data_width_bytes = 4;
  int cores_per_node = 8;
  double peak_gflops = 396.8;
  double M_words = 17179869184.0;  ///< memory per socket, 4-byte words
  double m_words = 17179869184.0;  ///< max message size
  double chip_tdp_watts = 150.0;
  double link_gbytes_per_s = 25.6;  ///< QPI; the paper's "Gb/s" is GB/s
  double link_latency_s = 6.0e-8;
  double link_active_power_w = 2.15;
  double link_idle_power_w = 0.0;
  int dimms_per_socket = 8;
  double dimm_power_w = 3.1;
  int sockets = 2;  ///< "processors" in the case study (p = 2)

  /// The paper's published model parameters (Table I, lower half). These
  /// are what Figures 6 and 7 are computed from.
  core::MachineParams params() const;

  // Re-derivations from the datasheet fields, for the accuracy-evaluation
  // table (EXPERIMENTS.md discusses where they differ from the published
  // values).
  double derived_gamma_t() const;  ///< 1 / peak
  double derived_gamma_e() const;  ///< TDP / peak
  double derived_beta_t() const;   ///< word_bytes / link bandwidth
  double derived_beta_e() const;   ///< βt · link active power
  double derived_delta_e() const;  ///< DIMM power per socket / (M/4) — the
                                   ///< divisor reproduces the published value

  /// Two-level view of the same machine (Fig. 2): 2 nodes (sockets) of 8
  /// cores; QPI is the inter-node link, the shared L3/ring the intra-node
  /// one (intra-node costs approximated as free next to QPI).
  core::TwoLevelParams two_level() const;
};

}  // namespace alge::machines
