#include "machines/db.hpp"

#include "support/common.hpp"

namespace alge::machines {

double ProcessorSpec::peak_gflops() const {
  const double cpu = freq_ghz * cores * simd_width * issue_factor;
  const double gpu = gpu_freq_ghz * gpu_cores * gpu_simd * gpu_issue_factor;
  return cpu + gpu;
}

double ProcessorSpec::gamma_t() const { return 1.0 / (peak_gflops() * 1e9); }

double ProcessorSpec::gamma_e() const {
  return tdp_watts / (peak_gflops() * 1e9);
}

double ProcessorSpec::gflops_per_watt() const {
  return peak_gflops() / tdp_watts;
}

const std::vector<ProcessorSpec>& table2_processors() {
  static const std::vector<ProcessorSpec> rows = [] {
    std::vector<ProcessorSpec> v;
    // name, freq, cores, simd, issue, TDP, [gpu: freq, cores, simd, issue]
    v.push_back({"Intel Sandy Bridge 2687W", 3.1, 8, 8, 2.0, 150.0});
    v.push_back(
        {"Intel Ivy Bridge 3770K", 3.5, 4, 8, 2.0, 77.0, 0.65, 16, 8, 1.0});
    v.push_back(
        {"Intel Ivy Bridge 3770T", 2.5, 4, 8, 2.0, 45.0, 0.65, 16, 8, 1.0});
    v.push_back({"Intel Westmere-EX E7-8870", 2.4, 10, 4, 2.0, 130.0});
    v.push_back({"Intel Beckton X7560", 2.26, 8, 4, 2.0, 130.0});
    v.push_back({"Intel Atom D2500", 1.86, 2, 4, 2.0, 10.0});
    v.push_back({"Intel Atom N2800", 1.86, 2, 4, 2.0, 6.5});
    v.push_back({"Nvidia GTX480", 1.401, 480, 1, 2.0, 250.0});
    v.push_back({"Nvidia GTX590", 1.215, 1024, 1, 2.0, 365.0});
    v.push_back({"ARM Cortex A9 (2GHz)", 2.0, 2, 2, 1.0, 1.9});
    v.push_back({"ARM Cortex A9 (0.8GHz)", 0.8, 2, 2, 1.0, 0.5});
    return v;
  }();
  return rows;
}

core::MachineParams CaseStudyMachine::params() const {
  core::MachineParams mp;
  // Published values, Table I lower half.
  mp.gamma_e = 3.78024e-10;
  mp.beta_e = 3.78024e-10;
  mp.alpha_e = 0.0;
  mp.delta_e = 5.7742e-9;
  mp.eps_e = 0.0;
  mp.gamma_t = 2.5202e-12;
  mp.beta_t = 1.56e-10;
  mp.alpha_t = 6.00e-8;
  mp.mem_words = M_words;
  mp.max_msg_words = m_words;
  return mp;
}

double CaseStudyMachine::derived_gamma_t() const {
  return 1.0 / (peak_gflops * 1e9);
}

double CaseStudyMachine::derived_gamma_e() const {
  return chip_tdp_watts / (peak_gflops * 1e9);
}

double CaseStudyMachine::derived_beta_t() const {
  // 25.6 GB/s QPI, 4-byte words.
  return data_width_bytes / (link_gbytes_per_s * 1e9);
}

double CaseStudyMachine::derived_beta_e() const {
  // "the time to send a message multiplied by the link power and then
  // divided by the message length" = βt · P_link.
  return derived_beta_t() * link_active_power_w;
}

double CaseStudyMachine::derived_delta_e() const {
  // Published δe = 5.7742e-9 J/word/s equals the per-socket DIMM power
  // divided by M/4 (the byte count read as a word count); we reproduce the
  // published number and note the discrepancy in EXPERIMENTS.md.
  const double socket_dimm_watts = dimms_per_socket * dimm_power_w;
  return socket_dimm_watts / (M_words / 4.0);
}

core::TwoLevelParams CaseStudyMachine::two_level() const {
  const core::MachineParams one = params();
  core::TwoLevelParams tp;
  tp.p_nodes = sockets;
  tp.p_cores = cores_per_node;
  tp.mem_node = M_words;
  // Per-core share of the 20 MB L3, in 4-byte words.
  tp.mem_core = 20.0 * 1024 * 1024 / 4 / cores_per_node;
  tp.gamma_t = one.gamma_t * cores_per_node;  // per-core flop rate
  tp.beta_t_node = one.beta_t;
  tp.alpha_t_node = one.alpha_t;
  tp.msg_node = m_words;
  // The on-die ring is roughly an order of magnitude faster than QPI.
  tp.beta_t_core = one.beta_t / 10.0;
  tp.alpha_t_core = one.alpha_t / 100.0;
  tp.msg_core = m_words;
  tp.gamma_e = one.gamma_e;
  tp.beta_e_node = one.beta_e;
  tp.alpha_e_node = one.alpha_e;
  tp.beta_e_core = one.beta_e / 10.0;
  tp.alpha_e_core = 0.0;
  tp.delta_e_node = one.delta_e;
  tp.delta_e_core = one.delta_e;  // same process technology
  tp.eps_e = one.eps_e;
  return tp;
}

}  // namespace alge::machines
