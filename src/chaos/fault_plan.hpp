// Seeded fault plans: named, reproducible mixes of message-level faults
// (delay, drop, duplicate, reorder) and rank pauses, realized as a
// sim::FaultInjector the simulator consults on every message.
//
// Determinism is the whole design: every decision is a pure function of
// (plan seed, flow identity, per-flow sequence number) through a splitmix64
// hash — no sequential RNG state. Because each rank issues its sends in
// fixed program order, the per-flow sequence numbers are identical under
// any fiber wake order, so a plan injects the *same* faults whether the
// scheduler runs round-robin or a chaos::SchedulePermuter. That is what
// lets the differential harness (differential.hpp) compare faulted runs
// across schedules and attribute every delta to the plan, not the
// interleaving.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "sim/fault.hpp"
#include "support/flat_map.hpp"

namespace alge::chaos {

/// Per-message fault probabilities and magnitudes. Magnitudes are in units
/// of the machine's αt (one message latency), so a plan is meaningful on
/// any MachineParams without retuning.
struct FaultPlanConfig {
  std::string name = "none";
  double p_delay = 0.0;  ///< chance of extra in-flight latency per message
  double delay_alphas = 8.0;  ///< max injected delay, in units of αt
  double p_drop = 0.0;  ///< chance a message is lost at least once
  int max_drops = 2;    ///< losses per afflicted message: 1..max_drops
  double p_duplicate = 0.0;  ///< chance of one spurious paid copy
  double p_reorder = 0.0;    ///< chance a message overtakes its predecessor
  double reorder_window_alphas = 4.0;  ///< fallback delay when none queued
  double p_pause = 0.0;      ///< per comm event: chance the rank stalls
  double pause_alphas = 16.0;  ///< max stall length, in units of αt

  void validate() const;
};

/// Counts of injected faults, for reporting and tests.
struct FaultStats {
  std::uint64_t delays = 0;
  std::uint64_t drops = 0;       ///< messages that lost >= 1 transmission
  std::uint64_t duplicates = 0;
  std::uint64_t reorders = 0;
  std::uint64_t pauses = 0;
  std::uint64_t total() const {
    return delays + drops + duplicates + reorders + pauses;
  }
  /// Injection decisions are pure in (seed, flow, seq), and flows carry
  /// message sizes — so ghost and full runs must inject identical faults.
  bool operator==(const FaultStats& o) const = default;
};

/// sim::FaultInjector realizing a FaultPlanConfig under one seed. One
/// instance per Machine (single-thread confinement, see sim/machine.hpp).
class PlanInjector final : public sim::FaultInjector {
 public:
  PlanInjector(FaultPlanConfig cfg, std::uint64_t seed, double alpha_t);

  sim::FaultDecision on_message(const sim::FaultSite& site) override;
  double pause_before_event(int rank, std::uint64_t k) override;

  const FaultStats& stats() const { return stats_; }

 private:
  /// Uniform [0, 1) keyed purely by (seed, a, b, c, salt).
  double u(std::uint64_t a, std::uint64_t b, std::uint64_t c,
           std::uint64_t salt) const;

  FaultPlanConfig cfg_;
  std::uint64_t seed_;
  double alpha_t_;
  /// Per-(src, dst, tag) message counter: the flow sequence number that
  /// keys decisions. Program order fixes it independent of the schedule.
  FlatU64Map<std::uint64_t> flow_seq_;
  FaultStats stats_;
};

/// A named fault plan; value type, cheap to copy. Default-constructed
/// plans are inert (the fault-free baseline).
class FaultPlan {
 public:
  FaultPlan() = default;
  explicit FaultPlan(FaultPlanConfig cfg);

  /// Look up a bundled plan by name; throws invalid_argument_error for
  /// unknown names. Bundled: none, delay, drop, duplicate, reorder,
  /// pause, mixed.
  static FaultPlan bundled(std::string_view name);
  static const std::vector<std::string>& bundled_names();

  /// True when no fault has nonzero probability (e.g. the "none" plan).
  bool inert() const;
  const FaultPlanConfig& config() const { return cfg_; }
  const std::string& name() const { return cfg_.name; }

  /// Build the injector for one Machine. `alpha_t` scales the plan's
  /// magnitude knobs to the machine's latency unit.
  std::shared_ptr<PlanInjector> make_injector(std::uint64_t seed,
                                              double alpha_t) const;

 private:
  FaultPlanConfig cfg_;
};

}  // namespace alge::chaos
