#include "chaos/fault_plan.hpp"

#include <cmath>

#include "support/common.hpp"

namespace alge::chaos {

namespace {

/// splitmix64 finalizer: the standard 64-bit avalanche mix.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

void FaultPlanConfig::validate() const {
  for (double pr : {p_delay, p_drop, p_duplicate, p_reorder, p_pause}) {
    ALGE_REQUIRE(pr >= 0.0 && pr <= 1.0,
                 "fault probability %g outside [0, 1]", pr);
  }
  ALGE_REQUIRE(max_drops >= 1, "max_drops must be >= 1");
  ALGE_REQUIRE(delay_alphas >= 0.0 && reorder_window_alphas >= 0.0 &&
                   pause_alphas >= 0.0,
               "fault magnitudes must be non-negative");
}

PlanInjector::PlanInjector(FaultPlanConfig cfg, std::uint64_t seed,
                           double alpha_t)
    : cfg_(std::move(cfg)), seed_(seed), alpha_t_(alpha_t) {
  cfg_.validate();
  ALGE_REQUIRE(alpha_t_ > 0.0, "alpha_t must be positive");
}

double PlanInjector::u(std::uint64_t a, std::uint64_t b, std::uint64_t c,
                       std::uint64_t salt) const {
  std::uint64_t h = mix64(seed_ ^ 0xa1cebeefULL);
  h = mix64(h ^ a);
  h = mix64(h ^ b);
  h = mix64(h ^ c);
  h = mix64(h ^ salt);
  // 53 high bits -> [0, 1), the usual double construction.
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

sim::FaultDecision PlanInjector::on_message(const sim::FaultSite& site) {
  // Flow sequence number: how many messages this (src, dst, tag) flow has
  // carried so far. Keyed by a mixed packing so distinct flows cannot
  // alias; the counter itself is schedule-independent (program order).
  const std::uint64_t flow_key = mix64(
      mix64((static_cast<std::uint64_t>(static_cast<std::uint32_t>(site.src))
             << 32) |
            static_cast<std::uint32_t>(site.dst)) ^
      static_cast<std::uint64_t>(static_cast<std::uint32_t>(site.tag)));
  const std::uint64_t n = flow_seq_.find_or_emplace(flow_key, 0)++;

  const std::uint64_t a = flow_key;
  const std::uint64_t b =
      static_cast<std::uint64_t>(static_cast<std::uint32_t>(site.tag));
  sim::FaultDecision d;
  if (cfg_.p_drop > 0.0 && u(a, b, n, 1) < cfg_.p_drop) {
    // Uniform in [1, max_drops]: u < 1 keeps the floor below max_drops.
    d.drops = 1 + static_cast<int>(u(a, b, n, 2) *
                                   static_cast<double>(cfg_.max_drops));
    ++stats_.drops;
  }
  if (cfg_.p_duplicate > 0.0 && u(a, b, n, 3) < cfg_.p_duplicate) {
    d.duplicates = 1;
    ++stats_.duplicates;
  }
  if (cfg_.p_delay > 0.0 && u(a, b, n, 4) < cfg_.p_delay) {
    d.delay = u(a, b, n, 5) * cfg_.delay_alphas * alpha_t_;
    ++stats_.delays;
  }
  if (cfg_.p_reorder > 0.0 && u(a, b, n, 6) < cfg_.p_reorder) {
    d.overtake = true;
    d.reorder_window = cfg_.reorder_window_alphas * alpha_t_;
    ++stats_.reorders;
  }
  return d;
}

double PlanInjector::pause_before_event(int rank, std::uint64_t k) {
  if (cfg_.p_pause <= 0.0) return 0.0;
  const auto r = static_cast<std::uint64_t>(static_cast<std::uint32_t>(rank));
  if (u(r, k, 0, 8) >= cfg_.p_pause) return 0.0;
  ++stats_.pauses;
  // (0.5, 1.0]·pause_alphas·αt: a pause is never degenerate.
  return (0.5 + 0.5 * u(r, k, 0, 9)) * cfg_.pause_alphas * alpha_t_;
}

FaultPlan::FaultPlan(FaultPlanConfig cfg) : cfg_(std::move(cfg)) {
  cfg_.validate();
}

bool FaultPlan::inert() const {
  return cfg_.p_delay <= 0.0 && cfg_.p_drop <= 0.0 &&
         cfg_.p_duplicate <= 0.0 && cfg_.p_reorder <= 0.0 &&
         cfg_.p_pause <= 0.0;
}

std::shared_ptr<PlanInjector> FaultPlan::make_injector(
    std::uint64_t seed, double alpha_t) const {
  return std::make_shared<PlanInjector>(cfg_, seed, alpha_t);
}

const std::vector<std::string>& FaultPlan::bundled_names() {
  static const std::vector<std::string> names = {
      "none",  "delay", "drop",   "duplicate", "reorder",
      "pause", "mixed", "delay1", "drop1",     "reorder1"};
  return names;
}

FaultPlan FaultPlan::bundled(std::string_view name) {
  FaultPlanConfig c;
  c.name = std::string(name);
  if (name == "none") {
    // inert defaults
  } else if (name == "delay") {
    c.p_delay = 0.3;
  } else if (name == "drop") {
    c.p_drop = 0.15;
  } else if (name == "duplicate") {
    c.p_duplicate = 0.25;
  } else if (name == "reorder") {
    c.p_reorder = 0.3;
  } else if (name == "pause") {
    c.p_pause = 0.05;
  } else if (name == "mixed") {
    c.p_delay = 0.15;
    c.p_drop = 0.08;
    c.p_duplicate = 0.1;
    c.p_reorder = 0.15;
    c.p_pause = 0.02;
  } else if (name == "delay1") {
    // The 1%-rate trio: light-touch plans for re-scoring otherwise-optimal
    // configurations (src/navigator), where the bundled 15-30% rates would
    // drown the frontier rather than perturb it.
    c.p_delay = 0.01;
  } else if (name == "drop1") {
    c.p_drop = 0.01;
  } else if (name == "reorder1") {
    c.p_reorder = 0.01;
  } else {
    throw invalid_argument_error(
        strfmt("unknown fault plan '%.*s' (bundled: none, delay, drop, "
               "duplicate, reorder, pause, mixed, delay1, drop1, reorder1)",
               static_cast<int>(name.size()), name.data()));
  }
  return FaultPlan(std::move(c));
}

}  // namespace alge::chaos
