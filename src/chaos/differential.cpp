#include "chaos/differential.hpp"

#include <cmath>
#include <ostream>
#include <utility>

#include "algs/harness.hpp"
#include "chaos/schedule.hpp"
#include "support/common.hpp"

namespace alge::chaos {

namespace {

using algs::harness::RunResult;

/// Relative slack for "may only grow" clock comparisons: injected stalls
/// interleave extra additions into the clock accumulation, so the faulted
/// sum is not bit-for-bit a superset of the baseline's rounding sequence.
constexpr double kGrowSlack = 1e-12;

bool grew(double faulted, double baseline) {
  return faulted >= baseline * (1.0 - kGrowSlack);
}

/// Non-unit parameters (bench/scaling_mm_energy.cpp's tuning) so injected
/// latency, retries, and stalls are visible in time and every Eq. (2) term.
core::MachineParams tuned_params() {
  core::MachineParams mp;
  mp.gamma_t = 1.0;
  mp.beta_t = 2.0;
  mp.alpha_t = 10.0;
  mp.gamma_e = 1.0;
  mp.beta_e = 4.0;
  mp.alpha_e = 20.0;
  mp.delta_e = 1e-4;
  mp.eps_e = 1e-2;
  mp.max_msg_words = 64.0;
  return mp;
}

/// Valid grid parameters per size class; see effective_p for the mapping.
struct Mm25dShape {
  int q;
  int c;
};
int isqrt(int p) {
  int q = static_cast<int>(std::sqrt(static_cast<double>(p)));
  while ((q + 1) * (q + 1) <= p) ++q;
  while (q > 1 && q * q > p) --q;
  return q;
}

Mm25dShape mm25d_shape(int p) {
  // q = 2 keeps problems tiny; c absorbs the rest when p is a multiple of
  // q² — but only while c divides q (p = 8 -> the 2×2×2 grid). Perfect
  // squares of q >= 3 run the q×q 2D grid instead — the size classes
  // fold-mode sweeps use, since Cannon only folds nontrivially for q >= 3.
  if (p % 4 == 0 && (p / 4 == 1 || p / 4 == 2)) return {2, p / 4};
  const int q = isqrt(p);
  if (q >= 3 && q * q == p) return {q, 1};
  return {2, 1};
}

/// FFT needs a power-of-two rank count (R and C are powers of two and p
/// divides both); size classes round down.
int fft_p(int p) {
  int v = 1;
  while (2 * v <= p) v *= 2;
  return v;
}

RunResult dispatch(const CaseSpec& spec, bool verify) {
  namespace h = algs::harness;
  const int p = spec.p;
  const auto seed = spec.problem_seed;
  const core::MachineParams& mp = spec.params;
  switch (spec.alg) {
    case Alg::kMm25d: {
      const auto [q, c] = mm25d_shape(p);
      return h::run_mm25d(8 * q, q, c, mp, verify, seed);
    }
    case Alg::kSumma: {
      const int q = isqrt(p);
      return h::run_summa(8 * q, q, mp, verify, seed);
    }
    case Alg::kCaps:
      // CAPS runs on 7^k ranks; k = 1 is the smallest nontrivial tree,
      // and n = 14 is the smallest even size with 7 | n² (share layout).
      return h::run_caps(14, 1, mp, {}, verify, seed);
    case Alg::kNbody: {
      const int c = p % 2 == 0 ? 2 : 1;
      return h::run_nbody(4 * (p / c), p, c, mp, verify, seed);
    }
    case Alg::kLu: {
      const auto [q, c] = mm25d_shape(p);
      return h::run_lu(8 * q, 4, q, c, mp, verify, seed);
    }
    case Alg::kTsqr:
      return h::run_tsqr(8, 4, p, mp, verify, seed);
    case Alg::kFft: {
      const int fp = fft_p(p);
      return h::run_fft(2 * fp, 2 * fp, fp, algs::AllToAllKind::kDirect, mp,
                        verify, seed);
    }
  }
  throw invalid_argument_error("unknown algorithm");
}

}  // namespace

const char* alg_name(Alg alg) {
  switch (alg) {
    case Alg::kMm25d: return "mm25d";
    case Alg::kSumma: return "summa";
    case Alg::kCaps: return "caps";
    case Alg::kNbody: return "nbody";
    case Alg::kLu: return "lu";
    case Alg::kTsqr: return "tsqr";
    case Alg::kFft: return "fft";
  }
  return "?";
}

Alg parse_alg(std::string_view name) {
  for (Alg a : all_algs()) {
    if (name == alg_name(a)) return a;
  }
  throw invalid_argument_error(
      strfmt("unknown algorithm '%.*s' (have: mm25d, summa, caps, nbody, "
             "lu, tsqr, fft)",
             static_cast<int>(name.size()), name.data()));
}

const std::vector<Alg>& all_algs() {
  static const std::vector<Alg> algs = {Alg::kMm25d, Alg::kSumma, Alg::kCaps,
                                        Alg::kNbody, Alg::kLu,   Alg::kTsqr,
                                        Alg::kFft};
  return algs;
}

int effective_p(Alg alg, int p) {
  switch (alg) {
    case Alg::kMm25d:
    case Alg::kLu: {
      const auto [q, c] = mm25d_shape(p);
      return q * q * c;
    }
    case Alg::kSumma: {
      const int q = isqrt(p);
      return q * q;
    }
    case Alg::kCaps:
      return 7;
    case Alg::kNbody:
    case Alg::kTsqr:
      return p;
    case Alg::kFft:
      return fft_p(p);
  }
  return p;
}

bool RunSignature::identical_to(const RunSignature& o) const {
  return ranks == o.ranks && totals == o.totals && makespan == o.makespan &&
         energy == o.energy && max_abs_error == o.max_abs_error;
}

bool RunSignature::cost_identical_to(const RunSignature& o) const {
  return ranks == o.ranks && totals == o.totals && makespan == o.makespan &&
         energy == o.energy && faults == o.faults;
}

RunSignature run_case(const CaseSpec& spec, const ChaosConfig& chaos) {
  algs::harness::RunObserver obs;
  std::shared_ptr<PlanInjector> injector;
  obs.configure = [&chaos, &injector](sim::MachineConfig& cfg) {
    cfg.data_mode = chaos.data_mode;
    cfg.exec_mode = chaos.exec_mode;
    if (chaos.schedule_seed != 0) {
      cfg.wake_policy =
          std::make_shared<SchedulePermuter>(chaos.schedule_seed);
    }
    if (!chaos.plan.inert()) {
      injector =
          chaos.plan.make_injector(chaos.fault_seed, cfg.params.alpha_t);
      cfg.faults = injector;
    }
  };
  RunSignature sig;
  obs.after_run = [&sig](const sim::Machine& m) {
    sig.fold_active = m.fold_active();
    sig.ranks.clear();
    sig.ranks.reserve(static_cast<std::size_t>(m.p()));
    for (int r = 0; r < m.p(); ++r) sig.ranks.push_back(m.rank_counters(r));
  };
  algs::harness::ScopedRunObserver scope(std::move(obs));
  // Ghost runs have no output, so verification only makes sense in full
  // mode (the harness rejects the combination outright).
  const RunResult res =
      dispatch(spec, /*verify=*/chaos.data_mode == sim::DataMode::kFull);
  sig.totals = res.totals;
  sig.makespan = res.makespan;
  sig.energy = res.energy.breakdown;
  sig.max_abs_error = res.max_abs_error;
  if (injector) sig.faults = injector->stats();
  return sig;
}

namespace {

/// Name the first field that differs between two signatures (diagnostics).
std::string first_difference(const RunSignature& a, const RunSignature& b) {
  if (a.ranks.size() != b.ranks.size()) return "rank count";
  for (std::size_t r = 0; r < a.ranks.size(); ++r) {
    const sim::RankCounters& x = a.ranks[r];
    const sim::RankCounters& y = b.ranks[r];
    if (x == y) continue;
    if (x.flops != y.flops) return strfmt("rank %zu flops", r);
    if (x.words_sent != y.words_sent) return strfmt("rank %zu words", r);
    if (x.msgs_sent != y.msgs_sent) return strfmt("rank %zu msgs", r);
    if (x.clock != y.clock) return strfmt("rank %zu clock", r);
    if (x.idle_time != y.idle_time) return strfmt("rank %zu idle", r);
    return strfmt("rank %zu counters", r);
  }
  if (!(a.totals == b.totals)) return "totals";
  if (a.makespan != b.makespan) return "makespan";
  if (!(a.energy == b.energy)) return "energy";
  if (a.max_abs_error != b.max_abs_error) return "max_abs_error";
  return "(none)";
}

/// Invariants a faulted run must satisfy vs the fault-free baseline.
/// Returns an empty string when all hold.
std::string check_faulted(const RunSignature& base, const RunSignature& sig,
                          const FaultPlan& plan) {
  if (sig.ranks.size() != base.ranks.size()) return "rank count changed";
  // The transport hides faults from the algorithm: identical work and
  // identical numerics, bit for bit.
  for (std::size_t r = 0; r < sig.ranks.size(); ++r) {
    if (sig.ranks[r].flops != base.ranks[r].flops) {
      return strfmt("rank %zu flops changed", r);
    }
    if (sig.ranks[r].mem_highwater != base.ranks[r].mem_highwater) {
      return strfmt("rank %zu memory high-water changed", r);
    }
  }
  if (sig.max_abs_error != base.max_abs_error) {
    return "numerical result changed";
  }
  // Faults only ever add cost.
  for (std::size_t r = 0; r < sig.ranks.size(); ++r) {
    if (sig.ranks[r].words_sent < base.ranks[r].words_sent ||
        sig.ranks[r].msgs_sent < base.ranks[r].msgs_sent) {
      return strfmt("rank %zu traffic shrank", r);
    }
    if (!grew(sig.ranks[r].clock, base.ranks[r].clock)) {
      return strfmt("rank %zu clock shrank", r);
    }
  }
  if (!grew(sig.makespan, base.makespan)) return "makespan shrank";
  // Plans that never retransmit (delay/reorder/pause) shift time only:
  // W, S — and therefore the traffic terms of Eq. (2) — are *exactly* the
  // baseline's.
  const FaultPlanConfig& c = plan.config();
  if (c.p_drop <= 0.0 && c.p_duplicate <= 0.0) {
    for (std::size_t r = 0; r < sig.ranks.size(); ++r) {
      const sim::RankCounters& x = sig.ranks[r];
      const sim::RankCounters& y = base.ranks[r];
      if (x.words_sent != y.words_sent || x.msgs_sent != y.msgs_sent ||
          x.words_recv != y.words_recv || x.msgs_recv != y.msgs_recv ||
          x.words_hops != y.words_hops || x.msgs_hops != y.msgs_hops) {
        return strfmt("rank %zu traffic changed under a time-only plan", r);
      }
    }
    if (sig.energy.flops != base.energy.flops ||
        sig.energy.words != base.energy.words ||
        sig.energy.messages != base.energy.messages) {
      return "traffic energy changed under a time-only plan";
    }
  }
  return {};
}

}  // namespace

DiffReport explore(const DiffOptions& opts) {
  ALGE_REQUIRE(opts.seeds >= 1, "need at least one seed");
  DiffReport rep;
  std::ostream* out = opts.out;
  for (Alg alg : opts.algs) {
    for (int p : opts.ps) {
      ++rep.cases;
      CaseSpec spec;
      spec.alg = alg;
      spec.p = p;
      spec.problem_seed = opts.problem_seed;
      spec.params = tuned_params();

      RunSignature base;
      try {
        base = run_case(spec, ChaosConfig{});
      } catch (const std::exception& e) {
        ++rep.failures;
        if (out != nullptr) {
          *out << strfmt("FAIL %s p=%d: baseline threw: %s\n",
                         alg_name(alg), p, e.what());
        }
        continue;
      }

      // (b) Schedule permutation: dataflow determinism demands full bit
      // identity — F, W, S, clocks, energy, numerics.
      int sched_bad = 0;
      for (int s = 1; s <= opts.seeds; ++s) {
        ++rep.schedule_runs;
        ChaosConfig cc;
        cc.schedule_seed = static_cast<std::uint64_t>(s);
        try {
          const RunSignature sig = run_case(spec, cc);
          if (!sig.identical_to(base)) {
            ++rep.mismatches;
            ++sched_bad;
            if (out != nullptr) {
              *out << strfmt(
                  "FAIL %s p=%d schedule seed %d: differs from round-robin "
                  "baseline at %s\n",
                  alg_name(alg), p, s,
                  first_difference(base, sig).c_str());
            }
          }
        } catch (const std::exception& e) {
          ++rep.failures;
          ++sched_bad;
          if (out != nullptr) {
            *out << strfmt("FAIL %s p=%d schedule seed %d: threw: %s\n",
                           alg_name(alg), p, s, e.what());
          }
        }
      }

      // (a) Fault plans: convergence plus graceful, monotone degradation.
      int fault_bad = 0;
      int case_fault_runs = 0;
      std::uint64_t injected = 0;
      for (const std::string& plan_name : opts.plans) {
        if (plan_name == "none") continue;  // that *is* the baseline
        const FaultPlan plan = FaultPlan::bundled(plan_name);
        for (int s = 1; s <= opts.seeds; ++s) {
          ++rep.fault_runs;
          ++case_fault_runs;
          ChaosConfig cc;
          cc.plan = plan;
          cc.fault_seed = static_cast<std::uint64_t>(s);
          try {
            const RunSignature sig = run_case(spec, cc);
            injected += sig.faults.total();
            const std::string err = check_faulted(base, sig, plan);
            if (!err.empty()) {
              ++rep.mismatches;
              ++fault_bad;
              if (out != nullptr) {
                *out << strfmt("FAIL %s p=%d plan=%s seed %d: %s\n",
                               alg_name(alg), p, plan_name.c_str(), s,
                               err.c_str());
              }
            }
          } catch (const std::exception& e) {
            ++rep.failures;
            ++fault_bad;
            if (out != nullptr) {
              *out << strfmt(
                  "FAIL %s p=%d plan=%s seed %d: did not converge: %s\n",
                  alg_name(alg), p, plan_name.c_str(), s, e.what());
            }
          }
        }
      }

      if (out != nullptr && opts.verbose) {
        *out << strfmt(
            "%-6s p=%d (runs on %d ranks): %d/%d schedules bit-identical, "
            "%d/%d fault runs converged (%llu faults injected)\n",
            alg_name(alg), p, effective_p(alg, p), opts.seeds - sched_bad,
            opts.seeds, case_fault_runs - fault_bad, case_fault_runs,
            static_cast<unsigned long long>(injected));
      }
    }
  }
  rep.summary = strfmt(
      "%d cases: %d schedule runs, %d fault runs; %d mismatches, %d "
      "failures -> %s",
      rep.cases, rep.schedule_runs, rep.fault_runs, rep.mismatches,
      rep.failures, rep.ok() ? "OK" : "FAIL");
  if (out != nullptr) *out << rep.summary << "\n";
  return rep;
}

namespace {

/// Name the first *cost* field that differs (ghost diagnostics; ignores
/// max_abs_error, which ghost runs cannot reproduce by design).
std::string first_cost_difference(const RunSignature& a,
                                  const RunSignature& b) {
  if (a.ranks.size() != b.ranks.size()) return "rank count";
  for (std::size_t r = 0; r < a.ranks.size(); ++r) {
    const sim::RankCounters& x = a.ranks[r];
    const sim::RankCounters& y = b.ranks[r];
    if (x == y) continue;
    if (x.flops != y.flops) return strfmt("rank %zu flops", r);
    if (x.words_sent != y.words_sent) return strfmt("rank %zu words", r);
    if (x.msgs_sent != y.msgs_sent) return strfmt("rank %zu msgs", r);
    if (x.clock != y.clock) return strfmt("rank %zu clock", r);
    if (x.idle_time != y.idle_time) return strfmt("rank %zu idle", r);
    if (x.mem_highwater != y.mem_highwater) {
      return strfmt("rank %zu memory high-water", r);
    }
    return strfmt("rank %zu counters", r);
  }
  if (!(a.totals == b.totals)) return "totals";
  if (a.makespan != b.makespan) return "makespan";
  if (!(a.energy == b.energy)) return "energy";
  if (!(a.faults == b.faults)) return "injected faults";
  return "(none)";
}

}  // namespace

GhostDiffReport ghost_explore(const GhostDiffOptions& opts) {
  ALGE_REQUIRE(opts.seeds >= 1, "need at least one seed");
  GhostDiffReport rep;
  std::ostream* out = opts.out;
  for (Alg alg : opts.algs) {
    for (int p : opts.ps) {
      ++rep.cases;
      CaseSpec spec;
      spec.alg = alg;
      spec.p = p;
      spec.problem_seed = opts.problem_seed;
      spec.params = tuned_params();

      // One fault-free pairing, then every plan × seed. Each entry is a
      // (label, config) template; the pair loop runs it in both modes.
      struct Pairing {
        std::string label;
        ChaosConfig cc;
      };
      std::vector<Pairing> pairings;
      pairings.push_back({"fault-free", ChaosConfig{}});
      for (const std::string& plan_name : opts.plans) {
        if (plan_name == "none") continue;
        const FaultPlan plan = FaultPlan::bundled(plan_name);
        for (int s = 1; s <= opts.seeds; ++s) {
          ChaosConfig cc;
          cc.plan = plan;
          cc.fault_seed = static_cast<std::uint64_t>(s);
          pairings.push_back(
              {strfmt("plan=%s seed=%d", plan_name.c_str(), s), cc});
        }
      }

      int case_bad = 0;
      for (const Pairing& pairing : pairings) {
        ++rep.pairs;
        try {
          ChaosConfig full_cc = pairing.cc;
          full_cc.data_mode = sim::DataMode::kFull;
          const RunSignature full = run_case(spec, full_cc);
          ChaosConfig ghost_cc = pairing.cc;
          ghost_cc.data_mode = sim::DataMode::kGhost;
          const RunSignature ghost = run_case(spec, ghost_cc);
          if (!ghost.cost_identical_to(full)) {
            ++rep.mismatches;
            ++case_bad;
            if (out != nullptr) {
              *out << strfmt(
                  "FAIL %s p=%d %s: ghost cost signature differs at %s\n",
                  alg_name(alg), p, pairing.label.c_str(),
                  first_cost_difference(full, ghost).c_str());
            }
          }
        } catch (const std::exception& e) {
          ++rep.failures;
          ++case_bad;
          if (out != nullptr) {
            *out << strfmt("FAIL %s p=%d %s: threw: %s\n", alg_name(alg), p,
                           pairing.label.c_str(), e.what());
          }
        }
      }
      if (out != nullptr && opts.verbose) {
        *out << strfmt("%-6s p=%d (runs on %d ranks): %zu/%zu full/ghost "
                       "pairs bit-identical\n",
                       alg_name(alg), p, effective_p(alg, p),
                       pairings.size() - static_cast<std::size_t>(case_bad),
                       pairings.size());
      }
    }
  }
  rep.summary = strfmt(
      "%d cases: %d full/ghost pairs; %d mismatches, %d failures -> %s",
      rep.cases, rep.pairs, rep.mismatches, rep.failures,
      rep.ok() ? "OK" : "FAIL");
  if (out != nullptr) *out << rep.summary << "\n";
  return rep;
}

FoldDiffReport fold_explore(const FoldDiffOptions& opts) {
  ALGE_REQUIRE(opts.seeds >= 1, "need at least one seed");
  FoldDiffReport rep;
  std::ostream* out = opts.out;
  for (Alg alg : opts.algs) {
    for (int p : opts.ps) {
      ++rep.cases;
      CaseSpec spec;
      spec.alg = alg;
      spec.p = p;
      spec.problem_seed = opts.problem_seed;
      spec.params = tuned_params();

      // One fault-free pairing (the case that actually folds), then every
      // plan × seed (faults force the per-fiber fallback on the "folded"
      // side, which must still match bit for bit).
      struct Pairing {
        std::string label;
        ChaosConfig cc;
      };
      std::vector<Pairing> pairings;
      pairings.push_back({"fault-free", ChaosConfig{}});
      for (const std::string& plan_name : opts.plans) {
        if (plan_name == "none") continue;
        const FaultPlan plan = FaultPlan::bundled(plan_name);
        for (int s = 1; s <= opts.seeds; ++s) {
          ChaosConfig cc;
          cc.plan = plan;
          cc.fault_seed = static_cast<std::uint64_t>(s);
          pairings.push_back(
              {strfmt("plan=%s seed=%d", plan_name.c_str(), s), cc});
        }
      }

      int case_bad = 0;
      int case_folded = 0;
      for (const Pairing& pairing : pairings) {
        ++rep.pairs;
        try {
          ChaosConfig fiber_cc = pairing.cc;
          fiber_cc.data_mode = sim::DataMode::kGhost;
          fiber_cc.exec_mode = sim::ExecMode::kFibers;
          const RunSignature fiber = run_case(spec, fiber_cc);
          ChaosConfig folded_cc = pairing.cc;
          folded_cc.data_mode = sim::DataMode::kGhost;
          folded_cc.exec_mode = sim::ExecMode::kFolded;
          const RunSignature folded = run_case(spec, folded_cc);
          if (folded.fold_active) {
            ++rep.folded_pairs;
            ++case_folded;
          }
          if (!folded.cost_identical_to(fiber)) {
            ++rep.mismatches;
            ++case_bad;
            if (out != nullptr) {
              *out << strfmt(
                  "FAIL %s p=%d %s: folded cost signature differs at %s "
                  "(fold %s)\n",
                  alg_name(alg), p, pairing.label.c_str(),
                  first_cost_difference(fiber, folded).c_str(),
                  folded.fold_active ? "active" : "fell back");
            }
          }
        } catch (const std::exception& e) {
          ++rep.failures;
          ++case_bad;
          if (out != nullptr) {
            *out << strfmt("FAIL %s p=%d %s: threw: %s\n", alg_name(alg), p,
                           pairing.label.c_str(), e.what());
          }
        }
      }
      if (out != nullptr && opts.verbose) {
        *out << strfmt(
            "%-6s p=%d (runs on %d ranks): %zu/%zu fiber/folded pairs "
            "bit-identical, %d folded\n",
            alg_name(alg), p, effective_p(alg, p),
            pairings.size() - static_cast<std::size_t>(case_bad),
            pairings.size(), case_folded);
      }
    }
  }
  rep.summary = strfmt(
      "%d cases: %d fiber/folded pairs (%d actually folded); %d "
      "mismatches, %d failures -> %s",
      rep.cases, rep.pairs, rep.folded_pairs, rep.mismatches, rep.failures,
      rep.ok() ? "OK" : "FAIL");
  if (out != nullptr) *out << rep.summary << "\n";
  return rep;
}

}  // namespace alge::chaos
