// Differential determinism harness: run every distributed algorithm under
// (a) permuted fiber wake orders and (b) seeded fault plans, and compare
// full run signatures — per-rank counters, totals, makespan, Eq. (2)
// energy, numerical error — against the fault-free round-robin baseline.
//
// What must hold, and why:
//  - Schedule permutation (no faults): the simulator is a dataflow machine
//    — each rank's op sequence is fixed and matching is FIFO per (src, tag)
//    flow — so *every* signature field must be bit-identical under any
//    legal wake order. Any difference is a real bug (hidden schedule
//    dependence), which is exactly what this harness exists to catch.
//  - Fault plans: the transport recovers (retry/dedup/resequence), so
//    results and per-rank flops stay bit-identical and numerical output is
//    unchanged; counters may only grow, and must be *exactly* equal for
//    plans that never retransmit (delay/reorder/pause inject time, not
//    traffic). Convergence is part of the contract: bounded retries, no
//    deadlock.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "chaos/fault_plan.hpp"
#include "core/costs.hpp"
#include "core/params.hpp"
#include "sim/counters.hpp"
#include "sim/machine.hpp"

namespace alge::chaos {

/// Algorithms under differential test (the repo's full distributed set).
enum class Alg { kMm25d, kSumma, kCaps, kNbody, kLu, kTsqr, kFft };

const char* alg_name(Alg alg);
/// Parse "mm25d" etc.; throws invalid_argument_error on unknown names.
Alg parse_alg(std::string_view name);
const std::vector<Alg>& all_algs();

/// One concrete run: algorithm + requested machine size + problem seed.
/// The harness maps `p` to valid per-algorithm grid parameters (CAPS, for
/// example, always runs on 7^k ranks); `p` is a size class, not a promise.
struct CaseSpec {
  Alg alg = Alg::kMm25d;
  int p = 4;
  std::uint64_t problem_seed = 1;
  core::MachineParams params;
};

/// Chaos knobs for one run. Default = the fault-free round-robin baseline.
struct ChaosConfig {
  /// Nonzero: install a SchedulePermuter with this seed.
  std::uint64_t schedule_seed = 0;
  /// Non-inert: install plan.make_injector(fault_seed, αt).
  FaultPlan plan;
  std::uint64_t fault_seed = 1;
  /// kGhost: run storage-free payloads (sim/payload.hpp). Verification is
  /// off for ghost runs (there is no output); the cost signature must
  /// still be bit-identical to the full-data run.
  sim::DataMode data_mode = sim::DataMode::kFull;
  /// kFolded: collapse fold-congruent ranks onto class representatives
  /// (sim/fold.hpp; ghost mode only). The machine falls back to per-fiber
  /// execution when the algorithm has no fold map or faults are installed,
  /// so any ChaosConfig combination stays runnable.
  sim::ExecMode exec_mode = sim::ExecMode::kFibers;
};

/// Everything observable about a finished run. Compared field-for-field
/// (bitwise on doubles) by the harness.
struct RunSignature {
  std::vector<sim::RankCounters> ranks;
  sim::SimTotals totals;
  double makespan = 0.0;
  core::EnergyBreakdown energy;
  double max_abs_error = 0.0;  ///< vs the sequential reference
  FaultStats faults;           ///< what the injector actually injected

  /// Whether the machine actually ran folded (informational; never part of
  /// a signature comparison — a fallback run must still match bit for bit).
  bool fold_active = false;

  bool identical_to(const RunSignature& o) const;
  /// Bit-identity on everything the cost model observes — per-rank
  /// counters, totals, makespan, energy, injected faults — but not
  /// max_abs_error: ghost runs have no numerical output to compare.
  bool cost_identical_to(const RunSignature& o) const;
};

/// Run one case under the given chaos knobs (verification always on).
/// Throws sim::SimError on divergence (deadlock / retry exhaustion) — the
/// caller decides whether that is expected.
RunSignature run_case(const CaseSpec& spec, const ChaosConfig& chaos);

/// The per-alg machine-size mapping run_case uses (exposed for reports):
/// the rank count the algorithm actually runs on for size class `p`.
int effective_p(Alg alg, int p);

struct DiffOptions {
  std::vector<Alg> algs = all_algs();
  std::vector<int> ps = {4, 8};
  int seeds = 32;  ///< schedule seeds (and fault seeds) per case
  /// Bundled plan names to run; "none" is skipped (it is the baseline).
  std::vector<std::string> plans = FaultPlan::bundled_names();
  std::uint64_t problem_seed = 1;
  bool verbose = false;
  std::ostream* out = nullptr;  ///< progress/failure stream (null = silent)
};

struct DiffReport {
  int cases = 0;
  int schedule_runs = 0;
  int fault_runs = 0;
  int mismatches = 0;  ///< signature differences (determinism violations)
  int failures = 0;    ///< unexpected exceptions (deadlock, retry blowup)
  std::string summary;

  bool ok() const { return mismatches == 0 && failures == 0; }
};

/// The full sweep: for every (alg, p), establish the fault-free
/// round-robin baseline, then assert bit-identity under `seeds` schedule
/// permutations and bounded, convergent degradation under every plan.
DiffReport explore(const DiffOptions& opts);

/// Ghost-payload differential sweep options. Smaller seed count than
/// DiffOptions by default: every comparison is a *pair* of runs.
struct GhostDiffOptions {
  std::vector<Alg> algs = all_algs();
  std::vector<int> ps = {4, 8};
  int seeds = 4;  ///< fault seeds per (case, plan)
  /// Bundled plan names to pair up; "none" is skipped (the fault-free
  /// pairing always runs).
  std::vector<std::string> plans = FaultPlan::bundled_names();
  std::uint64_t problem_seed = 1;
  bool verbose = false;
  std::ostream* out = nullptr;  ///< progress/failure stream (null = silent)
};

struct GhostDiffReport {
  int cases = 0;
  int pairs = 0;       ///< full/ghost run pairs compared
  int mismatches = 0;  ///< cost signatures that differed
  int failures = 0;    ///< unexpected exceptions in either mode
  std::string summary;

  bool ok() const { return mismatches == 0 && failures == 0; }
};

/// The ghost differential gate: for every (alg, p), run full-data and
/// ghost mode back to back — fault-free and under every plan × seed — and
/// assert the cost signatures (clocks, F/W/S, energy, injected faults) are
/// bit-identical. Any difference means ghost mode's cost schedule has
/// drifted from the real one.
GhostDiffReport ghost_explore(const GhostDiffOptions& opts);

/// Folded-execution differential sweep options. The default size classes
/// include an odd perfect square so Cannon (q >= 3) genuinely folds.
struct FoldDiffOptions {
  std::vector<Alg> algs = all_algs();
  std::vector<int> ps = {4, 9};
  int seeds = 2;  ///< fault seeds per (case, plan)
  /// Bundled plan names to pair up; faulted machines fall back to fibers,
  /// so these pairs prove the fallback never perturbs the signature.
  std::vector<std::string> plans = FaultPlan::bundled_names();
  std::uint64_t problem_seed = 1;
  bool verbose = false;
  std::ostream* out = nullptr;  ///< progress/failure stream (null = silent)
};

struct FoldDiffReport {
  int cases = 0;
  int pairs = 0;         ///< fiber/folded run pairs compared
  int folded_pairs = 0;  ///< pairs whose folded side actually folded
  int mismatches = 0;    ///< cost signatures that differed
  int failures = 0;      ///< unexpected exceptions in either mode
  std::string summary;

  bool ok() const { return mismatches == 0 && failures == 0; }
};

/// The fold differential gate: for every (alg, p), run ghost mode per-fiber
/// and folded back to back — fault-free and under every plan × seed — and
/// assert the cost signatures (clocks, F/W/S, energy, injected faults) are
/// bit-identical. Any difference means class replay has drifted from the
/// per-fiber schedule; faulted pairs additionally prove the transparent
/// fiber fallback is exact.
FoldDiffReport fold_explore(const FoldDiffOptions& opts);

}  // namespace alge::chaos
