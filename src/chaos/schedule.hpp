// Seeded schedule permuter: a fiber::WakePolicy that resumes a uniformly
// random *ready* fiber instead of the round-robin scan. Every pick is a
// legal interleaving of the cooperative schedule, so by the simulator's
// dataflow-determinism property (fixed per-rank program order + per-flow
// FIFO matching) all counters, virtual clocks, and numerical results must
// be bit-identical to the round-robin baseline — the invariant the
// differential harness asserts over many seeds.
//
// Unlike fault plans, the permuter may use sequential RNG state: any
// sequence of picks is a valid schedule, so reproducibility only requires
// the same seed, not schedule-independence.
#pragma once

#include <cstdint>

#include "fiber/fiber.hpp"
#include "fiber/ready_set.hpp"
#include "support/common.hpp"
#include "support/rng.hpp"

namespace alge::chaos {

class SchedulePermuter final : public fiber::WakePolicy {
 public:
  explicit SchedulePermuter(std::uint64_t seed) : rng_(seed) {}

  std::size_t pick(const fiber::ReadySet& ready,
                   std::size_t /*cursor*/) override {
    const std::ptrdiff_t id =
        ready.select(rng_.next_below(ready.size()));
    ALGE_CHECK(id >= 0, "pick on an empty ready set");
    ++picks_;
    return static_cast<std::size_t>(id);
  }

  /// Context switches decided so far (diagnostics).
  std::uint64_t picks() const { return picks_; }

 private:
  Rng rng_;
  std::uint64_t picks_ = 0;
};

}  // namespace alge::chaos
