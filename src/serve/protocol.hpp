// Wire protocol of the optimizer query service: length-prefixed JSON over
// TCP. Every frame is a 4-byte big-endian payload length followed by that
// many bytes of UTF-8 JSON; requests and responses use the same framing, and
// responses on one connection come back in request order (so clients may
// pipeline arbitrarily many requests before reading).
//
// FrameReader is the server's (and load-test client's) buffered demuxer: it
// owns a read buffer on top of a socket fd, hands out zero-copy views of
// complete frames, and classifies the malformed cases (zero-length frame,
// oversized frame, mid-frame disconnect) so the connection handler can
// answer each with a structured error instead of dying. frame_buffered()
// lets the handler batch responses: it keeps serving frames that already
// arrived and flushes one coalesced write() per burst, which is what makes
// 100k+ pipelined queries/s affordable in syscalls.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace alge::serve {

/// Default upper bound on a frame payload. Requests are ~100 bytes and the
/// largest responses (stats dumps) a few KB; anything near the cap is a
/// protocol violation, not a big query.
constexpr std::size_t kDefaultMaxFrameBytes = 1 << 20;

/// Append one frame (header + payload) to `out`; the caller writes `out` in
/// a single send so pipelined responses coalesce.
void append_frame(std::string& out, std::string_view payload);

/// Write all of `data` to `fd` (retrying short writes, EINTR-safe, no
/// SIGPIPE). Returns false on a closed/failed peer.
bool write_all(int fd, std::string_view data);

/// Frame `payload` and write it; convenience for one-shot clients.
bool write_frame(int fd, std::string_view payload);

class FrameReader {
 public:
  enum class Status {
    kFrame,      ///< *payload points at a complete frame
    kEmpty,      ///< zero-length frame (protocol error, stream still framed)
    kTooLarge,   ///< declared length exceeds max (stream unrecoverable)
    kClosed,     ///< clean EOF at a frame boundary
    kTruncated,  ///< EOF mid-frame (client vanished)
    kError,      ///< read() failed
  };

  explicit FrameReader(int fd,
                       std::size_t max_frame_bytes = kDefaultMaxFrameBytes);

  /// Block until the next frame (or stream end). On kFrame, *payload views
  /// this reader's buffer and stays valid until the next call.
  Status next(std::string_view* payload);

  /// True when a complete frame is already buffered — next() would return
  /// without touching the socket. Used for response write-batching.
  bool frame_buffered() const;

 private:
  bool fill();  ///< one read(); false on EOF/error (sets eof_/error_)

  int fd_;
  std::size_t max_frame_bytes_;
  std::string buf_;
  std::size_t pos_ = 0;  ///< consumed prefix of buf_
  bool eof_ = false;
  bool error_ = false;
};

/// Bind and listen on 127.0.0.1:`port` (0 = ephemeral). Returns the listen
/// fd and stores the actual port in *bound_port. Throws
/// invalid_argument_error on failure. The service is loopback-only by
/// design: it has no authentication.
int listen_tcp(int port, int backlog, int* bound_port);

/// Connect to host:port; throws invalid_argument_error on failure. The
/// returned fd has TCP_NODELAY set (the protocol is small-frame RPC).
int connect_tcp(const std::string& host, int port);

}  // namespace alge::serve
