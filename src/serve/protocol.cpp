#include "serve/protocol.hpp"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include "support/common.hpp"

namespace alge::serve {

namespace {

constexpr std::size_t kHeaderBytes = 4;
constexpr std::size_t kReadChunk = 64 * 1024;

std::uint32_t read_be32(const char* p) {
  const auto* u = reinterpret_cast<const unsigned char*>(p);
  return (std::uint32_t{u[0]} << 24) | (std::uint32_t{u[1]} << 16) |
         (std::uint32_t{u[2]} << 8) | std::uint32_t{u[3]};
}

void set_nodelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

}  // namespace

void append_frame(std::string& out, std::string_view payload) {
  const auto len = static_cast<std::uint32_t>(payload.size());
  const char header[kHeaderBytes] = {
      static_cast<char>(len >> 24), static_cast<char>(len >> 16),
      static_cast<char>(len >> 8), static_cast<char>(len)};
  out.append(header, kHeaderBytes);
  out.append(payload.data(), payload.size());
}

bool write_all(int fd, std::string_view data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;
    off += static_cast<std::size_t>(n);
  }
  return true;
}

bool write_frame(int fd, std::string_view payload) {
  std::string buf;
  buf.reserve(kHeaderBytes + payload.size());
  append_frame(buf, payload);
  return write_all(fd, buf);
}

FrameReader::FrameReader(int fd, std::size_t max_frame_bytes)
    : fd_(fd), max_frame_bytes_(max_frame_bytes) {}

bool FrameReader::frame_buffered() const {
  const std::size_t avail = buf_.size() - pos_;
  if (avail < kHeaderBytes) return false;
  const std::uint32_t len = read_be32(buf_.data() + pos_);
  if (len == 0 || len > max_frame_bytes_) return true;  // next() reports it
  return avail >= kHeaderBytes + len;
}

bool FrameReader::fill() {
  // Compact once the consumed prefix dominates, so the buffer cannot grow
  // without bound across a long-lived connection.
  if (pos_ > 0 && (pos_ == buf_.size() || pos_ >= kReadChunk)) {
    buf_.erase(0, pos_);
    pos_ = 0;
  }
  char chunk[kReadChunk];
  for (;;) {
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n > 0) {
      buf_.append(chunk, static_cast<std::size_t>(n));
      return true;
    }
    if (n == 0) {
      eof_ = true;
      return false;
    }
    if (errno == EINTR) continue;
    error_ = true;
    return false;
  }
}

FrameReader::Status FrameReader::next(std::string_view* payload) {
  for (;;) {
    const std::size_t avail = buf_.size() - pos_;
    if (avail >= kHeaderBytes) {
      const std::uint32_t len = read_be32(buf_.data() + pos_);
      if (len == 0) {
        pos_ += kHeaderBytes;
        return Status::kEmpty;
      }
      if (len > max_frame_bytes_) return Status::kTooLarge;
      if (avail >= kHeaderBytes + len) {
        *payload = std::string_view(buf_.data() + pos_ + kHeaderBytes, len);
        pos_ += kHeaderBytes + len;
        return Status::kFrame;
      }
    }
    if (!fill()) {
      if (error_) return Status::kError;
      return buf_.size() - pos_ == 0 ? Status::kClosed : Status::kTruncated;
    }
  }
}

int listen_tcp(int port, int backlog, int* bound_port) {
  ALGE_REQUIRE(port >= 0 && port <= 65535, "bad port %d", port);
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ALGE_REQUIRE(fd >= 0, "socket(): %s", std::strerror(errno));
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int e = errno;
    ::close(fd);
    throw invalid_argument_error(
        strfmt("bind(127.0.0.1:%d): %s", port, std::strerror(e)));
  }
  if (::listen(fd, backlog) != 0) {
    const int e = errno;
    ::close(fd);
    throw invalid_argument_error(strfmt("listen(): %s", std::strerror(e)));
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  ALGE_CHECK(
      ::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0,
      "getsockname(): %s", std::strerror(errno));
  if (bound_port != nullptr) *bound_port = ntohs(bound.sin_port);
  return fd;
}

int connect_tcp(const std::string& host, int port) {
  ALGE_REQUIRE(port > 0 && port <= 65535, "bad port %d", port);
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ALGE_REQUIRE(fd >= 0, "socket(): %s", std::strerror(errno));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw invalid_argument_error(
        strfmt("bad IPv4 address \"%s\"", host.c_str()));
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int e = errno;
    ::close(fd);
    throw invalid_argument_error(
        strfmt("connect(%s:%d): %s", host.c_str(), port, std::strerror(e)));
  }
  set_nodelay(fd);
  return fd;
}

}  // namespace alge::serve
