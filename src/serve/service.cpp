#include "serve/service.hpp"

#include <bit>
#include <cmath>
#include <condition_variable>
#include <memory>
#include <utility>

#include "core/algmodel.hpp"
#include "core/codesign.hpp"
#include "core/opt.hpp"
#include "engine/job.hpp"
#include "engine/runner.hpp"
#include "machines/db.hpp"
#include "navigator/navigator.hpp"
#include "support/common.hpp"

namespace alge::serve {

namespace {

double require_positive(const json::Value& req, const char* key) {
  const double x = req.at(key).as_double();
  ALGE_REQUIRE(std::isfinite(x) && x > 0.0, "\"%s\" must be positive", key);
  return x;
}

double optional_double(const json::Value& req, const char* key, double def) {
  const json::Value* v = req.find(key);
  return v == nullptr ? def : v->as_double();
}

std::unique_ptr<core::AlgModel> make_model(const json::Value& req) {
  const std::string& name = req.at("model").as_string();
  if (name == "nbody") {
    return std::make_unique<core::NBodyModel>(optional_double(req, "f", 1.0));
  }
  if (name == "classical-mm") {
    return std::make_unique<core::ClassicalMatmulModel>();
  }
  if (name == "strassen") {
    return std::make_unique<core::StrassenModel>(optional_double(
        req, "omega0", core::StrassenModel::kStrassenOmega));
  }
  if (name == "lu-2.5d") return std::make_unique<core::LuModel>();
  if (name == "fft-naive") {
    return std::make_unique<core::FftModel>(core::FftModel::AllToAll::kNaive);
  }
  if (name == "fft-tree") {
    return std::make_unique<core::FftModel>(core::FftModel::AllToAll::kTree);
  }
  throw invalid_argument_error(
      strfmt("unknown model \"%s\"", name.c_str()));
}

core::MachineParams resolve_machine(const json::Value& req) {
  if (const json::Value* params = req.find("params"); params != nullptr) {
    core::MachineParams mp = engine::machine_params_from_json(*params);
    mp.validate();
    return mp;
  }
  const json::Value* machine = req.find("machine");
  const std::string name =
      machine == nullptr ? "case-study" : machine->as_string();
  if (name == "case-study") {
    core::MachineParams mp = machines::CaseStudyMachine{}.params();
    // The optimizer chooses M; limits.M_cap (not the socket's DIMM count)
    // bounds it — exactly bench/sec5_optimizer's setup, which the CI smoke
    // cross-checks against.
    mp.mem_words = 0.0;
    return mp;
  }
  if (name == "unit") return core::MachineParams::unit();
  throw invalid_argument_error(
      strfmt("unknown machine \"%s\" (use \"case-study\", \"unit\", or an "
             "explicit \"params\" object)",
             name.c_str()));
}

core::OptLimits resolve_limits(const json::Value& req) {
  core::OptLimits lim;
  if (const json::Value* limits = req.find("limits"); limits != nullptr) {
    lim.p_available =
        optional_double(*limits, "p_available", lim.p_available);
    lim.M_cap = optional_double(*limits, "M_cap", lim.M_cap);
    ALGE_REQUIRE(lim.p_available >= 1.0 && lim.M_cap > 0.0,
                 "bad limits: p_available=%g M_cap=%g", lim.p_available,
                 lim.M_cap);
  }
  return lim;
}

core::ParamScaleSpec scale_from_string(const std::string& s) {
  if (s == "all") return core::ParamScaleSpec::all();
  if (s == "gamma_e") return core::ParamScaleSpec::only_gamma_e();
  if (s == "beta_e") return core::ParamScaleSpec::only_beta_e();
  if (s == "alpha_e") return core::ParamScaleSpec::only_alpha_e();
  if (s == "delta_e") return core::ParamScaleSpec::only_delta_e();
  if (s == "eps_e") return core::ParamScaleSpec{false, false, false, false,
                                                true};
  throw invalid_argument_error(
      strfmt("unknown scale spec \"%s\"", s.c_str()));
}

json::Value run_point_json(const core::RunPoint& pt) {
  json::Value o = json::Value::object();
  o.set("feasible", pt.feasible)
      .set("p", pt.p)
      .set("M", pt.M)
      .set("T", pt.T)
      .set("E", pt.E)
      .set("total_power", pt.total_power())
      .set("proc_power", pt.proc_power());
  return o;
}

/// Overlay `over` onto `base`, member by member; objects merge recursively
/// (for the nested "params"), everything else is replaced. Keys only in
/// `over` append after `base`'s, preserving canonical field order for the
/// fields the cache key is built from.
json::Value merge_objects(const json::Value& base, const json::Value& over) {
  json::Value out = json::Value::object();
  for (const auto& [key, val] : base.as_object()) {
    const json::Value* o = over.find(key);
    if (o == nullptr) {
      out.set(key, val);
    } else if (val.is_object() && o->is_object()) {
      out.set(key, merge_objects(val, *o));
    } else {
      out.set(key, *o);
    }
  }
  for (const auto& [key, val] : over.as_object()) {
    if (base.find(key) == nullptr) out.set(key, val);
  }
  return out;
}

/// Partial spec JSON → full ExperimentSpec: absent fields take the
/// default-constructed spec's values, and data_mode defaults to GHOST (the
/// service exists to make sim-backed answers cheap; callers wanting a
/// full-data run say {"data_mode": "full"} explicitly).
engine::ExperimentSpec spec_from_request(const json::Value& spec_json) {
  ALGE_REQUIRE(spec_json.is_object(), "\"spec\" must be a JSON object");
  json::Value merged =
      merge_objects(engine::ExperimentSpec{}.to_json(), spec_json);
  if (spec_json.find("data_mode") == nullptr) {
    merged.set("data_mode", "ghost");
  }
  return engine::ExperimentSpec::from_json(merged);
}

json::Value run_codesign(const json::Value& req, const core::AlgModel& model,
                         double n, const core::MachineParams& mp,
                         const core::OptLimits& lim) {
  const core::Optimizer solver(model, n, mp);
  const core::RunPoint best = solver.minimize_energy(lim);
  ALGE_REQUIRE(best.feasible, "codesign: no feasible min-energy point");
  const double target = require_positive(req, "target_gflops_per_watt");
  const json::Value* scale = req.find("scale");
  const core::ParamScaleSpec which =
      scale_from_string(scale == nullptr ? "all" : scale->as_string());
  const double factor = optional_double(req, "factor", 0.5);
  ALGE_REQUIRE(factor > 0.0 && factor < 1.0, "\"factor\" must be in (0,1)");
  const int max_gen =
      static_cast<int>(optional_double(req, "max_generations", 40.0));
  ALGE_REQUIRE(max_gen >= 1, "\"max_generations\" must be >= 1");
  json::Value o = json::Value::object();
  o.set("p", best.p)
      .set("M", best.M)
      .set("gflops_per_watt", core::gflops_per_watt(model, n, best.p, best.M,
                                                    mp))
      .set("target_gflops_per_watt", target)
      .set("scale", which.label())
      .set("per_generation_factor", factor)
      .set("generations",
           core::generations_to_target(model, n, best.p, best.M, mp, which,
                                       target, max_gen, factor));
  return o;
}

/// "navigate" query → navigator::NavRequest. Reuses the closed-form
/// queries' model/machine/limits conventions; budgets and the sim-stage
/// knobs come from optional fields of the same names tools/navigator uses.
/// The engine result cache is the service's own (cache_dir), so navigate
/// queries and "experiment" queries share simulations; threads is pinned
/// to 1 because the server already parallelizes across worker threads.
json::Value run_navigate(const json::Value& req,
                         const std::string& cache_dir) {
  navigator::NavRequest nr;
  nr.model = req.at("model").as_string();
  nr.n = require_positive(req, "n");
  nr.f = optional_double(req, "f", nr.f);
  nr.omega0 = optional_double(req, "omega0", nr.omega0);
  nr.params = resolve_machine(req);
  nr.limits = resolve_limits(req);
  if (const json::Value* b = req.find("budgets"); b != nullptr) {
    ALGE_REQUIRE(b->is_object(), "\"budgets\" must be a JSON object");
    if (const json::Value* v = b->find("t_max")) {
      nr.budgets.t_max = v->as_double();
    }
    if (const json::Value* v = b->find("e_max")) {
      nr.budgets.e_max = v->as_double();
    }
    if (const json::Value* v = b->find("total_power_max")) {
      nr.budgets.total_power_max = v->as_double();
    }
    if (const json::Value* v = b->find("proc_power_max")) {
      nr.budgets.proc_power_max = v->as_double();
    }
  }
  nr.p_samples = static_cast<int>(
      optional_double(req, "p_samples", nr.p_samples));
  nr.m_samples = static_cast<int>(
      optional_double(req, "m_samples", nr.m_samples));
  if (const json::Value* caps = req.find("msg_caps"); caps != nullptr) {
    for (const json::Value& c : caps->as_array()) {
      nr.msg_caps.push_back(c.as_double());
    }
  }
  if (const json::Value* s = req.find("simulate"); s != nullptr) {
    nr.simulate = s->as_bool();
  }
  nr.sim_n = static_cast<int>(optional_double(req, "sim_n", nr.sim_n));
  nr.sim_points =
      static_cast<int>(optional_double(req, "sim_points", nr.sim_points));
  if (const json::Value* plans = req.find("fault_plans"); plans != nullptr) {
    nr.fault_plans.clear();
    for (const json::Value& p : plans->as_array()) {
      nr.fault_plans.push_back(p.as_string());
    }
  }
  nr.chaos_seed = static_cast<std::uint64_t>(
      optional_double(req, "chaos_seed", static_cast<double>(nr.chaos_seed)));
  nr.crossover_target_gflops_per_watt =
      optional_double(req, "target_gflops_per_watt",
                      nr.crossover_target_gflops_per_watt);
  nr.cache_dir = cache_dir;
  nr.threads = 1;
  return navigator::navigate(nr).to_json();
}

}  // namespace

struct QueryService::InFlight {
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  bool failed = false;
  std::string error;
  std::string kind;
  std::shared_ptr<const std::string> response;          ///< byte-level
  std::shared_ptr<engine::ExperimentResult> result;     ///< spec-level
};

double ClassStats::quantile_us(double q) const {
  std::uint64_t total = 0;
  for (const std::uint64_t b : latency_ns_log2) total += b;
  if (total == 0) return 0.0;
  const double target = q * static_cast<double>(total);
  std::uint64_t cum = 0;
  for (int i = 0; i < 64; ++i) {
    cum += latency_ns_log2[i];
    if (static_cast<double>(cum) >= target) {
      // Geometric midpoint of [2^i, 2^(i+1)) ns, in µs.
      return std::exp2(i) * 1.4142135623730951e-3;
    }
  }
  return std::exp2(63) * 1e-3;
}

QueryService::QueryService(ServiceOptions opts)
    : opts_(std::move(opts)), result_cache_(opts_.cache_dir) {
  ALGE_REQUIRE(opts_.host_watts >= 0.0, "host_watts must be >= 0");
}

std::shared_ptr<const std::string> QueryService::handle(
    std::string_view request, int lane) {
  const auto t0 = obs::SpanLog::Clock::now();
  const std::uint64_t key = engine::fnv1a64(request);

  auto finish = [&](const std::string& kind,
                    const std::shared_ptr<const std::string>& resp,
                    bool cached, bool ok) {
    const auto t1 = obs::SpanLog::Clock::now();
    note(kind, std::chrono::duration<double>(t1 - t0).count(), cached, ok);
    if (opts_.spans != nullptr) {
      opts_.spans->record(kind, lane, t0, t1, cached);
    }
    return resp;
  };

  // Hot path: content-addressed answer store, no JSON parsing.
  {
    std::shared_lock lock(answer_mu_);
    if (const auto it = answers_.find(key);
        it != answers_.end() && it->second.request == request) {
      // Second chance: mark the entry hot so the eviction hand skips it.
      it->second.referenced->store(true, std::memory_order_relaxed);
      return finish(it->second.kind, it->second.response, /*cached=*/true,
                    /*ok=*/true);
    }
  }

  // Byte-level coalescing: identical concurrent requests compute once.
  std::shared_ptr<InFlight> fl;
  bool owner = false;
  {
    std::lock_guard lock(inflight_mu_);
    if (const auto it = inflight_.find(request); it == inflight_.end()) {
      fl = std::make_shared<InFlight>();
      inflight_.emplace(std::string(request), fl);
      owner = true;
    } else {
      fl = it->second;
    }
  }
  if (!owner) {
    std::unique_lock l(fl->mu);
    fl->cv.wait(l, [&] { return fl->done; });
    auto resp = fl->response;
    const std::string kind = fl->kind;
    const bool ok = !fl->failed;
    l.unlock();
    {
      std::lock_guard lock(ledger_mu_);
      ++coalesced_;
    }
    return finish(kind, resp, /*cached=*/true, ok);
  }

  std::string kind_label = "unparsed";
  bool cacheable = false;
  bool ok = false;
  auto resp = compute(request, &kind_label, &cacheable, &ok);

  bool evicted = false;
  if (ok && cacheable && opts_.answer_cache_cap > 0) {
    std::unique_lock lock(answer_mu_);
    const auto it = answers_.find(key);
    if (it != answers_.end()) {
      // Hash hit with different bytes (collision) or a racing refresh:
      // overwrite in place; the key keeps its ring slot.
      it->second.request = std::string(request);
      it->second.kind = kind_label;
      it->second.response = resp;
    } else {
      if (answers_.size() >= opts_.answer_cache_cap) {
        evict_one_locked();
        evicted = true;
      }
      answers_.emplace(
          key, Answer{std::string(request), kind_label, resp,
                      std::make_unique<std::atomic<bool>>(false)});
      clock_keys_.push_back(key);
    }
  }
  if (evicted) {
    std::lock_guard lock(ledger_mu_);
    ++answer_evictions_;
  }

  {
    std::lock_guard l(fl->mu);
    fl->response = resp;
    fl->kind = kind_label;
    fl->failed = !ok;
    fl->done = true;
  }
  fl->cv.notify_all();
  {
    std::lock_guard lock(inflight_mu_);
    inflight_.erase(inflight_.find(request));
  }

  return finish(kind_label, resp, /*cached=*/false, ok);
}

std::shared_ptr<const std::string> QueryService::compute(
    std::string_view request, std::string* kind_label, bool* cacheable,
    bool* ok) {
  json::Value resp = json::Value::object();
  *ok = false;
  *cacheable = false;
  try {
    const json::Value req = json::parse(request);
    ALGE_REQUIRE(req.is_object(), "request must be a JSON object");
    if (const json::Value* id = req.find("id"); id != nullptr) {
      resp.set("id", *id);
    }
    const std::string& kind = req.at("kind").as_string();
    *kind_label = kind;
    json::Value answer = dispatch(req, kind, cacheable);
    resp.set("ok", true).set("kind", kind).set("answer", std::move(answer));
    *ok = true;
  } catch (const std::exception& e) {
    resp.set("ok", false).set("error", std::string(e.what()));
    *cacheable = false;
  }
  return std::make_shared<const std::string>(resp.dump());
}

json::Value QueryService::dispatch(const json::Value& req,
                                   const std::string& kind,
                                   bool* cacheable) {
  *cacheable = true;
  if (kind == "ping") {
    *cacheable = false;
    return json::Value("pong");
  }
  if (kind == "stats") {
    *cacheable = false;
    return stats_json();
  }
  if (kind == "experiment") return run_experiment(req);
  if (kind == "navigate") return run_navigate(req, opts_.cache_dir);
  if (kind == "batch") {
    // The batch frame itself is never cached: each element re-enters
    // handle(), so the answer store, both coalescers and the ledger see
    // every element individually — a repeated spec hits per-spec whether
    // it arrives alone or inside a batch.
    *cacheable = false;
    return run_batch(req);
  }

  // Reject unknown kinds before demanding closed-form fields, so the
  // error names the actual problem.
  const bool closed_form =
      kind == "min_energy" || kind == "min_time" ||
      kind == "min_energy_given_time" || kind == "min_time_given_energy" ||
      kind == "min_time_given_total_power" ||
      kind == "min_energy_given_total_power" ||
      kind == "min_time_given_proc_power" ||
      kind == "min_energy_given_proc_power" || kind == "evaluate" ||
      kind == "codesign";
  if (!closed_form) {
    throw invalid_argument_error(
        strfmt("unknown query kind \"%s\"", kind.c_str()));
  }

  // Closed-form fast path: the same core::Optimizer a direct caller uses.
  const std::unique_ptr<core::AlgModel> model = make_model(req);
  const double n = require_positive(req, "n");
  const core::MachineParams mp = resolve_machine(req);
  const core::OptLimits lim = resolve_limits(req);
  if (kind == "codesign") return run_codesign(req, *model, n, mp, lim);

  const core::Optimizer solver(*model, n, mp);
  core::RunPoint pt;
  if (kind == "min_energy") {
    pt = solver.minimize_energy(lim);
  } else if (kind == "min_time") {
    pt = solver.minimize_time(lim);
  } else if (kind == "min_energy_given_time") {
    pt = solver.min_energy_given_time(require_positive(req, "t_max"), lim);
  } else if (kind == "min_time_given_energy") {
    pt = solver.min_time_given_energy(require_positive(req, "e_max"), lim);
  } else if (kind == "min_time_given_total_power") {
    pt = solver.min_time_given_total_power(
        require_positive(req, "power_max"), lim);
  } else if (kind == "min_energy_given_total_power") {
    pt = solver.min_energy_given_total_power(
        require_positive(req, "power_max"), lim);
  } else if (kind == "min_time_given_proc_power") {
    pt = solver.min_time_given_proc_power(
        require_positive(req, "proc_power_max"), lim);
  } else if (kind == "min_energy_given_proc_power") {
    pt = solver.min_energy_given_proc_power(
        require_positive(req, "proc_power_max"), lim);
  } else {
    pt = solver.evaluate(require_positive(req, "p"),
                         require_positive(req, "M"));
  }
  return run_point_json(pt);
}

json::Value QueryService::run_batch(const json::Value& req) {
  const json::Value* queries = req.find("queries");
  ALGE_REQUIRE(queries != nullptr && queries->is_array(),
               "batch query needs a \"queries\" array");
  const json::Value::Array& arr = queries->as_array();
  ALGE_REQUIRE(!arr.empty(), "batch \"queries\" must be non-empty");
  for (const json::Value& q : arr) {
    ALGE_REQUIRE(q.is_object(), "batch elements must be JSON objects");
    const json::Value* kind = q.find("kind");
    ALGE_REQUIRE(kind == nullptr || !kind->is_string() ||
                     kind->as_string() != "batch",
                 "batch queries cannot nest");
  }
  // One response element per query, in order. Element failures stay
  // element-local ({"ok": false} in place), matching the one-frame case.
  json::Value out = json::Value::array();
  for (const json::Value& q : arr) {
    const std::shared_ptr<const std::string> resp = handle(q.dump());
    out.push_back(json::parse(*resp));
  }
  return out;
}

json::Value QueryService::run_experiment(const json::Value& req) {
  const json::Value* spec_json = req.find("spec");
  ALGE_REQUIRE(spec_json != nullptr,
               "experiment query needs a \"spec\" object");
  const engine::ExperimentSpec spec = spec_from_request(*spec_json);

  if (auto cached = result_cache_.lookup(spec)) return cached->to_json();

  // Spec-level coalescing: requests that differ as bytes (ids, field
  // order, defaulted fields) but name the same simulation share one run.
  const std::string key = spec.canonical_json();
  std::shared_ptr<InFlight> fl;
  bool owner = false;
  {
    std::lock_guard lock(spec_inflight_mu_);
    if (const auto it = spec_inflight_.find(key);
        it == spec_inflight_.end()) {
      fl = std::make_shared<InFlight>();
      spec_inflight_.emplace(key, fl);
      owner = true;
    } else {
      fl = it->second;
    }
  }
  if (!owner) {
    std::unique_lock l(fl->mu);
    fl->cv.wait(l, [&] { return fl->done; });
    if (fl->failed) {
      const std::string err = fl->error;
      l.unlock();
      throw invalid_argument_error(err);
    }
    const json::Value out = fl->result->to_json();
    l.unlock();
    {
      std::lock_guard lock(ledger_mu_);
      ++spec_coalesced_;
    }
    return out;
  }

  auto publish = [&](bool failed, const std::string& error,
                     std::shared_ptr<engine::ExperimentResult> result) {
    {
      std::lock_guard l(fl->mu);
      fl->failed = failed;
      fl->error = error;
      fl->result = std::move(result);
      fl->done = true;
    }
    fl->cv.notify_all();
    std::lock_guard lock(spec_inflight_mu_);
    spec_inflight_.erase(key);
  };

  try {
    auto result = std::make_shared<engine::ExperimentResult>(
        engine::execute(spec));
    result_cache_.store(spec, *result);
    const json::Value out = result->to_json();
    publish(false, "", std::move(result));
    return out;
  } catch (const std::exception& e) {
    publish(true, e.what(), nullptr);
    throw;
  }
}

void QueryService::evict_one_locked() {
  // Second-chance sweep: a set referenced bit buys one more lap. The
  // caller holds answer_mu_ exclusively, so no hit can re-mark an entry
  // mid-sweep — after one full clearing lap the next candidate must be
  // cold, bounding the scan at two laps.
  for (std::size_t step = 0; step <= 2 * clock_keys_.size(); ++step) {
    if (clock_hand_ >= clock_keys_.size()) clock_hand_ = 0;
    const std::uint64_t k = clock_keys_[clock_hand_];
    const auto it = answers_.find(k);
    if (it == answers_.end()) {
      // Stale ring slot (defensive; structural changes keep the ring in
      // sync): compact it and retry the same position.
      clock_keys_[clock_hand_] = clock_keys_.back();
      clock_keys_.pop_back();
      continue;
    }
    if (it->second.referenced->exchange(false, std::memory_order_relaxed)) {
      ++clock_hand_;
      continue;
    }
    answers_.erase(it);
    clock_keys_[clock_hand_] = clock_keys_.back();
    clock_keys_.pop_back();
    return;
  }
  ALGE_CHECK(false, "second-chance sweep failed to evict (%zu entries)",
             answers_.size());
}

void QueryService::note(const std::string& kind, double seconds, bool hit,
                        bool ok) {
  std::lock_guard lock(ledger_mu_);
  ClassStats& cs = ledger_[kind];
  ++cs.count;
  if (hit) ++cs.answer_hits;
  if (!ok) ++cs.errors;
  cs.busy_seconds += seconds;
  const double us = seconds * 1e6;
  if (us > cs.max_us) cs.max_us = us;
  const auto ns = static_cast<std::uint64_t>(seconds * 1e9);
  const int bucket = ns == 0 ? 0 : std::bit_width(ns) - 1;
  ++cs.latency_ns_log2[bucket < 64 ? bucket : 63];
}

json::Value QueryService::stats_json() const {
  json::Value classes = json::Value::object();
  std::uint64_t coalesced = 0;
  std::uint64_t spec_coalesced = 0;
  std::uint64_t answer_evictions = 0;
  {
    std::lock_guard lock(ledger_mu_);
    for (const auto& [kind, cs] : ledger_) {
      json::Value c = json::Value::object();
      c.set("count", cs.count)
          .set("answer_hits", cs.answer_hits)
          .set("errors", cs.errors)
          .set("busy_seconds", cs.busy_seconds)
          .set("energy_of_serving_j", cs.busy_seconds * opts_.host_watts)
          .set("p50_us", cs.quantile_us(0.5))
          .set("p99_us", cs.quantile_us(0.99))
          .set("max_us", cs.max_us);
      classes.set(kind, std::move(c));
    }
    coalesced = coalesced_;
    spec_coalesced = spec_coalesced_;
    answer_evictions = answer_evictions_;
  }
  std::size_t answer_entries = 0;
  {
    std::shared_lock lock(answer_mu_);
    answer_entries = answers_.size();
  }
  const engine::ResultCache::Stats rc = result_cache_.stats();
  json::Value cache = json::Value::object();
  cache.set("hits", rc.hits)
      .set("disk_hits", rc.disk_hits)
      .set("misses", rc.misses)
      .set("corrupt", rc.corrupt);
  json::Value o = json::Value::object();
  o.set("classes", std::move(classes))
      .set("coalesced", coalesced)
      .set("spec_coalesced", spec_coalesced)
      .set("answer_store_entries", answer_entries)
      .set("answer_evictions", answer_evictions)
      .set("host_watts", opts_.host_watts)
      .set("result_cache", std::move(cache));
  return o;
}

}  // namespace alge::serve
