#include "serve/server.hpp"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <string>
#include <string_view>

#include "serve/protocol.hpp"
#include "support/common.hpp"

namespace alge::serve {

namespace {

std::string error_response(std::string_view message) {
  json::Value resp = json::Value::object();
  resp.set("ok", false).set("error", std::string(message));
  return resp.dump();
}

}  // namespace

Server::Server(QueryService& service, ServerOptions opts)
    : service_(service), opts_(opts) {
  ALGE_REQUIRE(opts_.threads >= 1, "need at least one worker thread");
  ALGE_REQUIRE(opts_.max_frame_bytes >= 16, "max_frame_bytes too small");
}

Server::~Server() { stop(); }

void Server::start() {
  ALGE_REQUIRE(!started_, "server already started");
  listen_fd_ = listen_tcp(opts_.port, opts_.backlog, &port_);
  // Queue capacity bounds connections waiting for a free worker; accept()
  // keeps succeeding (kernel backlog) but submit() applies backpressure.
  pool_ = std::make_unique<engine::ThreadPool>(
      opts_.threads, /*queue_capacity=*/1024);
  acceptor_ = std::thread([this] { accept_loop(); });
  started_ = true;
}

void Server::accept_loop() {
  for (int lane = 0;; ++lane) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (!stopping_.load() && errno == EINTR) continue;
      return;  // listen fd closed by stop(), or fatal error
    }
    if (stopping_.load()) {
      ::close(fd);
      return;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    // A peer that stops reading cannot pin a worker forever during
    // shutdown: writes time out and the handler exits.
    timeval tv{60, 0};
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
    {
      std::lock_guard lock(mu_);
      ++stats_.connections_accepted;
      open_fds_.insert(fd);
    }
    try {
      pool_->submit([this, fd, lane] { handle_connection(fd, lane); });
    } catch (const std::exception&) {
      // Pool shut down under us (stop() racing accept): close and exit.
      std::lock_guard lock(mu_);
      open_fds_.erase(fd);
      ::close(fd);
      return;
    }
  }
}

void Server::handle_connection(int fd, int lane) {
  FrameReader reader(fd, opts_.max_frame_bytes);
  std::string out;
  std::size_t requests = 0;
  std::size_t protocol_errors = 0;
  bool open = true;
  while (open) {
    std::string_view payload;
    switch (reader.next(&payload)) {
      case FrameReader::Status::kFrame: {
        const auto resp = service_.handle(payload, lane);
        append_frame(out, *resp);
        ++requests;
        // Batch: flush only when no further complete frame is buffered.
        if (!reader.frame_buffered()) {
          if (!write_all(fd, out)) open = false;
          out.clear();
        }
        break;
      }
      case FrameReader::Status::kEmpty:
        ++protocol_errors;
        append_frame(out, error_response("empty frame"));
        if (!write_all(fd, out)) open = false;
        out.clear();
        break;
      case FrameReader::Status::kTooLarge:
        ++protocol_errors;
        append_frame(out,
                     error_response(strfmt("frame exceeds %zu bytes",
                                           opts_.max_frame_bytes)));
        write_all(fd, out);
        out.clear();
        open = false;  // stream is no longer framed
        break;
      case FrameReader::Status::kTruncated:
        ++protocol_errors;
        open = false;
        break;
      case FrameReader::Status::kClosed:
      case FrameReader::Status::kError:
        if (!out.empty()) write_all(fd, out);
        open = false;
        break;
    }
  }
  {
    std::lock_guard lock(mu_);
    stats_.requests += requests;
    stats_.protocol_errors += protocol_errors;
    open_fds_.erase(fd);
  }
  ::close(fd);
}

void Server::stop() {
  if (!started_) return;
  if (!stopping_.exchange(true)) {
    // Unblock accept() and refuse new connections.
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    acceptor_.join();
    // Drain: half-close every open connection. Readers see EOF after the
    // requests already sent, handlers respond to those and exit.
    {
      std::lock_guard lock(mu_);
      for (const int fd : open_fds_) ::shutdown(fd, SHUT_RD);
    }
    pool_->drain();
    listen_fd_ = -1;
  }
}

Server::Stats Server::stats() const {
  std::lock_guard lock(mu_);
  Stats s = stats_;
  s.connections_open = open_fds_.size();
  return s;
}

}  // namespace alge::serve
