// QueryService: the optimizer query engine behind the TCP server, usable
// in-process (tests, serve_client --crosscheck, serve_loadtest) without any
// socket.
//
// A request is one JSON object; `kind` selects the query class:
//
//   closed-form (§V, via core::Optimizer — microseconds, no simulation):
//     "min_energy" / "min_time"                         V-A
//     "min_energy_given_time"        (t_max)            V-B: pmin for a
//                                                       deadline
//     "min_time_given_energy"        (e_max)            V-C
//     "min_time_given_total_power" / "min_energy_given_total_power"
//                                    (power_max)        V-D (Eq. 19 space)
//     "min_time_given_proc_power" / "min_energy_given_proc_power"
//                                    (proc_power_max)   V-E (Eq. 20 space)
//     "evaluate"                     (p, M)             one Fig.-4 point
//     "codesign"  (target_gflops_per_watt, scale, …)    V-F / Figs. 6-7
//   sim-backed:
//     "experiment" (spec: partial ExperimentSpec JSON)  ghost-mode engine
//                                                       evaluation; absent
//                                                       spec fields take
//                                                       ExperimentSpec
//                                                       defaults and
//                                                       data_mode defaults
//                                                       to GHOST
//     "navigate"   (p_samples, m_samples, budgets, simulate, fault_plans,
//                  …)                                 full Pareto-frontier
//                                                     report from
//                                                     src/navigator, with
//                                                     optional engine
//                                                     scoring + chaos
//                                                     re-score; shares the
//                                                     service's engine
//                                                     result cache
//   framing: "batch" {"queries": [...]} — every element is re-dispatched
//            through handle() (answer store, coalescers and ledger all hit
//            per-spec), responses return as one array in order; element
//            failures stay element-local; batches cannot nest and the
//            batch frame itself is never cached
//   admin (never cached): "ping", "stats"
//
// plus "model" ("nbody" [f] | "classical-mm" | "strassen" [omega0] |
// "lu-2.5d" | "fft-naive" | "fft-tree"), "n", a machine ("machine":
// "case-study" (default; mem_words zeroed so the optimizer chooses M, as in
// bench/sec5_optimizer) | "unit", or explicit "params" in the engine's
// canonical encoding), optional "limits" {p_available, M_cap}, and an
// optional "id" echoed verbatim in the response.
//
// Responses: {"id"?, "ok": true, "kind": …, "answer": {…}} or {"id"?,
// "ok": false, "error": "…"}. The answer object is built by the exact same
// core::Optimizer / engine::execute calls a direct caller would make and is
// serialized with round-trip doubles, so served answers are bit-identical
// to local evaluation — the property the tests and the CI smoke assert.
//
// The answer store is content-addressed, like the engine cache: the FNV-1a
// hash of the raw request bytes keys a response-bytes map, so the steady-
// state hot path is hash → lookup → respond, with no JSON parsing at all
// (that is what makes 100k+ queries/s possible on one core). Identical
// requests in flight are coalesced at two levels: byte-identical requests
// share one computation, and distinct requests that reduce to the same
// ExperimentSpec share one ghost simulation through the spec-level
// coalescer and the engine's (optionally on-disk, cross-process) result
// cache. Per-class serving cost is metered in a ledger: query counts,
// answer-cache hits, a log-spaced latency histogram (approximate p50/p99),
// and the energy of serving itself, modeled as busy-seconds × host_watts —
// Eq. (2)'s εe·T term applied to the server.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "engine/cache.hpp"
#include "obs/span_log.hpp"
#include "support/json.hpp"

namespace alge::serve {

struct ServiceOptions {
  /// Engine result-cache directory ("" = in-memory only). Safe to share
  /// with other servers and CLIs: the store is atomic-rename, torn entries
  /// read as misses.
  std::string cache_dir;
  /// Answer-store entry cap. At capacity a second-chance (clock) sweep
  /// evicts the first entry not hit since the hand last passed it, so hot
  /// answers — e.g. the closed-form §V queries a dashboard polls — survive
  /// floods of one-shot experiment queries. 0 disables retention entirely.
  std::size_t answer_cache_cap = 1 << 16;
  /// Watts drawn by the host while a worker computes, for the
  /// energy-of-serving ledger. Default: the case-study chip's TDP.
  double host_watts = 150.0;
  /// Optional per-request span recorder (one span per handled request,
  /// lane = caller-supplied worker id).
  obs::SpanLog* spans = nullptr;
};

/// Per-query-class serving ledger entry (see stats_json for the encoding).
struct ClassStats {
  std::uint64_t count = 0;
  std::uint64_t answer_hits = 0;  ///< served straight from the answer store
  std::uint64_t errors = 0;
  double busy_seconds = 0.0;  ///< wall time inside handle() for this class
  double max_us = 0.0;
  /// Log-spaced latency histogram: bucket i counts requests with latency in
  /// [2^i, 2^(i+1)) ns; quantiles interpolate geometrically.
  std::uint64_t latency_ns_log2[64] = {};

  double quantile_us(double q) const;  ///< approximate, from the histogram
};

class QueryService {
 public:
  explicit QueryService(ServiceOptions opts = {});

  /// Handle one request frame; returns the response bytes (shared so the
  /// hot path never copies a cached answer). Never throws on bad input —
  /// malformed requests get {"ok": false} responses. `lane` labels the span
  /// when tracing is on.
  std::shared_ptr<const std::string> handle(std::string_view request,
                                            int lane = 0);

  /// The serving ledger + cache counters, as the "stats" query returns
  /// them.
  json::Value stats_json() const;

  engine::ResultCache& result_cache() { return result_cache_; }
  const ServiceOptions& options() const { return opts_; }

 private:
  struct InFlight;

  std::shared_ptr<const std::string> compute(std::string_view request,
                                             std::string* kind_label,
                                             bool* cacheable, bool* ok);
  json::Value dispatch(const json::Value& req, const std::string& kind,
                       bool* cacheable);
  json::Value run_experiment(const json::Value& req);
  /// "batch": re-dispatch every element of "queries" through handle() (so
  /// per-spec caching/coalescing still applies) and return the array of
  /// their responses. The batch frame itself is never cached.
  json::Value run_batch(const json::Value& req);
  void note(const std::string& kind, double seconds, bool hit, bool ok);

  ServiceOptions opts_;
  engine::ResultCache result_cache_;

  /// Answer store: FNV-1a(request bytes) → response bytes. The canonical
  /// spec string is kept alongside for the same collision guard the engine
  /// cache uses (a hash collision degrades to a recompute, never to a wrong
  /// answer).
  struct Answer {
    std::string request;  ///< collision guard: full request bytes
    std::string kind;     ///< query class, for the hit-path ledger
    std::shared_ptr<const std::string> response;
    /// Second-chance bit: set on every hit (readers hold only the shared
    /// lock, hence atomic; boxed so the entry stays movable), cleared as
    /// the eviction hand sweeps past.
    std::unique_ptr<std::atomic<bool>> referenced;
  };
  mutable std::shared_mutex answer_mu_;
  std::unordered_map<std::uint64_t, Answer> answers_;
  /// Clock ring over the resident keys + sweep hand (guarded by a unique
  /// answer_mu_ lock, like all structural changes to the store).
  std::vector<std::uint64_t> clock_keys_;
  std::size_t clock_hand_ = 0;

  /// Evict one entry via the second-chance sweep. Caller holds answer_mu_
  /// exclusively and guarantees the store is non-empty.
  void evict_one_locked();

  /// Byte-level in-flight coalescing: concurrent identical requests wait
  /// for the first one's response instead of recomputing.
  std::mutex inflight_mu_;
  std::map<std::string, std::shared_ptr<InFlight>, std::less<>> inflight_;

  /// Spec-level in-flight coalescing for "experiment" queries that differ
  /// as bytes (ids, field order) but name the same simulation.
  std::mutex spec_inflight_mu_;
  std::map<std::string, std::shared_ptr<InFlight>, std::less<>>
      spec_inflight_;

  mutable std::mutex ledger_mu_;
  std::map<std::string, ClassStats> ledger_;
  std::uint64_t coalesced_ = 0;       ///< requests served by a peer's compute
  std::uint64_t spec_coalesced_ = 0;  ///< experiments merged at spec level
  std::uint64_t answer_evictions_ = 0;  ///< entries displaced at capacity
};

}  // namespace alge::serve
