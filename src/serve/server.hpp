// Multi-threaded TCP front end for QueryService: an acceptor thread feeds
// connections to an engine::ThreadPool of workers; each worker owns one
// connection at a time and runs its read-frame → handle → write-frame loop
// until the peer disconnects. Responses are batched: while more complete
// request frames are already buffered (pipelined clients), their responses
// accumulate and flush as one write(), so syscall count scales with bursts,
// not with queries.
//
// Malformed traffic never takes the server down: a zero-length frame or
// unparsable JSON gets a structured {"ok": false} response and the stream
// continues; an oversized frame gets the error response and the connection
// is closed (the stream can no longer be framed); a disconnect mid-frame
// just closes the connection.
//
// stop() is graceful with connection draining: stop accepting, half-close
// (SHUT_RD) every open connection so in-flight requests finish and their
// responses flush, then drain the worker pool. The destructor stops.
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <mutex>
#include <set>
#include <thread>

#include "engine/pool.hpp"
#include "serve/protocol.hpp"
#include "serve/service.hpp"

namespace alge::serve {

struct ServerOptions {
  int port = 0;     ///< 0 = kernel-assigned ephemeral port (see port())
  int threads = 2;  ///< worker pool size == max concurrent connections
  std::size_t max_frame_bytes = kDefaultMaxFrameBytes;
  int backlog = 64;
};

class Server {
 public:
  /// `service` must outlive the server.
  Server(QueryService& service, ServerOptions opts = {});
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind 127.0.0.1 and start accepting; throws invalid_argument_error if
  /// the port is taken.
  void start();

  /// The bound port (valid after start()).
  int port() const { return port_; }

  /// Graceful shutdown; idempotent, called by the destructor.
  void stop();

  struct Stats {
    std::size_t connections_accepted = 0;
    std::size_t connections_open = 0;
    std::size_t requests = 0;
    std::size_t protocol_errors = 0;  ///< empty/oversized/truncated frames
  };
  Stats stats() const;

 private:
  void accept_loop();
  void handle_connection(int fd, int lane);

  QueryService& service_;
  ServerOptions opts_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> stopping_{false};
  bool started_ = false;
  std::thread acceptor_;
  std::unique_ptr<engine::ThreadPool> pool_;

  mutable std::mutex mu_;
  std::set<int> open_fds_;
  Stats stats_;
};

}  // namespace alge::serve
