// Ablation — CAPS schedules and the local cutoff (DESIGN.md §5): BFS-early
// minimizes traffic but needs 7/4 more memory per level; DFS defers the
// exchange to smaller subproblems (more words, less memory) — the paper's
// FLM memory-communication trade-off made concrete. Also sweeps the local
// Strassen cutoff's effect on flop counts.
#include <iostream>

#include "algs/harness.hpp"
#include "algs/strassen/local.hpp"
#include "bench_common.hpp"
#include "support/table.hpp"

int main() {
  using namespace alge;
  bench::banner("Ablation: CAPS schedule (BFS/DFS order) and local cutoff",
                "n=56, p=7 (k=1), unit parameters. B early = fewer words, "
                "more memory; D early = the reverse.");
  Table t({"schedule", "W/rank", "S/rank", "mem high-water/rank (words)",
           "T (sim)", "max |err|"});
  for (const char* sched : {"BD", "DB"}) {
    algs::CapsOptions opts;
    opts.schedule = sched;
    opts.local_cutoff = 4;
    const auto r = algs::harness::run_caps(56, 1, core::MachineParams::unit(),
                                           opts, /*verify=*/true);
    t.row()
        .cell(sched)
        .cell(r.words_per_proc(), "%.0f")
        .cell(r.msgs_per_proc(), "%.0f")
        .cell(r.totals.mem_highwater_max)
        .cell(r.makespan, "%.0f")
        .cell(r.max_abs_error, "%.2g");
  }
  t.print(std::cout);

  std::cout << "\nLocal cutoff: flops of the sequential base-case multiply "
               "(n=64):\n";
  Table c({"cutoff", "levels", "flops", "vs classical"});
  const double classical = 2.0 * 64.0 * 64.0 * 64.0;
  for (int cutoff : {64, 32, 16, 8, 4, 2}) {
    c.row()
        .cell(cutoff)
        .cell(algs::strassen_levels(64, cutoff))
        .cell(algs::strassen_flops(64, cutoff), "%.0f")
        .cell(algs::strassen_flops(64, cutoff) / classical, "%.3f");
  }
  c.print(std::cout);
  std::cout << "\nEach Strassen level trades an 8x recursion for 7 products "
               "plus 18 quadrant additions; at small sizes the additions "
               "win, which is why a cutoff exists.\n";
  return 0;
}
