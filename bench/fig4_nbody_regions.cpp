// Figure 4 — possible executions of the data-replicating n-body algorithm
// in the (p, M) plane for a fixed n, on the case-study machine parameters:
//
//   (a) energy is independent of p, minimized at M = M0; constant-time
//       contours run diagonally (time falls with p and with M);
//   (b) the sets of runs admitted by an energy budget and by a
//       per-processor power budget (both are horizontal bands in M);
//   (c) the sets admitted by a total-power budget and by a deadline, and
//       the minimum-energy-given-runtime / given-total-power points.
//
// The algorithm is only runnable between the 1D limit M = n/p and the 2D
// limit M = n/sqrt(p).
#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "core/algmodel.hpp"
#include "core/closed_forms.hpp"
#include "core/nbody_opt.hpp"
#include "core/opt.hpp"
#include "machines/db.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace alge;
  CliArgs cli;
  cli.add_flag("n", "1e7", "number of particles");
  cli.add_flag("f", "20", "flops per interaction");
  cli.add_flag("p_points", "9", "grid points in p");
  cli.add_flag("m_points", "7", "grid points in M");
  cli.parse(argc, argv);
  if (cli.help_requested()) {
    std::cout << cli.usage("fig4_nbody_regions");
    return 0;
  }
  const double n = cli.get_double("n");
  const double f = cli.get_double("f");
  const int pn = static_cast<int>(cli.get_int("p_points"));
  const int mn = static_cast<int>(cli.get_int("m_points"));

  core::MachineParams mp = machines::CaseStudyMachine{}.params();
  mp.mem_words = 0.0;  // the sweep chooses M itself
  core::NBodyModel model(f);
  core::NBodyOptimum opt(f, mp);
  const double M0 = opt.M0();
  const double e_star = opt.min_energy(n);

  bench::banner("Figure 4",
                "Data-replicating n-body executions in the (p, M) plane on "
                "the case-study machine.");
  std::cout << "n = " << n << ", f = " << f << "\n"
            << "M0 (energy-optimal memory)      = " << M0 << " words\n"
            << "E* (minimum energy, Eq. 18)     = " << e_star << " J\n"
            << "E* attainable for p in [" << opt.min_energy_p_lo(n) << ", "
            << opt.min_energy_p_hi(n) << "]\n\n";

  // Budgets for panels (b) and (c).
  const double e_budget = 1.2 * e_star;
  const double pp_budget = 1.5 * opt.proc_power(M0);
  const double t_budget = opt.time_threshold_for_optimum() / 4.0;
  const double tot_budget =
      4.0 * opt.proc_power(M0) * opt.min_energy_p_lo(n);

  std::cout << "Panel budgets: Emax = 1.2 E* = " << e_budget
            << " J; per-proc power <= " << pp_budget
            << " W; Tmax = " << t_budget << " s; total power <= "
            << tot_budget << " W\n\n";

  Table t({"p", "M", "M/M0", "T (s)", "E (J)", "E/E*", "P_tot (W)",
           "P/proc (W)", "<=Emax", "<=Pproc", "<=Tmax", "<=Ptot"});
  const double p_lo = n / (8.0 * M0);       // spans both sides of the M0 band
  const double p_hi = 8.0 * n * n / (M0 * M0);
  for (int i = 0; i < pn; ++i) {
    const double p = p_lo * std::pow(p_hi / p_lo,
                                     static_cast<double>(i) / (pn - 1));
    const double m_min = model.min_memory(n, p);
    const double m_max = model.max_useful_memory(n, p);
    for (int j = 0; j < mn; ++j) {
      const double M = m_min * std::pow(m_max / m_min,
                                        static_cast<double>(j) / (mn - 1));
      const double T = model.time(n, p, M, mp);
      const double E = model.energy(n, p, M, mp);
      const double ptot = E / T;
      const double pproc = ptot / p;
      t.row()
          .cell(p, "%.3g")
          .cell(M, "%.3g")
          .cell(M / M0, "%.3g")
          .cell(T, "%.3g")
          .cell(E, "%.4g")
          .cell(E / e_star, "%.4f")
          .cell(ptot, "%.3g")
          .cell(pproc, "%.3g")
          .cell(E <= e_budget ? "yes" : "no")
          .cell(pproc <= pp_budget ? "yes" : "no")
          .cell(T <= t_budget ? "yes" : "no")
          .cell(ptot <= tot_budget ? "yes" : "no");
    }
  }
  t.print(std::cout);

  // Panel (c)'s marked points.
  std::cout << "\nClosed-form marks (Section V):\n";
  std::cout << "  min energy given Tmax: E = "
            << opt.min_energy_given_time(n, t_budget)
            << " J at p >= " << opt.p_min_for_time(n, t_budget) << "\n";
  std::cout << "  min time given Emax:   T = "
            << opt.min_time_given_energy(n, e_budget) << " s at p = "
            << opt.max_p_given_energy(n, e_budget) << "\n";
  std::cout << "  max p given total power (at M0): "
            << opt.max_p_given_total_power(tot_budget, M0) << "\n";
  std::cout << "  max M given per-proc power:      "
            << opt.max_M_given_proc_power(pp_budget) << " words (M0 = "
            << M0 << ")\n";

  // Cross-check with the generic optimizer.
  core::Optimizer solver(model, n, mp);
  const auto best = solver.minimize_energy();
  std::cout << "\nGeneric optimizer cross-check: min E = " << best.E
            << " J at M = " << best.M << " (closed form: " << e_star
            << " J at M0 = " << M0 << ")\n";
  return 0;
}
