// Section IV, FFT: no perfect strong scaling range, and the all-to-all
// choice trades words for messages — naive: W = n/p, S = p; tree (Bruck):
// W = (n/p)·log p, S = log p. Measured on the four-step FFT, with the
// model rows alongside.
#include <cmath>
#include <iostream>

#include "algs/harness.hpp"
#include "bench_common.hpp"
#include "core/algmodel.hpp"
#include "support/cli.hpp"
#include "support/common.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace alge;
  CliArgs cli;
  cli.add_flag("r", "32", "R dimension (n = R*C complex points)");
  cli.add_flag("c", "32", "C dimension");
  cli.add_flag("verify", "true", "check against a naive DFT");
  cli.parse(argc, argv);
  if (cli.help_requested()) {
    std::cout << cli.usage("fft_alltoall_tradeoff");
    return 0;
  }
  const int r_dim = static_cast<int>(cli.get_int("r"));
  const int c_dim = static_cast<int>(cli.get_int("c"));
  const bool verify = cli.get_bool("verify");
  const int n = r_dim * c_dim;

  bench::banner("FFT all-to-all trade-off (Section IV)",
                "Naive exchange: W = n/p, S = p. Tree (Bruck): W = "
                "(n/p)·log2 p, S = log2 p. Words are 2 doubles per complex "
                "point.");

  core::MachineParams mp = core::MachineParams::unit();
  Table t({"p", "variant", "W/rank", "S/rank", "T (sim)", "E (sim)",
           "max |err|"});
  for (int p : {4, 8, 16, 32}) {
    if (r_dim % p != 0 || c_dim % p != 0) continue;
    for (auto kind : {algs::AllToAllKind::kDirect, algs::AllToAllKind::kBruck}) {
      // Verification is O(n^2); only do it at the smallest size.
      const bool v = verify && p == 4;
      const auto r = algs::harness::run_fft(r_dim, c_dim, p, kind, mp, v);
      t.row()
          .cell(p)
          .cell(kind == algs::AllToAllKind::kDirect ? "naive" : "bruck")
          .cell(r.words_per_proc(), "%.0f")
          .cell(r.msgs_per_proc(), "%.0f")
          .cell(r.makespan, "%.0f")
          .cell(r.energy.total(), "%.4g")
          .cell(v ? strfmt("%.2g", r.max_abs_error) : std::string("-"));
    }
  }
  t.print(std::cout);

  std::cout << "\nModel (per-processor costs, constants omitted):\n";
  core::FftModel naive(core::FftModel::AllToAll::kNaive);
  core::FftModel tree(core::FftModel::AllToAll::kTree);
  Table m({"p", "naive W", "naive S", "tree W", "tree S"});
  for (double p : {4.0, 8.0, 16.0, 32.0}) {
    const auto cn = naive.costs(n, p, n / p, mp.max_msg_words);
    const auto ct = tree.costs(n, p, n / p, mp.max_msg_words);
    m.row()
        .cell(p, "%.0f")
        .cell(cn.W, "%.0f")
        .cell(cn.S, "%.0f")
        .cell(ct.W, "%.0f")
        .cell(ct.S, "%.1f");
  }
  m.print(std::cout);
  std::cout << "\nNo strong-scaling region: the naive S grows with p and "
               "the tree S never falls — and extra memory is useless "
               "(M = n/p always).\n";
  return 0;
}
