// Perfect strong scaling check for CAPS Strassen (Eqs. 13–14): p grows by
// 7 per BFS level with the matrix fixed; runtime should fall ~7x per level
// while the Eq. (2) energy stays within a small band (the paper's FLM
// regime claim with ω0 = log2 7).
#include <iostream>

#include "algs/harness.hpp"
#include "bench_common.hpp"
#include "core/algmodel.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace alge;
  CliArgs cli;
  cli.add_flag("n", "28", "matrix dimension (28 or 56 keep layouts aligned)");
  cli.add_flag("kmax", "2", "largest BFS level count (p = 7^k)");
  cli.add_flag("verify", "true", "check against a serial product");
  cli.parse(argc, argv);
  if (cli.help_requested()) {
    std::cout << cli.usage("scaling_strassen_energy");
    return 0;
  }
  const int n = static_cast<int>(cli.get_int("n"));
  const int kmax = static_cast<int>(cli.get_int("kmax"));
  const bool verify = cli.get_bool("verify");

  bench::banner("Strong scaling: CAPS Strassen (Eqs. 13-14)",
                "p = 7^k, fixed n; expect T x p ~ constant (modulo the "
                "local Strassen speedup) and E within a small band.");

  core::MachineParams mp;
  mp.gamma_t = 1.0;
  mp.beta_t = 2.0;
  mp.alpha_t = 10.0;
  mp.gamma_e = 1.0;
  mp.beta_e = 4.0;
  mp.alpha_e = 20.0;
  mp.delta_e = 1e-4;
  mp.eps_e = 1e-2;
  mp.max_msg_words = 64;

  Table t({"k", "p", "T (sim)", "T x p / (T x p)_0", "E (sim)", "E/E_0",
           "W/rank", "S/rank", "max |err|"});
  double t0p = -1.0;
  double e0 = -1.0;
  for (int k = 0; k <= kmax; ++k) {
    algs::CapsOptions opts;
    opts.local_cutoff = 4;
    const auto r = algs::harness::run_caps(n, k, mp, opts, verify);
    const double txp = r.makespan * r.p;
    const double e = r.energy.total();
    if (t0p < 0.0) {
      t0p = txp;
      e0 = e;
    }
    t.row()
        .cell(k)
        .cell(r.p)
        .cell(r.makespan, "%.0f")
        .cell(txp / t0p, "%.3f")
        .cell(e, "%.4g")
        .cell(e / e0, "%.3f")
        .cell(r.words_per_proc(), "%.0f")
        .cell(r.msgs_per_proc(), "%.0f")
        .cell(r.max_abs_error, "%.2g");
  }
  t.print(std::cout);
  std::cout << "\n(The T x p column rises mildly with k because the "
               "distributed levels replace local Strassen levels with the "
               "classical-count additions plus communication; the energy "
               "band is the paper's claim.)\n";
  return 0;
}
