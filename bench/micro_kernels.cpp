// Wall-clock micro-benchmarks (google-benchmark) for the hot local kernels
// and the simulator substrate itself: these bound how large a simulated
// experiment the repo can run, and catch performance regressions in the
// fiber/message machinery.
#include <benchmark/benchmark.h>

#include <vector>

#include "algs/fft/fft.hpp"
#include "algs/matmul/local.hpp"
#include "algs/strassen/local.hpp"
#include "fiber/fiber.hpp"
#include "sim/comm.hpp"
#include "sim/machine.hpp"
#include "support/rng.hpp"

namespace {

using namespace alge;

void BM_MatmulNaive(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(1);
  const auto a = algs::random_matrix(n, n, rng);
  const auto b = algs::random_matrix(n, n, rng);
  std::vector<double> c(a.size(), 0.0);
  for (auto _ : state) {
    algs::matmul_add(a.data(), b.data(), c.data(), n, n, n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * int64_t{n} * n * n);
}
BENCHMARK(BM_MatmulNaive)->Arg(64)->Arg(128);

void BM_MatmulBlocked(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(1);
  const auto a = algs::random_matrix(n, n, rng);
  const auto b = algs::random_matrix(n, n, rng);
  std::vector<double> c(a.size(), 0.0);
  for (auto _ : state) {
    algs::matmul_add_blocked(a.data(), b.data(), c.data(), n, n, n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * int64_t{n} * n * n);
}
BENCHMARK(BM_MatmulBlocked)->Arg(64)->Arg(128)->Arg(256);

void BM_StrassenLocal(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(2);
  const auto a = algs::random_matrix(n, n, rng);
  const auto b = algs::random_matrix(n, n, rng);
  std::vector<double> c(a.size(), 0.0);
  for (auto _ : state) {
    algs::strassen_multiply(a, b, c, n, 32);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(
      state.iterations() *
      static_cast<int64_t>(algs::strassen_flops(n, 32)));
}
BENCHMARK(BM_StrassenLocal)->Arg(128)->Arg(256);

void BM_FftLocal(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(3);
  std::vector<double> x(2 * static_cast<std::size_t>(n));
  rng.fill_uniform(x, -1.0, 1.0);
  for (auto _ : state) {
    algs::fft_inplace(std::span<double>(x), n);
    benchmark::DoNotOptimize(x.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_FftLocal)->Arg(1 << 10)->Arg(1 << 14);

void BM_FiberSwitch(benchmark::State& state) {
  // Round-trip cost of suspending/resuming fibers: two fibers yielding to
  // each other through the scheduler.
  const int yields = 10000;
  for (auto _ : state) {
    fiber::Scheduler s;
    for (int f = 0; f < 2; ++f) {
      s.spawn([&] {
        for (int i = 0; i < yields; ++i) fiber::Scheduler::active()->yield();
      });
    }
    s.run();
  }
  state.SetItemsProcessed(state.iterations() * 2 * yields);
}
BENCHMARK(BM_FiberSwitch);

void BM_SimMessageRoundtrip(benchmark::State& state) {
  // Ping-pong throughput of the simulated point-to-point layer.
  const int rounds = 1000;
  sim::MachineConfig cfg;
  cfg.p = 2;
  cfg.params = core::MachineParams::unit();
  for (auto _ : state) {
    sim::Machine m(cfg);
    m.run([&](sim::Comm& c) {
      std::vector<double> buf(8, 1.0);
      for (int i = 0; i < rounds; ++i) {
        if (c.rank() == 0) {
          c.send(1, buf);
          c.recv(1, buf);
        } else {
          c.recv(0, buf);
          c.send(0, buf);
        }
      }
    });
  }
  state.SetItemsProcessed(state.iterations() * 2 * rounds);
}
BENCHMARK(BM_SimMessageRoundtrip);

void BM_SimBroadcast64(benchmark::State& state) {
  const int p = static_cast<int>(state.range(0));
  sim::MachineConfig cfg;
  cfg.p = p;
  cfg.params = core::MachineParams::unit();
  for (auto _ : state) {
    sim::Machine m(cfg);
    m.run([&](sim::Comm& c) {
      std::vector<double> buf(64, 1.0);
      c.bcast(buf, 0, sim::Group::world(p));
    });
  }
  state.SetItemsProcessed(state.iterations() * p);
}
BENCHMARK(BM_SimBroadcast64)->Arg(16)->Arg(64)->Arg(256);

}  // namespace

BENCHMARK_MAIN();
