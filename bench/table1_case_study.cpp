// Table I — parameters of the dual-socket Sandy Bridge (Jaketown) case
// study: the published model parameters plus our re-derivations from the
// datasheet fields, flagging where they differ (discussed in
// EXPERIMENTS.md).
#include <iostream>

#include "bench_common.hpp"
#include "machines/db.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

int main() {
  using namespace alge;
  bench::banner("Table I",
                "Case-study machine parameters: published value vs value "
                "re-derived from the datasheet fields.");
  const machines::CaseStudyMachine jaketown;
  const core::MachineParams mp = jaketown.params();

  Table spec({"datasheet field", "value"});
  spec.row().cell("Core Freq (GHz)").cell(jaketown.core_freq_ghz, "%.1f");
  spec.row().cell("SIMD width (single precision)").cell(jaketown.simd_width);
  spec.row().cell("Data width (bytes)").cell(jaketown.data_width_bytes);
  spec.row().cell("Cores on node").cell(jaketown.cores_per_node);
  spec.row().cell("Peak FP (GFLOP/s)").cell(jaketown.peak_gflops, "%.1f");
  spec.row().cell("M (words)").cell(jaketown.M_words, "%.0f");
  spec.row().cell("m (words)").cell(jaketown.m_words, "%.0f");
  spec.row().cell("Chip TDP (W)").cell(jaketown.chip_tdp_watts, "%.0f");
  spec.row().cell("Link BW (GB/s)").cell(jaketown.link_gbytes_per_s, "%.2f");
  spec.row().cell("Link latency (s)").cell(jaketown.link_latency_s, "%.3g");
  spec.row().cell("Link active power (W)").cell(jaketown.link_active_power_w,
                                                "%.2f");
  spec.row().cell("DRAM DIMMs/socket").cell(jaketown.dimms_per_socket);
  spec.row().cell("DRAM DIMM power (W)").cell(jaketown.dimm_power_w, "%.1f");
  spec.print(std::cout);
  std::cout << '\n';

  Table params({"parameter", "published", "derived", "rel.diff"});
  auto row = [&](const char* name, double published, double derived) {
    params.row()
        .cell(name)
        .cell(published, "%.6g")
        .cell(derived, "%.6g")
        .cell(rel_diff(published, derived), "%.2g");
  };
  row("gamma_e (J/flop)", mp.gamma_e, jaketown.derived_gamma_e());
  row("beta_e (J/word)", mp.beta_e, jaketown.derived_beta_e());
  row("alpha_e (J/msg)", mp.alpha_e, 0.0);
  row("delta_e (J/word/s)", mp.delta_e, jaketown.derived_delta_e());
  row("eps_e (J/s)", mp.eps_e, 0.0);
  row("gamma_t (s/flop)", mp.gamma_t, jaketown.derived_gamma_t());
  row("beta_t (s/word)", mp.beta_t, jaketown.derived_beta_t());
  row("alpha_t (s/msg)", mp.alpha_t, jaketown.link_latency_s);
  params.print(std::cout);
  std::cout << "\nNote: the published beta_e equals gamma_e exactly; the "
               "paper's stated derivation (beta_t x link power) gives "
               "3.36e-10. Both are recorded; see EXPERIMENTS.md.\n";
  return 0;
}
