// Extension — heterogeneous processing ([7], cited in Section III): Table
// II's two "poles of efficiency" combined into one machine (GPU-class +
// ARM-class processors). The makespan-optimal partition gives each
// processor work inversely proportional to its effective rate; the equal
// split waits for the slow pole. Energy uses each class's own γe.
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "core/hetero.hpp"
#include "machines/db.hpp"
#include "sim/comm.hpp"
#include "sim/machine.hpp"
#include "support/table.hpp"

int main() {
  using namespace alge;
  bench::banner("Extension: heterogeneous machine (Table II's two poles)",
                "2x GTX590-class + 8x ARM-A9-class processors sharing one "
                "workload; balanced partition vs equal split.");
  const auto& procs = machines::table2_processors();
  const machines::ProcessorSpec* gpu = nullptr;
  const machines::ProcessorSpec* arm = nullptr;
  for (const auto& s : procs) {
    if (s.name == "Nvidia GTX590") gpu = &s;
    if (s.name == "ARM Cortex A9 (2GHz)") arm = &s;
  }
  std::vector<core::HeteroProc> classes(2);
  classes[0].gamma_t = gpu->gamma_t();
  classes[0].gamma_e = gpu->gamma_e();
  classes[0].count = 2;
  classes[1].gamma_t = arm->gamma_t();
  classes[1].gamma_e = arm->gamma_e();
  classes[1].count = 8;

  const double flops = 1e13;
  const auto bal = core::hetero_balance(classes, flops);
  const auto eq = core::hetero_equal_split(classes, flops);

  Table t({"partition", "GPU flops/proc", "ARM flops/proc", "makespan (s)",
           "energy (J)", "GFLOPS/W"});
  auto add = [&](const char* name, const core::HeteroPartition& p) {
    t.row()
        .cell(name)
        .cell(p.flops_per_class[0], "%.3g")
        .cell(p.flops_per_class[1], "%.3g")
        .cell(p.makespan, "%.4g")
        .cell(p.energy, "%.4g")
        .cell(flops / p.energy / 1e9, "%.3f");
  };
  add("balanced (1/r_i)", bal);
  add("equal split", eq);
  t.print(std::cout);
  std::cout << "\nBalanced speedup over equal split: "
            << eq.makespan / bal.makespan << "x\n";

  // Close the loop on the simulator with per-rank speed multipliers.
  sim::MachineConfig cfg;
  cfg.p = 10;
  cfg.params = core::MachineParams::unit();
  cfg.params.gamma_t = classes[1].gamma_t;  // base = ARM rate
  cfg.params.beta_t = 0.0;   // compute-only demo: free barrier
  cfg.params.alpha_t = 0.0;
  cfg.speed.assign(10, 1.0);
  cfg.speed[0] = cfg.speed[1] = classes[1].gamma_t / classes[0].gamma_t;
  sim::Machine m(cfg);
  const double sim_flops = 1e10;
  const auto sim_bal = core::hetero_balance(classes, sim_flops);
  m.run([&](sim::Comm& c) {
    const bool is_gpu = c.rank() < 2;
    c.compute(sim_bal.flops_per_class[is_gpu ? 0 : 1]);
    c.barrier();
  });
  std::cout << "Simulated (10 ranks, speed multipliers): makespan "
            << m.makespan() << " s vs model " << sim_bal.makespan
            << " s; max idle "
            << [&] {
                 double worst = 0.0;
                 for (int r = 0; r < 10; ++r) {
                   worst = std::max(worst, m.rank_counters(r).idle_time);
                 }
                 return worst;
               }()
            << " s (balanced ranks barely wait at the barrier).\n";
  return 0;
}
