// Figure 7 — scaling every energy parameter together on the case-study
// machine: GFLOPS/W of 2.5D matmul vs the improvement multiplier, and the
// generation at which a 75 GFLOPS/W target is crossed.
#include <iostream>

#include "bench_common.hpp"
#include "core/algmodel.hpp"
#include "core/codesign.hpp"
#include "machines/db.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace alge;
  CliArgs cli;
  cli.add_flag("n", "35000", "matrix dimension");
  cli.add_flag("p", "2", "processors (sockets)");
  cli.add_flag("generations", "10", "process generations to sweep");
  cli.add_flag("target", "75", "target GFLOPS/W");
  cli.parse(argc, argv);
  if (cli.help_requested()) {
    std::cout << cli.usage("fig7_joint_scaling");
    return 0;
  }
  const double n = cli.get_double("n");
  const double p = cli.get_double("p");
  const int gens = static_cast<int>(cli.get_int("generations"));
  const double target = cli.get_double("target");

  bench::banner("Figure 7",
                "GFLOPS/W of 2.5D matmul when gamma_e, beta_e, alpha_e, "
                "delta_e and eps_e all halve together each generation.");
  const machines::CaseStudyMachine jaketown;
  const core::MachineParams mp = jaketown.params();
  core::ClassicalMatmulModel model;
  const double M = mp.mem_words;

  const auto joint = core::efficiency_vs_generation(
      model, n, p, M, mp, core::ParamScaleSpec::all(), gens);
  Table t({"generation", "improvement multiplier", "GFLOPS/W"});
  for (const auto& pt : joint) {
    t.row().cell(pt.generation).cell(1.0 / pt.factor, "%.0f").cell(
        pt.gflops_per_watt, "%.3f");
  }
  t.print(std::cout);

  const int g = core::generations_to_target(
      model, n, p, M, mp, core::ParamScaleSpec::all(), target, gens);
  std::cout << "\nGenerations (all parameters halving) to reach " << target
            << " GFLOPS/W: " << g
            << "  (paper: desired efficiency of 75 GFLOPS/W after ~5 "
               "generations)\n";
  return 0;
}
