// frontier_folded: the Fig.-3 strong-scaling frontier at machine sizes no
// per-fiber simulator can reach. --exec-mode=folded (sim/fold.hpp) runs one
// fiber per symmetry class and replays per-class cost deltas — or, for
// schedules whose communication pattern rotates with the step (SUMMA's
// moving bcast root, LU's moving panel owner, 2.5D's skew/shift), replays
// a rotor schedule over a per-rank counter array (sim/fold_rotor.hpp) — so
// a p = 10^6..10^8 ghost run finishes in seconds on one core while
// producing the same makespan / energy / per-rank counters a
// million-fiber run would.
//
//   frontier_folded [--deep=true] [--json=PATH]
//
// Two kinds of rows:
//   - parity anchors (small p): the SAME spec is run fiber-ghost and
//     folded-ghost and every cost field is compared bit-for-bit — the
//     self-check that the frontier rows rest on (chaos::fold_explore and
//     tests/test_fold.cpp gate the same claim across faults and seeds).
//   - frontier points (p >= 10^6): folded-only; a per-fiber run at this
//     scale would need ~p fiber stacks of memory. The bench exits nonzero
//     if any such point silently fell back to per-fiber execution or any
//     anchor mismatched.
//
// The default set finishes in seconds and is what the committed
// BENCH_frontier.json records (generated with --deep=true, which adds the
// largest q=8192 / k=9 points). Machine: the scaling_mm_energy parameter
// set with uncapped messages, as in ghost_speedup's frontier row.
#include <chrono>
#include <fstream>
#include <functional>
#include <iostream>
#include <string>

#include "algs/harness.hpp"
#include "bench_common.hpp"
#include "core/params.hpp"
#include "sim/fold.hpp"
#include "support/cli.hpp"
#include "support/common.hpp"
#include "support/json.hpp"
#include "support/table.hpp"

namespace {

using namespace alge;
using algs::harness::RunResult;

double elapsed(const std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// Exact cost-signature equality: the folded contract is bit-identity, not
/// tolerance.
bool cost_equal(const RunResult& a, const RunResult& b) {
  return a.p == b.p && a.makespan == b.makespan &&
         a.totals.flops_total == b.totals.flops_total &&
         a.totals.words_total == b.totals.words_total &&
         a.totals.msgs_total == b.totals.msgs_total &&
         a.totals.words_hops_total == b.totals.words_hops_total &&
         a.totals.msgs_hops_total == b.totals.msgs_hops_total &&
         a.totals.flops_max == b.totals.flops_max &&
         a.totals.words_sent_max == b.totals.words_sent_max &&
         a.totals.msgs_sent_max == b.totals.msgs_sent_max &&
         a.totals.mem_highwater_max == b.totals.mem_highwater_max &&
         a.totals.mem_highwater_total == b.totals.mem_highwater_total &&
         a.energy.total() == b.energy.total() &&
         a.energy.makespan == b.energy.makespan;
}

struct Observed {
  bool fold_active = false;
  int slots = 0;
};

/// Run `body` (a harness run_* call) in ghost mode under the given exec
/// mode, capturing whether the machine actually folded and how many fibers
/// it ran.
RunResult run_ghost(sim::ExecMode mode, Observed* seen,
                    const std::function<RunResult()>& body) {
  algs::harness::RunObserver obs;
  obs.configure = [mode](sim::MachineConfig& cfg) {
    cfg.data_mode = sim::DataMode::kGhost;
    cfg.exec_mode = mode;
  };
  obs.after_run = [seen](const sim::Machine& m) {
    seen->fold_active = m.fold_active();
    seen->slots = m.num_slots();
  };
  algs::harness::ScopedRunObserver scoped(std::move(obs));
  return body();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace alge;
  CliArgs cli;
  cli.add_flag("deep", "false",
               "add the largest frontier points (mm25d q=8192: p = 6.7e7; "
               "CAPS k=9: p = 4.0e7); the committed BENCH_frontier.json is "
               "generated with this set");
  cli.add_flag("json", "",
               "write the BENCH_frontier.json record to this path (empty = "
               "table only)");
  cli.parse(argc, argv);
  if (cli.help_requested()) {
    std::cout << cli.usage("frontier_folded");
    return 0;
  }
  const bool deep = cli.get_bool("deep");

  bench::banner(
      "Folded-execution frontier: p = 10^6..10^8 ghost points in seconds",
      "One fiber per symmetry class, per-class cost replay on the virtual "
      "clock. Anchors run the same spec per-fiber and folded and demand "
      "bit-identical costs; frontier rows are folded-only (a fiber per rank "
      "would need ~p stacks of memory).");

  // scaling_mm_energy's machine (every Eq. (2) term live), uncapped
  // messages: at frontier scale the message-cap sweep is its own
  // experiment (see ghost_speedup's frontier row).
  core::MachineParams mp;
  mp.gamma_t = 1.0;
  mp.beta_t = 2.0;
  mp.alpha_t = 10.0;
  mp.gamma_e = 1.0;
  mp.beta_e = 4.0;
  mp.alpha_e = 20.0;
  mp.delta_e = 1e-4;
  mp.eps_e = 1e-2;
  mp.max_msg_words = 1e18;

  json::Value results = json::Value::array();
  Table t({"point", "p", "slots", "fold x", "wall s", "makespan", "energy"});
  bool ok = true;

  auto record = [&](const std::string& name, const RunResult& r,
                    const Observed& seen, double wall, bool folded_row,
                    bool anchor_identical) {
    const double foldx =
        seen.slots > 0 ? static_cast<double>(r.p) / seen.slots : 0.0;
    t.row()
        .cell(name)
        .cell(r.p)
        .cell(seen.slots)
        .cell(foldx, "%.0f")
        .cell(wall, "%.3f")
        .cell(r.makespan, "%.3e")
        .cell(r.energy.total(), "%.3e");
    json::Value e = json::Value::object();
    e.set("name", name);
    e.set("p", r.p);
    e.set("slots", seen.slots);
    e.set("folded", folded_row);
    e.set("seconds", wall);
    e.set("makespan", r.makespan);
    e.set("energy", r.energy.total());
    e.set("flops_per_rank", r.totals.flops_max);
    e.set("words_per_rank", r.totals.words_sent_max);
    e.set("msgs_per_rank", r.totals.msgs_sent_max);
    if (!folded_row) e.set("anchor_identical", anchor_identical);
    results.push_back(std::move(e));
  };

  // Parity anchor: fiber-ghost vs folded-ghost on one spec, bit-identical
  // or the bench fails.
  auto anchor = [&](const std::string& name,
                    const std::function<RunResult()>& body) {
    Observed fib, fold;
    const RunResult rf = run_ghost(sim::ExecMode::kFibers, &fib, body);
    auto t0 = std::chrono::steady_clock::now();
    const RunResult rd = run_ghost(sim::ExecMode::kFolded, &fold, body);
    const double wall = elapsed(t0);
    const bool identical = cost_equal(rf, rd);
    if (!identical) {
      std::fprintf(stderr, "[frontier] ANCHOR MISMATCH: %s\n", name.c_str());
      ok = false;
    }
    record("anchor " + name, rd, fold, wall, false, identical);
  };

  // Frontier point: folded-only; must actually fold.
  auto frontier = [&](const std::string& name,
                      const std::function<RunResult()>& body) {
    Observed seen;
    auto t0 = std::chrono::steady_clock::now();
    const RunResult r = run_ghost(sim::ExecMode::kFolded, &seen, body);
    const double wall = elapsed(t0);
    if (!seen.fold_active) {
      std::fprintf(stderr, "[frontier] FELL BACK TO FIBERS: %s\n",
                   name.c_str());
      ok = false;
    }
    record(name, r, seen, wall, true, true);
  };

  using algs::harness::run_caps;
  using algs::harness::run_fft;
  using algs::harness::run_lu;
  using algs::harness::run_mm25d;
  using algs::harness::run_nbody;
  using algs::harness::run_summa;
  using algs::harness::run_tsqr;

  // ---- Parity anchors (small p, both modes run) ----------------------
  anchor("mm25d q=16", [&] { return run_mm25d(1024, 16, 1, mp); });
  // Rotor-replay folds (rotating roots / moving panel owners).
  anchor("summa q=16", [&] { return run_summa(1024, 16, mp); });
  anchor("lu q=16 nb=8", [&] { return run_lu(512, 8, 16, 1, mp); });
  anchor("mm25d q=16 c=4", [&] { return run_mm25d(1024, 16, 4, mp); });
  // CAPS share alignment needs n = 2^k * 7^ceil(k/2) * m (all-BFS).
  anchor("caps k=3", [&] { return run_caps(392, 3, mp); });
  anchor("fft p=256", [&] {
    return run_fft(1024, 1024, 256, algs::AllToAllKind::kDirect, mp);
  });
  anchor("tsqr p=256", [&] { return run_tsqr(32, 4, 256, mp); });
  anchor("nbody p=256 c=4", [&] { return run_nbody(4096, 256, 4, mp); });

  // ---- Fig. 3 frontier points (folded-only) --------------------------
  // 2.5D matmul, c=1 (2D Cannon): p = q^2 ranks in 4 fold classes.
  frontier("mm25d n=65536 q=1024",
           [&] { return run_mm25d(65536, 1024, 1, mp); });
  frontier("mm25d n=65536 q=4096",
           [&] { return run_mm25d(65536, 4096, 1, mp); });
  // CAPS Strassen, all-BFS: all 7^k ranks are one class — one fiber.
  frontier("caps n=614656 k=8", [&] { return run_caps(614656, 8, mp); });
  // FFT: p bounded by n = R*C fitting an int (R = C = 2^15).
  frontier("fft n=2^30 p=32768", [&] {
    return run_fft(32768, 32768, 32768, algs::AllToAllKind::kDirect, mp);
  });
  // SUMMA and LU rotate the bcast root / panel owner every step, so no
  // static class partition exists: these replay a rotor schedule over a
  // per-rank counter array (sim/fold_rotor.hpp) — one sweep, p = q^2
  // million-rank points in single-digit seconds.
  frontier("summa n=8192 q=1024",
           [&] { return run_summa(8192, 1024, mp); });
  frontier("lu n=8192 nb=8 q=1024",
           [&] { return run_lu(8192, 8, 1024, 1, mp); });
  // 2.5D with real replication (c > 1): rotor-folded skew/shift/depth.
  frontier("mm25d n=4096 q=512 c=4",
           [&] { return run_mm25d(4096, 512, 4, mp); });
  // TSQR binomial tree: ~log2(p)+1 scatter classes.
  frontier("tsqr p=2^20", [&] { return run_tsqr(32, 4, 1 << 20, mp); });
  // Replicating n-body: c row classes.
  frontier("nbody p=2^20 c=4",
           [&] { return run_nbody(1 << 20, 1 << 20, 4, mp); });
  if (deep) {
    frontier("mm25d n=65536 q=8192",
             [&] { return run_mm25d(65536, 8192, 1, mp); });
    frontier("caps n=8605184 k=9", [&] { return run_caps(8605184, 9, mp); });
  }

  t.print(std::cout);
  std::cout << "\n'fold x' is ranks per executed fiber (p/slots). Frontier "
               "rows at p >= 10^6 correspond to the Fig. 3 model-scale "
               "regime; see EXPERIMENTS.md \"Folded execution\".\n";

  const std::string json_path = cli.get("json");
  if (!json_path.empty()) {
    json::Value doc = json::Value::object();
    doc.set("bench", "frontier");
    doc.set("results", std::move(results));
    std::ofstream out(json_path);
    ALGE_REQUIRE(out.good(), "cannot write %s", json_path.c_str());
    out << doc.dump() << "\n";
    std::fprintf(stderr, "[frontier] wrote %s\n", json_path.c_str());
  }
  return ok ? 0 : 1;
}
