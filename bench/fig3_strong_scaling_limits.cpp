// Figure 3 — limits of communication strong scaling for matrix
// multiplication: (bandwidth cost W per processor) × p against p, for a
// fixed problem size n and fixed per-processor memory M.
//
// Model series (classical and Strassen-like): flat from p_min = n²/M up to
// p_max = n³/M^{3/2} (classical) / n^ω0/M^{ω0/2} (Strassen), then rising as
// p^{1/3} resp. p^{1-2/ω0}.
//
// Simulator series: the executable 2.5D algorithm / CAPS measured at grid
// points with the same per-rank block memory, showing the same flat-then-
// rising shape with real message counting. The simulator points run through
// the experiment engine (--threads, --cache-dir).
#include <cmath>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "core/algmodel.hpp"
#include "core/scaling.hpp"
#include "engine/runner.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace alge;
  CliArgs cli;
  cli.add_flag("n", "65536", "matrix dimension for the model series");
  cli.add_flag("pmin", "64", "p at the left edge (M = n^2/pmin)");
  cli.add_flag("samples", "17", "model sample count");
  engine::add_engine_flags(cli);
  cli.parse(argc, argv);
  if (cli.help_requested()) {
    std::cout << cli.usage("fig3_strong_scaling_limits");
    return 0;
  }
  const double n = cli.get_double("n");
  const double pmin = cli.get_double("pmin");
  const int samples = static_cast<int>(cli.get_int("samples"));
  const double M = n * n / pmin;

  bench::banner("Figure 3",
                "Limits of communication strong scaling: W x p vs p, fixed "
                "n and per-processor memory M = n^2/pmin.");

  core::MachineParams mp = core::MachineParams::unit();
  core::ClassicalMatmulModel classical;
  core::StrassenModel strassen;
  const auto cl = core::strong_scaling_series(classical, n, M, mp, 8.0,
                                              samples);
  const auto st = core::strong_scaling_series(strassen, n, M, mp, 8.0,
                                              samples);

  std::cout << "Model series (normalized to the flat value):\n";
  Table t({"p/pmin(classical)", "Wxp classical", "in range",
           "p/pmin(strassen)", "Wxp strassen", "in range "});
  const double cl0 = cl.front().W_times_p;
  const double st0 = st.front().W_times_p;
  for (int i = 0; i < samples; ++i) {
    const auto& a = cl[static_cast<std::size_t>(i)];
    const auto& b = st[static_cast<std::size_t>(i)];
    t.row()
        .cell(a.p / pmin, "%.3g")
        .cell(a.W_times_p / cl0, "%.4f")
        .cell(a.in_scaling_range ? "yes" : "no")
        .cell(b.p / pmin, "%.3g")
        .cell(b.W_times_p / st0, "%.4f")
        .cell(b.in_scaling_range ? "yes" : "no");
  }
  t.print(std::cout);
  std::cout << "Classical region ends at p = pmin^1.5 = "
            << classical.p_max(n, M) / pmin
            << "x pmin; Strassen-like ends earlier, at "
            << strassen.p_max(n, M) / pmin << "x pmin.\n\n";

  // Simulator measurements: same per-rank block size (fixed M), p grown by
  // replication up to the 3D limit and beyond it by shrinking blocks. Both
  // series go through the engine as one sweep.
  struct Cfg {
    int q;
    int c;
    const char* label;
  };
  const Cfg cfgs[] = {{2, 1, "2D q=2"},
                      {2, 2, "3D q=c=2 (scaling limit)"},
                      {3, 3, "3D q=c=3 (beyond: less memory usable)"},
                      {4, 4, "3D q=c=4"},
                      {6, 6, "3D q=c=6"}};
  std::vector<engine::ExperimentSpec> specs;
  for (const auto& cfg : cfgs) {
    engine::ExperimentSpec s;
    s.alg = engine::Alg::kMm25d;
    s.params = mp;
    s.n = 48;
    s.q = cfg.q;
    s.c = cfg.c;
    specs.push_back(s);
  }
  for (int k = 0; k <= 2; ++k) {
    engine::ExperimentSpec s;
    s.alg = engine::Alg::kCaps;
    s.params = mp;
    s.n = 28;
    s.k = k;
    specs.push_back(s);
  }
  engine::SweepRunner runner(engine::sweep_options_from_cli(cli));
  const auto results = runner.run(specs);

  std::cout << "Simulator (2.5D matmul, n=48, fixed block memory until the "
               "3D limit):\n";
  Table s({"p", "config", "W/rank", "W x p", "normalized"});
  double norm = -1.0;
  for (std::size_t i = 0; i < std::size(cfgs); ++i) {
    const auto& r = results[i];
    const double wxp = r.words_per_proc() * r.p;
    if (norm < 0.0) norm = wxp;
    s.row()
        .cell(r.p)
        .cell(cfgs[i].label)
        .cell(r.words_per_proc(), "%.0f")
        .cell(wxp, "%.0f")
        .cell(wxp / norm, "%.3f");
  }
  s.print(std::cout);

  std::cout << "\nSimulator (CAPS Strassen, n=28, p = 7^k):\n";
  Table cs({"p", "k", "W/rank", "W x p", "normalized"});
  double cnorm = -1.0;
  for (int k = 0; k <= 2; ++k) {
    const auto& r = results[std::size(cfgs) + static_cast<std::size_t>(k)];
    const double wxp = r.words_per_proc() * r.p;
    if (k == 1) cnorm = wxp;  // k=0 has no communication
    cs.row()
        .cell(r.p)
        .cell(k)
        .cell(r.words_per_proc(), "%.0f")
        .cell(wxp, "%.0f")
        .cell(cnorm > 0.0 ? wxp / cnorm : 0.0, "%.3f");
  }
  cs.print(std::cout);
  engine::append_bench_record("fig3_strong_scaling_limits", runner,
                              cli.get("bench-json"));
  return 0;
}
