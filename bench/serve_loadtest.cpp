// serve_loadtest: throughput and latency of the optimizer query service
// (src/serve), in-process: the server and the client threads share this
// binary (and, on CI, one core), so the measured queries/s is end-to-end —
// framing, syscalls, hashing, answer-store lookups — not just service code.
//
//   serve_loadtest [--server-threads=2] [--clients=2] [--batch=64]
//                  [--duration=1.0] [--distinct=2048] [--min-qps=100000]
//                  [--json=PATH]
//
// Phases (one result row each, written to --json as {"bench": "serve"}):
//   closed_form_cold       distinct min_energy queries; every one misses the
//                          answer store and runs the §V closed forms
//   closed_form_hot_rtt    one repeated query, batch=1 closed loop — the
//                          per-request round-trip floor
//   closed_form_pipelined  --clients threads, --batch-deep pipelining over
//                          cached queries; must sustain --min-qps (the
//                          ISSUE's >= 100k/s acceptance bar; per-request
//                          latency is the whole batch's RTT)
//   ghost_miss             distinct ghost-mode mm25d experiments (real
//                          engine simulations behind the service)
//   ghost_hot              one repeated experiment, pipelined (answer-store
//                          hits)
//
// Answers are cross-checked for bit-identity against direct evaluation in
// this process: closed-form responses against core::Optimizer (the exact
// field-order JSON the service emits) and experiment responses against
// engine::execute(spec).to_json(). Any mismatch — cold (miss) or hot (hit)
// path — exits 1, as does missing --min-qps.
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "core/opt.hpp"
#include "engine/runner.hpp"
#include "machines/db.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "serve/service.hpp"
#include "support/cli.hpp"
#include "support/common.hpp"
#include "support/json.hpp"
#include "support/table.hpp"

namespace {

using namespace alge;

double now_sec() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// One pipelined client connection.
struct Conn {
  int fd;
  serve::FrameReader reader;
  explicit Conn(int port)
      : fd(serve::connect_tcp("127.0.0.1", port)), reader(fd) {}
  ~Conn() { ::close(fd); }

  /// Write all `reqs` as one coalesced send, then read exactly
  /// `reqs.size()` responses (in order). Returns the last response.
  std::string round(const std::vector<std::string>& reqs) {
    std::string out;
    for (const std::string& r : reqs) serve::append_frame(out, r);
    ALGE_REQUIRE(serve::write_all(fd, out), "server closed during write");
    std::string last;
    std::string_view payload;
    for (std::size_t i = 0; i < reqs.size(); ++i) {
      ALGE_REQUIRE(reader.next(&payload) ==
                       serve::FrameReader::Status::kFrame,
                   "server closed during read");
      last.assign(payload);
    }
    return last;
  }
};

/// The served envelope is {"ok", "kind", "answer"}; comparisons are on the
/// answer's dump alone so they hold across both cache paths by construction
/// (hit and miss responses are the same bytes).
std::string answer_dump(const std::string& response) {
  const json::Value v = json::parse(response);
  const json::Value* ok = v.find("ok");
  ALGE_REQUIRE(ok != nullptr && ok->is_bool() && ok->as_bool(),
               "query failed: %s", response.c_str());
  return v.at("answer").dump();
}

/// Mirror of the service's answer formatting for a RunPoint — the bench's
/// independent copy, so a served answer is checked against direct
/// core::Optimizer output, not against the service's own code path.
std::string expected_min_energy(double n) {
  core::MachineParams mp = machines::CaseStudyMachine{}.params();
  mp.mem_words = 0.0;
  const core::NBodyModel model(20.0);
  const core::Optimizer solver(model, n, mp);
  const core::RunPoint pt = solver.minimize_energy(core::OptLimits{});
  json::Value o = json::Value::object();
  o.set("feasible", pt.feasible)
      .set("p", pt.p)
      .set("M", pt.M)
      .set("T", pt.T)
      .set("E", pt.E)
      .set("total_power", pt.total_power())
      .set("proc_power", pt.proc_power());
  return o.dump();
}

std::string min_energy_request(double n) {
  json::Value req = json::Value::object();
  req.set("kind", "min_energy")
      .set("model", "nbody")
      .set("f", 20.0)
      .set("n", n)
      .set("machine", "case-study");
  return req.dump();
}

engine::ExperimentSpec ghost_spec(int n) {
  engine::ExperimentSpec s;
  s.alg = engine::Alg::kMm25d;
  s.params = core::MachineParams::unit();
  s.n = n;
  s.q = 2;
  s.c = 1;
  s.data_mode = sim::DataMode::kGhost;
  return s;
}

std::string experiment_request(const engine::ExperimentSpec& spec) {
  json::Value req = json::Value::object();
  req.set("kind", "experiment").set("spec", spec.to_json());
  return req.dump();
}

struct PhaseResult {
  std::string name;
  std::size_t queries = 0;
  double seconds = 0.0;
  std::vector<double> latency_us;  ///< per request (batch RTT for batches)

  double qps() const { return queries / std::max(seconds, 1e-12); }
  double quantile(double q) {
    ALGE_REQUIRE(!latency_us.empty(), "no latency samples in %s",
                 name.c_str());
    std::sort(latency_us.begin(), latency_us.end());
    const auto idx = static_cast<std::size_t>(
        q * static_cast<double>(latency_us.size() - 1));
    return latency_us[idx];
  }
};

json::Value result_json(PhaseResult& r) {
  json::Value o = json::Value::object();
  o.set("name", r.name)
      .set("queries", static_cast<double>(r.queries))
      .set("seconds", r.seconds)
      .set("queries_per_sec", r.qps())
      .set("p50_us", r.quantile(0.50))
      .set("p99_us", r.quantile(0.99))
      .set("max_us", r.latency_us.empty() ? 0.0 : r.latency_us.back());
  return o;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace alge;
  CliArgs cli;
  cli.add_flag("server-threads", "2", "server worker pool size");
  cli.add_flag("clients", "2", "client threads in the pipelined phase");
  cli.add_flag("batch", "64", "pipelining depth (frames per send)");
  cli.add_flag("duration", "1.0", "seconds per timed phase");
  cli.add_flag("distinct", "2048",
               "distinct queries in the cold (all-miss) phase");
  cli.add_flag("min-qps", "100000",
               "fail unless closed_form_pipelined sustains this many "
               "queries/s (0 = report only)");
  cli.add_flag("json", "", "write {\"bench\": \"serve\"} results here");
  try {
    cli.parse(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "serve_loadtest: " << e.what() << "\n"
              << cli.usage("serve_loadtest");
    return 2;
  }
  if (cli.help_requested()) {
    std::cout << cli.usage("serve_loadtest");
    return 0;
  }
  const int clients = static_cast<int>(cli.get_int("clients"));
  const auto batch = static_cast<std::size_t>(cli.get_int("batch"));
  const double duration = cli.get_double("duration");
  const auto distinct = static_cast<std::size_t>(cli.get_int("distinct"));
  const double min_qps = cli.get_double("min-qps");

  serve::QueryService service;
  serve::ServerOptions sopts;
  sopts.threads = static_cast<int>(cli.get_int("server-threads"));
  serve::Server server(service, sopts);
  server.start();
  std::printf("serve_loadtest: in-process server on 127.0.0.1:%d, "
              "%d worker(s), %d client(s), batch %zu\n\n",
              server.port(), sopts.threads, clients, batch);

  std::vector<PhaseResult> phases;
  bool identical = true;

  // --- closed_form_cold: distinct queries, all answer-store misses -------
  {
    std::vector<std::string> reqs(distinct);
    for (std::size_t i = 0; i < distinct; ++i) {
      reqs[i] = min_energy_request(1e6 + 1e3 * static_cast<double>(i));
    }
    Conn conn(server.port());
    PhaseResult r;
    r.name = "closed_form_cold";
    const double t0 = now_sec();
    for (std::size_t i = 0; i < distinct; i += batch) {
      const std::size_t hi = std::min(distinct, i + batch);
      const double b0 = now_sec();
      std::vector<std::string> b(reqs.begin() + static_cast<long>(i),
                                 reqs.begin() + static_cast<long>(hi));
      (void)conn.round(b);
      const double us = (now_sec() - b0) * 1e6;
      for (std::size_t k = i; k < hi; ++k) r.latency_us.push_back(us);
    }
    r.seconds = now_sec() - t0;
    r.queries = distinct;
    phases.push_back(std::move(r));

    // Bit-identity, miss path: these first serves all computed fresh.
    for (std::size_t i = 0; i < std::min<std::size_t>(distinct, 16); ++i) {
      const double n = 1e6 + 1e3 * static_cast<double>(i);
      Conn c(server.port());
      const std::string got = answer_dump(c.round({min_energy_request(n)}));
      const std::string want = expected_min_energy(n);
      if (got != want) {
        identical = false;
        std::fprintf(stderr,
                     "MISMATCH (closed form, n=%g):\n  served:   %s\n"
                     "  expected: %s\n",
                     n, got.c_str(), want.c_str());
      }
    }
  }

  // --- closed_form_hot_rtt: batch=1 closed loop, per-request RTT ---------
  {
    const std::vector<std::string> one = {min_energy_request(1e6)};
    Conn conn(server.port());
    (void)conn.round(one);  // warm the answer store
    PhaseResult r;
    r.name = "closed_form_hot_rtt";
    const double t0 = now_sec();
    while (now_sec() - t0 < duration) {
      const double b0 = now_sec();
      (void)conn.round(one);
      r.latency_us.push_back((now_sec() - b0) * 1e6);
      ++r.queries;
    }
    r.seconds = now_sec() - t0;
    phases.push_back(std::move(r));
  }

  // --- closed_form_pipelined: the >= 100k queries/s acceptance phase -----
  {
    PhaseResult r;
    r.name = "closed_form_pipelined";
    std::atomic<std::size_t> total{0};
    std::vector<std::vector<double>> lat(
        static_cast<std::size_t>(clients));
    const std::size_t hot = std::min<std::size_t>(distinct, 256);
    const double t0 = now_sec();
    std::vector<std::thread> threads;
    for (int c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        Conn conn(server.port());
        std::vector<std::string> b(batch);
        std::size_t next = static_cast<std::size_t>(c) * 131;
        while (now_sec() - t0 < duration) {
          for (std::size_t i = 0; i < batch; ++i) {
            b[i] = min_energy_request(
                1e6 + 1e3 * static_cast<double>(next++ % hot));
          }
          const double b0 = now_sec();
          (void)conn.round(b);
          const double us = (now_sec() - b0) * 1e6;
          for (std::size_t i = 0; i < batch; ++i) {
            lat[static_cast<std::size_t>(c)].push_back(us);
          }
          total.fetch_add(batch, std::memory_order_relaxed);
        }
      });
    }
    for (std::thread& t : threads) t.join();
    r.seconds = now_sec() - t0;
    r.queries = total.load();
    for (const std::vector<double>& l : lat) {
      r.latency_us.insert(r.latency_us.end(), l.begin(), l.end());
    }
    phases.push_back(std::move(r));

    // Bit-identity, hit path: every one of these is an answer-store hit
    // now; the served bytes must still match direct evaluation.
    for (std::size_t i = 0; i < std::min<std::size_t>(hot, 8); ++i) {
      const double n = 1e6 + 1e3 * static_cast<double>(i);
      Conn c2(server.port());
      const std::string got =
          answer_dump(c2.round({min_energy_request(n)}));
      if (got != expected_min_energy(n)) {
        identical = false;
        std::fprintf(stderr, "MISMATCH (hot closed form, n=%g)\n", n);
      }
    }
  }

  // --- ghost_miss: real engine simulations through the service ----------
  {
    PhaseResult r;
    r.name = "ghost_miss";
    Conn conn(server.port());
    const double t0 = now_sec();
    for (int i = 0; i < 32; ++i) {
      const engine::ExperimentSpec spec = ghost_spec(16 * (1 + i));
      const double b0 = now_sec();
      const std::string resp = conn.round({experiment_request(spec)});
      r.latency_us.push_back((now_sec() - b0) * 1e6);
      ++r.queries;
      if (answer_dump(resp) != engine::execute(spec).to_json().dump()) {
        identical = false;
        std::fprintf(stderr, "MISMATCH (ghost experiment, n=%d)\n", spec.n);
      }
    }
    r.seconds = now_sec() - t0;
    phases.push_back(std::move(r));
  }

  // --- ghost_hot: repeated experiment — answer-store hits, pipelined ----
  {
    const engine::ExperimentSpec spec = ghost_spec(16);
    const std::vector<std::string> b(batch, experiment_request(spec));
    const std::string want = engine::execute(spec).to_json().dump();
    Conn conn(server.port());
    PhaseResult r;
    r.name = "ghost_hot";
    const double t0 = now_sec();
    while (now_sec() - t0 < duration * 0.5) {
      const double b0 = now_sec();
      const std::string last = conn.round(b);
      const double us = (now_sec() - b0) * 1e6;
      for (std::size_t i = 0; i < batch; ++i) r.latency_us.push_back(us);
      r.queries += batch;
      if (answer_dump(last) != want) {
        identical = false;
        std::fprintf(stderr, "MISMATCH (hot ghost experiment)\n");
      }
    }
    r.seconds = now_sec() - t0;
    phases.push_back(std::move(r));
  }

  server.stop();

  Table t({"phase", "queries", "q/s", "p50_us", "p99_us", "max_us"});
  json::Value results = json::Value::array();
  for (PhaseResult& r : phases) {
    json::Value row = result_json(r);
    t.row()
        .cell(r.name)
        .cell(r.queries)
        .cell(r.qps(), "%.0f")
        .cell(row.at("p50_us").as_double(), "%.1f")
        .cell(row.at("p99_us").as_double(), "%.1f")
        .cell(row.at("max_us").as_double(), "%.1f");
    results.push_back(std::move(row));
  }
  t.print(std::cout);
  std::cout << "\nservice ledger: " << service.stats_json().dump() << "\n";

  const std::string json_path = cli.get("json");
  if (!json_path.empty()) {
    json::Value doc = json::Value::object();
    doc.set("bench", "serve");
    doc.set("results", std::move(results));
    std::ofstream out(json_path);
    ALGE_REQUIRE(out.good(), "cannot write %s", json_path.c_str());
    out << doc.dump() << "\n";
    std::fprintf(stderr, "[serve] wrote %s\n", json_path.c_str());
  }

  if (!identical) {
    std::cerr << "\nFAIL: served answers differ from direct evaluation\n";
    return 1;
  }
  double pipelined_qps = 0.0;
  for (PhaseResult& r : phases) {
    if (r.name == "closed_form_pipelined") pipelined_qps = r.qps();
  }
  if (min_qps > 0.0 && pipelined_qps < min_qps) {
    std::fprintf(stderr,
                 "\nFAIL: closed_form_pipelined sustained %.0f q/s "
                 "(target %.0f)\n",
                 pipelined_qps, min_qps);
    return 1;
  }
  std::cout << "\nAll served answers bit-identical to direct evaluation; "
            << strfmt("pipelined throughput %.0f q/s.\n", pipelined_qps);
  return 0;
}
