// Figure 6 — scaling γe, βe, αe, δe independently on the case-study
// machine: GFLOPS/W of 2.5D matrix multiplication (n = 35000, p = 2, Table
// I parameters) as each energy parameter halves per process generation.
// The paper's observations to reproduce: scaling βe alone has almost no
// effect; scaling γe alone saturates after about 5 generations.
#include <iostream>

#include "bench_common.hpp"
#include "core/algmodel.hpp"
#include "core/codesign.hpp"
#include "machines/db.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace alge;
  CliArgs cli;
  cli.add_flag("n", "35000", "matrix dimension");
  cli.add_flag("p", "2", "processors (sockets)");
  cli.add_flag("generations", "10", "process generations to sweep");
  cli.parse(argc, argv);
  if (cli.help_requested()) {
    std::cout << cli.usage("fig6_param_scaling");
    return 0;
  }
  const double n = cli.get_double("n");
  const double p = cli.get_double("p");
  const int gens = static_cast<int>(cli.get_int("generations"));

  bench::banner("Figure 6",
                "GFLOPS/W of 2.5D matmul on the case-study machine as each "
                "energy parameter halves per generation, independently.");
  const machines::CaseStudyMachine jaketown;
  const core::MachineParams mp = jaketown.params();
  core::ClassicalMatmulModel model;
  const double M = mp.mem_words;

  const core::ParamScaleSpec specs[] = {
      core::ParamScaleSpec::only_gamma_e(),
      core::ParamScaleSpec::only_beta_e(),
      core::ParamScaleSpec::only_alpha_e(),
      core::ParamScaleSpec::only_delta_e(),
  };
  std::vector<std::vector<core::GenerationPoint>> series;
  for (const auto& spec : specs) {
    series.push_back(
        core::efficiency_vs_generation(model, n, p, M, mp, spec, gens));
  }

  Table t({"generation", "halve gamma_e", "halve beta_e", "halve alpha_e",
           "halve delta_e"});
  for (int g = 0; g <= gens; ++g) {
    auto& row = t.row().cell(g);
    for (const auto& s : series) {
      row.cell(s[static_cast<std::size_t>(g)].gflops_per_watt, "%.4f");
    }
  }
  t.print(std::cout);

  const auto& gamma_series = series[0];
  const auto& beta_series = series[1];
  std::cout << "\nPaper's observations, measured here:\n";
  std::cout << "  beta_e effect over " << gens << " generations: "
            << beta_series.back().gflops_per_watt /
                   beta_series.front().gflops_per_watt
            << "x (\"almost no effect\")\n";
  std::cout << "  gamma_e gen4->gen5 gain: "
            << gamma_series[5].gflops_per_watt /
                   gamma_series[4].gflops_per_watt
            << "x vs gen0->gen1 gain "
            << gamma_series[1].gflops_per_watt /
                   gamma_series[0].gflops_per_watt
            << "x (saturation after ~5 generations)\n";
  return 0;
}
