// transport_micro: the 7 algorithms' conformance programs on every
// transport backend (virtual-clock sim, forked shm processes, loopback TCP
// threads), timing each run and cross-checking the real backends against
// the simulator inline — outputs bitwise equal, per-rank model counters
// equal, measured wire traffic equal to the W/S ledger.
//
//   transport_micro [--json=PATH] [--backends=sim,shm,tcp]
//
// The committed BENCH_transport.json is generated with the default flags.
// Everything in the record except wall_seconds is a deterministic model
// quantity (the ledger travels with the rank), so the CI bench_diff gates
// those fields tightly; wall_seconds is this machine's clock and is
// skipped by the normalizer. A conformance failure exits nonzero.
#include <chrono>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "support/cli.hpp"
#include "support/common.hpp"
#include "support/json.hpp"
#include "support/table.hpp"
#include "transport/programs.hpp"
#include "transport/run.hpp"

namespace {

using namespace alge;

/// Ledger totals summed over ranks — deterministic, backend-independent.
struct LedgerTotals {
  double msgs = 0.0;
  double words = 0.0;
};

LedgerTotals ledger_of(const transport::RunReport& report) {
  LedgerTotals t;
  for (const transport::RankReport& r : report.ranks) {
    t.msgs += r.model.msgs_sent;
    t.words += r.model.words_sent;
  }
  return t;
}

/// The conformance oracle, reduced to a yes/no for the bench table; the
/// full per-counter diagnosis lives in tests/test_transport_conformance.
bool conformant(const transport::RunReport& ref,
                const transport::RunReport& real) {
  if (ref.p != real.p) return false;
  for (int r = 0; r < ref.p; ++r) {
    const transport::RankReport& a = ref.ranks[static_cast<std::size_t>(r)];
    const transport::RankReport& b = real.ranks[static_cast<std::size_t>(r)];
    if (a.output != b.output) return false;
    if (!(a.model == b.model)) return false;
    if (b.wire.msgs_sent != b.model.msgs_sent) return false;
    if (b.wire.words_sent != b.model.words_sent) return false;
    if (b.wire.msgs_recv != b.model.msgs_recv) return false;
    if (b.wire.words_recv + b.self.words_recv != b.model.words_recv) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace alge;
  CliArgs cli;
  cli.add_flag("json", "",
               "write the BENCH_transport.json record to this path (empty "
               "= table only)");
  cli.add_flag("backends", "sim,shm,tcp",
               "comma-separated backends to run (sim is always run as the "
               "conformance reference)");
  cli.parse(argc, argv);
  if (cli.help_requested()) {
    std::cout << cli.usage("transport_micro");
    return 0;
  }
  const std::string backends_flag = cli.get("backends");
  auto backend_enabled = [&](const char* name) {
    return backends_flag.find(name) != std::string::npos;
  };

  bench::banner(
      "Transport micro: the 7 algorithms for real on every backend",
      "Each program runs on the virtual-clock simulator, on forked "
      "shared-memory processes, and on loopback TCP threads. 'conforms' "
      "asserts bitwise-equal outputs, bit-identical model counters, and "
      "measured wire traffic equal to the W/S ledger.");

  json::Value results = json::Value::array();
  Table t({"alg", "backend", "p", "makespan", "ledger msgs", "ledger words",
           "wall s", "conforms"});
  bool all_ok = true;

  for (const std::string& alg : transport::program_names()) {
    const transport::AlgProgram ap =
        transport::make_program(transport::conformance_spec(alg));
    transport::RunOptions opts;
    opts.p = ap.p;
    opts.params = core::MachineParams::unit();
    opts.timeout_s = 30.0;

    const transport::RunReport ref = transport::run_sim(opts, ap.program);
    const LedgerTotals ledger = ledger_of(ref);

    for (const transport::Backend backend :
         {transport::Backend::kSim, transport::Backend::kShm,
          transport::Backend::kTcp}) {
      const std::string bname(transport::to_string(backend));
      if (!backend_enabled(bname.c_str())) continue;
      const auto t0 = std::chrono::steady_clock::now();
      const transport::RunReport report =
          transport::run(backend, opts, ap.program);
      const double wall =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();
      const bool ok =
          backend == transport::Backend::kSim || conformant(ref, report);
      all_ok = all_ok && ok;
      t.row()
          .cell(alg)
          .cell(bname)
          .cell(report.p)
          .cell(report.makespan(), "%.0f")
          .cell(ledger.msgs, "%.0f")
          .cell(ledger.words, "%.0f")
          .cell(wall, "%.4f")
          .cell(ok ? "yes" : "NO");
      json::Value e = json::Value::object();
      e.set("name", alg + "." + bname);
      e.set("p", report.p);
      e.set("makespan", report.makespan());
      e.set("ledger_messages_total", ledger.msgs);
      e.set("ledger_words_total", ledger.words);
      e.set("wall_seconds", wall);
      results.push_back(std::move(e));
    }
  }

  t.print(std::cout);
  std::cout << "\nThe ledger columns are identical across backends by "
               "construction (the model travels with the rank); wall "
               "seconds is the only machine-dependent column. See "
               "EXPERIMENTS.md \"Transports\".\n";

  const std::string json_path = cli.get("json");
  if (!json_path.empty()) {
    json::Value doc = json::Value::object();
    doc.set("bench", "transport");
    doc.set("results", std::move(results));
    std::ofstream out(json_path);
    ALGE_REQUIRE(out.good(), "cannot write %s", json_path.c_str());
    out << doc.dump() << "\n";
    std::fprintf(stderr, "[transport] wrote %s\n", json_path.c_str());
  }
  if (!all_ok) {
    std::fprintf(stderr,
                 "[transport] CONFORMANCE FAILURE: at least one real "
                 "backend diverged from the simulator\n");
  }
  return all_ok ? 0 : 1;
}
