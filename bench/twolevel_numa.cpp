// Two-level machine model (Fig. 2, Eqs. 12 and 17) — the NUMA view of the
// case-study machine: 2 sockets (nodes) of 8 cores, QPI between sockets,
// the on-die ring within. Sweeps the structural knobs the one-level model
// cannot see: core count per node, the inter/intra link-speed gap, and the
// split of memory energy between node DRAM and core-local store.
#include <iostream>

#include "bench_common.hpp"
#include "core/twolevel.hpp"
#include "machines/db.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace alge;
  CliArgs cli;
  cli.add_flag("n", "35000", "matrix dimension / particle count");
  cli.add_flag("f", "20", "n-body flops per interaction");
  cli.parse(argc, argv);
  if (cli.help_requested()) {
    std::cout << cli.usage("twolevel_numa");
    return 0;
  }
  const double n = cli.get_double("n");
  const double f = cli.get_double("f");

  bench::banner("Two-level machine model (Fig. 2; Eqs. 12 & 17)",
                "Dual-socket NUMA view of the case-study machine: runtime "
                "and energy for 2.5D matmul and the replicating n-body "
                "algorithm.");
  const machines::CaseStudyMachine jaketown;
  const core::TwoLevelParams base = jaketown.two_level();

  std::cout << "Matmul (Eq. 12), n = " << n << ": cores per node sweep\n";
  Table t({"p_cores", "p total", "T (s)", "E (J)", "GFLOPS/W"});
  for (double pl : {1.0, 2.0, 4.0, 8.0, 16.0}) {
    core::TwoLevelParams tp = base;
    tp.p_cores = pl;
    tp.gamma_t = base.gamma_t * base.p_cores / pl;  // per-core rate fixed
    const double T = core::twolevel_mm_time(n, tp);
    const double E = core::twolevel_mm_energy(n, tp);
    t.row()
        .cell(pl, "%.0f")
        .cell(tp.p_total(), "%.0f")
        .cell(T, "%.4g")
        .cell(E, "%.5g")
        .cell(n * n * n / E / 1e9, "%.3f");
  }
  t.print(std::cout);

  std::cout << "\nInter-node link speed sweep (QPI beta_t multiplier), "
               "matmul:\n";
  Table l({"QPI slowdown", "T (s)", "E (J)", "comm share of T"});
  for (double mult : {0.25, 1.0, 4.0, 16.0}) {
    core::TwoLevelParams tp = base;
    tp.beta_t_node = base.beta_t_node * mult;
    const double T = core::twolevel_mm_time(n, tp);
    const double E = core::twolevel_mm_energy(n, tp);
    const double t_flop = tp.gamma_t * n * n * n / tp.p_total();
    l.row()
        .cell(mult, "%.2f")
        .cell(T, "%.4g")
        .cell(E, "%.5g")
        .cell(1.0 - t_flop / T, "%.3f");
  }
  l.print(std::cout);

  std::cout << "\nn-body (Eq. 17), n = " << n << " particles, f = " << f
            << ": node-memory vs core-memory energy split\n";
  Table nb({"delta_e core / node", "T (s)", "E (J)"});
  for (double ratio : {0.1, 1.0, 10.0}) {
    core::TwoLevelParams tp = base;
    tp.delta_e_core = base.delta_e_node * ratio;
    nb.row()
        .cell(ratio, "%.1f")
        .cell(core::twolevel_nbody_time(n, f, tp), "%.4g")
        .cell(core::twolevel_nbody_energy(n, f, tp), "%.5g");
  }
  nb.print(std::cout);
  std::cout << "\nEq. 12/17 are transcribed from the paper (with the n³ "
               "typo in Eq. 12's first term fixed); see EXPERIMENTS.md for "
               "the reconciliation notes.\n";
  return 0;
}
