// ghost_speedup: wall-clock cost of full-data simulation vs
// --data-mode=ghost (sim/payload.hpp) on the sweeps ghost mode exists to
// accelerate. Every full/ghost pair must also produce identical
// ExperimentResults (the cost schedule is the contract; ghost merely skips
// the data), so the table doubles as a coarse differential check.
//
//   ghost_speedup [--full=true] [--json=PATH]
//
// The default subset finishes in seconds and is what CI re-runs for the
// warn-only regression diff against the committed BENCH_ghost.json.
// --full=true adds the n=4096 scaling_mm_energy headline (minutes of
// full-data dgemm) and the p=4096 ghost-only frontier point that full mode
// cannot complete in CI time; the committed file is generated that way.
#include <chrono>
#include <fstream>
#include <iostream>
#include <string>
#include <utility>

#include "bench_common.hpp"
#include "engine/runner.hpp"
#include "support/cli.hpp"
#include "support/common.hpp"
#include "support/json.hpp"
#include "support/table.hpp"

namespace {

using namespace alge;

double elapsed(const std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// Run the spec and return (result, seconds). Sub-50ms runs (ghost mode is
/// routinely sub-millisecond) are re-timed over enough iterations that the
/// reported figure is an average, not scheduler noise; every iteration is
/// the same deterministic simulation, so only the timing precision changes.
std::pair<engine::ExperimentResult, double> timed(
    const engine::ExperimentSpec& spec) {
  auto t0 = std::chrono::steady_clock::now();
  engine::ExperimentResult r = engine::execute(spec);
  double s = elapsed(t0);
  if (s < 0.05) {
    const int iters = std::min(100, static_cast<int>(0.05 / std::max(s, 1e-6)) + 1);
    t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < iters; ++i) (void)engine::execute(spec);
    s = elapsed(t0) / iters;
  }
  return {std::move(r), s};
}

}  // namespace

int main(int argc, char** argv) {
  using namespace alge;
  CliArgs cli;
  cli.add_flag("full", "false",
               "include the n=4096 headline pair (minutes of full-data "
               "local dgemm) and the p=4096 ghost-only frontier point; the "
               "committed BENCH_ghost.json is generated with this set");
  cli.add_flag("json", "",
               "write the BENCH_ghost.json record to this path (empty = "
               "table only)");
  cli.parse(argc, argv);
  if (cli.help_requested()) {
    std::cout << cli.usage("ghost_speedup");
    return 0;
  }
  const bool full_set = cli.get_bool("full");

  bench::banner(
      "Ghost-payload speedup: full-data vs --data-mode=ghost",
      "Same specs, same cost schedule -- wall time diverges by the skipped "
      "data movement and local kernels. 'identical' asserts the two runs' "
      "counters, makespan and energy match bit-for-bit.");

  json::Value results = json::Value::array();
  Table t({"sweep", "p", "full s", "ghost s", "speedup", "identical"});
  bool all_identical = true;

  // Every record — compare pairs and ghost-only frontier points alike —
  // carries the same simulated-cost fields, so bench_diff can track each
  // sweep's p, makespan, energy and per-rank critical-path costs uniformly
  // instead of only the wall-clock columns that happen to exist per shape.
  auto set_costs = [](json::Value& e, const engine::ExperimentResult& r) {
    e.set("p", r.p);
    e.set("makespan", r.makespan);
    e.set("energy", r.energy_total());
    e.set("flops_per_rank", r.totals.flops_max);
    e.set("words_per_rank", r.totals.words_sent_max);
    e.set("msgs_per_rank", r.totals.msgs_sent_max);
  };

  auto compare = [&](const std::string& name, engine::ExperimentSpec spec) {
    spec.verify = false;  // ghost runs have no output to verify against
    spec.data_mode = sim::DataMode::kFull;
    const auto [rf, sf] = timed(spec);
    spec.data_mode = sim::DataMode::kGhost;
    const auto [rg, sg] = timed(spec);
    const bool identical = rf == rg;
    all_identical = all_identical && identical;
    const double speedup = sg > 0.0 ? sf / sg : 0.0;
    t.row()
        .cell(name)
        .cell(rf.p)
        .cell(sf, "%.3f")
        .cell(sg, "%.3f")
        .cell(speedup, "%.1f")
        .cell(identical ? "yes" : "NO");
    json::Value e = json::Value::object();
    e.set("name", name);
    set_costs(e, rf);
    e.set("full_seconds", sf);
    e.set("ghost_seconds", sg);
    e.set("speedup", speedup);
    e.set("cost_identical", identical);
    results.push_back(std::move(e));
  };

  auto ghost_only = [&](const std::string& name,
                        engine::ExperimentSpec spec) {
    spec.verify = false;
    spec.data_mode = sim::DataMode::kGhost;
    const auto [rg, sg] = timed(spec);
    t.row()
        .cell(name)
        .cell(rg.p)
        .cell("--")
        .cell(sg, "%.3f")
        .cell("--")
        .cell("--");
    json::Value e = json::Value::object();
    e.set("name", name);
    set_costs(e, rg);
    e.set("ghost_seconds", sg);
    results.push_back(std::move(e));
  };

  // micro_sim territory: collectives moving real buffers vs size-only
  // views. Unit parameters; the payload is large enough that the full-mode
  // allocation + copies dominate.
  {
    engine::ExperimentSpec s;
    s.params = core::MachineParams::unit();
    s.alg = engine::Alg::kCollA2aDirect;
    s.p = 16;
    s.payload_words = 1 << 16;
    compare("coll_a2a_direct k=65536", s);
    s.alg = engine::Alg::kCollBcast;
    s.p = 64;
    s.payload_words = 1 << 20;
    compare("coll_bcast k=1048576", s);
  }

  // The scaling_mm_energy sweep machine (every energy term live, message
  // cap 64 words) at growing n: full-mode wall time is dominated by the
  // O(n^3/p) local dgemm per rank that contributes nothing ghost mode
  // does not also charge.
  core::MachineParams mp;
  mp.gamma_t = 1.0;
  mp.beta_t = 2.0;
  mp.alpha_t = 10.0;
  mp.gamma_e = 1.0;
  mp.beta_e = 4.0;
  mp.alpha_e = 20.0;
  mp.delta_e = 1e-4;
  mp.eps_e = 1e-2;
  mp.max_msg_words = 64;
  for (const int n : {256, 1024}) {
    engine::ExperimentSpec s;
    s.params = mp;
    s.alg = engine::Alg::kMm25d;
    s.n = n;
    s.q = 8;
    s.c = 1;
    compare(strfmt("scaling_mm n=%d q=8", n), s);
  }
  if (full_set) {
    engine::ExperimentSpec s;
    s.params = mp;
    s.alg = engine::Alg::kMm25d;
    s.n = 4096;
    s.q = 8;
    s.c = 1;
    compare("scaling_mm n=4096 q=8", s);

    // The ROADMAP model-scale frontier: p = 4096 ranks. Full mode would
    // have to materialize and multiply an n=16384 matrix (~tens of
    // minutes); ghost mode walks the identical message/compute schedule in
    // seconds. Uncapped messages: at this scale the cap sweep is its own
    // experiment.
    engine::ExperimentSpec f;
    f.params = mp;
    f.params.max_msg_words = 1e18;
    f.alg = engine::Alg::kMm25d;
    f.n = 16384;
    f.q = 64;
    f.c = 1;
    ghost_only("frontier_mm n=16384 q=64 (ghost only)", f);
  }

  t.print(std::cout);
  std::cout << "\nSpeedup is wall-clock full/ghost on this machine; the "
               "simulated makespan and energy are identical by construction "
               "(and checked above). See EXPERIMENTS.md \"Data modes\".\n";

  const std::string json_path = cli.get("json");
  if (!json_path.empty()) {
    json::Value doc = json::Value::object();
    doc.set("bench", "ghost");
    doc.set("results", std::move(results));
    std::ofstream out(json_path);
    ALGE_REQUIRE(out.good(), "cannot write %s", json_path.c_str());
    out << doc.dump() << "\n";
    std::fprintf(stderr, "[ghost] wrote %s\n", json_path.c_str());
  }
  return all_identical ? 0 : 1;
}
