// Ablation — Cannon vs SUMMA as the 2D baseline inside 2.5D (DESIGN.md §5):
// same asymptotics, different constants — Cannon shifts 2 blocks per step
// point-to-point; SUMMA broadcasts 2 panels per step down binomial trees.
#include <iostream>

#include "algs/harness.hpp"
#include "bench_common.hpp"
#include "support/table.hpp"

int main() {
  using namespace alge;
  bench::banner("Ablation: Cannon vs SUMMA (2D baselines)",
                "Same n and grid; per-rank words/messages and simulated "
                "time under unit parameters.");
  Table t({"q", "p", "algorithm", "W/rank", "S/rank", "T (sim)",
           "max |err|"});
  for (int q : {2, 4, 8}) {
    const int n = 8 * q;
    const auto cannon = algs::harness::run_mm25d(n, q, 1, core::MachineParams::unit(),
                                                 /*verify=*/true);
    const auto summa = algs::harness::run_summa(n, q, core::MachineParams::unit(),
                                                /*verify=*/true);
    t.row()
        .cell(q)
        .cell(cannon.p)
        .cell("cannon(2.5D c=1)")
        .cell(cannon.words_per_proc(), "%.0f")
        .cell(cannon.msgs_per_proc(), "%.0f")
        .cell(cannon.makespan, "%.0f")
        .cell(cannon.max_abs_error, "%.2g");
    t.row()
        .cell(q)
        .cell(summa.p)
        .cell("summa")
        .cell(summa.words_per_proc(), "%.0f")
        .cell(summa.msgs_per_proc(), "%.0f")
        .cell(summa.makespan, "%.0f")
        .cell(summa.max_abs_error, "%.2g");
  }
  t.print(std::cout);
  std::cout << "\nSUMMA pays a log q broadcast factor on the critical path; "
               "Cannon's shifts are nearest-neighbour (the reason the 2.5D "
               "implementation uses Cannon steps).\n";
  return 0;
}
