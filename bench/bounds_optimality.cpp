// Optimality certificate — Section III: the measured per-processor word
// traffic of each executable algorithm against its communication lower
// bound (Eqs. 3–5 and the memory-independent floors of [12], [13]).
// "Communication-optimal" means the ratio column is O(1) and stays flat as
// p grows; a growing ratio would mean the implementation wastes bandwidth
// asymptotically.
#include <iostream>

#include "algs/harness.hpp"
#include "algs/nbody/nbody.hpp"
#include "bench_common.hpp"
#include "core/algmodel.hpp"
#include "core/bounds.hpp"
#include "support/common.hpp"
#include "support/table.hpp"

int main() {
  using namespace alge;
  bench::banner("Lower-bound optimality check (Section III)",
                "measured W/rank vs the per-processor communication lower "
                "bound; flat O(1) ratios certify communication "
                "optimality.");
  core::MachineParams mp = core::MachineParams::unit();
  Table t({"experiment", "p", "M/rank (words)", "W bound", "measured W/rank",
           "ratio"});

  auto row = [&](const std::string& name, int p, double M, double bound,
                 double measured) {
    t.row()
        .cell(name)
        .cell(p)
        .cell(M, "%.0f")
        .cell(bound, "%.0f")
        .cell(measured, "%.0f")
        .cell(measured / bound, "%.2f");
  };

  // Classical matmul across the 2D..3D range.
  for (auto [q, c] : {std::pair{4, 1}, {4, 2}, {4, 4}, {8, 1}, {8, 2}}) {
    const int n = 48;
    const double p = static_cast<double>(q) * q * c;
    const double M = 3.0 * n * n * c / p;  // A, B, C blocks
    const auto r = algs::harness::run_mm25d(n, q, c, mp);
    row(strfmt("mm q=%d c=%d", q, c), r.p,
        M, core::bounds::matmul_words(n, p, M), r.words_per_proc());
  }

  // CAPS Strassen.
  for (int k : {1, 2}) {
    const int n = 28;
    const double p = k == 1 ? 7.0 : 49.0;
    const double M = 7.0 * n * n / (4.0 * p) * 3.0;  // BFS working set
    const auto r = algs::harness::run_caps(n, k, mp);
    row(strfmt("caps k=%d", k), r.p, M,
        core::bounds::strassen_words(n, p, M,
                                     core::StrassenModel::kStrassenOmega),
        r.words_per_proc());
  }

  // Replicating n-body (bound in particle units; measured words carry the
  // 4-words-per-particle factor, part of the O(1)).
  for (auto [p, c] : {std::pair{8, 1}, {16, 2}, {16, 4}, {64, 4}}) {
    const int n = 128;
    const double M = static_cast<double>(n) * c / p;
    const auto r = algs::harness::run_nbody(n, p, c, mp);
    row(strfmt("nbody p=%d c=%d", p, c), r.p, M * algs::kParticleWords,
        core::bounds::nbody_words(n, p, M) * algs::kParticleWords,
        r.words_per_proc());
  }

  // LU (same matmul-type bound).
  for (auto [q, c] : {std::pair{2, 1}, {4, 1}, {2, 2}}) {
    const int n = 32;
    const double p = static_cast<double>(q) * q * c;
    const double M = static_cast<double>(n) * n * c / p;
    const auto r = algs::harness::run_lu(n, 4, q, c, mp);
    row(strfmt("lu q=%d c=%d", q, c), r.p, M,
        core::bounds::matmul_words(n, p, M) / 3.0,  // LU does n³/3 flops
        r.words_per_proc());
  }

  t.print(std::cout);
  std::cout << "\nSequential FFT floor (Hong & Kung, Eq. in Section IV): "
               "W = n log n / log M; e.g. n = 2^20 through M = 2^15 words "
               "of cache: "
            << core::bounds::fft_sequential_words(1 << 20, 1 << 15)
            << " words.\n";
  return 0;
}
