// Optimality certificate — Section III: the measured per-processor word
// traffic of each executable algorithm against its communication lower
// bound (Eqs. 3–5 and the memory-independent floors of [12], [13]).
// "Communication-optimal" means the ratio column is O(1) and stays flat as
// p grows; a growing ratio would mean the implementation wastes bandwidth
// asymptotically.
//
// The configuration grid runs through the experiment engine (--threads,
// --cache-dir); the printed table is identical regardless of concurrency.
#include <functional>
#include <iostream>
#include <vector>

#include "algs/nbody/nbody.hpp"
#include "bench_common.hpp"
#include "core/algmodel.hpp"
#include "core/bounds.hpp"
#include "engine/runner.hpp"
#include "support/cli.hpp"
#include "support/common.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace alge;
  CliArgs cli;
  engine::add_engine_flags(cli);
  cli.parse(argc, argv);
  if (cli.help_requested()) {
    std::cout << cli.usage("bounds_optimality");
    return 0;
  }

  bench::banner("Lower-bound optimality check (Section III)",
                "measured W/rank vs the per-processor communication lower "
                "bound; flat O(1) ratios certify communication "
                "optimality.");
  core::MachineParams mp = core::MachineParams::unit();
  Table t({"experiment", "p", "M/rank (words)", "W bound", "measured W/rank",
           "ratio"});

  std::vector<engine::ExperimentSpec> specs;
  std::vector<std::function<void(const engine::ExperimentResult&)>> rows;

  // `bound` is a function of the measured p so row math matches the
  // original serial code exactly.
  auto add = [&](const std::string& name, double M,
                 std::function<double(double)> bound,
                 engine::ExperimentSpec spec) {
    spec.params = mp;
    specs.push_back(std::move(spec));
    rows.push_back(
        [&t, name, M, bound](const engine::ExperimentResult& r) {
          const double b = bound(static_cast<double>(r.p));
          t.row()
              .cell(name)
              .cell(r.p)
              .cell(M, "%.0f")
              .cell(b, "%.0f")
              .cell(r.words_per_proc(), "%.0f")
              .cell(r.words_per_proc() / b, "%.2f");
        });
  };

  // Classical matmul across the 2D..3D range.
  for (auto [q, c] : {std::pair{4, 1}, {4, 2}, {4, 4}, {8, 1}, {8, 2}}) {
    const int n = 48;
    const double p = static_cast<double>(q) * q * c;
    const double M = 3.0 * n * n * c / p;  // A, B, C blocks
    engine::ExperimentSpec s;
    s.alg = engine::Alg::kMm25d;
    s.n = n;
    s.q = q;
    s.c = c;
    add(strfmt("mm q=%d c=%d", q, c), M,
        [n, M](double pp) { return core::bounds::matmul_words(n, pp, M); }, s);
  }

  // CAPS Strassen.
  for (int k : {1, 2}) {
    const int n = 28;
    const double p = k == 1 ? 7.0 : 49.0;
    const double M = 7.0 * n * n / (4.0 * p) * 3.0;  // BFS working set
    engine::ExperimentSpec s;
    s.alg = engine::Alg::kCaps;
    s.n = n;
    s.k = k;
    add(strfmt("caps k=%d", k), M,
        [n, M](double pp) {
          return core::bounds::strassen_words(
              n, pp, M, core::StrassenModel::kStrassenOmega);
        },
        s);
  }

  // Replicating n-body (bound in particle units; measured words carry the
  // 4-words-per-particle factor, part of the O(1)).
  for (auto [p, c] : {std::pair{8, 1}, {16, 2}, {16, 4}, {64, 4}}) {
    const int n = 128;
    const double M = static_cast<double>(n) * c / p;
    engine::ExperimentSpec s;
    s.alg = engine::Alg::kNBody;
    s.n = n;
    s.p = p;
    s.c = c;
    add(strfmt("nbody p=%d c=%d", p, c), M * algs::kParticleWords,
        [n, M](double pp) {
          return core::bounds::nbody_words(n, pp, M) * algs::kParticleWords;
        },
        s);
  }

  // LU (same matmul-type bound).
  for (auto [q, c] : {std::pair{2, 1}, {4, 1}, {2, 2}}) {
    const int n = 32;
    const double p = static_cast<double>(q) * q * c;
    const double M = static_cast<double>(n) * n * c / p;
    engine::ExperimentSpec s;
    s.alg = engine::Alg::kLu;
    s.n = n;
    s.nb = 4;
    s.q = q;
    s.c = c;
    add(strfmt("lu q=%d c=%d", q, c), M,
        [n, M](double pp) {
          return core::bounds::matmul_words(n, pp, M) / 3.0;  // n³/3 flops
        },
        s);
  }

  engine::SweepRunner runner(engine::sweep_options_from_cli(cli));
  const auto results = runner.run(specs);
  for (std::size_t i = 0; i < results.size(); ++i) rows[i](results[i]);

  t.print(std::cout);
  std::cout << "\nSequential FFT floor (Hong & Kung, Eq. in Section IV): "
               "W = n log n / log M; e.g. n = 2^20 through M = 2^15 words "
               "of cache: "
            << core::bounds::fft_sequential_words(1 << 20, 1 << 15)
            << " words.\n";
  engine::append_bench_record("bounds_optimality", runner,
                              cli.get("bench-json"));
  return 0;
}
