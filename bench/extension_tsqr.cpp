// Extension — TSQR: the paper's bounds framework covers QR ([2]); TSQR is
// the latency/bandwidth-optimal tall-skinny factorization. Measured against
// the gather-to-root baseline across p, with the Eq. (2) energy of both.
#include <iostream>

#include "algs/matmul/local.hpp"
#include "algs/qr/tsqr.hpp"
#include "bench_common.hpp"
#include "sim/comm.hpp"
#include "sim/machine.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

int main() {
  using namespace alge;
  bench::banner("Extension: TSQR vs gather-QR",
                "Tall-skinny QR (b=8 columns, 32 rows/rank): tree reduction "
                "moves b^2 log p words in log p messages; gathering rows "
                "moves the whole panel.");
  core::MachineParams mp;
  mp.gamma_t = 1.0;
  mp.beta_t = 2.0;
  mp.alpha_t = 10.0;
  mp.gamma_e = 1.0;
  mp.beta_e = 4.0;
  mp.alpha_e = 20.0;
  mp.delta_e = 1e-4;
  mp.eps_e = 1e-2;
  mp.max_msg_words = 1e9;

  const int b = 8;
  const int rows = 32;
  Table t({"p", "variant", "W total", "S/rank max", "T (sim)", "E (sim)"});
  for (int p : {4, 16, 64}) {
    Rng rng(3);
    const auto A = algs::random_matrix(rows * p, b, rng);
    const std::size_t lw = static_cast<std::size_t>(rows) * b;
    for (bool tree : {true, false}) {
      sim::MachineConfig cfg;
      cfg.p = p;
      cfg.params = mp;
      sim::Machine m(cfg);
      std::vector<double> r(static_cast<std::size_t>(b) * b);
      m.run([&](sim::Comm& comm) {
        auto mine = std::span<const double>(A).subspan(
            lw * static_cast<std::size_t>(comm.rank()), lw);
        std::span<double> out =
            comm.rank() == 0 ? std::span<double>(r) : std::span<double>{};
        if (tree) {
          algs::tsqr(comm, b, mine, out);
        } else {
          algs::gather_qr(comm, b, mine, out);
        }
      });
      t.row()
          .cell(p)
          .cell(tree ? "tsqr (tree)" : "gather-qr")
          .cell(m.totals().words_total, "%.0f")
          .cell(m.totals().msgs_sent_max, "%.0f")
          .cell(m.makespan(), "%.0f")
          .cell(m.energy().total(), "%.4g");
    }
  }
  t.print(std::cout);
  std::cout << "\nTSQR's advantage grows linearly in p on bandwidth and "
               "the root's serial factorization: the same structure the "
               "paper exploits — a reduction tree replaces data movement "
               "with redundant computation.\n";
  return 0;
}
