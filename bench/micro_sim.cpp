// Wall-clock micro-benchmarks (google-benchmark) for the simulator's three
// hot paths — message matching, payload transport, and fiber scheduling —
// tracked before/after optimization work in BENCH_sim.json.
//
// The four benchmarks map onto the costs a simulated experiment pays:
//   BM_PingPong            per-message latency incl. the block/unblock path
//   BM_AllToAllMatch/p     recv-side matching with p-1 pending messages per
//                          rank (recvs issued in reverse arrival order: the
//                          worst case for a linear mailbox scan)
//   BM_ContextSwitch/n     switch rate with n-2 blocked bystander fibers (a
//                          scheduler that scans all fibers degrades with n)
//   BM_SendRecvThroughput  credit-window streaming (payload transport +
//                          the blocking exchange cycle, the shape of real
//                          collective traffic)
#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstdio>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "fiber/fiber.hpp"
#include "obs/chrome_trace.hpp"
#include "sim/comm.hpp"
#include "sim/group.hpp"
#include "sim/machine.hpp"

namespace {

using namespace alge;

sim::MachineConfig unit_config(int p) {
  sim::MachineConfig cfg;
  cfg.p = p;
  cfg.params = core::MachineParams::unit();
  return cfg;
}

void BM_PingPong(benchmark::State& state) {
  // Round-trip of an 8-word message between two ranks. Every recv blocks
  // (the partner has not sent yet), so this measures matching + the
  // block/unblock path + two payload transports per round.
  const int rounds = 2000;
  const sim::MachineConfig cfg = unit_config(2);
  for (auto _ : state) {
    sim::Machine m(cfg);
    m.run([&](sim::Comm& c) {
      std::vector<double> buf(8, 1.0);
      for (int i = 0; i < rounds; ++i) {
        if (c.rank() == 0) {
          c.send(1, buf);
          c.recv(1, buf);
        } else {
          c.recv(0, buf);
          c.send(0, buf);
        }
      }
    });
  }
  state.SetItemsProcessed(state.iterations() * 2 * rounds);
}
BENCHMARK(BM_PingPong);

void BM_AllToAllMatch(benchmark::State& state) {
  // Each rank posts p-1 eager sends, then receives from every peer in
  // reverse order of arrival. A mailbox that scans linearly pays
  // O(pending) per recv — O(p^2) scans per rank and round; indexed
  // matching pays O(1).
  const int p = static_cast<int>(state.range(0));
  const int rounds = 4;
  const sim::MachineConfig cfg = unit_config(p);
  for (auto _ : state) {
    sim::Machine m(cfg);
    m.run([&](sim::Comm& c) {
      std::vector<double> out(4, 0.0);
      const std::vector<double> in(4, 1.0);
      for (int r = 0; r < rounds; ++r) {
        for (int d = 1; d < p; ++d) c.send((c.rank() + d) % p, in, r);
        for (int d = p - 1; d >= 1; --d) c.recv((c.rank() + d) % p, out, r);
      }
    });
  }
  state.SetItemsProcessed(state.iterations() * rounds * p *
                          static_cast<int64_t>(p - 1));
}
BENCHMARK(BM_AllToAllMatch)->Arg(16)->Arg(64);

void BM_ContextSwitch(benchmark::State& state) {
  // Two fibers yield to each other while n-2 bystanders sit blocked, then
  // everything is released. A scheduler that scans the whole fiber table
  // per switch costs O(n); a ready queue costs O(1).
  const int n = static_cast<int>(state.range(0));
  const int yields = 4000;
  for (auto _ : state) {
    fiber::Scheduler s;
    std::vector<fiber::Scheduler::FiberId> blocked;
    for (int f = 0; f < 2; ++f) {
      s.spawn([&, f] {
        for (int i = 0; i < yields; ++i) fiber::Scheduler::active()->yield();
        if (f == 0) {
          for (auto id : blocked) fiber::Scheduler::active()->unblock(id);
        }
      });
    }
    for (int f = 2; f < n; ++f) {
      blocked.push_back(s.spawn(
          [] { fiber::Scheduler::active()->block("bystander"); }));
    }
    s.run();
  }
  state.SetItemsProcessed(state.iterations() * 2 * yields);
}
BENCHMARK(BM_ContextSwitch)->Arg(2)->Arg(64)->Arg(256);

void BM_SendRecvThroughput(benchmark::State& state) {
  // Rank 0 streams `words`-word messages to rank 1 under a two-message
  // credit window (rank 1 acks each window with an empty message) — the
  // shape of the simulator's real traffic: collective steps are blocking
  // neighbor exchanges, never unbounded eager bursts. Measures payload
  // transport end to end: rendezvous delivery into the blocked receiver,
  // pooled buffers for the queued half, and the block/unblock cycle.
  // Items are words moved.
  const int msgs = 2000;
  const int window = 2;
  const std::size_t words = static_cast<std::size_t>(state.range(0));
  const sim::MachineConfig cfg = unit_config(2);
  for (auto _ : state) {
    sim::Machine m(cfg);
    m.run([&](sim::Comm& c) {
      if (c.rank() == 0) {
        const std::vector<double> buf(words, 1.0);
        for (int i = 0; i < msgs; ++i) {
          c.send(1, buf, 0);
          if (i % window == window - 1) c.recv(1, std::span<double>(), 1);
        }
      } else {
        std::vector<double> buf(words, 0.0);
        for (int i = 0; i < msgs; ++i) {
          c.recv(0, buf, 0);
          if (i % window == window - 1) {
            c.send(0, std::span<const double>(), 1);
          }
        }
        benchmark::DoNotOptimize(buf.data());
      }
    });
  }
  state.SetItemsProcessed(state.iterations() * msgs *
                          static_cast<int64_t>(words));
}
BENCHMARK(BM_SendRecvThroughput)->Arg(32)->Arg(256);

// --trace-out=PATH: export a Chrome trace of a small representative run — a
// p=4 machine doing phased compute, a ring exchange, and an allreduce —
// exercising every exported track (spans, collectives, phases, F/W/S/M
// counters). micro_sim links only the sim layer, so the demo is built from
// raw collectives rather than an engine spec.
void write_demo_trace(const std::string& path) {
  sim::MachineConfig cfg = unit_config(4);
  cfg.enable_trace = true;
  sim::Machine m(cfg);
  m.run([](sim::Comm& c) {
    const sim::Group world = sim::Group::world(c.size());
    sim::Buffer buf = c.alloc(32);
    {
      auto ph = c.phase("local-work");
      c.compute(100.0 * (c.rank() + 1));
    }
    {
      auto ph = c.phase("ring-exchange");
      const int next = (c.rank() + 1) % c.size();
      const int prev = (c.rank() + c.size() - 1) % c.size();
      sim::Buffer in = c.alloc(32);
      c.sendrecv(next, buf.span(), prev, in.span());
    }
    {
      auto ph = c.phase("reduce");
      std::vector<double> v(16, 1.0);
      c.allreduce_sum(v, world);
    }
  });
  obs::write_chrome_trace_file(m.trace(), m.p(), path);
  std::fprintf(stderr,
               "[trace] wrote %s (p=%d) -- load in chrome://tracing or "
               "https://ui.perfetto.dev\n",
               path.c_str(), m.p());
}

}  // namespace

// BENCHMARK_MAIN, plus the --trace-out flag google-benchmark would reject:
// strip it from argv before Initialize, act on it after the benchmarks run.
int main(int argc, char** argv) {
  std::string trace_out;
  std::vector<char*> args;
  args.reserve(static_cast<std::size_t>(argc));
  for (int i = 0; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.rfind("--trace-out=", 0) == 0) {
      trace_out = arg.substr(12);
      continue;
    }
    if (arg == "--trace-out" && i + 1 < argc) {
      trace_out = argv[++i];
      continue;
    }
    args.push_back(argv[i]);
  }
  int bench_argc = static_cast<int>(args.size());
  benchmark::Initialize(&bench_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (!trace_out.empty()) write_demo_trace(trace_out);
  return 0;
}
