// Perfect strong scaling check for the replicating n-body algorithm
// (Eqs. 15–16): fixed n and fixed per-rank memory (block size constant as
// p and c grow together); expect T·p ~ constant and E ~ constant inside
// n/p <= M <= n/sqrt(p).
#include <iostream>

#include "algs/harness.hpp"
#include "bench_common.hpp"
#include "core/algmodel.hpp"
#include "algs/nbody/nbody.hpp"
#include "core/closed_forms.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace alge;
  CliArgs cli;
  cli.add_flag("n", "256", "particles");
  cli.add_flag("blocks", "4", "particle blocks P = p/c (fixed across rows)");
  cli.add_flag("cmax", "8", "largest replication factor");
  cli.add_flag("verify", "true", "check against serial direct forces");
  cli.parse(argc, argv);
  if (cli.help_requested()) {
    std::cout << cli.usage("scaling_nbody_energy");
    return 0;
  }
  const int n = static_cast<int>(cli.get_int("n"));
  const int blocks = static_cast<int>(cli.get_int("blocks"));
  const int cmax = static_cast<int>(cli.get_int("cmax"));
  const bool verify = cli.get_bool("verify");

  bench::banner("Strong scaling: replicating n-body (Eqs. 15-16)",
                "Fixed n and fixed block size (P = p/c constant); p = P*c "
                "grows with c. Expect T x p ~ constant, E ~ constant.");

  core::MachineParams mp;
  mp.gamma_t = 1.0;
  mp.beta_t = 2.0;
  mp.alpha_t = 10.0;
  mp.gamma_e = 1.0;
  mp.beta_e = 4.0;
  mp.alpha_e = 20.0;
  mp.delta_e = 1e-4;
  mp.eps_e = 1e-2;
  mp.max_msg_words = 64;

  Table t({"c", "p", "in range", "T (sim)", "T x p / (T x p)_1", "E (sim)",
           "E/E_1", "W/rank", "S/rank", "max |err|"});
  double t0p = -1.0;
  double e0 = -1.0;
  for (int c = 1; c <= cmax; c *= 2) {
    const int p = blocks * c;
    // Perfect scaling holds for M <= n/sqrt(p), i.e. c <= sqrt(p): past
    // that, replication cannot reduce communication further and the extra
    // team members only add broadcast/reduce traffic.
    const bool in_range = c * c <= p;
    const auto r = algs::harness::run_nbody(n, p, c, mp, verify);
    const double txp = r.makespan * r.p;
    const double e = r.energy.total();
    if (t0p < 0.0) {
      t0p = txp;
      e0 = e;
    }
    t.row()
        .cell(c)
        .cell(p)
        .cell(in_range ? "yes" : "no")
        .cell(r.makespan, "%.0f")
        .cell(txp / t0p, "%.3f")
        .cell(e, "%.4g")
        .cell(e / e0, "%.3f")
        .cell(r.words_per_proc(), "%.0f")
        .cell(r.msgs_per_proc(), "%.0f")
        .cell(r.max_abs_error, "%.2g");
  }
  t.print(std::cout);

  std::cout << "\nModel prediction (Eq. 16: E depends on M only):\n";
  core::NBodyModel model(algs::kInteractionFlops);
  Table mt({"c", "p", "T model", "E model", "E/E_1"});
  double em0 = -1.0;
  for (int c = 1; c <= cmax; c *= 2) {
    const double p = static_cast<double>(blocks) * c;
    const double M = static_cast<double>(n) * c / p;
    const double tm = model.time(n, p, M, mp);
    const double em = model.energy(n, p, M, mp);
    if (em0 < 0.0) em0 = em;
    mt.row().cell(c).cell(p, "%.0f").cell(tm, "%.0f").cell(em, "%.4g").cell(
        em / em0, "%.3f");
  }
  mt.print(std::cout);
  return 0;
}
