// Table II — the 11-processor survey: peak FP, γt, γe, GFLOPS/W derived
// from datasheet fields, with the Section-VII observations checked.
#include <algorithm>
#include <iostream>

#include "bench_common.hpp"
#include "machines/db.hpp"
#include "support/table.hpp"

int main() {
  using namespace alge;
  bench::banner("Table II",
                "Example machine parameters for gamma_e and gamma_t "
                "(derived columns computed from the datasheet fields).");
  Table t({"Processor", "Freq(GHz)", "Cores", "SIMD", "TDP(W)",
           "Peak FP(GFLOP/s)", "gamma_t(s/flop)", "gamma_e(J/flop)",
           "GFLOPS/W"});
  double best = 0.0;
  for (const auto& spec : machines::table2_processors()) {
    t.row()
        .cell(spec.name)
        .cell(spec.freq_ghz, "%.3g")
        .cell(spec.cores)
        .cell(spec.simd_width)
        .cell(spec.tdp_watts, "%.1f")
        .cell(spec.peak_gflops(), "%.2f")
        .cell(spec.gamma_t(), "%.3g")
        .cell(spec.gamma_e(), "%.3g")
        .cell(spec.gflops_per_watt(), "%.3f");
    best = std::max(best, spec.gflops_per_watt());
  }
  t.print(std::cout);
  std::cout << "\nSection VII check: best efficiency in the table is "
            << best << " GFLOPS/W — no device approaches 10 GFLOPS/W.\n";
  return 0;
}
