// Perfect strong scaling check for classical matmul (Eqs. 9–10): fixed n
// and fixed per-rank memory, grow p by the replication factor c; the
// simulator-measured runtime must fall ~c-fold while Eq. (2) energy stays
// ~constant. Uses case-study-like parameters so every energy term is live.
//
// Both sweeps (tree and ring replication) run as one batch through the
// experiment engine: --threads N runs the (c, variant) points concurrently,
// --cache-dir PATH reuses results across invocations. The counters and
// energies are data-independent, so the tables are identical regardless.
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "core/algmodel.hpp"
#include "engine/runner.hpp"
#include "machines/db.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace alge;
  CliArgs cli;
  cli.add_flag("n", "48", "matrix dimension (simulated)");
  cli.add_flag("q", "8", "grid edge (p = q^2 c)");
  cli.add_flag("verify", "true", "check results against a serial product");
  engine::add_engine_flags(cli);
  bench::add_trace_flags(cli);
  bench::add_chaos_flags(cli);
  bench::add_data_mode_flag(cli);
  bench::add_exec_mode_flag(cli);
  cli.parse(argc, argv);
  if (cli.help_requested()) {
    std::cout << cli.usage("scaling_mm_energy");
    return 0;
  }
  const int n = static_cast<int>(cli.get_int("n"));
  const int q = static_cast<int>(cli.get_int("q"));
  const bool verify = cli.get_bool("verify");

  bench::banner("Strong scaling: classical matmul (Eqs. 9-10)",
                "Fixed n and per-rank block memory; p grows by c. Expect "
                "T x p ~ constant and E ~ constant (perfect strong "
                "scaling in time AND energy).");

  // Parameters tuned so compute, bandwidth, latency, memory and leakage all
  // contribute at the simulated scale.
  core::MachineParams mp;
  mp.gamma_t = 1.0;
  mp.beta_t = 2.0;
  mp.alpha_t = 10.0;
  mp.gamma_e = 1.0;
  mp.beta_e = 4.0;
  mp.alpha_e = 20.0;
  mp.delta_e = 1e-4;
  mp.eps_e = 1e-2;
  mp.max_msg_words = 64;

  std::vector<int> cs;
  for (int c = 1; c <= q; c *= 2) {
    if (q % c != 0) continue;
    cs.push_back(c);
  }
  std::vector<engine::ExperimentSpec> specs;
  for (const int c : cs) {  // tree replication, verified
    engine::ExperimentSpec s;
    s.alg = engine::Alg::kMm25d;
    s.params = mp;
    s.n = n;
    s.q = q;
    s.c = c;
    s.verify = verify;
    specs.push_back(s);
  }
  for (const int c : cs) {  // ring (pipelined) replication
    engine::ExperimentSpec s;
    s.alg = engine::Alg::kMm25d;
    s.params = mp;
    s.n = n;
    s.q = q;
    s.c = c;
    s.ring_replication = true;
    specs.push_back(s);
  }
  bench::apply_chaos_flags(cli, specs);
  bench::apply_data_mode_flag(cli, specs);
  bench::apply_exec_mode_flag(cli, specs);
  engine::SweepRunner runner(engine::sweep_options_from_cli(cli));
  const auto results = runner.run(specs);

  Table t({"c", "p", "T (sim)", "T x p / (T x p)_2D", "E (sim)", "E/E_2D",
           "W/rank", "S/rank", "max |err|"});
  double t0p = -1.0;
  double e0 = -1.0;
  for (std::size_t i = 0; i < cs.size(); ++i) {
    const auto& r = results[i];
    const double txp = r.makespan * r.p;
    const double e = r.energy_total();
    if (t0p < 0.0) {
      t0p = txp;
      e0 = e;
    }
    t.row()
        .cell(cs[i])
        .cell(r.p)
        .cell(r.makespan, "%.0f")
        .cell(txp / t0p, "%.3f")
        .cell(e, "%.4g")
        .cell(e / e0, "%.3f")
        .cell(r.words_per_proc(), "%.0f")
        .cell(r.msgs_per_proc(), "%.0f")
        .cell(r.max_abs_error, "%.2g");
  }
  t.print(std::cout);

  std::cout << "\nSame sweep with ring (pipelined) depth replication — the\n"
               "per-rank critical-path words drop toward the asymptotic\n"
               "2(q/c)nb^2 (the energy trades a few alpha_e messages for\n"
               "the removed beta_e copies):\n";
  Table t2({"c", "p", "T (sim)", "E (sim)", "E/E_2D", "W/rank"});
  double e0r = -1.0;
  for (std::size_t i = 0; i < cs.size(); ++i) {
    const auto& r = results[cs.size() + i];
    const double e = r.energy_total();
    if (e0r < 0.0) e0r = e;
    t2.row()
        .cell(cs[i])
        .cell(r.p)
        .cell(r.makespan, "%.0f")
        .cell(e, "%.4g")
        .cell(e / e0r, "%.3f")
        .cell(r.words_per_proc(), "%.0f");
  }
  t2.print(std::cout);
  std::cout << "\n(The paper's claim is perfect strong scaling *modulo "
               "log p factors*: the residual rise in T x p and E comes from "
               "the log c replication broadcast/reduction, which the model "
               "below omits.)\n";

  std::cout << "\nModel prediction (same machine parameters, Eqs. 9-10): "
               "energy independent of p for n^2/p <= M <= n^2/p^(2/3).\n";
  core::ClassicalMatmulModel model;
  Table mt({"c", "p", "T model", "E model", "E/E_2D"});
  const double nn = n;
  double em0 = -1.0;
  for (const int c : cs) {
    const double p = static_cast<double>(q) * q * c;
    const double M = nn * nn * c / p;  // fixed per-rank block memory
    const double tm = model.time(nn, p, M, mp);
    const double em = model.energy(nn, p, M, mp);
    if (em0 < 0.0) em0 = em;
    mt.row().cell(c).cell(p, "%.0f").cell(tm, "%.0f").cell(em, "%.4g").cell(
        em / em0, "%.3f");
  }
  mt.print(std::cout);
  engine::append_bench_record("scaling_mm_energy", runner,
                              cli.get("bench-json"));
  // --trace-out: export the largest replicated point's timeline.
  bench::maybe_write_trace(cli, specs[cs.size() - 1]);
  return 0;
}
