// Perfect strong scaling check for classical matmul (Eqs. 9–10): fixed n
// and fixed per-rank memory, grow p by the replication factor c; the
// simulator-measured runtime must fall ~c-fold while Eq. (2) energy stays
// ~constant. Uses case-study-like parameters so every energy term is live.
#include <iostream>

#include "algs/harness.hpp"
#include "algs/matmul/distributed.hpp"
#include "algs/matmul/local.hpp"
#include "sim/machine.hpp"
#include "support/rng.hpp"
#include "topo/grid.hpp"
#include "bench_common.hpp"
#include "core/algmodel.hpp"
#include "machines/db.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace alge;
  CliArgs cli;
  cli.add_flag("n", "48", "matrix dimension (simulated)");
  cli.add_flag("q", "8", "grid edge (p = q^2 c)");
  cli.add_flag("verify", "true", "check results against a serial product");
  cli.parse(argc, argv);
  if (cli.help_requested()) {
    std::cout << cli.usage("scaling_mm_energy");
    return 0;
  }
  const int n = static_cast<int>(cli.get_int("n"));
  const int q = static_cast<int>(cli.get_int("q"));
  const bool verify = cli.get_bool("verify");

  bench::banner("Strong scaling: classical matmul (Eqs. 9-10)",
                "Fixed n and per-rank block memory; p grows by c. Expect "
                "T x p ~ constant and E ~ constant (perfect strong "
                "scaling in time AND energy).");

  // Parameters tuned so compute, bandwidth, latency, memory and leakage all
  // contribute at the simulated scale.
  core::MachineParams mp;
  mp.gamma_t = 1.0;
  mp.beta_t = 2.0;
  mp.alpha_t = 10.0;
  mp.gamma_e = 1.0;
  mp.beta_e = 4.0;
  mp.alpha_e = 20.0;
  mp.delta_e = 1e-4;
  mp.eps_e = 1e-2;
  mp.max_msg_words = 64;

  Table t({"c", "p", "T (sim)", "T x p / (T x p)_2D", "E (sim)", "E/E_2D",
           "W/rank", "S/rank", "max |err|"});
  double t0p = -1.0;
  double e0 = -1.0;
  for (int c = 1; c <= q; c *= 2) {
    if (q % c != 0) continue;
    const auto r = algs::harness::run_mm25d(n, q, c, mp, verify);
    const double txp = r.makespan * r.p;
    const double e = r.energy.total();
    if (t0p < 0.0) {
      t0p = txp;
      e0 = e;
    }
    t.row()
        .cell(c)
        .cell(r.p)
        .cell(r.makespan, "%.0f")
        .cell(txp / t0p, "%.3f")
        .cell(e, "%.4g")
        .cell(e / e0, "%.3f")
        .cell(r.words_per_proc(), "%.0f")
        .cell(r.msgs_per_proc(), "%.0f")
        .cell(r.max_abs_error, "%.2g");
  }
  t.print(std::cout);

  std::cout << "\nSame sweep with ring (pipelined) depth replication — the\n"
               "per-rank critical-path words drop toward the asymptotic\n"
               "2(q/c)nb^2 (the energy trades a few alpha_e messages for\n"
               "the removed beta_e copies):\n";
  Table t2({"c", "p", "T (sim)", "E (sim)", "E/E_2D", "W/rank"});
  double e0r = -1.0;
  for (int c = 1; c <= q; c *= 2) {
    if (q % c != 0) continue;
    // run_mm25d always uses tree replication; drive the ring variant
    // directly through the grid machinery at the same sizes.
    topo::Grid3D grid(q, c);
    sim::MachineConfig cfg;
    cfg.p = grid.p();
    cfg.params = mp;
    sim::Machine m(cfg);
    Rng rng(1);
    const auto A = algs::random_matrix(n, n, rng);
    algs::Mm25dOptions ring;
    ring.ring_replication = true;
    m.run([&](sim::Comm& comm) {
      const int i = grid.row_of(comm.rank());
      const int j = grid.col_of(comm.rank());
      if (grid.layer_of(comm.rank()) == 0) {
        const int nb = n / q;
        std::vector<double> a(static_cast<std::size_t>(nb) * nb, 1.0);
        std::vector<double> cb(a.size(), 0.0);
        algs::mm_25d(comm, grid, n, a, a, cb, ring);
      } else {
        algs::mm_25d(comm, grid, n, {}, {}, {}, ring);
      }
      (void)i;
      (void)j;
    });
    const double e = m.energy().total();
    if (e0r < 0.0) e0r = e;
    t2.row()
        .cell(c)
        .cell(grid.p())
        .cell(m.makespan(), "%.0f")
        .cell(e, "%.4g")
        .cell(e / e0r, "%.3f")
        .cell(m.totals().words_sent_max, "%.0f");
  }
  t2.print(std::cout);
  std::cout << "\n(The paper's claim is perfect strong scaling *modulo "
               "log p factors*: the residual rise in T x p and E comes from "
               "the log c replication broadcast/reduction, which the model "
               "below omits.)\n";

  std::cout << "\nModel prediction (same machine parameters, Eqs. 9-10): "
               "energy independent of p for n^2/p <= M <= n^2/p^(2/3).\n";
  core::ClassicalMatmulModel model;
  Table mt({"c", "p", "T model", "E model", "E/E_2D"});
  const double nn = n;
  double em0 = -1.0;
  for (int c = 1; c <= q; c *= 2) {
    if (q % c != 0) continue;
    const double p = static_cast<double>(q) * q * c;
    const double M = nn * nn * c / p;  // fixed per-rank block memory
    const double tm = model.time(nn, p, M, mp);
    const double em = model.energy(nn, p, M, mp);
    if (em0 < 0.0) em0 = em;
    mt.row().cell(c).cell(p, "%.0f").cell(tm, "%.0f").cell(em, "%.4g").cell(
        em / em0, "%.3f");
  }
  mt.print(std::cout);
  return 0;
}
