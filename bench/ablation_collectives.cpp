// Ablation — collective implementations (DESIGN.md §5): the binomial
// broadcast/reduce behind the `log c` term of Eq. (7)'s S, ring allgather,
// and direct vs Bruck all-to-all, measured per group size on the simulator.
#include <cmath>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "sim/comm.hpp"
#include "sim/machine.hpp"
#include "support/table.hpp"

int main() {
  using namespace alge;
  bench::banner("Ablation: collective algorithms",
                "Per-rank maximum words/messages for a k=64-word payload as "
                "the group grows. Binomial trees give the log p critical "
                "path assumed by the models.");
  const std::size_t k = 64;
  Table t({"p", "bcast S/rank", "bcast T", "reduce T", "allgather W/rank",
           "a2a-direct S/rank", "a2a-bruck S/rank", "a2a-bruck W/rank"});
  for (int p : {2, 4, 8, 16, 32, 64}) {
    sim::MachineConfig cfg;
    cfg.p = p;
    cfg.params = core::MachineParams::unit();

    struct Measured {
      sim::SimTotals totals;
      double makespan = 0.0;
    };
    auto measure = [&](auto op) {
      sim::Machine m(cfg);
      m.run(op);
      return Measured{m.totals(), m.makespan()};
    };
    auto bcast = measure([&](sim::Comm& c) {
      std::vector<double> d(k, 1.0);
      c.bcast(d, 0, sim::Group::world(p));
    });
    auto reduce = measure([&](sim::Comm& c) {
      std::vector<double> d(k, 1.0);
      std::vector<double> out(k);
      c.reduce_sum(d, out, 0, sim::Group::world(p));
    });
    auto gather = measure([&](sim::Comm& c) {
      std::vector<double> d(k, 1.0);
      std::vector<double> out(k * static_cast<std::size_t>(p));
      c.allgather(d, out, sim::Group::world(p));
    });
    auto a2a = measure([&](sim::Comm& c) {
      std::vector<double> d(k * static_cast<std::size_t>(p), 1.0);
      std::vector<double> out(d.size());
      c.alltoall(d, out, sim::Group::world(p));
    });
    auto bruck = measure([&](sim::Comm& c) {
      std::vector<double> d(k * static_cast<std::size_t>(p), 1.0);
      std::vector<double> out(d.size());
      c.alltoall_bruck(d, out, sim::Group::world(p));
    });
    t.row()
        .cell(p)
        .cell(bcast.totals.msgs_sent_max, "%.0f")
        .cell(bcast.makespan, "%.0f")
        .cell(reduce.makespan, "%.0f")
        .cell(gather.totals.words_sent_max, "%.0f")
        .cell(a2a.totals.msgs_sent_max, "%.0f")
        .cell(bruck.totals.msgs_sent_max, "%.0f")
        .cell(bruck.totals.words_sent_max, "%.0f");
  }
  t.print(std::cout);
  std::cout << "\nExpected: bcast S/rank = log2 p; allgather W = (p-1)k; "
               "bruck S = ceil(log2 p) at ~(k p/2) log2 p words.\n";
  return 0;
}
