// Ablation — collective implementations (DESIGN.md §5): the binomial
// broadcast/reduce behind the `log c` term of Eq. (7)'s S, ring allgather,
// and direct vs Bruck all-to-all, measured per group size on the simulator.
//
// The (p, collective) grid runs through the experiment engine: each point
// is one engine job (see Alg::kColl*), so --threads N measures the group
// sizes concurrently and --cache-dir PATH skips re-measuring known points.
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "engine/runner.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace alge;
  CliArgs cli;
  engine::add_engine_flags(cli);
  cli.parse(argc, argv);
  if (cli.help_requested()) {
    std::cout << cli.usage("ablation_collectives");
    return 0;
  }

  bench::banner("Ablation: collective algorithms",
                "Per-rank maximum words/messages for a k=64-word payload as "
                "the group grows. Binomial trees give the log p critical "
                "path assumed by the models.");
  const int k = 64;
  const engine::Alg kinds[] = {
      engine::Alg::kCollBcast, engine::Alg::kCollReduce,
      engine::Alg::kCollAllgather, engine::Alg::kCollA2aDirect,
      engine::Alg::kCollA2aBruck};
  const int ps[] = {2, 4, 8, 16, 32, 64};

  std::vector<engine::ExperimentSpec> specs;
  for (const int p : ps) {
    for (const engine::Alg kind : kinds) {
      engine::ExperimentSpec s;
      s.alg = kind;
      s.params = core::MachineParams::unit();
      s.p = p;
      s.payload_words = k;
      specs.push_back(s);
    }
  }
  engine::SweepRunner runner(engine::sweep_options_from_cli(cli));
  const auto results = runner.run(specs);

  Table t({"p", "bcast S/rank", "bcast T", "reduce T", "allgather W/rank",
           "a2a-direct S/rank", "a2a-bruck S/rank", "a2a-bruck W/rank"});
  for (std::size_t i = 0; i < std::size(ps); ++i) {
    const auto& bcast = results[i * std::size(kinds) + 0];
    const auto& reduce = results[i * std::size(kinds) + 1];
    const auto& gather = results[i * std::size(kinds) + 2];
    const auto& a2a = results[i * std::size(kinds) + 3];
    const auto& bruck = results[i * std::size(kinds) + 4];
    t.row()
        .cell(ps[i])
        .cell(bcast.totals.msgs_sent_max, "%.0f")
        .cell(bcast.makespan, "%.0f")
        .cell(reduce.makespan, "%.0f")
        .cell(gather.totals.words_sent_max, "%.0f")
        .cell(a2a.totals.msgs_sent_max, "%.0f")
        .cell(bruck.totals.msgs_sent_max, "%.0f")
        .cell(bruck.totals.words_sent_max, "%.0f");
  }
  t.print(std::cout);
  std::cout << "\nExpected: bcast S/rank = log2 p; allgather W = (p-1)k; "
               "bruck S = ceil(log2 p) at ~(k p/2) log2 p words.\n";
  engine::append_bench_record("ablation_collectives", runner,
                              cli.get("bench-json"));
  return 0;
}
