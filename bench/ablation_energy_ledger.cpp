// Ablation — energy-ledger conventions (DESIGN.md §5): Eq. (2) charges
// p·δe·M·T for memory. The simulator can price M as the measured per-rank
// high-water mark (pay for what the algorithm touched) or as the full
// configured memory (pay for what the machine has — the paper's "memory
// that we are utilizing" assumption, upper-bounded). The gap quantifies
// how much of the energy story depends on that assumption.
#include <iostream>

#include "algs/harness.hpp"
#include "bench_common.hpp"
#include "sim/machine.hpp"
#include "support/table.hpp"

int main() {
  using namespace alge;
  bench::banner("Ablation: memory-energy accounting",
                "2.5D matmul across replication factors; energy with M = "
                "measured high-water vs M = full configured memory.");
  core::MachineParams mp;
  mp.gamma_t = 1.0;
  mp.beta_t = 2.0;
  mp.alpha_t = 10.0;
  mp.gamma_e = 1.0;
  mp.beta_e = 4.0;
  mp.alpha_e = 20.0;
  mp.delta_e = 1e-3;
  mp.eps_e = 0.0;
  mp.max_msg_words = 64;

  Table t({"c", "p", "mem HW/rank", "E (M=high-water)", "E (M=2x HW cap)",
           "memory share HW", "memory share cap"});
  const int n = 48;
  const int q = 4;
  for (int c : {1, 2, 4}) {
    const auto r = algs::harness::run_mm25d(n, q, c, mp);
    const double hw =
        static_cast<double>(r.totals.mem_highwater_total) / r.p;
    // Re-price with a machine that carries twice the needed memory.
    sim::SimEnergy cap_priced = r.energy;
    const double cap = 2.0 * static_cast<double>(r.totals.mem_highwater_max);
    cap_priced.breakdown.memory =
        r.p * mp.delta_e * cap * r.makespan;
    t.row()
        .cell(c)
        .cell(r.p)
        .cell(hw, "%.0f")
        .cell(r.energy.total(), "%.4g")
        .cell(cap_priced.total(), "%.4g")
        .cell(r.energy.breakdown.memory / r.energy.total(), "%.3f")
        .cell(cap_priced.breakdown.memory / cap_priced.total(), "%.3f");
  }
  t.print(std::cout);
  std::cout << "\nThe paper's δe·M·T term assumes you pay only for memory "
               "in use; a machine provisioned with idle memory pays the "
               "cap-priced column — replication then looks even better, "
               "since it puts the idle memory to work.\n";
  return 0;
}
