// Ablation — the message-size cap m (DESIGN.md §5): the models couple
// S = W/m; the simulator splits every send at m words. Sweeping m on a
// fixed 2.5D matmul shows S rising as W/m while W stays put, and the
// latency share of T and E growing accordingly.
#include <iostream>

#include "algs/harness.hpp"
#include "bench_common.hpp"
#include "support/common.hpp"
#include "support/table.hpp"

int main() {
  using namespace alge;
  bench::banner("Ablation: message-size cap m (S = W/m coupling)",
                "2.5D matmul, n=48, q=4, c=2; alpha_t=100 so latency is "
                "visible. Splitting at m words multiplies S without "
                "touching W.");
  Table t({"m (words)", "W/rank", "S/rank", "T (sim)", "E messages",
           "E total"});
  for (double m : {1e18, 256.0, 64.0, 16.0, 4.0}) {
    core::MachineParams mp = core::MachineParams::unit();
    mp.alpha_t = 100.0;
    mp.alpha_e = 100.0;
    mp.max_msg_words = m;
    const auto r = algs::harness::run_mm25d(48, 4, 2, mp);
    t.row()
        .cell(m >= 1e17 ? std::string("unbounded") : strfmt("%.0f", m))
        .cell(r.words_per_proc(), "%.0f")
        .cell(r.msgs_per_proc(), "%.0f")
        .cell(r.makespan, "%.0f")
        .cell(r.energy.breakdown.messages, "%.0f")
        .cell(r.energy.total(), "%.4g");
  }
  t.print(std::cout);
  return 0;
}
