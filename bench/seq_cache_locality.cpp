// Sequential machine (Fig. 1(a), Eqs. 3–4): the paper's theme at cache
// level. An LRU fast memory of M words in front of slow memory; the same
// n³ multiplication traced through it with the naive loop order and with
// the cache-blocked schedule. The blocked variant pins W to the Hong–Kung
// floor Θ(n³/√M); the naive one does not use the memory and its W/bound
// ratio grows with √M.
#include <iostream>

#include "bench_common.hpp"
#include "core/bounds.hpp"
#include "seqsim/cache.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace alge;
  CliArgs cli;
  cli.add_flag("n", "48", "matrix dimension");
  cli.parse(argc, argv);
  if (cli.help_requested()) {
    std::cout << cli.usage("seq_cache_locality");
    return 0;
  }
  const int n = static_cast<int>(cli.get_int("n"));

  bench::banner("Sequential two-level machine (Fig. 1(a), Eq. 3)",
                "Words moved between fast (M words, LRU) and slow memory "
                "for the same n^3 product; bound = max(I+O, n^3/sqrt(M)).");
  std::cout << "n = " << n << " (3n^2 = " << 3 * n * n
            << " words of data)\n\n";

  Table t({"M (words)", "block b", "W naive", "W blocked", "bound",
           "naive/bound", "blocked/bound"});
  for (std::size_t M : {256u, 512u, 1024u, 2048u, 4096u, 8192u}) {
    const int b = seqsim::optimal_block(M);
    const auto naive = seqsim::traced_matmul_naive(n, M);
    const auto blocked = seqsim::traced_matmul_blocked(n, b, M);
    const double bound = core::bounds::sequential_words(
        static_cast<double>(n) * n * n, static_cast<double>(M),
        2.0 * n * n, n * n);
    t.row()
        .cell(M)
        .cell(b)
        .cell(naive.words_moved)
        .cell(blocked.words_moved)
        .cell(bound, "%.0f")
        .cell(naive.words_moved / bound, "%.2f")
        .cell(blocked.words_moved / bound, "%.2f");
  }
  t.print(std::cout);

  std::cout << "\nSame machine, LU factorization (Section III covers LU; "
               "F = n^3/3):\n";
  Table lu({"M (words)", "W naive", "W blocked", "bound", "naive/bound",
            "blocked/bound"});
  for (std::size_t M : {256u, 512u, 1024u, 2048u}) {
    const int b = seqsim::optimal_block(M);
    const auto naive = seqsim::traced_lu_naive(n, M);
    const auto blocked = seqsim::traced_lu_blocked(n, b, M);
    const double bound = core::bounds::sequential_words(
        naive.flops, static_cast<double>(M), static_cast<double>(n) * n,
        static_cast<double>(n) * n);
    lu.row()
        .cell(M)
        .cell(naive.words_moved)
        .cell(blocked.words_moved)
        .cell(bound, "%.0f")
        .cell(naive.words_moved / bound, "%.2f")
        .cell(blocked.words_moved / bound, "%.2f");
  }
  lu.print(std::cout);
  std::cout << "\nBlocked tracks the lower bound at every cache size — the "
               "sequential counterpart of the paper's 'use all available "
               "memory' rule. The naive order is stuck at its full n^3 "
               "re-streaming cost until the cache swallows the whole "
               "problem: having memory is not the same as using it.\n";
  return 0;
}
