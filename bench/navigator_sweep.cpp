// navigator_sweep: track the Pareto navigator's headline metrics across
// machine generations (the Figs. 6/7 energy-parameter halvings applied to
// the Section-VI case-study machine) and, at generation 0, across the
// ghost/folded engine's measured frontier with its chaos re-score.
//
//   navigator_sweep [--generations=0,2,4] [--simulate=true] [--json=PATH]
//
// Every metric except navigate_seconds is deterministic (the navigator has
// no wall clocks or RNG beyond the chaos seed), so BENCH_navigator.json
// diffs flag real frontier shifts: a larger frontier_area means the
// frontier pulled away from the ideal corner, a larger
// fault_energy_inflation means faults cost more energy at the optimum, and
// crossover_generations moving means the 75 GFLOPS/W machine-generation
// crossover (Figs. 6/7) shifted. CI re-runs this and diffs against the
// committed BENCH_navigator.json via obs/bench_metrics' "navigator"
// normalizer.
#include <chrono>
#include <cmath>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/codesign.hpp"
#include "machines/db.hpp"
#include "navigator/navigator.hpp"
#include "support/cli.hpp"
#include "support/common.hpp"
#include "support/json.hpp"
#include "support/table.hpp"

namespace {

using namespace alge;

double elapsed(const std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace alge;
  CliArgs cli;
  cli.add_flag("generations", "0,2,4",
               "energy-parameter halvings of the case-study machine to "
               "sweep (comma list; Figs. 6/7 scaling)");
  cli.add_flag("simulate", "true",
               "add the generation-0 measured-frontier rows (ghost/folded "
               "engine runs + chaos re-score)");
  cli.add_flag("threads", "2", "engine worker threads for the sim rows");
  cli.add_flag("json", "",
               "write the BENCH_navigator.json record to this path (empty "
               "= table only)");
  cli.parse(argc, argv);
  if (cli.help_requested()) {
    std::cout << cli.usage("navigator_sweep");
    return 0;
  }

  bench::banner(
      "Navigator sweep: frontier metrics across machine generations",
      "navigate() on the case-study machine after g halvings of every "
      "energy parameter (Figs. 6/7). frontier_area is the normalized "
      "staircase area between the frontier and its ideal corner; "
      "crossover_gen counts further halvings to 75 GFLOPS/W. The sim rows "
      "re-score the measured frontier under 1% drop/delay/reorder plans.");

  std::vector<int> generations;
  for (const long long g : cli.get_int_list("generations")) {
    generations.push_back(static_cast<int>(g));
  }
  ALGE_REQUIRE(!generations.empty(), "--generations must be non-empty");
  const bool simulate = cli.get_bool("simulate");
  const int threads = static_cast<int>(cli.get_int("threads"));

  const core::MachineParams base = [] {
    core::MachineParams mp = machines::CaseStudyMachine{}.params();
    mp.mem_words = 0.0;  // the optimizer chooses M (sec5 convention)
    return mp;
  }();

  json::Value results = json::Value::array();
  Table t({"model", "gen", "pts", "area", "E_opt (J)", "GF/W", "xover",
           "robust", "inflate", "seconds"});

  struct SweepCase {
    const char* model;
    double n;
    // Sim-stage grid caps (keep the CI run in seconds).
    double sim_p_available;
  };
  const std::vector<SweepCase> cases = {
      {"nbody", 1e7, 256.0},
      {"classical-mm", 1e5, 1024.0},
      {"strassen", 1e5, 512.0},
  };

  for (const SweepCase& sc : cases) {
    for (const int gen : generations) {
      navigator::NavRequest req;
      req.model = sc.model;
      req.n = sc.n;
      req.params = core::scale_energy_params(
          base, core::ParamScaleSpec::all(),
          std::pow(0.5, static_cast<double>(gen)));
      req.p_samples = 24;
      req.m_samples = 12;
      // One machine-size cap for every generation so frontier_area is
      // comparable down a model's column (and the grid stays CI-sized).
      req.limits.p_available = sc.sim_p_available;
      // The sim stage only runs at generation 0: fault robustness is a
      // property of the schedule, not of the energy coefficients, so one
      // measured frontier per model is the tracked signal.
      const bool sim_row = simulate && gen == 0;
      if (sim_row) {
        req.simulate = true;
        req.sim_points = 6;
        req.threads = threads;
      }

      const auto t0 = std::chrono::steady_clock::now();
      const navigator::NavReport rep = navigator::navigate(req);
      const double seconds = elapsed(t0);
      const navigator::ValidationResult vr = navigator::validate(rep, req);
      ALGE_REQUIRE(vr.ok, "navigator validation failed for %s gen %d: %s",
                   sc.model, gen,
                   vr.failures.empty() ? "?" : vr.failures.front().c_str());

      t.row()
          .cell(sc.model)
          .cell(gen)
          .cell(static_cast<int>(rep.model_frontier.size()))
          .cell(rep.frontier_area, "%.4g")
          .cell(rep.min_energy.E, "%.6g")
          .cell(rep.gflops_per_watt_at_opt, "%.3f")
          .cell(rep.crossover_generations)
          .cell(sim_row ? strfmt("%d/%zu", rep.robust_points,
                                 rep.measured_frontier.size())
                        : std::string("--"))
          .cell(sim_row ? strfmt("%.4f", rep.fault_energy_inflation)
                        : std::string("--"))
          .cell(seconds, "%.3f");

      json::Value e = json::Value::object();
      e.set("name", strfmt("%s gen=%d", sc.model, gen));
      e.set("model", std::string(sc.model));
      e.set("generation", gen);
      e.set("frontier_points", static_cast<int>(rep.model_frontier.size()));
      e.set("frontier_area", rep.frontier_area);
      e.set("min_energy_joules", rep.min_energy.E);
      e.set("min_time_seconds", rep.min_time.T);
      e.set("gflops_per_watt_at_opt", rep.gflops_per_watt_at_opt);
      e.set("crossover_generations", rep.crossover_generations);
      if (sim_row) {
        e.set("measured_frontier_points",
              static_cast<int>(rep.measured_frontier.size()));
        e.set("measured_frontier_area", rep.measured_frontier_area);
        e.set("robust_fraction", rep.robust_fraction);
        e.set("fault_energy_inflation", rep.fault_energy_inflation);
        e.set("crossover_generations_faulted",
              rep.crossover_generations_faulted);
        e.set("engine_runs", rep.simulated + rep.rescore_runs);
        e.set("cache_hits", rep.cache_hits);
        e.set("folded_scored", rep.folded_scored);
        e.set("fiber_scored", rep.fiber_scored);
      }
      e.set("navigate_seconds", seconds);
      results.push_back(std::move(e));
    }
  }

  t.print(std::cout);
  std::cout << "\nAll rows passed the navigator's own validation (bounds, "
               "Pareto, bit-exact Section-V endpoints). frontier_area and "
               "the energy columns are deterministic; only the seconds "
               "column is wall-clock. See EXPERIMENTS.md \"Navigator\".\n";

  const std::string json_path = cli.get("json");
  if (!json_path.empty()) {
    json::Value doc = json::Value::object();
    doc.set("bench", "navigator");
    doc.set("results", std::move(results));
    std::ofstream out(json_path);
    ALGE_REQUIRE(out.good(), "cannot write %s", json_path.c_str());
    out << doc.dump() << "\n";
    std::fprintf(stderr, "[navigator] wrote %s\n", json_path.c_str());
  }
  return 0;
}
