// Shared bits for the bench executables: a uniform banner so
// bench_output.txt is self-describing.
#pragma once

#include <cstdio>
#include <string>

namespace alge::bench {

inline void banner(const std::string& experiment_id,
                   const std::string& what) {
  std::printf("\n==== %s ====\n%s\n\n", experiment_id.c_str(), what.c_str());
}

}  // namespace alge::bench
