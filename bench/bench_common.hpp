// Shared bits for the bench executables: a uniform banner so
// bench_output.txt is self-describing, and the observability flags
// (--trace-out) for the engine-driven benches.
#pragma once

#include <cstdio>
#include <string>

#include "engine/runner.hpp"
#include "obs/chrome_trace.hpp"
#include "support/cli.hpp"

namespace alge::bench {

inline void banner(const std::string& experiment_id,
                   const std::string& what) {
  std::printf("\n==== %s ====\n%s\n\n", experiment_id.c_str(), what.c_str());
}

/// Declare the observability flags on a bench binary's CLI. Callers that use
/// maybe_write_trace() must link alge_obs (and alge_engine).
inline void add_trace_flags(CliArgs& cli) {
  cli.add_flag("trace-out", "",
               "write a Chrome trace_event JSON of one representative run "
               "to this path, for chrome://tracing / Perfetto (empty = off)");
}

/// When --trace-out is set, re-execute `spec` with tracing enabled (outside
/// the sweep: the result cache and the printed tables are untouched) and
/// export its timeline as Chrome trace JSON. Notice goes to stderr so
/// stdout stays byte-identical with the flag unset.
inline void maybe_write_trace(const CliArgs& cli,
                              const engine::ExperimentSpec& spec) {
  const std::string path = cli.get("trace-out");
  if (path.empty()) return;
  sim::Trace trace;
  const engine::ExperimentResult r = engine::execute_traced(spec, &trace);
  obs::write_chrome_trace_file(trace, r.p, path);
  std::fprintf(stderr,
               "[trace] wrote %s (p=%d) -- load in chrome://tracing or "
               "https://ui.perfetto.dev\n",
               path.c_str(), r.p);
}

}  // namespace alge::bench
