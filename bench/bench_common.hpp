// Shared bits for the bench executables: a uniform banner so
// bench_output.txt is self-describing, and the observability flags
// (--trace-out) for the engine-driven benches.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "engine/runner.hpp"
#include "obs/chrome_trace.hpp"
#include "support/cli.hpp"
#include "support/common.hpp"

namespace alge::bench {

inline void banner(const std::string& experiment_id,
                   const std::string& what) {
  std::printf("\n==== %s ====\n%s\n\n", experiment_id.c_str(), what.c_str());
}

/// Declare the observability flags on a bench binary's CLI. Callers that use
/// maybe_write_trace() must link alge_obs (and alge_engine).
inline void add_trace_flags(CliArgs& cli) {
  cli.add_flag("trace-out", "",
               "write a Chrome trace_event JSON of one representative run "
               "to this path, for chrome://tracing / Perfetto (empty = off)");
}

/// Declare the chaos axes (src/chaos) on a bench binary's CLI. Both are
/// inert by default; see EXPERIMENTS.md "Chaos flags".
inline void add_chaos_flags(CliArgs& cli) {
  cli.add_flag("chaos-seed", "0",
               "nonzero: permute the simulator's fiber wake order with this "
               "seed (results must be bit-identical; a difference is a "
               "determinism bug)");
  cli.add_flag("fault-plan", "",
               "run every spec under this bundled fault plan "
               "(delay|drop|duplicate|reorder|pause|mixed; empty = "
               "fault-free)");
}

/// Stamp the --chaos-seed / --fault-plan values onto every spec. With both
/// flags at their defaults the specs are untouched, so cache keys and
/// printed tables stay byte-identical with pre-chaos runs.
inline void apply_chaos_flags(const CliArgs& cli,
                              std::vector<engine::ExperimentSpec>& specs) {
  const std::uint64_t seed =
      static_cast<std::uint64_t>(cli.get_int("chaos-seed"));
  const std::string plan = cli.get("fault-plan");
  if (seed == 0 && plan.empty()) return;
  for (engine::ExperimentSpec& spec : specs) {
    spec.chaos_seed = seed;
    spec.fault_plan = plan;
  }
  std::fprintf(stderr, "[chaos] chaos-seed=%llu fault-plan=%s\n",
               static_cast<unsigned long long>(seed),
               plan.empty() ? "(none)" : plan.c_str());
}

/// Declare the --data-mode flag (sim/payload.hpp DataMode). Inert by
/// default; see EXPERIMENTS.md "Data modes".
inline void add_data_mode_flag(CliArgs& cli) {
  cli.add_flag("data-mode", "",
               "ghost: run payloads as storage-free size-only views -- "
               "identical F/W/S, clocks and energy, no data movement or "
               "local kernels (disables verification; empty = full data)");
}

/// Stamp --data-mode=ghost onto every spec. With the flag unset the specs
/// are untouched, so cache keys and printed tables stay byte-identical
/// with pre-ghost runs.
inline void apply_data_mode_flag(const CliArgs& cli,
                                 std::vector<engine::ExperimentSpec>& specs) {
  const std::string mode = cli.get("data-mode");
  if (mode.empty() || mode == "full") return;
  ALGE_REQUIRE(mode == "ghost", "--data-mode must be ghost or full (got %s)",
               mode.c_str());
  bool verify_dropped = false;
  for (engine::ExperimentSpec& spec : specs) {
    spec.data_mode = sim::DataMode::kGhost;
    if (spec.verify) {
      spec.verify = false;
      verify_dropped = true;
    }
  }
  std::fprintf(stderr, "[ghost] data-mode=ghost%s\n",
               verify_dropped
                   ? " (verification disabled: ghost runs have no output)"
                   : "");
}

/// Declare the --exec-mode flag (sim/fold.hpp ExecMode). Inert by
/// default; see EXPERIMENTS.md "Folded execution".
inline void add_exec_mode_flag(CliArgs& cli) {
  cli.add_flag("exec-mode", "",
               "folded: collapse fold-congruent ranks onto class "
               "representatives and replay per-class cost deltas -- "
               "bit-identical makespan/energy/counters, one fiber per "
               "class (requires --data-mode=ghost; empty = fibers)");
}

/// Stamp --exec-mode=folded onto every spec. With the flag unset the
/// specs are untouched, so cache keys and printed tables stay
/// byte-identical with pre-fold runs. Folding requires ghost payloads
/// (class replay moves costs, not data), which the engine enforces.
inline void apply_exec_mode_flag(const CliArgs& cli,
                                 std::vector<engine::ExperimentSpec>& specs) {
  const std::string mode = cli.get("exec-mode");
  if (mode.empty() || mode == "fibers") return;
  ALGE_REQUIRE(mode == "folded",
               "--exec-mode must be folded or fibers (got %s)", mode.c_str());
  for (engine::ExperimentSpec& spec : specs) {
    spec.exec_mode = sim::ExecMode::kFolded;
  }
  std::fprintf(stderr, "[fold] exec-mode=folded\n");
}

/// When --trace-out is set, re-execute `spec` with tracing enabled (outside
/// the sweep: the result cache and the printed tables are untouched) and
/// export its timeline as Chrome trace JSON. Notice goes to stderr so
/// stdout stays byte-identical with the flag unset.
inline void maybe_write_trace(const CliArgs& cli,
                              const engine::ExperimentSpec& spec) {
  const std::string path = cli.get("trace-out");
  if (path.empty()) return;
  sim::Trace trace;
  const engine::ExperimentResult r = engine::execute_traced(spec, &trace);
  obs::write_chrome_trace_file(trace, r.p, path);
  std::fprintf(stderr,
               "[trace] wrote %s (p=%d) -- load in chrome://tracing or "
               "https://ui.perfetto.dev\n",
               path.c_str(), r.p);
}

}  // namespace alge::bench
