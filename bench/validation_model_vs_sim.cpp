// Validation — the glue between theory and execution: for every algorithm
// family, compare the analytic per-processor cost formulas of Section IV
// against the counts the simulator measures on the real implementation.
// Ratios near 1 mean the asymptotic formulas hold with small constants;
// the table records them per configuration.
//
// Runs its configuration grid through the experiment engine: --threads N
// executes the independent simulations concurrently and --cache-dir PATH
// persists results so a re-run only computes changed points. Output is
// identical regardless of thread count or cache state.
#include <cmath>
#include <functional>
#include <iostream>
#include <vector>

#include "algs/nbody/nbody.hpp"
#include "bench_common.hpp"
#include "core/algmodel.hpp"
#include "engine/runner.hpp"
#include "support/cli.hpp"
#include "support/common.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace alge;
  CliArgs cli;
  engine::add_engine_flags(cli);
  bench::add_trace_flags(cli);
  bench::add_chaos_flags(cli);
  bench::add_data_mode_flag(cli);
  bench::add_exec_mode_flag(cli);
  cli.parse(argc, argv);
  if (cli.help_requested()) {
    std::cout << cli.usage("validation_model_vs_sim");
    return 0;
  }

  bench::banner("Validation: measured counts vs Section-IV formulas",
                "measured / model per-processor ratios (F exact by "
                "construction; W carries the algorithm's constant).");
  core::MachineParams mp = core::MachineParams::unit();
  Table t({"experiment", "p", "model F", "meas F", "F ratio", "model W",
           "meas W/rank", "W ratio"});

  std::vector<engine::ExperimentSpec> specs;
  // One row-formatter per spec, applied in order once results are in.
  std::vector<std::function<void(const engine::ExperimentResult&)>> rows;

  auto add = [&](const std::string& name, const core::AlgModel& model,
                 double n, double M, engine::ExperimentSpec spec) {
    spec.params = mp;
    specs.push_back(std::move(spec));
    rows.push_back([&t, &model, &mp, name, n,
                    M](const engine::ExperimentResult& r) {
      const auto costs = model.costs(n, r.p, M, mp.max_msg_words);
      t.row()
          .cell(name)
          .cell(r.p)
          .cell(costs.F, "%.3g")
          .cell(r.totals.flops_total / r.p, "%.3g")
          .cell(r.totals.flops_total / r.p / costs.F, "%.2f")
          .cell(costs.W, "%.3g")
          .cell(r.words_per_proc(), "%.3g")
          .cell(r.words_per_proc() / costs.W, "%.2f");
    });
  };

  // Classical matmul: F model = n³/p (we count 2 flops per multiply-add:
  // expect F ratio ≈ 2); W model = n²·c... = n³/(p·sqrt(M)).
  core::ClassicalMatmulModel mm;
  for (auto [q, c] : {std::pair{4, 1}, {4, 2}, {4, 4}, {8, 2}}) {
    const int n = 48;
    const double p = static_cast<double>(q) * q * c;
    const double M = static_cast<double>(n) * n * c / p;
    engine::ExperimentSpec s;
    s.alg = engine::Alg::kMm25d;
    s.n = n;
    s.q = q;
    s.c = c;
    add(strfmt("mm 2.5D q=%d c=%d", q, c), mm, n, M, s);
  }

  // Strassen CAPS: F model = n^w0/p; the implementation runs k levels of
  // distributed Strassen + local Strassen with a cutoff, so the ratio
  // drifts with the cutoff but stays O(1).
  core::StrassenModel st;
  for (int k : {1, 2}) {
    const int n = 28;
    const double p = std::pow(7.0, k);
    const double M = 3.0 * n * n / p;  // roughly what CAPS BFS holds
    engine::ExperimentSpec s;
    s.alg = engine::Alg::kCaps;
    s.n = n;
    s.k = k;
    s.caps_cutoff = 4;
    add(strfmt("caps k=%d", k), st, n, std::min(M, st.max_useful_memory(n, p)),
        s);
  }

  // n-body: F model = f n²/p with f = 20; W = n²/(p·M) with M = particle
  // words per rank (4 words each).
  core::NBodyModel nb(algs::kInteractionFlops);
  for (auto [p, c] : {std::pair{8, 1}, {8, 2}, {16, 4}}) {
    const int n = 128;
    const double M = static_cast<double>(n) * c / p;  // particles per rank
    engine::ExperimentSpec s;
    s.alg = engine::Alg::kNBody;
    s.n = n;
    s.p = p;
    s.c = c;
    add(strfmt("nbody p=%d c=%d", p, c), nb, n, M, s);
  }

  // LU: F = n³/p; W = n³/(p·sqrt(M)).
  core::LuModel lu;
  for (auto [q, c] : {std::pair{2, 1}, {2, 2}, {4, 1}}) {
    const int n = 32;
    const double p = static_cast<double>(q) * q * c;
    const double M = static_cast<double>(n) * n * c / p;
    engine::ExperimentSpec s;
    s.alg = engine::Alg::kLu;
    s.n = n;
    s.nb = 4;
    s.q = q;
    s.c = c;
    add(strfmt("lu q=%d c=%d", q, c), lu, n, M, s);
  }

  // FFT: F = n log2 n per the model; the kernel charges 5 n log2 n (the
  // classic operation count), so expect F ratio ≈ 5; words are complex
  // (2 doubles), expect W ratio ≈ 2.
  core::FftModel fft_naive(core::FftModel::AllToAll::kNaive);
  core::FftModel fft_tree(core::FftModel::AllToAll::kTree);
  for (int p : {8, 16}) {
    const int n = 1024;
    engine::ExperimentSpec direct;
    direct.alg = engine::Alg::kFft;
    direct.r_dim = 32;
    direct.c_dim = 32;
    direct.p = p;
    add(strfmt("fft naive p=%d", p), fft_naive, n, 2.0 * n / p, direct);
    engine::ExperimentSpec bruck = direct;
    bruck.fft_bruck = true;
    add(strfmt("fft bruck p=%d", p), fft_tree, n, 2.0 * n / p, bruck);
  }

  bench::apply_chaos_flags(cli, specs);
  bench::apply_data_mode_flag(cli, specs);
  bench::apply_exec_mode_flag(cli, specs);
  engine::SweepRunner runner(engine::sweep_options_from_cli(cli));
  const auto results = runner.run(specs);
  for (std::size_t i = 0; i < results.size(); ++i) rows[i](results[i]);

  t.print(std::cout);
  std::cout << "\nReading the ratios: F ≈ 2 (multiply-add counted as 2 "
               "flops) except FFT ≈ 5 (butterfly count) and CAPS < 2 "
               "(Strassen saves flops). W ratios are the algorithms' "
               "leading constants (Cannon ≈ 2, replication/collective "
               "overheads on top); they stay O(1) across p, which is the "
               "content of the communication-optimality claims. The n-body W "
               "ratios carry the 4-words-per-particle packing and, at "
               "c > 1, the team broadcast/reduce floor that dominates at "
               "these tiny scales.\n";
  engine::append_bench_record("validation_model_vs_sim", runner,
                              cli.get("bench-json"));
  // --trace-out: export the first configuration's timeline (2.5D matmul).
  bench::maybe_write_trace(cli, specs.front());
  return 0;
}
