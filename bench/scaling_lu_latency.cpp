// Section IV, LU: replication reduces 2.5D LU's bandwidth like matmul's,
// but the per-panel critical path keeps the message count from scaling —
// S_LU = Ω((cp)^1/2) against matmul's S = O((p/c^3)^1/2). Measured side by
// side on the simulator.
#include <iostream>

#include "algs/harness.hpp"
#include "bench_common.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace alge;
  CliArgs cli;
  cli.add_flag("n", "32", "matrix dimension");
  cli.add_flag("nb", "4", "LU block size");
  cli.add_flag("q", "2", "grid edge");
  cli.add_flag("verify", "true", "check LU against the serial factorization");
  cli.parse(argc, argv);
  if (cli.help_requested()) {
    std::cout << cli.usage("scaling_lu_latency");
    return 0;
  }
  const int n = static_cast<int>(cli.get_int("n"));
  const int nb = static_cast<int>(cli.get_int("nb"));
  const int q = static_cast<int>(cli.get_int("q"));
  const bool verify = cli.get_bool("verify");

  bench::banner("2.5D LU vs 2.5D matmul: latency does not strong-scale",
                "Same grid growth by replication factor c; matmul's "
                "messages per rank fall with c, LU's do not (critical "
                "path).");

  core::MachineParams mp = core::MachineParams::unit();

  Table t({"c", "p", "LU S/rank", "LU W/rank", "LU max|err|", "MM S/rank",
           "MM W/rank"});
  for (int c = 1; c <= q * 2; c *= 2) {
    const auto lu = algs::harness::run_lu(n, nb, q, c, mp, verify);
    // Matmul on the same q x q x c machine (q must be divisible by c for
    // the step partition; skip otherwise).
    double mm_s = -1.0;
    double mm_w = -1.0;
    if (c <= q && q % c == 0) {
      const auto mm = algs::harness::run_mm25d(n, q, c, mp);
      mm_s = mm.msgs_per_proc();
      mm_w = mm.words_per_proc();
    }
    auto& row = t.row()
                    .cell(c)
                    .cell(lu.p)
                    .cell(lu.msgs_per_proc(), "%.0f")
                    .cell(lu.words_per_proc(), "%.0f")
                    .cell(lu.max_abs_error, "%.2g");
    if (mm_s >= 0.0) {
      row.cell(mm_s, "%.0f").cell(mm_w, "%.0f");
    } else {
      row.cell("-").cell("-");
    }
  }
  t.print(std::cout);

  std::cout << "\nPanel-count effect (2D LU, finer blocks = more panels = "
               "more messages; S ~ nt = n/nb):\n";
  Table s({"nb", "panels nt", "S/rank", "W/rank"});
  for (int b : {2, 4, 8}) {
    if (n % (b * q) != 0) continue;
    const auto lu = algs::harness::run_lu(n, b, q, 1, mp);
    s.row().cell(b).cell(n / b).cell(lu.msgs_per_proc(), "%.0f").cell(
        lu.words_per_proc(), "%.0f");
  }
  s.print(std::cout);
  return 0;
}
