// Section V — the optimization questions answered on the case-study
// machine for the direct n-body problem (closed forms vs the generic
// numeric optimizer) and, numerically only, for classical and Strassen
// matmul (the paper notes the analytic solutions are "harder to obtain").
#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "core/algmodel.hpp"
#include "core/nbody_opt.hpp"
#include "core/opt.hpp"
#include "machines/db.hpp"
#include "support/cli.hpp"
#include "support/common.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace alge;
  CliArgs cli;
  cli.add_flag("n", "1e7", "particles / matrix dimension context");
  cli.add_flag("f", "20", "flops per n-body interaction");
  cli.parse(argc, argv);
  if (cli.help_requested()) {
    std::cout << cli.usage("sec5_optimizer");
    return 0;
  }
  const double n = cli.get_double("n");
  const double f = cli.get_double("f");

  core::MachineParams mp = machines::CaseStudyMachine{}.params();
  mp.mem_words = 0.0;  // the optimizer chooses M
  core::NBodyModel model(f);
  core::NBodyOptimum opt(f, mp);
  core::Optimizer solver(model, n, mp);

  bench::banner("Section V",
                "Optimization questions for the data-replicating n-body "
                "problem on the case-study machine: closed forms vs the "
                "generic numeric optimizer.");
  std::cout << "n = " << n << ", f = " << f << "\n\n";

  Table t({"question", "closed form", "numeric optimizer", "rel.diff"});
  auto row = [&](const std::string& what, double closed, double numeric) {
    t.row()
        .cell(what)
        .cell(closed, "%.6g")
        .cell(numeric, "%.6g")
        .cell(rel_diff(closed, numeric), "%.1e");
  };

  // V-A: minimum energy and the memory that attains it.
  const auto best_e = solver.minimize_energy();
  row("V-A min energy E* (J)", opt.min_energy(n), best_e.E);
  row("V-A optimal memory M0 (words)", opt.M0(), best_e.M);

  // V-A: minimum time on a bounded machine.
  const double p_avail = 1e6;
  core::OptLimits lim;
  lim.p_available = p_avail;
  const auto best_t = solver.minimize_time(lim);
  row(strfmt("V-A min time, p<=%g (s)", p_avail), opt.min_time(n, p_avail),
      best_t.T);

  // V-B: min energy under a deadline below the threshold.
  const double tmax = opt.time_threshold_for_optimum() / 10.0;
  core::OptLimits blim;
  blim.p_available = opt.p_min_for_time(n, tmax) * 16.0;
  const auto bounded = solver.min_energy_given_time(tmax, blim);
  row(strfmt("V-B min E s.t. T<=%.3g (J)", tmax),
      opt.min_energy_given_time(n, tmax), bounded.E);
  row("V-B processors needed", opt.p_min_for_time(n, tmax), bounded.p);

  // V-C: min time under an energy budget.
  const double emax = opt.min_energy(n) * 1.3;
  core::OptLimits clim;
  clim.p_available = opt.max_p_given_energy(n, emax) * 16.0;
  const auto fast = solver.min_time_given_energy(emax, clim);
  row(strfmt("V-C min T s.t. E<=%.3g (s)", emax),
      opt.min_time_given_energy(n, emax), fast.T);

  // V-D: total power cap.
  const double ptot = opt.proc_power(opt.M0()) * opt.min_energy_p_lo(n) * 2.0;
  row(strfmt("V-D max p s.t. power<=%.3g W (at M0)", ptot),
      opt.max_p_given_total_power(ptot, opt.M0()),
      opt.max_p_given_total_power(ptot, opt.M0()));  // Eq. 19 is exact

  // V-E: per-processor power cap.
  const double pproc = opt.proc_power(opt.M0()) * 1.5;
  row(strfmt("V-E max M s.t. proc power<=%.3g W", pproc),
      opt.max_M_given_proc_power(pproc), opt.max_M_given_proc_power(pproc));

  // V-F: machine-level efficiency at the optimum (scale-free).
  row("V-F GFLOPS/W at optimum", opt.flops_per_joule_at_optimum() / 1e9,
      f * n * n / best_e.E / 1e9);
  t.print(std::cout);

  // Matmul and Strassen: numeric only.
  std::cout << "\nMatmul / Strassen (numeric optimizer; no closed forms in "
               "the paper):\n";
  Table t2({"model", "min-E memory M*", "min E (J)", "E 2D at same p",
            "replication saving"});
  const double nm = 35000.0;
  core::ClassicalMatmulModel classical;
  core::StrassenModel strassen;
  for (const core::AlgModel* am :
       {static_cast<const core::AlgModel*>(&classical),
        static_cast<const core::AlgModel*>(&strassen)}) {
    core::Optimizer s2(*am, nm, mp);
    const auto best = s2.minimize_energy();
    // Contrast: a machine with p = 4·p_min(M*) processors can either run
    // 2D with one data copy (M = n²/p) or replicate 4x up to M*.
    const double p4 = 4.0 * am->p_min(nm, best.M);
    const double e2d = am->energy(nm, p4, am->min_memory(nm, p4), mp);
    const double e25d = am->energy(nm, p4, best.M, mp);
    t2.row()
        .cell(am->name())
        .cell(best.M, "%.4g")
        .cell(e25d, "%.5g")
        .cell(e2d, "%.5g")
        .cell(strfmt("%.2f%%", 100.0 * (1.0 - e25d / e2d)));
  }
  t2.print(std::cout);
  return 0;
}
