// Topology ablation — "our prior work shows that a 3D torus network is a
// perfect match to this algorithm [14]" (Section IV): measure 2.5D matmul's
// hop-weighted traffic (the real link-energy cost) on a matched 3D torus,
// a mismatched ring, and the flat fully connected model. Contrast with the
// FFT's all-to-all, which is hostile to any low-degree topology.
#include <iostream>
#include <memory>

#include "algs/harness.hpp"
#include "algs/matmul/distributed.hpp"
#include "algs/matmul/local.hpp"
#include "bench_common.hpp"
#include "sim/network.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"
#include "topo/grid.hpp"

namespace {
using namespace alge;

sim::SimTotals run_mm(int n, int q, int c,
                      std::shared_ptr<const sim::NetworkModel> net) {
  topo::Grid3D grid(q, c);
  sim::MachineConfig cfg;
  cfg.p = grid.p();
  cfg.params = core::MachineParams::unit();
  cfg.network = std::move(net);
  sim::Machine m(cfg);
  m.run([&](sim::Comm& comm) {
    if (grid.layer_of(comm.rank()) == 0) {
      std::vector<double> a(static_cast<std::size_t>(n / q) * (n / q), 1.0);
      std::vector<double> cb(a.size(), 0.0);
      algs::mm_25d(comm, grid, n, a, a, cb);
    } else {
      algs::mm_25d(comm, grid, n, {}, {}, {});
    }
  });
  return m.totals();
}

sim::SimTotals run_fft(int p, std::shared_ptr<const sim::NetworkModel> net) {
  sim::MachineConfig cfg;
  cfg.p = p;
  cfg.params = core::MachineParams::unit();
  cfg.network = std::move(net);
  sim::Machine m(cfg);
  const int r_dim = 32;
  const int c_dim = 32;
  m.run([&](sim::Comm& comm) {
    Rng rng(static_cast<std::uint64_t>(comm.rank()) + 1);
    std::vector<double> cols(2 * static_cast<std::size_t>(r_dim) *
                             (c_dim / p));
    rng.fill_uniform(cols, -1.0, 1.0);
    std::vector<double> out(2 * static_cast<std::size_t>(c_dim) *
                            (r_dim / p));
    algs::fft_parallel(comm, r_dim * c_dim, r_dim, c_dim, cols, out);
  });
  return m.totals();
}
}  // namespace

int main() {
  bench::banner("Topology ablation: 3D torus vs ring vs crossbar",
                "Hop-weighted words = words x links traversed (the "
                "physical link energy). avg hops/word = 1 means the flat "
                "model of Eq. 2 is exact.");

  std::cout << "2.5D matmul (n=32, q=4, c=2, p=32): nearest-neighbour "
               "traffic\n";
  Table t({"network", "words", "hop-weighted words", "avg hops/word"});
  const int q = 4;
  const int c = 2;
  struct Net {
    const char* label;
    std::shared_ptr<const sim::NetworkModel> model;
  };
  const Net nets[] = {
      {"fully connected", nullptr},
      {"3D torus 4x4x2 (matched)",
       std::make_shared<sim::Torus3DNetwork>(q, q, c)},
      {"1D ring (mismatched)", std::make_shared<sim::RingNetwork>()},
  };
  for (const auto& net : nets) {
    const auto tot = run_mm(32, q, c, net.model);
    t.row()
        .cell(net.label)
        .cell(tot.words_total, "%.0f")
        .cell(tot.words_hops_total, "%.0f")
        .cell(tot.words_hops_total / tot.words_total, "%.2f");
  }
  t.print(std::cout);

  std::cout << "\nFFT all-to-all (n=1024, p=16): global traffic\n";
  Table f({"network", "words", "hop-weighted words", "avg hops/word"});
  const Net fnets[] = {
      {"fully connected", nullptr},
      {"2D torus 4x4", sim::make_torus_2d(4, 4)},
      {"1D ring", std::make_shared<sim::RingNetwork>()},
  };
  for (const auto& net : fnets) {
    const auto tot = run_fft(16, net.model);
    f.row()
        .cell(net.label)
        .cell(tot.words_total, "%.0f")
        .cell(tot.words_hops_total, "%.0f")
        .cell(tot.words_hops_total / tot.words_total, "%.2f");
  }
  f.print(std::cout);
  std::cout << "\nThe 2.5D algorithm keeps its average hop count near 1 on "
               "the matched torus — the paper's justification for holding "
               "beta/alpha constant as p grows. The FFT cannot: its "
               "all-to-all pays the bisection of any low-degree network.\n";
  return 0;
}
