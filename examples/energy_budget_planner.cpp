// Scenario: planning a production n-body simulation under constraints —
// the workload the paper's Section V walks through. Given a particle
// count, a deadline, an energy budget, and power caps, report the
// configurations (p, M) that satisfy each, using the closed forms of
// Sections V-A..V-E.
//
//   ./build/examples/energy_budget_planner --n=1e8 --deadline=100
#include <cmath>
#include <iostream>

#include "core/nbody_opt.hpp"
#include "core/closed_forms.hpp"
#include "machines/db.hpp"
#include "support/cli.hpp"

int main(int argc, char** argv) {
  using namespace alge;
  CliArgs cli;
  cli.add_flag("n", "1e8", "particles");
  cli.add_flag("f", "20", "flops per pairwise interaction");
  cli.add_flag("deadline", "0", "max runtime in seconds (0 = none)");
  cli.add_flag("energy_budget", "0", "max energy in joules (0 = none)");
  cli.add_flag("proc_power", "0", "max watts per processor (0 = none)");
  cli.parse(argc, argv);
  if (cli.help_requested()) {
    std::cout << cli.usage("energy_budget_planner");
    return 0;
  }
  const double n = cli.get_double("n");
  const double f = cli.get_double("f");
  const double deadline = cli.get_double("deadline");
  const double budget = cli.get_double("energy_budget");
  const double pcap = cli.get_double("proc_power");

  core::MachineParams mp = machines::CaseStudyMachine{}.params();
  core::NBodyOptimum opt(f, mp);

  std::cout << "Direct n-body, n = " << n << " particles, f = " << f
            << " flops/interaction, case-study machine parameters.\n\n";

  const double M0 = opt.M0();
  std::cout << "Energy-optimal plan (Section V-A):\n";
  std::cout << "  M0 = " << M0 << " words/processor, E* = "
            << opt.min_energy(n) << " J\n";
  std::cout << "  any p in [" << opt.min_energy_p_lo(n) << ", "
            << opt.min_energy_p_hi(n)
            << "] attains E*; more processors = same energy, less time\n";
  std::cout << "  fastest minimum-energy run: p = " << opt.min_energy_p_hi(n)
            << ", T = "
            << core::closed::nbody_time(n, opt.min_energy_p_hi(n), M0, f, mp)
            << " s\n\n";

  if (deadline > 0.0) {
    std::cout << "Deadline T <= " << deadline << " s (Section V-B):\n";
    if (deadline >= opt.time_threshold_for_optimum()) {
      std::cout << "  loose deadline: the global optimum E* fits; use M0 and "
                   "p >= "
                << opt.p_min_for_time(n, deadline) << "\n\n";
    } else {
      const double p = opt.p_min_for_time(n, deadline);
      std::cout << "  tight deadline: needs p >= " << p
                << " processors at the 2D limit M = " << n / std::sqrt(p)
                << "\n  energy cost rises to "
                << opt.min_energy_given_time(n, deadline) << " J ("
                << opt.min_energy_given_time(n, deadline) /
                       opt.min_energy(n)
                << "x the optimum) — 'race to halt' is not free\n\n";
    }
  }

  if (budget > 0.0) {
    std::cout << "Energy budget E <= " << budget << " J (Section V-C):\n";
    if (budget < opt.min_energy(n)) {
      std::cout << "  infeasible: below the attainable minimum "
                << opt.min_energy(n) << " J\n\n";
    } else {
      const double p = opt.max_p_given_energy(n, budget);
      std::cout << "  fastest run within budget: p = " << p
                << ", M = " << n / std::sqrt(p)
                << " words, T = " << opt.min_time_given_energy(n, budget)
                << " s\n\n";
    }
  }

  if (pcap > 0.0) {
    std::cout << "Per-processor power cap " << pcap << " W (Section V-E):\n";
    const double mcap = opt.max_M_given_proc_power(pcap);
    if (mcap <= 0.0) {
      std::cout << "  infeasible: even tiny memories exceed the cap\n";
    } else if (mcap >= M0) {
      std::cout << "  cap admits M0 (" << M0
                << " words): the global optimum is attainable\n";
    } else {
      std::cout << "  memory limited to " << mcap
                << " words/processor; energy rises to "
                << core::closed::nbody_energy(n, mcap, f, mp) << " J\n";
    }
  }
  return 0;
}
