// Quickstart: the three things this library does, in ~60 lines.
//
//  1. Model a machine with the paper's eight parameters (Eq. 1 / Eq. 2).
//  2. Ask analytic questions: time, energy, the perfect-strong-scaling
//     range, the energy-optimal memory.
//  3. Check the model against an actual (simulated) run of the 2.5D
//     algorithm, with real data and verified results.
//
// Build and run:  ./build/examples/quickstart
#include <iostream>

#include "algs/harness.hpp"
#include "core/algmodel.hpp"
#include "core/opt.hpp"
#include "machines/db.hpp"

int main() {
  using namespace alge;

  // 1. A machine: the paper's dual-socket Sandy Bridge case study.
  const core::MachineParams mp = machines::CaseStudyMachine{}.params();
  std::cout << "Machine: " << mp.to_string() << "\n\n";

  // 2. Analytic questions about classical matmul, n = 35000.
  core::ClassicalMatmulModel mm;
  const double n = 35000;
  const double M = mp.mem_words;  // one socket's memory, in words
  std::cout << "Classical matmul, n = " << n << ", M = " << M << ":\n";
  // With a memory of M0 = n²/64 words per processor, the strong-scaling
  // region spans [64, 512]. (The paper's own 2-socket case study sits
  // outside any such region — its M is far beyond the 3D limit — but T
  // still falls with p while E stays flat, as the rows below show.)
  const double M0 = n * n / 64.0;
  std::cout << "  with M = n^2/64, perfect strong scaling holds for p in ["
            << mm.p_min(n, M0) << ", " << mm.p_max(n, M0) << "]\n";
  for (double p : {2.0, 4.0, 8.0}) {
    std::cout << "  p = " << p << ": T = " << mm.time(n, p, M, mp)
              << " s, E = " << mm.energy(n, p, M, mp)
              << " J  (T halves, E stays)\n";
  }

  // The energy-optimal configuration, numerically (Section V questions).
  core::Optimizer solver(mm, n, mp);
  const auto best = solver.minimize_energy();
  std::cout << "  minimum energy: " << best.E << " J at M = " << best.M
            << " words, from p = " << best.p << " processors up\n\n";

  // 3. Execute the actual 2.5D algorithm on the simulator (small instance,
  // unit costs) and verify the product.
  std::cout << "Simulated 2.5D matmul (n=32, q=4, c=2 -> p=32):\n";
  const auto run = algs::harness::run_mm25d(32, 4, 2,
                                            core::MachineParams::unit(),
                                            /*verify=*/true);
  std::cout << "  simulated time " << run.makespan << " s, energy "
            << run.energy.total() << " J\n";
  std::cout << "  per-rank words " << run.words_per_proc() << ", messages "
            << run.msgs_per_proc() << "\n";
  std::cout << "  max |C - A*B| = " << run.max_abs_error
            << " (verified against a serial product)\n";
  return 0;
}
