// Scenario: a cost dashboard for a simulated cluster — run all five of the
// paper's algorithm families on the same abstract machine and compare
// measured per-rank communication, simulated time, and Eq. (2) energy.
// Every run moves real data and is verified against a sequential
// reference.
//
//   ./build/examples/simulate_cluster
#include <iostream>

#include "algs/harness.hpp"
#include "support/table.hpp"

int main() {
  using namespace alge;
  using algs::harness::RunResult;

  core::MachineParams mp;
  mp.gamma_t = 1.0;
  mp.beta_t = 2.0;
  mp.alpha_t = 10.0;
  mp.gamma_e = 1.0;
  mp.beta_e = 4.0;
  mp.alpha_e = 20.0;
  mp.delta_e = 1e-4;
  mp.eps_e = 1e-2;
  mp.max_msg_words = 64;

  std::cout << "Simulated cluster dashboard — " << mp.to_string() << "\n\n";

  Table t({"experiment", "p", "T (sim)", "E (sim)", "avg power", "W/rank",
           "S/rank", "verified max |err|"});
  auto add = [&](const std::string& name, const RunResult& r) {
    t.row()
        .cell(name)
        .cell(r.p)
        .cell(r.makespan, "%.0f")
        .cell(r.energy.total(), "%.4g")
        .cell(r.energy.power(), "%.2f")
        .cell(r.words_per_proc(), "%.0f")
        .cell(r.msgs_per_proc(), "%.0f")
        .cell(r.max_abs_error, "%.2g");
  };

  add("matmul 2D (Cannon, q=4)",
      algs::harness::run_mm25d(32, 4, 1, mp, true));
  add("matmul 2.5D (q=4, c=2)", algs::harness::run_mm25d(32, 4, 2, mp, true));
  add("matmul 3D (q=c=4)", algs::harness::run_mm25d(32, 4, 4, mp, true));
  add("matmul SUMMA (q=4)", algs::harness::run_summa(32, 4, mp, true));
  add("Strassen CAPS (k=1, p=7)",
      algs::harness::run_caps(28, 1, mp, {}, true));
  add("Strassen CAPS (k=2, p=49)",
      algs::harness::run_caps(28, 2, mp, {}, true));
  add("n-body ring (c=1)", algs::harness::run_nbody(128, 8, 1, mp, true));
  add("n-body replicated (c=2)",
      algs::harness::run_nbody(128, 16, 2, mp, true));
  add("LU 2D (q=2)", algs::harness::run_lu(32, 4, 2, 1, mp, true));
  add("LU 2.5D (q=2, c=2)", algs::harness::run_lu(32, 4, 2, 2, mp, true));
  add("FFT naive a2a (p=8)",
      algs::harness::run_fft(32, 32, 8, algs::AllToAllKind::kDirect, mp,
                             true));
  add("FFT Bruck a2a (p=8)",
      algs::harness::run_fft(32, 32, 8, algs::AllToAllKind::kBruck, mp,
                             true));
  t.print(std::cout);

  std::cout << "\nReading the table: replication (2.5D/3D, CAPS levels, "
               "n-body c>1) cuts W/rank; LU's S does not fall with "
               "replication; the FFT variants trade W for S.\n";
  return 0;
}
