// Scenario: hardware/software co-design (question 5 of the introduction
// and Section VI): given a target GFLOPS/W for a kernel, which machine
// parameters must improve, by how much, and where does single-parameter
// scaling saturate?
//
//   ./build/examples/codesign_explorer --target=75 --kernel=mm
#include <iostream>

#include "core/algmodel.hpp"
#include "core/codesign.hpp"
#include "core/nbody_opt.hpp"
#include "machines/db.hpp"
#include "support/cli.hpp"
#include "support/common.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace alge;
  CliArgs cli;
  cli.add_flag("target", "75", "target GFLOPS/W");
  cli.add_flag("kernel", "mm", "mm | strassen | nbody");
  cli.add_flag("n", "35000", "problem size");
  cli.add_flag("max_generations", "20", "how far to scale");
  cli.parse(argc, argv);
  if (cli.help_requested()) {
    std::cout << cli.usage("codesign_explorer");
    return 0;
  }
  const double target = cli.get_double("target");
  const std::string kernel = cli.get("kernel");
  const double n = cli.get_double("n");
  const int max_gen = static_cast<int>(cli.get_int("max_generations"));

  const core::MachineParams mp = machines::CaseStudyMachine{}.params();
  core::ClassicalMatmulModel mm;
  core::StrassenModel strassen;
  core::NBodyModel nbody(20.0);
  const core::AlgModel* model = nullptr;
  if (kernel == "mm") {
    model = &mm;
  } else if (kernel == "strassen") {
    model = &strassen;
  } else if (kernel == "nbody") {
    model = &nbody;
  } else {
    std::cerr << "unknown kernel '" << kernel << "'\n";
    return 1;
  }
  const double p = 2.0;
  const double M = mp.mem_words;

  std::cout << "Kernel: " << model->name() << ", n = " << n
            << ", case-study machine.\n";
  std::cout << "Today: " << core::gflops_per_watt(*model, n, p, M, mp)
            << " GFLOPS/W; target: " << target << " GFLOPS/W.\n\n";

  Table t({"improve (halving/gen)", "generations to target",
           "GFLOPS/W after 10 gens"});
  struct Option {
    const char* label;
    core::ParamScaleSpec spec;
  };
  const Option options[] = {
      {"gamma_e only (compute energy)", core::ParamScaleSpec::only_gamma_e()},
      {"beta_e only (link energy)", core::ParamScaleSpec::only_beta_e()},
      {"delta_e only (memory energy)", core::ParamScaleSpec::only_delta_e()},
      {"all energy parameters", core::ParamScaleSpec::all()},
  };
  for (const auto& opt : options) {
    const int g = core::generations_to_target(*model, n, p, M, mp, opt.spec,
                                              target, max_gen);
    const auto series =
        core::efficiency_vs_generation(*model, n, p, M, mp, opt.spec, 10);
    t.row()
        .cell(opt.label)
        .cell(g < 0 ? std::string("never (saturates)") : strfmt("%d", g))
        .cell(series.back().gflops_per_watt, "%.2f");
  }
  t.print(std::cout);

  std::cout << "\nWhere the energy goes today (p=2, full memory):\n";
  const auto b = model->breakdown(n, p, M, mp);
  Table eb({"term", "joules", "share"});
  const double tot = b.total();
  eb.row().cell("flops (gamma_e)").cell(b.flops, "%.4g").cell(b.flops / tot, "%.3f");
  eb.row().cell("words (beta_e)").cell(b.words, "%.4g").cell(b.words / tot, "%.3f");
  eb.row().cell("messages (alpha_e)").cell(b.messages, "%.4g").cell(
      b.messages / tot, "%.3f");
  eb.row().cell("memory (delta_e)").cell(b.memory, "%.4g").cell(
      b.memory / tot, "%.3f");
  eb.row().cell("leakage (eps_e)").cell(b.leakage, "%.4g").cell(
      b.leakage / tot, "%.3f");
  eb.print(std::cout);
  std::cout << "\nLesson (Section VI): target the parameters that carry the "
               "energy — here compute and DRAM, not the QPI link.\n";
  return 0;
}
