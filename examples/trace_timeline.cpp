// Scenario: "where does the time go?" — run the same multiplication as a
// communication-heavy 2D Cannon and as a memory-for-communication 2.5D
// instance, and render both execution traces as ASCII Gantt charts. The
// visual: with replication, the send/idle stripes shrink and the compute
// stripes dominate — the mechanism behind the perfect-strong-scaling
// region.
//
//   ./build/examples/trace_timeline
#include <iostream>
#include <vector>

#include "algs/matmul/distributed.hpp"
#include "algs/matmul/local.hpp"
#include "sim/comm.hpp"
#include "sim/machine.hpp"
#include "support/rng.hpp"
#include "topo/grid.hpp"

namespace {
using namespace alge;

void run_and_render(int n, int q, int c) {
  topo::Grid3D grid(q, c);
  sim::MachineConfig cfg;
  cfg.p = grid.p();
  cfg.params = core::MachineParams::unit();
  cfg.params.beta_t = 4.0;  // make communication visible next to compute
  cfg.enable_trace = true;
  sim::Machine m(cfg);
  Rng rng(3);
  const auto A = algs::random_matrix(n, n, rng);
  m.run([&](sim::Comm& comm) {
    const int i = grid.row_of(comm.rank());
    const int j = grid.col_of(comm.rank());
    if (grid.layer_of(comm.rank()) == 0) {
      const int nb = n / q;
      std::vector<double> a(static_cast<std::size_t>(nb) * nb);
      for (int r = 0; r < nb; ++r) {
        for (int cc = 0; cc < nb; ++cc) {
          a[static_cast<std::size_t>(r) * nb + cc] =
              A[static_cast<std::size_t>(i * nb + r) * n + j * nb + cc];
        }
      }
      std::vector<double> cb(a.size(), 0.0);
      algs::mm_25d(comm, grid, n, a, a, cb);
    } else {
      algs::mm_25d(comm, grid, n, {}, {}, {});
    }
  });
  std::cout << "matmul n=" << n << ", q=" << q << ", c=" << c
            << " (p=" << grid.p() << "), makespan " << m.makespan() << "\n";
  std::cout << m.trace().render_timeline(grid.p(), 64) << "\n";
  double busy = 0.0;
  double idle = 0.0;
  for (int r = 0; r < grid.p(); ++r) {
    const auto s = m.trace().summarize(r);
    busy += s.compute_time + s.send_time;
    idle += s.idle_time;
  }
  std::cout << "aggregate busy/idle = " << busy << " / " << idle << "\n\n";
}
}  // namespace

int main() {
  std::cout << "Execution timelines: '#' compute, '>' send, '.' idle\n\n";
  run_and_render(32, 4, 1);  // 2D: communication bound
  run_and_render(32, 4, 4);  // 3D: replication removes most communication
  std::cout << "With c=4 the same multiply uses 4x the processors, each "
               "rank shifts 1/4 of the data, and the timeline turns from "
               "stripes of '>' and '.' into mostly '#'.\n";
  return 0;
}
