// chaos_explore: the differential determinism harness as a CI gate.
//
//   chaos_explore [--algs=all|mm25d,caps,...] [--p=4,8] [--seeds=32]
//                 [--plans=all|delay,drop,...] [--verbose] [--ghost]
//
// For every (algorithm, machine size) case it establishes the fault-free
// round-robin baseline, then (a) re-runs under --seeds permuted fiber wake
// orders and asserts the full run signature — per-rank F/W/S counters,
// clocks, makespan, Eq. (2) energy terms, numerical error — is
// bit-identical, and (b) re-runs under every bundled fault plan asserting
// convergence (bounded retries, no deadlock) and graceful, monotone
// degradation (see src/chaos/differential.hpp for the exact contract).
//
// --ghost runs the ghost-payload differential instead: every case runs
// full-data and DataMode::kGhost back to back — fault-free and under every
// plan × seed — and the cost signatures (per-rank counters, clocks,
// energy, injected faults) must be bit-identical.
//
// --fold runs the folded-execution differential: every case runs
// fiber-ghost and ExecMode::kFolded ghost back to back — fault-free and
// under every plan × seed (faulted runs exercise the transparent fallback
// to fibers, which must still match) — and the cost signatures must be
// bit-identical. This is the CI gate behind bench/frontier_folded.
//
// Exit codes: 0 all invariants hold, 1 mismatch or divergence, 2 usage
// error.
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "chaos/differential.hpp"
#include "support/cli.hpp"
#include "support/common.hpp"

namespace {

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t comma = s.find(',', start);
    const std::size_t end = comma == std::string::npos ? s.size() : comma;
    if (end > start) out.push_back(s.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace alge;
  CliArgs cli;
  cli.add_flag("algs", "all",
               "algorithms to test: all or a comma list of "
               "mm25d,summa,caps,nbody,lu,tsqr,fft");
  cli.add_flag("p", "4,8", "machine size classes (comma list)");
  cli.add_flag("seeds", "32", "schedule/fault seeds per case");
  cli.add_flag("plans", "all",
               "fault plans: all or a comma list of "
               "delay,drop,duplicate,reorder,pause,mixed");
  cli.add_flag("verbose", "false", "per-case summary lines");
  cli.add_flag("ghost", "false",
               "run the ghost-payload differential (full vs "
               "--data-mode=ghost cost-signature bit-identity) instead of "
               "the schedule/fault sweep");
  cli.add_flag("fold", "false",
               "run the folded-execution differential (fiber-ghost vs "
               "--exec-mode=folded cost-signature bit-identity) instead of "
               "the schedule/fault sweep");
  try {
    cli.parse(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "chaos_explore: %s\n%s", e.what(),
                 cli.usage("chaos_explore").c_str());
    return 2;
  }
  if (cli.help_requested()) {
    std::fputs(cli.usage("chaos_explore").c_str(), stdout);
    return 0;
  }

  chaos::DiffOptions opts;
  opts.out = &std::cout;
  opts.verbose = cli.get_bool("verbose");
  try {
    if (cli.get("algs") != "all") {
      opts.algs.clear();
      for (const std::string& name : split_csv(cli.get("algs"))) {
        opts.algs.push_back(chaos::parse_alg(name));
      }
    }
    opts.ps.clear();
    for (long long p : cli.get_int_list("p")) {
      ALGE_REQUIRE(p >= 1, "--p entries must be >= 1");
      opts.ps.push_back(static_cast<int>(p));
    }
    opts.seeds = static_cast<int>(cli.get_int("seeds"));
    ALGE_REQUIRE(opts.seeds >= 1, "--seeds must be >= 1");
    if (cli.get("plans") != "all") {
      opts.plans = split_csv(cli.get("plans"));
      for (const std::string& name : opts.plans) {
        (void)chaos::FaultPlan::bundled(name);  // validate early
      }
    }
    ALGE_REQUIRE(!opts.algs.empty() && !opts.ps.empty(),
                 "need at least one algorithm and one machine size");
  } catch (const std::exception& e) {
    std::fprintf(stderr, "chaos_explore: %s\n%s", e.what(),
                 cli.usage("chaos_explore").c_str());
    return 2;
  }

  if (cli.get_bool("fold")) {
    chaos::FoldDiffOptions fopts;
    fopts.algs = opts.algs;
    fopts.ps = opts.ps;
    fopts.seeds = opts.seeds;
    fopts.plans = opts.plans;
    fopts.verbose = opts.verbose;
    fopts.out = opts.out;
    const chaos::FoldDiffReport rep = chaos::fold_explore(fopts);
    return rep.ok() ? 0 : 1;
  }
  if (cli.get_bool("ghost")) {
    chaos::GhostDiffOptions gopts;
    gopts.algs = opts.algs;
    gopts.ps = opts.ps;
    gopts.seeds = opts.seeds;
    gopts.plans = opts.plans;
    gopts.verbose = opts.verbose;
    gopts.out = opts.out;
    const chaos::GhostDiffReport rep = chaos::ghost_explore(gopts);
    return rep.ok() ? 0 : 1;
  }
  const chaos::DiffReport rep = chaos::explore(opts);
  return rep.ok() ? 0 : 1;
}
