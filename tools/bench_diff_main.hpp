// The bench_diff CLI as a callable function, so its exit codes and
// rendering are unit-testable (tests/test_bench_diff.cpp) while the binary
// (bench_diff.cpp) stays a two-line main. Header-only on purpose: tools/
// is not a library, and the one extra TU a test adds is cheaper than a new
// link target.
#pragma once

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/bench_metrics.hpp"
#include "support/json.hpp"

namespace alge::tools {

inline const char* bench_diff_usage_text() {
  return
      "usage: bench_diff BASELINE.json CURRENT.json [--threshold=REL]"
      " [--thresholds=SUBSTR=REL,...] [--verbose]\n"
      "  --threshold=REL  relative change that counts as a regression\n"
      "                   (default 0.10 = 10%)\n"
      "  --thresholds=SUBSTR=REL,...\n"
      "                   per-metric overrides: metrics whose name contains\n"
      "                   SUBSTR gate at REL instead; the longest matching\n"
      "                   SUBSTR wins (CI gates deterministic simulated\n"
      "                   metrics at ~1e-4 and wall-clock ratios loosely)\n"
      "  --verbose        list every compared metric, not just changes\n";
}

/// Run the bench_diff CLI on `args` (argv[1..argc-1]). The report is
/// appended to *out and diagnostics to *err (either may be null).
/// Returns the process exit code: 0 clean, 1 regressions, 2 usage or
/// I/O error.
inline int run_bench_diff(const std::vector<std::string>& args,
                          std::string* out, std::string* err) {
  auto say = [](std::string* sink, const std::string& text) {
    if (sink != nullptr) *sink += text;
  };
  auto usage = [&] {
    say(err, bench_diff_usage_text());
    return 2;
  };

  std::string paths[2];
  int npaths = 0;
  double threshold = 0.10;
  std::vector<obs::ThresholdOverride> overrides;
  bool verbose = false;
  for (const std::string& arg : args) {
    if (arg.rfind("--threshold=", 0) == 0) {
      try {
        threshold = std::stod(arg.substr(12));
      } catch (...) {
        say(err, "bench_diff: bad threshold '" + arg + "'\n");
        return usage();
      }
      if (threshold < 0.0) {
        say(err, "bench_diff: threshold must be >= 0\n");
        return usage();
      }
    } else if (arg.rfind("--thresholds=", 0) == 0) {
      // SUBSTR=REL, comma-separated. SUBSTR may not contain '=' or ','.
      std::string rest = arg.substr(13);
      if (rest.empty()) {
        say(err, "bench_diff: empty --thresholds\n");
        return usage();
      }
      while (!rest.empty()) {
        const std::size_t comma = rest.find(',');
        const std::string item = rest.substr(0, comma);
        rest = comma == std::string::npos ? "" : rest.substr(comma + 1);
        const std::size_t eq = item.find('=');
        obs::ThresholdOverride o;
        if (eq != std::string::npos && eq > 0) {
          o.substring = item.substr(0, eq);
          try {
            o.threshold = std::stod(item.substr(eq + 1));
          } catch (...) {
            o.threshold = -1.0;
          }
        }
        if (o.substring.empty() || o.threshold < 0.0) {
          say(err, "bench_diff: bad threshold override '" + item + "'\n");
          return usage();
        }
        overrides.push_back(std::move(o));
      }
    } else if (arg == "--verbose") {
      verbose = true;
    } else if (!arg.empty() && arg[0] == '-') {
      say(err, "bench_diff: unknown flag '" + arg + "'\n");
      return usage();
    } else if (npaths < 2) {
      paths[npaths++] = arg;
    } else {
      say(err, "bench_diff: too many arguments\n");
      return usage();
    }
  }
  if (npaths != 2) return usage();

  json::Value docs[2];
  for (int i = 0; i < 2; ++i) {
    std::ifstream in(paths[i]);
    if (!in) {
      say(err, "bench_diff: cannot read '" + paths[i] + "'\n");
      return 2;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    try {
      docs[i] = json::parse(buf.str());
    } catch (const json::json_error& e) {
      say(err, "bench_diff: '" + paths[i] +
                   "' is not valid JSON: " + e.what() + "\n");
      return 2;
    }
  }

  const obs::BenchDiff diff =
      obs::diff_bench_json(docs[0], docs[1], threshold, overrides);
  say(out, obs::render_diff(diff, threshold, verbose));
  return diff.regressions > 0 ? 1 : 0;
}

}  // namespace alge::tools
