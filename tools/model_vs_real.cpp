// model_vs_real: run the per-rank algorithm programs on a real transport
// backend and put the paper's model next to the measurement.
//
//   model_vs_real [--algs=all|mm25d,caps,...] [--backends=shm,tcp]
//                 [--gamma-t=..] [--beta-t=..] [--alpha-t=..]
//                 [--json=PATH]
//
// For every (algorithm, backend) cell the tool reports
//
//   * the Eq. (1) prediction T = γt·F + βt·W + αt·S evaluated on the
//     critical-path rank's measured counters (with the default unit
//     parameters this is the virtual makespan itself),
//   * the Eq. (2) energy prediction on the same measured ledger,
//   * the wall-clock seconds the backend actually took, and the
//     wall-per-model ratio — the backend's implied "seconds per model
//     unit", which calibrates γt/βt/αt against a real machine,
//   * whether the wire-level traffic matched the W/S ledger exactly
//     (msgs/words sent per rank) — the same oracle the conformance suite
//     asserts.
//
// The model columns are deterministic; only the wall clock and the ratio
// vary with the machine. Exit 1 if any cell's wire traffic diverges from
// the ledger.
#include <chrono>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "support/cli.hpp"
#include "support/common.hpp"
#include "support/json.hpp"
#include "support/table.hpp"
#include "transport/programs.hpp"
#include "transport/run.hpp"

namespace {

using namespace alge;

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t comma = s.find(',', start);
    const std::size_t end = comma == std::string::npos ? s.size() : comma;
    if (end > start) out.push_back(s.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

bool ledger_matches(const transport::RunReport& report) {
  for (const transport::RankReport& r : report.ranks) {
    if (r.wire.msgs_sent != r.model.msgs_sent) return false;
    if (r.wire.words_sent != r.model.words_sent) return false;
    if (r.wire.msgs_recv != r.model.msgs_recv) return false;
    if (r.wire.words_recv + r.self.words_recv != r.model.words_recv) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace alge;
  CliArgs cli;
  cli.add_flag("algs", "all", "comma-separated algorithms, or all");
  cli.add_flag("backends", "shm,tcp",
               "comma-separated real backends to measure (sim allowed too)");
  cli.add_flag("gamma-t", "1.0", "seconds per flop for the Eq. (1) column");
  cli.add_flag("beta-t", "1.0", "seconds per word for the Eq. (1) column");
  cli.add_flag("alpha-t", "1.0", "seconds per message for the Eq. (1) column");
  cli.add_flag("json", "", "write the comparison records to this path");
  cli.parse(argc, argv);
  if (cli.help_requested()) {
    std::cout << cli.usage("model_vs_real");
    return 0;
  }

  core::MachineParams mp = core::MachineParams::unit();
  mp.gamma_t = cli.get_double("gamma-t");
  mp.beta_t = cli.get_double("beta-t");
  mp.alpha_t = cli.get_double("alpha-t");
  mp.validate();

  std::vector<std::string> algs = split_csv(cli.get("algs"));
  if (algs.size() == 1 && algs[0] == "all") algs = transport::program_names();
  const std::vector<std::string> backends = split_csv(cli.get("backends"));

  Table t({"alg", "backend", "p", "Eq.(1) T", "Eq.(2) E", "wall s",
           "wall/T", "ledger"});
  json::Value records = json::Value::array();
  bool all_match = true;

  for (const std::string& alg : algs) {
    const transport::AlgProgram ap =
        transport::make_program(transport::conformance_spec(alg));
    transport::RunOptions opts;
    opts.p = ap.p;
    opts.params = mp;
    opts.timeout_s = 30.0;
    for (const std::string& bname : backends) {
      const transport::Backend backend =
          transport::backend_from_string(bname);
      const auto t0 = std::chrono::steady_clock::now();
      const transport::RunReport report =
          transport::run(backend, opts, ap.program);
      const double wall =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();
      // Eq. (1) on the measured counters: the critical-path rank's clock
      // already accumulates γt·F + βt·W + αt·S plus waiting, which is the
      // model makespan.
      const double model_t = report.makespan();
      const double model_e = report.energy(mp).breakdown.total();
      const bool match =
          backend == transport::Backend::kSim || ledger_matches(report);
      all_match = all_match && match;
      t.row()
          .cell(alg)
          .cell(bname)
          .cell(report.p)
          .cell(model_t, "%.0f")
          .cell(model_e, "%.0f")
          .cell(wall, "%.4f")
          .cell(model_t > 0.0 ? wall / model_t : 0.0, "%.2e")
          .cell(match ? "match" : "DIVERGED");
      json::Value e = json::Value::object();
      e.set("name", alg + "." + bname);
      e.set("p", report.p);
      e.set("model_makespan", model_t);
      e.set("model_energy", model_e);
      e.set("wall_seconds", wall);
      e.set("ledger_match", match);
      records.push_back(std::move(e));
    }
  }

  t.print(std::cout);
  std::cout << "\nEq. (1)/(2) are evaluated on the counters the real run "
               "itself carried (the model travels with the rank); wall/T "
               "is the backend's implied seconds per model unit, the "
               "calibration handle for gamma-t/beta-t/alpha-t.\n";

  const std::string json_path = cli.get("json");
  if (!json_path.empty()) {
    json::Value doc = json::Value::object();
    doc.set("tool", "model_vs_real");
    doc.set("results", std::move(records));
    std::ofstream out(json_path);
    ALGE_REQUIRE(out.good(), "cannot write %s", json_path.c_str());
    out << doc.dump() << "\n";
  }
  if (!all_match) {
    std::fprintf(stderr, "[model_vs_real] wire traffic diverged from the "
                         "W/S ledger\n");
  }
  return all_match ? 0 : 1;
}
