// serve: the optimizer query service as a long-running process.
//
//   serve [--port=0] [--threads=2] [--cache-dir=PATH] [--host-watts=150]
//         [--max-frame=1048576] [--port-file=PATH] [--stats-json=PATH]
//         [--trace-out=PATH] [--duration=0]
//
// Binds 127.0.0.1:<port> (0 = ephemeral) and serves the length-prefixed
// JSON protocol of src/serve until SIGINT/SIGTERM (or for --duration
// seconds when nonzero — handy for CI smoke jobs). On shutdown it drains
// connections, then dumps the per-query-class serving ledger (counts,
// answer-cache hits, p50/p99 latency, energy-of-serving) to --stats-json
// and the per-request span timeline to --trace-out as Chrome trace JSON.
//
// The line "serve: listening on 127.0.0.1:<port>" goes to stdout and the
// bound port (alone) to --port-file, so scripts can wait for readiness and
// discover an ephemeral port.
#include <csignal>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <thread>

#include "serve/server.hpp"
#include "support/cli.hpp"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void on_signal(int) { g_stop = 1; }

}  // namespace

int main(int argc, char** argv) {
  using namespace alge;
  CliArgs cli;
  cli.add_flag("port", "0", "TCP port on 127.0.0.1 (0 = ephemeral)");
  cli.add_flag("threads", "2", "worker pool size");
  cli.add_flag("cache-dir", "", "shared on-disk result cache directory");
  cli.add_flag("host-watts", "150",
               "host power draw for the energy-of-serving ledger (W)");
  cli.add_flag("max-frame", "1048576", "max request frame bytes");
  cli.add_flag("port-file", "", "write the bound port to this file");
  cli.add_flag("stats-json", "", "dump the serving ledger here on shutdown");
  cli.add_flag("trace-out", "",
               "dump per-request spans here (Chrome trace JSON) on shutdown");
  cli.add_flag("duration", "0",
               "serve for this many seconds, then exit (0 = until signal)");
  try {
    cli.parse(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "serve: " << e.what() << "\n" << cli.usage("serve");
    return 2;
  }
  if (cli.help_requested()) {
    std::cout << cli.usage("serve");
    return 0;
  }

  obs::SpanLog spans;
  const bool tracing = !cli.get("trace-out").empty();
  serve::ServiceOptions sopts;
  sopts.cache_dir = cli.get("cache-dir");
  sopts.host_watts = cli.get_double("host-watts");
  sopts.spans = tracing ? &spans : nullptr;
  serve::QueryService service(sopts);

  serve::ServerOptions opts;
  opts.port = static_cast<int>(cli.get_int("port"));
  opts.threads = static_cast<int>(cli.get_int("threads"));
  opts.max_frame_bytes =
      static_cast<std::size_t>(cli.get_int("max-frame"));
  serve::Server server(service, opts);
  try {
    server.start();
  } catch (const std::exception& e) {
    std::cerr << "serve: " << e.what() << "\n";
    return 1;
  }

  std::cout << "serve: listening on 127.0.0.1:" << server.port()
            << std::endl;
  if (const std::string port_file = cli.get("port-file");
      !port_file.empty()) {
    std::ofstream out(port_file, std::ios::trunc);
    out << server.port() << "\n";
  }

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  const double duration = cli.get_double("duration");
  const auto t0 = std::chrono::steady_clock::now();
  while (g_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    if (duration > 0.0 &&
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
                .count() >= duration) {
      break;
    }
  }

  std::cout << "serve: draining...\n";
  server.stop();
  const serve::Server::Stats st = server.stats();
  std::cout << "serve: handled " << st.requests << " request(s) on "
            << st.connections_accepted << " connection(s), "
            << st.protocol_errors << " protocol error(s)\n";

  if (const std::string stats_path = cli.get("stats-json");
      !stats_path.empty()) {
    std::ofstream out(stats_path, std::ios::trunc);
    out << service.stats_json().dump() << "\n";
  }
  if (tracing) {
    spans.write_chrome_file(cli.get("trace-out"));
  }
  return 0;
}
