// serve_client: one-shot CLI client for the optimizer query service.
//
//   serve_client --port=PORT [--host=127.0.0.1] --kind=min_energy
//                [--model=nbody --f=20 --n=1e7] [--machine=case-study]
//                [--t-max=…|--e-max=…|--power-max=…|--proc-power-max=…]
//                [--p=… --M=…] [--target-gflops-per-watt=… --scale=all]
//                [--p-available=…] [--M-cap=…] [--spec-json='{…}']
//                [--json='{…}'] [--id=…] [--crosscheck=false]
//
// Builds the request from flags (or sends --json verbatim), prints the
// response JSON on stdout, and exits 0 on {"ok": true}. With
// --crosscheck=true it also evaluates the same request in-process through
// its own QueryService — the exact core::Optimizer / ghost-engine path —
// and fails unless the served "answer" is bit-identical to the local one;
// the CI smoke job runs one cross-checked query per query class.
#include <iostream>
#include <string>
#include <unistd.h>

#include "serve/protocol.hpp"
#include "serve/service.hpp"
#include "support/cli.hpp"
#include "support/json.hpp"

namespace {

using alge::json::Value;

/// Set `key` from a flag when the flag is non-empty; numbers parse as JSON.
void set_number_flag(Value& req, const alge::CliArgs& cli,
                     const std::string& flag, const std::string& key) {
  const std::string v = cli.get(flag);
  if (!v.empty()) req.set(key, alge::json::parse(v));
}

std::string build_request(const alge::CliArgs& cli) {
  const std::string raw = cli.get("json");
  if (!raw.empty()) return raw;

  Value req = Value::object();
  const std::string id = cli.get("id");
  if (!id.empty()) req.set("id", id);
  req.set("kind", cli.get("kind"));
  const std::string spec = cli.get("spec-json");
  if (!spec.empty()) {
    req.set("spec", alge::json::parse(spec));
  } else if (cli.get("kind") != "ping" && cli.get("kind") != "stats") {
    req.set("model", cli.get("model"));
    set_number_flag(req, cli, "f", "f");
    set_number_flag(req, cli, "omega0", "omega0");
    set_number_flag(req, cli, "n", "n");
    req.set("machine", cli.get("machine"));
    set_number_flag(req, cli, "t-max", "t_max");
    set_number_flag(req, cli, "e-max", "e_max");
    set_number_flag(req, cli, "power-max", "power_max");
    set_number_flag(req, cli, "proc-power-max", "proc_power_max");
    set_number_flag(req, cli, "p", "p");
    set_number_flag(req, cli, "M", "M");
    set_number_flag(req, cli, "target-gflops-per-watt",
                    "target_gflops_per_watt");
    if (!cli.get("target-gflops-per-watt").empty()) {
      req.set("scale", cli.get("scale"));
    }
    Value limits = Value::object();
    set_number_flag(limits, cli, "p-available", "p_available");
    set_number_flag(limits, cli, "M-cap", "M_cap");
    if (!limits.as_object().empty()) req.set("limits", std::move(limits));
  }
  return req.dump();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace alge;
  CliArgs cli;
  cli.add_flag("host", "127.0.0.1", "server address");
  cli.add_flag("port", "0", "server port (required)");
  cli.add_flag("json", "", "send this JSON request verbatim");
  cli.add_flag("kind", "ping", "query kind (see src/serve/service.hpp)");
  cli.add_flag("model", "nbody", "algorithm model");
  cli.add_flag("f", "", "n-body flops per interaction");
  cli.add_flag("omega0", "", "Strassen exponent override");
  cli.add_flag("n", "", "problem size");
  cli.add_flag("machine", "case-study", "machine name");
  cli.add_flag("t-max", "", "V-B deadline (s)");
  cli.add_flag("e-max", "", "V-C energy budget (J)");
  cli.add_flag("power-max", "", "V-D total power cap (W)");
  cli.add_flag("proc-power-max", "", "V-E per-processor power cap (W)");
  cli.add_flag("p", "", "evaluate: processor count");
  cli.add_flag("M", "", "evaluate: memory per processor (words)");
  cli.add_flag("target-gflops-per-watt", "", "codesign target");
  cli.add_flag("scale", "all",
               "codesign: which energy params improve per generation");
  cli.add_flag("p-available", "", "limits: largest machine");
  cli.add_flag("M-cap", "", "limits: physical memory per processor");
  cli.add_flag("spec-json", "",
               "experiment: partial ExperimentSpec JSON (absent fields take "
               "defaults; data_mode defaults to ghost)");
  cli.add_flag("id", "", "request id echoed in the response");
  cli.add_flag("crosscheck", "false",
               "also evaluate locally and require a bit-identical answer");
  try {
    cli.parse(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "serve_client: " << e.what() << "\n"
              << cli.usage("serve_client");
    return 2;
  }
  if (cli.help_requested()) {
    std::cout << cli.usage("serve_client");
    return 0;
  }

  try {
    const std::string request = build_request(cli);
    const int fd =
        serve::connect_tcp(cli.get("host"),
                           static_cast<int>(cli.get_int("port")));
    std::string response;
    {
      serve::FrameReader reader(fd);
      std::string_view payload;
      if (!serve::write_frame(fd, request) ||
          reader.next(&payload) != serve::FrameReader::Status::kFrame) {
        std::cerr << "serve_client: server closed the connection\n";
        ::close(fd);
        return 1;
      }
      response = std::string(payload);
    }
    ::close(fd);
    std::cout << response << "\n";

    const json::Value resp = json::parse(response);
    const json::Value* ok = resp.find("ok");
    const bool served_ok =
        ok != nullptr && ok->is_bool() && ok->as_bool();

    if (cli.get_bool("crosscheck")) {
      serve::QueryService local;  // in-memory, no shared cache
      const json::Value local_resp = json::parse(*local.handle(request));
      const json::Value* served = resp.find("answer");
      const json::Value* expected = local_resp.find("answer");
      const std::string served_s =
          served == nullptr ? "<absent>" : served->dump();
      const std::string expected_s =
          expected == nullptr ? "<absent>" : expected->dump();
      if (served_s != expected_s) {
        std::cerr << "serve_client: CROSSCHECK MISMATCH\n  served:   "
                  << served_s << "\n  expected: " << expected_s << "\n";
        return 1;
      }
      std::cerr << "serve_client: crosscheck ok (bit-identical answer)\n";
    }
    return served_ok ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "serve_client: " << e.what() << "\n";
    return 1;
  }
}
