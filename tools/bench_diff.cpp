// bench_diff: compare two benchmark JSON files and flag regressions.
//
//   bench_diff BASELINE.json CURRENT.json [--threshold=0.10]
//              [--thresholds=SUBSTR=REL,...] [--verbose]
//
// Understands all the bench formats the repo produces (see
// obs/bench_metrics.hpp): the committed BENCH_sim.json object,
// google-benchmark --benchmark_out files, BENCH_engine.json run
// histories, BENCH_ghost.json full-vs-ghost speedup records,
// BENCH_serve.json query-service loadtest phases (throughput
// higher-better, latency quantiles lower-better),
// BENCH_frontier.json folded-execution frontier points (simulated
// makespan/energy/per-rank costs lower-better, wall seconds skipped),
// and BENCH_navigator.json Pareto-frontier sweeps (frontier area,
// crossover generations and fault inflation lower-better,
// robust_fraction higher-better). A metric "regresses" when it moves
// against its direction (time-like up, throughput-like down) by more
// than its relative threshold — the default, or the longest-matching
// --thresholds override; neutral metrics (counts, configuration) are
// reported but never fail the diff.
//
// Exit codes: 0 clean, 1 regressions found, 2 usage or I/O error —
// CI blocks on 1 (deterministic metrics gated tightly, wall-clock
// ratios loosely; the allow-bench-regression PR label overrides). The
// actual CLI logic lives in bench_diff_main.hpp so tests can drive it
// in-process.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_diff_main.hpp"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  std::string out;
  std::string err;
  const int rc = alge::tools::run_bench_diff(args, &out, &err);
  std::fputs(out.c_str(), stdout);
  std::fputs(err.c_str(), stderr);
  return rc;
}
