// bench_diff: compare two benchmark JSON files and flag regressions.
//
//   bench_diff BASELINE.json CURRENT.json [--threshold=0.10] [--verbose]
//
// Understands all three bench formats the repo produces (see
// obs/bench_metrics.hpp): the committed BENCH_sim.json object,
// google-benchmark --benchmark_out files, and BENCH_engine.json run
// histories. A metric "regresses" when it moves against its direction
// (time-like up, throughput-like down) by more than the relative
// threshold; neutral metrics (counts, configuration) are reported but
// never fail the diff.
//
// Exit codes: 0 clean, 1 regressions found, 2 usage or I/O error —
// CI uses 1 as the (warn-only) gate signal.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/bench_metrics.hpp"
#include "support/json.hpp"

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: bench_diff BASELINE.json CURRENT.json [--threshold=REL]"
      " [--verbose]\n"
      "  --threshold=REL  relative change that counts as a regression\n"
      "                   (default 0.10 = 10%%)\n"
      "  --verbose        list every compared metric, not just changes\n");
  return 2;
}

bool read_file(const std::string& path, std::string* out) {
  std::ifstream in(path);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  *out = buf.str();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string paths[2];
  int npaths = 0;
  double threshold = 0.10;
  bool verbose = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--threshold=", 0) == 0) {
      try {
        threshold = std::stod(arg.substr(12));
      } catch (...) {
        std::fprintf(stderr, "bench_diff: bad threshold '%s'\n", arg.c_str());
        return usage();
      }
      if (threshold < 0.0) {
        std::fprintf(stderr, "bench_diff: threshold must be >= 0\n");
        return usage();
      }
    } else if (arg == "--verbose") {
      verbose = true;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "bench_diff: unknown flag '%s'\n", arg.c_str());
      return usage();
    } else if (npaths < 2) {
      paths[npaths++] = arg;
    } else {
      std::fprintf(stderr, "bench_diff: too many arguments\n");
      return usage();
    }
  }
  if (npaths != 2) return usage();

  alge::json::Value docs[2];
  for (int i = 0; i < 2; ++i) {
    std::string text;
    if (!read_file(paths[i], &text)) {
      std::fprintf(stderr, "bench_diff: cannot read '%s'\n",
                   paths[i].c_str());
      return 2;
    }
    try {
      docs[i] = alge::json::parse(text);
    } catch (const alge::json::json_error& e) {
      std::fprintf(stderr, "bench_diff: '%s' is not valid JSON: %s\n",
                   paths[i].c_str(), e.what());
      return 2;
    }
  }

  const alge::obs::BenchDiff diff =
      alge::obs::diff_bench_json(docs[0], docs[1], threshold);
  std::printf("%s",
              alge::obs::render_diff(diff, threshold, verbose).c_str());
  return diff.regressions > 0 ? 1 : 0;
}
