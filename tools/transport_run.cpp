// transport_run: one rank of a multi-process TCP run — one shell per rank.
//
//   # shell 1 (rank 0 listens on the port and rendezvouses the mesh)
//   transport_run --alg=summa --rank=0 --port=7777
//   # shell 2
//   transport_run --alg=summa --rank=1 --port=7777
//   ... one shell per rank, up to the world size the spec implies ...
//
// Every shell runs the same deterministic per-rank program (inputs are
// regenerated from --seed inside each rank, so no driver process exists),
// connects into the rank mesh via rank 0's rendezvous listener, executes
// the algorithm for real over TCP, and prints its own rank report: model
// clock, F/W/S ledger, wire traffic, wall seconds, and the
// ledger-vs-wire verdict. Exit 0 on a conformant run, 1 on divergence,
// and a nonzero TransportError exit if a peer disconnects or times out.
//
// The world size is the spec's: q²c for mm25d/summa/lu, 7^k for caps,
// --p for nbody/fft/tsqr. Run with --help for the spec flags.
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "support/cli.hpp"
#include "support/common.hpp"
#include "transport/programs.hpp"
#include "transport/run.hpp"

int main(int argc, char** argv) {
  using namespace alge;
  CliArgs cli;
  cli.add_flag("alg", "summa",
               "algorithm: mm25d, summa, caps, nbody, lu, fft, tsqr");
  cli.add_flag("rank", "0", "this shell's rank (0 hosts the rendezvous)");
  cli.add_flag("host", "127.0.0.1", "rank 0's host (loopback only)");
  cli.add_flag("port", "7777", "rank 0's rendezvous port");
  cli.add_flag("timeout", "60", "seconds before any blocked wait fails");
  cli.add_flag("n", "0", "problem size (0 = the conformance default)");
  cli.add_flag("q", "0", "grid edge (mm25d/summa/lu)");
  cli.add_flag("c", "0", "replication factor / team count");
  cli.add_flag("p", "0", "rank count (nbody/fft/tsqr)");
  cli.add_flag("k", "0", "CAPS levels (world size 7^k)");
  cli.add_flag("nb", "0", "LU block size / TSQR column count");
  cli.add_flag("r-dim", "0", "FFT row dimension");
  cli.add_flag("c-dim", "0", "FFT column dimension");
  cli.add_flag("seed", "1", "input-generation seed (same on every shell)");
  cli.parse(argc, argv);
  if (cli.help_requested()) {
    std::cout << cli.usage("transport_run");
    return 0;
  }

  transport::ProgramSpec spec =
      transport::conformance_spec(cli.get("alg"));
  auto override_int = [&](const char* flag, int* field) {
    const int v = static_cast<int>(cli.get_int(flag));
    if (v != 0) *field = v;
  };
  override_int("n", &spec.n);
  override_int("q", &spec.q);
  override_int("c", &spec.c);
  override_int("p", &spec.p);
  override_int("k", &spec.k);
  override_int("nb", &spec.nb);
  override_int("r-dim", &spec.r_dim);
  override_int("c-dim", &spec.c_dim);
  spec.seed = static_cast<std::uint64_t>(cli.get_int("seed"));

  const transport::AlgProgram ap = transport::make_program(spec);
  const int rank = static_cast<int>(cli.get_int("rank"));
  ALGE_REQUIRE(rank >= 0 && rank < ap.p,
               "--rank=%d out of range: %s with these dimensions runs %d "
               "ranks",
               rank, spec.alg.c_str(), ap.p);

  transport::RunOptions opts;
  opts.p = ap.p;
  opts.params = core::MachineParams::unit();
  opts.timeout_s = cli.get_double("timeout");

  std::fprintf(stderr, "[transport_run] %s rank %d of %d, rendezvous %s:%d\n",
               spec.alg.c_str(), rank, ap.p, cli.get("host").c_str(),
               static_cast<int>(cli.get_int("port")));
  try {
    const transport::RankReport r = transport::run_tcp_rank(
        rank, opts, cli.get("host"),
        static_cast<int>(cli.get_int("port")), ap.program);
    const bool match =
        r.wire.msgs_sent == r.model.msgs_sent &&
        r.wire.words_sent == r.model.words_sent &&
        r.wire.msgs_recv == r.model.msgs_recv &&
        r.wire.words_recv + r.self.words_recv == r.model.words_recv;
    std::printf(
        "rank %d/%d  %s over tcp\n"
        "  model   clock=%.0f  flops=%.0f  words_sent=%.0f  msgs_sent=%.0f\n"
        "  wire    words_sent=%.0f  msgs_sent=%.0f  words_recv=%.0f  "
        "msgs_recv=%.0f\n"
        "  output  %zu words   wall %.4f s   ledger %s\n",
        rank, ap.p, spec.alg.c_str(), r.model.clock, r.model.flops,
        r.model.words_sent, r.model.msgs_sent, r.wire.words_sent,
        r.wire.msgs_sent, r.wire.words_recv, r.wire.msgs_recv,
        r.output.size(), r.wall_s, match ? "match" : "DIVERGED");
    return match ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "[transport_run] rank %d failed: %s\n", rank,
                 e.what());
    return 2;
  }
}
