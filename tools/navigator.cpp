// navigator: map the energy/time Pareto frontier of a workload, re-score
// it under fault plans, and self-validate against the Section-III bounds
// and the Section-V optimizer answers.
//
//   navigator --model=nbody --n=1e7 --machine=case-study
//             [--simulate=true --plans=drop1,delay1,reorder1] [--out=x.json]
//
// Prints the analytic frontier, the §V optima it must reproduce
// bit-exactly, and (with --simulate) the engine-measured frontier with its
// robustness verdicts. With --validate=true (the default) every report is
// re-checked: frontier points must be undominated, must not beat the
// core/bounds communication lower bound, the perfect-strong-scaling region
// edges must equal the closed forms bit-exactly, and the frontier must
// contain the optimizer's min-energy / min-time answers verbatim.
//
// Exit codes: 0 report valid, 1 validation failure, 2 usage error.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "machines/db.hpp"
#include "navigator/navigator.hpp"
#include "support/cli.hpp"
#include "support/common.hpp"
#include "support/table.hpp"

namespace {

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t comma = s.find(',', start);
    const std::size_t end = comma == std::string::npos ? s.size() : comma;
    if (end > start) out.push_back(s.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace alge;
  CliArgs cli;
  cli.add_flag("model", "nbody",
               "workload: nbody, classical-mm, strassen, lu-2.5d, "
               "fft-naive, fft-tree");
  cli.add_flag("n", "1e7", "analytic problem size");
  cli.add_flag("f", "1", "nbody flops per interaction");
  cli.add_flag("omega0", "2.8073549220576042", "Strassen exponent");
  cli.add_flag("machine", "case-study", "machine family: case-study or unit");
  cli.add_flag("p-available", "1e15", "largest machine we may use");
  cli.add_flag("M-cap", "1e18", "memory per processor cap (words)");
  cli.add_flag("t-max", "0", "time budget (seconds; 0 = none)");
  cli.add_flag("e-max", "0", "energy budget (joules; 0 = none)");
  cli.add_flag("power-max", "0", "total power budget (watts; 0 = none)");
  cli.add_flag("proc-power-max", "0",
               "per-processor power budget (watts; 0 = none)");
  cli.add_flag("p-samples", "48", "log-grid samples in p");
  cli.add_flag("m-samples", "24", "log-grid samples in M per p");
  cli.add_flag("msg-caps", "",
               "extra message-size caps to sweep (comma list, words)");
  cli.add_flag("simulate", "false",
               "score executable survivors with the ghost/folded engine "
               "and re-score the frontier under fault plans");
  cli.add_flag("sim-n", "0", "executable problem size (0 = per-model)");
  cli.add_flag("sim-points", "8", "engine runs after closed-form pruning");
  cli.add_flag("plans", "drop1,delay1,reorder1",
               "bundled fault plans for the robustness re-score");
  cli.add_flag("chaos-seed", "1", "fault/schedule seed for re-scoring");
  cli.add_flag("threads", "1", "engine worker threads");
  cli.add_flag("cache-dir", "", "shared engine result cache directory");
  cli.add_flag("target", "75",
               "crossover efficiency target (GFLOPS/W, Figs. 6/7)");
  cli.add_flag("validate", "true",
               "re-check bounds/endpoint/Pareto invariants; nonzero exit "
               "on failure");
  cli.add_flag("out", "", "write the full report JSON to this path");
  try {
    cli.parse(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "navigator: %s\n%s", e.what(),
                 cli.usage("navigator").c_str());
    return 2;
  }
  if (cli.help_requested()) {
    std::cout << cli.usage("navigator");
    return 0;
  }

  try {
    navigator::NavRequest req;
    req.model = cli.get("model");
    req.n = cli.get_double("n");
    req.f = cli.get_double("f");
    req.omega0 = cli.get_double("omega0");
    const std::string machine = cli.get("machine");
    if (machine == "case-study") {
      req.params = machines::CaseStudyMachine{}.params();
      // The optimizer chooses M; limits.M_cap bounds it (the
      // bench/sec5_optimizer convention, which the §V cross-checks use).
      req.params.mem_words = 0.0;
    } else if (machine == "unit") {
      req.params = core::MachineParams::unit();
    } else {
      throw invalid_argument_error(
          strfmt("unknown machine \"%s\" (use case-study or unit)",
                 machine.c_str()));
    }
    req.limits.p_available = cli.get_double("p-available");
    req.limits.M_cap = cli.get_double("M-cap");
    if (const double v = cli.get_double("t-max"); v > 0) req.budgets.t_max = v;
    if (const double v = cli.get_double("e-max"); v > 0) req.budgets.e_max = v;
    if (const double v = cli.get_double("power-max"); v > 0) {
      req.budgets.total_power_max = v;
    }
    if (const double v = cli.get_double("proc-power-max"); v > 0) {
      req.budgets.proc_power_max = v;
    }
    req.p_samples = static_cast<int>(cli.get_int("p-samples"));
    req.m_samples = static_cast<int>(cli.get_int("m-samples"));
    for (const std::string& cap : split_csv(cli.get("msg-caps"))) {
      req.msg_caps.push_back(std::stod(cap));
    }
    req.simulate = cli.get_bool("simulate");
    req.sim_n = static_cast<int>(cli.get_int("sim-n"));
    req.sim_points = static_cast<int>(cli.get_int("sim-points"));
    req.fault_plans = split_csv(cli.get("plans"));
    req.chaos_seed = static_cast<std::uint64_t>(cli.get_int("chaos-seed"));
    req.threads = static_cast<int>(cli.get_int("threads"));
    req.cache_dir = cli.get("cache-dir");
    req.crossover_target_gflops_per_watt = cli.get_double("target");

    const navigator::NavReport rep = navigator::navigate(req);

    std::cout << "Pareto navigator: model=" << rep.model << " n=" << rep.n
              << " machine=" << machine << "\n\n";
    Table mt({"p", "M (words)", "msg cap", "T (s)", "E (J)", "W/proc",
              "W bound", "source"});
    for (const navigator::ModelPoint& pt : rep.model_frontier) {
      mt.row()
          .cell(pt.p, "%.6g")
          .cell(pt.M, "%.6g")
          .cell(pt.m, "%.3g")
          .cell(pt.T, "%.6g")
          .cell(pt.E, "%.6g")
          .cell(pt.words, "%.4g")
          .cell(pt.words_bound, "%.4g")
          .cell(pt.source);
    }
    mt.print(std::cout);
    std::cout << "\nSection-V optima (frontier endpoints, bit-exact):\n"
              << strfmt("  min energy: p=%.17g M=%.17g T=%.17g E=%.17g\n",
                        rep.min_energy.p, rep.min_energy.M, rep.min_energy.T,
                        rep.min_energy.E)
              << strfmt("  min time:   p=%.17g M=%.17g T=%.17g E=%.17g\n",
                        rep.min_time.p, rep.min_time.M, rep.min_time.T,
                        rep.min_time.E)
              << strfmt("  perfect strong scaling at M=%.6g: p in [%.6g, "
                        "%.6g]\n",
                        rep.scaling_M, rep.scaling_p_min, rep.scaling_p_max)
              << strfmt("  efficiency at the optimum: %.3f GFLOPS/W "
                        "(crossover to %.0f in %d generations",
                        rep.gflops_per_watt_at_opt, rep.crossover_target,
                        rep.crossover_generations);
    if (req.simulate) {
      std::cout << strfmt(", %d under faults",
                          rep.crossover_generations_faulted);
    }
    std::cout << ")\n";

    if (req.simulate) {
      std::cout << "\nMeasured frontier (ghost/folded engine, "
                << rep.simulated << " runs + " << rep.rescore_runs
                << " fault re-scores, " << rep.cache_hits
                << " cache hits):\n";
      Table st({"config", "topology", "impl", "p", "makespan", "energy",
                "W/rank", "W bound", "robust"});
      for (const navigator::SimPoint& sp : rep.measured_frontier) {
        st.row()
            .cell(sp.label)
            .cell(sp.topology)
            .cell(sp.impl)
            .cell(sp.p)
            .cell(sp.makespan, "%.6g")
            .cell(sp.energy, "%.6g")
            .cell(sp.words_per_rank, "%.4g")
            .cell(sp.words_bound, "%.4g")
            .cell(sp.robust ? "yes" : "no");
      }
      st.print(std::cout);
      std::cout << strfmt(
          "\n  robust: %d/%zu points stay Pareto-optimal under every plan; "
          "worst energy inflation at the min-energy point: %.4fx\n",
          rep.robust_points, rep.measured_frontier.size(),
          rep.fault_energy_inflation);
    }

    if (const std::string out = cli.get("out"); !out.empty()) {
      std::ofstream f(out, std::ios::binary | std::ios::trunc);
      ALGE_REQUIRE(f.good(), "cannot open --out=%s", out.c_str());
      f << rep.to_json().dump() << "\n";
      std::cout << "\nreport written to " << out << "\n";
    }

    if (cli.get_bool("validate")) {
      const navigator::ValidationResult vr = navigator::validate(rep, req);
      if (!vr.ok) {
        for (const std::string& msg : vr.failures) {
          std::fprintf(stderr, "navigator: VALIDATION FAILED: %s\n",
                       msg.c_str());
        }
        return 1;
      }
      std::cout << "\nvalidation: all bounds/endpoint/Pareto invariants "
                   "hold\n";
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "navigator: %s\n", e.what());
    return 2;
  }
  return 0;
}
