# Empty dependencies file for test_network_trace.
# This may be replaced when dependencies are built.
