# Empty compiler generated dependencies file for test_seqsim.
# This may be replaced when dependencies are built.
