
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_seqsim.cpp" "tests/CMakeFiles/test_seqsim.dir/test_seqsim.cpp.o" "gcc" "tests/CMakeFiles/test_seqsim.dir/test_seqsim.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/seqsim/CMakeFiles/alge_seqsim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/alge_core.dir/DependInfo.cmake"
  "/root/repo/build/src/algs/CMakeFiles/alge_algs.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/alge_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/alge_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/fiber/CMakeFiles/alge_fiber.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/alge_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
