file(REMOVE_RECURSE
  "CMakeFiles/test_seqsim.dir/test_seqsim.cpp.o"
  "CMakeFiles/test_seqsim.dir/test_seqsim.cpp.o.d"
  "test_seqsim"
  "test_seqsim.pdb"
  "test_seqsim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_seqsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
