file(REMOVE_RECURSE
  "CMakeFiles/test_tsqr.dir/test_tsqr.cpp.o"
  "CMakeFiles/test_tsqr.dir/test_tsqr.cpp.o.d"
  "test_tsqr"
  "test_tsqr.pdb"
  "test_tsqr[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tsqr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
