# Empty compiler generated dependencies file for test_tsqr.
# This may be replaced when dependencies are built.
