# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_support[1]_include.cmake")
include("/root/repo/build/tests/test_fiber[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_model[1]_include.cmake")
include("/root/repo/build/tests/test_opt[1]_include.cmake")
include("/root/repo/build/tests/test_machines[1]_include.cmake")
include("/root/repo/build/tests/test_matmul[1]_include.cmake")
include("/root/repo/build/tests/test_strassen[1]_include.cmake")
include("/root/repo/build/tests/test_nbody[1]_include.cmake")
include("/root/repo/build/tests/test_lu[1]_include.cmake")
include("/root/repo/build/tests/test_fft[1]_include.cmake")
include("/root/repo/build/tests/test_network_trace[1]_include.cmake")
include("/root/repo/build/tests/test_tsqr[1]_include.cmake")
include("/root/repo/build/tests/test_harness[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_seqsim[1]_include.cmake")
include("/root/repo/build/tests/test_hetero[1]_include.cmake")
include("/root/repo/build/tests/test_collective_variants[1]_include.cmake")
include("/root/repo/build/tests/test_stress[1]_include.cmake")
