# Empty compiler generated dependencies file for alge_support.
# This may be replaced when dependencies are built.
