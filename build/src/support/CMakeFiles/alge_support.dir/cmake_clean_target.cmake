file(REMOVE_RECURSE
  "libalge_support.a"
)
