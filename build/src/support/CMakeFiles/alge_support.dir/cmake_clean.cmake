file(REMOVE_RECURSE
  "CMakeFiles/alge_support.dir/cli.cpp.o"
  "CMakeFiles/alge_support.dir/cli.cpp.o.d"
  "CMakeFiles/alge_support.dir/common.cpp.o"
  "CMakeFiles/alge_support.dir/common.cpp.o.d"
  "CMakeFiles/alge_support.dir/rng.cpp.o"
  "CMakeFiles/alge_support.dir/rng.cpp.o.d"
  "CMakeFiles/alge_support.dir/stats.cpp.o"
  "CMakeFiles/alge_support.dir/stats.cpp.o.d"
  "CMakeFiles/alge_support.dir/table.cpp.o"
  "CMakeFiles/alge_support.dir/table.cpp.o.d"
  "libalge_support.a"
  "libalge_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alge_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
