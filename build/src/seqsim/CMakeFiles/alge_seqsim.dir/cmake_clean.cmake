file(REMOVE_RECURSE
  "CMakeFiles/alge_seqsim.dir/cache.cpp.o"
  "CMakeFiles/alge_seqsim.dir/cache.cpp.o.d"
  "libalge_seqsim.a"
  "libalge_seqsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alge_seqsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
