# Empty compiler generated dependencies file for alge_seqsim.
# This may be replaced when dependencies are built.
