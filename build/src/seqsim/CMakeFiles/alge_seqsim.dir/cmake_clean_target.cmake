file(REMOVE_RECURSE
  "libalge_seqsim.a"
)
